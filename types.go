// Package structream is a Go implementation of Structured Streaming
// (Armbrust et al., SIGMOD 2018): a declarative API that automatically
// incrementalizes static relational queries — written with DataFrame
// combinators or SQL — and executes them over streams with exactly-once
// semantics, event-time watermarks, stateful operators, and rich
// operational features (restart, rollback, run-once execution, hybrid
// batch/stream).
//
// The package re-exports the engine's data model so applications never
// import internal packages:
//
//	s := structream.NewSession()
//	df, _ := s.ReadStream().FormatJSON(dir, schema)
//	counts := df.GroupBy(structream.Col("country")).Count()
//	q, _ := counts.WriteStream().OutputMode(structream.Complete).
//		Format("memory").QueryName("counts").Start("")
package structream

import (
	"time"

	"structream/internal/engine"
	"structream/internal/sql"
	"structream/internal/sql/logical"
)

// Row is one record: a slice of values. Concrete value types are nil (SQL
// NULL), bool, int64, float64, string, Window and []byte.
type Row = sql.Row

// Value is one cell of a row.
type Value = sql.Value

// Schema is an ordered list of named, typed columns.
type Schema = sql.Schema

// Field is one column of a schema.
type Field = sql.Field

// Window is an event-time window value, produced by the Window function.
type Window = sql.Window

// DataType identifies a SQL column type.
type DataType = sql.Type

// The supported column types.
const (
	Bool      DataType = sql.TypeBool
	Int64     DataType = sql.TypeInt64
	Float64   DataType = sql.TypeFloat64
	String    DataType = sql.TypeString
	Timestamp DataType = sql.TypeTimestamp
	Interval  DataType = sql.TypeInterval
	WindowT   DataType = sql.TypeWindow
	Binary    DataType = sql.TypeBinary
)

// NewSchema builds a schema from fields.
func NewSchema(fields ...Field) Schema { return sql.NewSchema(fields...) }

// Expr is a scalar expression usable in Select, Where, GroupBy, joins, etc.
type Expr = sql.Expr

// OutputMode specifies how the result table is written to the sink (§4.2
// of the paper).
type OutputMode = logical.OutputMode

// The three output modes.
const (
	Append   = logical.Append
	Update   = logical.Update
	Complete = logical.Complete
)

// GroupState is the per-key state handle of MapGroupsWithState (§4.3.2).
type GroupState = logical.GroupState

// UpdateFunc is the user function of FlatMapGroupsWithState: given a key,
// the new values for that key, and the state handle, return output rows.
type UpdateFunc = logical.UpdateFunc

// TimeoutKind selects MapGroupsWithState timeout semantics.
type TimeoutKind = logical.TimeoutKind

// Timeout kinds.
const (
	NoTimeout             = logical.NoTimeout
	ProcessingTimeTimeout = logical.ProcessingTimeTimeout
	EventTimeTimeout      = logical.EventTimeTimeout
)

// Trigger controls when the engine computes a new increment.
type Trigger = engine.Trigger

// ProcessingTime triggers an epoch every interval (0 = as fast as epochs
// complete).
func ProcessingTime(interval time.Duration) Trigger {
	return engine.ProcessingTimeTrigger{Interval: interval}
}

// Once processes a single epoch covering all available data, then stops —
// the §7.3 "run-once" trigger for discontinuous processing.
func Once() Trigger { return engine.OnceTrigger{} }

// AvailableNow processes everything available at start (possibly over
// several rate-limited epochs), then stops.
func AvailableNow() Trigger { return engine.AvailableNowTrigger{} }

// Continuous selects the low-latency continuous processing mode (§6.3)
// with the given epoch-commit interval.
func Continuous(epochInterval time.Duration) Trigger {
	return engine.ContinuousTrigger{EpochInterval: epochInterval}
}

// StreamingQuery is the handle to a running query.
type StreamingQuery = engine.StreamingQuery

// TimestampValue converts a time.Time to the engine representation
// (microseconds since the Unix epoch).
func TimestampValue(t time.Time) int64 { return sql.TimestampVal(t) }
