// Sessionization reproduces the paper's Figure 3: mapGroupsWithState
// tracks the number of events per user session, where a session is a
// series of events from the same user with gaps under 30 minutes, closed
// by an event-time timeout once the watermark passes the gap.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	structream "structream"
)

var eventSchema = structream.NewSchema(
	structream.Field{Name: "userId", Type: structream.Int64},
	structream.Field{Name: "page", Type: structream.String},
	structream.Field{Name: "time", Type: structream.Timestamp},
)

const minute = int64(60) * 1_000_000 // µs

func main() {
	s := structream.NewSession()
	events, feed := s.MemoryStream("events", eventSchema)

	// The Figure 3 update function: track the number of events for each
	// key as state, return it as the result, time out after 30 minutes.
	updateFunc := func(key structream.Row, values []structream.Row, state structream.GroupState) structream.Row {
		if state.HasTimedOut() {
			total := state.Get()[0].(int64)
			state.Remove()
			return structream.Row{key[0], total, true}
		}
		var totalEvents int64
		if state.Exists() {
			totalEvents = state.Get()[0].(int64)
		}
		totalEvents += int64(len(values))
		state.Update(structream.Row{totalEvents})
		state.SetTimeoutDuration(30 * time.Minute) // interpreted in event time below
		var maxTs int64
		for _, v := range values {
			if ts, ok := v[2].(int64); ok && ts > maxTs {
				maxTs = ts
			}
		}
		state.SetTimeoutTimestamp(maxTs + 30*minute)
		return structream.Row{key[0], totalEvents, false}
	}

	lens := events.
		WithWatermark("time", 0).
		GroupByKey(structream.Col("userId")).
		MapGroupsWithState(
			structream.NewSchema(
				structream.Field{Name: "userId", Type: structream.Int64},
				structream.Field{Name: "events", Type: structream.Int64},
				structream.Field{Name: "closed", Type: structream.Bool},
			),
			structream.NewSchema(structream.Field{Name: "count", Type: structream.Int64}),
			structream.EventTimeTimeout,
			updateFunc,
		)

	ckpt, _ := os.MkdirTemp("", "sessions-ckpt-*")
	defer os.RemoveAll(ckpt)
	q, err := lens.WriteStream().
		Format("memory").QueryName("lens").
		OutputMode(structream.Update).
		Trigger(structream.ProcessingTime(50 * time.Millisecond)).
		Checkpoint(ckpt).
		Start("")
	if err != nil {
		log.Fatal(err)
	}
	defer q.Stop()

	// Two users browse; user 7 clicks three pages, user 9 clicks once.
	feed.AddData(
		structream.Row{int64(7), "/home", 1 * minute},
		structream.Row{int64(7), "/search", 3 * minute},
		structream.Row{int64(9), "/home", 5 * minute},
		structream.Row{int64(7), "/buy", 6 * minute},
	)
	must(q.ProcessAllAvailable())
	show(s, "== live sessions ==")

	// Time passes: an unrelated event an hour later pushes the watermark
	// past both users' 30-minute gaps, closing their sessions via the
	// event-time timeout.
	feed.AddData(structream.Row{int64(1), "/late", 70 * minute})
	must(q.ProcessAllAvailable())
	must(q.ProcessAllAvailable()) // timeouts fire on the epoch after the watermark advance
	show(s, "== after 30-minute gap: sessions closed ==")
}

func show(s *structream.Session, header string) {
	fmt.Println(header)
	tbl, err := s.Table("lens")
	if err != nil {
		log.Fatal(err)
	}
	if err := tbl.Show(os.Stdout, 20); err != nil {
		log.Fatal(err)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
