// Quickstart reproduces the paper's §4.1 example: count clicks by country
// over JSON files, first as a batch job, then as a streaming job obtained
// by "changing only the first and last lines", and finally with event-time
// windows — demonstrating that the transformation in the middle is
// identical in all three.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	structream "structream"
)

var clickSchema = structream.NewSchema(
	structream.Field{Name: "country", Type: structream.String},
	structream.Field{Name: "user_id", Type: structream.Int64},
	structream.Field{Name: "time", Type: structream.Timestamp},
)

func main() {
	dir, err := os.MkdirTemp("", "quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	in := filepath.Join(dir, "in")
	os.MkdirAll(in, 0o755)
	writeFile(in, "batch-1.json", `
{"country":"CA","user_id":1,"time":"2018-06-10T00:00:05Z"}
{"country":"US","user_id":2,"time":"2018-06-10T00:00:12Z"}
{"country":"CA","user_id":3,"time":"2018-06-10T00:00:31Z"}`)

	// ---- Batch version (the paper's first snippet).
	s := structream.NewSession()
	data, err := s.Read().Format("json").Schema(clickSchema).Load(in)
	if err != nil {
		log.Fatal(err)
	}
	counts := data.GroupBy(structream.Col("country")).Count()
	fmt.Println("== batch counts ==")
	if err := counts.Show(os.Stdout, 10); err != nil {
		log.Fatal(err)
	}

	// ---- Streaming version: only the input and output lines change.
	s2 := structream.NewSession()
	stream, err := s2.ReadStream().Format("json").Schema(clickSchema).Load(in)
	if err != nil {
		log.Fatal(err)
	}
	streamCounts := stream.GroupBy(structream.Col("country")).Count()
	q, err := streamCounts.WriteStream().
		Format("memory").QueryName("counts").
		OutputMode(structream.Complete).
		Trigger(structream.ProcessingTime(50 * time.Millisecond)).
		Checkpoint(filepath.Join(dir, "ckpt")).
		Start("")
	if err != nil {
		log.Fatal(err)
	}
	defer q.Stop()
	if err := q.ProcessAllAvailable(); err != nil {
		log.Fatal(err)
	}
	show(s2, "counts", "== streaming counts (epoch 0) ==")

	// New files continually arrive (§4.1: "new JSON files are going to
	// continually be uploaded"); the result table updates incrementally.
	writeFile(in, "batch-2.json", `
{"country":"DE","user_id":4,"time":"2018-06-10T00:00:44Z"}
{"country":"CA","user_id":5,"time":"2018-06-10T00:00:47Z"}`)
	if err := q.ProcessAllAvailable(); err != nil {
		log.Fatal(err)
	}
	show(s2, "counts", "== streaming counts after new file ==")

	// ---- Windowed variant: change one line in the middle (§4.1's last
	// snippet) to count in 30-second event-time windows.
	windowed := stream.
		GroupBy(structream.WindowOf(structream.Col("time"), 30*time.Second, 0), structream.Col("country")).
		Count()
	q2, err := windowed.WriteStream().
		Format("memory").QueryName("windowed").
		OutputMode(structream.Complete).
		Trigger(structream.ProcessingTime(50 * time.Millisecond)).
		Checkpoint(filepath.Join(dir, "ckpt2")).
		Start("")
	if err != nil {
		log.Fatal(err)
	}
	defer q2.Stop()
	if err := q2.ProcessAllAvailable(); err != nil {
		log.Fatal(err)
	}
	show(s2, "windowed", "== windowed counts (30s event-time windows) ==")
}

func show(s *structream.Session, table, header string) {
	df, err := s.Table(table)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(header)
	if err := df.Show(os.Stdout, 20); err != nil {
		log.Fatal(err)
	}
}

func writeFile(dir, name, content string) {
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content[1:]+"\n"), 0o644); err != nil {
		log.Fatal(err)
	}
}
