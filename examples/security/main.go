// Security reproduces the paper's §8.1 information-security platform in
// miniature: the pipeline joins live TCP connection logs with live DHCP
// lease logs (a stream-stream join, so analysts can attribute connections
// to devices despite dynamic IPs), and a second query implements the DNS
// exfiltration detector — flag any host whose aggregate DNS request bytes
// exceed a threshold within a 1-minute event-time window.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	structream "structream"
)

const minute = int64(60) * 1_000_000 // µs

var tcpSchema = structream.NewSchema(
	structream.Field{Name: "src_ip", Type: structream.String},
	structream.Field{Name: "dst", Type: structream.String},
	structream.Field{Name: "bytes", Type: structream.Int64},
	structream.Field{Name: "ts", Type: structream.Timestamp},
)

var dhcpSchema = structream.NewSchema(
	structream.Field{Name: "ip", Type: structream.String},
	structream.Field{Name: "mac", Type: structream.String},
	structream.Field{Name: "lease_ts", Type: structream.Timestamp},
)

var dnsSchema = structream.NewSchema(
	structream.Field{Name: "host", Type: structream.String},
	structream.Field{Name: "query_bytes", Type: structream.Int64},
	structream.Field{Name: "ts", Type: structream.Timestamp},
)

func main() {
	s := structream.NewSession()
	tcp, tcpFeed := s.MemoryStream("tcp_logs", tcpSchema)
	dhcp, dhcpFeed := s.MemoryStream("dhcp_logs", dhcpSchema)
	_, dnsFeed := s.MemoryStream("dns_logs", dnsSchema)

	// The organization's device inventory (static table): MAC → owner.
	s.RegisterTable("devices", structream.NewSchema(
		structream.Field{Name: "dev_mac", Type: structream.String},
		structream.Field{Name: "owner", Type: structream.String},
	), []structream.Row{
		{"aa:01", "alice-laptop"},
		{"bb:02", "bob-phone"},
	})
	devices, err := s.Table("devices")
	must(err)

	// ---- Query 1 (§8.1): attribute TCP connections to devices by joining
	// the TCP stream with the DHCP stream in real time, then with the
	// static device table.
	attributed := tcp.As("t").
		Join(dhcp.As("d"),
			structream.Eq(structream.Col("t.src_ip"), structream.Col("d.ip")),
			structream.InnerJoin).
		Join(devices,
			structream.Eq(structream.Col("d.mac"), structream.Col("dev_mac")),
			structream.InnerJoin).
		Select(
			structream.Col("owner"),
			structream.Col("t.dst"),
			structream.Col("t.bytes"),
		)
	ckpt1, _ := os.MkdirTemp("", "sec1-*")
	defer os.RemoveAll(ckpt1)
	q1, err := attributed.WriteStream().Format("memory").QueryName("attributed").
		OutputMode(structream.Append).
		Trigger(structream.ProcessingTime(50 * time.Millisecond)).
		Checkpoint(ckpt1).Start("")
	must(err)
	defer q1.Stop()

	// ---- Query 2 (§8.1's example alert): DNS exfiltration detection. The
	// analyst developed the threshold on historical data, then "simply
	// pushed the query to the alerting cluster".
	alerts, err := s.SQL(`
		SELECT window(ts, '1 minute') AS win, host, sum(query_bytes) AS total
		FROM dns_logs
		GROUP BY window(ts, '1 minute'), host
		HAVING sum(query_bytes) > 10000`)
	must(err)
	ckpt2, _ := os.MkdirTemp("", "sec2-*")
	defer os.RemoveAll(ckpt2)
	q2, err := alerts.WriteStream().Format("memory").QueryName("alerts").
		OutputMode(structream.Update).
		Trigger(structream.ProcessingTime(50 * time.Millisecond)).
		Checkpoint(ckpt2).Start("")
	must(err)
	defer q2.Stop()

	// DHCP leases arrive first: alice's laptop gets 10.0.0.5.
	dhcpFeed.AddData(
		structream.Row{"10.0.0.5", "aa:01", 0 * minute},
		structream.Row{"10.0.0.9", "bb:02", 0 * minute},
	)
	// TCP connections stream in.
	tcpFeed.AddData(
		structream.Row{"10.0.0.5", "update-server:443", int64(1200), 1 * minute},
		structream.Row{"10.0.0.9", "cdn:443", int64(90_000), 2 * minute},
		structream.Row{"10.0.0.7", "unknown:80", int64(10), 2 * minute}, // no lease: dropped by inner join
	)
	must(q1.ProcessAllAvailable())
	show(s, "attributed", "== TCP connections attributed to devices (stream ⋈ stream ⋈ table) ==")

	// DNS traffic: a compromised host piggybacks data onto DNS queries.
	dnsFeed.AddData(
		structream.Row{"alice-laptop", int64(300), 1 * minute},
		structream.Row{"evil-host", int64(8_000), 1 * minute},
		structream.Row{"evil-host", int64(7_500), 1*minute + 20_000_000},
	)
	must(q2.ProcessAllAvailable())
	show(s, "alerts", "== DNS exfiltration alerts (aggregate > 10 kB / minute) ==")
}

func show(s *structream.Session, table, header string) {
	fmt.Println(header)
	tbl, err := s.Table(table)
	must(err)
	must(tbl.Show(os.Stdout, 20))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
