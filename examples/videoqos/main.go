// Videoqos reproduces the paper's §8.2/§8.3 monitoring use cases: client
// quality metrics stream in, are joined against a table of Internet
// Autonomous Systems, aggregated per AS over 1-minute event-time windows
// with a watermark, and an alert query flags poorly performing ASes — the
// game-latency workflow where "the streaming job triggers an alert, and IT
// staff can contact the AS in question".
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	structream "structream"
)

const minute = int64(60) * 1_000_000 // µs

var metricSchema = structream.NewSchema(
	structream.Field{Name: "client_ip", Type: structream.String},
	structream.Field{Name: "asn", Type: structream.Int64},
	structream.Field{Name: "latency_ms", Type: structream.Float64},
	structream.Field{Name: "buffering", Type: structream.Bool},
	structream.Field{Name: "ts", Type: structream.Timestamp},
)

func main() {
	s := structream.NewSession()
	metrics, feed := s.MemoryStream("metrics", metricSchema)

	// Static AS registry.
	s.RegisterTable("asns", structream.NewSchema(
		structream.Field{Name: "as_id", Type: structream.Int64},
		structream.Field{Name: "as_name", Type: structream.String},
	), []structream.Row{
		{int64(100), "GoodNet"},
		{int64(200), "SlowTel"},
	})
	asns, err := s.Table("asns")
	must(err)

	// Per-AS quality over 1-minute windows, with a 30s watermark so state
	// is bounded and results finalize (append mode).
	quality := metrics.
		WithWatermark("ts", 30*time.Second).
		Join(asns, structream.Eq(structream.Col("asn"), structream.Col("as_id")), structream.InnerJoin).
		GroupBy(
			structream.WindowOf(structream.Col("ts"), time.Minute, 0),
			structream.Col("as_name"),
		).
		Agg(
			structream.Avg(structream.Col("latency_ms")).As("avg_latency"),
			structream.CountAll().As("samples"),
		)

	ckpt, _ := os.MkdirTemp("", "qos-*")
	defer os.RemoveAll(ckpt)
	q, err := quality.WriteStream().Format("memory").QueryName("quality").
		OutputMode(structream.Append). // finalized windows only: "final" results downstream can trust
		Trigger(structream.ProcessingTime(50 * time.Millisecond)).
		Checkpoint(ckpt).Start("")
	must(err)
	defer q.Stop()

	// Minute 0: SlowTel clients suffer; GoodNet is fine.
	feed.AddData(
		structream.Row{"1.1.1.1", int64(100), 35.0, false, 10_000_000},
		structream.Row{"1.1.1.2", int64(100), 42.0, false, 20_000_000},
		structream.Row{"2.2.2.1", int64(200), 180.0, true, 15_000_000},
		structream.Row{"2.2.2.2", int64(200), 240.0, true, 30_000_000},
	)
	must(q.ProcessAllAvailable())
	fmt.Println("== minute 0 in flight (append mode: nothing final yet) ==")
	show(s, "quality")

	// Minute 2 arrives; the watermark passes minute 0's window end and the
	// finalized per-AS quality rows appear exactly once.
	feed.AddData(structream.Row{"1.1.1.1", int64(100), 38.0, false, 2 * minute})
	must(q.ProcessAllAvailable())
	must(q.ProcessAllAvailable())
	fmt.Println("== minute 0 finalized ==")
	show(s, "quality")

	// The alert query runs interactively over the same result table —
	// streaming, interactive and batch share one API (§8.1's key point).
	alerts, err := s.SQL(`SELECT as_name, avg_latency FROM quality WHERE avg_latency > 100`)
	must(err)
	fmt.Println("== alert: ASes above 100 ms average ==")
	must(alerts.Show(os.Stdout, 10))
}

func show(s *structream.Session, table string) {
	tbl, err := s.Table(table)
	must(err)
	must(tbl.Show(os.Stdout, 20))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
