// Runonce demonstrates the paper's §7.3 "discontinuous processing"
// pattern: instead of paying for a cluster 24/7, customers run a single
// epoch of a Structured Streaming job every few hours with Trigger.Once.
// The checkpoint's transactional offset tracking provides exactly the
// bookkeeping an hand-written ETL job would need — which files were
// processed and which results are durable — across completely separate
// process invocations.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	structream "structream"
	"structream/internal/colfmt"
)

var salesSchema = structream.NewSchema(
	structream.Field{Name: "region", Type: structream.String},
	structream.Field{Name: "amount", Type: structream.Float64},
)

func main() {
	root, err := os.MkdirTemp("", "runonce-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)
	in := filepath.Join(root, "in")
	out := filepath.Join(root, "out")
	ckpt := filepath.Join(root, "ckpt")
	os.MkdirAll(in, 0o755)

	// Three "nightly" invocations. Each is an independent engine start —
	// state, offsets and output all resume from the shared checkpoint.
	uploads := []string{
		`{"region":"EU","amount":100}` + "\n" + `{"region":"US","amount":250}`,
		`{"region":"EU","amount":50}`,
		`{"region":"APAC","amount":75}` + "\n" + `{"region":"US","amount":25}`,
	}
	for night, data := range uploads {
		name := fmt.Sprintf("upload-%d.json", night)
		if err := os.WriteFile(filepath.Join(in, name), []byte(data+"\n"), 0o644); err != nil {
			log.Fatal(err)
		}
		runNightlyBatch(night, in, out, ckpt)
	}
}

// runNightlyBatch is one scheduled invocation: start, process everything
// new, stop. In production this would be a fresh process started by cron.
func runNightlyBatch(night int, in, out, ckpt string) {
	s := structream.NewSession()
	stream, err := s.ReadStream().Format("json").Schema(salesSchema).
		Option("name", "sales").Load(in)
	if err != nil {
		log.Fatal(err)
	}
	totals := stream.GroupBy(structream.Col("region")).
		Agg(structream.Sum(structream.Col("amount")).As("total"))
	q, err := totals.WriteStream().
		Format("columnar").
		OutputMode(structream.Complete).
		Trigger(structream.Once()). // the §7.3 run-once trigger
		Checkpoint(ckpt).
		Start(out)
	if err != nil {
		log.Fatal(err)
	}
	if err := q.AwaitTermination(); err != nil {
		log.Fatal(err)
	}

	tbl, err := colfmt.OpenTable(out)
	if err != nil {
		log.Fatal(err)
	}
	rows, err := tbl.ReadAll()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== night %d: running totals (cluster now shut down) ==\n", night)
	for _, r := range rows {
		fmt.Println(r)
	}
}
