package structream

import (
	"fmt"
	"io"
	"os"
	"strconv"

	"structream/internal/cluster"
	"structream/internal/colfmt"
	"structream/internal/engine"
	"structream/internal/incremental"
	"structream/internal/serve"
	"structream/internal/sinks"
	"structream/internal/sources"
	"structream/internal/sql/analysis"
	"structream/internal/sql/logical"
	"structream/internal/sql/optimizer"
)

// DataStreamWriter starts streaming queries, mirroring df.writeStream.
type DataStreamWriter struct {
	df         *DataFrame
	format     string
	mode       OutputMode
	trigger    Trigger
	name       string
	checkpoint string
	opts       map[string]string
	sink       sinks.Sink
	cluster    *cluster.Cluster
	eventLogW  io.Writer
	partitions int
	maxPerTrig int64
}

// WriteStream begins building a streaming write for the DataFrame.
func (df *DataFrame) WriteStream() *DataStreamWriter {
	return &DataStreamWriter{df: df, opts: map[string]string{}, mode: Append}
}

// Format selects the sink: "memory" (in-session result table), "columnar"
// (Parquet-like table directory), "json" (JSON-lines files), "console",
// or "bus" (message-bus topic).
func (w *DataStreamWriter) Format(format string) *DataStreamWriter {
	w.format = format
	return w
}

// OutputMode sets how the result table is written (§4.2); the analyzer
// rejects invalid mode/query combinations (§5.1).
func (w *DataStreamWriter) OutputMode(mode OutputMode) *DataStreamWriter {
	w.mode = mode
	return w
}

// OutputModeName sets the output mode by name ("append", "update",
// "complete"), as in the paper's examples.
func (w *DataStreamWriter) OutputModeName(name string) *DataStreamWriter {
	if m, err := logical.ParseOutputMode(name); err == nil {
		w.mode = m
	} else {
		w.opts["__badmode"] = name // surfaced at Start
	}
	return w
}

// Trigger sets the execution trigger (default ProcessingTime(0)).
func (w *DataStreamWriter) Trigger(t Trigger) *DataStreamWriter {
	w.trigger = t
	return w
}

// QueryName names the query; the memory sink registers its result table
// under this name for interactive queries.
func (w *DataStreamWriter) QueryName(name string) *DataStreamWriter {
	w.name = name
	return w
}

// Checkpoint sets the checkpoint directory (WAL + state store). A query
// without one gets a temporary directory and loses restartability.
func (w *DataStreamWriter) Checkpoint(dir string) *DataStreamWriter {
	w.checkpoint = dir
	return w
}

// Option sets a sink/engine option ("partitions", "maxRecordsPerTrigger",
// "workers" — N > 1 runs epochs on the partitioned parallel runtime
// (per-partition pipelines, sharded epoch-commit barrier; see
// engine.Options.Workers),
// "stateBackend", "stateMemtableBytes", "stateBlockCacheBytes",
// "stateSyncMaintenance" — "true" pins LSM flush/compaction inline on the
// commit path instead of the background goroutine,
// "vectorize" — "false" disables the columnar execution path,
// "publish" — "true" attaches a live serving hub to the query (requires a
// sink that supports replay, i.e. the memory sink; see Session.Publish),
// "retainEpochs" — N bounds the memory sink to the last N committed
// epochs; subscribers resuming below the floor restart from a snapshot).
func (w *DataStreamWriter) Option(key, value string) *DataStreamWriter {
	w.opts[key] = value
	return w
}

// Sink installs a custom sink implementation (escape hatch).
func (w *DataStreamWriter) Sink(s sinks.Sink) *DataStreamWriter {
	w.sink = s
	return w
}

// Foreach delivers each epoch's output rows to fn — the foreachBatch-style
// integration point for custom systems. fn must be idempotent in epoch for
// exactly-once semantics; the engine may re-deliver the last epoch after a
// crash.
func (w *DataStreamWriter) Foreach(fn func(epoch int64, rows []Row) error) *DataStreamWriter {
	w.sink = &sinks.ForeachSink{Fn: func(b sinks.Batch) error {
		return fn(b.Epoch, b.Rows)
	}}
	return w
}

// Cluster runs the query's stages on a specific (simulated) cluster.
func (w *DataStreamWriter) Cluster(c *cluster.Cluster) *DataStreamWriter {
	w.cluster = c
	return w
}

// EventLogWriter streams JSON progress events to w (§7.4).
func (w *DataStreamWriter) EventLogWriter(out io.Writer) *DataStreamWriter {
	w.eventLogW = out
	return w
}

// Partitions sets the shuffle/state partition count.
func (w *DataStreamWriter) Partitions(n int) *DataStreamWriter {
	w.partitions = n
	return w
}

// MaxRecordsPerTrigger caps each epoch's input size.
func (w *DataStreamWriter) MaxRecordsPerTrigger(n int64) *DataStreamWriter {
	w.maxPerTrig = n
	return w
}

// Start plans the query (analysis → §5.1 checks → optimization →
// incrementalization), binds sources and the sink, and launches execution.
// path is the sink destination (directory for file sinks, topic for bus,
// ignored for memory/console).
func (w *DataStreamWriter) Start(path string) (*StreamingQuery, error) {
	if bad, ok := w.opts["__badmode"]; ok {
		return nil, fmt.Errorf("structream: unknown output mode %q", bad)
	}
	df := w.df
	if !df.IsStreaming() {
		return nil, fmt.Errorf("structream: WriteStream requires a streaming DataFrame; use Write for batch output")
	}

	analyzed, err := analysis.Analyze(df.plan)
	if err != nil {
		return nil, err
	}
	if err := analysis.CheckStreaming(analyzed, w.mode); err != nil {
		return nil, err
	}
	optimized := optimizer.Optimize(analyzed)
	q, err := incremental.Compile(optimized, w.mode, df.s.staticResolver)
	if err != nil {
		return nil, err
	}

	sink, err := w.buildSink(path, q)
	if err != nil {
		return nil, err
	}

	// Bind the sources referenced by the compiled pipelines.
	srcs := map[string]sources.Source{}
	for _, p := range q.Pipelines {
		src, ok := df.s.source(p.SourceName)
		if !ok {
			return nil, fmt.Errorf("structream: stream %q is not bound to a source", p.SourceName)
		}
		srcs[p.SourceName] = src
	}

	checkpoint := w.checkpoint
	if checkpoint == "" {
		dir, err := os.MkdirTemp("", "structream-ckpt-*")
		if err != nil {
			return nil, err
		}
		checkpoint = dir
	}
	opts := engine.Options{
		Name:                 w.queryName(),
		Checkpoint:           checkpoint,
		Trigger:              w.trigger,
		NumPartitions:        w.partitions,
		MaxRecordsPerTrigger: w.maxPerTrig,
		Cluster:              w.cluster,
		EventLogWriter:       w.eventLogW,
	}
	if n, err := strconv.Atoi(w.opts["partitions"]); err == nil && n > 0 {
		opts.NumPartitions = n
	}
	if n, err := strconv.ParseInt(w.opts["maxRecordsPerTrigger"], 10, 64); err == nil && n > 0 {
		opts.MaxRecordsPerTrigger = n
	}
	if n, err := strconv.Atoi(w.opts["workers"]); err == nil && n > 1 {
		opts.Workers = n
	}
	if b := w.opts["stateBackend"]; b != "" {
		opts.StateBackend = b
	}
	if n, err := strconv.ParseInt(w.opts["stateMemtableBytes"], 10, 64); err == nil && n > 0 {
		opts.StateMemtableBytes = n
	}
	if n, err := strconv.ParseInt(w.opts["stateBlockCacheBytes"], 10, 64); err == nil && n > 0 {
		opts.StateBlockCacheBytes = n
	}
	if w.opts["stateSyncMaintenance"] == "true" {
		opts.StateSyncMaintenance = true
	}
	if v := w.opts["vectorize"]; v == "false" {
		opts.Vectorize = engine.Bool(false)
	}
	sq, err := engine.Start(q, srcs, sink, opts)
	if err != nil {
		return nil, err
	}
	df.s.trackQuery(sq)
	if w.opts["publish"] == "true" {
		rep, ok := replayTarget(sink)
		if !ok {
			sq.Stop() //nolint:errcheck // surfacing the config error
			return nil, fmt.Errorf("structream: publish requires a replayable sink (memory, or a tee including one), got %s", sinks.Describe(sink))
		}
		df.s.Publish(sq, rep, serve.HubOptions{})
	}
	return sq, nil
}

// replayTarget finds the serving layer's replay source inside a sink:
// the memory sink itself, or the first replayable target of a tee.
func replayTarget(s sinks.Sink) (serve.Replayer, bool) {
	if rep, ok := s.(serve.Replayer); ok {
		return rep, true
	}
	if tee, ok := s.(*sinks.TeeSink); ok {
		for _, t := range tee.Targets {
			if rep, ok := replayTarget(t); ok {
				return rep, true
			}
		}
	}
	return nil, false
}

func (w *DataStreamWriter) queryName() string {
	if w.name != "" {
		return w.name
	}
	return "query"
}

func (w *DataStreamWriter) buildSink(path string, q *incremental.Query) (sinks.Sink, error) {
	if w.sink != nil {
		return w.sink, nil
	}
	switch w.format {
	case "memory", "":
		ms := sinks.NewMemorySink()
		if n := atoiDefault(w.opts["retainEpochs"], 0); n > 0 {
			ms.SetRetention(n)
		}
		if w.name != "" {
			// Interactive queries over consistent snapshots of the result
			// table (§3: "output to an in-memory table users can query").
			w.df.s.registerLiveTable(w.name, q.OutSchema, ms.Rows)
		}
		return ms, nil
	case "console":
		return sinks.NewConsoleSink(os.Stdout), nil
	case "columnar":
		if path == "" {
			return nil, fmt.Errorf("structream: the columnar sink requires a directory path")
		}
		return sinks.NewFileSink(path), nil
	case "json":
		if path == "" {
			return nil, fmt.Errorf("structream: the json sink requires a directory path")
		}
		return sinks.NewJSONFileSink(path), nil
	case "bus":
		topic, err := w.df.s.Broker().CreateTopic(path, maxInt(1, atoiDefault(w.opts["partitions"], 1)))
		if err != nil {
			return nil, err
		}
		bs := sinks.NewBusSink(topic)
		if w.opts["transactional"] == "true" {
			control, err := w.df.s.Broker().CreateTopic(path+"-commits", 1)
			if err != nil {
				return nil, err
			}
			return sinks.NewTransactionalBusSink(bs, control)
		}
		return bs, nil
	default:
		return nil, fmt.Errorf("structream: unknown sink format %q", w.format)
	}
}

func atoiDefault(s string, def int) int {
	if n, err := strconv.Atoi(s); err == nil {
		return n
	}
	return def
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ---------------------------------------------------------------- batch

// DataFrameWriter writes batch results, mirroring df.write.
type DataFrameWriter struct {
	df     *DataFrame
	format string
}

// Write begins building a batch write.
func (df *DataFrame) Write() *DataFrameWriter { return &DataFrameWriter{df: df} }

// Format selects "columnar" or "json".
func (w *DataFrameWriter) Format(format string) *DataFrameWriter {
	w.format = format
	return w
}

// Save executes the DataFrame and writes the result to path atomically.
func (w *DataFrameWriter) Save(path string) error {
	rows, err := w.df.Collect()
	if err != nil {
		return err
	}
	schema, err := w.df.Schema()
	if err != nil {
		return err
	}
	switch w.format {
	case "columnar", "":
		seg, err := colfmt.WriteSegment(path, "batch-000000000000.seg", schema, rows, 0)
		if err != nil {
			return err
		}
		return colfmt.CommitManifest(path, schema, []colfmt.SegmentInfo{seg})
	case "json":
		sink := sinks.NewJSONFileSink(path)
		return sink.AddBatch(sinks.Batch{Epoch: 0, Mode: Complete, Schema: schema, Rows: rows})
	default:
		return fmt.Errorf("structream: unknown batch sink format %q", w.format)
	}
}
