// Command ssbench regenerates every figure in the paper's evaluation (§9)
// plus the operational ablations, printing the same rows/series the paper
// reports:
//
//	ssbench -experiment fig6a     Yahoo! benchmark vs the two baselines
//	ssbench -experiment fig6b     scaling sweep over the virtual cluster
//	ssbench -experiment fig7      continuous-mode latency vs input rate
//	ssbench -experiment runonce   §7.3 run-once trigger cost savings
//	ssbench -experiment recovery  §6.2 task recovery vs topology rollback
//	ssbench -experiment adaptive  §7.3 adaptive batching after downtime
//	ssbench -experiment bench     observability bench suite (throughput, p99, tracing overhead)
//	ssbench -experiment all       everything, in order
//
// With -json FILE the bench suite additionally writes its machine-readable
// report (the BENCH_<date>.json artifact `make bench-json` produces).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"structream/internal/experiments"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "fig6a, fig6b, fig7, runonce, recovery, adaptive, bench or all")
		events     = flag.Int("events", 4_000_000, "workload size for fig6a/fig6b calibration")
		rounds     = flag.Int("rounds", 3, "measurement rounds per engine (best kept)")
		rateSecs   = flag.Float64("rate-seconds", 1.5, "seconds per rate point in fig7")
		jsonOut    = flag.String("json", "", "with -experiment bench, also write the report as JSON to this file")
		compare    = flag.String("compare", "", "with -experiment bench, fail if microbatch-throughput drops >10% below this baseline BENCH json")
	)
	flag.Parse()

	tempDir := func() string {
		dir, err := os.MkdirTemp("", "ssbench-*")
		if err != nil {
			fatal(err)
		}
		return dir
	}

	run := func(name string, fn func() error) {
		if *experiment != "all" && *experiment != name {
			return
		}
		if err := fn(); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Println()
	}

	run("fig6a", func() error {
		r, err := experiments.RunFig6a(*events, *rounds, tempDir)
		if err != nil {
			return err
		}
		fmt.Print(r)
		return nil
	})

	run("fig6b", func() error {
		model, err := experiments.CalibrateYahoo(*events, tempDir)
		if err != nil {
			return err
		}
		r, err := experiments.RunFig6b(model, []int{1, 5, 10, 20}, 1_000_000_000, 1000)
		if err != nil {
			return err
		}
		fmt.Print(r)
		return nil
	})

	run("fig7", func() error {
		r, err := experiments.RunFig7(nil, time.Duration(*rateSecs*float64(time.Second)), tempDir)
		if err != nil {
			return err
		}
		fmt.Print(r)
		return nil
	})

	run("runonce", func() error {
		r, err := experiments.RunRunOnce(2_000_000, tempDir)
		if err != nil {
			return err
		}
		fmt.Print(r)
		return nil
	})

	run("recovery", func() error {
		r, err := experiments.RunRecovery(2_000_000, tempDir)
		if err != nil {
			return err
		}
		fmt.Print(r)
		return nil
	})

	run("adaptive", func() error {
		r, err := experiments.RunAdaptive(100_000, 3, tempDir)
		if err != nil {
			return err
		}
		fmt.Print(r)
		return nil
	})

	run("bench", func() error {
		r, err := experiments.RunBenchSuite(*events, *rounds, tempDir)
		if err != nil {
			return err
		}
		fmt.Print(r)
		if *jsonOut != "" {
			data, err := json.MarshalIndent(r, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("  wrote %s\n", *jsonOut)
		}
		if *compare != "" {
			baseline, err := os.ReadFile(*compare)
			if err != nil {
				return err
			}
			if err := experiments.CompareBenchBaseline(baseline, r); err != nil {
				return err
			}
			fmt.Printf("  no throughput regression vs %s\n", *compare)
		}
		return nil
	})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ssbench:", err)
	os.Exit(1)
}
