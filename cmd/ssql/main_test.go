package main

import (
	"testing"

	structream "structream"
)

func TestParseSchema(t *testing.T) {
	s, err := parseSchema("country string, latency double, time timestamp, n bigint, ok bool")
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		name string
		typ  structream.DataType
	}{
		{"country", structream.String},
		{"latency", structream.Float64},
		{"time", structream.Timestamp},
		{"n", structream.Int64},
		{"ok", structream.Bool},
	}
	if s.Len() != len(want) {
		t.Fatalf("schema = %s", s)
	}
	for i, w := range want {
		if s.Field(i).Name != w.name || s.Field(i).Type != w.typ {
			t.Errorf("field %d = %v, want %v", i, s.Field(i), w)
		}
	}
}

func TestParseSchemaErrors(t *testing.T) {
	for _, bad := range []string{"", "justname", "a string, b", "x frobnicate"} {
		if _, err := parseSchema(bad); err == nil {
			t.Errorf("parseSchema(%q) should error", bad)
		}
	}
}

func TestSplitBinding(t *testing.T) {
	name, dir, err := splitBinding("events=/data/in")
	if err != nil || name != "events" || dir != "/data/in" {
		t.Errorf("got %q %q err=%v", name, dir, err)
	}
	for _, bad := range []string{"", "noequals", "=dir", "name="} {
		if _, _, err := splitBinding(bad); err == nil {
			t.Errorf("splitBinding(%q) should error", bad)
		}
	}
}
