package main

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"structream/internal/health"
	"structream/internal/metrics"
	"structream/internal/serve"
)

// statusStages is the display order of the duration breakdown — the
// epoch's stages in execution order.
var statusStages = []string{"planning", "getBatch", "execution", "stateCommit", "walCommit", "sinkCommit"}

// formatStatus renders a query's live status for the :status REPL
// command: the last epoch's throughput, its duration breakdown with the
// bottleneck stage flagged, and the per-source/sink/state sections.
func formatStatus(name, status string, p metrics.QueryProgress, ok bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "query %q: %s\n", name, status)
	if !ok {
		b.WriteString("  no epochs committed yet\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  epoch %d: %d rows in, %d rows out (%.0f in/s, %.0f out/s)\n",
		p.Epoch, p.NumInputRows, p.NumOutputRows, p.InputRowsPerSec, p.OutputRowsPerSec)
	fmt.Fprintf(&b, "  processing time: %v\n", time.Duration(p.ProcessingMicros)*time.Microsecond)
	if len(p.DurationBreakdown) > 0 {
		b.WriteString("  duration breakdown:\n")
		for _, stage := range statusStages {
			v, present := p.DurationBreakdown[stage]
			if !present {
				continue
			}
			pct := 0.0
			if p.ProcessingMicros > 0 {
				pct = 100 * float64(v) / float64(p.ProcessingMicros)
			}
			marker := ""
			if stage == p.BottleneckStage {
				marker = "  <- bottleneck"
			}
			fmt.Fprintf(&b, "    %-12s %12v %5.1f%%%s\n",
				stage, time.Duration(v)*time.Microsecond, pct, marker)
		}
	}
	if p.BackpressureDecision != "" {
		fmt.Fprintf(&b, "  backpressure: %s\n", p.BackpressureDecision)
	}
	for _, src := range p.Sources {
		fmt.Fprintf(&b, "  source %q: %d rows, offsets %v -> %v (read %v)\n",
			src.Name, src.NumInputRows, src.StartOffsets, src.EndOffsets,
			time.Duration(src.ReadMicros)*time.Microsecond)
	}
	if p.Sink != nil {
		fmt.Fprintf(&b, "  sink %s: %d rows (write %v)\n",
			p.Sink.Description, p.Sink.NumOutputRows, time.Duration(p.Sink.WriteMicros)*time.Microsecond)
	}
	for _, so := range p.StateOperators {
		fmt.Fprintf(&b, "  state %q: %d keys, %d bytes, cache %d/%d hit, %d deltas, %d snapshots\n",
			so.Operator, so.NumRowsTotal, so.StateBytes,
			so.CacheHits, so.CacheHits+so.CacheMisses, so.DeltasWritten, so.SnapshotsWritten)
	}
	if p.WatermarkMicros > 0 {
		fmt.Fprintf(&b, "  watermark: %dµs\n", p.WatermarkMicros)
	}
	return b.String()
}

// formatFrame renders one serving-hub frame for the :subscribe REPL
// command — a compact one-line summary per delivery.
func formatFrame(f serve.Frame) string {
	switch f.Kind {
	case serve.FrameHello:
		return fmt.Sprintf("[serve] hello: mode=%s cursor=%d schema=%v\n", f.Mode, f.Cursor, f.Schema)
	case serve.FrameEpoch:
		return fmt.Sprintf("[serve] epoch %d: %d rows (cursor %d)\n", f.Epoch, len(f.Rows), f.Cursor)
	case serve.FrameSnapshot:
		suffix := ""
		if f.Reset {
			suffix = " [reset: " + f.Reason + "]"
		}
		return fmt.Sprintf("[serve] snapshot: %d rows (cursor %d)%s\n", len(f.Rows), f.Cursor, suffix)
	case serve.FrameHeartbeat:
		return fmt.Sprintf("[serve] heartbeat (cursor %d)\n", f.Cursor)
	default: // evicted, shutdown
		return fmt.Sprintf("[serve] %s: %s (reconnect in ~%dms, resume with cursor=%d)\n",
			f.Kind, f.Reason, f.RetryMillis, f.Cursor)
	}
}

// formatHealth renders the health report for the :health REPL command:
// detector signal baselines, end-to-end lineage of the latest epochs, the
// slowest partitions, and any captured flight-recorder bundles.
func formatHealth(rep health.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "health for %q: %s\n", rep.Query, rep.Status)
	if rep.Status == "disabled" {
		b.WriteString("  health tracking is off (started with DisableHealth)\n")
		return b.String()
	}
	if len(rep.Signals) > 0 {
		b.WriteString("  signals (last / mean ± std, samples, trips):\n")
		for _, s := range rep.Signals {
			fmt.Fprintf(&b, "    %-18s %12.1f / %.1f ± %.1f  n=%d trips=%d\n",
				s.Name, s.Last, s.Mean, s.Std, s.Samples, s.Trips)
		}
	}
	if a := rep.LastAnomaly; a != nil {
		fmt.Fprintf(&b, "  last anomaly: epoch %d %s=%.1f (baseline %.1f ± %.1f)",
			a.Epoch, a.Signal, a.Value, a.Mean, a.Std)
		if a.BundleID != "" {
			fmt.Fprintf(&b, " -> bundle %s", a.BundleID)
		}
		if a.CaptureError != "" {
			fmt.Fprintf(&b, " (capture failed: %s)", a.CaptureError)
		}
		b.WriteString("\n")
	}
	if len(rep.Stamps) > 0 {
		b.WriteString("  lineage (epoch: ingest->commit, end-to-end):\n")
		for _, s := range rep.Stamps {
			span := time.Duration(s.CommitMicros-s.IngestMicros) * time.Microsecond
			e2e := "not yet delivered"
			if v := s.EndToEndMicros(); v > 0 {
				e2e = (time.Duration(v) * time.Microsecond).String()
			}
			fmt.Fprintf(&b, "    epoch %d: %v, %s\n", s.Epoch, span, e2e)
		}
	}
	for _, p := range rep.Partitions {
		fmt.Fprintf(&b, "  partition %s/%d: %d rows in %v\n",
			p.Stage, p.Partition, p.Rows, time.Duration(p.Micros)*time.Microsecond)
	}
	for _, bu := range rep.Bundles {
		fmt.Fprintf(&b, "  bundle %s: %s at epoch %d (%d files, %d bytes)\n",
			bu.ID, bu.Signal, bu.Epoch, bu.Files, bu.Bytes)
	}
	return b.String()
}

// formatMetrics renders a metric registry snapshot for the :metrics REPL
// command, one sorted `name value` line per metric (histograms appear as
// their derived .count/.p50/.p95/.p99/.max entries).
func formatMetrics(name string, snap map[string]int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "metrics for %q:\n", name)
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "  %-28s %d\n", k, snap[k])
	}
	return b.String()
}
