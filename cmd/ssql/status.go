package main

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"structream/internal/metrics"
	"structream/internal/serve"
)

// statusStages is the display order of the duration breakdown — the
// epoch's stages in execution order.
var statusStages = []string{"planning", "getBatch", "execution", "stateCommit", "walCommit", "sinkCommit"}

// formatStatus renders a query's live status for the :status REPL
// command: the last epoch's throughput, its duration breakdown with the
// bottleneck stage flagged, and the per-source/sink/state sections.
func formatStatus(name, status string, p metrics.QueryProgress, ok bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "query %q: %s\n", name, status)
	if !ok {
		b.WriteString("  no epochs committed yet\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  epoch %d: %d rows in, %d rows out (%.0f in/s, %.0f out/s)\n",
		p.Epoch, p.NumInputRows, p.NumOutputRows, p.InputRowsPerSec, p.OutputRowsPerSec)
	fmt.Fprintf(&b, "  processing time: %v\n", time.Duration(p.ProcessingMicros)*time.Microsecond)
	if len(p.DurationBreakdown) > 0 {
		b.WriteString("  duration breakdown:\n")
		for _, stage := range statusStages {
			v, present := p.DurationBreakdown[stage]
			if !present {
				continue
			}
			pct := 0.0
			if p.ProcessingMicros > 0 {
				pct = 100 * float64(v) / float64(p.ProcessingMicros)
			}
			marker := ""
			if stage == p.BottleneckStage {
				marker = "  <- bottleneck"
			}
			fmt.Fprintf(&b, "    %-12s %12v %5.1f%%%s\n",
				stage, time.Duration(v)*time.Microsecond, pct, marker)
		}
	}
	if p.BackpressureDecision != "" {
		fmt.Fprintf(&b, "  backpressure: %s\n", p.BackpressureDecision)
	}
	for _, src := range p.Sources {
		fmt.Fprintf(&b, "  source %q: %d rows, offsets %v -> %v (read %v)\n",
			src.Name, src.NumInputRows, src.StartOffsets, src.EndOffsets,
			time.Duration(src.ReadMicros)*time.Microsecond)
	}
	if p.Sink != nil {
		fmt.Fprintf(&b, "  sink %s: %d rows (write %v)\n",
			p.Sink.Description, p.Sink.NumOutputRows, time.Duration(p.Sink.WriteMicros)*time.Microsecond)
	}
	for _, so := range p.StateOperators {
		fmt.Fprintf(&b, "  state %q: %d keys, %d bytes, cache %d/%d hit, %d deltas, %d snapshots\n",
			so.Operator, so.NumRowsTotal, so.StateBytes,
			so.CacheHits, so.CacheHits+so.CacheMisses, so.DeltasWritten, so.SnapshotsWritten)
	}
	if p.WatermarkMicros > 0 {
		fmt.Fprintf(&b, "  watermark: %dµs\n", p.WatermarkMicros)
	}
	return b.String()
}

// formatFrame renders one serving-hub frame for the :subscribe REPL
// command — a compact one-line summary per delivery.
func formatFrame(f serve.Frame) string {
	switch f.Kind {
	case serve.FrameHello:
		return fmt.Sprintf("[serve] hello: mode=%s cursor=%d schema=%v\n", f.Mode, f.Cursor, f.Schema)
	case serve.FrameEpoch:
		return fmt.Sprintf("[serve] epoch %d: %d rows (cursor %d)\n", f.Epoch, len(f.Rows), f.Cursor)
	case serve.FrameSnapshot:
		suffix := ""
		if f.Reset {
			suffix = " [reset: " + f.Reason + "]"
		}
		return fmt.Sprintf("[serve] snapshot: %d rows (cursor %d)%s\n", len(f.Rows), f.Cursor, suffix)
	case serve.FrameHeartbeat:
		return fmt.Sprintf("[serve] heartbeat (cursor %d)\n", f.Cursor)
	default: // evicted, shutdown
		return fmt.Sprintf("[serve] %s: %s (reconnect in ~%dms, resume with cursor=%d)\n",
			f.Kind, f.Reason, f.RetryMillis, f.Cursor)
	}
}

// formatMetrics renders a metric registry snapshot for the :metrics REPL
// command, one sorted `name value` line per metric (histograms appear as
// their derived .count/.p50/.p95/.p99/.max entries).
func formatMetrics(name string, snap map[string]int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "metrics for %q:\n", name)
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "  %-28s %d\n", k, snap[k])
	}
	return b.String()
}
