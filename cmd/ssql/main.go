// Command ssql runs a SQL query over JSON-lines files, in batch mode or as
// an incrementally maintained stream:
//
//	ssql -table events=./data -schema 'country string, latency double, time timestamp' \
//	     -query 'SELECT country, count(*) AS c FROM events GROUP BY country'
//
//	ssql -stream events=./incoming -schema '...' -mode complete -watch \
//	     -query 'SELECT country, count(*) FROM events GROUP BY country'
//
// With -watch the query keeps running: drop new files into the directory
// and each trigger prints the updated result, demonstrating the paper's
// §4.1 quickstart end to end.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	structream "structream"
	"structream/internal/sql"
)

func main() {
	var (
		tableFlag  = flag.String("table", "", "static input, name=dir (JSON-lines files)")
		streamFlag = flag.String("stream", "", "streaming input, name=dir (JSON-lines files)")
		schemaFlag = flag.String("schema", "", "input schema: 'col type, col type, ...'")
		query      = flag.String("query", "", "SQL query (required)")
		mode       = flag.String("mode", "complete", "output mode for streaming: append, update or complete")
		watch      = flag.Bool("watch", false, "keep running, re-triggering as new files arrive")
		interval   = flag.Duration("interval", time.Second, "trigger interval with -watch")
		checkpoint = flag.String("checkpoint", "", "checkpoint directory (streaming)")
	)
	flag.Parse()
	if *query == "" {
		fatal(fmt.Errorf("-query is required"))
	}

	s := structream.NewSession()
	schema, err := parseSchema(*schemaFlag)
	if err != nil {
		fatal(err)
	}
	streaming := false
	if *tableFlag != "" {
		name, dir, err := splitBinding(*tableFlag)
		if err != nil {
			fatal(err)
		}
		df, err := s.Read().Format("json").Schema(schema).Load(dir)
		if err != nil {
			fatal(err)
		}
		s.CreateView(name, df)
	}
	if *streamFlag != "" {
		name, dir, err := splitBinding(*streamFlag)
		if err != nil {
			fatal(err)
		}
		df, err := s.ReadStream().Format("json").Schema(schema).Option("name", name).Load(dir)
		if err != nil {
			fatal(err)
		}
		s.CreateView(name, df)
		streaming = true
	}

	df, err := s.SQL(*query)
	if err != nil {
		fatal(err)
	}

	if !streaming {
		if err := df.Show(os.Stdout, 100); err != nil {
			fatal(err)
		}
		return
	}

	outputMode := structream.Complete
	switch *mode {
	case "append":
		outputMode = structream.Append
	case "update":
		outputMode = structream.Update
	case "complete":
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	ckpt := *checkpoint
	if ckpt == "" {
		dir, err := os.MkdirTemp("", "ssql-ckpt-*")
		if err != nil {
			fatal(err)
		}
		ckpt = dir
	}
	trigger := structream.Once()
	if *watch {
		trigger = structream.ProcessingTime(*interval)
	}
	q, err := df.WriteStream().Format("console").OutputMode(outputMode).
		Trigger(trigger).Checkpoint(ckpt).Start("")
	if err != nil {
		fatal(err)
	}
	if !*watch {
		if err := q.AwaitTermination(); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Fprintf(os.Stderr, "ssql: watching; checkpoint at %s (Ctrl-C to stop)\n", ckpt)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	if err := q.Stop(); err != nil {
		fatal(err)
	}
}

// parseSchema parses "name type, name type, ...".
func parseSchema(s string) (structream.Schema, error) {
	if strings.TrimSpace(s) == "" {
		return structream.Schema{}, fmt.Errorf("-schema is required, e.g. 'country string, latency double'")
	}
	var fields []structream.Field
	for _, part := range strings.Split(s, ",") {
		tokens := strings.Fields(strings.TrimSpace(part))
		if len(tokens) != 2 {
			return structream.Schema{}, fmt.Errorf("bad schema column %q (want 'name type')", part)
		}
		typ, ok := sql.TypeByName(strings.ToLower(tokens[1]))
		if !ok {
			return structream.Schema{}, fmt.Errorf("unknown type %q for column %q", tokens[1], tokens[0])
		}
		fields = append(fields, structream.Field{Name: tokens[0], Type: typ})
	}
	return structream.NewSchema(fields...), nil
}

func splitBinding(s string) (name, dir string, err error) {
	i := strings.IndexByte(s, '=')
	if i <= 0 || i == len(s)-1 {
		return "", "", fmt.Errorf("bad binding %q (want name=dir)", s)
	}
	return s[:i], s[i+1:], nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ssql:", err)
	os.Exit(1)
}
