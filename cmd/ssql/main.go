// Command ssql runs a SQL query over JSON-lines files, in batch mode or as
// an incrementally maintained stream:
//
//	ssql -table events=./data -schema 'country string, latency double, time timestamp' \
//	     -query 'SELECT country, count(*) AS c FROM events GROUP BY country'
//
//	ssql -stream events=./incoming -schema '...' -mode complete -watch \
//	     -query 'SELECT country, count(*) FROM events GROUP BY country'
//
// With -watch the query keeps running: drop new files into the directory
// and each trigger prints the updated result, demonstrating the paper's
// §4.1 quickstart end to end. While watching, the process answers simple
// commands on stdin — `:status` pretty-prints the last QueryProgress
// (throughput, duration breakdown, bottleneck stage), `:metrics` dumps the
// metric registry, `:health` prints the health subsystem's report
// (detector signals, latency lineage, flight-recorder bundles),
// `:subscribe` attaches a live subscription to the
// query's serving hub and prints each committed epoch as a frame
// (`:unsubscribe` detaches), `:quit` stops — and -monitor ADDR
// additionally serves the §7.4 HTTP monitoring endpoint, including the
// hub's /queries/{name}/subscribe, /poll and /state routes.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	structream "structream"
	"structream/internal/serve"
	"structream/internal/sinks"
	"structream/internal/sql"
)

func main() {
	var (
		tableFlag  = flag.String("table", "", "static input, name=dir (JSON-lines files)")
		streamFlag = flag.String("stream", "", "streaming input, name=dir (JSON-lines files)")
		schemaFlag = flag.String("schema", "", "input schema: 'col type, col type, ...'")
		query      = flag.String("query", "", "SQL query (required)")
		mode       = flag.String("mode", "complete", "output mode for streaming: append, update or complete")
		watch      = flag.Bool("watch", false, "keep running, re-triggering as new files arrive")
		interval   = flag.Duration("interval", time.Second, "trigger interval with -watch")
		checkpoint = flag.String("checkpoint", "", "checkpoint directory (streaming)")
		monitorAt  = flag.String("monitor", "", "with -watch, serve the HTTP monitoring endpoint on this address (e.g. localhost:8080)")
		workers    = flag.Int("workers", 0, "run epochs on the partitioned parallel runtime with this many workers (>1)")
	)
	flag.Parse()
	if *query == "" {
		fatal(fmt.Errorf("-query is required"))
	}

	s := structream.NewSession()
	schema, err := parseSchema(*schemaFlag)
	if err != nil {
		fatal(err)
	}
	streaming := false
	if *tableFlag != "" {
		name, dir, err := splitBinding(*tableFlag)
		if err != nil {
			fatal(err)
		}
		df, err := s.Read().Format("json").Schema(schema).Load(dir)
		if err != nil {
			fatal(err)
		}
		s.CreateView(name, df)
	}
	if *streamFlag != "" {
		name, dir, err := splitBinding(*streamFlag)
		if err != nil {
			fatal(err)
		}
		df, err := s.ReadStream().Format("json").Schema(schema).Option("name", name).Load(dir)
		if err != nil {
			fatal(err)
		}
		s.CreateView(name, df)
		streaming = true
	}

	df, err := s.SQL(*query)
	if err != nil {
		fatal(err)
	}

	if !streaming {
		if err := df.Show(os.Stdout, 100); err != nil {
			fatal(err)
		}
		return
	}

	outputMode := structream.Complete
	switch *mode {
	case "append":
		outputMode = structream.Append
	case "update":
		outputMode = structream.Update
	case "complete":
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	ckpt := *checkpoint
	if ckpt == "" {
		dir, err := os.MkdirTemp("", "ssql-ckpt-*")
		if err != nil {
			fatal(err)
		}
		ckpt = dir
	}
	trigger := structream.Once()
	if *watch {
		trigger = structream.ProcessingTime(*interval)
	}
	w := df.WriteStream().OutputMode(outputMode).Trigger(trigger).Checkpoint(ckpt)
	if *workers > 1 {
		w.Option("workers", strconv.Itoa(*workers))
	}
	var live *sinks.MemorySink
	if *watch {
		// Tee console output into a retained memory sink so the query is
		// publishable: :subscribe locally, /subscribe under -monitor.
		live = sinks.NewMemorySink()
		live.SetRetention(64)
		w.Sink(sinks.NewTeeSink(sinks.NewConsoleSink(os.Stdout), live))
	} else {
		w.Format("console")
	}
	q, err := w.Start("")
	if err != nil {
		fatal(err)
	}
	if !*watch {
		if err := q.AwaitTermination(); err != nil {
			fatal(err)
		}
		return
	}
	hub := s.Publish(q, live, serve.HubOptions{})
	if *monitorAt != "" {
		m, err := s.Monitor(*monitorAt)
		if err != nil {
			fatal(err)
		}
		defer m.Close()
		fmt.Fprintf(os.Stderr, "ssql: monitoring at http://%s/queries; subscribe at /queries/%s/subscribe\n", m.Addr(), q.Name())
	}
	fmt.Fprintf(os.Stderr, "ssql: watching; checkpoint at %s (:status, :metrics, :health, :subscribe, :quit or Ctrl-C)\n", ckpt)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	watchREPL(q, hub, os.Stdin, os.Stdout, sig)
	if err := q.Stop(); err != nil {
		fatal(err)
	}
}

// watchREPL blocks until interrupted or told to :quit, answering :status
// and :metrics commands with the query's live observability data and
// :subscribe/:unsubscribe with a live frame stream from the serving hub.
func watchREPL(q *structream.StreamingQuery, hub *serve.Hub, in io.Reader, out io.Writer, sig <-chan os.Signal) {
	var (
		subCancel context.CancelFunc
		subDone   chan struct{}
	)
	unsubscribe := func() {
		if subCancel != nil {
			subCancel()
			<-subDone
			subCancel, subDone = nil, nil
		}
	}
	defer unsubscribe()
	lines := make(chan string)
	go func() {
		defer close(lines)
		sc := bufio.NewScanner(in)
		for sc.Scan() {
			lines <- sc.Text()
		}
	}()
	for {
		select {
		case <-sig:
			return
		case line, open := <-lines:
			if !open {
				// stdin closed (e.g. running under a pipe): keep watching
				// until the signal arrives.
				<-sig
				return
			}
			switch cmd := strings.TrimSpace(line); cmd {
			case "":
			case ":quit", ":q":
				return
			case ":status":
				p, ok := q.LastProgress()
				fmt.Fprint(out, formatStatus(q.Name(), q.Status().String(), p, ok))
			case ":metrics":
				fmt.Fprint(out, formatMetrics(q.Name(), q.Metrics().Snapshot()))
			case ":health":
				fmt.Fprint(out, formatHealth(q.Health().Health()))
			case ":subscribe", ":sub":
				if hub == nil {
					fmt.Fprintln(out, "no serving hub published for this query")
					break
				}
				if subCancel != nil {
					fmt.Fprintln(out, "already subscribed (:unsubscribe to detach)")
					break
				}
				sub, err := hub.Subscribe(serve.SubscribeOptions{Cursor: -1})
				if err != nil {
					fmt.Fprintf(out, "subscribe failed: %v\n", err)
					break
				}
				ctx, cancel := context.WithCancel(context.Background())
				done := make(chan struct{})
				subCancel, subDone = cancel, done
				go func() {
					defer close(done)
					defer sub.Close()
					for {
						f, err := sub.Next(ctx)
						if err != nil {
							if ctx.Err() == nil {
								fmt.Fprintf(out, "[serve] subscription ended: %v\n", err)
							}
							return
						}
						fmt.Fprint(out, formatFrame(f))
					}
				}()
				fmt.Fprintln(out, "subscribed: frames print as epochs commit (:unsubscribe to detach)")
			case ":unsubscribe", ":unsub":
				if subCancel == nil {
					fmt.Fprintln(out, "not subscribed")
					break
				}
				unsubscribe()
				fmt.Fprintln(out, "unsubscribed")
			default:
				fmt.Fprintf(out, "unknown command %q (try :status, :metrics, :health, :subscribe, :quit)\n", cmd)
			}
		}
	}
}

// parseSchema parses "name type, name type, ...".
func parseSchema(s string) (structream.Schema, error) {
	if strings.TrimSpace(s) == "" {
		return structream.Schema{}, fmt.Errorf("-schema is required, e.g. 'country string, latency double'")
	}
	var fields []structream.Field
	for _, part := range strings.Split(s, ",") {
		tokens := strings.Fields(strings.TrimSpace(part))
		if len(tokens) != 2 {
			return structream.Schema{}, fmt.Errorf("bad schema column %q (want 'name type')", part)
		}
		typ, ok := sql.TypeByName(strings.ToLower(tokens[1]))
		if !ok {
			return structream.Schema{}, fmt.Errorf("unknown type %q for column %q", tokens[1], tokens[0])
		}
		fields = append(fields, structream.Field{Name: tokens[0], Type: typ})
	}
	return structream.NewSchema(fields...), nil
}

func splitBinding(s string) (name, dir string, err error) {
	i := strings.IndexByte(s, '=')
	if i <= 0 || i == len(s)-1 {
		return "", "", fmt.Errorf("bad binding %q (want name=dir)", s)
	}
	return s[:i], s[i+1:], nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ssql:", err)
	os.Exit(1)
}
