package main

import (
	"os"
	"strings"
	"testing"
	"time"

	structream "structream"
	"structream/internal/health"
	"structream/internal/metrics"
)

func fixtureProgress() metrics.QueryProgress {
	return metrics.QueryProgress{
		Epoch:            4,
		NumInputRows:     1000,
		NumOutputRows:    970,
		InputRowsPerSec:  2500,
		OutputRowsPerSec: 2425,
		ProcessingMillis: 4,
		ProcessingMicros: 4000,
		DurationBreakdown: map[string]int64{
			"planning":    200,
			"getBatch":    600,
			"execution":   900,
			"stateCommit": 300,
			"walCommit":   400,
			"sinkCommit":  1600,
		},
		BottleneckStage:      "sinkCommit",
		BackpressureDecision: "cap 2000→500: epoch took 4ms > target 1ms; bottleneck sinkCommit",
		Sources: []metrics.SourceProgress{{
			Name:         "events",
			StartOffsets: []int64{10},
			EndOffsets:   []int64{20},
			NumInputRows: 1000,
			ReadMicros:   600,
		}},
		Sink: &metrics.SinkProgress{Description: "console", NumOutputRows: 970, WriteMicros: 1600},
		StateOperators: []metrics.StateOperatorProgress{{
			Operator: "stateAgg", NumRowsTotal: 97, StateBytes: 4096,
			CacheHits: 90, CacheMisses: 7, DeltasWritten: 4, SnapshotsWritten: 1,
		}},
		WatermarkMicros: 12345,
	}
}

func TestFormatStatus(t *testing.T) {
	got := formatStatus("q1", "Running", fixtureProgress(), true)
	for _, want := range []string{
		`query "q1": Running`,
		"epoch 4: 1000 rows in, 970 rows out (2500 in/s, 2425 out/s)",
		"processing time: 4ms",
		"duration breakdown:",
		"planning",
		"sinkCommit",
		"<- bottleneck",
		"backpressure: cap 2000→500",
		`source "events": 1000 rows, offsets [10] -> [20]`,
		"sink console: 970 rows",
		`state "stateAgg": 97 keys, 4096 bytes, cache 90/97 hit, 4 deltas, 1 snapshots`,
		"watermark: 12345µs",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("formatStatus missing %q:\n%s", want, got)
		}
	}
	// The bottleneck marker must sit on the sinkCommit line.
	for _, line := range strings.Split(got, "\n") {
		if strings.Contains(line, "<- bottleneck") && !strings.Contains(line, "sinkCommit") {
			t.Errorf("bottleneck marker on wrong line: %q", line)
		}
	}
	// Stages print in execution order.
	if strings.Index(got, "planning") > strings.Index(got, "sinkCommit") {
		t.Errorf("stages out of order:\n%s", got)
	}
}

func TestFormatStatusNoProgress(t *testing.T) {
	got := formatStatus("q1", "Running", metrics.QueryProgress{}, false)
	if !strings.Contains(got, "no epochs committed yet") {
		t.Errorf("formatStatus without progress:\n%s", got)
	}
}

func TestFormatMetrics(t *testing.T) {
	got := formatMetrics("q1", map[string]int64{
		"inputRows":    3,
		"epochs":       2,
		"epoch.us.p99": 840,
	})
	if !strings.Contains(got, `metrics for "q1":`) {
		t.Errorf("missing header:\n%s", got)
	}
	// Sorted output: epoch.us.p99 < epochs < inputRows.
	iP99 := strings.Index(got, "epoch.us.p99")
	iEpochs := strings.Index(got, "epochs")
	iRows := strings.Index(got, "inputRows")
	if iP99 < 0 || iEpochs < 0 || iRows < 0 || !(iP99 < iEpochs && iEpochs < iRows) {
		t.Errorf("metrics not sorted:\n%s", got)
	}
}

func TestFormatHealth(t *testing.T) {
	got := formatHealth(health.Report{
		Query:  "q1",
		Status: "anomalous",
		Signals: []health.SignalStatus{
			{Name: "epochLatencyUs", Last: 90000, Mean: 1200, Std: 300, Samples: 40, Trips: 1},
		},
		LastAnomaly: &health.Anomaly{
			Epoch: 38, Signal: "epochLatencyUs", Value: 90000, Mean: 1200, Std: 300,
			BundleID: "q1-1-1700000000000000",
		},
		Stamps: []health.Stamp{
			{Epoch: 38, IngestMicros: 1000, CommitMicros: 91000, DeliverMicros: 92000},
		},
		Partitions: []health.PartitionStat{{Stage: "map", Partition: 0, Rows: 500, Micros: 80000}},
		Bundles: []health.BundleInfo{{
			ID: "q1-1-1700000000000000", Signal: "epochLatencyUs", Epoch: 38, Files: 7, Bytes: 9000,
		}},
	})
	for _, want := range []string{
		`health for "q1": anomalous`,
		"epochLatencyUs",
		"last anomaly: epoch 38 epochLatencyUs=90000.0 (baseline 1200.0 ± 300.0) -> bundle q1-1-1700000000000000",
		"epoch 38: 90ms, 91ms",
		"partition map/0: 500 rows in 80ms",
		"bundle q1-1-1700000000000000: epochLatencyUs at epoch 38 (7 files, 9000 bytes)",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("formatHealth missing %q:\n%s", want, got)
		}
	}
	if got := formatHealth(health.Report{Status: "disabled"}); !strings.Contains(got, "health tracking is off") {
		t.Errorf("disabled report:\n%s", got)
	}
}

// TestWatchREPL drives the stdin command loop against a live query.
func TestWatchREPL(t *testing.T) {
	s := structream.NewSession()
	schema, err := parseSchema("country string, latency double")
	if err != nil {
		t.Fatal(err)
	}
	df, feed := s.MemoryStream("events", schema)
	q, err := df.SelectNames("country").WriteStream().
		QueryName("repl").
		Foreach(func(epoch int64, rows []structream.Row) error { return nil }).
		Trigger(structream.ProcessingTime(time.Hour)).
		Checkpoint(t.TempDir()).Start("")
	if err != nil {
		t.Fatal(err)
	}
	defer q.Stop()
	feed.AddData(structream.Row{"CA", 1.0}, structream.Row{"US", 2.0})
	if err := q.ProcessAllAvailable(); err != nil {
		t.Fatal(err)
	}

	in := strings.NewReader(":status\n:metrics\n:health\n:subscribe\nbogus\n:quit\n")
	var out strings.Builder
	sig := make(chan os.Signal)
	done := make(chan struct{})
	go func() {
		watchREPL(q, nil, in, &out, sig)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("watchREPL did not exit on :quit")
	}
	got := out.String()
	for _, want := range []string{
		`query "repl": Running`,
		"epoch 0: 2 rows in",
		"duration breakdown:",
		`metrics for "repl":`,
		"inputRows",
		`health for "repl": ok`,
		"signals (last / mean ± std, samples, trips):",
		"lineage (epoch: ingest->commit, end-to-end):",
		"no serving hub published",
		`unknown command "bogus"`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("REPL output missing %q:\n%s", want, got)
		}
	}
}
