package structream

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"structream/internal/metrics"
)

// getBody fetches a monitor URL and returns status code and body.
func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, body
}

// TestMonitorEndpoints drives the full §7.4 HTTP surface against a live
// query: query listing, progress (including the duration breakdown and
// per-source/sink sections), Chrome-format traces, and both metric
// renderings.
func TestMonitorEndpoints(t *testing.T) {
	s := NewSession()
	df, feed := s.MemoryStream("ev", clickSchema)
	q, err := df.SelectNames("country").WriteStream().
		QueryName("mon").
		Foreach(func(epoch int64, rows []Row) error { return nil }).
		Trigger(ProcessingTime(time.Hour)).Checkpoint(t.TempDir()).Start("")
	if err != nil {
		t.Fatal(err)
	}
	defer q.Stop()

	m, err := s.Monitor("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	base := "http://" + m.Addr()

	feed.AddData(Row{"CA", 1, 1.0, 0}, Row{"US", 2, 2.0, 0})
	if err := q.ProcessAllAvailable(); err != nil {
		t.Fatal(err)
	}
	feed.AddData(Row{"DE", 3, 3.0, 0})
	if err := q.ProcessAllAvailable(); err != nil {
		t.Fatal(err)
	}

	// ---- GET /queries
	code, body := getBody(t, base+"/queries")
	if code != http.StatusOK {
		t.Fatalf("/queries: status %d", code)
	}
	var listing []struct {
		Name         string                 `json:"name"`
		Status       string                 `json:"status"`
		Epochs       int64                  `json:"epochs"`
		LastProgress *metrics.QueryProgress `json:"lastProgress"`
	}
	if err := json.Unmarshal(body, &listing); err != nil {
		t.Fatalf("/queries: %v\n%s", err, body)
	}
	if len(listing) != 1 || listing[0].Name != "mon" {
		t.Fatalf("/queries: got %+v", listing)
	}
	if listing[0].Status != "Running" || listing[0].Epochs != 2 {
		t.Errorf("/queries: status=%s epochs=%d", listing[0].Status, listing[0].Epochs)
	}
	if listing[0].LastProgress == nil || listing[0].LastProgress.Epoch != 1 {
		t.Errorf("/queries: lastProgress %+v", listing[0].LastProgress)
	}

	// ---- GET /queries/{name}/progress
	code, body = getBody(t, base+"/queries/mon/progress?n=2")
	if code != http.StatusOK {
		t.Fatalf("/progress: status %d", code)
	}
	var events []metrics.QueryProgress
	if err := json.Unmarshal(body, &events); err != nil {
		t.Fatalf("/progress: %v\n%s", err, body)
	}
	if len(events) != 2 {
		t.Fatalf("/progress: got %d events", len(events))
	}
	first := events[0]
	if first.Epoch != 0 || first.NumInputRows != 2 {
		t.Errorf("/progress[0]: epoch=%d rows=%d", first.Epoch, first.NumInputRows)
	}
	for _, stage := range []string{"planning", "getBatch", "execution", "stateCommit", "walCommit", "sinkCommit"} {
		if _, ok := first.DurationBreakdown[stage]; !ok {
			t.Errorf("/progress: durationUs missing %q: %v", stage, first.DurationBreakdown)
		}
	}
	if len(first.Sources) != 1 || first.Sources[0].Name != "ev" || first.Sources[0].NumInputRows != 2 {
		t.Errorf("/progress: sources %+v", first.Sources)
	}
	if first.Sink == nil || first.Sink.Description != "foreach" {
		t.Errorf("/progress: sink %+v", first.Sink)
	}

	// ---- GET /queries/{name}/trace (Chrome trace_event format)
	code, body = getBody(t, base+"/queries/mon/trace")
	if code != http.StatusOK {
		t.Fatalf("/trace: status %d", code)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			TID  int64  `json:"tid"`
			Dur  int64  `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &chrome); err != nil {
		t.Fatalf("/trace: %v\n%s", err, body)
	}
	perEpoch := map[int64]map[string]bool{}
	for _, ev := range chrome.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("/trace: event %q has ph=%q, want X", ev.Name, ev.Ph)
		}
		if perEpoch[ev.TID] == nil {
			perEpoch[ev.TID] = map[string]bool{}
		}
		perEpoch[ev.TID][ev.Name] = true
	}
	if len(perEpoch) != 2 {
		t.Fatalf("/trace: got %d epochs, want 2", len(perEpoch))
	}
	for epoch, names := range perEpoch {
		for _, want := range []string{"epoch", "planning", "getBatch", "execution", "stateCommit", "walCommit", "sinkCommit"} {
			if !names[want] {
				t.Errorf("/trace: epoch %d missing span %q (has %v)", epoch, want, names)
			}
		}
	}

	// ---- JSON lines export
	code, body = getBody(t, base+"/queries/mon/trace?format=jsonl")
	if code != http.StatusOK || len(strings.Split(strings.TrimSpace(string(body)), "\n")) != 2 {
		t.Errorf("/trace?format=jsonl: status %d body %s", code, body)
	}

	// ---- GET /metrics (JSON and text)
	code, body = getBody(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	var metricsOut map[string]map[string]int64
	if err := json.Unmarshal(body, &metricsOut); err != nil {
		t.Fatalf("/metrics: %v\n%s", err, body)
	}
	mon := metricsOut["mon"]
	if mon == nil || mon["epochs"] != 2 || mon["inputRows"] != 3 {
		t.Errorf("/metrics: %v", mon)
	}
	if _, ok := mon["epoch.us.p99"]; !ok {
		t.Errorf("/metrics: missing epoch.us.p99 histogram percentile: %v", mon)
	}
	code, body = getBody(t, base+"/metrics?format=text")
	if code != http.StatusOK || !strings.Contains(string(body), `structream_epochs{query="mon"} 2`) {
		t.Errorf("/metrics?format=text: status %d\n%s", code, body)
	}
	if !strings.Contains(string(body), "# TYPE structream_epochs counter") {
		t.Errorf("/metrics?format=text: missing TYPE line for structream_epochs\n%s", body)
	}

	// ---- unknown query
	if code, _ := getBody(t, base+"/queries/nope/progress"); code != http.StatusNotFound {
		t.Errorf("unknown query: status %d, want 404", code)
	}
	if code, _ := getBody(t, base+"/queries/nope/trace"); code != http.StatusNotFound {
		t.Errorf("unknown trace: status %d, want 404", code)
	}
}

// TestMonitorSeesLaterQueries checks that a query started after the
// monitor is opened still shows up on the endpoint.
func TestMonitorSeesLaterQueries(t *testing.T) {
	s := NewSession()
	m, err := s.Monitor("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	df, feed := s.MemoryStream("ev", clickSchema)
	q, err := df.SelectNames("country").WriteStream().
		QueryName("late").
		Foreach(func(epoch int64, rows []Row) error { return nil }).
		Trigger(ProcessingTime(time.Hour)).Checkpoint(t.TempDir()).Start("")
	if err != nil {
		t.Fatal(err)
	}
	defer q.Stop()
	feed.AddData(Row{"CA", 1, 1.0, 0})
	if err := q.ProcessAllAvailable(); err != nil {
		t.Fatal(err)
	}

	code, body := getBody(t, fmt.Sprintf("http://%s/queries/late/progress", m.Addr()))
	if code != http.StatusOK {
		t.Fatalf("late query not visible: status %d body %s", code, body)
	}
	var events []metrics.QueryProgress
	if err := json.Unmarshal(body, &events); err != nil || len(events) != 1 {
		t.Fatalf("late query progress: err=%v events=%v", err, events)
	}
}

// TestMonitorExposesLSMStateStats drives a spilling LSM-backed aggregation
// and asserts its storage internals are observable from the outside: the
// stateOperators section of progress JSON carries backend, SSTable,
// compaction, and block-cache figures, and the metric registry (both
// /metrics renderings) carries the matching gauges.
func TestMonitorExposesLSMStateStats(t *testing.T) {
	s := NewSession()
	df, feed := s.MemoryStream("ev", clickSchema)
	q, err := df.GroupBy(Col("country")).Count().WriteStream().
		QueryName("lsmq").
		OutputModeName("update").
		Option("stateBackend", "lsm").
		Option("stateMemtableBytes", "512").
		Foreach(func(epoch int64, rows []Row) error { return nil }).
		Trigger(ProcessingTime(time.Hour)).Checkpoint(t.TempDir()).Start("")
	if err != nil {
		t.Fatal(err)
	}
	defer q.Stop()

	m, err := s.Monitor("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	base := "http://" + m.Addr()

	// Three epochs of 40 unique keys each — ~20× the memtable threshold.
	for e := 0; e < 3; e++ {
		rows := make([]Row, 40)
		for i := range rows {
			rows[i] = Row{fmt.Sprintf("c%03d", e*40+i), int64(i), 1.0, int64(0)}
		}
		feed.AddData(rows...)
		if err := q.ProcessAllAvailable(); err != nil {
			t.Fatal(err)
		}
	}

	// ---- progress JSON carries the stateOperators LSM section.
	code, body := getBody(t, base+"/queries/lsmq/progress")
	if code != http.StatusOK {
		t.Fatalf("/progress: status %d", code)
	}
	var events []metrics.QueryProgress
	if err := json.Unmarshal(body, &events); err != nil || len(events) == 0 {
		t.Fatalf("/progress: err=%v\n%s", err, body)
	}
	if len(events[0].StateOperators) == 0 {
		t.Fatalf("/progress: no stateOperators:\n%s", body)
	}
	so := events[0].StateOperators[0]
	if so.Backend != "lsm" {
		t.Errorf("/progress: backend = %q, want lsm", so.Backend)
	}
	if so.SSTables == 0 || so.SSTableBytes == 0 {
		t.Errorf("/progress: ssTables=%d ssTableBytes=%d, want both > 0", so.SSTables, so.SSTableBytes)
	}
	if so.BlockCacheHits+so.BlockCacheMisses == 0 {
		t.Error("/progress: block cache saw no traffic")
	}
	if !strings.Contains(string(body), "blockCacheHitRate") {
		t.Errorf("/progress: JSON missing blockCacheHitRate:\n%s", body)
	}

	// ---- both /metrics renderings carry the LSM gauges.
	code, body = getBody(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	var metricsOut map[string]map[string]int64
	if err := json.Unmarshal(body, &metricsOut); err != nil {
		t.Fatalf("/metrics: %v\n%s", err, body)
	}
	lq := metricsOut["lsmq"]
	if lq == nil || lq["stateSSTables"] == 0 {
		t.Errorf("/metrics: stateSSTables gauge missing or zero: %v", lq)
	}
	for _, g := range []string{"stateMemtableBytes", "stateSSTableBytes", "stateFlushes",
		"stateBlockCacheHits", "stateBlockCacheMisses",
		"stateFlushBacklog", "stateMaintenanceStallUs"} {
		if _, ok := lq[g]; !ok {
			t.Errorf("/metrics: missing gauge %q", g)
		}
	}
	code, body = getBody(t, base+"/metrics?format=text")
	if code != http.StatusOK || !strings.Contains(string(body), `structream_stateSSTables{query="lsmq"}`) {
		t.Errorf("/metrics?format=text: status %d, missing structream_stateSSTables\n%s", code, body)
	}
	for _, line := range []string{`structream_stateFlushBacklog{query="lsmq"}`, `structream_stateMaintenanceStallUs{query="lsmq"}`} {
		if !strings.Contains(string(body), line) {
			t.Errorf("/metrics?format=text: missing %s\n%s", line, body)
		}
	}
}
