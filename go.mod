module structream

go 1.22
