// Package trace implements span-based epoch tracing for streaming queries
// (§7.4 of the paper's monitoring surface, grown into a real tracing
// layer). Every epoch opens a root span; the engine attaches child spans
// for each execution stage — planning, source fetch, operator execution,
// state read/write, WAL commit, sink commit — so "where did this epoch's
// latency go?" has an answer after the fact. Finished epoch traces are
// retained in a bounded ring buffer and exportable as JSON lines or as
// Chrome trace_event JSON loadable in chrome://tracing / Perfetto.
//
// All types are nil-safe: a nil *Tracer hands out nil *EpochTrace and nil
// *Span values whose methods are no-ops, so disabling tracing is free and
// call sites never need nil checks.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Span is one timed section of an epoch. Spans form a tree under the
// epoch's root span. A span's wall-clock placement (Start) is real; its
// duration is either measured (Start/End) or attributed (AddCompleted),
// which is how aggregate stage costs from parallel tasks are recorded.
type Span struct {
	Name string `json:"name"`
	// StartMicros is the span's wall-clock start in Unix µs.
	StartMicros int64 `json:"startUs"`
	// DurationMicros is the span's duration in µs.
	DurationMicros int64 `json:"durUs"`
	// Attrs carries numeric span attributes (rows, bytes, task counts).
	Attrs    map[string]int64 `json:"attrs,omitempty"`
	Children []*Span          `json:"children,omitempty"`

	mu    sync.Mutex
	start time.Time // monotonic start for End()
	open  bool
}

// End closes a span started with StartSpan/Child, fixing its duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.open {
		s.DurationMicros = time.Since(s.start).Microseconds()
		s.open = false
	}
	s.mu.Unlock()
}

// SetAttr records a numeric attribute on the span.
func (s *Span) SetAttr(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.Attrs == nil {
		s.Attrs = map[string]int64{}
	}
	s.Attrs[key] = v
	s.mu.Unlock()
}

// Child starts a nested span under s.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	now := time.Now()
	c := &Span{Name: name, StartMicros: now.UnixMicro(), start: now, open: true}
	s.mu.Lock()
	s.Children = append(s.Children, c)
	s.mu.Unlock()
	return c
}

// AddCompleted attaches an already-measured child span (used to attribute
// aggregate stage costs, e.g. summed source-read time across parallel
// tasks, onto the tree without having wrapped each task).
func (s *Span) AddCompleted(name string, start time.Time, d time.Duration) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name, StartMicros: start.UnixMicro(), DurationMicros: d.Microseconds()}
	s.mu.Lock()
	s.Children = append(s.Children, c)
	s.mu.Unlock()
	return c
}

// clone deep-copies the span tree for race-free export while spans may
// still be mutated by a hung (abandoned) epoch goroutine.
func (s *Span) clone() *Span {
	s.mu.Lock()
	c := &Span{
		Name:           s.Name,
		StartMicros:    s.StartMicros,
		DurationMicros: s.DurationMicros,
	}
	if len(s.Attrs) > 0 {
		c.Attrs = make(map[string]int64, len(s.Attrs))
		for k, v := range s.Attrs {
			c.Attrs[k] = v
		}
	}
	children := append([]*Span(nil), s.Children...)
	s.mu.Unlock()
	for _, ch := range children {
		c.Children = append(c.Children, ch.clone())
	}
	return c
}

// EpochTrace is the span tree of one epoch.
type EpochTrace struct {
	Query string `json:"query"`
	Epoch int64  `json:"epoch"`
	// Mode is "microbatch" or "continuous".
	Mode string `json:"mode"`
	Root *Span  `json:"root"`

	tracer *Tracer
	mu     sync.Mutex
	stack  []*Span // open stage spans, innermost last
	done   bool
}

// StartSpan opens a stage span under the epoch's root and tracks it as the
// currently open stage (for OpenStage / watchdog verdicts).
func (t *EpochTrace) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	s := t.Root.Child(name)
	t.mu.Lock()
	t.stack = append(t.stack, s)
	t.mu.Unlock()
	return s
}

// EndSpan closes a stage span opened with StartSpan and pops it from the
// open-stage stack.
func (t *EpochTrace) EndSpan(s *Span) {
	if t == nil || s == nil {
		return
	}
	s.End()
	t.mu.Lock()
	for i := len(t.stack) - 1; i >= 0; i-- {
		if t.stack[i] == s {
			t.stack = append(t.stack[:i], t.stack[i+1:]...)
			break
		}
	}
	t.mu.Unlock()
}

// EndSpanWith closes a stage span like EndSpan but records an attributed
// duration instead of the measured wall time — used for fused stages
// (e.g. a map stage interleaving source reads with operator execution)
// where only a proportional share of the wall belongs to this stage name.
func (t *EpochTrace) EndSpanWith(s *Span, d time.Duration) {
	if t == nil || s == nil {
		return
	}
	s.mu.Lock()
	if s.open {
		s.DurationMicros = d.Microseconds()
		s.open = false
	}
	s.mu.Unlock()
	t.mu.Lock()
	for i := len(t.stack) - 1; i >= 0; i-- {
		if t.stack[i] == s {
			t.stack = append(t.stack[:i], t.stack[i+1:]...)
			break
		}
	}
	t.mu.Unlock()
}

// AddStage attaches an already-measured stage span under the root — how
// aggregate costs from parallel tasks (summed read time, worker sink time)
// are attributed onto the tree.
func (t *EpochTrace) AddStage(name string, start time.Time, d time.Duration) *Span {
	if t == nil {
		return nil
	}
	return t.Root.AddCompleted(name, start, d)
}

// OpenStage names the innermost stage span still open — for a hung epoch,
// the stage the watchdog should blame. Empty when nothing is open.
func (t *EpochTrace) OpenStage() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.stack) == 0 {
		return ""
	}
	return t.stack[len(t.stack)-1].Name
}

// SetAttr records an attribute on the epoch's root span.
func (t *EpochTrace) SetAttr(key string, v int64) {
	if t == nil {
		return
	}
	t.Root.SetAttr(key, v)
}

// Finish closes the root span and retains the trace in the tracer's ring
// buffer. Finishing twice is a no-op, so an abandoned epoch sealed by the
// watchdog is not double-recorded when its goroutine eventually returns.
func (t *EpochTrace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return
	}
	t.done = true
	t.mu.Unlock()
	t.Root.End()
	if t.tracer != nil {
		t.tracer.retain(t)
	}
}

// Tracer holds the bounded ring of finished epoch traces for one query.
type Tracer struct {
	query string

	mu     sync.Mutex
	ring   []*EpochTrace
	next   int
	filled bool
	inFly  *EpochTrace
}

// NewTracer creates a tracer retaining up to capacity finished epoch
// traces (default 256 when capacity <= 0).
func NewTracer(query string, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 256
	}
	return &Tracer{query: query, ring: make([]*EpochTrace, capacity)}
}

// StartEpoch opens the root span for an epoch and marks it in-flight.
func (tr *Tracer) StartEpoch(epoch int64, mode string) *EpochTrace {
	return tr.StartEpochAt(epoch, mode, time.Now())
}

// StartEpochAt opens an epoch whose root span is backdated to start — how
// the engine folds work that happened before the epoch body (offset
// planning) into the root span's extent.
func (tr *Tracer) StartEpochAt(epoch int64, mode string, start time.Time) *EpochTrace {
	if tr == nil {
		return nil
	}
	et := &EpochTrace{
		Query:  tr.query,
		Epoch:  epoch,
		Mode:   mode,
		Root:   &Span{Name: "epoch", StartMicros: start.UnixMicro(), start: start, open: true},
		tracer: tr,
	}
	tr.mu.Lock()
	tr.inFly = et
	tr.mu.Unlock()
	return et
}

// InFlight returns the epoch trace currently executing, if any — what the
// watchdog inspects when an epoch hangs.
func (tr *Tracer) InFlight() *EpochTrace {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.inFly
}

func (tr *Tracer) retain(et *EpochTrace) {
	tr.mu.Lock()
	tr.ring[tr.next] = et
	tr.next++
	if tr.next == len(tr.ring) {
		tr.next = 0
		tr.filled = true
	}
	if tr.inFly == et {
		tr.inFly = nil
	}
	tr.mu.Unlock()
}

// Epochs returns the retained traces, oldest first.
func (tr *Tracer) Epochs() []*EpochTrace {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	var out []*EpochTrace
	if tr.filled {
		out = append(out, tr.ring[tr.next:]...)
	}
	out = append(out, tr.ring[:tr.next]...)
	return out
}

// Epoch returns the retained trace for one epoch, if present.
func (tr *Tracer) Epoch(epoch int64) (*EpochTrace, bool) {
	for _, et := range tr.Epochs() {
		if et.Epoch == epoch {
			return et, true
		}
	}
	return nil, false
}

// snapshot deep-copies a trace for export.
func (t *EpochTrace) snapshot() *EpochTrace {
	return &EpochTrace{Query: t.Query, Epoch: t.Epoch, Mode: t.Mode, Root: t.Root.clone()}
}

// WriteJSON exports the retained traces as JSON lines, one epoch per line,
// oldest first.
func (tr *Tracer) WriteJSON(w io.Writer) error {
	for _, et := range tr.Epochs() {
		data, err := json.Marshal(et.snapshot())
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s\n", data); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one trace_event record ("X" = complete event).
type chromeEvent struct {
	Name string           `json:"name"`
	Ph   string           `json:"ph"`
	TS   int64            `json:"ts"`
	Dur  int64            `json:"dur"`
	PID  int              `json:"pid"`
	TID  int64            `json:"tid"`
	Args map[string]int64 `json:"args,omitempty"`
}

// WriteChrome exports the retained traces in Chrome trace_event format:
// {"traceEvents": [...]} with one "X" (complete) event per span, the epoch
// number as the thread id so chrome://tracing lays epochs out as rows.
func (tr *Tracer) WriteChrome(w io.Writer) error {
	var events []chromeEvent
	for _, et := range tr.Epochs() {
		snap := et.snapshot()
		var walk func(s *Span)
		walk = func(s *Span) {
			ev := chromeEvent{
				Name: s.Name,
				Ph:   "X",
				TS:   s.StartMicros,
				Dur:  s.DurationMicros,
				PID:  1,
				TID:  snap.Epoch,
				Args: s.Attrs,
			}
			if ev.Dur <= 0 {
				ev.Dur = 1 // zero-width spans vanish in the viewer
			}
			events = append(events, ev)
			for _, c := range s.Children {
				walk(c)
			}
		}
		walk(snap.Root)
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].TID != events[j].TID {
			return events[i].TID < events[j].TID
		}
		return events[i].TS < events[j].TS
	})
	out := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: events}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
