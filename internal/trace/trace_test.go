package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeAndOpenStage(t *testing.T) {
	tr := NewTracer("q", 8)
	et := tr.StartEpoch(3, "microbatch")
	if got := tr.InFlight(); got != et {
		t.Fatalf("InFlight = %v, want the started epoch", got)
	}

	plan := et.StartSpan("planning")
	if got := et.OpenStage(); got != "planning" {
		t.Errorf("OpenStage = %q, want planning", got)
	}
	et.EndSpan(plan)

	fetch := et.StartSpan("getBatch")
	fetch.SetAttr("rows", 42)
	child := fetch.Child("source:events")
	child.End()
	if got := et.OpenStage(); got != "getBatch" {
		t.Errorf("OpenStage = %q, want getBatch", got)
	}
	et.EndSpan(fetch)
	if got := et.OpenStage(); got != "" {
		t.Errorf("OpenStage after all ends = %q, want empty", got)
	}
	et.AddStage("sinkCommit", time.Now(), 5*time.Millisecond)
	et.Finish()

	if tr.InFlight() != nil {
		t.Error("InFlight should clear after Finish")
	}
	got, ok := tr.Epoch(3)
	if !ok {
		t.Fatal("epoch 3 not retained")
	}
	names := map[string]bool{}
	for _, c := range got.Root.Children {
		names[c.Name] = true
	}
	for _, want := range []string{"planning", "getBatch", "sinkCommit"} {
		if !names[want] {
			t.Errorf("missing child span %q (have %v)", want, got.Root.Children)
		}
	}
	if got.Root.DurationMicros < 0 {
		t.Errorf("root duration = %d", got.Root.DurationMicros)
	}
}

func TestFinishIsIdempotent(t *testing.T) {
	tr := NewTracer("q", 4)
	et := tr.StartEpoch(0, "microbatch")
	et.Finish()
	et.Finish()
	if n := len(tr.Epochs()); n != 1 {
		t.Fatalf("double Finish retained %d traces, want 1", n)
	}
}

func TestRingBufferBounds(t *testing.T) {
	tr := NewTracer("q", 4)
	for i := int64(0); i < 10; i++ {
		et := tr.StartEpoch(i, "microbatch")
		et.Finish()
	}
	eps := tr.Epochs()
	if len(eps) != 4 {
		t.Fatalf("retained %d, want 4", len(eps))
	}
	for i, et := range eps {
		if want := int64(6 + i); et.Epoch != want {
			t.Errorf("ring[%d] = epoch %d, want %d (oldest first)", i, et.Epoch, want)
		}
	}
	if _, ok := tr.Epoch(2); ok {
		t.Error("evicted epoch 2 still retrievable")
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	et := tr.StartEpoch(1, "continuous")
	if et != nil {
		t.Fatal("nil tracer must hand out nil epoch traces")
	}
	sp := et.StartSpan("planning")
	sp.SetAttr("rows", 1)
	sp.Child("x").End()
	et.EndSpan(sp)
	et.AddStage("y", time.Now(), time.Second)
	et.SetAttr("k", 1)
	if et.OpenStage() != "" {
		t.Error("nil OpenStage should be empty")
	}
	et.Finish()
	if tr.Epochs() != nil || tr.InFlight() != nil {
		t.Error("nil tracer accessors should return zero values")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestWriteJSONLines(t *testing.T) {
	tr := NewTracer("orders", 8)
	for i := int64(0); i < 3; i++ {
		et := tr.StartEpoch(i, "microbatch")
		et.StartSpan("planning").End()
		et.Finish()
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	for i, line := range lines {
		var et struct {
			Query string `json:"query"`
			Epoch int64  `json:"epoch"`
			Root  *Span  `json:"root"`
		}
		if err := json.Unmarshal([]byte(line), &et); err != nil {
			t.Fatalf("line %d not valid JSON: %v", i, err)
		}
		if et.Query != "orders" || et.Epoch != int64(i) || et.Root == nil {
			t.Errorf("line %d = %+v", i, et)
		}
	}
}

func TestWriteChromeFormat(t *testing.T) {
	tr := NewTracer("q", 8)
	et := tr.StartEpoch(7, "microbatch")
	sp := et.StartSpan("getBatch")
	sp.SetAttr("rows", 10)
	time.Sleep(time.Millisecond)
	et.EndSpan(sp)
	et.Finish()

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string           `json:"name"`
			Ph   string           `json:"ph"`
			TS   int64            `json:"ts"`
			Dur  int64            `json:"dur"`
			TID  int64            `json:"tid"`
			Args map[string]int64 `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.TraceEvents) != 2 { // root + getBatch
		t.Fatalf("got %d events, want 2", len(out.TraceEvents))
	}
	var sawFetch bool
	for _, ev := range out.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %q ph = %q, want X", ev.Name, ev.Ph)
		}
		if ev.TID != 7 {
			t.Errorf("event %q tid = %d, want epoch 7", ev.Name, ev.TID)
		}
		if ev.Dur <= 0 || ev.TS <= 0 {
			t.Errorf("event %q has ts=%d dur=%d", ev.Name, ev.TS, ev.Dur)
		}
		if ev.Name == "getBatch" {
			sawFetch = true
			if ev.Args["rows"] != 10 {
				t.Errorf("getBatch args = %v", ev.Args)
			}
		}
	}
	if !sawFetch {
		t.Error("no getBatch event")
	}
}

// TestConcurrentSpans: continuous-mode workers attach spans to the same
// epoch concurrently; must be race-free (run with -race).
func TestConcurrentSpans(t *testing.T) {
	tr := NewTracer("q", 16)
	et := tr.StartEpoch(0, "continuous")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sp := et.StartSpan("read")
				sp.SetAttr("i", int64(i))
				et.EndSpan(sp)
			}
		}()
	}
	var exporters sync.WaitGroup
	exporters.Add(1)
	go func() {
		defer exporters.Done()
		for i := 0; i < 20; i++ {
			var buf bytes.Buffer
			_ = tr.WriteChrome(&buf)
		}
	}()
	wg.Wait()
	et.Finish()
	exporters.Wait()
	got, _ := tr.Epoch(0)
	if len(got.Root.Children) != 800 {
		t.Fatalf("children = %d, want 800", len(got.Root.Children))
	}
}
