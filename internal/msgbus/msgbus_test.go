package msgbus

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func newTopic(t *testing.T, parts int) *Topic {
	t.Helper()
	b := NewBroker()
	topic, err := b.CreateTopic("test", parts)
	if err != nil {
		t.Fatal(err)
	}
	return topic
}

func TestAppendFetch(t *testing.T) {
	topic := newTopic(t, 1)
	first, err := topic.Append(0,
		Record{Value: []byte("a"), Timestamp: 1},
		Record{Value: []byte("b"), Timestamp: 2},
	)
	if err != nil || first != 0 {
		t.Fatalf("first=%d err=%v", first, err)
	}
	recs, next, err := topic.Fetch(0, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || next != 2 {
		t.Fatalf("recs=%v next=%d", recs, next)
	}
	if recs[0].Offset != 0 || recs[1].Offset != 1 {
		t.Errorf("offsets = %d, %d", recs[0].Offset, recs[1].Offset)
	}
	if string(recs[0].Value) != "a" {
		t.Errorf("value = %q", recs[0].Value)
	}
}

func TestFetchAtHeadReturnsEmpty(t *testing.T) {
	topic := newTopic(t, 1)
	recs, next, err := topic.Fetch(0, 0, 10)
	if err != nil || len(recs) != 0 || next != 0 {
		t.Fatalf("recs=%v next=%d err=%v", recs, next, err)
	}
}

func TestFetchMaxRecords(t *testing.T) {
	topic := newTopic(t, 1)
	for i := 0; i < 10; i++ {
		topic.Append(0, Record{Value: []byte{byte(i)}})
	}
	recs, next, err := topic.Fetch(0, 0, 3)
	if err != nil || len(recs) != 3 || next != 3 {
		t.Fatalf("recs=%d next=%d err=%v", len(recs), next, err)
	}
	recs, next, _ = topic.Fetch(0, next, 100)
	if len(recs) != 7 || next != 10 {
		t.Fatalf("second fetch: %d next=%d", len(recs), next)
	}
}

func TestReplayability(t *testing.T) {
	// The core property the engine relies on: the same offset range always
	// returns the same records.
	topic := newTopic(t, 1)
	for i := 0; i < 100; i++ {
		topic.Append(0, Record{Value: []byte(fmt.Sprint(i))})
	}
	a, _ := topic.FetchRange(0, 10, 20)
	b, _ := topic.FetchRange(0, 10, 20)
	if len(a) != 10 || len(b) != 10 {
		t.Fatalf("lens %d %d", len(a), len(b))
	}
	for i := range a {
		if string(a[i].Value) != string(b[i].Value) || a[i].Offset != b[i].Offset {
			t.Fatalf("replay mismatch at %d", i)
		}
	}
}

func TestProduceKeyRouting(t *testing.T) {
	topic := newTopic(t, 4)
	// The same key always lands in the same partition.
	p1, _, _ := topic.Produce([]byte("user-1"), []byte("x"), 0)
	p2, _, _ := topic.Produce([]byte("user-1"), []byte("y"), 0)
	if p1 != p2 {
		t.Errorf("same key routed to %d then %d", p1, p2)
	}
	// Keyless produce round-robins over all partitions.
	seen := map[int]bool{}
	for i := 0; i < 8; i++ {
		p, _, _ := topic.Produce(nil, []byte("z"), 0)
		seen[p] = true
	}
	if len(seen) != 4 {
		t.Errorf("round robin covered %d of 4 partitions", len(seen))
	}
}

func TestRetentionTrim(t *testing.T) {
	topic := newTopic(t, 1)
	for i := 0; i < 10; i++ {
		topic.Append(0, Record{Value: []byte{byte(i)}})
	}
	if err := topic.TrimBefore(0, 4); err != nil {
		t.Fatal(err)
	}
	if got := topic.EarliestOffsets()[0]; got != 4 {
		t.Errorf("earliest = %d", got)
	}
	// Reading below the earliest offset errors like Kafka.
	_, _, err := topic.Fetch(0, 2, 10)
	var oor *ErrOffsetOutOfRange
	if err == nil {
		t.Fatal("expected offset-out-of-range error")
	}
	if ok := asOOR(err, &oor); !ok || oor.Earliest != 4 {
		t.Errorf("err = %v", err)
	}
	// Offsets are stable across trims.
	recs, _, err := topic.Fetch(0, 4, 1)
	if err != nil || recs[0].Value[0] != 4 {
		t.Errorf("record at 4 = %v err=%v", recs, err)
	}
	// Trimming past the head clamps.
	if err := topic.TrimBefore(0, 99); err != nil {
		t.Fatal(err)
	}
	if got := topic.EarliestOffsets()[0]; got != 10 {
		t.Errorf("earliest after over-trim = %d", got)
	}
}

func asOOR(err error, out **ErrOffsetOutOfRange) bool {
	e, ok := err.(*ErrOffsetOutOfRange)
	if ok {
		*out = e
	}
	return ok
}

func TestLatestOffsets(t *testing.T) {
	topic := newTopic(t, 2)
	topic.Append(0, Record{}, Record{})
	topic.Append(1, Record{})
	latest := topic.LatestOffsets()
	if latest[0] != 2 || latest[1] != 1 {
		t.Errorf("latest = %v", latest)
	}
}

func TestWaitForData(t *testing.T) {
	topic := newTopic(t, 1)
	if topic.WaitForData(0, 0, 10*time.Millisecond) {
		t.Error("wait should time out on empty partition")
	}
	done := make(chan bool, 1)
	go func() {
		done <- topic.WaitForData(0, 0, 2*time.Second)
	}()
	time.Sleep(5 * time.Millisecond)
	topic.Append(0, Record{Value: []byte("x")})
	select {
	case ok := <-done:
		if !ok {
			t.Error("wait should succeed after append")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("wait did not wake up")
	}
}

func TestConcurrentProducers(t *testing.T) {
	topic := newTopic(t, 4)
	const producers, each = 8, 500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, _, err := topic.Produce([]byte(fmt.Sprint(id)), []byte("v"), int64(i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	if got := topic.TotalRecords(); got != producers*each {
		t.Errorf("total = %d, want %d", got, producers*each)
	}
	// Offsets within each partition must be dense and unique.
	for part := 0; part < 4; part++ {
		recs, _, err := topic.Fetch(part, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		recs2, _, _ := topic.Fetch(part, 0, producers*each)
		if len(recs) != 0 && len(recs2) == 0 {
			t.Fatal("fetch inconsistency")
		}
		for i, r := range recs2 {
			if r.Offset != int64(i) {
				t.Fatalf("partition %d offset %d at index %d", part, r.Offset, i)
			}
		}
	}
}

func TestTopicErrors(t *testing.T) {
	b := NewBroker()
	if _, err := b.CreateTopic("bad", 0); err == nil {
		t.Error("zero partitions should error")
	}
	topic, _ := b.CreateTopic("t", 2)
	if _, err := b.CreateTopic("t", 2); err != nil {
		t.Errorf("idempotent create failed: %v", err)
	}
	if _, err := b.CreateTopic("t", 3); err == nil {
		t.Error("repartition should error")
	}
	if _, err := topic.Append(5, Record{}); err == nil {
		t.Error("bad partition append should error")
	}
	if _, _, err := topic.Fetch(5, 0, 1); err == nil {
		t.Error("bad partition fetch should error")
	}
	if _, err := topic.FetchRange(0, 5, 2); err == nil {
		t.Error("inverted range should error")
	}
	if _, ok := b.Topic("missing"); ok {
		t.Error("missing topic lookup should fail")
	}
}

func TestDeleteTopic(t *testing.T) {
	b := NewBroker()
	b.CreateTopic("t", 1)
	b.DeleteTopic("t")
	if _, ok := b.Topic("t"); ok {
		t.Error("topic should be deleted")
	}
	if got := len(b.Topics()); got != 0 {
		t.Errorf("topics = %d", got)
	}
}

func BenchmarkProduceFetch(b *testing.B) {
	broker := NewBroker()
	topic, _ := broker.CreateTopic("bench", 4)
	payload := make([]byte, 64)
	b.ReportAllocs()
	b.SetBytes(64)
	var off int64
	for i := 0; i < b.N; i++ {
		if _, _, err := topic.Produce(nil, payload, 0); err != nil {
			b.Fatal(err)
		}
		if i%1024 == 0 {
			for p := 0; p < 4; p++ {
				recs, next, err := topic.Fetch(p, off/4, 1024)
				if err != nil {
					b.Fatal(err)
				}
				_ = recs
				_ = next
			}
			off += 1024
		}
	}
}

func TestInjectFetchFault(t *testing.T) {
	topic := newTopic(t, 1)
	if _, err := topic.Append(0, Record{Value: []byte("a")}); err != nil {
		t.Fatal(err)
	}
	injected := fmt.Errorf("flaky broker connection")
	var calls int
	topic.InjectFetchFault(func(part int, from int64) error {
		calls++
		if calls <= 2 {
			return injected
		}
		return nil
	})
	for i := 0; i < 2; i++ {
		if _, _, err := topic.Fetch(0, 0, 10); err != injected {
			t.Fatalf("fetch %d err = %v, want injected fault", i, err)
		}
	}
	recs, _, err := topic.Fetch(0, 0, 10)
	if err != nil || len(recs) != 1 {
		t.Fatalf("after fault budget: recs=%v err=%v", recs, err)
	}
	// nil removes the hook.
	topic.InjectFetchFault(nil)
	if _, _, err := topic.Fetch(0, 0, 10); err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Errorf("hook consulted %d times, want 3", calls)
	}
}
