// Package msgbus implements an in-process, partitioned, replayable message
// bus — the engine's stand-in for Apache Kafka or Amazon Kinesis. It
// provides exactly the properties Structured Streaming requires of an input
// source (§3, §6.1 of the paper): topics divided into ordered partitions,
// offset-addressed reads so any epoch can be re-read after a failure, and
// bounded retention with explicit earliest offsets so rollback limits are
// observable. Producers and the broker are safe for concurrent use.
package msgbus

import (
	"fmt"
	"hash/fnv"
	"sync"
	"time"
)

// Record is one message in a partition. Offset is assigned by the broker at
// append time; Timestamp is the event time in µs carried with the record.
type Record struct {
	Offset    int64
	Timestamp int64
	Key       []byte
	Value     []byte
}

// Broker holds a set of topics.
type Broker struct {
	mu     sync.RWMutex
	topics map[string]*Topic
}

// NewBroker creates an empty broker.
func NewBroker() *Broker {
	return &Broker{topics: map[string]*Topic{}}
}

// CreateTopic creates a topic with the given partition count. Creating an
// existing topic with the same partition count is a no-op; with a different
// count it errors (repartitioning is not supported, as in Kafka).
func (b *Broker) CreateTopic(name string, partitions int) (*Topic, error) {
	if partitions <= 0 {
		return nil, fmt.Errorf("msgbus: topic %q needs at least one partition", name)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if t, ok := b.topics[name]; ok {
		if len(t.parts) != partitions {
			return nil, fmt.Errorf("msgbus: topic %q already exists with %d partitions", name, len(t.parts))
		}
		return t, nil
	}
	t := &Topic{name: name, parts: make([]*partition, partitions)}
	for i := range t.parts {
		t.parts[i] = &partition{notify: make(chan struct{})}
	}
	b.topics[name] = t
	return t, nil
}

// Topic returns a topic by name.
func (b *Broker) Topic(name string) (*Topic, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	t, ok := b.topics[name]
	return t, ok
}

// DeleteTopic removes a topic entirely.
func (b *Broker) DeleteTopic(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.topics, name)
}

// Topics lists topic names.
func (b *Broker) Topics() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]string, 0, len(b.topics))
	for name := range b.topics {
		out = append(out, name)
	}
	return out
}

// Topic is a named, partitioned log.
type Topic struct {
	name  string
	parts []*partition
	rr    int64 // round-robin counter for keyless produce
	rrMu  sync.Mutex

	faultMu    sync.Mutex
	fetchFault func(part int, from int64) error
}

// partition is one ordered log segment.
type partition struct {
	mu      sync.Mutex
	records []Record
	base    int64 // offset of records[0]; earlier records were trimmed
	next    int64 // next offset to assign
	notify  chan struct{}
}

// Name returns the topic name.
func (t *Topic) Name() string { return t.name }

// Partitions returns the partition count.
func (t *Topic) Partitions() int { return len(t.parts) }

// Append appends records to a specific partition, assigning offsets. It
// returns the offset of the first appended record.
func (t *Topic) Append(part int, recs ...Record) (int64, error) {
	if part < 0 || part >= len(t.parts) {
		return 0, fmt.Errorf("msgbus: partition %d out of range for topic %q", part, t.name)
	}
	p := t.parts[part]
	p.mu.Lock()
	first := p.next
	for i := range recs {
		recs[i].Offset = p.next
		p.next++
	}
	p.records = append(p.records, recs...)
	close(p.notify)
	p.notify = make(chan struct{})
	p.mu.Unlock()
	return first, nil
}

// Produce routes one record to a partition — by key hash when a key is
// present, round-robin otherwise — and appends it.
func (t *Topic) Produce(key, value []byte, timestamp int64) (partIdx int, offset int64, err error) {
	if len(key) > 0 {
		h := fnv.New32a()
		h.Write(key)
		partIdx = int(h.Sum32() % uint32(len(t.parts)))
	} else {
		t.rrMu.Lock()
		partIdx = int(t.rr % int64(len(t.parts)))
		t.rr++
		t.rrMu.Unlock()
	}
	offset, err = t.Append(partIdx, Record{Timestamp: timestamp, Key: key, Value: value})
	return partIdx, offset, err
}

// ErrOffsetOutOfRange is returned when a fetch asks for data that was
// trimmed by retention — the situation that bounds manual rollback (§7.2).
type ErrOffsetOutOfRange struct {
	Topic     string
	Partition int
	Requested int64
	Earliest  int64
}

// Error implements error.
func (e *ErrOffsetOutOfRange) Error() string {
	return fmt.Sprintf("msgbus: offset %d out of range for %s[%d] (earliest retained %d)",
		e.Requested, e.Topic, e.Partition, e.Earliest)
}

// InjectFetchFault installs a hook consulted before every Fetch: when it
// returns non-nil, the fetch fails with that error instead of reading.
// Chaos tests use it to model a flaky broker connection; nil removes the
// hook. Fetches are retried by the engine's transient-I/O path when the
// injected error is transient.
func (t *Topic) InjectFetchFault(fn func(part int, from int64) error) {
	t.faultMu.Lock()
	defer t.faultMu.Unlock()
	t.fetchFault = fn
}

// Fetch reads up to maxRecords from a partition starting at offset. It
// returns the records and the offset to resume from. Reading at the head
// returns an empty slice. Reading below the earliest retained offset
// returns ErrOffsetOutOfRange.
func (t *Topic) Fetch(part int, offset int64, maxRecords int) ([]Record, int64, error) {
	if part < 0 || part >= len(t.parts) {
		return nil, 0, fmt.Errorf("msgbus: partition %d out of range for topic %q", part, t.name)
	}
	t.faultMu.Lock()
	fault := t.fetchFault
	t.faultMu.Unlock()
	if fault != nil {
		if err := fault(part, offset); err != nil {
			return nil, 0, err
		}
	}
	p := t.parts[part]
	p.mu.Lock()
	defer p.mu.Unlock()
	if offset < p.base {
		return nil, 0, &ErrOffsetOutOfRange{Topic: t.name, Partition: part, Requested: offset, Earliest: p.base}
	}
	if offset >= p.next {
		return nil, offset, nil
	}
	start := int(offset - p.base)
	end := len(p.records)
	if maxRecords > 0 && start+maxRecords < end {
		end = start + maxRecords
	}
	out := make([]Record, end-start)
	copy(out, p.records[start:end])
	return out, p.base + int64(end), nil
}

// FetchRange reads records with offsets in [from, to).
func (t *Topic) FetchRange(part int, from, to int64) ([]Record, error) {
	if to < from {
		return nil, fmt.Errorf("msgbus: bad range [%d, %d)", from, to)
	}
	recs, _, err := t.Fetch(part, from, int(to-from))
	return recs, err
}

// LatestOffsets returns, per partition, the offset one past the last record
// (the offset the next produced record will get).
func (t *Topic) LatestOffsets() []int64 {
	out := make([]int64, len(t.parts))
	for i, p := range t.parts {
		p.mu.Lock()
		out[i] = p.next
		p.mu.Unlock()
	}
	return out
}

// EarliestOffsets returns, per partition, the earliest retained offset.
func (t *Topic) EarliestOffsets() []int64 {
	out := make([]int64, len(t.parts))
	for i, p := range t.parts {
		p.mu.Lock()
		out[i] = p.base
		p.mu.Unlock()
	}
	return out
}

// TrimBefore drops records with offsets below keep in one partition,
// simulating retention expiry.
func (t *Topic) TrimBefore(part int, keep int64) error {
	if part < 0 || part >= len(t.parts) {
		return fmt.Errorf("msgbus: partition %d out of range", part)
	}
	p := t.parts[part]
	p.mu.Lock()
	defer p.mu.Unlock()
	if keep <= p.base {
		return nil
	}
	if keep > p.next {
		keep = p.next
	}
	drop := int(keep - p.base)
	p.records = append([]Record(nil), p.records[drop:]...)
	p.base = keep
	return nil
}

// WaitForData blocks until the partition holds data at or past offset, or
// the timeout elapses. It reports whether data is available.
func (t *Topic) WaitForData(part int, offset int64, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		p := t.parts[part]
		p.mu.Lock()
		if offset < p.next {
			p.mu.Unlock()
			return true
		}
		ch := p.notify
		p.mu.Unlock()
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return false
		}
		timer := time.NewTimer(remaining)
		select {
		case <-ch:
			timer.Stop()
		case <-timer.C:
			return false
		}
	}
}

// TotalRecords reports the number of retained records across partitions,
// for monitoring and tests.
func (t *Topic) TotalRecords() int64 {
	var n int64
	for _, p := range t.parts {
		p.mu.Lock()
		n += int64(len(p.records))
		p.mu.Unlock()
	}
	return n
}
