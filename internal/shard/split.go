package shard

// Split divides the offset range [from, to) into at most n contiguous
// sub-ranges of near-equal size, none smaller than minPerShard records
// (except the only shard of a tiny range). The split is a pure function
// of its arguments: an epoch replayed with the same offsets and worker
// count produces the identical shard plan, and concatenating the shards
// in order reproduces the original range exactly — which is what keeps
// N-worker output byte-identical to the single-worker run.
func Split(from, to int64, n int, minPerShard int64) [][2]int64 {
	total := to - from
	if total <= 0 {
		return nil
	}
	if n < 1 {
		n = 1
	}
	if minPerShard < 1 {
		minPerShard = 1
	}
	count := int64(n)
	if maxShards := (total + minPerShard - 1) / minPerShard; maxShards < count {
		count = maxShards
	}
	out := make([][2]int64, 0, count)
	for i := int64(0); i < count; i++ {
		lo, hi := Range(from, to, int(i), int(count))
		out = append(out, [2]int64{lo, hi})
	}
	return out
}

// Range returns the n-th of `of` contiguous near-equal slices of the
// offset range [from, to) — the single shared definition of shard
// boundaries. Split is built on it, and sources implementing
// sources.PartitionReader use it to compute their slice independently,
// so a worker fetching slice n and an engine concatenating slices
// 0..of-1 always agree. The first (to-from) mod of slices are one record
// longer.
func Range(from, to int64, n, of int) (lo, hi int64) {
	total := to - from
	if total < 0 {
		total = 0
	}
	if of < 1 {
		of = 1
	}
	base, rem := total/int64(of), total%int64(of)
	i := int64(n)
	lo = from + i*base
	if i < rem {
		lo += i
	} else {
		lo += rem
	}
	hi = lo + base
	if i < rem {
		hi++
	}
	return lo, hi
}
