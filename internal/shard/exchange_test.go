package shard

import (
	"math/rand"
	"reflect"
	"testing"

	"structream/internal/sql"
	"structream/internal/sql/codec"
	"structream/internal/sql/physical"
	"structream/internal/sql/vec"
)

// exchangeSchema exercises every vector kind the shuffle can route on:
// int64 (also timestamps), float64, string, bool — plus a window column
// built by hand below.
var exchangeSchema = sql.NewSchema(
	sql.Field{Name: "k", Type: sql.TypeInt64},
	sql.Field{Name: "s", Type: sql.TypeString},
	sql.Field{Name: "f", Type: sql.TypeFloat64},
	sql.Field{Name: "b", Type: sql.TypeBool},
)

// fuzzBatch builds a batch of n rows with nulls sprinkled into every
// column.
func fuzzBatch(t *testing.T, rng *rand.Rand, n int) *vec.Batch {
	t.Helper()
	rows := make([]sql.Row, n)
	words := []string{"alpha", "beta", "gamma", "", "δ"}
	for i := range rows {
		row := sql.Row{
			int64(rng.Intn(7)),
			words[rng.Intn(len(words))],
			float64(rng.Intn(5)) / 2,
			rng.Intn(2) == 0,
		}
		// Sprinkle NULLs so null-vs-value hashing is exercised.
		if rng.Intn(6) == 0 {
			row[rng.Intn(len(row))] = nil
		}
		rows[i] = row
	}
	b, ok := vec.FromRows(exchangeSchema, rows)
	if !ok {
		t.Fatal("FromRows rejected the fuzz rows")
	}
	return b
}

// rowScatter is the reference shuffle: materialize each live row, box its
// key cells, route by codec.HashKey — exactly what the engine's row path
// does.
func rowScatter(b *vec.Batch, keyIdxs []int, nPart int) [][]sql.Row {
	buckets := make([][]sql.Row, nPart)
	physical.EmitBatchRows(b, func(row sql.Row) {
		key := make([]sql.Value, len(keyIdxs))
		for i, idx := range keyIdxs {
			key[i] = row[idx]
		}
		p := int(codec.HashKey(key) % uint64(nPart))
		buckets[p] = append(buckets[p], row)
	})
	return buckets
}

// TestPartitionScatterMatchesRowPath checks the columnar exchange routes
// every row to the same bucket, in the same order, with the same
// materialized values as per-row HashKey routing — across key subsets,
// partition counts, and selection vectors.
func TestPartitionScatterMatchesRowPath(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	keySets := [][]int{{0}, {1}, {2}, {3}, {0, 1}, {3, 2, 0}, {0, 1, 2, 3}}
	for trial := 0; trial < 40; trial++ {
		b := fuzzBatch(t, rng, 1+rng.Intn(200))
		if rng.Intn(2) == 0 {
			// Narrow to a random selection, preserving lane order.
			var sel []int32
			for i := 0; i < b.Len; i++ {
				if rng.Intn(3) > 0 {
					sel = append(sel, int32(i))
				}
			}
			b.Sel = sel
			if sel == nil {
				b.Sel = []int32{}
			}
		}
		keyIdxs := keySets[rng.Intn(len(keySets))]
		nPart := 1 + rng.Intn(5)
		got := Scatter(b, keyIdxs, nPart)
		want := rowScatter(b, keyIdxs, nPart)
		for p := 0; p < nPart; p++ {
			if len(got[p]) != len(want[p]) {
				t.Fatalf("trial %d: bucket %d has %d rows, want %d (keys=%v)",
					trial, p, len(got[p]), len(want[p]), keyIdxs)
			}
			for r := range got[p] {
				if !reflect.DeepEqual(got[p][r], want[p][r]) {
					t.Fatalf("trial %d: bucket %d row %d = %v, want %v",
						trial, p, r, got[p][r], want[p][r])
				}
			}
		}
	}
}

// TestPartitionHashLanesWindow checks the window kind hashes identically
// to its boxed form (FromRows can't build window columns, so construct
// the vector directly).
func TestPartitionHashLanesWindow(t *testing.T) {
	schema := sql.NewSchema(sql.Field{Name: "w", Type: sql.TypeWindow})
	b := vec.NewBatch(schema, 4)
	for i := 0; i < 4; i++ {
		b.Cols[0].WStarts[i] = int64(i * 100)
		b.Cols[0].WEnds[i] = int64(i*100 + 60)
	}
	b.Cols[0].SetNull(2, 4)
	hashes := HashLanes(b, []int{0}, nil)
	for i := 0; i < 4; i++ {
		want := codec.HashKey([]sql.Value{b.Cols[0].Get(i)})
		if hashes[i] != want {
			t.Fatalf("lane %d: HashLanes=%#x HashKey=%#x", i, hashes[i], want)
		}
	}
}

// TestPartitionScatterEmpty checks nil and fully-filtered batches route
// nowhere without panicking.
func TestPartitionScatterEmpty(t *testing.T) {
	for _, b := range []*vec.Batch{nil, {Schema: exchangeSchema, Sel: []int32{}}} {
		buckets := Scatter(b, []int{0}, 4)
		if len(buckets) != 4 {
			t.Fatalf("want 4 empty buckets, got %d", len(buckets))
		}
		for p, rows := range buckets {
			if len(rows) != 0 {
				t.Fatalf("bucket %d not empty", p)
			}
		}
	}
}
