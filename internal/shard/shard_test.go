package shard

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestPartitionPoolOrdering checks that Run returns results in task-index
// order regardless of completion order.
func TestPartitionPoolOrdering(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	tasks := make([]Task, 16)
	for i := range tasks {
		i := i
		tasks[i] = Task{Index: i, Fn: func() (any, error) {
			// Reverse the natural completion order: high indexes finish first.
			time.Sleep(time.Duration(len(tasks)-i) * time.Millisecond)
			return i * 10, nil
		}}
	}
	res, err := p.Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r != i*10 {
			t.Fatalf("slot %d = %v, want %d", i, r, i*10)
		}
	}
	st := p.Stats()
	if st.Workers != 4 || st.TasksRun != 16 || st.StagesRun != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BusyNanos <= 0 {
		t.Fatalf("busyNanos = %d, want > 0", st.BusyNanos)
	}
}

// TestPartitionPoolErrorLowestIndex checks that every task settles even
// when several fail, and the reported error is the lowest failed index.
func TestPartitionPoolErrorLowestIndex(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	var ran atomic.Int64
	boom := errors.New("boom")
	tasks := make([]Task, 9)
	for i := range tasks {
		i := i
		tasks[i] = Task{Index: i, Fn: func() (any, error) {
			ran.Add(1)
			if i%3 == 1 { // tasks 1, 4, 7 fail
				return nil, fmt.Errorf("task %d: %w", i, boom)
			}
			return i, nil
		}}
	}
	_, err := p.Run(tasks)
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "task 1") {
		t.Fatalf("err = %v, want the lowest failed index (1)", err)
	}
	if n := ran.Load(); n != 9 {
		t.Fatalf("ran %d tasks, want all 9 to settle despite failures", n)
	}
}

// TestPartitionPoolPanic checks that a panicking task surfaces as an error
// and leaves the pool usable.
func TestPartitionPoolPanic(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	_, err := p.Run([]Task{{Index: 0, Fn: func() (any, error) { panic("kaboom") }}})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v, want panic surfaced as error", err)
	}
	res, err := p.Run([]Task{{Index: 0, Fn: func() (any, error) { return "ok", nil }}})
	if err != nil || res[0] != "ok" {
		t.Fatalf("pool unusable after panic: res=%v err=%v", res, err)
	}
}

// TestPartitionPoolClose checks close is idempotent and post-close Run fails.
func TestPartitionPoolClose(t *testing.T) {
	p := NewPool(2)
	p.Close()
	p.Close()
	if _, err := p.Run([]Task{{Index: 0, Fn: func() (any, error) { return 1, nil }}}); err == nil {
		t.Fatal("Run on a closed pool should fail")
	}
}

// TestPartitionRangeContiguity fuzzes Range: slices must be contiguous,
// ordered, cover [from, to) exactly, and differ in length by at most one
// with the longer slices first.
func TestPartitionRangeContiguity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		from := int64(rng.Intn(1000)) - 100
		total := int64(rng.Intn(2000))
		to := from + total
		of := 1 + rng.Intn(12)
		prevHi := from
		minLen, maxLen := int64(1<<62), int64(-1)
		seenShort := false
		for n := 0; n < of; n++ {
			lo, hi := Range(from, to, n, of)
			if lo != prevHi {
				t.Fatalf("[%d,%d) of=%d: slice %d starts at %d, want %d", from, to, of, n, lo, prevHi)
			}
			if hi < lo {
				t.Fatalf("[%d,%d) of=%d: slice %d inverted [%d,%d)", from, to, of, n, lo, hi)
			}
			ln := hi - lo
			if ln < minLen {
				minLen = ln
			}
			if ln > maxLen {
				maxLen = ln
			}
			if seenShort && ln == maxLen && maxLen > minLen {
				t.Fatalf("[%d,%d) of=%d: long slice %d after a short one", from, to, of, n)
			}
			if ln == minLen && maxLen > minLen {
				seenShort = true
			}
			prevHi = hi
		}
		if prevHi != to {
			t.Fatalf("[%d,%d) of=%d: slices end at %d", from, to, of, prevHi)
		}
		if maxLen-minLen > 1 {
			t.Fatalf("[%d,%d) of=%d: slice lengths differ by %d", from, to, of, maxLen-minLen)
		}
	}
}

// TestPartitionRangeDegenerate covers the clamping edges.
func TestPartitionRangeDegenerate(t *testing.T) {
	if lo, hi := Range(5, 5, 0, 4); lo != 5 || hi != 5 {
		t.Fatalf("empty range: [%d,%d)", lo, hi)
	}
	if lo, hi := Range(9, 3, 0, 2); lo != hi {
		t.Fatalf("inverted range must clamp empty: [%d,%d)", lo, hi)
	}
	if lo, hi := Range(0, 10, 0, 0); lo != 0 || hi != 10 {
		t.Fatalf("of<1 must clamp to 1: [%d,%d)", lo, hi)
	}
}

// TestPartitionSplit checks the minPerShard floor, determinism, and that
// Split agrees with Range slice for slice.
func TestPartitionSplit(t *testing.T) {
	// 100 records, 8 workers, min 30 per shard → ceil(100/30) = 4 shards.
	s := Split(0, 100, 8, 30)
	if len(s) != 4 {
		t.Fatalf("got %d shards, want 4: %v", len(s), s)
	}
	for i, sh := range s {
		lo, hi := Range(0, 100, i, len(s))
		if sh[0] != lo || sh[1] != hi {
			t.Fatalf("shard %d = %v, Range says [%d,%d)", i, sh, lo, hi)
		}
	}
	// Tiny ranges collapse to one shard; empty ranges to none.
	if s := Split(40, 45, 8, 256); len(s) != 1 || s[0] != [2]int64{40, 45} {
		t.Fatalf("tiny range: %v", s)
	}
	if s := Split(7, 7, 4, 1); s != nil {
		t.Fatalf("empty range: %v", s)
	}
	// Pure function: same inputs, same plan.
	a, b := Split(123, 9876, 6, 64), Split(123, 9876, 6, 64)
	if len(a) != len(b) {
		t.Fatalf("nondeterministic split: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic shard %d: %v vs %v", i, a[i], b[i])
		}
	}
}
