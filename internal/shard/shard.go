// Package shard implements the partitioned parallel execution runtime
// behind engine.Options.Workers: a fixed pool of real worker goroutines
// that runs an epoch's map shards and reduce partitions concurrently, a
// deterministic contiguous offset-range splitter so each source partition
// can feed several workers, and a columnar exchange that routes fully
// vectorized batches to state partitions by hashing key vectors instead
// of boxing every row.
//
// The pool is deliberately simpler than internal/cluster, which simulates
// a Spark-like scheduler (slots, retries, speculative duplicates) for the
// paper's §6 experiments. Shard workers are the real-parallelism
// substrate: tasks run exactly once, results return in task order, and
// the first failure (by task index) is reported after every task has
// settled — an epoch never abandons a task mid-commit.
package shard

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Task is one unit of epoch work: a map shard or a reduce partition.
// Index orders results and error reporting.
type Task struct {
	Index int
	Fn    func() (any, error)
}

// Stats is a point-in-time snapshot of a pool's cumulative activity.
type Stats struct {
	// Workers is the fixed pool size.
	Workers int
	// TasksRun counts completed tasks (failed ones included).
	TasksRun int64
	// StagesRun counts Run calls.
	StagesRun int64
	// BusyNanos is the summed wall time workers spent inside task
	// functions; BusyNanos / (Workers × stage wall time) is pool
	// utilization.
	BusyNanos int64
}

// Pool runs tasks on a fixed set of worker goroutines. It is safe for
// concurrent use; tasks submitted by concurrent Run calls interleave over
// the same workers.
type Pool struct {
	workers int
	queue   chan job
	wg      sync.WaitGroup

	closeOnce sync.Once
	closed    atomic.Bool

	tasksRun  atomic.Int64
	stagesRun atomic.Int64
	busyNanos atomic.Int64
}

// job is one queued task plus the slot its result lands in.
type job struct {
	fn   func() (any, error)
	out  *stage
	slot int
}

// stage collects one Run call's results.
type stage struct {
	results []any
	errs    []error
	wg      sync.WaitGroup
}

// NewPool starts workers goroutines (minimum 1).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers, queue: make(chan job)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// Workers returns the fixed pool size.
func (p *Pool) Workers() int { return p.workers }

func (p *Pool) worker() {
	defer p.wg.Done()
	for j := range p.queue {
		j.out.results[j.slot], j.out.errs[j.slot] = p.runOne(j.fn)
		p.tasksRun.Add(1)
		j.out.wg.Done()
	}
}

// runOne executes one task, converting a panic into an error so a bad
// task cannot take a pool worker down with it.
func (p *Pool) runOne(fn func() (any, error)) (res any, err error) {
	start := time.Now()
	defer func() {
		p.busyNanos.Add(time.Since(start).Nanoseconds())
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("shard: task panicked: %v", r)
		}
	}()
	return fn()
}

// Run executes tasks on the pool and returns their results ordered by
// Task.Index. Every task runs to completion even when another fails —
// partial epochs must settle, not race a replacement — and the error
// returned is the failed task with the lowest index, so a multi-failure
// stage reports deterministically.
func (p *Pool) Run(tasks []Task) ([]any, error) {
	if p.closed.Load() {
		return nil, fmt.Errorf("shard: pool is closed")
	}
	st := &stage{results: make([]any, len(tasks)), errs: make([]error, len(tasks))}
	st.wg.Add(len(tasks))
	p.stagesRun.Add(1)
	for _, t := range tasks {
		p.queue <- job{fn: t.Fn, out: st, slot: t.Index}
	}
	st.wg.Wait()
	for i, err := range st.errs {
		if err != nil {
			return nil, fmt.Errorf("shard: task %d: %w", i, err)
		}
	}
	return st.results, nil
}

// Close stops the workers after the queued tasks drain. Further Run calls
// fail; Close is idempotent.
func (p *Pool) Close() {
	p.closeOnce.Do(func() {
		p.closed.Store(true)
		close(p.queue)
	})
	p.wg.Wait()
}

// Stats reports the pool's cumulative counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Workers:   p.workers,
		TasksRun:  p.tasksRun.Load(),
		StagesRun: p.stagesRun.Load(),
		BusyNanos: p.busyNanos.Load(),
	}
}
