package shard

import (
	"structream/internal/sql"
	"structream/internal/sql/codec"
	"structream/internal/sql/physical"
	"structream/internal/sql/vec"
)

// Scatter is the columnar shuffle boundary: it routes one fully
// vectorized batch to state partitions by hashing the key columns
// (keyIdxs) lane by lane straight from the vectors — codec-encoding each
// key cell from the typed slab, never boxing it — and materializes each
// row once, into its destination bucket. The hash is codec.HashKey of
// the boxed key values bit for bit, and rows materialize through the
// same accessor path as the row-path shuffle, so bucket contents (and
// their order) are byte-identical to per-row routing.
func Scatter(b *vec.Batch, keyIdxs []int, nPart int) [][]sql.Row {
	buckets := make([][]sql.Row, nPart)
	if b == nil || b.NumLive() == 0 {
		return buckets
	}
	hashes := HashLanes(b, keyIdxs, make([]uint64, 0, b.NumLive()))
	j := 0
	physical.EmitBatchRows(b, func(row sql.Row) {
		p := int(hashes[j] % uint64(nPart))
		buckets[p] = append(buckets[p], row)
		j++
	})
	return buckets
}

// HashLanes appends the shuffle hash of every live lane of b, in
// emission order, to out. keyIdxs name the grouping-key columns.
func HashLanes(b *vec.Batch, keyIdxs []int, out []uint64) []uint64 {
	keys := make([]*vec.Vector, len(keyIdxs))
	for i, idx := range keyIdxs {
		keys[i] = b.Cols[idx]
	}
	enc := codec.NewEncoder(16 * len(keys))
	if b.Sel != nil {
		for _, i := range b.Sel {
			out = append(out, codec.HashVec(enc, keys, int(i)))
		}
		return out
	}
	for i := 0; i < b.Len; i++ {
		out = append(out, codec.HashVec(enc, keys, i))
	}
	return out
}
