package wal

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func seal(t *testing.T, l *Log, epoch int64, part int) {
	t.Helper()
	if err := l.WriteSegment(Segment{
		Epoch: epoch, Partition: part, StateVersion: epoch,
		RowsIn: 10 * int64(part+1), RowsOut: 5, StateKeys: 3,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionSegmentRoundtrip(t *testing.T) {
	l := openLog(t)
	seal(t, l, 7, 2)
	s, ok, err := l.ReadSegment(7, 2)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if s.Epoch != 7 || s.Partition != 2 || s.StateVersion != 7 || s.RowsIn != 30 {
		t.Fatalf("segment = %+v", s)
	}
	if s.CRC32C == "" || s.LengthBytes == 0 {
		t.Fatalf("segment not framed: %+v", s)
	}
	if _, ok, err := l.ReadSegment(7, 3); ok || err != nil {
		t.Fatalf("missing seal: ok=%v err=%v", ok, err)
	}
	if n := l.Stats().SegmentsWritten; n != 1 {
		t.Fatalf("segmentsWritten = %d", n)
	}
}

// TestPartitionSegmentResealByteIdentical is the replay property the whole
// barrier design rests on: segments carry no timestamp, so a replayed
// epoch re-seals the exact same bytes.
func TestPartitionSegmentResealByteIdentical(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	seal(t, l, 4, 1)
	path := filepath.Join(dir, "segments", "000000000004.part-001.json")
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	seal(t, l, 4, 1) // replayed epoch re-seals
	second, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Fatalf("re-seal changed bytes:\n--- first\n%s\n--- second\n%s", first, second)
	}
}

func TestPartitionSegmentCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir)
	seal(t, l, 2, 0)
	path := filepath.Join(dir, "segments", "000000000002.part-000.json")
	data, _ := os.ReadFile(path)
	tampered := strings.Replace(string(data), `"rowsIn": 10`, `"rowsIn": 99`, 1)
	if tampered == string(data) {
		t.Fatal("tamper target not found")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.ReadSegment(2, 0); err == nil {
		t.Fatal("tampered seal loaded without error")
	}
}

func TestPartitionCommitBarrier(t *testing.T) {
	l := openLog(t)
	if err := l.WriteOffsets(entry(0, 0, 50)); err != nil {
		t.Fatal(err)
	}
	// Barrier over an incomplete seal set must fail and leave no commit.
	seal(t, l, 0, 0)
	seal(t, l, 0, 2)
	if err := l.CommitBarrier(0, 3); err == nil || !strings.Contains(err.Error(), "partition 1") {
		t.Fatalf("barrier with missing seal: %v", err)
	}
	if _, ok, _ := l.LatestCommit(); ok {
		t.Fatal("failed barrier left a commit behind")
	}
	// Complete the seal set: barrier writes one manifest with all digests.
	seal(t, l, 0, 1)
	if err := l.CommitBarrier(0, 3); err != nil {
		t.Fatal(err)
	}
	c, ok, err := l.ReadCommit(0)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if c.Partitions != 3 || len(c.Segments) != 3 {
		t.Fatalf("manifest = %+v", c)
	}
	for p, ref := range c.Segments {
		if ref.Partition != p || ref.CRC32C == "" {
			t.Fatalf("ref %d = %+v", p, ref)
		}
		s, _, _ := l.ReadSegment(0, p)
		if ref.CRC32C != s.CRC32C {
			t.Fatalf("manifest digest %q != seal digest %q", ref.CRC32C, s.CRC32C)
		}
	}
	if parts, _ := l.SegmentPartitions(0); !reflect.DeepEqual(parts, []int{0, 1, 2}) {
		t.Fatalf("partitions = %v", parts)
	}
}

// TestPartitionRecoverDropsUncommittedSeals checks the restart invariant:
// seals of an epoch without a manifest vanish; committed epochs keep
// theirs.
func TestPartitionRecoverDropsUncommittedSeals(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir)
	l.WriteOffsets(entry(0, 0, 10))
	seal(t, l, 0, 0)
	seal(t, l, 0, 1)
	if err := l.CommitBarrier(0, 2); err != nil {
		t.Fatal(err)
	}
	// Epoch 1 crashes mid-barrier: offsets written, only one seal landed.
	l.WriteOffsets(entry(1, 10, 20))
	seal(t, l, 1, 0)

	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := l2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Replay == nil || rec.Replay.Epoch != 1 {
		t.Fatalf("recovery = %+v", rec)
	}
	if parts, _ := l2.SegmentPartitions(1); parts != nil {
		t.Fatalf("uncommitted seals survived restart: %v", parts)
	}
	if parts, _ := l2.SegmentPartitions(0); !reflect.DeepEqual(parts, []int{0, 1}) {
		t.Fatalf("committed seals dropped: %v", parts)
	}
}

func TestPartitionRollbackAndPurgePruneSeals(t *testing.T) {
	l := openLog(t)
	for e := int64(0); e < 3; e++ {
		l.WriteOffsets(entry(e, e*10, e*10+10))
		seal(t, l, e, 0)
		if err := l.CommitBarrier(e, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.RollbackTo(1); err != nil {
		t.Fatal(err)
	}
	if parts, _ := l.SegmentPartitions(2); parts != nil {
		t.Fatalf("rollback kept epoch-2 seals: %v", parts)
	}
	if parts, _ := l.SegmentPartitions(1); parts == nil {
		t.Fatal("rollback dropped a kept epoch's seals")
	}
	if err := l.Purge(1); err != nil {
		t.Fatal(err)
	}
	if parts, _ := l.SegmentPartitions(0); parts != nil {
		t.Fatalf("purge kept epoch-0 seals: %v", parts)
	}
	if parts, _ := l.SegmentPartitions(1); parts == nil {
		t.Fatal("purge dropped the latest committed epoch's seals")
	}
}
