package wal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func openLog(t *testing.T) *Log {
	t.Helper()
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func entry(epoch int64, start, end int64) Entry {
	return Entry{
		Epoch:   epoch,
		Sources: []SourceOffsets{{Source: "kafka/topic", Start: []int64{start}, End: []int64{end}}},
	}
}

func TestWriteReadOffsets(t *testing.T) {
	l := openLog(t)
	e := entry(0, 0, 100)
	e.Watermark = 42
	if err := l.WriteOffsets(e); err != nil {
		t.Fatal(err)
	}
	got, ok, err := l.ReadOffsets(0)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if got.Epoch != 0 || got.Watermark != 42 || got.Sources[0].End[0] != 100 {
		t.Errorf("entry = %+v", got)
	}
	if got.Timestamp == "" {
		t.Error("timestamp should be auto-filled")
	}
}

func TestOffsetsAreHumanReadableJSON(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir)
	l.WriteOffsets(entry(3, 10, 20))
	data, err := os.ReadFile(filepath.Join(dir, "offsets", "000000000003.json"))
	if err != nil {
		t.Fatal(err)
	}
	// Indented JSON with named fields, per §7.2: admins read this by hand.
	if !strings.Contains(string(data), "\n  \"sources\"") {
		t.Errorf("offsets entry not human-readable:\n%s", data)
	}
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
}

func TestIdempotentRewriteSameEpoch(t *testing.T) {
	l := openLog(t)
	if err := l.WriteOffsets(entry(0, 0, 10)); err != nil {
		t.Fatal(err)
	}
	// Same definition: fine (recovery re-logs the replayed epoch).
	if err := l.WriteOffsets(entry(0, 0, 10)); err != nil {
		t.Errorf("idempotent rewrite failed: %v", err)
	}
	// Different definition: must be rejected.
	if err := l.WriteOffsets(entry(0, 0, 99)); err == nil {
		t.Error("conflicting epoch definition accepted")
	}
}

func TestCommitsAndLatest(t *testing.T) {
	l := openLog(t)
	for e := int64(0); e < 3; e++ {
		if err := l.WriteOffsets(entry(e, e*10, e*10+10)); err != nil {
			t.Fatal(err)
		}
		if err := l.WriteCommit(e); err != nil {
			t.Fatal(err)
		}
	}
	latest, ok, err := l.LatestCommit()
	if err != nil || !ok || latest != 2 {
		t.Errorf("latest commit = %d ok=%v err=%v", latest, ok, err)
	}
	le, ok, _ := l.LatestOffsets()
	if !ok || le.Epoch != 2 {
		t.Errorf("latest offsets = %+v", le)
	}
	epochs, _ := l.Epochs()
	if len(epochs) != 3 || epochs[0] != 0 || epochs[2] != 2 {
		t.Errorf("epochs = %v", epochs)
	}
}

func TestRecoverFreshLog(t *testing.T) {
	l := openLog(t)
	rp, err := l.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rp.NextEpoch != 0 || rp.Replay != nil {
		t.Errorf("rp = %+v", rp)
	}
}

func TestRecoverCleanShutdown(t *testing.T) {
	l := openLog(t)
	l.WriteOffsets(entry(0, 0, 10))
	l.WriteCommit(0)
	l.WriteOffsets(entry(1, 10, 25))
	l.WriteCommit(1)
	rp, err := l.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rp.NextEpoch != 2 || rp.Replay != nil {
		t.Errorf("rp = %+v", rp)
	}
}

func TestRecoverUncommittedEpochReplays(t *testing.T) {
	l := openLog(t)
	l.WriteOffsets(entry(0, 0, 10))
	l.WriteCommit(0)
	l.WriteOffsets(entry(1, 10, 25)) // crash before commit
	rp, err := l.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rp.NextEpoch != 2 {
		t.Errorf("next = %d", rp.NextEpoch)
	}
	if rp.Replay == nil || rp.Replay.Epoch != 1 || rp.Replay.Sources[0].End[0] != 25 {
		t.Errorf("replay = %+v", rp.Replay)
	}
}

func TestRecoverFirstEpochUncommitted(t *testing.T) {
	l := openLog(t)
	l.WriteOffsets(entry(0, 0, 10))
	rp, err := l.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rp.Replay == nil || rp.Replay.Epoch != 0 || rp.NextEpoch != 1 {
		t.Errorf("rp = %+v", rp)
	}
}

func TestRollback(t *testing.T) {
	l := openLog(t)
	for e := int64(0); e < 5; e++ {
		l.WriteOffsets(entry(e, e*10, e*10+10))
		l.WriteCommit(e)
	}
	if err := l.RollbackTo(1); err != nil {
		t.Fatal(err)
	}
	epochs, _ := l.Epochs()
	if len(epochs) != 2 || epochs[1] != 1 {
		t.Errorf("epochs after rollback = %v", epochs)
	}
	commits, _ := l.Commits()
	if len(commits) != 2 {
		t.Errorf("commits after rollback = %v", commits)
	}
	rp, _ := l.Recover()
	if rp.NextEpoch != 2 || rp.Replay != nil {
		t.Errorf("rp after rollback = %+v", rp)
	}
	// Rollback to -1 clears everything.
	if err := l.RollbackTo(-1); err != nil {
		t.Fatal(err)
	}
	epochs, _ = l.Epochs()
	if len(epochs) != 0 {
		t.Errorf("epochs = %v", epochs)
	}
}

func TestPurgeKeepsLatestCommit(t *testing.T) {
	l := openLog(t)
	for e := int64(0); e < 5; e++ {
		l.WriteOffsets(entry(e, e*10, e*10+10))
		l.WriteCommit(e)
	}
	if err := l.Purge(99); err != nil {
		t.Fatal(err)
	}
	epochs, _ := l.Epochs()
	if len(epochs) != 1 || epochs[0] != 4 {
		t.Errorf("purge must retain the latest committed epoch; epochs = %v", epochs)
	}
}

func TestPurgeBounded(t *testing.T) {
	l := openLog(t)
	for e := int64(0); e < 5; e++ {
		l.WriteOffsets(entry(e, 0, 1))
		l.WriteCommit(e)
	}
	l.Purge(3)
	epochs, _ := l.Epochs()
	if len(epochs) != 2 || epochs[0] != 3 {
		t.Errorf("epochs = %v", epochs)
	}
}

func TestReopenSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	l1, _ := Open(dir)
	l1.WriteOffsets(entry(0, 0, 7))
	l1.WriteCommit(0)
	// "Restart": open a fresh Log over the same directory.
	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, _ := l2.ReadOffsets(0)
	if !ok || got.Sources[0].End[0] != 7 {
		t.Errorf("entry after reopen = %+v ok=%v", got, ok)
	}
}

func TestCorruptEntrySurfacesError(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir)
	l.WriteOffsets(entry(0, 0, 7))
	os.WriteFile(filepath.Join(dir, "offsets", "000000000000.json"), []byte("{garbage"), 0o644)
	if _, _, err := l.ReadOffsets(0); err == nil {
		t.Error("corrupt entry should error")
	}
}

func TestForeignFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir)
	os.WriteFile(filepath.Join(dir, "offsets", "README.txt"), []byte("hi"), 0o644)
	os.WriteFile(filepath.Join(dir, "offsets", "xyz.json"), []byte("{}"), 0o644)
	l.WriteOffsets(entry(0, 0, 1))
	epochs, err := l.Epochs()
	if err != nil || len(epochs) != 1 {
		t.Errorf("epochs = %v err=%v", epochs, err)
	}
}

func TestMultiSourceEntry(t *testing.T) {
	l := openLog(t)
	e := Entry{Epoch: 0, Sources: []SourceOffsets{
		{Source: "tcp_logs", Start: []int64{0, 0}, End: []int64{5, 9}},
		{Source: "dhcp_logs", Start: []int64{2}, End: []int64{4}},
	}}
	if err := l.WriteOffsets(e); err != nil {
		t.Fatal(err)
	}
	got, _, _ := l.ReadOffsets(0)
	if len(got.Sources) != 2 || got.Sources[1].Source != "dhcp_logs" {
		t.Errorf("entry = %+v", got)
	}
}

func TestOpenReclaimsOrphanedTmpFiles(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir)
	l.WriteOffsets(entry(0, 0, 7))
	// Simulate a crash mid-writeAtomic: an orphaned .tmp in each dir.
	orphanO := filepath.Join(dir, "offsets", "000000000001.json.tmp")
	orphanC := filepath.Join(dir, "commits", "000000000000.json.tmp")
	os.WriteFile(orphanO, []byte("partial"), 0o644)
	os.WriteFile(orphanC, []byte("partial"), 0o644)
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{orphanO, orphanC} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("orphaned tmp file not reclaimed: %s", p)
		}
	}
	// The live entry survived.
	l2, _ := Open(dir)
	if _, ok, err := l2.ReadOffsets(0); !ok || err != nil {
		t.Errorf("live entry lost: ok=%v err=%v", ok, err)
	}
}

func TestRecoverDetectsOffsetsGap(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir)
	for e := int64(0); e < 4; e++ {
		l.WriteOffsets(entry(e, e*10, e*10+10))
		l.WriteCommit(e)
	}
	// Delete an intermediate epoch file: the log now has a hole.
	os.Remove(filepath.Join(dir, "offsets", "000000000002.json"))
	_, err := l.Recover()
	if err == nil {
		t.Fatal("gap in offsets log not detected")
	}
	if !strings.Contains(err.Error(), "gap") || !strings.Contains(err.Error(), "2") {
		t.Errorf("gap error not descriptive: %v", err)
	}
}

func TestRecoverDropsCorruptUncommittedTail(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir)
	l.WriteOffsets(entry(0, 0, 10))
	l.WriteCommit(0)
	l.WriteOffsets(entry(1, 10, 25)) // crash before commit...
	tail := filepath.Join(dir, "offsets", "000000000001.json")
	data, _ := os.ReadFile(tail)
	os.WriteFile(tail, data[:len(data)/2], 0o644) // ...tears the entry
	rp, err := l.Recover()
	if err != nil {
		t.Fatalf("corrupt uncommitted tail must be recoverable: %v", err)
	}
	if len(rp.DroppedCorrupt) != 1 || !strings.Contains(rp.DroppedCorrupt[0], "000000000001.json") {
		t.Errorf("DroppedCorrupt = %v", rp.DroppedCorrupt)
	}
	// The torn epoch is re-planned, not replayed from the torn entry.
	if rp.NextEpoch != 1 || rp.Replay != nil {
		t.Errorf("rp = %+v", rp)
	}
	if _, err := os.Stat(tail); !os.IsNotExist(err) {
		t.Error("torn entry should have been removed")
	}
}

func TestRecoverCorruptOnlyEntry(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir)
	l.WriteOffsets(entry(0, 0, 10)) // never committed
	tail := filepath.Join(dir, "offsets", "000000000000.json")
	os.WriteFile(tail, []byte("{torn"), 0o644)
	rp, err := l.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if rp.NextEpoch != 0 || rp.Replay != nil || len(rp.DroppedCorrupt) != 1 {
		t.Errorf("rp = %+v", rp)
	}
}

func TestRecoverCorruptCommittedEntryIsFatal(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir)
	l.WriteOffsets(entry(0, 0, 10))
	l.WriteCommit(0)
	path := filepath.Join(dir, "offsets", "000000000000.json")
	os.WriteFile(path, []byte("{torn"), 0o644)
	_, err := l.Recover()
	if err == nil {
		t.Fatal("corrupt committed entry must be a hard error")
	}
	if !strings.Contains(err.Error(), "000000000000.json") {
		t.Errorf("error should name the file: %v", err)
	}
}

func TestFrameDetectsInPlaceEdit(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir)
	l.WriteOffsets(entry(0, 0, 25))
	path := filepath.Join(dir, "offsets", "000000000000.json")
	data, _ := os.ReadFile(path)
	// Flip one digit of the end offset, keeping the file valid JSON of the
	// same length — only the CRC can catch this.
	edited := strings.Replace(string(data), "25", "26", 1)
	if edited == string(data) {
		t.Fatal("test setup: nothing replaced")
	}
	os.WriteFile(path, []byte(edited), 0o644)
	_, _, err := l.ReadOffsets(0)
	if err == nil {
		t.Fatal("in-place edit not detected")
	}
	if !strings.Contains(err.Error(), "crc32c") || !strings.Contains(err.Error(), "000000000000.json") {
		t.Errorf("error should blame the crc and name the file: %v", err)
	}
}
