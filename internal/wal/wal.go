// Package wal implements Structured Streaming's write-ahead log (§6.1 of
// the paper): a durable record of which input offsets each epoch covers and
// which epochs have been committed to the sink. Entries are human-readable
// JSON — deliberately, so administrators can inspect the log and perform
// manual rollbacks (§7.2) with ordinary tools. All writes are atomic via
// write-to-temp-then-rename on a durability-hardened filesystem (fsync of
// the file and its parent directory), and every entry carries a
// length + CRC32C frame so truncation and bit rot are detected on read
// instead of silently replaying the wrong offsets.
package wal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"structream/internal/fsx"
)

// SourceOffsets records one input source's offset range for an epoch: the
// engine will read exactly [Start[i], End[i]) from partition i.
type SourceOffsets struct {
	Source string  `json:"source"`
	Start  []int64 `json:"start"`
	End    []int64 `json:"end"`
}

// Entry is one offsets-log record: the definition of an epoch. LengthBytes
// and CRC32C frame the record: they are computed over the entry's JSON
// encoding with both fields zeroed, so a reader can re-derive and check
// them. They are advisory for humans and load-bearing for recovery.
type Entry struct {
	Epoch     int64           `json:"epoch"`
	Timestamp string          `json:"timestamp"`
	Watermark int64           `json:"watermarkMicros"`
	Sources   []SourceOffsets `json:"sources"`

	LengthBytes int64  `json:"lengthBytes,omitempty"`
	CRC32C      string `json:"crc32c,omitempty"`
}

// Commit is one commit-log record, written after the sink durably holds the
// epoch's output. Only the file's presence is load-bearing; the body is
// framed like Entry for uniformity.
type Commit struct {
	Epoch     int64  `json:"epoch"`
	Timestamp string `json:"timestamp"`

	// Partitions and Segments are set only by CommitBarrier: the commit is
	// then a barrier manifest recording how many per-partition WAL segments
	// the epoch sealed and the digest each one carried. Plain (unsharded)
	// commits leave both zero.
	Partitions int          `json:"partitions,omitempty"`
	Segments   []SegmentRef `json:"segments,omitempty"`

	LengthBytes int64  `json:"lengthBytes,omitempty"`
	CRC32C      string `json:"crc32c,omitempty"`
}

// Log is a write-ahead log rooted at a checkpoint directory, holding an
// offsets log and a commit log.
type Log struct {
	fs          fsx.FS
	dir         string
	offsetsDir  string
	commitsDir  string
	segmentsDir string

	// Observability counters (§7.4): cumulative write activity, exposed via
	// Stats so the monitoring layer can report WAL pressure per query.
	offsetsWritten  atomic.Int64
	commitsWritten  atomic.Int64
	segmentsWritten atomic.Int64
	bytesWritten    atomic.Int64
	writeNanos      atomic.Int64
}

// Stats is a point-in-time snapshot of the log's write activity.
type Stats struct {
	// OffsetsWritten counts durably recorded epoch-offset entries.
	OffsetsWritten int64
	// CommitsWritten counts durably recorded epoch commits.
	CommitsWritten int64
	// SegmentsWritten counts durably sealed per-partition segments
	// (sharded barrier commits only).
	SegmentsWritten int64
	// BytesWritten is the total framed bytes handed to the filesystem.
	BytesWritten int64
	// WriteNanos is the cumulative wall time spent inside atomic WAL
	// writes, including fsync.
	WriteNanos int64
}

// Stats reports the log's cumulative write counters.
func (l *Log) Stats() Stats {
	return Stats{
		OffsetsWritten:  l.offsetsWritten.Load(),
		CommitsWritten:  l.commitsWritten.Load(),
		SegmentsWritten: l.segmentsWritten.Load(),
		BytesWritten:    l.bytesWritten.Load(),
		WriteNanos:      l.writeNanos.Load(),
	}
}

// Open creates or opens the log under dir on the hardened real filesystem.
func Open(dir string) (*Log, error) { return OpenFS(fsx.Real(), dir) }

// OpenFS creates or opens the log under dir on an explicit filesystem
// (fault injection in tests, alternate durability policies). Orphaned
// "*.tmp" files from atomic writes interrupted by a crash are reclaimed
// here, so they cannot accumulate across restarts.
func OpenFS(fsys fsx.FS, dir string) (*Log, error) {
	l := &Log{
		fs:          fsys,
		dir:         dir,
		offsetsDir:  filepath.Join(dir, "offsets"),
		commitsDir:  filepath.Join(dir, "commits"),
		segmentsDir: filepath.Join(dir, "segments"),
	}
	for _, d := range []string{l.offsetsDir, l.commitsDir, l.segmentsDir} {
		if err := fsys.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		if _, err := fsx.CleanupTmp(fsys, d); err != nil {
			return nil, fmt.Errorf("wal: reclaiming orphaned tmp files: %w", err)
		}
	}
	return l, nil
}

// Dir returns the checkpoint root.
func (l *Log) Dir() string { return l.dir }

func epochFile(dir string, epoch int64) string {
	return filepath.Join(dir, fmt.Sprintf("%012d.json", epoch))
}

// writeAtomic writes data to path via a temp file and rename, so readers
// never observe a partial file even across crashes.
func (l *Log) writeAtomic(path string, data []byte) error {
	start := time.Now()
	err := fsx.WriteAtomic(l.fs, path, data, 0o644)
	l.writeNanos.Add(time.Since(start).Nanoseconds())
	if err == nil {
		l.bytesWritten.Add(int64(len(data)))
	}
	return err
}

// frameJSON marshals v (an *Entry or *Commit with zeroed frame fields),
// fills the frame from that canonical encoding, and marshals again. The
// result stays plain indented JSON: framing must not cost the §7.2
// "admins read this with ordinary tools" property.
func frameJSON(zeroFramed any, setFrame func(length int64, crc string)) ([]byte, error) {
	body, err := json.MarshalIndent(zeroFramed, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	setFrame(int64(len(body)), fmt.Sprintf("%08x", fsx.Checksum(body)))
	framed, err := json.MarshalIndent(zeroFramed, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	return append(framed, '\n'), nil
}

// verifyEntryFrame re-derives the frame of a decoded entry and checks it.
// Entries without a frame (hand-written or pre-framing checkpoints) pass.
func verifyEntryFrame(path string, e Entry) error {
	if e.CRC32C == "" && e.LengthBytes == 0 {
		return nil
	}
	wantLen, wantCRC := e.LengthBytes, e.CRC32C
	e.LengthBytes, e.CRC32C = 0, ""
	body, err := json.MarshalIndent(&e, "", "  ")
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if int64(len(body)) != wantLen {
		return fmt.Errorf("wal: %w: %s: entry is %d canonical bytes but frame says %d (edited or truncated)", fsx.ErrCorrupt, path, len(body), wantLen)
	}
	if got := fmt.Sprintf("%08x", fsx.Checksum(body)); got != wantCRC {
		return fmt.Errorf("wal: %w: %s: crc32c mismatch (stored %s, computed %s — bit rot or tampering)", fsx.ErrCorrupt, path, wantCRC, got)
	}
	return nil
}

// WriteOffsets durably records an epoch's offset ranges. Writing the same
// epoch twice with identical content is idempotent; differing content is an
// error, because an epoch's definition must never change once logged (this
// is what makes replay deterministic).
func (l *Log) WriteOffsets(e Entry) error {
	if e.Timestamp == "" {
		e.Timestamp = time.Now().UTC().Format(time.RFC3339Nano)
	}
	path := epochFile(l.offsetsDir, e.Epoch)
	if existing, ok, err := l.ReadOffsets(e.Epoch); err != nil {
		return err
	} else if ok {
		if sameEpochDefinition(existing, e) {
			return nil
		}
		return fmt.Errorf("wal: epoch %d already logged with different offsets", e.Epoch)
	}
	e.LengthBytes, e.CRC32C = 0, ""
	data, err := frameJSON(&e, func(n int64, crc string) { e.LengthBytes, e.CRC32C = n, crc })
	if err != nil {
		return err
	}
	if err := l.writeAtomic(path, data); err != nil {
		return err
	}
	l.offsetsWritten.Add(1)
	return nil
}

func sameEpochDefinition(a, b Entry) bool {
	if a.Epoch != b.Epoch || len(a.Sources) != len(b.Sources) {
		return false
	}
	for i := range a.Sources {
		x, y := a.Sources[i], b.Sources[i]
		if x.Source != y.Source || len(x.Start) != len(y.Start) || len(x.End) != len(y.End) {
			return false
		}
		for j := range x.Start {
			if x.Start[j] != y.Start[j] {
				return false
			}
		}
		for j := range x.End {
			if x.End[j] != y.End[j] {
				return false
			}
		}
	}
	return true
}

// ReadOffsets loads and verifies one epoch's entry; ok is false when it
// does not exist. A truncated, bit-flipped, or otherwise unreadable entry
// is an error naming the file.
func (l *Log) ReadOffsets(epoch int64) (Entry, bool, error) {
	path := epochFile(l.offsetsDir, epoch)
	data, err := l.fs.ReadFile(path)
	if os.IsNotExist(err) {
		return Entry{}, false, nil
	}
	if err != nil {
		return Entry{}, false, fmt.Errorf("wal: %w", err)
	}
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil {
		return Entry{}, false, fmt.Errorf("wal: %w: %s: not valid JSON (truncated write?): %v", fsx.ErrCorrupt, path, err)
	}
	if err := verifyEntryFrame(path, e); err != nil {
		return Entry{}, false, err
	}
	return e, true, nil
}

// listEpochs returns the sorted epoch numbers present in dir.
func (l *Log) listEpochs(dir string) ([]int64, error) {
	entries, err := l.fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var out []int64
	for _, de := range entries {
		name := de.Name()
		if filepath.Ext(name) != ".json" {
			continue
		}
		n, err := strconv.ParseInt(name[:len(name)-len(".json")], 10, 64)
		if err != nil {
			continue
		}
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Epochs lists the epochs with offsets entries, ascending.
func (l *Log) Epochs() ([]int64, error) { return l.listEpochs(l.offsetsDir) }

// LatestOffsets returns the highest-numbered offsets entry.
func (l *Log) LatestOffsets() (Entry, bool, error) {
	epochs, err := l.Epochs()
	if err != nil || len(epochs) == 0 {
		return Entry{}, false, err
	}
	return l.ReadOffsets(epochs[len(epochs)-1])
}

// WriteCommit records that an epoch's output is durably in the sink.
func (l *Log) WriteCommit(epoch int64) error {
	c := Commit{Epoch: epoch, Timestamp: time.Now().UTC().Format(time.RFC3339Nano)}
	data, err := frameJSON(&c, func(n int64, crc string) { c.LengthBytes, c.CRC32C = n, crc })
	if err != nil {
		return err
	}
	if err := l.writeAtomic(epochFile(l.commitsDir, epoch), data); err != nil {
		return err
	}
	l.commitsWritten.Add(1)
	return nil
}

// Commits lists committed epochs, ascending.
func (l *Log) Commits() ([]int64, error) { return l.listEpochs(l.commitsDir) }

// LatestCommit returns the highest committed epoch; ok is false when no
// epoch has committed yet.
func (l *Log) LatestCommit() (int64, bool, error) {
	commits, err := l.Commits()
	if err != nil || len(commits) == 0 {
		return 0, false, err
	}
	return commits[len(commits)-1], true, nil
}

// RollbackTo removes every offsets and commit entry with epoch > keep,
// implementing manual rollback (§7.2): after restart the engine re-plans
// from the prefix ending at keep. RollbackTo(-1) clears the whole log.
func (l *Log) RollbackTo(keep int64) error {
	for _, dir := range []string{l.offsetsDir, l.commitsDir} {
		epochs, err := l.listEpochs(dir)
		if err != nil {
			return err
		}
		// Delete newest-first so a crash mid-rollback leaves a contiguous,
		// consistent prefix.
		for i := len(epochs) - 1; i >= 0; i-- {
			if epochs[i] <= keep {
				break
			}
			if err := l.fs.Remove(epochFile(dir, epochs[i])); err != nil {
				return fmt.Errorf("wal: rollback: %w", err)
			}
		}
	}
	return l.pruneSegments(func(e int64) bool { return e <= keep })
}

// Purge removes entries older than before (exclusive), bounding log growth.
// The latest committed epoch is always retained.
func (l *Log) Purge(before int64) error {
	latest, ok, err := l.LatestCommit()
	if err != nil {
		return err
	}
	if ok && before > latest {
		before = latest
	}
	for _, dir := range []string{l.offsetsDir, l.commitsDir} {
		epochs, err := l.listEpochs(dir)
		if err != nil {
			return err
		}
		for _, e := range epochs {
			if e >= before {
				break
			}
			if err := l.fs.Remove(epochFile(dir, e)); err != nil {
				return fmt.Errorf("wal: purge: %w", err)
			}
		}
	}
	return l.pruneSegments(func(e int64) bool { return e >= before })
}

// RecoveryPoint describes where a restarted query resumes: the next epoch
// to run, and the epoch whose output may be partially written (needs
// re-running with identical offsets) if any.
type RecoveryPoint struct {
	// NextEpoch is the epoch id the engine should execute next.
	NextEpoch int64
	// Replay, when non-nil, is a logged-but-uncommitted epoch that must be
	// re-executed with exactly these offsets before new epochs start.
	Replay *Entry
	// Watermark is the event-time watermark to restore, from the most
	// recent offsets entry.
	Watermark int64
	// DroppedCorrupt lists unreadable *uncommitted* tail entries that were
	// removed during recovery. Losing an uncommitted entry is safe — its
	// epoch never reached the sink and will simply be re-planned — but the
	// engine surfaces the count as a corruption metric.
	DroppedCorrupt []string
}

// Recover computes the recovery point from the log state, implementing the
// restart protocol of §6.1: find the last epoch not committed to the sink,
// re-run it with the same offsets, then continue. Recovery additionally
// enforces log integrity: the offsets log must be gap-free (a missing
// intermediate epoch means the checkpoint was damaged — resuming would
// silently skip input), a corrupt *committed* entry is a hard error naming
// the file, and a corrupt *uncommitted* tail entry (torn by a crash that
// beat the atomic rename odds, or bit-rotted) is dropped and re-planned.
func (l *Log) Recover() (RecoveryPoint, error) {
	epochs, err := l.Epochs()
	if err != nil {
		return RecoveryPoint{}, err
	}
	if len(epochs) == 0 {
		// A fresh (or fully rolled-back) log may still hold orphaned seals
		// from a crash before the first barrier; drop them.
		if err := l.dropUncommittedSegments(0, false); err != nil {
			return RecoveryPoint{}, err
		}
		return RecoveryPoint{NextEpoch: 0}, nil
	}
	for i := 1; i < len(epochs); i++ {
		if epochs[i] != epochs[i-1]+1 {
			return RecoveryPoint{}, fmt.Errorf(
				"wal: offsets log has a gap: epoch %d is followed by %d (epochs %d..%d are missing); the checkpoint is damaged — restore the missing entries or roll back to epoch %d before restarting",
				epochs[i-1], epochs[i], epochs[i-1]+1, epochs[i]-1, epochs[i-1])
		}
	}
	committed, anyCommit, err := l.LatestCommit()
	if err != nil {
		return RecoveryPoint{}, err
	}
	// Orphaned per-partition seals from a crash mid-barrier belong to an
	// epoch that never committed: remove them so no partial-barrier state
	// survives a restart — the replayed epoch re-seals them bit for bit.
	if err := l.dropUncommittedSegments(committed, anyCommit); err != nil {
		return RecoveryPoint{}, err
	}

	var dropped []string
	last := epochs[len(epochs)-1]
	latest, ok, rerr := l.ReadOffsets(last)
	if rerr != nil {
		if anyCommit && committed >= last {
			return RecoveryPoint{}, fmt.Errorf("wal: committed epoch %d is unreadable and cannot be dropped: %w", last, rerr)
		}
		// The tail entry never committed: drop it and re-plan that epoch.
		path := epochFile(l.offsetsDir, last)
		if err := l.fs.Remove(path); err != nil {
			return RecoveryPoint{}, fmt.Errorf("wal: dropping corrupt uncommitted entry: %w", err)
		}
		dropped = append(dropped, path)
		if len(epochs) == 1 {
			return RecoveryPoint{NextEpoch: last, DroppedCorrupt: dropped}, nil
		}
		last = epochs[len(epochs)-2]
		latest, ok, rerr = l.ReadOffsets(last)
		if rerr != nil {
			// At most one trailing entry can be uncommitted under the §6.1
			// protocol, so this one was committed — hard error.
			return RecoveryPoint{}, fmt.Errorf("wal: committed epoch %d is unreadable: %w", last, rerr)
		}
	}
	if !ok {
		// Raced with a concurrent rollback; treat as fresh.
		return RecoveryPoint{NextEpoch: 0, DroppedCorrupt: dropped}, nil
	}
	rp := RecoveryPoint{NextEpoch: latest.Epoch + 1, Watermark: latest.Watermark, DroppedCorrupt: dropped}
	if !anyCommit || committed < latest.Epoch {
		rp.Replay = &latest
	}
	return rp, nil
}
