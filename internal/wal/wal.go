// Package wal implements Structured Streaming's write-ahead log (§6.1 of
// the paper): a durable record of which input offsets each epoch covers and
// which epochs have been committed to the sink. Entries are human-readable
// JSON — deliberately, so administrators can inspect the log and perform
// manual rollbacks (§7.2) with ordinary tools. All writes are atomic via
// write-to-temp-then-rename.
package wal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"time"
)

// SourceOffsets records one input source's offset range for an epoch: the
// engine will read exactly [Start[i], End[i]) from partition i.
type SourceOffsets struct {
	Source string  `json:"source"`
	Start  []int64 `json:"start"`
	End    []int64 `json:"end"`
}

// Entry is one offsets-log record: the definition of an epoch.
type Entry struct {
	Epoch     int64           `json:"epoch"`
	Timestamp string          `json:"timestamp"`
	Watermark int64           `json:"watermarkMicros"`
	Sources   []SourceOffsets `json:"sources"`
}

// Commit is one commit-log record, written after the sink durably holds the
// epoch's output.
type Commit struct {
	Epoch     int64  `json:"epoch"`
	Timestamp string `json:"timestamp"`
}

// Log is a write-ahead log rooted at a checkpoint directory, holding an
// offsets log and a commit log.
type Log struct {
	dir        string
	offsetsDir string
	commitsDir string
}

// Open creates or opens the log under dir.
func Open(dir string) (*Log, error) {
	l := &Log{
		dir:        dir,
		offsetsDir: filepath.Join(dir, "offsets"),
		commitsDir: filepath.Join(dir, "commits"),
	}
	for _, d := range []string{l.offsetsDir, l.commitsDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
	}
	return l, nil
}

// Dir returns the checkpoint root.
func (l *Log) Dir() string { return l.dir }

func epochFile(dir string, epoch int64) string {
	return filepath.Join(dir, fmt.Sprintf("%012d.json", epoch))
}

// writeAtomic writes data to path via a temp file and rename, so readers
// never observe a partial file even across crashes.
func writeAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// WriteOffsets durably records an epoch's offset ranges. Writing the same
// epoch twice with identical content is idempotent; differing content is an
// error, because an epoch's definition must never change once logged (this
// is what makes replay deterministic).
func (l *Log) WriteOffsets(e Entry) error {
	if e.Timestamp == "" {
		e.Timestamp = time.Now().UTC().Format(time.RFC3339Nano)
	}
	path := epochFile(l.offsetsDir, e.Epoch)
	if existing, ok, err := l.ReadOffsets(e.Epoch); err != nil {
		return err
	} else if ok {
		if sameEpochDefinition(existing, e) {
			return nil
		}
		return fmt.Errorf("wal: epoch %d already logged with different offsets", e.Epoch)
	}
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return writeAtomic(path, append(data, '\n'))
}

func sameEpochDefinition(a, b Entry) bool {
	if a.Epoch != b.Epoch || len(a.Sources) != len(b.Sources) {
		return false
	}
	for i := range a.Sources {
		x, y := a.Sources[i], b.Sources[i]
		if x.Source != y.Source || len(x.Start) != len(y.Start) || len(x.End) != len(y.End) {
			return false
		}
		for j := range x.Start {
			if x.Start[j] != y.Start[j] {
				return false
			}
		}
		for j := range x.End {
			if x.End[j] != y.End[j] {
				return false
			}
		}
	}
	return true
}

// ReadOffsets loads one epoch's entry; ok is false when it does not exist.
func (l *Log) ReadOffsets(epoch int64) (Entry, bool, error) {
	data, err := os.ReadFile(epochFile(l.offsetsDir, epoch))
	if os.IsNotExist(err) {
		return Entry{}, false, nil
	}
	if err != nil {
		return Entry{}, false, fmt.Errorf("wal: %w", err)
	}
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil {
		return Entry{}, false, fmt.Errorf("wal: corrupt offsets entry %d: %w", epoch, err)
	}
	return e, true, nil
}

// listEpochs returns the sorted epoch numbers present in dir.
func listEpochs(dir string) ([]int64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var out []int64
	for _, de := range entries {
		name := de.Name()
		if filepath.Ext(name) != ".json" {
			continue
		}
		n, err := strconv.ParseInt(name[:len(name)-len(".json")], 10, 64)
		if err != nil {
			continue
		}
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Epochs lists the epochs with offsets entries, ascending.
func (l *Log) Epochs() ([]int64, error) { return listEpochs(l.offsetsDir) }

// LatestOffsets returns the highest-numbered offsets entry.
func (l *Log) LatestOffsets() (Entry, bool, error) {
	epochs, err := l.Epochs()
	if err != nil || len(epochs) == 0 {
		return Entry{}, false, err
	}
	return l.ReadOffsets(epochs[len(epochs)-1])
}

// WriteCommit records that an epoch's output is durably in the sink.
func (l *Log) WriteCommit(epoch int64) error {
	c := Commit{Epoch: epoch, Timestamp: time.Now().UTC().Format(time.RFC3339Nano)}
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return writeAtomic(epochFile(l.commitsDir, epoch), append(data, '\n'))
}

// Commits lists committed epochs, ascending.
func (l *Log) Commits() ([]int64, error) { return listEpochs(l.commitsDir) }

// LatestCommit returns the highest committed epoch; ok is false when no
// epoch has committed yet.
func (l *Log) LatestCommit() (int64, bool, error) {
	commits, err := l.Commits()
	if err != nil || len(commits) == 0 {
		return 0, false, err
	}
	return commits[len(commits)-1], true, nil
}

// RollbackTo removes every offsets and commit entry with epoch > keep,
// implementing manual rollback (§7.2): after restart the engine re-plans
// from the prefix ending at keep. RollbackTo(-1) clears the whole log.
func (l *Log) RollbackTo(keep int64) error {
	for _, dir := range []string{l.offsetsDir, l.commitsDir} {
		epochs, err := listEpochs(dir)
		if err != nil {
			return err
		}
		// Delete newest-first so a crash mid-rollback leaves a contiguous,
		// consistent prefix.
		for i := len(epochs) - 1; i >= 0; i-- {
			if epochs[i] <= keep {
				break
			}
			if err := os.Remove(epochFile(dir, epochs[i])); err != nil {
				return fmt.Errorf("wal: rollback: %w", err)
			}
		}
	}
	return nil
}

// Purge removes entries older than before (exclusive), bounding log growth.
// The latest committed epoch is always retained.
func (l *Log) Purge(before int64) error {
	latest, ok, err := l.LatestCommit()
	if err != nil {
		return err
	}
	if ok && before > latest {
		before = latest
	}
	for _, dir := range []string{l.offsetsDir, l.commitsDir} {
		epochs, err := listEpochs(dir)
		if err != nil {
			return err
		}
		for _, e := range epochs {
			if e >= before {
				break
			}
			if err := os.Remove(epochFile(dir, e)); err != nil {
				return fmt.Errorf("wal: purge: %w", err)
			}
		}
	}
	return nil
}

// RecoveryPoint describes where a restarted query resumes: the next epoch
// to run, and the epoch whose output may be partially written (needs
// re-running with identical offsets) if any.
type RecoveryPoint struct {
	// NextEpoch is the epoch id the engine should execute next.
	NextEpoch int64
	// Replay, when non-nil, is a logged-but-uncommitted epoch that must be
	// re-executed with exactly these offsets before new epochs start.
	Replay *Entry
	// Watermark is the event-time watermark to restore, from the most
	// recent offsets entry.
	Watermark int64
}

// Recover computes the recovery point from the log state, implementing the
// restart protocol of §6.1: find the last epoch not committed to the sink,
// re-run it with the same offsets, then continue.
func (l *Log) Recover() (RecoveryPoint, error) {
	latest, ok, err := l.LatestOffsets()
	if err != nil {
		return RecoveryPoint{}, err
	}
	if !ok {
		return RecoveryPoint{NextEpoch: 0}, nil
	}
	committed, anyCommit, err := l.LatestCommit()
	if err != nil {
		return RecoveryPoint{}, err
	}
	rp := RecoveryPoint{NextEpoch: latest.Epoch + 1, Watermark: latest.Watermark}
	if !anyCommit || committed < latest.Epoch {
		rp.Replay = &latest
	}
	return rp, nil
}
