package wal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"structream/internal/fsx"
)

// Sharded epoch commit (the partitioned runtime's barrier protocol).
//
// Under engine.Options.Workers > 1 every state partition seals its own
// WAL segment after its store commits: a small framed record binding
// (epoch, partition) to the state version and row counts that partition
// produced. Seals happen in parallel and are NOT the commit point — a
// segment is a promise, not a decision. The epoch commits only when the
// barrier verifies that all partitions sealed and writes the single
// commit manifest (an ordinary commit-log entry carrying the segment
// digests). A crash anywhere between the first seal and the manifest
// leaves the epoch uncommitted; recovery drops the orphaned seals and
// replays the epoch with identical offsets, re-sealing byte-identical
// segments — Segment carries no timestamp precisely so that replay
// rewrites the same bytes.

// Segment is one partition's slice of an epoch commit, sealed after the
// partition's state store committed and before the barrier manifest.
type Segment struct {
	Epoch     int64 `json:"epoch"`
	Partition int   `json:"partition"`
	// StateVersion is the state-store version this partition committed
	// for the epoch (the epoch id; recorded explicitly so a manifest
	// reader needs no engine conventions).
	StateVersion int64 `json:"stateVersion"`
	// RowsIn / RowsOut count the partition's shuffled input rows and
	// emitted output rows; StateKeys is the partition's live key count
	// after the commit.
	RowsIn    int64 `json:"rowsIn"`
	RowsOut   int64 `json:"rowsOut"`
	StateKeys int64 `json:"stateKeys"`

	LengthBytes int64  `json:"lengthBytes,omitempty"`
	CRC32C      string `json:"crc32c,omitempty"`
}

// SegmentRef is a manifest's record of one sealed segment: the partition
// and the digest of its sealed bytes' canonical form.
type SegmentRef struct {
	Partition int    `json:"partition"`
	CRC32C    string `json:"crc32c"`
}

func segmentFile(dir string, epoch int64, part int) string {
	return filepath.Join(dir, fmt.Sprintf("%012d.part-%03d.json", epoch, part))
}

// WriteSegment durably seals one partition's segment. Re-sealing the same
// (epoch, partition) — a replayed epoch — atomically overwrites the file
// with identical bytes, so seals are idempotent.
func (l *Log) WriteSegment(s Segment) error {
	s.LengthBytes, s.CRC32C = 0, ""
	data, err := frameJSON(&s, func(n int64, crc string) { s.LengthBytes, s.CRC32C = n, crc })
	if err != nil {
		return err
	}
	if err := l.writeAtomic(segmentFile(l.segmentsDir, s.Epoch, s.Partition), data); err != nil {
		return err
	}
	l.segmentsWritten.Add(1)
	return nil
}

// ReadSegment loads and verifies one partition's seal; ok is false when
// it does not exist. Truncated or bit-flipped seals are an error naming
// the file.
func (l *Log) ReadSegment(epoch int64, part int) (Segment, bool, error) {
	path := segmentFile(l.segmentsDir, epoch, part)
	data, err := l.fs.ReadFile(path)
	if os.IsNotExist(err) {
		return Segment{}, false, nil
	}
	if err != nil {
		return Segment{}, false, fmt.Errorf("wal: %w", err)
	}
	var s Segment
	if err := json.Unmarshal(data, &s); err != nil {
		return Segment{}, false, fmt.Errorf("wal: %w: %s: not a valid segment (truncated write?): %v", fsx.ErrCorrupt, path, err)
	}
	if err := verifySegmentFrame(path, s); err != nil {
		return Segment{}, false, err
	}
	return s, true, nil
}

// verifySegmentFrame re-derives the frame of a decoded segment and checks
// it, exactly as verifyEntryFrame does for offsets entries.
func verifySegmentFrame(path string, s Segment) error {
	if s.CRC32C == "" && s.LengthBytes == 0 {
		return nil
	}
	wantLen, wantCRC := s.LengthBytes, s.CRC32C
	s.LengthBytes, s.CRC32C = 0, ""
	body, err := json.MarshalIndent(&s, "", "  ")
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if int64(len(body)) != wantLen {
		return fmt.Errorf("wal: %w: %s: segment is %d canonical bytes but frame says %d (edited or truncated)", fsx.ErrCorrupt, path, len(body), wantLen)
	}
	if got := fmt.Sprintf("%08x", fsx.Checksum(body)); got != wantCRC {
		return fmt.Errorf("wal: %w: %s: crc32c mismatch (stored %s, computed %s — bit rot or tampering)", fsx.ErrCorrupt, path, wantCRC, got)
	}
	return nil
}

// CommitBarrier is the sharded epoch's single commit point: it verifies
// that all parts partitions sealed valid segments for the epoch, then
// writes the commit manifest referencing their digests. A missing, stale,
// or corrupt seal fails the barrier — the epoch stays uncommitted and
// recovery will replay it.
func (l *Log) CommitBarrier(epoch int64, parts int) error {
	refs := make([]SegmentRef, 0, parts)
	for p := 0; p < parts; p++ {
		s, ok, err := l.ReadSegment(epoch, p)
		if err != nil {
			return fmt.Errorf("wal: barrier for epoch %d: %w", epoch, err)
		}
		if !ok {
			return fmt.Errorf("wal: barrier for epoch %d: partition %d never sealed its segment", epoch, p)
		}
		if s.Epoch != epoch || s.Partition != p {
			return fmt.Errorf("wal: barrier for epoch %d: partition %d seal names epoch %d partition %d", epoch, p, s.Epoch, s.Partition)
		}
		refs = append(refs, SegmentRef{Partition: p, CRC32C: s.CRC32C})
	}
	c := Commit{
		Epoch:      epoch,
		Timestamp:  time.Now().UTC().Format(time.RFC3339Nano),
		Partitions: parts,
		Segments:   refs,
	}
	data, err := frameJSON(&c, func(n int64, crc string) { c.LengthBytes, c.CRC32C = n, crc })
	if err != nil {
		return err
	}
	if err := l.writeAtomic(epochFile(l.commitsDir, epoch), data); err != nil {
		return err
	}
	l.commitsWritten.Add(1)
	return nil
}

// ReadCommit loads one epoch's commit record (plain or barrier manifest);
// ok is false when the epoch has not committed.
func (l *Log) ReadCommit(epoch int64) (Commit, bool, error) {
	path := epochFile(l.commitsDir, epoch)
	data, err := l.fs.ReadFile(path)
	if os.IsNotExist(err) {
		return Commit{}, false, nil
	}
	if err != nil {
		return Commit{}, false, fmt.Errorf("wal: %w", err)
	}
	var c Commit
	if err := json.Unmarshal(data, &c); err != nil {
		return Commit{}, false, fmt.Errorf("wal: %w: %s: not a valid commit (truncated write?): %v", fsx.ErrCorrupt, path, err)
	}
	return c, true, nil
}

// segmentEpochPart parses a segment file name; ok is false for foreign
// files.
func segmentEpochPart(name string) (epoch int64, part int, ok bool) {
	if filepath.Ext(name) != ".json" {
		return 0, 0, false
	}
	stem := name[:len(name)-len(".json")]
	i := strings.Index(stem, ".part-")
	if i < 0 {
		return 0, 0, false
	}
	e, err := strconv.ParseInt(stem[:i], 10, 64)
	if err != nil {
		return 0, 0, false
	}
	p, err := strconv.Atoi(stem[i+len(".part-"):])
	if err != nil {
		return 0, 0, false
	}
	return e, p, true
}

// SegmentPartitions lists the partitions with sealed segments for an
// epoch, ascending — the barrier's and the tests' view of seal progress.
func (l *Log) SegmentPartitions(epoch int64) ([]int, error) {
	entries, err := l.fs.ReadDir(l.segmentsDir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var out []int
	for _, de := range entries {
		if e, p, ok := segmentEpochPart(de.Name()); ok && e == epoch {
			out = append(out, p)
		}
	}
	sort.Ints(out)
	return out, nil
}

// pruneSegments removes segment files whose epoch fails keep. Deletion
// order is by file name, so crash schedules over the cleanup are
// deterministic.
func (l *Log) pruneSegments(keep func(epoch int64) bool) error {
	entries, err := l.fs.ReadDir(l.segmentsDir)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, de := range entries {
		names = append(names, de.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		e, _, ok := segmentEpochPart(name)
		if !ok || keep(e) {
			continue
		}
		if err := l.fs.Remove(filepath.Join(l.segmentsDir, name)); err != nil {
			return fmt.Errorf("wal: pruning segments: %w", err)
		}
	}
	return nil
}

// dropUncommittedSegments removes seals for epochs newer than the last
// committed epoch. Recovery runs this so no partial-barrier state is
// visible after a restart: an epoch either has its manifest (and keeps
// its seals until purge) or replays from scratch and re-seals.
func (l *Log) dropUncommittedSegments(committed int64, anyCommit bool) error {
	return l.pruneSegments(func(e int64) bool { return anyCommit && e <= committed })
}
