package supervisor

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"structream/internal/incremental"
	"structream/internal/sql"
	"structream/internal/sql/analysis"
	"structream/internal/sql/logical"
	"structream/internal/sql/optimizer"
)

// The supervisor package sits above the engine, so engine's in-package test
// helpers are out of reach (importing them back would cycle). These mirror
// engine_test.go's compile/schema helpers.

var eventsSchema = sql.NewSchema(
	sql.Field{Name: "k", Type: sql.TypeString},
	sql.Field{Name: "v", Type: sql.TypeFloat64},
	sql.Field{Name: "ts", Type: sql.TypeTimestamp},
)

func streamScan(name string) *logical.Scan {
	return &logical.Scan{Name: name, Streaming: true, Out: eventsSchema}
}

// projectionPlan is the standard chaos workload: a deterministic map-only
// query (k, v*2) whose output row set equals its input row set.
func projectionPlan() logical.Plan {
	return &logical.Project{
		Child: streamScan("events"),
		Exprs: []sql.Expr{sql.Col("k"), sql.As(sql.Mul(sql.Col("v"), sql.Lit(2.0)), "v2")},
	}
}

// aggregationPlan is the stateful chaos workload: count per group key in
// Update mode. Chaos rows use unique keys, so every input row updates its
// own group exactly once and total output lines equal total input rows —
// the same convergence arithmetic the projection workload enjoys, but with
// a state store that must survive every restart.
func aggregationPlan() logical.Plan {
	return &logical.Aggregate{
		Child: streamScan("events"),
		Keys:  []sql.Expr{sql.Col("k")},
		Aggs:  []logical.NamedAgg{{Agg: sql.CountAll(), Name: "cnt"}},
	}
}

func compileQuery(t *testing.T, plan logical.Plan, mode logical.OutputMode) *incremental.Query {
	t.Helper()
	analyzed, err := analysis.Analyze(plan)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if err := analysis.CheckStreaming(analyzed, mode); err != nil {
		t.Fatalf("check streaming: %v", err)
	}
	q, err := incremental.Compile(optimizer.Optimize(analyzed), mode, nil)
	if err != nil {
		t.Fatalf("incrementalize: %v", err)
	}
	return q
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out after %v waiting for %s", timeout, msg)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// snapshotJSONDir reads every .json file in dir, keyed by file name.
func snapshotJSONDir(t *testing.T, dir string) map[string]string {
	t.Helper()
	out := map[string]string{}
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return out
	}
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = string(b)
	}
	return out
}

// countJSONLines sums output lines across every epoch file in dir.
func countJSONLines(t *testing.T, dir string) int {
	t.Helper()
	n := 0
	for _, content := range snapshotJSONDir(t, dir) {
		n += strings.Count(content, "\n")
	}
	return n
}

// allJSONLines returns every output line in dir, sorted.
func allJSONLines(t *testing.T, dir string) []string {
	t.Helper()
	var lines []string
	for _, content := range snapshotJSONDir(t, dir) {
		for _, l := range strings.Split(content, "\n") {
			if l != "" {
				lines = append(lines, l)
			}
		}
	}
	sort.Strings(lines)
	return lines
}
