// Package supervisor implements the self-healing query lifecycle the
// paper's operational story assumes but the engine alone does not provide
// (§6.2, §7.1): a failed driver restarts automatically from the
// write-ahead log, and the user never babysits the query. A Supervisor
// owns one query's restart policy — errors are classified transient or
// fatal, transient failures trigger a re-Start from the checkpoint after
// exponential backoff with jitter, and a max-restarts-per-window circuit
// breaker stops a crash loop from spinning forever. Exactly-once output is
// preserved across restarts because recovery replays the in-flight epoch
// with identical offsets into idempotent sinks; the supervisor adds only
// the *automation* and its observability: lifecycle events
// (QueryStarted/QueryFailed/QueryRestarted/QueryGaveUp) through a listener
// API and restart/backoff counters threaded into QueryProgress.
package supervisor

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"structream/internal/engine"
	"structream/internal/fsx"
)

// Class is the supervisor's verdict on a query failure.
type Class int

const (
	// Transient failures — flaky I/O, a crashed process, a hung epoch —
	// are the restart-and-recover cases of §6.2.
	Transient Class = iota
	// Fatal failures — corrupt committed history, logic errors the caller
	// marked unrecoverable — would fail again identically after restart.
	Fatal
)

// String renders the class.
func (c Class) String() string {
	if c == Fatal {
		return "fatal"
	}
	return "transient"
}

// Classifier maps a query failure to a Class.
type Classifier func(error) Class

// errFatal is the sentinel wrapped by MarkFatal.
var errFatal = errors.New("supervisor: fatal")

// MarkFatal wraps err so DefaultClassifier treats it as fatal regardless
// of its underlying cause.
func MarkFatal(err error) error {
	return fmt.Errorf("%w: %w", errFatal, err)
}

// DefaultClassifier encodes the repo's error taxonomy (DESIGN.md §7):
//
//   - transient: retryable I/O (fsx.ErrTransient, EIO/ENOSPC class), a
//     simulated or real process crash (fsx.ErrCrash — restarting from the
//     WAL is exactly the §6.1 remedy), and watchdog epoch timeouts
//     (engine.ErrEpochTimeout — a hang is a crash that forgot to exit);
//   - fatal: detected corruption of committed history (fsx.ErrCorrupt —
//     recovery would fail again identically), and anything wrapped by
//     MarkFatal;
//   - unknown errors default to transient: the circuit breaker bounds the
//     damage of optimism, while defaulting to fatal would turn every novel
//     transient into a dead query.
func DefaultClassifier(err error) Class {
	switch {
	case err == nil:
		return Transient
	case errors.Is(err, errFatal), fsx.IsCorrupt(err):
		return Fatal
	case fsx.IsTransient(err), errors.Is(err, fsx.ErrCrash), errors.Is(err, engine.ErrEpochTimeout):
		return Transient
	default:
		return Transient
	}
}

// Policy is a restart policy: classification, backoff shape, and the
// circuit breaker.
type Policy struct {
	// Classify maps failures to transient/fatal (default DefaultClassifier).
	Classify Classifier
	// InitialBackoff is the delay before the first restart (default 10ms).
	InitialBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 5s).
	MaxBackoff time.Duration
	// Multiplier grows the backoff after each consecutive failure
	// (default 2).
	Multiplier float64
	// Jitter is the fraction of the backoff randomized on top of it, so a
	// fleet of supervised queries does not restart in lockstep
	// (default 0.2).
	Jitter float64
	// MaxRestartsPerWindow is the circuit breaker: more than this many
	// restarts inside Window means the query gives up even on transient
	// errors (default 8; negative = unlimited).
	MaxRestartsPerWindow int
	// Window is the circuit breaker's sliding window (default 1 minute).
	Window time.Duration
	// StableAfter resets the backoff to InitialBackoff once an instance
	// has run this long without failing (default 10×InitialBackoff).
	StableAfter time.Duration
}

func (p Policy) withDefaults() Policy {
	if p.Classify == nil {
		p.Classify = DefaultClassifier
	}
	if p.InitialBackoff <= 0 {
		p.InitialBackoff = 10 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 5 * time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	} else if p.Jitter == 0 {
		p.Jitter = 0.2
	}
	if p.MaxRestartsPerWindow == 0 {
		p.MaxRestartsPerWindow = 8
	}
	if p.Window <= 0 {
		p.Window = time.Minute
	}
	if p.StableAfter <= 0 {
		p.StableAfter = 10 * p.InitialBackoff
	}
	return p
}

// EventKind labels a lifecycle event.
type EventKind int

const (
	// QueryStarted: an instance of the query began running (the first
	// start and every restart emit it).
	QueryStarted EventKind = iota
	// QueryFailed: an instance terminated with an error.
	QueryFailed
	// QueryRestarted: a replacement instance was started after backoff.
	QueryRestarted
	// QueryGaveUp: the supervisor stopped restarting — a fatal error or an
	// open circuit breaker.
	QueryGaveUp
	// QueryStopped: the query terminated cleanly (Stop, or a finite
	// trigger completed).
	QueryStopped
)

// String renders the kind.
func (k EventKind) String() string {
	switch k {
	case QueryStarted:
		return "QueryStarted"
	case QueryFailed:
		return "QueryFailed"
	case QueryRestarted:
		return "QueryRestarted"
	case QueryGaveUp:
		return "QueryGaveUp"
	case QueryStopped:
		return "QueryStopped"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one lifecycle transition of a supervised query.
type Event struct {
	Kind EventKind
	// Query is the supervised query's name.
	Query string
	// Restart is how many restarts have happened so far (the first start
	// is 0).
	Restart int64
	// Err is the failure that caused a Failed/GaveUp event.
	Err error
	// Class is the classification of Err, when Err is set.
	Class Class
	// Backoff is the delay slept before a Restarted event.
	Backoff time.Duration
	// Instance is the query handle a Started/Restarted event refers to,
	// so layers holding stale handles (the serving hub) can re-attach to
	// the replacement without polling Query.
	Instance *engine.StreamingQuery
	// Time is when the event occurred.
	Time time.Time
}

// Spec describes what to supervise: a way to (re)start the query, and the
// policy to do it under. Start is called once per instance; restart is 0
// for the first. It must build a fresh StreamingQuery from the same
// checkpoint so recovery resumes where the failed instance left off —
// including fresh fault-domain resources (e.g. a new fsx.FaultFS models
// the restarted process).
type Spec struct {
	Name   string
	Start  func(restart int64) (*engine.StreamingQuery, error)
	Policy Policy
}

// Supervisor owns the restart loop of one streaming query.
type Supervisor struct {
	spec   Spec
	policy Policy

	stopCh   chan struct{}
	doneCh   chan struct{}
	stopOnce sync.Once

	mu        sync.Mutex
	sq        *engine.StreamingQuery
	status    engine.QueryStatus
	restarts  int64
	gaveUp    bool
	err       error
	listeners []func(Event)
	events    []Event
	rng       *rand.Rand
}

// Supervise starts the query's first instance and the supervision loop.
// An error from the very first Start is returned synchronously — a query
// that cannot start at all is a configuration problem, not a failure to
// heal.
func Supervise(spec Spec) (*Supervisor, error) {
	if spec.Start == nil {
		return nil, fmt.Errorf("supervisor: Spec.Start is required")
	}
	if spec.Name == "" {
		spec.Name = "query"
	}
	s := &Supervisor{
		spec:   spec,
		policy: spec.Policy.withDefaults(),
		stopCh: make(chan struct{}),
		doneCh: make(chan struct{}),
		rng:    rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	sq, err := spec.Start(0)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.sq = sq
	s.status = engine.StatusRunning
	s.mu.Unlock()
	s.emit(Event{Kind: QueryStarted, Query: spec.Name, Instance: sq})
	go s.run(sq)
	return s, nil
}

// Query returns the current query instance. After a restart this is a new
// handle; holders of old handles see them as Failed/Restarting.
func (s *Supervisor) Query() *engine.StreamingQuery {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sq
}

// Status reports the supervised lifecycle state: Running, Restarting
// while backing off between instances, Failed after giving up, Stopped
// after a clean termination.
func (s *Supervisor) Status() engine.QueryStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.status
}

// Restarts reports how many times the query has been restarted.
func (s *Supervisor) Restarts() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.restarts
}

// Err returns the terminal error after the supervisor gave up, or nil.
func (s *Supervisor) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// AddListener registers a lifecycle listener for future events.
func (s *Supervisor) AddListener(fn func(Event)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.listeners = append(s.listeners, fn)
}

// Events returns the lifecycle history so far.
func (s *Supervisor) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// Stop terminates supervision and the current query instance, then waits
// for the loop to exit. A stopped supervisor never restarts.
func (s *Supervisor) Stop() error {
	s.stopOnce.Do(func() { close(s.stopCh) })
	if sq := s.Query(); sq != nil {
		sq.Stop()
	}
	<-s.doneCh
	return s.Err()
}

// Wait blocks until the supervisor terminates (clean stop or gave up) and
// returns the terminal error, if any.
func (s *Supervisor) Wait() error {
	<-s.doneCh
	return s.Err()
}

// Done returns a channel closed when supervision terminates.
func (s *Supervisor) Done() <-chan struct{} { return s.doneCh }

func (s *Supervisor) emit(ev Event) {
	ev.Time = time.Now()
	s.mu.Lock()
	ev.Restart = s.restarts
	s.events = append(s.events, ev)
	var listeners []func(Event)
	listeners = append(listeners, s.listeners...)
	s.mu.Unlock()
	for _, fn := range listeners {
		fn(ev)
	}
}

func (s *Supervisor) setTerminal(status engine.QueryStatus, err error) {
	s.mu.Lock()
	s.status = status
	if s.err == nil {
		s.err = err
	}
	s.gaveUp = s.gaveUp || status == engine.StatusFailed
	s.mu.Unlock()
}

// run is the supervision loop: wait for the instance to terminate,
// classify, back off, restart — or give up.
func (s *Supervisor) run(sq *engine.StreamingQuery) {
	defer close(s.doneCh)
	backoff := s.policy.InitialBackoff
	var window []time.Time // restart timestamps inside the breaker window
	for {
		started := time.Now()
		select {
		case <-sq.Done():
		case <-s.stopCh:
			sq.Stop()
			<-sq.Done()
		}
		err := sq.Err()

		select {
		case <-s.stopCh:
			// User-requested stop wins over whatever the instance did.
			s.setTerminal(engine.StatusStopped, nil)
			s.emit(Event{Kind: QueryStopped, Query: s.spec.Name})
			return
		default:
		}
		if err == nil {
			// Clean termination: a finite trigger finished, or Stop was
			// called directly on the instance.
			s.setTerminal(engine.StatusStopped, nil)
			s.emit(Event{Kind: QueryStopped, Query: s.spec.Name})
			return
		}

		class := s.policy.Classify(err)
		s.emit(Event{Kind: QueryFailed, Query: s.spec.Name, Err: err, Class: class})
		if class == Fatal {
			s.setTerminal(engine.StatusFailed, err)
			s.emit(Event{Kind: QueryGaveUp, Query: s.spec.Name, Err: err, Class: class})
			return
		}

		// Circuit breaker: too many restarts inside the sliding window.
		now := time.Now()
		live := window[:0]
		for _, t := range window {
			if now.Sub(t) <= s.policy.Window {
				live = append(live, t)
			}
		}
		window = live
		if s.policy.MaxRestartsPerWindow >= 0 && len(window) >= s.policy.MaxRestartsPerWindow {
			err = fmt.Errorf("supervisor: circuit breaker open (%d restarts in %v): %w",
				len(window), s.policy.Window, err)
			s.setTerminal(engine.StatusFailed, err)
			s.emit(Event{Kind: QueryGaveUp, Query: s.spec.Name, Err: err, Class: class})
			return
		}

		// A long stable run earns a backoff reset.
		if time.Since(started) >= s.policy.StableAfter {
			backoff = s.policy.InitialBackoff
		}
		sleep := backoff
		if j := s.policy.Jitter; j > 0 {
			s.mu.Lock()
			sleep += time.Duration(s.rng.Int63n(int64(float64(backoff)*j) + 1))
			s.mu.Unlock()
		}
		sq.MarkRestarting()
		s.mu.Lock()
		s.status = engine.StatusRestarting
		s.mu.Unlock()
		timer := time.NewTimer(sleep)
		select {
		case <-timer.C:
		case <-s.stopCh:
			timer.Stop()
			s.setTerminal(engine.StatusStopped, nil)
			s.emit(Event{Kind: QueryStopped, Query: s.spec.Name})
			return
		}
		backoff = time.Duration(float64(backoff) * s.policy.Multiplier)
		if backoff > s.policy.MaxBackoff {
			backoff = s.policy.MaxBackoff
		}

		s.mu.Lock()
		restarts := s.restarts + 1
		s.mu.Unlock()
		next, startErr := s.spec.Start(restarts)
		if startErr != nil {
			// A failed restart is itself a failure: classify it and go
			// around again (or give up) without a live instance.
			class := s.policy.Classify(startErr)
			s.emit(Event{Kind: QueryFailed, Query: s.spec.Name, Err: startErr, Class: class})
			if class == Fatal {
				s.setTerminal(engine.StatusFailed, startErr)
				s.emit(Event{Kind: QueryGaveUp, Query: s.spec.Name, Err: startErr, Class: class})
				return
			}
			window = append(window, time.Now())
			// Model the failed attempt as an already-dead instance so the
			// loop's Done/Err plumbing stays uniform.
			sq = deadQuery(startErr)
			continue
		}
		window = append(window, time.Now())
		s.mu.Lock()
		s.restarts = restarts
		s.sq = next
		s.status = engine.StatusRunning
		s.mu.Unlock()
		// Thread lifetime restart/backoff counters into the new instance's
		// registry so they surface in QueryProgress events.
		next.Metrics().Counter("restarts").Add(restarts)
		next.Metrics().Gauge("restartBackoffMillis").Set(sleep.Milliseconds())
		s.emit(Event{Kind: QueryRestarted, Query: s.spec.Name, Backoff: sleep, Instance: next})
		s.emit(Event{Kind: QueryStarted, Query: s.spec.Name, Instance: next})
		sq = next
	}
}

// deadQuery builds a terminated query handle carrying err, standing in
// for an instance that failed to even start.
func deadQuery(err error) *engine.StreamingQuery {
	return engine.NewFailedQuery(err)
}
