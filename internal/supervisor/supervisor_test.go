package supervisor

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"structream/internal/engine"
	"structream/internal/fsx"
	"structream/internal/msgbus"
	"structream/internal/sinks"
	"structream/internal/sources"
	"structream/internal/sql"
	"structream/internal/sql/codec"
	"structream/internal/sql/logical"
)

func TestDefaultClassifier(t *testing.T) {
	cases := []struct {
		err  error
		want Class
	}{
		{fsx.Transient("flaky nic"), Transient},
		{fmt.Errorf("wrap: %w", fsx.ErrCrash), Transient},
		{fmt.Errorf("epoch 3 hung: %w", engine.ErrEpochTimeout), Transient},
		{errors.New("never seen before"), Transient},
		{fmt.Errorf("frame: %w", fsx.ErrCorrupt), Fatal},
		{MarkFatal(errors.New("schema drift")), Fatal},
	}
	for _, c := range cases {
		if got := DefaultClassifier(c.err); got != c.want {
			t.Errorf("classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

// TestSupervisorRestartsOnTransientFailure: a query whose source throws a
// burst of transient errors is restarted from its checkpoint and finishes
// the stream; the restart surfaces in lifecycle events, Restarts(), and in
// QueryProgress counters.
func TestSupervisorRestartsOnTransientFailure(t *testing.T) {
	inner := sources.NewMemorySource("events", eventsSchema)
	for i := 0; i < 40; i++ {
		inner.AddData(sql.Row{fmt.Sprintf("k%d", i), float64(i), int64(0)})
	}
	flaky := sources.NewFlakySource(inner)
	sink := sinks.NewMemorySink()
	ckpt := t.TempDir()
	var instances atomic.Int64

	var mu sync.Mutex
	var heard []EventKind

	sup, err := Supervise(Spec{
		Name: "restart-test",
		Start: func(restart int64) (*engine.StreamingQuery, error) {
			if instances.Add(1) == 1 {
				// Enough consecutive failures to exhaust both the engine's
				// I/O retry and the cluster's task retry.
				flaky.FailReads(fsx.Transient("injected read fault"), 20)
			} else {
				flaky.FailReads(nil, 0)
			}
			q := compileQuery(t, projectionPlan(), logical.Append)
			return engine.Start(q, map[string]sources.Source{"events": flaky}, sink, engine.Options{
				Checkpoint:   ckpt,
				Trigger:      engine.ProcessingTimeTrigger{Interval: 2 * time.Millisecond},
				MaxIORetries: 1,
				RetryBackoff: time.Millisecond,
			})
		},
		Policy: Policy{InitialBackoff: 2 * time.Millisecond, MaxRestartsPerWindow: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Stop()
	sup.AddListener(func(ev Event) {
		mu.Lock()
		heard = append(heard, ev.Kind)
		mu.Unlock()
	})

	// The replacement instance can push rows before the supervisor finishes
	// recording the restart, so wait for the bookkeeping too, not just the
	// sink.
	waitFor(t, 10*time.Second, func() bool {
		return len(sink.Rows()) == 40 && sup.Restarts() >= 1 && sup.Status() == engine.StatusRunning
	}, "all rows through the sink and restart recorded")
	if got := sup.Restarts(); got < 1 {
		t.Errorf("Restarts() = %d, want >= 1", got)
	}
	if got := sup.Status(); got != engine.StatusRunning {
		t.Errorf("Status() = %v, want Running", got)
	}

	kinds := map[EventKind]int{}
	for _, ev := range sup.Events() {
		kinds[ev.Kind]++
	}
	if kinds[QueryStarted] < 2 || kinds[QueryFailed] < 1 || kinds[QueryRestarted] < 1 {
		t.Errorf("event counts = %v, want started>=2 failed>=1 restarted>=1", kinds)
	}
	mu.Lock()
	heardAny := len(heard) > 0
	mu.Unlock()
	if !heardAny {
		t.Error("listener registered after start received no events")
	}

	// Restart bookkeeping must be visible in the engine's progress events
	// (on epochs run after the restart; recovery replay precedes the
	// supervisor's counter threading).
	inner.AddData(sql.Row{"extra", 99.0, int64(0)})
	waitFor(t, 5*time.Second, func() bool {
		p, ok := sup.Query().LastProgress()
		return ok && p.NumInputRows > 0 && p.Restarts == sup.Restarts()
	}, "Restarts counter in QueryProgress")
	if p, _ := sup.Query().LastProgress(); p.RestartBackoffMillis < 1 {
		t.Errorf("RestartBackoffMillis = %d, want >= 1", p.RestartBackoffMillis)
	}

	if err := sup.Stop(); err != nil {
		t.Errorf("Stop() = %v", err)
	}
	if got := sup.Status(); got != engine.StatusStopped {
		t.Errorf("after Stop, Status() = %v", got)
	}
}

// TestSupervisorGivesUpOnFatal: a classified-fatal error is never retried.
func TestSupervisorGivesUpOnFatal(t *testing.T) {
	inner := sources.NewMemorySource("events", eventsSchema)
	inner.AddData(sql.Row{"a", 1.0, int64(0)})
	flaky := sources.NewFlakySource(inner)
	flaky.FailReads(MarkFatal(errors.New("incompatible schema")), 1000)
	sink := sinks.NewMemorySink()
	var instances atomic.Int64

	sup, err := Supervise(Spec{
		Name: "fatal-test",
		Start: func(restart int64) (*engine.StreamingQuery, error) {
			instances.Add(1)
			q := compileQuery(t, projectionPlan(), logical.Append)
			return engine.Start(q, map[string]sources.Source{"events": flaky}, sink, engine.Options{
				Checkpoint:   t.TempDir(),
				Trigger:      engine.ProcessingTimeTrigger{Interval: time.Millisecond},
				MaxIORetries: -1,
			})
		},
		Policy: Policy{InitialBackoff: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	werr := sup.Wait()
	if werr == nil || !errors.Is(werr, errFatal) {
		t.Fatalf("Wait() = %v, want the marked-fatal error", werr)
	}
	if got := sup.Status(); got != engine.StatusFailed {
		t.Errorf("Status() = %v, want Failed", got)
	}
	if got := sup.Restarts(); got != 0 {
		t.Errorf("Restarts() = %d, want 0 (fatal must not restart)", got)
	}
	if got := instances.Load(); got != 1 {
		t.Errorf("instances = %d, want 1", got)
	}
	evs := sup.Events()
	if len(evs) == 0 || evs[len(evs)-1].Kind != QueryGaveUp {
		t.Errorf("last event = %+v, want QueryGaveUp", evs[len(evs)-1])
	}
	if evs[len(evs)-1].Class != Fatal {
		t.Errorf("gave-up class = %v, want Fatal", evs[len(evs)-1].Class)
	}
}

// TestCircuitBreakerBoundsCrashLoop: a query that fails on every instance
// stops being restarted once MaxRestartsPerWindow is exhausted.
func TestCircuitBreakerBoundsCrashLoop(t *testing.T) {
	inner := sources.NewMemorySource("events", eventsSchema)
	inner.AddData(sql.Row{"a", 1.0, int64(0)})
	flaky := sources.NewFlakySource(inner)
	flaky.FailReads(fsx.Transient("persistently flaky"), 1<<30)

	sup, err := Supervise(Spec{
		Name: "breaker-test",
		Start: func(restart int64) (*engine.StreamingQuery, error) {
			q := compileQuery(t, projectionPlan(), logical.Append)
			return engine.Start(q, map[string]sources.Source{"events": flaky}, sink(), engine.Options{
				Checkpoint:   t.TempDir(),
				Trigger:      engine.ProcessingTimeTrigger{Interval: time.Millisecond},
				MaxIORetries: -1,
			})
		},
		Policy: Policy{
			InitialBackoff:       time.Millisecond,
			MaxBackoff:           2 * time.Millisecond,
			MaxRestartsPerWindow: 3,
			Window:               time.Minute,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	werr := sup.Wait()
	if werr == nil || !strings.Contains(werr.Error(), "circuit breaker open") {
		t.Fatalf("Wait() = %v, want circuit breaker error", werr)
	}
	if got := sup.Restarts(); got != 3 {
		t.Errorf("Restarts() = %d, want exactly MaxRestartsPerWindow=3", got)
	}
	evs := sup.Events()
	if evs[len(evs)-1].Kind != QueryGaveUp {
		t.Errorf("last event = %v, want QueryGaveUp", evs[len(evs)-1].Kind)
	}
}

func sink() *sinks.MemorySink { return sinks.NewMemorySink() }

// TestBackoffGrowsExponentially: with jitter disabled, consecutive restart
// backoffs follow InitialBackoff × Multiplier^n, capped at MaxBackoff, and
// each is recorded on its QueryRestarted event.
func TestBackoffGrowsExponentially(t *testing.T) {
	inner := sources.NewMemorySource("events", eventsSchema)
	inner.AddData(sql.Row{"a", 1.0, int64(0)})
	flaky := sources.NewFlakySource(inner)
	flaky.FailReads(fsx.Transient("always"), 1<<30)

	sup, err := Supervise(Spec{
		Name: "backoff-test",
		Start: func(restart int64) (*engine.StreamingQuery, error) {
			q := compileQuery(t, projectionPlan(), logical.Append)
			return engine.Start(q, map[string]sources.Source{"events": flaky}, sink(), engine.Options{
				Checkpoint:   t.TempDir(),
				Trigger:      engine.ProcessingTimeTrigger{Interval: time.Millisecond},
				MaxIORetries: -1,
			})
		},
		Policy: Policy{
			InitialBackoff:       2 * time.Millisecond,
			MaxBackoff:           16 * time.Millisecond,
			Multiplier:           2,
			Jitter:               -1, // exact doubling for the test
			MaxRestartsPerWindow: 6,
			Window:               time.Minute,
			StableAfter:          time.Hour, // never reset within the test
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if werr := sup.Wait(); werr == nil {
		t.Fatal("crash loop should end in an error")
	}
	var backoffs []time.Duration
	for _, ev := range sup.Events() {
		if ev.Kind == QueryRestarted {
			backoffs = append(backoffs, ev.Backoff)
		}
	}
	want := []time.Duration{2, 4, 8, 16, 16, 16}
	if len(backoffs) != 6 {
		t.Fatalf("restarted %d times, want 6 (backoffs %v)", len(backoffs), backoffs)
	}
	for i, b := range backoffs {
		if b != want[i]*time.Millisecond {
			t.Errorf("backoff %d = %v, want %v", i, b, want[i]*time.Millisecond)
		}
	}
}

// TestSupervisorRestartsFailedStart: an error out of Spec.Start on a
// restart attempt is classified and retried like any other failure, and
// the supervisor recovers once Start succeeds again.
func TestSupervisorRestartsFailedStart(t *testing.T) {
	inner := sources.NewMemorySource("events", eventsSchema)
	for i := 0; i < 8; i++ {
		inner.AddData(sql.Row{fmt.Sprintf("k%d", i), float64(i), int64(0)})
	}
	flaky := sources.NewFlakySource(inner)
	sink := sinks.NewMemorySink()
	ckpt := t.TempDir()
	var instances atomic.Int64

	sup, err := Supervise(Spec{
		Name: "failed-start-test",
		Start: func(restart int64) (*engine.StreamingQuery, error) {
			switch instances.Add(1) {
			case 1:
				flaky.FailReads(fsx.Transient("kill first instance"), 20)
			case 2:
				return nil, fsx.Transient("checkpoint store briefly unreachable")
			default:
				flaky.FailReads(nil, 0)
			}
			q := compileQuery(t, projectionPlan(), logical.Append)
			return engine.Start(q, map[string]sources.Source{"events": flaky}, sink, engine.Options{
				Checkpoint:   ckpt,
				Trigger:      engine.ProcessingTimeTrigger{Interval: 2 * time.Millisecond},
				MaxIORetries: 1,
				RetryBackoff: time.Millisecond,
			})
		},
		Policy: Policy{InitialBackoff: 2 * time.Millisecond, MaxRestartsPerWindow: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Stop()
	waitFor(t, 10*time.Second, func() bool { return len(sink.Rows()) == 8 }, "rows after a failed restart attempt")
	if got := instances.Load(); got < 3 {
		t.Errorf("instances = %d, want >= 3 (initial, failed start, recovery)", got)
	}
}

// TestSupervisorSurvivesFlakyBroker drives a supervised query off the
// message bus and injects a burst of fetch faults at the broker — the
// transport analogue of the flaky-source tests above. The first instance
// dies once its retry budget is exhausted; the supervisor restarts it, the
// fault hook is cleared, and the restarted query drains the topic from its
// checkpointed offsets.
func TestSupervisorSurvivesFlakyBroker(t *testing.T) {
	broker := msgbus.NewBroker()
	topic, err := broker.CreateTopic("events", 1)
	if err != nil {
		t.Fatal(err)
	}
	const total = 30
	for i := 0; i < total; i++ {
		row := sql.Row{fmt.Sprintf("k%d", i), float64(i), int64(0)}
		if _, err := topic.Append(0, msgbus.Record{Value: codec.EncodeRow(row)}); err != nil {
			t.Fatal(err)
		}
	}

	sink := sinks.NewMemorySink()
	ckpt := t.TempDir()
	var instances atomic.Int64
	sup, err := Supervise(Spec{
		Name: "flaky-broker",
		Start: func(restart int64) (*engine.StreamingQuery, error) {
			if instances.Add(1) == 1 {
				// Enough consecutive faults to exhaust the engine I/O retry
				// (MaxIORetries+1 = 2 calls) across all 4 cluster attempts.
				var remaining atomic.Int64
				remaining.Store(9)
				topic.InjectFetchFault(func(part int, from int64) error {
					if remaining.Add(-1) >= 0 {
						return fsx.Transient("broker connection reset")
					}
					return nil
				})
			} else {
				topic.InjectFetchFault(nil)
			}
			q := compileQuery(t, projectionPlan(), logical.Append)
			src := sources.NewCodecBusSource("events", topic, eventsSchema)
			return engine.Start(q, map[string]sources.Source{"events": src}, sink, engine.Options{
				Checkpoint:   ckpt,
				Trigger:      engine.ProcessingTimeTrigger{Interval: 2 * time.Millisecond},
				MaxIORetries: 1,
				RetryBackoff: time.Millisecond,
			})
		},
		Policy: Policy{InitialBackoff: 2 * time.Millisecond, MaxRestartsPerWindow: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Stop()

	// As above: the sink can fill before the restart bookkeeping lands.
	waitFor(t, 10*time.Second, func() bool {
		return len(sink.Rows()) == total && sup.Restarts() >= 1 && sup.Status() == engine.StatusRunning
	}, "topic drained through the sink and restart recorded")
	if got := sup.Restarts(); got < 1 {
		t.Errorf("Restarts() = %d, want >= 1 (fetch faults should have killed instance 1)", got)
	}
	if got := sup.Status(); got != engine.StatusRunning {
		t.Errorf("Status() = %v, want Running", got)
	}
	// Exactly-once through the restart: every key once, values doubled.
	seen := map[string]bool{}
	for _, r := range sink.Rows() {
		k := r[0].(string)
		if seen[k] {
			t.Fatalf("duplicate key %q in sink after restart", k)
		}
		seen[k] = true
	}
	if err := sup.Stop(); err != nil {
		t.Fatal(err)
	}
}
