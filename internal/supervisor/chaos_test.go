package supervisor

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"structream/internal/engine"
	"structream/internal/fsx"
	"structream/internal/sinks"
	"structream/internal/sources"
	"structream/internal/sql"
	"structream/internal/sql/logical"
)

// chaosOptions are the engine options shared by the fault-free baseline and
// the chaos run: identical admission caps make epoch boundaries — and
// therefore per-epoch sink files — deterministic regardless of where
// failures strike.
func chaosOptions(ckpt string, fs fsx.FS) engine.Options {
	return engine.Options{
		Checkpoint:           ckpt,
		FS:                   fs,
		Trigger:              engine.ProcessingTimeTrigger{Interval: 2 * time.Millisecond},
		MaxRecordsPerTrigger: 16,
		MaxIORetries:         1,
		RetryBackoff:         time.Millisecond,
		EpochTimeout:         250 * time.Millisecond,
	}
}

func chaosRows(prefix string, n int) []sql.Row {
	rows := make([]sql.Row, n)
	for i := range rows {
		rows[i] = sql.Row{fmt.Sprintf("%s%04d", prefix, i), float64(i), int64(0)}
	}
	return rows
}

// TestSupervisedQueryConvergesUnderChaos is the acceptance scenario: a
// supervised query survives a simulated process crash mid-WAL-write, a
// burst of transient source faults, and one forced epoch stall (caught by
// the watchdog), restarting itself each time, and its final sink output is
// byte-identical to a run that saw no faults at all.
func TestSupervisedQueryConvergesUnderChaos(t *testing.T) {
	batch1 := chaosRows("a", 100)
	batch2 := chaosRows("b", 60)

	// ---- fault-free baseline.
	baseSrc := sources.NewMemorySource("events", eventsSchema)
	baseSrc.AddData(batch1...)
	baseDir := t.TempDir()
	baseQ := compileQuery(t, projectionPlan(), logical.Append)
	baseSQ, err := engine.Start(baseQ, map[string]sources.Source{"events": baseSrc},
		sinks.NewJSONFileSink(baseDir), chaosOptions(t.TempDir(), nil))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, func() bool { return countJSONLines(t, baseDir) == 100 }, "baseline batch 1")
	baseSrc.AddData(batch2...)
	waitFor(t, 10*time.Second, func() bool { return countJSONLines(t, baseDir) == 160 }, "baseline batch 2")
	if err := baseSQ.Stop(); err != nil {
		t.Fatal(err)
	}
	baseline := snapshotJSONDir(t, baseDir)

	// ---- chaos run: same data, same options, scheduled faults.
	inner := sources.NewMemorySource("events", eventsSchema)
	inner.AddData(batch1...)
	flaky := sources.NewFlakySource(inner)
	chaosDir := t.TempDir()
	ckpt := t.TempDir()
	var instances atomic.Int64

	sup, err := Supervise(Spec{
		Name: "chaos",
		Start: func(restart int64) (*engine.StreamingQuery, error) {
			n := instances.Add(1)
			flaky.ReleaseStall() // a restarted process frees the hung fetch
			fs := fsx.FS(nil)
			switch n {
			case 1:
				// Simulated process crash mid-stream: the checkpoint FS dies
				// at its 10th mutating operation, inside an epoch's WAL
				// writes.
				ffs := fsx.NewFaultFS(fsx.Real())
				ffs.CrashAt = 10
				ffs.Mode = fsx.CrashAfter
				fs = ffs
			case 2:
				// A burst of transient read faults long enough to exhaust
				// the engine's I/O retry and the cluster's task retries.
				flaky.FailReads(fsx.Transient("flaky network"), 9)
			case 3:
				// A hung fetch: the epoch watchdog must fail the epoch.
				flaky.StallReads()
			}
			q := compileQuery(t, projectionPlan(), logical.Append)
			return engine.Start(q, map[string]sources.Source{"events": flaky},
				sinks.NewJSONFileSink(chaosDir), chaosOptions(ckpt, fs))
		},
		Policy: Policy{
			InitialBackoff:       2 * time.Millisecond,
			MaxBackoff:           50 * time.Millisecond,
			MaxRestartsPerWindow: 20,
			Window:               time.Minute,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Stop()

	waitFor(t, 20*time.Second, func() bool { return countJSONLines(t, chaosDir) == 100 }, "chaos batch 1")
	inner.AddData(batch2...)
	waitFor(t, 20*time.Second, func() bool { return countJSONLines(t, chaosDir) == 160 }, "chaos batch 2")

	// Every scheduled fault actually fired and was survived.
	if got := instances.Load(); got < 4 {
		t.Errorf("instances = %d, want >= 4 (crash, fault burst, stall, clean)", got)
	}
	if got := sup.Restarts(); got < 1 {
		t.Errorf("Restarts() = %d, want >= 1", got)
	}
	var sawCrash, sawTimeout, sawTransientClass bool
	for _, ev := range sup.Events() {
		if ev.Kind != QueryFailed {
			continue
		}
		if ev.Class != Transient {
			t.Errorf("chaos failure classified %v (err=%v), want Transient", ev.Class, ev.Err)
		} else {
			sawTransientClass = true
		}
		if errors.Is(ev.Err, fsx.ErrCrash) {
			sawCrash = true
		}
		if errors.Is(ev.Err, engine.ErrEpochTimeout) {
			sawTimeout = true
		}
	}
	if !sawCrash {
		t.Error("no QueryFailed event carried the simulated crash")
	}
	if !sawTimeout {
		t.Error("no QueryFailed event carried the watchdog timeout")
	}
	if !sawTransientClass {
		t.Error("no transient-classified failure observed")
	}
	if got := sup.Status(); got != engine.StatusRunning {
		t.Errorf("Status() = %v, want Running after self-healing", got)
	}

	// The heart of the claim: exactly-once output across crash, fault burst,
	// and stall — byte-identical files, not just the same row multiset.
	chaos := snapshotJSONDir(t, chaosDir)
	if len(chaos) != len(baseline) {
		t.Fatalf("chaos run wrote %d epoch files, baseline %d", len(chaos), len(baseline))
	}
	for name, want := range baseline {
		if got, ok := chaos[name]; !ok {
			t.Errorf("chaos run is missing %s", name)
		} else if got != want {
			t.Errorf("%s differs from the fault-free run:\n  chaos: %q\n  base:  %q", name, got, want)
		}
	}

	if err := sup.Stop(); err != nil {
		t.Errorf("Stop() = %v", err)
	}
}

// TestSupervisedStatefulLSMConvergesUnderChaos runs the chaos scenario
// that the projection workload cannot: a stateful aggregation whose state
// lives in the LSM backend with a memtable small enough that every restart
// must recover memtable contents, SSTables, and manifests — across a
// simulated crash mid-epoch and a transient fault burst — and still emit
// sink files byte-identical to a fault-free run.
func TestSupervisedStatefulLSMConvergesUnderChaos(t *testing.T) {
	rows := chaosRows("s", 120) // unique keys: one update line per input row
	lsmOptions := func(ckpt string, fs fsx.FS) engine.Options {
		o := chaosOptions(ckpt, fs)
		o.StateBackend = "lsm"
		o.StateMemtableBytes = 512 // state is many× this: spills inside the run
		return o
	}

	// ---- fault-free baseline (same backend and caps: identical epochs).
	baseSrc := sources.NewMemorySource("events", eventsSchema)
	baseSrc.AddData(rows...)
	baseDir := t.TempDir()
	baseSQ, err := engine.Start(compileQuery(t, aggregationPlan(), logical.Update),
		map[string]sources.Source{"events": baseSrc},
		sinks.NewJSONFileSink(baseDir), lsmOptions(t.TempDir(), nil))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, func() bool { return countJSONLines(t, baseDir) == 120 }, "lsm baseline")
	if err := baseSQ.Stop(); err != nil {
		t.Fatal(err)
	}
	baseline := snapshotJSONDir(t, baseDir)

	// ---- chaos run: crash mid-stream on instance 1, fault burst on 2.
	inner := sources.NewMemorySource("events", eventsSchema)
	inner.AddData(rows...)
	flaky := sources.NewFlakySource(inner)
	chaosDir := t.TempDir()
	ckpt := t.TempDir()
	var instances atomic.Int64

	sup, err := Supervise(Spec{
		Name: "chaos-lsm",
		Start: func(restart int64) (*engine.StreamingQuery, error) {
			n := instances.Add(1)
			flaky.ReleaseStall()
			fs := fsx.FS(nil)
			switch n {
			case 1:
				// Crash inside an epoch's state commit: with the LSM backend
				// the checkpoint ops include SSTable flushes and manifest
				// writes, so op 14 lands amid the state machinery.
				ffs := fsx.NewFaultFS(fsx.Real())
				ffs.CrashAt = 14
				ffs.Mode = fsx.CrashAfter
				fs = ffs
			case 2:
				flaky.FailReads(fsx.Transient("flaky network"), 9)
			}
			q := compileQuery(t, aggregationPlan(), logical.Update)
			return engine.Start(q, map[string]sources.Source{"events": flaky},
				sinks.NewJSONFileSink(chaosDir), lsmOptions(ckpt, fs))
		},
		Policy: Policy{
			InitialBackoff:       2 * time.Millisecond,
			MaxBackoff:           50 * time.Millisecond,
			MaxRestartsPerWindow: 20,
			Window:               time.Minute,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Stop()

	waitFor(t, 20*time.Second, func() bool { return countJSONLines(t, chaosDir) == 120 }, "chaos lsm output")
	if got := instances.Load(); got < 2 {
		t.Errorf("instances = %d, want >= 2 (crash survived by restart)", got)
	}
	var sawCrash bool
	for _, ev := range sup.Events() {
		if ev.Kind == QueryFailed && errors.Is(ev.Err, fsx.ErrCrash) {
			sawCrash = true
		}
	}
	if !sawCrash {
		t.Error("no QueryFailed event carried the simulated crash")
	}

	chaos := snapshotJSONDir(t, chaosDir)
	if len(chaos) != len(baseline) {
		t.Fatalf("chaos run wrote %d epoch files, baseline %d", len(chaos), len(baseline))
	}
	for name, want := range baseline {
		if got, ok := chaos[name]; !ok {
			t.Errorf("chaos run is missing %s", name)
		} else if got != want {
			t.Errorf("%s differs from the fault-free run:\n  chaos: %q\n  base:  %q", name, got, want)
		}
	}
	if err := sup.Stop(); err != nil {
		t.Errorf("Stop() = %v", err)
	}
}

// TestChaosRandomizedFaultSchedule is the long-running randomized chaos
// harness behind `make chaos` (gated by STRUCTREAM_CHAOS=1): repeated
// rounds of supervised runs under a random schedule of crashes, fault
// bursts, and stalls, each round verified to converge to exactly the
// expected output within a bounded wall clock.
//
// Tunables: STRUCTREAM_CHAOS_SECONDS (default 20) bounds total duration;
// STRUCTREAM_CHAOS_SEED pins the schedule for reproduction (the seed is
// logged every run).
func TestChaosRandomizedFaultSchedule(t *testing.T) {
	if os.Getenv("STRUCTREAM_CHAOS") == "" {
		t.Skip("set STRUCTREAM_CHAOS=1 (or run `make chaos`) to enable the randomized chaos schedule")
	}
	budget := 20 * time.Second
	if s := os.Getenv("STRUCTREAM_CHAOS_SECONDS"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
			budget = time.Duration(secs) * time.Second
		}
	}
	seed := time.Now().UnixNano()
	if s := os.Getenv("STRUCTREAM_CHAOS_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			seed = v
		}
	}
	t.Logf("chaos seed %d (STRUCTREAM_CHAOS_SEED=%d reproduces)", seed, seed)
	rng := rand.New(rand.NewSource(seed))

	start := time.Now()
	for round := 0; time.Since(start) < budget; round++ {
		runChaosRound(t, rng, round)
		if t.Failed() {
			t.Fatalf("round %d failed (seed %d)", round, seed)
		}
	}
}

func runChaosRound(t *testing.T, rng *rand.Rand, round int) {
	nRows := 40 + rng.Intn(160)
	rows := chaosRows(fmt.Sprintf("r%d-", round), nRows)
	inner := sources.NewMemorySource("events", eventsSchema)
	inner.AddData(rows...)
	flaky := sources.NewFlakySource(inner)
	outDir := t.TempDir()
	ckpt := t.TempDir()
	var instances atomic.Int64

	// Pre-draw the fault schedule so it is reproducible from the seed alone
	// (instances race with nothing: Start calls are serialized by the
	// supervisor loop, but drawing inside the closure would interleave with
	// other rng use).
	type fault struct {
		kind    int // 0 none, 1 crash, 2 fail burst, 3 stall
		crashOp int64
		burst   int
	}
	const maxFaultyInstances = 6
	schedule := make([]fault, maxFaultyInstances)
	stallUsed := false
	for i := range schedule {
		f := fault{kind: rng.Intn(4)}
		if f.kind == 3 && stallUsed {
			f.kind = 0 // at most one stall per round keeps rounds fast
		}
		switch f.kind {
		case 1:
			f.crashOp = int64(4 + rng.Intn(30))
		case 2:
			f.burst = 1 + rng.Intn(12)
		case 3:
			stallUsed = true
		}
		schedule[i] = f
	}

	sup, err := Supervise(Spec{
		Name: fmt.Sprintf("chaos-%d", round),
		Start: func(restart int64) (*engine.StreamingQuery, error) {
			n := instances.Add(1)
			flaky.ReleaseStall()
			var f fault
			if int(n-1) < len(schedule) {
				f = schedule[n-1]
			}
			fs := fsx.FS(nil)
			switch f.kind {
			case 1:
				ffs := fsx.NewFaultFS(fsx.Real())
				ffs.CrashAt = f.crashOp
				ffs.Mode = fsx.CrashAfter
				fs = ffs
			case 2:
				flaky.FailReads(fsx.Transient("chaos burst"), f.burst)
			case 3:
				flaky.StallReads()
			}
			q := compileQuery(t, projectionPlan(), logical.Append)
			return engine.Start(q, map[string]sources.Source{"events": flaky},
				sinks.NewJSONFileSink(outDir), chaosOptions(ckpt, fs))
		},
		Policy: Policy{
			InitialBackoff:       2 * time.Millisecond,
			MaxBackoff:           20 * time.Millisecond,
			MaxRestartsPerWindow: 40,
			Window:               time.Minute,
		},
	})
	if err != nil {
		t.Fatalf("round %d: %v", round, err)
	}
	defer sup.Stop()

	deadline := time.Now().Add(30 * time.Second)
	for countJSONLines(t, outDir) != nRows {
		if time.Now().After(deadline) {
			t.Fatalf("round %d did not converge: %d/%d rows, %d instances, supervisor err %v",
				round, countJSONLines(t, outDir), nRows, instances.Load(), sup.Err())
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Exact output check: the projection doubles v, so expected lines are
	// computable without a baseline run.
	want := make([]string, nRows)
	for i, r := range rows {
		want[i] = fmt.Sprintf(`{"k":"%s","v2":%g}`, r[0], float64(i)*2)
	}
	got := allJSONLines(t, outDir)
	if len(got) != nRows {
		t.Fatalf("round %d: %d output lines, want %d", round, len(got), nRows)
	}
	gotSet := map[string]bool{}
	for _, l := range got {
		gotSet[l] = true
	}
	for _, w := range want {
		if !gotSet[w] {
			t.Fatalf("round %d: missing output line %s (got %v...)", round, w, got[:min(5, len(got))])
		}
	}
	if err := sup.Stop(); err != nil {
		t.Fatalf("round %d: stop: %v", round, err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
