// Package health is the streaming health subsystem: end-to-end latency
// lineage, watermark-lag telemetry, and an anomaly-triggered flight
// recorder. The paper's promise is prefix-consistent answers with bounded
// end-to-end latency (§3–§4); this package makes that latency *observable*
// — not just per-stage durations, but the full source-read →
// subscriber-frame-flushed lineage of every epoch — and captures a
// diagnostic bundle at the moment an epoch deviates from its own rolling
// baseline, when the evidence (traces, profiles, progress history) still
// exists.
//
// Everything here is nil-safe: a nil *Tracker ignores every call, so the
// engine and serving layers stamp unconditionally and pay nothing when
// health is disabled.
package health

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"structream/internal/fsx"
	"structream/internal/metrics"
	"structream/internal/trace"
)

// Clock is the injectable time source. Both the detector and the recorder
// consult it, so anomaly→capture is deterministically testable.
type Clock func() time.Time

// Stamp is one epoch's latency lineage: the wall-clock instants at which
// its data was read from the source, admitted for planning, entered
// execution, was durably committed, and was last flushed to a subscriber.
// Zero means "not reached yet". DeliverMicros advances monotonically as
// more subscribers flush the epoch's frame.
type Stamp struct {
	Epoch         int64 `json:"epoch"`
	IngestMicros  int64 `json:"ingestMicros,omitempty"`
	AdmitMicros   int64 `json:"admitMicros,omitempty"`
	ExecuteMicros int64 `json:"executeMicros,omitempty"`
	CommitMicros  int64 `json:"commitMicros,omitempty"`
	DeliverMicros int64 `json:"deliverMicros,omitempty"`
}

// EndToEndMicros is the freshness of the epoch as seen by the slowest
// subscriber so far: deliver − ingest, or 0 if either end is unstamped.
func (s Stamp) EndToEndMicros() int64 {
	if s.IngestMicros == 0 || s.DeliverMicros == 0 {
		return 0
	}
	return s.DeliverMicros - s.IngestMicros
}

// Sample is one epoch's detector input, produced by the engine on the
// commit path. WatermarkLagUs < 0 means "no watermarked pipeline" and the
// signal is skipped for that epoch.
type Sample struct {
	Epoch           int64
	LatencyUs       int64
	InputRowsPerSec float64
	BacklogRecords  int64
	WatermarkLagUs  int64
	Restarts        int64
}

// PartitionStat is the per-partition accounting hook laid down for the
// sharded-execution refactor: rows and time attributed to one partition of
// one stage. Until execution is actually partitioned, everything lands in
// partition 0.
type PartitionStat struct {
	Stage     string `json:"stage"`
	Partition int    `json:"partition"`
	Rows      int64  `json:"rows"`
	Micros    int64  `json:"micros"`
}

// Config wires a Tracker to its query's telemetry and its bundle
// directory. Zero values get sane defaults from New.
type Config struct {
	Query string
	// Dir is the bundle ring directory. Empty disables the recorder (the
	// detector still runs and Report still surfaces anomalies).
	Dir string
	// FS is the filesystem bundles are written through (default fsx.Real).
	FS fsx.FS
	// Clock is the injectable time source (default time.Now).
	Clock Clock

	// MaxBundles bounds the on-disk bundle ring (default 8).
	MaxBundles int
	// Window is the rolling-baseline ring size per signal (default 64).
	Window int
	// MinSamples gates the detector until a baseline exists (default 8).
	MinSamples int
	// Mult is the multiplicative trip threshold: a sample is anomalous
	// when it exceeds Mult× the rolling mean (default 3).
	Mult float64
	// ZScore is the z-score trip threshold applied when the baseline has
	// nonzero spread (default 4).
	ZScore float64
	// CooldownEpochs suppresses re-capture for this many epochs after a
	// trip, so a sustained anomaly yields one bundle, not one per epoch
	// (default 32).
	CooldownEpochs int64

	// CPUProfileDuration is how long the capture's CPU profile runs
	// (default 250ms; 0 with DisableProfiles skips profiles entirely).
	CPUProfileDuration time.Duration
	// DisableProfiles skips the pprof CPU/heap profiles and goroutine
	// dump — for tests that need byte-deterministic bundles.
	DisableProfiles bool
	// SyncCapture runs bundle capture inline on the ObserveEpoch call
	// instead of a background goroutine — for deterministic tests.
	SyncCapture bool

	// Registry receives the endToEndLatency.us observations made when
	// deliver stamps land, and is snapshotted into bundles.
	Registry *metrics.Registry
	// Tracer's recent epoch window is exported into bundles.
	Tracer *trace.Tracer
	// Events' recent progress history is exported into bundles.
	Events *metrics.EventLog
}

// stampRing bounds lineage memory: stamps for the most recent stampSlots
// epochs, indexed by epoch modulo the ring size.
const stampSlots = 256

// Tracker is one query's health state: the lineage stamp ring, the
// anomaly detector, the per-partition accumulators, and the flight
// recorder. All methods are safe on a nil receiver and safe for
// concurrent use.
type Tracker struct {
	cfg Config

	mu       sync.Mutex
	stamps   [stampSlots]Stamp
	det      *detector
	parts    map[string][]PartitionStat
	last     Sample
	lastSeen int64 // restarts value at the previous sample, for the rate signal
	haveSeen bool

	captureMu  sync.Mutex // serializes bundle captures
	capturing  bool
	seq        int
	lastTrip   *Anomaly
	cooldownTo int64 // epoch until which captures are suppressed

	wg     sync.WaitGroup
	closed bool
}

// New builds a Tracker. A nil return (on nil-disabled configs) is itself
// usable: every method no-ops.
func New(cfg Config) *Tracker {
	if cfg.FS == nil {
		cfg.FS = fsx.Real()
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.MaxBundles <= 0 {
		cfg.MaxBundles = 8
	}
	if cfg.Window <= 0 {
		cfg.Window = 64
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = 8
	}
	if cfg.Mult <= 1 {
		cfg.Mult = 3
	}
	if cfg.ZScore <= 0 {
		cfg.ZScore = 4
	}
	if cfg.CooldownEpochs <= 0 {
		cfg.CooldownEpochs = 32
	}
	if cfg.CPUProfileDuration <= 0 {
		cfg.CPUProfileDuration = 250 * time.Millisecond
	}
	t := &Tracker{cfg: cfg, parts: make(map[string][]PartitionStat)}
	t.det = newDetector(cfg.Window, cfg.MinSamples, cfg.Mult, cfg.ZScore)
	return t
}

// Close waits for any in-flight background capture to finish.
func (t *Tracker) Close() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.closed = true
	t.mu.Unlock()
	t.wg.Wait()
}

// ------------------------------------------------------------- stamping

func (t *Tracker) slot(epoch int64) *Stamp {
	s := &t.stamps[epoch%stampSlots]
	if s.Epoch != epoch {
		if s.Epoch > epoch {
			return nil // a newer epoch already owns the slot
		}
		*s = Stamp{Epoch: epoch}
	}
	return s
}

// StampIngest records when the epoch's data was read from its source.
// The earliest stamp wins: with several sources, freshness is measured
// from the oldest data in the batch.
func (t *Tracker) StampIngest(epoch int64, at time.Time) {
	if t == nil {
		return
	}
	us := at.UnixMicro()
	t.mu.Lock()
	if s := t.slot(epoch); s != nil && (s.IngestMicros == 0 || us < s.IngestMicros) {
		s.IngestMicros = us
	}
	t.mu.Unlock()
}

// StampAdmit records when the epoch passed admission control and began
// planning.
func (t *Tracker) StampAdmit(epoch int64, at time.Time) {
	t.stampOnce(epoch, at, func(s *Stamp, us int64) {
		if s.AdmitMicros == 0 {
			s.AdmitMicros = us
		}
	})
}

// StampExecute records when the epoch's operator pipeline started running.
func (t *Tracker) StampExecute(epoch int64, at time.Time) {
	t.stampOnce(epoch, at, func(s *Stamp, us int64) {
		if s.ExecuteMicros == 0 {
			s.ExecuteMicros = us
		}
	})
}

// StampCommit records when the epoch became durable (WAL commit marker).
func (t *Tracker) StampCommit(epoch int64, at time.Time) {
	t.stampOnce(epoch, at, func(s *Stamp, us int64) {
		if s.CommitMicros == 0 {
			s.CommitMicros = us
		}
	})
}

func (t *Tracker) stampOnce(epoch int64, at time.Time, set func(*Stamp, int64)) {
	if t == nil {
		return
	}
	us := at.UnixMicro()
	t.mu.Lock()
	if s := t.slot(epoch); s != nil {
		set(s, us)
	}
	t.mu.Unlock()
}

// StampDeliver records that a subscriber flushed the epoch's frame at
// `at`, advancing the epoch's deliver watermark and observing the full
// source-read → frame-flushed latency into endToEndLatency.us. Called
// once per subscriber per epoch by the serving layer.
func (t *Tracker) StampDeliver(epoch int64, at time.Time) {
	if t == nil {
		return
	}
	us := at.UnixMicro()
	var e2e int64 = -1
	t.mu.Lock()
	if s := t.slot(epoch); s != nil {
		if us > s.DeliverMicros {
			s.DeliverMicros = us
		}
		if s.IngestMicros > 0 {
			e2e = us - s.IngestMicros
		}
	}
	t.mu.Unlock()
	if e2e >= 0 && t.cfg.Registry != nil {
		t.cfg.Registry.Histogram("endToEndLatency.us").Observe(e2e)
	}
}

// Stamp returns the lineage of one epoch, if it is still in the ring.
func (t *Tracker) Stamp(epoch int64) (Stamp, bool) {
	if t == nil {
		return Stamp{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.stamps[epoch%stampSlots]
	return s, s.Epoch == epoch && s != (Stamp{})
}

// RecentStamps returns up to n of the newest stamps, oldest first.
func (t *Tracker) RecentStamps(n int) []Stamp {
	if t == nil || n <= 0 {
		return nil
	}
	t.mu.Lock()
	all := make([]Stamp, 0, stampSlots)
	for _, s := range t.stamps {
		if s != (Stamp{}) {
			all = append(all, s)
		}
	}
	t.mu.Unlock()
	sort.Slice(all, func(i, j int) bool { return all[i].Epoch < all[j].Epoch })
	if len(all) > n {
		all = all[len(all)-n:]
	}
	return all
}

// ----------------------------------------------------------- partitions

// ObservePartition accumulates rows/time attributed to one partition of a
// stage. The sharded-execution refactor will call this per worker; today
// the engine calls it with partition 0, so the surface (and its report
// plumbing) is already exercised.
func (t *Tracker) ObservePartition(stage string, partition int, rows int64, d time.Duration) {
	if t == nil || partition < 0 {
		return
	}
	t.mu.Lock()
	cells := t.parts[stage]
	for len(cells) <= partition {
		cells = append(cells, PartitionStat{Stage: stage, Partition: len(cells)})
	}
	cells[partition].Rows += rows
	cells[partition].Micros += d.Microseconds()
	t.parts[stage] = cells
	t.mu.Unlock()
}

// --------------------------------------------------------- the detector

// ObserveEpoch feeds one committed epoch's signals to the anomaly
// detector; a trip captures a flight-recorder bundle (in the background,
// unless Config.SyncCapture).
func (t *Tracker) ObserveEpoch(s Sample) {
	if t == nil {
		return
	}
	now := t.cfg.Clock()
	t.mu.Lock()
	restartDelta := s.Restarts
	if t.haveSeen {
		restartDelta = s.Restarts - t.lastSeen
	}
	t.lastSeen = s.Restarts
	t.haveSeen = true
	t.last = s

	var trip *Anomaly
	check := func(name string, v float64, dir direction) {
		a := t.det.observe(name, v, dir)
		if a != nil && trip == nil {
			trip = a
		}
	}
	check("epochLatencyUs", float64(s.LatencyUs), high)
	if s.InputRowsPerSec > 0 {
		check("inputRowsPerSec", s.InputRowsPerSec, low)
	}
	check("backlogRecords", float64(s.BacklogRecords), high)
	if s.WatermarkLagUs >= 0 {
		check("watermarkLagUs", float64(s.WatermarkLagUs), high)
	}
	check("restartsPerEpoch", float64(restartDelta), high)

	capture := false
	if trip != nil {
		trip.Epoch = s.Epoch
		trip.AtMicros = now.UnixMicro()
		t.lastTrip = trip
		if s.Epoch >= t.cooldownTo && !t.capturing && !t.closed {
			t.cooldownTo = s.Epoch + t.cfg.CooldownEpochs
			t.capturing = true
			capture = true
		}
	}
	closed := t.closed
	t.mu.Unlock()

	if !capture || closed {
		return
	}
	if t.cfg.SyncCapture {
		t.runCapture(*trip)
		return
	}
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		t.runCapture(*trip)
	}()
}

func (t *Tracker) runCapture(a Anomaly) {
	defer func() {
		t.mu.Lock()
		t.capturing = false
		t.mu.Unlock()
	}()
	id, err := t.capture(a)
	t.mu.Lock()
	if t.lastTrip != nil && t.lastTrip.Signal == a.Signal && t.lastTrip.Epoch == a.Epoch {
		if err != nil {
			t.lastTrip.CaptureError = err.Error()
		} else {
			t.lastTrip.BundleID = id
		}
	}
	t.mu.Unlock()
}

// --------------------------------------------------------------- report

// SignalStatus is one detector signal's rolling state for the report.
type SignalStatus struct {
	Name    string  `json:"name"`
	Last    float64 `json:"last"`
	Mean    float64 `json:"mean"`
	Std     float64 `json:"std"`
	Samples int     `json:"samples"`
	Trips   int64   `json:"trips"`
}

// Anomaly describes one detector trip.
type Anomaly struct {
	Epoch        int64   `json:"epoch"`
	Signal       string  `json:"signal"`
	Value        float64 `json:"value"`
	Mean         float64 `json:"mean"`
	Std          float64 `json:"std"`
	AtMicros     int64   `json:"atMicros"`
	BundleID     string  `json:"bundleId,omitempty"`
	CaptureError string  `json:"captureError,omitempty"`
}

// Report is the answer to GET /queries/{name}/health and `ssql :health`.
type Report struct {
	Query       string          `json:"query"`
	Status      string          `json:"status"` // "ok" | "anomalous"
	Signals     []SignalStatus  `json:"signals"`
	LastAnomaly *Anomaly        `json:"lastAnomaly,omitempty"`
	Stamps      []Stamp         `json:"recentStamps,omitempty"`
	Partitions  []PartitionStat `json:"partitions,omitempty"`
	Bundles     []BundleInfo    `json:"bundles,omitempty"`
}

// Health assembles the current report. Bundle listing reads the on-disk
// ring, so the report reflects retention, not just memory.
func (t *Tracker) Health() Report {
	if t == nil {
		return Report{Status: "disabled"}
	}
	t.mu.Lock()
	r := Report{
		Query:   t.cfg.Query,
		Status:  "ok",
		Signals: t.det.statuses(),
	}
	if t.lastTrip != nil {
		a := *t.lastTrip
		r.LastAnomaly = &a
		if t.last.Epoch < t.cooldownTo {
			r.Status = "anomalous"
		}
	}
	for _, cells := range t.parts {
		r.Partitions = append(r.Partitions, cells...)
	}
	t.mu.Unlock()
	sort.Slice(r.Partitions, func(i, j int) bool {
		if r.Partitions[i].Stage != r.Partitions[j].Stage {
			return r.Partitions[i].Stage < r.Partitions[j].Stage
		}
		return r.Partitions[i].Partition < r.Partitions[j].Partition
	})
	r.Stamps = t.RecentStamps(8)
	if bs, err := t.Bundles(); err == nil {
		r.Bundles = bs
	}
	return r
}

// ---------------------------------------------------------------- names

// sanitizeName maps a query name to a filesystem-safe bundle prefix.
func sanitizeName(q string) string {
	if q == "" {
		return "query"
	}
	var b strings.Builder
	for _, r := range q {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		default:
			b.WriteRune('_')
		}
	}
	return b.String()
}

func (t *Tracker) bundleDir(seq int, atMicros int64) (id, dir string) {
	id = fmt.Sprintf("%s-%04d-%d", sanitizeName(t.cfg.Query), seq, atMicros)
	return id, filepath.Join(t.cfg.Dir, id)
}
