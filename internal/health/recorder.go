package health

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"structream/internal/fsx"
)

// The flight recorder captures a diagnostic bundle the moment the
// detector trips — while the trace ring still holds the anomalous epoch
// and the runtime still exhibits the anomaly. Each bundle is a directory:
//
//	<dir>/<query>-<seq>-<unixmicro>/
//	    meta.json       anomaly, lineage stamps, detector state
//	    progress.jsonl  recent QueryProgress history, one JSON per line
//	    trace.jsonl     recent epoch traces (trace.Tracer ring)
//	    metrics.json    registry snapshot + full histogram snapshots
//	    goroutines.txt  runtime.Stack of every goroutine
//	    heap.pprof      pprof heap profile
//	    cpu.pprof       pprof CPU profile (CPUProfileDuration window)
//	    MANIFEST.json   written LAST: name/bytes/crc32c of every file,
//	                    itself sealed with the fsx record frame
//
// Every file is buffered in memory and written via fsx.WriteAtomic, so a
// crash mid-capture leaves either no manifest (bundle ignored as
// incomplete) or a complete, verifiable bundle. The ring keeps the newest
// Config.MaxBundles bundles and prunes the rest.

// cpuProfileMu serializes CPU profiling process-wide: the runtime allows
// only one pprof.StartCPUProfile at a time, and several trackers (or a
// test harness) may trip concurrently.
var cpuProfileMu sync.Mutex

// ManifestEntry describes one file of a bundle in its manifest.
type ManifestEntry struct {
	Name   string `json:"name"`
	Bytes  int    `json:"bytes"`
	CRC32C string `json:"crc32c"`
}

// Manifest is the bundle's table of contents, written last.
type Manifest struct {
	ID       string          `json:"id"`
	Query    string          `json:"query"`
	Signal   string          `json:"signal"`
	Epoch    int64           `json:"epoch"`
	AtMicros int64           `json:"atMicros"`
	Files    []ManifestEntry `json:"files"`
}

// BundleInfo summarizes one on-disk bundle for listings.
type BundleInfo struct {
	ID       string `json:"id"`
	Query    string `json:"query"`
	Signal   string `json:"signal"`
	Epoch    int64  `json:"epoch"`
	AtMicros int64  `json:"atMicros"`
	Files    int    `json:"files"`
	Bytes    int64  `json:"bytes"`
}

type bundleFile struct {
	name string
	data []byte
}

// capture assembles and writes one bundle, then prunes the ring. It
// returns the new bundle's ID.
func (t *Tracker) capture(a Anomaly) (string, error) {
	if t.cfg.Dir == "" {
		return "", nil // recorder disabled; detector-only mode
	}
	t.captureMu.Lock()
	defer t.captureMu.Unlock()

	t.mu.Lock()
	t.seq++
	seq := t.seq
	t.mu.Unlock()
	id, dir := t.bundleDir(seq, a.AtMicros)

	files := t.collect(a)

	fsys := t.cfg.FS
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("health: bundle dir: %w", err)
	}
	m := Manifest{ID: id, Query: t.cfg.Query, Signal: a.Signal, Epoch: a.Epoch, AtMicros: a.AtMicros}
	for _, f := range files {
		if err := fsx.WriteAtomic(fsys, filepath.Join(dir, f.name), f.data, 0o644); err != nil {
			return "", fmt.Errorf("health: bundle %s: %w", f.name, err)
		}
		m.Files = append(m.Files, ManifestEntry{
			Name:   f.name,
			Bytes:  len(f.data),
			CRC32C: fmt.Sprintf("%08x", fsx.Checksum(f.data)),
		})
	}
	body, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return "", err
	}
	if err := fsx.WriteAtomic(fsys, filepath.Join(dir, "MANIFEST.json"), fsx.Seal(body), 0o644); err != nil {
		return "", fmt.Errorf("health: bundle manifest: %w", err)
	}
	if err := t.prune(); err != nil {
		return id, err
	}
	return id, nil
}

// collect buffers every bundle file in memory. It holds no Tracker locks
// while profiling.
func (t *Tracker) collect(a Anomaly) []bundleFile {
	var files []bundleFile
	add := func(name string, data []byte, err error) {
		if err != nil {
			data = []byte(fmt.Sprintf("capture failed: %v\n", err))
		}
		files = append(files, bundleFile{name: name, data: data})
	}

	// meta.json: the anomaly, detector state, and recent lineage stamps.
	t.mu.Lock()
	signals := t.det.statuses()
	t.mu.Unlock()
	meta := struct {
		Anomaly Anomaly        `json:"anomaly"`
		Signals []SignalStatus `json:"signals"`
		Stamps  []Stamp        `json:"stamps"`
	}{a, signals, t.RecentStamps(64)}
	mb, err := json.MarshalIndent(meta, "", "  ")
	add("meta.json", mb, err)

	// progress.jsonl: the recent QueryProgress history.
	if t.cfg.Events != nil {
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		for _, p := range t.cfg.Events.Recent(64) {
			if err := enc.Encode(p); err != nil {
				break
			}
		}
		add("progress.jsonl", buf.Bytes(), nil)
	}

	// trace.jsonl: the tracer's retained epoch window.
	if t.cfg.Tracer != nil {
		var buf bytes.Buffer
		err := t.cfg.Tracer.WriteJSON(&buf)
		add("trace.jsonl", buf.Bytes(), err)
	}

	// metrics.json: scalar snapshot plus full histogram snapshots.
	if t.cfg.Registry != nil {
		payload := map[string]any{
			"scalars":    t.cfg.Registry.Snapshot(),
			"histograms": t.cfg.Registry.Histograms(),
		}
		b, err := json.MarshalIndent(payload, "", "  ")
		add("metrics.json", b, err)
	}

	if !t.cfg.DisableProfiles {
		// goroutines.txt: full stack dump of every goroutine.
		buf := make([]byte, 1<<20)
		for {
			n := runtime.Stack(buf, true)
			if n < len(buf) {
				buf = buf[:n]
				break
			}
			buf = make([]byte, len(buf)*2)
		}
		add("goroutines.txt", buf, nil)

		// heap.pprof.
		var heap bytes.Buffer
		err := pprof.WriteHeapProfile(&heap)
		add("heap.pprof", heap.Bytes(), err)

		// cpu.pprof: a short profiling window around the anomaly. CPU
		// profiling is process-global, so it is serialized and skipped
		// (with a note) when another capture holds it.
		var cpu bytes.Buffer
		cpuProfileMu.Lock()
		cpuErr := pprof.StartCPUProfile(&cpu)
		if cpuErr == nil {
			time.Sleep(t.cfg.CPUProfileDuration)
			pprof.StopCPUProfile()
		}
		cpuProfileMu.Unlock()
		add("cpu.pprof", cpu.Bytes(), cpuErr)
	}
	return files
}

// prune removes the oldest bundles beyond MaxBundles.
func (t *Tracker) prune() error {
	infos, err := t.Bundles()
	if err != nil {
		return err
	}
	for len(infos) > t.cfg.MaxBundles {
		oldest := infos[0]
		if err := removeBundle(t.cfg.FS, filepath.Join(t.cfg.Dir, oldest.ID)); err != nil {
			return err
		}
		infos = infos[1:]
	}
	return nil
}

// removeBundle deletes every file in a bundle directory, then the
// directory itself. The manifest goes first, so a crash mid-prune leaves
// a bundle that listings already ignore as incomplete.
func removeBundle(fsys fsx.FS, dir string) error {
	if err := fsys.Remove(filepath.Join(dir, "MANIFEST.json")); err != nil && !isNotExist(err) {
		return err
	}
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		if isNotExist(err) {
			return nil
		}
		return err
	}
	for _, e := range entries {
		if err := fsys.Remove(filepath.Join(dir, e.Name())); err != nil && !isNotExist(err) {
			return err
		}
	}
	return fsys.Remove(dir)
}

// isNotExist covers wrapped fs.ErrNotExist / ENOENT from both the real
// and fault filesystems.
func isNotExist(err error) bool { return errors.Is(err, fs.ErrNotExist) }

// Bundles lists the complete bundles in the ring, oldest first. Bundles
// without a readable, CRC-clean manifest are ignored (in-flight captures
// or crash debris).
func (t *Tracker) Bundles() ([]BundleInfo, error) {
	if t == nil || t.cfg.Dir == "" {
		return nil, nil
	}
	return ListBundles(t.cfg.FS, t.cfg.Dir)
}

// Bundle verifies one bundle in the ring end to end and returns its
// manifest — the HTTP surface's lookup-by-ID path.
func (t *Tracker) Bundle(id string) (Manifest, error) {
	if t == nil || t.cfg.Dir == "" {
		return Manifest{}, fs.ErrNotExist
	}
	if err := checkBundleID(id); err != nil {
		return Manifest{}, err
	}
	return VerifyBundle(t.cfg.FS, filepath.Join(t.cfg.Dir, id))
}

// BundleFile returns one verified file from a bundle in the ring.
func (t *Tracker) BundleFile(id, name string) ([]byte, error) {
	if t == nil || t.cfg.Dir == "" {
		return nil, fs.ErrNotExist
	}
	if err := checkBundleID(id); err != nil {
		return nil, err
	}
	if name != filepath.Base(name) || name == ".." || name == "." {
		return nil, fmt.Errorf("health: invalid bundle file name %q", name)
	}
	return ReadBundleFile(t.cfg.FS, filepath.Join(t.cfg.Dir, id), name)
}

// checkBundleID rejects IDs that would escape the ring directory.
func checkBundleID(id string) error {
	if id == "" || id != filepath.Base(id) || id == ".." || id == "." {
		return fmt.Errorf("health: invalid bundle id %q", id)
	}
	return nil
}

// ListBundles scans dir for complete bundles, oldest first.
func ListBundles(fsys fsx.FS, dir string) ([]BundleInfo, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		if isNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []BundleInfo
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		m, err := readManifest(fsys, filepath.Join(dir, e.Name()))
		if err != nil {
			continue // incomplete or corrupt: not part of the ring
		}
		info := BundleInfo{
			ID:       m.ID,
			Query:    m.Query,
			Signal:   m.Signal,
			Epoch:    m.Epoch,
			AtMicros: m.AtMicros,
			Files:    len(m.Files),
		}
		for _, f := range m.Files {
			info.Bytes += int64(f.Bytes)
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return bundleSeq(out[i].ID) < bundleSeq(out[j].ID) })
	return out, nil
}

// bundleSeq extracts the monotone sequence number from a bundle ID
// (<query>-<seq>-<unixmicro>); ties and malformed IDs order by the ID
// string itself via the stable sort above.
func bundleSeq(id string) int64 {
	parts := strings.Split(id, "-")
	if len(parts) < 3 {
		return 0
	}
	seq, err := strconv.ParseInt(parts[len(parts)-2], 10, 64)
	if err != nil {
		return 0
	}
	at, err := strconv.ParseInt(parts[len(parts)-1], 10, 64)
	if err != nil {
		return seq << 20
	}
	return seq<<44 | (at & (1<<44 - 1))
}

func readManifest(fsys fsx.FS, dir string) (Manifest, error) {
	raw, err := fsys.ReadFile(filepath.Join(dir, "MANIFEST.json"))
	if err != nil {
		return Manifest{}, err
	}
	body, err := fsx.Verify(filepath.Join(dir, "MANIFEST.json"), raw)
	if err != nil {
		return Manifest{}, err
	}
	var m Manifest
	if err := json.Unmarshal(body, &m); err != nil {
		return Manifest{}, err
	}
	return m, nil
}

// VerifyBundle checks a bundle end to end: the manifest's own frame CRC,
// then every listed file's length and CRC32C. It returns the manifest on
// success.
func VerifyBundle(fsys fsx.FS, dir string) (Manifest, error) {
	m, err := readManifest(fsys, dir)
	if err != nil {
		return m, err
	}
	for _, f := range m.Files {
		data, err := fsys.ReadFile(filepath.Join(dir, f.Name))
		if err != nil {
			return m, fmt.Errorf("health: bundle file %s: %w", f.Name, err)
		}
		if len(data) != f.Bytes {
			return m, fmt.Errorf("health: %w: %s is %d bytes, manifest says %d",
				fsx.ErrCorrupt, f.Name, len(data), f.Bytes)
		}
		if got := fmt.Sprintf("%08x", fsx.Checksum(data)); got != f.CRC32C {
			return m, fmt.Errorf("health: %w: %s crc32c %s, manifest says %s",
				fsx.ErrCorrupt, f.Name, got, f.CRC32C)
		}
	}
	return m, nil
}

// ReadBundleFile returns one file from a bundle after verifying it
// against the manifest.
func ReadBundleFile(fsys fsx.FS, dir, name string) ([]byte, error) {
	m, err := readManifest(fsys, dir)
	if err != nil {
		return nil, err
	}
	for _, f := range m.Files {
		if f.Name != name {
			continue
		}
		data, err := fsys.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		if len(data) != f.Bytes || fmt.Sprintf("%08x", fsx.Checksum(data)) != f.CRC32C {
			return nil, fmt.Errorf("health: %w: %s fails its manifest checksum", fsx.ErrCorrupt, name)
		}
		return data, nil
	}
	return nil, fmt.Errorf("health: bundle has no file %q", name)
}
