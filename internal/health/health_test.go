package health

import (
	"io"
	"path/filepath"
	"testing"
	"time"

	"structream/internal/fsx"
	"structream/internal/metrics"
	"structream/internal/trace"
)

// fakeClock is a deterministic, manually-advanced time source.
type fakeClock struct{ now time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
}
func (c *fakeClock) Now() time.Time                    { return c.now }
func (c *fakeClock) Advance(d time.Duration) time.Time { c.now = c.now.Add(d); return c.now }

func testTracker(t *testing.T, mutate func(*Config)) (*Tracker, *fakeClock, string) {
	t.Helper()
	dir := t.TempDir()
	clk := newFakeClock()
	reg := metrics.NewRegistry()
	tr := trace.NewTracer("q1", 8)
	et := tr.StartEpoch(1, "microbatch")
	et.SetAttr("rows", 10)
	et.Finish()
	ev := metrics.NewEventLog(io.Discard)
	ev.Emit(metrics.QueryProgress{QueryName: "q1", Epoch: 1})
	cfg := Config{
		Query:       "q1",
		Dir:         dir,
		Clock:       clk.Now,
		MinSamples:  4,
		SyncCapture: true,
		Registry:    reg,
		Tracer:      tr,
		Events:      ev,
		// Keep the capture window short: the test cares about bundle
		// completeness, not profile quality.
		CPUProfileDuration: 20 * time.Millisecond,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	return New(cfg), clk, dir
}

// steady feeds n unremarkable epochs to build a baseline.
func steady(tk *Tracker, from int64, n int) int64 {
	e := from
	for i := 0; i < n; i++ {
		tk.ObserveEpoch(Sample{
			Epoch:           e,
			LatencyUs:       1000 + int64(i%3), // tiny jitter
			InputRowsPerSec: 50000,
			BacklogRecords:  10,
			WatermarkLagUs:  2000,
		})
		e++
	}
	return e
}

// TestLatencySpikeTripsDetectorAndCapturesBundle is the acceptance test:
// a fake-clock latency spike trips the detector and produces a complete,
// CRC-clean bundle containing the trace window, profiles, and progress
// history.
func TestLatencySpikeTripsDetectorAndCapturesBundle(t *testing.T) {
	tk, _, dir := testTracker(t, nil)
	defer tk.Close()

	e := steady(tk, 1, 10)
	tk.ObserveEpoch(Sample{
		Epoch:           e,
		LatencyUs:       250_000, // 250× the baseline
		InputRowsPerSec: 50000,
		BacklogRecords:  10,
		WatermarkLagUs:  2000,
	})

	rep := tk.Health()
	if rep.Status != "anomalous" {
		t.Fatalf("status = %q, want anomalous", rep.Status)
	}
	if rep.LastAnomaly == nil || rep.LastAnomaly.Signal != "epochLatencyUs" {
		t.Fatalf("lastAnomaly = %+v, want epochLatencyUs trip", rep.LastAnomaly)
	}
	if rep.LastAnomaly.BundleID == "" {
		t.Fatalf("anomaly has no bundle: %+v", rep.LastAnomaly)
	}
	if rep.LastAnomaly.CaptureError != "" {
		t.Fatalf("capture error: %s", rep.LastAnomaly.CaptureError)
	}

	m, err := VerifyBundle(fsx.Real(), filepath.Join(dir, rep.LastAnomaly.BundleID))
	if err != nil {
		t.Fatalf("VerifyBundle: %v", err)
	}
	want := map[string]bool{
		"meta.json": false, "progress.jsonl": false, "trace.jsonl": false,
		"metrics.json": false, "goroutines.txt": false,
		"heap.pprof": false, "cpu.pprof": false,
	}
	for _, f := range m.Files {
		if _, ok := want[f.Name]; ok {
			want[f.Name] = true
		}
		if f.Bytes == 0 && f.Name != "progress.jsonl" {
			t.Errorf("bundle file %s is empty", f.Name)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("bundle missing %s", name)
		}
	}

	// The anomalous epoch's trace must be inside the captured window.
	tr, err := ReadBundleFile(fsx.Real(), filepath.Join(dir, rep.LastAnomaly.BundleID), "trace.jsonl")
	if err != nil {
		t.Fatalf("ReadBundleFile(trace.jsonl): %v", err)
	}
	if len(tr) == 0 {
		t.Fatal("trace.jsonl is empty")
	}
}

// TestBundleRingRetentionCap proves the on-disk ring prunes oldest-first
// down to MaxBundles.
func TestBundleRingRetentionCap(t *testing.T) {
	tk, _, dir := testTracker(t, func(c *Config) {
		c.MaxBundles = 2
		c.CooldownEpochs = 1
		c.Mult = 2
		c.ZScore = 2             // repeated spikes enter the baseline ring and widen it
		c.DisableProfiles = true // keep the loop fast
	})
	defer tk.Close()

	e := steady(tk, 1, 10)
	for i := 0; i < 4; i++ {
		tk.ObserveEpoch(Sample{Epoch: e, LatencyUs: 10_000_000, InputRowsPerSec: 50000, BacklogRecords: 10, WatermarkLagUs: 2000})
		e = steady(tk, e+1, 6) // re-settle so the next spike still trips
	}

	bundles, err := ListBundles(fsx.Real(), dir)
	if err != nil {
		t.Fatalf("ListBundles: %v", err)
	}
	if len(bundles) != 2 {
		t.Fatalf("ring holds %d bundles, want 2 (retention cap)", len(bundles))
	}
	for i := 1; i < len(bundles); i++ {
		if bundleSeq(bundles[i-1].ID) >= bundleSeq(bundles[i].ID) {
			t.Fatalf("bundles out of order: %s then %s", bundles[i-1].ID, bundles[i].ID)
		}
	}
	// The survivors are the NEWEST two: both verify clean.
	for _, b := range bundles {
		if _, err := VerifyBundle(fsx.Real(), filepath.Join(dir, b.ID)); err != nil {
			t.Errorf("surviving bundle %s: %v", b.ID, err)
		}
	}
}

// TestThroughputDropTripsLowDirection: the throughput signal is anomalous
// when LOW, not high.
func TestThroughputDropTripsLowDirection(t *testing.T) {
	// A throughput *burst* must not trip.
	burst, _, _ := testTracker(t, func(c *Config) { c.DisableProfiles = true })
	defer burst.Close()
	e := steady(burst, 1, 10)
	burst.ObserveEpoch(Sample{Epoch: e, LatencyUs: 1001, InputRowsPerSec: 900_000, BacklogRecords: 10, WatermarkLagUs: 2000})
	if rep := burst.Health(); rep.Status != "ok" {
		t.Fatalf("burst tripped: %+v", rep.LastAnomaly)
	}
	// A stall (collapse to ~nothing) must trip.
	stall, _, _ := testTracker(t, func(c *Config) { c.DisableProfiles = true })
	defer stall.Close()
	e = steady(stall, 1, 10)
	stall.ObserveEpoch(Sample{Epoch: e, LatencyUs: 1001, InputRowsPerSec: 5, BacklogRecords: 10, WatermarkLagUs: 2000})
	rep := stall.Health()
	if rep.LastAnomaly == nil || rep.LastAnomaly.Signal != "inputRowsPerSec" {
		t.Fatalf("lastAnomaly = %+v, want inputRowsPerSec", rep.LastAnomaly)
	}
}

// TestWatermarkSentinelSkipped: lag < 0 (no watermarked pipeline) never
// feeds the signal, so it cannot poison the baseline or trip.
func TestWatermarkSentinelSkipped(t *testing.T) {
	tk, _, _ := testTracker(t, func(c *Config) { c.DisableProfiles = true })
	defer tk.Close()
	for i := int64(1); i <= 20; i++ {
		tk.ObserveEpoch(Sample{Epoch: i, LatencyUs: 1000, InputRowsPerSec: 1000, WatermarkLagUs: -1})
	}
	for _, s := range tk.Health().Signals {
		if s.Name == "watermarkLagUs" {
			t.Fatalf("watermarkLagUs signal exists with %d samples despite sentinel", s.Samples)
		}
	}
}

// TestRestartTripsOnZeroBaseline: a restart after a stable run trips even
// though the baseline mean is zero.
func TestRestartTripsOnZeroBaseline(t *testing.T) {
	tk, _, _ := testTracker(t, func(c *Config) { c.DisableProfiles = true })
	defer tk.Close()
	for i := int64(1); i <= 10; i++ {
		tk.ObserveEpoch(Sample{Epoch: i, LatencyUs: 1000, InputRowsPerSec: 1000, WatermarkLagUs: -1})
	}
	tk.ObserveEpoch(Sample{Epoch: 11, LatencyUs: 1000, InputRowsPerSec: 1000, WatermarkLagUs: -1, Restarts: 1})
	rep := tk.Health()
	if rep.LastAnomaly == nil || rep.LastAnomaly.Signal != "restartsPerEpoch" {
		t.Fatalf("lastAnomaly = %+v, want restartsPerEpoch", rep.LastAnomaly)
	}
}

// TestLineageStamps: end-to-end latency is deliver − ingest, earliest
// ingest and latest deliver win, and the observation lands in the
// registry histogram.
func TestLineageStamps(t *testing.T) {
	reg := metrics.NewRegistry()
	tk := New(Config{Query: "q", Registry: reg})
	defer tk.Close()

	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	tk.StampIngest(5, base.Add(10*time.Millisecond))
	tk.StampIngest(5, base) // earlier source read wins
	tk.StampAdmit(5, base.Add(1*time.Millisecond))
	tk.StampExecute(5, base.Add(2*time.Millisecond))
	tk.StampCommit(5, base.Add(5*time.Millisecond))
	tk.StampDeliver(5, base.Add(8*time.Millisecond))
	tk.StampDeliver(5, base.Add(20*time.Millisecond)) // slowest subscriber wins

	s, ok := tk.Stamp(5)
	if !ok {
		t.Fatal("stamp 5 missing")
	}
	if s.IngestMicros != base.UnixMicro() {
		t.Errorf("ingest = %d, want %d", s.IngestMicros, base.UnixMicro())
	}
	if got, want := s.EndToEndMicros(), int64(20_000); got != want {
		t.Errorf("end-to-end = %dus, want %dus", got, want)
	}
	h := reg.Histogram("endToEndLatency.us")
	if h.Count() != 2 {
		t.Errorf("endToEndLatency.us count = %d, want 2 (one per deliver)", h.Count())
	}
	if h.Max() < 18_000 { // log-bucket resolution, not exact
		t.Errorf("endToEndLatency.us max = %d, want ~20000", h.Max())
	}
}

// TestStampRingEviction: the ring holds stampSlots epochs; older epochs
// fall out and cannot clobber newer ones.
func TestStampRingEviction(t *testing.T) {
	tk := New(Config{Query: "q"})
	defer tk.Close()
	at := time.Unix(1000, 0)
	tk.StampIngest(1, at)
	tk.StampIngest(1+stampSlots, at) // same slot, newer epoch
	if _, ok := tk.Stamp(1); ok {
		t.Error("evicted epoch 1 still readable")
	}
	if _, ok := tk.Stamp(1 + stampSlots); !ok {
		t.Error("newer epoch missing from ring")
	}
	tk.StampCommit(1, at) // stale write must not clobber the newer epoch
	if s, _ := tk.Stamp(1 + stampSlots); s.CommitMicros != 0 {
		t.Error("stale epoch's commit stamp landed on the newer epoch")
	}
}

// TestNilTrackerIsSafe: every method on a nil *Tracker is a no-op.
func TestNilTrackerIsSafe(t *testing.T) {
	var tk *Tracker
	tk.StampIngest(1, time.Now())
	tk.StampAdmit(1, time.Now())
	tk.StampExecute(1, time.Now())
	tk.StampCommit(1, time.Now())
	tk.StampDeliver(1, time.Now())
	tk.ObserveEpoch(Sample{Epoch: 1})
	tk.ObservePartition("map", 0, 10, time.Millisecond)
	if _, ok := tk.Stamp(1); ok {
		t.Error("nil tracker returned a stamp")
	}
	if rep := tk.Health(); rep.Status != "disabled" {
		t.Errorf("nil tracker health = %q", rep.Status)
	}
	if bs, err := tk.Bundles(); err != nil || bs != nil {
		t.Errorf("nil tracker bundles = %v, %v", bs, err)
	}
	tk.Close()
}

// TestPartitionHooks: per-partition accounting accumulates and reports.
func TestPartitionHooks(t *testing.T) {
	tk := New(Config{Query: "q"})
	defer tk.Close()
	tk.ObservePartition("map", 0, 100, 2*time.Millisecond)
	tk.ObservePartition("map", 0, 50, 1*time.Millisecond)
	tk.ObservePartition("map", 2, 10, time.Millisecond) // sparse partition ids fill gaps
	tk.ObservePartition("state", 0, 5, time.Millisecond)
	rep := tk.Health()
	if len(rep.Partitions) != 4 {
		t.Fatalf("partitions = %+v, want 4 cells", rep.Partitions)
	}
	if rep.Partitions[0].Stage != "map" || rep.Partitions[0].Rows != 150 || rep.Partitions[0].Micros != 3000 {
		t.Errorf("map[0] = %+v, want 150 rows / 3000us", rep.Partitions[0])
	}
}

// TestCorruptBundleDetected: flipping one byte in a bundle file fails
// verification.
func TestCorruptBundleDetected(t *testing.T) {
	tk, _, dir := testTracker(t, func(c *Config) { c.DisableProfiles = true })
	defer tk.Close()
	e := steady(tk, 1, 10)
	tk.ObserveEpoch(Sample{Epoch: e, LatencyUs: 500_000, InputRowsPerSec: 50000, BacklogRecords: 10, WatermarkLagUs: 2000})
	rep := tk.Health()
	if rep.LastAnomaly == nil || rep.LastAnomaly.BundleID == "" {
		t.Fatalf("no bundle captured: %+v", rep.LastAnomaly)
	}
	bdir := filepath.Join(dir, rep.LastAnomaly.BundleID)
	path := filepath.Join(bdir, "meta.json")
	data, err := fsx.Real().ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := fsx.Real().WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyBundle(fsx.Real(), bdir); err == nil {
		t.Fatal("VerifyBundle accepted a corrupted bundle")
	} else if !fsx.IsCorrupt(err) {
		t.Fatalf("corruption error not marked fsx.ErrCorrupt: %v", err)
	}
}

// TestCaptureCooldown: a sustained anomaly yields one bundle per cooldown
// window, not one per epoch.
func TestCaptureCooldown(t *testing.T) {
	tk, _, dir := testTracker(t, func(c *Config) {
		c.DisableProfiles = true
		c.CooldownEpochs = 100
	})
	defer tk.Close()
	e := steady(tk, 1, 10)
	for i := 0; i < 20; i++ { // 20 anomalous epochs inside one cooldown window
		tk.ObserveEpoch(Sample{Epoch: e, LatencyUs: 500_000, InputRowsPerSec: 50000, BacklogRecords: 10, WatermarkLagUs: 2000})
		e++
	}
	bundles, err := ListBundles(fsx.Real(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(bundles) != 1 {
		t.Fatalf("captured %d bundles inside one cooldown window, want 1", len(bundles))
	}
}
