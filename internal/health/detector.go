package health

import (
	"math"
	"sort"
)

// The anomaly detector keeps a rolling baseline per signal — a bounded
// ring of recent samples — and trips when a new sample deviates from that
// baseline both multiplicatively (v > mean×Mult) and, when the baseline
// has spread, statistically (z-score above ZScore). Requiring both keeps
// the detector quiet on two classic false-positive shapes: a tight
// baseline where tiny absolute jitter yields huge z-scores (the
// multiplicative bound filters it), and a noisy baseline where large
// absolute excursions are normal (the z-score bound filters it).
//
// Signals are direction-aware: latency, backlog, watermark lag, and
// restart rate are anomalous when HIGH; throughput is anomalous when LOW
// (a stall, not a burst, is the problem). Outliers still enter the ring,
// so a permanent regime change re-baselines within one window instead of
// tripping forever; the capture cooldown in the Tracker bounds how many
// bundles a sustained anomaly can cost.

type direction int

const (
	high direction = +1 // anomalous when above baseline
	low  direction = -1 // anomalous when below baseline
)

type signal struct {
	name  string
	dir   direction
	ring  []float64
	next  int
	n     int
	last  float64
	trips int64
}

type detector struct {
	window     int
	minSamples int
	mult       float64
	zscore     float64
	signals    map[string]*signal
}

func newDetector(window, minSamples int, mult, zscore float64) *detector {
	return &detector{
		window:     window,
		minSamples: minSamples,
		mult:       mult,
		zscore:     zscore,
		signals:    make(map[string]*signal),
	}
}

// observe feeds one sample and returns a non-nil Anomaly on trip. Caller
// holds the Tracker mutex.
func (d *detector) observe(name string, v float64, dir direction) *Anomaly {
	sig := d.signals[name]
	if sig == nil {
		sig = &signal{name: name, dir: dir, ring: make([]float64, 0, d.window)}
		d.signals[name] = sig
	}
	mean, std := sig.baseline()
	tripped := false
	if sig.n >= d.minSamples {
		switch dir {
		case high:
			// A mean==0 baseline (e.g. restarts) trips on any positive v.
			if v > mean*d.mult && (std == 0 || (v-mean)/std > d.zscore) {
				tripped = true
			}
		case low:
			if mean > 0 && v < mean/d.mult && (std == 0 || (mean-v)/std > d.zscore) {
				tripped = true
			}
		}
	}
	sig.push(v, d.window)
	sig.last = v
	if !tripped {
		return nil
	}
	sig.trips++
	return &Anomaly{Signal: name, Value: v, Mean: mean, Std: std}
}

func (s *signal) push(v float64, window int) {
	if len(s.ring) < window {
		s.ring = append(s.ring, v)
	} else {
		s.ring[s.next] = v
		s.next = (s.next + 1) % window
	}
	s.n++
}

// baseline returns the mean and standard deviation of the ring contents
// (the samples *before* the one being judged).
func (s *signal) baseline() (mean, std float64) {
	if len(s.ring) == 0 {
		return 0, 0
	}
	var sum float64
	for _, v := range s.ring {
		sum += v
	}
	mean = sum / float64(len(s.ring))
	var varsum float64
	for _, v := range s.ring {
		d := v - mean
		varsum += d * d
	}
	return mean, math.Sqrt(varsum / float64(len(s.ring)))
}

// statuses snapshots every signal for the health report, name-ordered.
func (d *detector) statuses() []SignalStatus {
	out := make([]SignalStatus, 0, len(d.signals))
	for _, sig := range d.signals {
		mean, std := sig.baseline()
		out = append(out, SignalStatus{
			Name:    sig.name,
			Last:    sig.last,
			Mean:    mean,
			Std:     std,
			Samples: sig.n,
			Trips:   sig.trips,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
