package sql

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// AggKind identifies a built-in aggregate function.
type AggKind int

// Supported aggregate functions. All of them are mergeable (they implement
// partial aggregation), which the engine relies on twice: map-side partial
// aggregation before the shuffle, and merging each epoch's partials into
// the long-lived buffers held in the state store.
const (
	AggCount AggKind = iota
	AggCountAll
	AggSum
	AggAvg
	AggMin
	AggMax
	AggFirst
	AggLast
	AggCountDistinct
	AggApproxCountDistinct
	AggStddev
	AggVariance
)

var aggNames = map[AggKind]string{
	AggCount: "count", AggCountAll: "count(*)", AggSum: "sum", AggAvg: "avg",
	AggMin: "min", AggMax: "max", AggFirst: "first", AggLast: "last",
	AggCountDistinct: "count_distinct", AggApproxCountDistinct: "approx_count_distinct",
	AggStddev: "stddev", AggVariance: "variance",
}

// AggKindByName resolves an aggregate function name.
func AggKindByName(name string) (AggKind, bool) {
	switch strings.ToLower(name) {
	case "count":
		return AggCount, true
	case "sum":
		return AggSum, true
	case "avg", "mean":
		return AggAvg, true
	case "min":
		return AggMin, true
	case "max":
		return AggMax, true
	case "first":
		return AggFirst, true
	case "last":
		return AggLast, true
	case "count_distinct":
		return AggCountDistinct, true
	case "approx_count_distinct":
		return AggApproxCountDistinct, true
	case "stddev", "stddev_samp":
		return AggStddev, true
	case "variance", "var_samp":
		return AggVariance, true
	default:
		return 0, false
	}
}

// AggExpr is an aggregate function call over a child expression. For
// count(*) the child is nil.
type AggExpr struct {
	Kind  AggKind
	Child Expr
}

// NewAgg builds an aggregate expression.
func NewAgg(kind AggKind, child Expr) *AggExpr { return &AggExpr{Kind: kind, Child: child} }

// Count builds count(child); CountAll builds count(*).
func Count(child Expr) *AggExpr { return NewAgg(AggCount, child) }

// CountAll builds count(*).
func CountAll() *AggExpr { return NewAgg(AggCountAll, nil) }

// SumOf builds sum(child).
func SumOf(child Expr) *AggExpr { return NewAgg(AggSum, child) }

// AvgOf builds avg(child).
func AvgOf(child Expr) *AggExpr { return NewAgg(AggAvg, child) }

// MinOf builds min(child).
func MinOf(child Expr) *AggExpr { return NewAgg(AggMin, child) }

// MaxOf builds max(child).
func MaxOf(child Expr) *AggExpr { return NewAgg(AggMax, child) }

func (a *AggExpr) String() string {
	if a.Kind == AggCountAll {
		return "count(*)"
	}
	return fmt.Sprintf("%s(%s)", aggNames[a.Kind], a.Child)
}

func (a *AggExpr) Children() []Expr {
	if a.Child == nil {
		return nil
	}
	return []Expr{a.Child}
}

func (a *AggExpr) WithChildren(children []Expr) Expr {
	if len(children) == 0 {
		return a
	}
	return &AggExpr{Kind: a.Kind, Child: children[0]}
}

// Bind on an aggregate is an error in scalar context; aggregates are planned
// by the Aggregate logical operator, which calls BindAgg instead.
func (a *AggExpr) Bind(Schema) (BoundExpr, error) {
	return BoundExpr{}, fmt.Errorf("sql: aggregate %s used outside GROUP BY context", a)
}

// ContainsAgg reports whether e contains any aggregate function call.
func ContainsAgg(e Expr) bool {
	found := false
	WalkExpr(e, func(x Expr) {
		if _, ok := x.(*AggExpr); ok {
			found = true
		}
	})
	return found
}

// BoundAgg is a resolved aggregate: the compiled input expression plus a
// buffer factory. The engine drives it via AggBuffer.
type BoundAgg struct {
	Kind       AggKind
	Input      func(Row) Value // nil for count(*)
	ResultType Type
}

// BindAgg resolves an aggregate expression against the input schema.
func (a *AggExpr) BindAgg(schema Schema) (BoundAgg, error) {
	out := BoundAgg{Kind: a.Kind}
	if a.Kind == AggCountAll {
		out.ResultType = TypeInt64
		return out, nil
	}
	child, err := a.Child.Bind(schema)
	if err != nil {
		return BoundAgg{}, err
	}
	out.Input = child.Eval
	switch a.Kind {
	case AggCount, AggCountDistinct, AggApproxCountDistinct:
		out.ResultType = TypeInt64
	case AggSum:
		if !child.Type.Numeric() && child.Type != TypeInterval && child.Type != TypeNull {
			return BoundAgg{}, fmt.Errorf("sql: sum over non-numeric type %s", child.Type)
		}
		out.ResultType = child.Type
		if child.Type == TypeNull {
			out.ResultType = TypeInt64
		}
	case AggAvg, AggStddev, AggVariance:
		if !child.Type.Numeric() && child.Type != TypeNull {
			return BoundAgg{}, fmt.Errorf("sql: %s over non-numeric type %s", aggNames[a.Kind], child.Type)
		}
		out.ResultType = TypeFloat64
	case AggMin, AggMax, AggFirst, AggLast:
		out.ResultType = child.Type
	}
	return out, nil
}

// NewBuffer allocates an empty aggregation buffer for this aggregate.
func (b BoundAgg) NewBuffer() AggBuffer {
	switch b.Kind {
	case AggCount, AggCountAll:
		return &countBuffer{}
	case AggSum:
		if b.ResultType == TypeInt64 || b.ResultType == TypeInterval {
			return &sumIntBuffer{}
		}
		return &sumFloatBuffer{}
	case AggAvg:
		return &avgBuffer{}
	case AggMin:
		return &minMaxBuffer{isMin: true}
	case AggMax:
		return &minMaxBuffer{isMin: false}
	case AggFirst:
		return &firstLastBuffer{isFirst: true}
	case AggLast:
		return &firstLastBuffer{isFirst: false}
	case AggCountDistinct:
		return &distinctBuffer{seen: map[string]bool{}}
	case AggApproxCountDistinct:
		return newHLLBuffer()
	case AggStddev:
		return &momentsBuffer{stddev: true}
	case AggVariance:
		return &momentsBuffer{stddev: false}
	default:
		panic(fmt.Sprintf("sql: unknown aggregate kind %d", b.Kind))
	}
}

// AggBuffer is the mutable accumulation state of one aggregate for one
// group. Serialize/Deserialize round-trip the buffer through a value slice
// so it can live in the state store between epochs.
type AggBuffer interface {
	// Update folds one input value into the buffer.
	Update(v Value)
	// Merge folds another buffer of the same concrete type into this one.
	Merge(other AggBuffer)
	// Result produces the final aggregate value.
	Result() Value
	// Serialize renders the buffer as a flat value slice.
	Serialize() []Value
	// Deserialize restores the buffer from Serialize output.
	Deserialize(vals []Value) error
}

// Bulk update interfaces let the columnar hash-aggregate fold a whole
// vector's worth of per-group input into a buffer with one call instead of
// one Update per row. The contract that keeps results bit-identical to the
// row path: the caller accumulates each group's lanes in row order into a
// scalar (int64 wrap-around add, or float64 add starting from +0 on a
// fresh buffer) and hands over the partial exactly once, so the addition
// sequence the buffer observes matches what repeated Update calls would
// have produced.

// BulkCounter is implemented by buffers that count rows (count/count(*)).
type BulkCounter interface {
	// AddCount adds n accepted rows in one step.
	AddCount(n int64)
}

// BulkInt64Summer is implemented by buffers that sum int64 inputs.
type BulkInt64Summer interface {
	// AddInt64Sum adds a partial sum over n accepted (non-NULL int64) rows.
	AddInt64Sum(sum int64, n int64)
}

// BulkFloat64Summer is implemented by buffers that sum float64-coercible
// inputs.
type BulkFloat64Summer interface {
	// AddFloat64Sum adds a partial sum over n accepted (non-NULL numeric)
	// rows.
	AddFloat64Sum(sum float64, n int64)
}

// canonNaN collapses any NaN to the canonical quiet NaN before
// serialization. The same mathematical sum can carry different NaN
// payloads depending on generated code (hardware NaN propagation picks
// the destination operand's payload, and operand placement differs
// between the row path's per-value Update and the columnar path's slab
// accumulation), so buffers canonicalize at the serialization boundary to
// keep shuffle rows and stored state byte-identical across paths.
func canonNaN(f float64) float64 {
	if math.IsNaN(f) {
		return math.NaN()
	}
	return f
}

// ---------------------------------------------------------------- count

type countBuffer struct{ n int64 }

func (b *countBuffer) Update(v Value)        { b.n++ }
func (b *countBuffer) AddCount(n int64)      { b.n += n }
func (b *countBuffer) Merge(other AggBuffer) { b.n += other.(*countBuffer).n }
func (b *countBuffer) Result() Value         { return b.n }
func (b *countBuffer) Serialize() []Value    { return []Value{b.n} }
func (b *countBuffer) Deserialize(vals []Value) error {
	n, ok := vals[0].(int64)
	if !ok {
		return fmt.Errorf("sql: bad count buffer %v", vals)
	}
	b.n = n
	return nil
}

// ---------------------------------------------------------------- sum

type sumIntBuffer struct {
	sum int64
	any bool
}

func (b *sumIntBuffer) Update(v Value) {
	if n, ok := v.(int64); ok {
		b.sum += n
		b.any = true
	}
}
func (b *sumIntBuffer) AddInt64Sum(sum int64, n int64) {
	if n > 0 {
		b.sum += sum
		b.any = true
	}
}
func (b *sumIntBuffer) Merge(other AggBuffer) {
	o := other.(*sumIntBuffer)
	b.sum += o.sum
	b.any = b.any || o.any
}
func (b *sumIntBuffer) Result() Value {
	if !b.any {
		return nil
	}
	return b.sum
}
func (b *sumIntBuffer) Serialize() []Value { return []Value{b.sum, b.any} }
func (b *sumIntBuffer) Deserialize(vals []Value) error {
	sum, ok1 := vals[0].(int64)
	anyv, ok2 := vals[1].(bool)
	if !ok1 || !ok2 {
		return fmt.Errorf("sql: bad sum buffer %v", vals)
	}
	b.sum, b.any = sum, anyv
	return nil
}

type sumFloatBuffer struct {
	sum float64
	any bool
}

func (b *sumFloatBuffer) Update(v Value) {
	if f, ok := AsFloat64(v); ok && v != nil {
		b.sum += f
		b.any = true
	}
}
func (b *sumFloatBuffer) AddFloat64Sum(sum float64, n int64) {
	if n > 0 {
		b.sum += sum
		b.any = true
	}
}
func (b *sumFloatBuffer) Merge(other AggBuffer) {
	o := other.(*sumFloatBuffer)
	b.sum += o.sum
	b.any = b.any || o.any
}
func (b *sumFloatBuffer) Result() Value {
	if !b.any {
		return nil
	}
	return b.sum
}
func (b *sumFloatBuffer) Serialize() []Value { return []Value{canonNaN(b.sum), b.any} }
func (b *sumFloatBuffer) Deserialize(vals []Value) error {
	sum, ok1 := vals[0].(float64)
	anyv, ok2 := vals[1].(bool)
	if !ok1 || !ok2 {
		return fmt.Errorf("sql: bad sum buffer %v", vals)
	}
	b.sum, b.any = sum, anyv
	return nil
}

// ---------------------------------------------------------------- avg

type avgBuffer struct {
	sum float64
	n   int64
}

func (b *avgBuffer) Update(v Value) {
	if f, ok := AsFloat64(v); ok && v != nil {
		b.sum += f
		b.n++
	}
}
func (b *avgBuffer) AddFloat64Sum(sum float64, n int64) {
	if n > 0 {
		b.sum += sum
		b.n += n
	}
}
func (b *avgBuffer) Merge(other AggBuffer) {
	o := other.(*avgBuffer)
	b.sum += o.sum
	b.n += o.n
}
func (b *avgBuffer) Result() Value {
	if b.n == 0 {
		return nil
	}
	return b.sum / float64(b.n)
}
func (b *avgBuffer) Serialize() []Value { return []Value{canonNaN(b.sum), b.n} }
func (b *avgBuffer) Deserialize(vals []Value) error {
	sum, ok1 := vals[0].(float64)
	n, ok2 := vals[1].(int64)
	if !ok1 || !ok2 {
		return fmt.Errorf("sql: bad avg buffer %v", vals)
	}
	b.sum, b.n = sum, n
	return nil
}

// ---------------------------------------------------------------- min/max

type minMaxBuffer struct {
	val   Value
	isMin bool
}

func (b *minMaxBuffer) Update(v Value) {
	if v == nil {
		return
	}
	if b.val == nil {
		b.val = v
		return
	}
	c := Compare(v, b.val)
	if b.isMin && c < 0 || !b.isMin && c > 0 {
		b.val = v
	}
}
func (b *minMaxBuffer) Merge(other AggBuffer) { b.Update(other.(*minMaxBuffer).val) }
func (b *minMaxBuffer) Result() Value         { return b.val }
func (b *minMaxBuffer) Serialize() []Value    { return []Value{b.val, b.isMin} }
func (b *minMaxBuffer) Deserialize(vals []Value) error {
	b.val = vals[0]
	isMin, ok := vals[1].(bool)
	if !ok {
		return fmt.Errorf("sql: bad min/max buffer %v", vals)
	}
	b.isMin = isMin
	return nil
}

// ---------------------------------------------------------------- first/last

type firstLastBuffer struct {
	val     Value
	set     bool
	isFirst bool
}

func (b *firstLastBuffer) Update(v Value) {
	if v == nil {
		return
	}
	if b.isFirst && b.set {
		return
	}
	b.val = v
	b.set = true
}
func (b *firstLastBuffer) Merge(other AggBuffer) {
	o := other.(*firstLastBuffer)
	if !o.set {
		return
	}
	if b.isFirst && b.set {
		return
	}
	b.val, b.set = o.val, true
}
func (b *firstLastBuffer) Result() Value      { return b.val }
func (b *firstLastBuffer) Serialize() []Value { return []Value{b.val, b.set, b.isFirst} }
func (b *firstLastBuffer) Deserialize(vals []Value) error {
	b.val = vals[0]
	set, ok1 := vals[1].(bool)
	isFirst, ok2 := vals[2].(bool)
	if !ok1 || !ok2 {
		return fmt.Errorf("sql: bad first/last buffer %v", vals)
	}
	b.set, b.isFirst = set, isFirst
	return nil
}

// ---------------------------------------------------------------- distinct

type distinctBuffer struct{ seen map[string]bool }

func (b *distinctBuffer) Update(v Value) {
	if v == nil {
		return
	}
	b.seen[AsString(v)+"\x00"+TypeOf(v).String()] = true
}
func (b *distinctBuffer) Merge(other AggBuffer) {
	for k := range other.(*distinctBuffer).seen {
		b.seen[k] = true
	}
}
func (b *distinctBuffer) Result() Value { return int64(len(b.seen)) }
func (b *distinctBuffer) Serialize() []Value {
	keys := make([]string, 0, len(b.seen))
	for k := range b.seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Value, len(keys))
	for i, k := range keys {
		out[i] = k
	}
	return out
}
func (b *distinctBuffer) Deserialize(vals []Value) error {
	b.seen = make(map[string]bool, len(vals))
	for _, v := range vals {
		s, ok := v.(string)
		if !ok {
			return fmt.Errorf("sql: bad distinct buffer element %v", v)
		}
		b.seen[s] = true
	}
	return nil
}

// ---------------------------------------------------------------- HLL

// hllBuffer implements approx_count_distinct with a HyperLogLog sketch
// (2^10 registers, ~3% standard error), the kind of sketch Spark uses.
type hllBuffer struct{ regs []byte }

const hllP = 10 // 1024 registers

func newHLLBuffer() *hllBuffer { return &hllBuffer{regs: make([]byte, 1<<hllP)} }

func (b *hllBuffer) Update(v Value) {
	if v == nil {
		return
	}
	h := fnvHash64(AsString(v))
	idx := h >> (64 - hllP)
	rest := h<<hllP | 1<<(hllP-1) // ensure termination
	rank := byte(1)
	for rest&(1<<63) == 0 {
		rank++
		rest <<= 1
	}
	if rank > b.regs[idx] {
		b.regs[idx] = rank
	}
}

func (b *hllBuffer) Merge(other AggBuffer) {
	o := other.(*hllBuffer)
	for i, r := range o.regs {
		if r > b.regs[i] {
			b.regs[i] = r
		}
	}
}

func (b *hllBuffer) Result() Value {
	m := float64(len(b.regs))
	var sum float64
	zeros := 0
	for _, r := range b.regs {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	alpha := 0.7213 / (1 + 1.079/m)
	est := alpha * m * m / sum
	if est <= 2.5*m && zeros > 0 {
		est = m * math.Log(m/float64(zeros)) // small-range correction
	}
	return int64(est + 0.5)
}

func (b *hllBuffer) Serialize() []Value { return []Value{append([]byte(nil), b.regs...)} }
func (b *hllBuffer) Deserialize(vals []Value) error {
	regs, ok := vals[0].([]byte)
	if !ok || len(regs) != 1<<hllP {
		return fmt.Errorf("sql: bad hll buffer")
	}
	b.regs = append([]byte(nil), regs...)
	return nil
}

func fnvHash64(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// ---------------------------------------------------------------- moments

// momentsBuffer computes sample variance/stddev with Welford/Chan's
// parallel-merge formulation, so partial buffers merge exactly.
type momentsBuffer struct {
	n      int64
	mean   float64
	m2     float64
	stddev bool
}

func (b *momentsBuffer) Update(v Value) {
	f, ok := AsFloat64(v)
	if !ok || v == nil {
		return
	}
	b.n++
	d := f - b.mean
	b.mean += d / float64(b.n)
	b.m2 += d * (f - b.mean)
}

func (b *momentsBuffer) Merge(other AggBuffer) {
	o := other.(*momentsBuffer)
	if o.n == 0 {
		return
	}
	if b.n == 0 {
		b.n, b.mean, b.m2 = o.n, o.mean, o.m2
		return
	}
	n := b.n + o.n
	d := o.mean - b.mean
	b.m2 += o.m2 + d*d*float64(b.n)*float64(o.n)/float64(n)
	b.mean += d * float64(o.n) / float64(n)
	b.n = n
}

func (b *momentsBuffer) Result() Value {
	if b.n < 2 {
		return nil
	}
	variance := b.m2 / float64(b.n-1)
	if b.stddev {
		return math.Sqrt(variance)
	}
	return variance
}

func (b *momentsBuffer) Serialize() []Value { return []Value{b.n, b.mean, b.m2, b.stddev} }
func (b *momentsBuffer) Deserialize(vals []Value) error {
	n, ok1 := vals[0].(int64)
	mean, ok2 := vals[1].(float64)
	m2, ok3 := vals[2].(float64)
	sd, ok4 := vals[3].(bool)
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return fmt.Errorf("sql: bad moments buffer %v", vals)
	}
	b.n, b.mean, b.m2, b.stddev = n, mean, m2, sd
	return nil
}
