// Package vec implements the typed columnar execution path: column
// vectors with null bitmaps, branch-light kernels over them, and a
// compiler from bound-compatible expressions to kernel chains.
//
// The row path stores every cell as a boxed `any`; the hot microbatch
// loop pays interface dispatch and heap boxing per cell. Vectors store
// each column in a typed slab (one allocation per column per batch) and
// kernels run tight loops over the slabs, so the only boxing left is at
// the row/column boundary where downstream operators still need
// []sql.Value rows.
//
// Semantics contract: every kernel reproduces the row path's observable
// behaviour exactly — NULL propagation, the NaN comparison quirk of
// sql.Compare, integer overflow wrap, division always producing float64
// with a NULL on zero divisors — so the engine can switch paths per
// batch without changing results. Anything outside the supported subset
// fails compilation and the caller falls back to the row path.
package vec

import "structream/internal/sql"

// Kind is the physical representation of a column vector.
type Kind uint8

const (
	// KindInt64 backs TypeInt64, TypeTimestamp and TypeInterval (all are
	// int64 microsecond values at runtime).
	KindInt64 Kind = iota
	KindFloat64
	KindBool
	KindString
	// KindWindow stores [start, end) pairs as two int64 slabs.
	KindWindow
	// KindAny falls back to boxed values (TypeBinary, TypeAny, TypeNull);
	// such columns carry no typed fast path but still ride in batches.
	KindAny
)

// KindOf maps a schema type to its vector representation.
func KindOf(t sql.Type) Kind {
	switch t {
	case sql.TypeInt64, sql.TypeTimestamp, sql.TypeInterval:
		return KindInt64
	case sql.TypeFloat64:
		return KindFloat64
	case sql.TypeBool:
		return KindBool
	case sql.TypeString:
		return KindString
	case sql.TypeWindow:
		return KindWindow
	default:
		return KindAny
	}
}

// Bitmap marks NULL positions: a set bit means the position is NULL.
// A nil Bitmap means "no nulls", which keeps the common all-valid case
// allocation-free.
type Bitmap []uint64

// NewBitmap returns an all-valid bitmap sized for n positions.
func NewBitmap(n int) Bitmap { return make(Bitmap, (n+63)/64) }

// Get reports whether position i is NULL. Safe on a nil Bitmap.
func (b Bitmap) Get(i int) bool {
	return b != nil && b[i>>6]&(1<<uint(i&63)) != 0
}

// Set marks position i NULL. The bitmap must be non-nil and sized.
func (b Bitmap) Set(i int) { b[i>>6] |= 1 << uint(i&63) }

// Clear unmarks position i (used when a partially-decoded row is
// discarded and its slot will be reused).
func (b Bitmap) Clear(i int) {
	if b != nil {
		b[i>>6] &^= 1 << uint(i&63)
	}
}

// SetAll marks every position NULL.
func (b Bitmap) SetAll() {
	for i := range b {
		b[i] = ^uint64(0)
	}
}

// UnionNulls returns a bitmap carrying the nulls of both operands
// (either may be nil); nil when both are nil. The result never aliases
// a or b, so kernels may add bits to it.
func UnionNulls(n int, a, b Bitmap) Bitmap {
	if a == nil && b == nil {
		return nil
	}
	out := NewBitmap(n)
	for i := range out {
		var w uint64
		if a != nil {
			w = a[i]
		}
		if b != nil {
			w |= b[i]
		}
		out[i] = w
	}
	return out
}

// Vector is one typed column of a batch. Exactly one slab matching Kind
// is populated; Nulls (possibly nil) marks NULL positions for every kind
// except KindAny, where a nil boxed value is the NULL.
//
// Value slots at NULL positions hold unspecified garbage; kernels must
// never let a garbage slot change an observable result (they may read
// it, e.g. to compute a lane that the null bitmap then masks).
type Vector struct {
	Kind     Kind
	Int64s   []int64
	Float64s []float64
	Bools    []bool
	Strings  []string
	// WStarts/WEnds hold KindWindow [start, end) bounds.
	WStarts []int64
	WEnds   []int64
	Anys    []sql.Value
	Nulls   Bitmap
}

// NewVector allocates an all-valid vector of kind with n slots.
func NewVector(kind Kind, n int) *Vector {
	v := &Vector{Kind: kind}
	switch kind {
	case KindInt64:
		v.Int64s = make([]int64, n)
	case KindFloat64:
		v.Float64s = make([]float64, n)
	case KindBool:
		v.Bools = make([]bool, n)
	case KindString:
		v.Strings = make([]string, n)
	case KindWindow:
		v.WStarts = make([]int64, n)
		v.WEnds = make([]int64, n)
	case KindAny:
		v.Anys = make([]sql.Value, n)
	}
	return v
}

// EnsureNulls returns the vector's null bitmap, allocating an all-valid
// one sized for n positions on first use.
func (v *Vector) EnsureNulls(n int) Bitmap {
	if v.Nulls == nil {
		v.Nulls = NewBitmap(n)
	}
	return v.Nulls
}

// SetNull marks position i NULL, allocating the bitmap (sized for n) on
// first use.
func (v *Vector) SetNull(i, n int) { v.EnsureNulls(n).Set(i) }

// IsNull reports whether position i holds SQL NULL.
func (v *Vector) IsNull(i int) bool {
	if v.Kind == KindAny {
		return v.Anys[i] == nil
	}
	return v.Nulls.Get(i)
}

// Get boxes position i back into a sql.Value (nil for NULL). This is
// the row/column boundary; batch materialization calls it once per cell.
func (v *Vector) Get(i int) sql.Value {
	if v.Kind == KindAny {
		return v.Anys[i]
	}
	if v.Nulls.Get(i) {
		return nil
	}
	switch v.Kind {
	case KindInt64:
		return v.Int64s[i]
	case KindFloat64:
		return v.Float64s[i]
	case KindBool:
		return v.Bools[i]
	case KindString:
		return v.Strings[i]
	case KindWindow:
		return sql.Window{Start: v.WStarts[i], End: v.WEnds[i]}
	}
	return nil
}

// Batch is a column-major slice of rows flowing through the vectorized
// pipeline. Sel is the selection vector: nil means all positions
// [0, Len) are live; non-nil (possibly empty) means exactly the listed
// positions are live, in that order. Kernels evaluate densely over
// [0, Len) and filters narrow Sel, so dead lanes may be computed and
// discarded — cheaper than branching per lane.
type Batch struct {
	Schema sql.Schema
	Cols   []*Vector
	Len    int
	Sel    []int32
}

// NewBatch allocates typed all-valid vectors for every schema column.
func NewBatch(schema sql.Schema, n int) *Batch {
	cols := make([]*Vector, schema.Len())
	for c := range cols {
		cols[c] = NewVector(KindOf(schema.Field(c).Type), n)
	}
	return &Batch{Schema: schema, Cols: cols, Len: n}
}

// NumLive returns the number of live rows (respecting Sel).
func (b *Batch) NumLive() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return b.Len
}

// AppendRows materializes the batch's live rows as boxed sql.Rows onto
// dst. All rows share one backing slab, and consecutive equal windows
// share one boxed sql.Window, exactly like the physical layer's arena
// materializer — sinks that consume column batches lazily produce the
// same rows the row path would have delivered.
func (b *Batch) AppendRows(dst []sql.Row) []sql.Row {
	live := b.NumLive()
	if live == 0 {
		return dst
	}
	ncols := len(b.Cols)
	slab := make([]sql.Value, live*ncols)
	fill := func(i, rowBase int) {
		for c, v := range b.Cols {
			slab[rowBase+c] = v.Get(i)
		}
	}
	if b.Sel != nil {
		for r, i := range b.Sel {
			fill(int(i), r*ncols)
		}
	} else {
		for i := 0; i < live; i++ {
			fill(i, i*ncols)
		}
	}
	for r := 0; r < live; r++ {
		dst = append(dst, sql.Row(slab[r*ncols:(r+1)*ncols:(r+1)*ncols]))
	}
	return dst
}

// FromRows converts boxed rows into a column batch. ok is false when a
// row's arity differs from the schema or a cell's dynamic type does not
// match its column's vector kind — the caller must then fall back to the
// row path for the whole batch (sources do not validate dynamic types,
// so the row path tolerates drifted data and the vector path must not
// silently change it).
func FromRows(schema sql.Schema, rows []sql.Row) (*Batch, bool) {
	n := len(rows)
	ncols := schema.Len()
	for _, r := range rows {
		if len(r) != ncols {
			return nil, false
		}
	}
	b := &Batch{Schema: schema, Cols: make([]*Vector, ncols), Len: n}
	for c := 0; c < ncols; c++ {
		v := NewVector(KindOf(schema.Field(c).Type), n)
		if !fillFromRows(v, rows, c) {
			return nil, false
		}
		b.Cols[c] = v
	}
	return b, true
}

func fillFromRows(v *Vector, rows []sql.Row, c int) bool {
	n := len(rows)
	switch v.Kind {
	case KindInt64:
		dst := v.Int64s
		for i, r := range rows {
			switch x := r[c].(type) {
			case int64:
				dst[i] = x
			case nil:
				v.SetNull(i, n)
			default:
				return false
			}
		}
	case KindFloat64:
		dst := v.Float64s
		for i, r := range rows {
			switch x := r[c].(type) {
			case float64:
				dst[i] = x
			case nil:
				v.SetNull(i, n)
			default:
				return false
			}
		}
	case KindBool:
		dst := v.Bools
		for i, r := range rows {
			switch x := r[c].(type) {
			case bool:
				dst[i] = x
			case nil:
				v.SetNull(i, n)
			default:
				return false
			}
		}
	case KindString:
		dst := v.Strings
		for i, r := range rows {
			switch x := r[c].(type) {
			case string:
				dst[i] = x
			case nil:
				v.SetNull(i, n)
			default:
				return false
			}
		}
	case KindWindow:
		for i, r := range rows {
			switch x := r[c].(type) {
			case sql.Window:
				v.WStarts[i] = x.Start
				v.WEnds[i] = x.End
			case nil:
				v.SetNull(i, n)
			default:
				return false
			}
		}
	case KindAny:
		for i, r := range rows {
			v.Anys[i] = r[c]
		}
	}
	return true
}

// FromColumns converts column-major boxed values (the colfmt segment
// layout) into a batch, with the same all-or-nothing type contract as
// FromRows. Every column must have n values.
func FromColumns(schema sql.Schema, cols [][]sql.Value, n int) (*Batch, bool) {
	ncols := schema.Len()
	if len(cols) != ncols {
		return nil, false
	}
	b := &Batch{Schema: schema, Cols: make([]*Vector, ncols), Len: n}
	for c := 0; c < ncols; c++ {
		if len(cols[c]) != n {
			return nil, false
		}
		v := NewVector(KindOf(schema.Field(c).Type), n)
		if !fillFromValues(v, cols[c]) {
			return nil, false
		}
		b.Cols[c] = v
	}
	return b, true
}

func fillFromValues(v *Vector, vals []sql.Value) bool {
	n := len(vals)
	switch v.Kind {
	case KindInt64:
		for i, val := range vals {
			switch x := val.(type) {
			case int64:
				v.Int64s[i] = x
			case nil:
				v.SetNull(i, n)
			default:
				return false
			}
		}
	case KindFloat64:
		for i, val := range vals {
			switch x := val.(type) {
			case float64:
				v.Float64s[i] = x
			case nil:
				v.SetNull(i, n)
			default:
				return false
			}
		}
	case KindBool:
		for i, val := range vals {
			switch x := val.(type) {
			case bool:
				v.Bools[i] = x
			case nil:
				v.SetNull(i, n)
			default:
				return false
			}
		}
	case KindString:
		for i, val := range vals {
			switch x := val.(type) {
			case string:
				v.Strings[i] = x
			case nil:
				v.SetNull(i, n)
			default:
				return false
			}
		}
	case KindWindow:
		for i, val := range vals {
			switch x := val.(type) {
			case sql.Window:
				v.WStarts[i] = x.Start
				v.WEnds[i] = x.End
			case nil:
				v.SetNull(i, n)
			default:
				return false
			}
		}
	case KindAny:
		copy(v.Anys, vals)
	}
	return true
}

// Broadcast returns a vector repeating the boxed value v at every one of
// n positions (all-NULL when v is nil).
func Broadcast(val sql.Value, kind Kind, n int) *Vector {
	out := NewVector(kind, n)
	if val == nil {
		if kind == KindAny {
			return out // Anys already all nil
		}
		out.EnsureNulls(n).SetAll()
		return out
	}
	switch kind {
	case KindInt64:
		x := val.(int64)
		for i := range out.Int64s {
			out.Int64s[i] = x
		}
	case KindFloat64:
		x := val.(float64)
		for i := range out.Float64s {
			out.Float64s[i] = x
		}
	case KindBool:
		x := val.(bool)
		for i := range out.Bools {
			out.Bools[i] = x
		}
	case KindString:
		x := val.(string)
		for i := range out.Strings {
			out.Strings[i] = x
		}
	case KindWindow:
		x := val.(sql.Window)
		for i := range out.WStarts {
			out.WStarts[i] = x.Start
			out.WEnds[i] = x.End
		}
	case KindAny:
		for i := range out.Anys {
			out.Anys[i] = val
		}
	}
	return out
}
