package vec

import "structream/internal/sql"

// Program is a compiled vectorized expression. Run evaluates it to one
// vector per batch, densely over [0, Len); the selection vector is
// applied at stage boundaries (filters, materialization), not inside
// kernels. Programs hold no per-batch state and are safe for concurrent
// use across map tasks.
type Program struct {
	Type sql.Type
	run  func(*Batch) *Vector
}

// Run evaluates the program over b.
func (p *Program) Run(b *Batch) *Vector { return p.run(b) }

// Compile translates an expression into a kernel chain against the given
// input schema, reproducing exactly the semantics its Bind would have.
// ok is false when any node falls outside the vectorizable subset
// (column refs, literals, comparisons, arithmetic, AND/OR/NOT,
// IS [NOT] NULL, negation) — the caller then falls back to the row path
// for the whole pipeline stage. Compile must only be called on
// expressions that Bind accepted against the same schema.
func Compile(e sql.Expr, schema sql.Schema) (*Program, bool) {
	n, ok := compileNode(e, schema)
	if !ok {
		return nil, false
	}
	return &Program{Type: n.typ, run: n.vector}, true
}

// CompileAll compiles every expression, failing as a unit (a stage
// either runs fully vectorized or not at all).
func CompileAll(exprs []sql.Expr, schema sql.Schema) ([]*Program, bool) {
	progs := make([]*Program, len(exprs))
	for i, e := range exprs {
		p, ok := Compile(e, schema)
		if !ok {
			return nil, false
		}
		progs[i] = p
	}
	return progs, true
}

// node is one compiled sub-expression. Constants stay unmaterialized so
// parent operators can pick vector-constant kernels; node.vector
// broadcasts them when a parent needs a full vector.
type node struct {
	typ      sql.Type
	isConst  bool
	constVal sql.Value
	run      func(*Batch) *Vector
}

func (n node) vector(b *Batch) *Vector {
	if n.isConst {
		return Broadcast(n.constVal, KindOf(n.typ), b.Len)
	}
	return n.run(b)
}

// constNull reports whether the operand is a known NULL: either typed
// TypeNull (a bare NULL literal, or a column of a NULL-typed projection
// whose every value is nil) or a constant folding to nil.
func (n node) constNull() bool {
	return n.typ == sql.TypeNull || (n.isConst && n.constVal == nil)
}

// allNullNode evaluates to an all-NULL vector of t — the vector form of
// the row path returning nil for every row.
func allNullNode(t sql.Type) node {
	return node{typ: t, run: func(b *Batch) *Vector {
		v := NewVector(KindOf(t), b.Len)
		if v.Kind != KindAny {
			v.EnsureNulls(b.Len).SetAll()
		}
		return v
	}}
}

func compileNode(e sql.Expr, schema sql.Schema) (node, bool) {
	switch x := e.(type) {
	case *sql.Alias:
		return compileNode(x.Child, schema)
	case *sql.Column:
		idx, err := schema.Resolve(x.Name)
		if err != nil {
			return node{}, false
		}
		t := schema.Field(idx).Type
		return node{typ: t, run: func(b *Batch) *Vector { return b.Cols[idx] }}, true
	case *sql.Literal:
		return node{typ: x.Type, isConst: true, constVal: x.Val}, true
	case *sql.Binary:
		l, ok := compileNode(x.L, schema)
		if !ok {
			return node{}, false
		}
		r, ok := compileNode(x.R, schema)
		if !ok {
			return node{}, false
		}
		switch x.Op {
		case sql.OpAnd, sql.OpOr:
			return compileLogical(l, r, x.Op == sql.OpAnd)
		case sql.OpEq, sql.OpNe, sql.OpLt, sql.OpLe, sql.OpGt, sql.OpGe:
			return compileComparison(x.Op, l, r)
		case sql.OpLike:
			return node{}, false
		default:
			return compileArith(x.Op, l, r)
		}
	case *sql.Unary:
		c, ok := compileNode(x.Child, schema)
		if !ok {
			return node{}, false
		}
		return compileUnary(x.Op, c)
	default:
		// CASE, IN, CAST, LIKE, functions, window exprs: row path.
		return node{}, false
	}
}

// compileLogical builds three-valued AND/OR. Operands must be bool-kind
// or known NULL (bindLogical treats any non-bool value as NULL; for
// typed vectors only NULL-typed operands can hit that path).
func compileLogical(l, r node, isAnd bool) (node, bool) {
	operand := func(n node) (func(*Batch) *Vector, bool) {
		if n.constNull() {
			an := allNullNode(sql.TypeBool)
			return an.run, true
		}
		if KindOf(n.typ) != KindBool {
			return nil, false
		}
		return n.vector, true
	}
	lf, ok := operand(l)
	if !ok {
		return node{}, false
	}
	rf, ok := operand(r)
	if !ok {
		return node{}, false
	}
	return node{typ: sql.TypeBool, run: func(b *Batch) *Vector {
		return logical(lf(b), rf(b), b.Len, isAnd)
	}}, true
}

func compileComparison(op sql.BinOp, l, r node) (node, bool) {
	if _, ok := sql.CommonType(l.typ, r.typ); !ok {
		return node{}, false
	}
	// A known-NULL operand makes every lane NULL (the generic row path
	// returns nil whenever either side is nil; the typed fast paths do
	// the same via their failed assertions).
	if l.constNull() || r.constNull() {
		return allNullNode(sql.TypeBool), true
	}
	lk, rk := KindOf(l.typ), KindOf(r.typ)
	switch {
	case lk == KindInt64 && rk == KindInt64:
		return cmpNode(op, l, r, func(n node) func(*Batch) ([]int64, Bitmap) {
			return func(b *Batch) ([]int64, Bitmap) {
				v := n.vector(b)
				return v.Int64s, v.Nulls
			}
		}, func(v sql.Value) int64 { return v.(int64) }), true
	case (lk == KindInt64 || lk == KindFloat64) && (rk == KindInt64 || rk == KindFloat64):
		// Mixed or float comparison: both sides widen to float64, matching
		// sql.Compare's numeric promotion.
		return cmpNode(op, l, r, func(n node) func(*Batch) ([]float64, Bitmap) {
			return func(b *Batch) ([]float64, Bitmap) {
				v := n.vector(b)
				return asFloat64s(v, b.Len), v.Nulls
			}
		}, constFloat), true
	case lk == KindString && rk == KindString:
		return cmpNode(op, l, r, func(n node) func(*Batch) ([]string, Bitmap) {
			return func(b *Batch) ([]string, Bitmap) {
				v := n.vector(b)
				return v.Strings, v.Nulls
			}
		}, func(v sql.Value) string { return v.(string) }), true
	case lk == KindBool && rk == KindBool:
		// false < true, via the int kernel on widened lanes.
		return cmpNode(op, l, r, func(n node) func(*Batch) ([]int64, Bitmap) {
			return func(b *Batch) ([]int64, Bitmap) {
				v := n.vector(b)
				return boolsToInt64(v.Bools, b.Len), v.Nulls
			}
		}, func(v sql.Value) int64 {
			if v.(bool) {
				return 1
			}
			return 0
		}), true
	default:
		// Window/Any operands would take sql.Compare's reflective paths;
		// leave them to the row path.
		return node{}, false
	}
}

// constFloat coerces an int64 or float64 constant, mirroring AsFloat64.
func constFloat(v sql.Value) float64 {
	if f, ok := v.(float64); ok {
		return f
	}
	return float64(v.(int64))
}

// cmpNode wires the constant-aware comparison forms for one element
// type: slab(n) extracts an operand's lanes+nulls, conv coerces a
// non-nil constant.
func cmpNode[T ordered](op sql.BinOp, l, r node, slab func(node) func(*Batch) ([]T, Bitmap), conv func(sql.Value) T) node {
	switch {
	case r.isConst:
		c := conv(r.constVal)
		lf := slab(l)
		return node{typ: sql.TypeBool, run: func(b *Batch) *Vector {
			a, nulls := lf(b)
			out := NewVector(KindBool, b.Len)
			cmpVC(op, a[:b.Len], c, out.Bools)
			out.Nulls = nulls
			return out
		}}
	case l.isConst:
		c := conv(l.constVal)
		rf := slab(r)
		fop := flipCmp(op)
		return node{typ: sql.TypeBool, run: func(b *Batch) *Vector {
			a, nulls := rf(b)
			out := NewVector(KindBool, b.Len)
			cmpVC(fop, a[:b.Len], c, out.Bools)
			out.Nulls = nulls
			return out
		}}
	default:
		lf, rf := slab(l), slab(r)
		return node{typ: sql.TypeBool, run: func(b *Batch) *Vector {
			a, an := lf(b)
			bb, bn := rf(b)
			out := NewVector(KindBool, b.Len)
			cmpVV(op, a[:b.Len], bb[:b.Len], out.Bools)
			out.Nulls = UnionNulls(b.Len, an, bn)
			return out
		}}
	}
}

func compileArith(op sql.BinOp, l, r node) (node, bool) {
	// Timestamp ± interval special cases (all int64 lanes underneath). A
	// constant NULL operand fails the row path's type assertion on every
	// row, so the whole result is NULL.
	tsArith := func(op sql.BinOp, resType sql.Type) (node, bool) {
		if l.constNull() || r.constNull() {
			return allNullNode(resType), true
		}
		return intArithNode(op, resType, l, r), true
	}
	switch {
	case l.typ == sql.TypeTimestamp && r.typ == sql.TypeInterval && op == sql.OpAdd,
		l.typ == sql.TypeInterval && r.typ == sql.TypeTimestamp && op == sql.OpAdd:
		return tsArith(sql.OpAdd, sql.TypeTimestamp)
	case l.typ == sql.TypeTimestamp && r.typ == sql.TypeInterval && op == sql.OpSub:
		return tsArith(sql.OpSub, sql.TypeTimestamp)
	case l.typ == sql.TypeTimestamp && r.typ == sql.TypeTimestamp && op == sql.OpSub:
		return tsArith(sql.OpSub, sql.TypeInterval)
	case l.typ == sql.TypeInterval && r.typ == sql.TypeInterval && (op == sql.OpAdd || op == sql.OpSub):
		return tsArith(op, sql.TypeInterval)
	}
	if op == sql.OpAdd && l.typ == sql.TypeString && r.typ == sql.TypeString {
		return concatNode(l, r), true
	}
	lNum := l.typ.Numeric() || l.typ == sql.TypeNull
	rNum := r.typ.Numeric() || r.typ == sql.TypeNull
	if !lNum || !rNum {
		return node{}, false
	}
	if op == sql.OpDiv {
		return divNode(l, r), true
	}
	if l.constNull() || r.constNull() {
		// Row path: failed assertion / AsFloat64 on nil → nil every row.
		if l.typ == sql.TypeInt64 && r.typ == sql.TypeInt64 {
			return allNullNode(sql.TypeInt64), true
		}
		return allNullNode(sql.TypeFloat64), true
	}
	if l.typ == sql.TypeInt64 && r.typ == sql.TypeInt64 {
		if op == sql.OpMod {
			return intModNode(l, r), true
		}
		return intArithNode(op, sql.TypeInt64, l, r), true
	}
	if op == sql.OpMod {
		return floatModNode(l, r), true
	}
	return floatArithNode(op, l, r), true
}

// intArithNode wires +, -, * over int64 lanes (also timestamps and
// intervals) with wrap-around overflow like the row path.
func intArithNode(op sql.BinOp, resType sql.Type, l, r node) node {
	switch {
	case r.isConst:
		c := r.constVal.(int64)
		return node{typ: resType, run: func(b *Batch) *Vector {
			av := l.vector(b)
			out := NewVector(KindInt64, b.Len)
			arithVC(op, av.Int64s[:b.Len], c, out.Int64s)
			out.Nulls = av.Nulls
			return out
		}}
	case l.isConst:
		c := l.constVal.(int64)
		return node{typ: resType, run: func(b *Batch) *Vector {
			bv := r.vector(b)
			out := NewVector(KindInt64, b.Len)
			arithCV(op, c, bv.Int64s[:b.Len], out.Int64s)
			out.Nulls = bv.Nulls
			return out
		}}
	default:
		return node{typ: resType, run: func(b *Batch) *Vector {
			av, bv := l.vector(b), r.vector(b)
			out := NewVector(KindInt64, b.Len)
			arithVV(op, av.Int64s[:b.Len], bv.Int64s[:b.Len], out.Int64s)
			out.Nulls = UnionNulls(b.Len, av.Nulls, bv.Nulls)
			return out
		}}
	}
}

// floatArithNode wires +, -, * over float lanes with int operands
// widened, mirroring the AsFloat64 coercion of the row path.
func floatArithNode(op sql.BinOp, l, r node) node {
	switch {
	case r.isConst:
		c := constFloat(r.constVal)
		return node{typ: sql.TypeFloat64, run: func(b *Batch) *Vector {
			av := l.vector(b)
			out := NewVector(KindFloat64, b.Len)
			arithVC(op, asFloat64s(av, b.Len), c, out.Float64s)
			out.Nulls = av.Nulls
			return out
		}}
	case l.isConst:
		c := constFloat(l.constVal)
		return node{typ: sql.TypeFloat64, run: func(b *Batch) *Vector {
			bv := r.vector(b)
			out := NewVector(KindFloat64, b.Len)
			arithCV(op, c, asFloat64s(bv, b.Len), out.Float64s)
			out.Nulls = bv.Nulls
			return out
		}}
	default:
		return node{typ: sql.TypeFloat64, run: func(b *Batch) *Vector {
			av, bv := l.vector(b), r.vector(b)
			out := NewVector(KindFloat64, b.Len)
			arithVV(op, asFloat64s(av, b.Len), asFloat64s(bv, b.Len), out.Float64s)
			out.Nulls = UnionNulls(b.Len, av.Nulls, bv.Nulls)
			return out
		}}
	}
}

// divNode: division always yields float64 and a zero divisor yields
// NULL (not ±Inf), exactly like the row path's AsFloat64-based eval.
// NaN divisors are NOT zero, so those lanes divide through to NaN.
func divNode(l, r node) node {
	if l.constNull() || r.constNull() {
		return allNullNode(sql.TypeFloat64)
	}
	if r.isConst {
		c := constFloat(r.constVal)
		if c == 0 {
			return allNullNode(sql.TypeFloat64)
		}
		return node{typ: sql.TypeFloat64, run: func(b *Batch) *Vector {
			av := l.vector(b)
			out := NewVector(KindFloat64, b.Len)
			a := asFloat64s(av, b.Len)
			for i := range out.Float64s {
				out.Float64s[i] = a[i] / c
			}
			out.Nulls = av.Nulls
			return out
		}}
	}
	return node{typ: sql.TypeFloat64, run: func(b *Batch) *Vector {
		av, bv := l.vector(b), r.vector(b)
		out := NewVector(KindFloat64, b.Len)
		a, d := asFloat64s(av, b.Len), asFloat64s(bv, b.Len)
		for i := range out.Float64s {
			out.Float64s[i] = a[i] / d[i]
		}
		nulls := UnionNulls(b.Len, av.Nulls, bv.Nulls)
		for i, x := range d {
			if x == 0 {
				if nulls == nil {
					nulls = NewBitmap(b.Len)
				}
				nulls.Set(i)
			}
		}
		out.Nulls = nulls
		return out
	}}
}

// intModNode guards every lane's divisor: b == 0 → NULL (never a
// panic), including dead and NULL lanes whose slots hold zero garbage.
func intModNode(l, r node) node {
	if r.isConst {
		c := r.constVal.(int64)
		if c == 0 {
			return allNullNode(sql.TypeInt64)
		}
		return node{typ: sql.TypeInt64, run: func(b *Batch) *Vector {
			av := l.vector(b)
			out := NewVector(KindInt64, b.Len)
			for i, x := range av.Int64s[:b.Len] {
				out.Int64s[i] = x % c
			}
			out.Nulls = av.Nulls
			return out
		}}
	}
	return node{typ: sql.TypeInt64, run: func(b *Batch) *Vector {
		av, bv := l.vector(b), r.vector(b)
		out := NewVector(KindInt64, b.Len)
		nulls := UnionNulls(b.Len, av.Nulls, bv.Nulls)
		for i := 0; i < b.Len; i++ {
			d := bv.Int64s[i]
			if d == 0 {
				if nulls == nil {
					nulls = NewBitmap(b.Len)
				}
				nulls.Set(i)
				continue
			}
			out.Int64s[i] = av.Int64s[i] % d
		}
		out.Nulls = nulls
		return out
	}}
}

// floatModNode reproduces the row path's float64(int64(a) % int64(b)):
// a zero divisor is NULL, and a fractional divisor in (-1, 1) panics on
// integer division by zero exactly as the row path does. Because that
// panic is observable it must only fire for LIVE lanes, so this is the
// one kernel that walks the selection vector instead of running dense.
func floatModNode(l, r node) node {
	mod := func(out *Vector, a, d []float64, nulls *Bitmap, n, i int) {
		// Like the row path, the truncated divisor is the guard: 0 < d < 1
		// truncates to 0 and must yield NULL, not a divide panic.
		d64 := int64(d[i])
		if d64 == 0 {
			if *nulls == nil {
				*nulls = NewBitmap(n)
			}
			nulls.Set(i)
			return
		}
		out.Float64s[i] = float64(int64(a[i]) % d64)
	}
	return node{typ: sql.TypeFloat64, run: func(b *Batch) *Vector {
		av, bv := l.vector(b), r.vector(b)
		out := NewVector(KindFloat64, b.Len)
		a, d := asFloat64s(av, b.Len), asFloat64s(bv, b.Len)
		nulls := UnionNulls(b.Len, av.Nulls, bv.Nulls)
		if b.Sel != nil {
			for _, i := range b.Sel {
				if !nulls.Get(int(i)) {
					mod(out, a, d, &nulls, b.Len, int(i))
				}
			}
		} else {
			for i := 0; i < b.Len; i++ {
				if !nulls.Get(i) {
					mod(out, a, d, &nulls, b.Len, i)
				}
			}
		}
		out.Nulls = nulls
		return out
	}}
}

// concatNode implements string + string; concatenation at NULL lanes
// runs on empty-string garbage and is masked by the bitmap.
func concatNode(l, r node) node {
	if l.constNull() || r.constNull() {
		return allNullNode(sql.TypeString)
	}
	switch {
	case r.isConst:
		c := r.constVal.(string)
		return node{typ: sql.TypeString, run: func(b *Batch) *Vector {
			av := l.vector(b)
			out := NewVector(KindString, b.Len)
			for i, s := range av.Strings[:b.Len] {
				out.Strings[i] = s + c
			}
			out.Nulls = av.Nulls
			return out
		}}
	case l.isConst:
		c := l.constVal.(string)
		return node{typ: sql.TypeString, run: func(b *Batch) *Vector {
			bv := r.vector(b)
			out := NewVector(KindString, b.Len)
			for i, s := range bv.Strings[:b.Len] {
				out.Strings[i] = c + s
			}
			out.Nulls = bv.Nulls
			return out
		}}
	default:
		return node{typ: sql.TypeString, run: func(b *Batch) *Vector {
			av, bv := l.vector(b), r.vector(b)
			out := NewVector(KindString, b.Len)
			for i := 0; i < b.Len; i++ {
				out.Strings[i] = av.Strings[i] + bv.Strings[i]
			}
			out.Nulls = UnionNulls(b.Len, av.Nulls, bv.Nulls)
			return out
		}}
	}
}

func compileUnary(op sql.UnOp, c node) (node, bool) {
	switch op {
	case sql.OpNot:
		if c.constNull() {
			return allNullNode(sql.TypeBool), true
		}
		if KindOf(c.typ) != KindBool {
			// Row path returns nil for non-bool values; for typed columns
			// that means every lane, but Bind only produces NOT over bool
			// or null — anything else goes to the row path.
			return node{}, false
		}
		return node{typ: sql.TypeBool, run: func(b *Batch) *Vector {
			return notKernel(c.vector(b), b.Len)
		}}, true
	case sql.OpNeg:
		if c.constNull() {
			return allNullNode(c.typ), true
		}
		switch KindOf(c.typ) {
		case KindInt64:
			return node{typ: c.typ, run: func(b *Batch) *Vector {
				av := c.vector(b)
				out := NewVector(KindInt64, b.Len)
				for i, x := range av.Int64s[:b.Len] {
					out.Int64s[i] = -x
				}
				out.Nulls = av.Nulls
				return out
			}}, true
		case KindFloat64:
			return node{typ: c.typ, run: func(b *Batch) *Vector {
				av := c.vector(b)
				out := NewVector(KindFloat64, b.Len)
				for i, x := range av.Float64s[:b.Len] {
					out.Float64s[i] = -x
				}
				out.Nulls = av.Nulls
				return out
			}}, true
		default:
			return node{}, false
		}
	case sql.OpIsNull:
		return node{typ: sql.TypeBool, run: func(b *Batch) *Vector {
			return isNullKernel(c.vector(b), b.Len, false)
		}}, true
	case sql.OpIsNotNull:
		return node{typ: sql.TypeBool, run: func(b *Batch) *Vector {
			return isNullKernel(c.vector(b), b.Len, true)
		}}, true
	}
	return node{}, false
}
