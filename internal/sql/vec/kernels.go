package vec

import "structream/internal/sql"

// Kernels evaluate densely over [0, Len) regardless of the batch's
// selection vector; null bits mask whatever a dead or NULL lane
// computed. The one exception is the float-mod kernel, which must stay
// selection-aware because the row path panics on fractional divisors in
// (-1, 1) \ {0} and a dead lane must not reproduce that panic for a row
// the row path would never have evaluated.

// ordered covers the element types whose < and > match sql.Compare:
// cmpOrdered for int64/float64 (including its NaN behaviour, where
// neither < nor > holds so values compare "equal") and strings.Compare
// for string. Every comparison kernel is therefore expressed in terms
// of < and > only.
type ordered interface{ ~int64 | ~float64 | ~string }

// cmpVV compares two slabs lane-wise into out. The Eq/Ne/Le/Ge forms
// are derived from < and > so NaN lanes behave exactly like
// sql.cmpOrdered (NaN == anything under this ordering).
func cmpVV[T ordered](op sql.BinOp, a, b []T, out []bool) {
	switch op {
	case sql.OpEq:
		for i := range out {
			out[i] = !(a[i] < b[i]) && !(a[i] > b[i])
		}
	case sql.OpNe:
		for i := range out {
			out[i] = a[i] < b[i] || a[i] > b[i]
		}
	case sql.OpLt:
		for i := range out {
			out[i] = a[i] < b[i]
		}
	case sql.OpLe:
		for i := range out {
			out[i] = !(a[i] > b[i])
		}
	case sql.OpGt:
		for i := range out {
			out[i] = a[i] > b[i]
		}
	case sql.OpGe:
		for i := range out {
			out[i] = !(a[i] < b[i])
		}
	}
}

// cmpVC compares a slab against a constant right operand.
func cmpVC[T ordered](op sql.BinOp, a []T, c T, out []bool) {
	switch op {
	case sql.OpEq:
		for i := range out {
			out[i] = !(a[i] < c) && !(a[i] > c)
		}
	case sql.OpNe:
		for i := range out {
			out[i] = a[i] < c || a[i] > c
		}
	case sql.OpLt:
		for i := range out {
			out[i] = a[i] < c
		}
	case sql.OpLe:
		for i := range out {
			out[i] = !(a[i] > c)
		}
	case sql.OpGt:
		for i := range out {
			out[i] = a[i] > c
		}
	case sql.OpGe:
		for i := range out {
			out[i] = !(a[i] < c)
		}
	}
}

// flipCmp mirrors an operator so a constant LEFT operand can reuse the
// vector-constant kernel: c < a[i] ⇔ a[i] > c, etc.
func flipCmp(op sql.BinOp) sql.BinOp {
	switch op {
	case sql.OpLt:
		return sql.OpGt
	case sql.OpLe:
		return sql.OpGe
	case sql.OpGt:
		return sql.OpLt
	case sql.OpGe:
		return sql.OpLe
	}
	return op // Eq/Ne are symmetric
}

// arithVV applies +, -, or * lane-wise. Works for int64 (wrapping, like
// the row path) and float64.
func arithVV[T int64 | float64](op sql.BinOp, a, b, out []T) {
	switch op {
	case sql.OpAdd:
		for i := range out {
			out[i] = a[i] + b[i]
		}
	case sql.OpSub:
		for i := range out {
			out[i] = a[i] - b[i]
		}
	case sql.OpMul:
		for i := range out {
			out[i] = a[i] * b[i]
		}
	}
}

// arithVC applies +, -, or * against a constant right operand.
func arithVC[T int64 | float64](op sql.BinOp, a []T, c T, out []T) {
	switch op {
	case sql.OpAdd:
		for i := range out {
			out[i] = a[i] + c
		}
	case sql.OpSub:
		for i := range out {
			out[i] = a[i] - c
		}
	case sql.OpMul:
		for i := range out {
			out[i] = a[i] * c
		}
	}
}

// arithCV applies +, -, or * against a constant left operand (order
// matters for subtraction).
func arithCV[T int64 | float64](op sql.BinOp, c T, b, out []T) {
	switch op {
	case sql.OpAdd:
		for i := range out {
			out[i] = c + b[i]
		}
	case sql.OpSub:
		for i := range out {
			out[i] = c - b[i]
		}
	case sql.OpMul:
		for i := range out {
			out[i] = c * b[i]
		}
	}
}

// logical implements SQL three-valued AND/OR over bool vectors,
// mirroring bindLogical: a known FALSE (AND) / TRUE (OR) dominates a
// NULL on the other side. Value slots at NULL lanes are never consulted
// (the null bit short-circuits them), so garbage there is harmless.
func logical(l, r *Vector, n int, isAnd bool) *Vector {
	out := NewVector(KindBool, n)
	ln, rn := l.Nulls, r.Nulls
	lb, rb := l.Bools, r.Bools
	var nulls Bitmap
	for i := 0; i < n; i++ {
		lok := !ln.Get(i)
		rok := !rn.Get(i)
		if isAnd {
			if lok && !lb[i] || rok && !rb[i] {
				continue // definite false
			}
			if lok && rok {
				out.Bools[i] = true
				continue
			}
		} else {
			if lok && lb[i] || rok && rb[i] {
				out.Bools[i] = true
				continue
			}
			if lok && rok {
				continue // definite false
			}
		}
		if nulls == nil {
			nulls = out.EnsureNulls(n)
		}
		nulls.Set(i)
	}
	return out
}

// notKernel negates a bool vector; NULL stays NULL (the result bitmap
// aliases the operand's, which is never mutated after creation).
func notKernel(v *Vector, n int) *Vector {
	out := NewVector(KindBool, n)
	for i := 0; i < n; i++ {
		out.Bools[i] = !v.Bools[i]
	}
	out.Nulls = v.Nulls
	return out
}

// isNullKernel produces (child IS [NOT] NULL); the result is never NULL.
func isNullKernel(v *Vector, n int, negate bool) *Vector {
	out := NewVector(KindBool, n)
	if v.Kind == KindAny {
		for i := 0; i < n; i++ {
			out.Bools[i] = (v.Anys[i] == nil) != negate
		}
		return out
	}
	if v.Nulls == nil {
		if negate {
			for i := range out.Bools {
				out.Bools[i] = true
			}
		}
		return out
	}
	for i := 0; i < n; i++ {
		out.Bools[i] = v.Nulls.Get(i) != negate
	}
	return out
}

// boolsToInt64 widens a bool slab to int64 (false=0, true=1) so bool
// comparisons reuse the int kernel; the mapping matches sql.Compare's
// false < true ordering.
func boolsToInt64(src []bool, n int) []int64 {
	out := make([]int64, n)
	for i := 0; i < n; i++ {
		if src[i] {
			out[i] = 1
		}
	}
	return out
}

// asFloat64s widens an int64 vector's slab to float64 (returns the
// existing slab for float vectors), mirroring sql.AsFloat64 coercion in
// the row path's mixed-type arithmetic and comparisons.
func asFloat64s(v *Vector, n int) []float64 {
	if v.Kind == KindFloat64 {
		return v.Float64s
	}
	out := make([]float64, n)
	for i, x := range v.Int64s[:n] {
		out[i] = float64(x)
	}
	return out
}

// FilterSel returns the live positions where cond is TRUE (not false,
// not NULL), respecting the batch's existing selection. The result is
// always non-nil: an empty selection means "no rows", while a nil
// Batch.Sel means "all rows".
func FilterSel(b *Batch, cond *Vector) []int32 {
	out := make([]int32, 0, b.NumLive())
	cb := cond.Bools
	if b.Sel != nil {
		if cond.Nulls == nil {
			for _, i := range b.Sel {
				if cb[i] {
					out = append(out, i)
				}
			}
		} else {
			for _, i := range b.Sel {
				if cb[i] && !cond.Nulls.Get(int(i)) {
					out = append(out, i)
				}
			}
		}
		return out
	}
	if cond.Nulls == nil {
		for i := 0; i < b.Len; i++ {
			if cb[i] {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for i := 0; i < b.Len; i++ {
		if cb[i] && !cond.Nulls.Get(i) {
			out = append(out, int32(i))
		}
	}
	return out
}

// MaxInt64 returns the maximum non-null int64 lane over [0, n), or
// `min` when the vector has no valid int64 lanes (non-int64 vectors
// never contribute, matching the row path's type assertion). Used for
// watermark tracking over the raw, unfiltered batch.
func MaxInt64(v *Vector, n int, min int64) int64 {
	max := min
	if v.Kind != KindInt64 {
		return max
	}
	if v.Nulls == nil {
		for _, x := range v.Int64s[:n] {
			if x > max {
				max = x
			}
		}
		return max
	}
	for i := 0; i < n; i++ {
		if !v.Nulls.Get(i) {
			if x := v.Int64s[i]; x > max {
				max = x
			}
		}
	}
	return max
}

// MinInt64 is MaxInt64's twin: the minimum non-null int64 lane over
// [0, n), or `max` when no valid lane exists. Used with MaxInt64 and
// SumInt64 for the per-batch event-time min/avg/max telemetry.
func MinInt64(v *Vector, n int, max int64) int64 {
	min := max
	if v.Kind != KindInt64 {
		return min
	}
	if v.Nulls == nil {
		for _, x := range v.Int64s[:n] {
			if x < min {
				min = x
			}
		}
		return min
	}
	for i := 0; i < n; i++ {
		if !v.Nulls.Get(i) {
			if x := v.Int64s[i]; x < min {
				min = x
			}
		}
	}
	return min
}

// ExpirySel is the vectorized watermark gate. The three slabs describe
// each lane's event-time key in the stateful operators' normal form:
// valid[i] reports whether the lane has a comparable event time at all
// (non-NULL int64 timestamp or window), evt[i] is the timestamp (window
// End for window keys), and isWin[i] distinguishes the two comparison
// rules — windows expire when End <= watermark, plain timestamps when
// ts < watermark. Lanes land in out when their expiry verdict matches
// `expired`, so one pass computes either the survivor selection or the
// late-drop selection. The returned slice is `out` re-sliced; it is
// always non-nil, matching FilterSel's "empty ≠ all" convention.
func ExpirySel(evt []int64, isWin, valid []bool, wm int64, expired bool, out []int32) []int32 {
	out = out[:0]
	for i := range evt {
		exp := valid[i] && (evt[i] < wm || (isWin[i] && evt[i] == wm))
		if exp == expired {
			out = append(out, int32(i))
		}
	}
	return out
}

// SumInt64 returns the sum (as float64 — µs timestamps summed over
// millions of rows overflow int64) and count of the non-null int64 lanes
// over [0, n).
func SumInt64(v *Vector, n int) (sum float64, count int64) {
	if v.Kind != KindInt64 {
		return 0, 0
	}
	if v.Nulls == nil {
		for _, x := range v.Int64s[:n] {
			sum += float64(x)
		}
		return sum, int64(n)
	}
	for i := 0; i < n; i++ {
		if !v.Nulls.Get(i) {
			sum += float64(v.Int64s[i])
			count++
		}
	}
	return sum, count
}
