package vec

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"structream/internal/sql"
)

// testSchema covers every vectorized kind plus a timestamp (int64-backed).
func testSchema() sql.Schema {
	return sql.Schema{Fields: []sql.Field{
		{Name: "i", Type: sql.TypeInt64},
		{Name: "j", Type: sql.TypeInt64},
		{Name: "f", Type: sql.TypeFloat64},
		{Name: "g", Type: sql.TypeFloat64},
		{Name: "s", Type: sql.TypeString},
		{Name: "b", Type: sql.TypeBool},
		{Name: "ts", Type: sql.TypeTimestamp},
	}}
}

// randRows draws rows with adversarial values: nulls, zeros (division),
// NaN/Inf, extremes, and empty strings.
func randRows(rng *rand.Rand, n int) []sql.Row {
	ints := []int64{0, 1, -1, 7, -128, math.MaxInt64, math.MinInt64}
	floats := []float64{0, 1.5, -2.25, math.NaN(), math.Inf(1), math.Inf(-1), math.MaxFloat64}
	strs := []string{"", "a", "abc", "zz", "Abc"}
	rows := make([]sql.Row, n)
	for r := range rows {
		row := make(sql.Row, 7)
		for c := 0; c < 7; c++ {
			if rng.Intn(5) == 0 {
				continue // NULL
			}
			switch c {
			case 0, 1, 6:
				row[c] = ints[rng.Intn(len(ints))]
			case 2, 3:
				row[c] = floats[rng.Intn(len(floats))]
			case 4:
				row[c] = strs[rng.Intn(len(strs))]
			case 5:
				row[c] = rng.Intn(2) == 0
			}
		}
		rows[r] = row
	}
	return rows
}

// randExpr builds a random expression tree whose leaves are columns and
// literals; produced shapes include comparisons, arithmetic (with /, %
// by zero), logic, and null predicates — everything the compiler claims
// to vectorize.
func randExpr(rng *rand.Rand, depth int) sql.Expr {
	if depth <= 0 {
		switch rng.Intn(6) {
		case 0:
			return sql.Col("i")
		case 1:
			return sql.Col("j")
		case 2:
			return sql.Col("f")
		case 3:
			return sql.Lit(int64(rng.Intn(7) - 3))
		case 4:
			return sql.Lit(float64(rng.Intn(9))/2 - 2)
		default:
			return sql.Col("g")
		}
	}
	switch rng.Intn(10) {
	case 0:
		return sql.NewBinary(sql.BinOp(rng.Intn(6)), randExpr(rng, depth-1), randExpr(rng, depth-1)) // comparison
	case 1:
		return sql.Add(randExpr(rng, depth-1), randExpr(rng, depth-1))
	case 2:
		return sql.Sub(randExpr(rng, depth-1), randExpr(rng, depth-1))
	case 3:
		return sql.Mul(randExpr(rng, depth-1), randExpr(rng, depth-1))
	case 4:
		return sql.Div(randExpr(rng, depth-1), randExpr(rng, depth-1))
	case 5:
		return sql.NewBinary(sql.OpMod, randExpr(rng, depth-1), randExpr(rng, depth-1))
	case 6:
		return sql.And(boolExpr(rng, depth-1), boolExpr(rng, depth-1))
	case 7:
		return sql.Or(boolExpr(rng, depth-1), boolExpr(rng, depth-1))
	case 8:
		return sql.IsNull(randExpr(rng, depth-1))
	default:
		return sql.Neg(randExpr(rng, depth-1))
	}
}

func boolExpr(rng *rand.Rand, depth int) sql.Expr {
	if depth <= 0 || rng.Intn(3) == 0 {
		return sql.Gt(sql.Col("i"), sql.Lit(int64(0)))
	}
	return sql.NewBinary(sql.BinOp(rng.Intn(6)), randExpr(rng, depth-1), randExpr(rng, depth-1))
}

// normalize maps boxed values to comparable forms: NaN compares equal to
// itself so reflect.DeepEqual can be used on rows containing NaN.
func normalize(v sql.Value) sql.Value {
	if f, ok := v.(float64); ok && math.IsNaN(f) {
		return "NaN"
	}
	return v
}

// TestProgramMatchesRowEval is the core kernel differential: every
// compiled program must produce, cell for cell, the value the bound row
// expression produces — including NULL propagation, NaN comparisons,
// division and modulo by zero, and integer overflow wraparound.
func TestProgramMatchesRowEval(t *testing.T) {
	schema := testSchema()
	rng := rand.New(rand.NewSource(7))
	rows := randRows(rng, 97)
	batch, ok := FromRows(schema, rows)
	if !ok {
		t.Fatal("FromRows failed on schema-conforming rows")
	}
	compiled := 0
	for trial := 0; trial < 500; trial++ {
		e := randExpr(rng, 3)
		prog, ok := Compile(e, schema)
		if !ok {
			continue
		}
		compiled++
		bound, err := e.Bind(schema)
		if err != nil {
			t.Fatalf("%s: bind: %v", e, err)
		}
		v := prog.Run(batch)
		for i, row := range rows {
			want := normalize(bound.Eval(row))
			got := normalize(v.Get(i))
			// The row path leaves int64 timestamps as int64; kernels
			// agree, so plain equality suffices.
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%s: row %d (%v): row path %v (%T), kernel %v (%T)",
					e, i, row, want, want, got, got)
			}
		}
	}
	if compiled < 100 {
		t.Fatalf("only %d/500 random expressions compiled — generator or compiler too narrow", compiled)
	}
}

// TestCompileRejectsRowOnlyExprs pins the fallback contract: expression
// forms outside the kernel set must refuse to compile (the pipeline
// compiler then seals the vector plan and the row path takes over).
func TestCompileRejectsRowOnlyExprs(t *testing.T) {
	schema := testSchema()
	rowOnly := []sql.Expr{
		sql.NewBinary(sql.OpLike, sql.Col("s"), sql.Lit("a%")),
		sql.NewCast(sql.Col("i"), sql.TypeString),
	}
	for _, e := range rowOnly {
		if _, ok := Compile(e, schema); ok {
			t.Errorf("%s: compiled, want row-path fallback", e)
		}
	}
}

func TestFromRowsRoundTrip(t *testing.T) {
	schema := testSchema()
	rng := rand.New(rand.NewSource(11))
	rows := randRows(rng, 64)
	b, ok := FromRows(schema, rows)
	if !ok {
		t.Fatal("FromRows failed")
	}
	got := b.AppendRows(nil)
	if len(got) != len(rows) {
		t.Fatalf("round trip length %d, want %d", len(got), len(rows))
	}
	for i := range rows {
		for c := range rows[i] {
			if !reflect.DeepEqual(normalize(rows[i][c]), normalize(got[i][c])) {
				t.Fatalf("row %d col %d: %v != %v", i, c, rows[i][c], got[i][c])
			}
		}
	}
}

func TestFromRowsTypeDrift(t *testing.T) {
	schema := testSchema()
	rows := randRows(rand.New(rand.NewSource(3)), 8)
	rows[5] = rows[5].Clone()
	rows[5][0] = "not an int"
	if _, ok := FromRows(schema, rows); ok {
		t.Fatal("FromRows accepted a string in an int64 column")
	}
	// int into a float column is also drift — the row path would have
	// surfaced the dynamic int64, not a converted float.
	rows2 := randRows(rand.New(rand.NewSource(4)), 8)
	rows2[0] = rows2[0].Clone()
	rows2[0][2] = int64(3)
	if _, ok := FromRows(schema, rows2); ok {
		t.Fatal("FromRows accepted an int64 in a float64 column")
	}
}

// TestAppendRowsSelection checks the selection vector drives
// materialization: only live positions appear, in selection order.
func TestAppendRowsSelection(t *testing.T) {
	schema := sql.Schema{Fields: []sql.Field{{Name: "i", Type: sql.TypeInt64}}}
	rows := []sql.Row{{int64(10)}, {int64(11)}, {nil}, {int64(13)}}
	b, ok := FromRows(schema, rows)
	if !ok {
		t.Fatal("FromRows failed")
	}
	b.Sel = []int32{3, 0}
	got := b.AppendRows(nil)
	want := []sql.Row{{int64(13)}, {int64(10)}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("AppendRows with sel = %v, want %v", got, want)
	}
	if b.NumLive() != 2 {
		t.Fatalf("NumLive = %d, want 2", b.NumLive())
	}
}

func TestFilterSel(t *testing.T) {
	schema := sql.Schema{Fields: []sql.Field{
		{Name: "i", Type: sql.TypeInt64},
		{Name: "b", Type: sql.TypeBool},
	}}
	rows := []sql.Row{
		{int64(0), true}, {int64(1), false}, {int64(2), nil}, {int64(3), true},
	}
	b, ok := FromRows(schema, rows)
	if !ok {
		t.Fatal("FromRows failed")
	}
	prog, ok := Compile(sql.Col("b"), b.Schema)
	if !ok {
		t.Fatal("column pick did not compile")
	}
	sel := FilterSel(b, prog.Run(b))
	if want := []int32{0, 3}; !reflect.DeepEqual(sel, want) {
		t.Fatalf("FilterSel = %v, want %v (false and NULL both drop)", sel, want)
	}
	// Composing with an existing selection narrows it.
	b.Sel = []int32{3, 2, 1, 0}
	sel = FilterSel(b, prog.Run(b))
	if want := []int32{3, 0}; !reflect.DeepEqual(sel, want) {
		t.Fatalf("FilterSel over sel = %v, want %v", sel, want)
	}
}

func TestMaxInt64SkipsNulls(t *testing.T) {
	v := NewVector(KindInt64, 4)
	copy(v.Int64s, []int64{5, 99, 7, -3})
	v.SetNull(1, 4)
	if got := MaxInt64(v, 4, -1); got != 7 {
		t.Fatalf("MaxInt64 = %d, want 7 (null 99 skipped)", got)
	}
	all := NewVector(KindInt64, 2)
	all.SetNull(0, 2)
	all.SetNull(1, 2)
	if got := MaxInt64(all, 2, -1); got != -1 {
		t.Fatalf("MaxInt64 over all-null = %d, want sentinel -1", got)
	}
}

func TestBitmapUnion(t *testing.T) {
	a := NewBitmap(130)
	b := NewBitmap(130)
	a.Set(0)
	b.Set(129)
	u := UnionNulls(130, a, b)
	if !u.Get(0) || !u.Get(129) || u.Get(64) {
		t.Fatal("UnionNulls lost or invented bits")
	}
	if UnionNulls(130, nil, nil) != nil {
		t.Fatal("UnionNulls of two nil bitmaps should stay nil")
	}
}

func TestBroadcastConst(t *testing.T) {
	v := Broadcast(int64(42), KindInt64, 3)
	for i := 0; i < 3; i++ {
		if v.Get(i) != int64(42) {
			t.Fatalf("Broadcast[%d] = %v", i, v.Get(i))
		}
	}
	nv := Broadcast(nil, KindFloat64, 2)
	if nv.Get(0) != nil || nv.Get(1) != nil {
		t.Fatal("Broadcast(nil) must yield NULLs")
	}
}
