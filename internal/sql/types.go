// Package sql implements the relational data model underlying structream:
// dynamically typed rows, schemas, SQL values with NULL semantics, scalar
// expressions, and aggregate functions. It is the Go analogue of the Spark
// SQL layer that the paper's Structured Streaming engine builds on.
package sql

import "fmt"

// Type identifies the SQL data type of a column or expression.
type Type int

// The supported SQL data types. TypeAny is used by a handful of functions
// (e.g. coalesce) whose result type depends on their arguments; the analyzer
// resolves it away before execution.
const (
	TypeNull Type = iota
	TypeBool
	TypeInt64
	TypeFloat64
	TypeString
	TypeTimestamp // microseconds since the Unix epoch, stored as int64
	TypeInterval  // microseconds of duration, stored as int64
	TypeWindow    // an event-time window: [Start, End) in microseconds
	TypeBinary    // opaque bytes, used by stateful-operator state columns
	TypeAny
)

// String returns the lower-case SQL-style name of the type.
func (t Type) String() string {
	switch t {
	case TypeNull:
		return "null"
	case TypeBool:
		return "boolean"
	case TypeInt64:
		return "bigint"
	case TypeFloat64:
		return "double"
	case TypeString:
		return "string"
	case TypeTimestamp:
		return "timestamp"
	case TypeInterval:
		return "interval"
	case TypeWindow:
		return "window"
	case TypeBinary:
		return "binary"
	case TypeAny:
		return "any"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}

// TypeByName resolves a SQL type name (as accepted by CAST) to a Type.
func TypeByName(name string) (Type, bool) {
	switch name {
	case "boolean", "bool":
		return TypeBool, true
	case "bigint", "int", "integer", "long", "smallint", "tinyint":
		return TypeInt64, true
	case "double", "float", "real", "decimal":
		return TypeFloat64, true
	case "string", "varchar", "text", "char":
		return TypeString, true
	case "timestamp":
		return TypeTimestamp, true
	case "interval":
		return TypeInterval, true
	case "binary":
		return TypeBinary, true
	default:
		return TypeNull, false
	}
}

// Numeric reports whether t is an arithmetic type.
func (t Type) Numeric() bool { return t == TypeInt64 || t == TypeFloat64 }

// Orderable reports whether values of t can be compared with < and >.
func (t Type) Orderable() bool {
	switch t {
	case TypeBool, TypeInt64, TypeFloat64, TypeString, TypeTimestamp, TypeInterval, TypeWindow:
		return true
	}
	return false
}

// CommonType returns the widest type two operands promote to for comparison
// or arithmetic, following the usual SQL numeric-promotion rules. It returns
// false when the types are incompatible.
func CommonType(a, b Type) (Type, bool) {
	if a == b {
		return a, true
	}
	if a == TypeNull {
		return b, true
	}
	if b == TypeNull {
		return a, true
	}
	if a == TypeAny {
		return b, true
	}
	if b == TypeAny {
		return a, true
	}
	if a.Numeric() && b.Numeric() {
		return TypeFloat64, true
	}
	// Timestamp arithmetic with intervals keeps the timestamp type.
	if (a == TypeTimestamp && b == TypeInterval) || (a == TypeInterval && b == TypeTimestamp) {
		return TypeTimestamp, true
	}
	// Timestamps and intervals share int64 representation; comparisons with
	// integer literals promote to the time type.
	if a == TypeTimestamp && b == TypeInt64 || a == TypeInt64 && b == TypeTimestamp {
		return TypeTimestamp, true
	}
	if a == TypeInterval && b == TypeInt64 || a == TypeInt64 && b == TypeInterval {
		return TypeInterval, true
	}
	return TypeNull, false
}
