package sql

import (
	"fmt"
	"strings"
)

// Field describes one column of a schema.
type Field struct {
	Name string
	Type Type
}

// Schema is an ordered list of named, typed columns. Schemas are immutable
// by convention: operations return new schemas.
type Schema struct {
	Fields []Field
}

// NewSchema builds a schema from alternating name/type pairs.
func NewSchema(fields ...Field) Schema { return Schema{Fields: fields} }

// Len returns the number of columns.
func (s Schema) Len() int { return len(s.Fields) }

// IndexOf returns the ordinal of the named column (case-insensitive), or -1.
// An ambiguous name (two columns with the same name, as can occur after a
// join) returns -2 so callers can report a useful error.
func (s Schema) IndexOf(name string) int {
	found := -1
	for i, f := range s.Fields {
		if strings.EqualFold(f.Name, name) {
			if found >= 0 {
				return -2
			}
			found = i
		}
	}
	return found
}

// Resolve looks up a column name, possibly qualified as "table.column".
// Qualified lookups match a field named "table.column" first, then the bare
// column name.
func (s Schema) Resolve(name string) (int, error) {
	idx := s.IndexOf(name)
	if idx == -2 {
		return 0, fmt.Errorf("sql: ambiguous column reference %q", name)
	}
	if idx >= 0 {
		return idx, nil
	}
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		return s.Resolve(name[i+1:])
	}
	// A bare name also matches a single qualified field "alias.name".
	found := -1
	for i, f := range s.Fields {
		if j := strings.LastIndexByte(f.Name, '.'); j >= 0 && strings.EqualFold(f.Name[j+1:], name) {
			if found >= 0 {
				return 0, fmt.Errorf("sql: ambiguous column reference %q", name)
			}
			found = i
		}
	}
	if found >= 0 {
		return found, nil
	}
	return 0, fmt.Errorf("sql: column %q not found in schema %s", name, s)
}

// Field returns the field at ordinal i.
func (s Schema) Field(i int) Field { return s.Fields[i] }

// Names returns the column names in order.
func (s Schema) Names() []string {
	names := make([]string, len(s.Fields))
	for i, f := range s.Fields {
		names[i] = f.Name
	}
	return names
}

// Concat returns the concatenation of two schemas (used by joins).
func (s Schema) Concat(other Schema) Schema {
	fields := make([]Field, 0, len(s.Fields)+len(other.Fields))
	fields = append(fields, s.Fields...)
	fields = append(fields, other.Fields...)
	return Schema{Fields: fields}
}

// Qualify returns a copy of the schema with every column prefixed by
// "alias." so joins can disambiguate both sides.
func (s Schema) Qualify(alias string) Schema {
	fields := make([]Field, len(s.Fields))
	for i, f := range s.Fields {
		name := f.Name
		if j := strings.LastIndexByte(name, '.'); j >= 0 {
			name = name[j+1:]
		}
		fields[i] = Field{Name: alias + "." + name, Type: f.Type}
	}
	return Schema{Fields: fields}
}

// Equal reports whether two schemas have identical names and types.
func (s Schema) Equal(other Schema) bool {
	if len(s.Fields) != len(other.Fields) {
		return false
	}
	for i := range s.Fields {
		if s.Fields[i] != other.Fields[i] {
			return false
		}
	}
	return true
}

// String renders the schema as "name: type, ...".
func (s Schema) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, f := range s.Fields {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s: %s", f.Name, f.Type)
	}
	b.WriteByte(']')
	return b.String()
}

// Row is one record: a slice of values positionally matching a schema.
type Row []Value

// Clone returns a copy of the row that shares no backing storage.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// String renders the row for debugging and console sinks.
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = AsString(v)
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// Project returns a new row containing the values at the given ordinals.
func (r Row) Project(ordinals []int) Row {
	out := make(Row, len(ordinals))
	for i, ord := range ordinals {
		out[i] = r[ord]
	}
	return out
}
