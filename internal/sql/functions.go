package sql

import (
	"fmt"
	"hash/fnv"
	"math"
	"strings"
	"time"
)

// FuncCall is a call to a named scalar function. Aggregate function calls
// are represented by AggExpr; the parser decides which one to build based on
// the function name.
type FuncCall struct {
	Name string
	Args []Expr
}

// NewFunc builds a scalar function call.
func NewFunc(name string, args ...Expr) *FuncCall {
	return &FuncCall{Name: strings.ToLower(name), Args: args}
}

func (f *FuncCall) String() string {
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", f.Name, strings.Join(parts, ", "))
}
func (f *FuncCall) Children() []Expr { return f.Args }
func (f *FuncCall) WithChildren(children []Expr) Expr {
	return &FuncCall{Name: f.Name, Args: children}
}

// scalarImpl describes one registered scalar function.
type scalarImpl struct {
	minArgs, maxArgs int // maxArgs < 0 means variadic
	// resultType computes the output type from resolved argument types.
	resultType func(args []Type) (Type, error)
	// eval computes the value from evaluated argument values.
	eval func(args []Value) Value
}

// IsScalarFunc reports whether name is a registered scalar function.
func IsScalarFunc(name string) bool {
	_, ok := scalarFuncs[strings.ToLower(name)]
	return ok
}

// Bind resolves the function against the registry and compiles it.
func (f *FuncCall) Bind(schema Schema) (BoundExpr, error) {
	impl, ok := scalarFuncs[f.Name]
	if !ok {
		return BoundExpr{}, fmt.Errorf("sql: unknown function %q", f.Name)
	}
	if len(f.Args) < impl.minArgs || (impl.maxArgs >= 0 && len(f.Args) > impl.maxArgs) {
		return BoundExpr{}, fmt.Errorf("sql: function %s called with %d arguments", f.Name, len(f.Args))
	}
	bound := make([]BoundExpr, len(f.Args))
	argTypes := make([]Type, len(f.Args))
	for i, a := range f.Args {
		b, err := a.Bind(schema)
		if err != nil {
			return BoundExpr{}, err
		}
		bound[i] = b
		argTypes[i] = b.Type
	}
	resType, err := impl.resultType(argTypes)
	if err != nil {
		return BoundExpr{}, fmt.Errorf("sql: %s: %v", f.Name, err)
	}
	evals := make([]func(Row) Value, len(bound))
	for i, b := range bound {
		evals[i] = b.Eval
	}
	fn := impl.eval
	eval := func(row Row) Value {
		args := make([]Value, len(evals))
		for i, e := range evals {
			args[i] = e(row)
		}
		return fn(args)
	}
	return BoundExpr{Type: resType, Eval: eval}, nil
}

// fixedType returns a resultType function that always yields t.
func fixedType(t Type) func([]Type) (Type, error) {
	return func([]Type) (Type, error) { return t, nil }
}

// sameAsArg returns a resultType function yielding the type of argument i.
func sameAsArg(i int) func([]Type) (Type, error) {
	return func(args []Type) (Type, error) { return args[i], nil }
}

func nullSafe1(f func(Value) Value) func([]Value) Value {
	return func(args []Value) Value {
		if args[0] == nil {
			return nil
		}
		return f(args[0])
	}
}

func nullSafe2(f func(a, b Value) Value) func([]Value) Value {
	return func(args []Value) Value {
		if args[0] == nil || args[1] == nil {
			return nil
		}
		return f(args[0], args[1])
	}
}

func float1(f func(float64) float64) func([]Value) Value {
	return nullSafe1(func(v Value) Value {
		x, ok := AsFloat64(v)
		if !ok {
			return nil
		}
		r := f(x)
		if math.IsNaN(r) || math.IsInf(r, 0) {
			return nil
		}
		return r
	})
}

func str1(f func(string) Value) func([]Value) Value {
	return nullSafe1(func(v Value) Value {
		s, ok := v.(string)
		if !ok {
			s = AsString(v)
		}
		return f(s)
	})
}

func str2(f func(a, b string) Value) func([]Value) Value {
	return nullSafe2(func(a, b Value) Value {
		as, aok := a.(string)
		bs, bok := b.(string)
		if !aok || !bok {
			return nil
		}
		return f(as, bs)
	})
}

// scalarFuncs is the registry of built-in scalar functions.
var scalarFuncs = map[string]scalarImpl{
	// ------------------------------------------------------ math
	"abs": {1, 1, sameAsArg(0), nullSafe1(func(v Value) Value {
		switch x := v.(type) {
		case int64:
			if x < 0 {
				return -x
			}
			return x
		case float64:
			return math.Abs(x)
		}
		return nil
	})},
	"ceil":  {1, 1, fixedType(TypeInt64), float1Int(math.Ceil)},
	"floor": {1, 1, fixedType(TypeInt64), float1Int(math.Floor)},
	"round": {1, 2, fixedType(TypeFloat64), func(args []Value) Value {
		if args[0] == nil {
			return nil
		}
		x, ok := AsFloat64(args[0])
		if !ok {
			return nil
		}
		digits := int64(0)
		if len(args) == 2 {
			if d, ok := AsInt64(args[1]); ok {
				digits = d
			}
		}
		p := math.Pow(10, float64(digits))
		return math.Round(x*p) / p
	}},
	"sqrt":  {1, 1, fixedType(TypeFloat64), float1(math.Sqrt)},
	"exp":   {1, 1, fixedType(TypeFloat64), float1(math.Exp)},
	"ln":    {1, 1, fixedType(TypeFloat64), float1(math.Log)},
	"log10": {1, 1, fixedType(TypeFloat64), float1(math.Log10)},
	"pow": {2, 2, fixedType(TypeFloat64), nullSafe2(func(a, b Value) Value {
		x, xok := AsFloat64(a)
		y, yok := AsFloat64(b)
		if !xok || !yok {
			return nil
		}
		return math.Pow(x, y)
	})},
	"greatest": {2, -1, sameAsArg(0), func(args []Value) Value {
		var best Value
		for _, v := range args {
			if v == nil {
				continue
			}
			if best == nil || Compare(v, best) > 0 {
				best = v
			}
		}
		return best
	}},
	"least": {2, -1, sameAsArg(0), func(args []Value) Value {
		var best Value
		for _, v := range args {
			if v == nil {
				continue
			}
			if best == nil || Compare(v, best) < 0 {
				best = v
			}
		}
		return best
	}},
	// ------------------------------------------------------ strings
	"length": {1, 1, fixedType(TypeInt64), str1(func(s string) Value { return int64(len(s)) })},
	"upper":  {1, 1, fixedType(TypeString), str1(func(s string) Value { return strings.ToUpper(s) })},
	"lower":  {1, 1, fixedType(TypeString), str1(func(s string) Value { return strings.ToLower(s) })},
	"trim":   {1, 1, fixedType(TypeString), str1(func(s string) Value { return strings.TrimSpace(s) })},
	"ltrim":  {1, 1, fixedType(TypeString), str1(func(s string) Value { return strings.TrimLeft(s, " \t\n\r") })},
	"rtrim":  {1, 1, fixedType(TypeString), str1(func(s string) Value { return strings.TrimRight(s, " \t\n\r") })},
	"reverse": {1, 1, fixedType(TypeString), str1(func(s string) Value {
		r := []rune(s)
		for i, j := 0, len(r)-1; i < j; i, j = i+1, j-1 {
			r[i], r[j] = r[j], r[i]
		}
		return string(r)
	})},
	"concat": {1, -1, fixedType(TypeString), func(args []Value) Value {
		var b strings.Builder
		for _, v := range args {
			if v == nil {
				return nil
			}
			b.WriteString(AsString(v))
		}
		return b.String()
	}},
	"contains":    {2, 2, fixedType(TypeBool), str2(func(a, b string) Value { return strings.Contains(a, b) })},
	"starts_with": {2, 2, fixedType(TypeBool), str2(func(a, b string) Value { return strings.HasPrefix(a, b) })},
	"ends_with":   {2, 2, fixedType(TypeBool), str2(func(a, b string) Value { return strings.HasSuffix(a, b) })},
	"instr": {2, 2, fixedType(TypeInt64), str2(func(a, b string) Value {
		return int64(strings.Index(a, b) + 1)
	})},
	"replace": {3, 3, fixedType(TypeString), func(args []Value) Value {
		if args[0] == nil || args[1] == nil || args[2] == nil {
			return nil
		}
		s, ok1 := args[0].(string)
		old, ok2 := args[1].(string)
		repl, ok3 := args[2].(string)
		if !ok1 || !ok2 || !ok3 {
			return nil
		}
		return strings.ReplaceAll(s, old, repl)
	}},
	"substring": {2, 3, fixedType(TypeString), func(args []Value) Value {
		if args[0] == nil || args[1] == nil {
			return nil
		}
		s, ok := args[0].(string)
		if !ok {
			return nil
		}
		start, ok := AsInt64(args[1])
		if !ok {
			return nil
		}
		// SQL substring is 1-based.
		if start > 0 {
			start--
		} else if start < 0 {
			start = int64(len(s)) + start
		}
		if start < 0 {
			start = 0
		}
		if start > int64(len(s)) {
			return ""
		}
		end := int64(len(s))
		if len(args) == 3 && args[2] != nil {
			if n, ok := AsInt64(args[2]); ok && start+n < end {
				end = start + n
			}
		}
		if end < start {
			end = start
		}
		return s[start:end]
	}},
	"split_part": {3, 3, fixedType(TypeString), func(args []Value) Value {
		if args[0] == nil || args[1] == nil || args[2] == nil {
			return nil
		}
		s, ok1 := args[0].(string)
		sep, ok2 := args[1].(string)
		idx, ok3 := AsInt64(args[2])
		if !ok1 || !ok2 || !ok3 || idx < 1 {
			return nil
		}
		parts := strings.Split(s, sep)
		if int(idx) > len(parts) {
			return ""
		}
		return parts[idx-1]
	}},
	"lpad": {3, 3, fixedType(TypeString), padFunc(true)},
	"rpad": {3, 3, fixedType(TypeString), padFunc(false)},
	// ------------------------------------------------------ null handling
	"coalesce": {1, -1, func(args []Type) (Type, error) {
		t := TypeNull
		var ok bool
		for _, a := range args {
			if t, ok = CommonType(t, a); !ok {
				return TypeNull, fmt.Errorf("incompatible coalesce argument types")
			}
		}
		return t, nil
	}, func(args []Value) Value {
		for _, v := range args {
			if v != nil {
				return v
			}
		}
		return nil
	}},
	"ifnull": {2, 2, sameAsArg(0), func(args []Value) Value {
		if args[0] != nil {
			return args[0]
		}
		return args[1]
	}},
	"nullif": {2, 2, sameAsArg(0), func(args []Value) Value {
		if args[0] == nil || args[1] == nil {
			return args[0]
		}
		if Compare(args[0], args[1]) == 0 {
			return nil
		}
		return args[0]
	}},
	"if": {3, 3, sameAsArg(1), func(args []Value) Value {
		if b, ok := args[0].(bool); ok && b {
			return args[1]
		}
		return args[2]
	}},
	// ------------------------------------------------------ time
	"to_timestamp": {1, 1, fixedType(TypeTimestamp), nullSafe1(func(v Value) Value {
		switch x := v.(type) {
		case int64:
			return x
		case string:
			if us, err := ParseTimestamp(x); err == nil {
				return us
			}
			return nil
		case float64:
			return int64(x * 1e6)
		}
		return nil
	})},
	"unix_micros": {1, 1, fixedType(TypeInt64), nullSafe1(func(v Value) Value {
		if us, ok := v.(int64); ok {
			return us
		}
		return nil
	})},
	"timestamp_micros": {1, 1, fixedType(TypeTimestamp), nullSafe1(func(v Value) Value {
		if us, ok := AsInt64(v); ok {
			return us
		}
		return nil
	})},
	"date_trunc": {2, 2, fixedType(TypeTimestamp), func(args []Value) Value {
		if args[0] == nil || args[1] == nil {
			return nil
		}
		unit, ok1 := args[0].(string)
		us, ok2 := args[1].(int64)
		if !ok1 || !ok2 {
			return nil
		}
		t := time.UnixMicro(us).UTC()
		switch strings.ToLower(unit) {
		case "second":
			t = t.Truncate(time.Second)
		case "minute":
			t = t.Truncate(time.Minute)
		case "hour":
			t = t.Truncate(time.Hour)
		case "day":
			t = time.Date(t.Year(), t.Month(), t.Day(), 0, 0, 0, 0, time.UTC)
		case "month":
			t = time.Date(t.Year(), t.Month(), 1, 0, 0, 0, 0, time.UTC)
		case "year":
			t = time.Date(t.Year(), 1, 1, 0, 0, 0, 0, time.UTC)
		default:
			return nil
		}
		return t.UnixMicro()
	}},
	"year":   {1, 1, fixedType(TypeInt64), timePart(func(t time.Time) int64 { return int64(t.Year()) })},
	"month":  {1, 1, fixedType(TypeInt64), timePart(func(t time.Time) int64 { return int64(t.Month()) })},
	"day":    {1, 1, fixedType(TypeInt64), timePart(func(t time.Time) int64 { return int64(t.Day()) })},
	"hour":   {1, 1, fixedType(TypeInt64), timePart(func(t time.Time) int64 { return int64(t.Hour()) })},
	"minute": {1, 1, fixedType(TypeInt64), timePart(func(t time.Time) int64 { return int64(t.Minute()) })},
	"second": {1, 1, fixedType(TypeInt64), timePart(func(t time.Time) int64 { return int64(t.Second()) })},
	// window_start/window_end project the bounds out of a window value.
	"window_start": {1, 1, fixedType(TypeTimestamp), nullSafe1(func(v Value) Value {
		if w, ok := v.(Window); ok {
			return w.Start
		}
		return nil
	})},
	"window_end": {1, 1, fixedType(TypeTimestamp), nullSafe1(func(v Value) Value {
		if w, ok := v.(Window); ok {
			return w.End
		}
		return nil
	})},
	// ------------------------------------------------------ misc
	"hash": {1, -1, fixedType(TypeInt64), func(args []Value) Value {
		h := fnv.New64a()
		for _, v := range args {
			fmt.Fprint(h, AsString(v), "\x00")
		}
		return int64(h.Sum64())
	}},
	// json_get extracts a top-level string/number/bool field from a JSON
	// object encoded as a string; used heavily by ETL examples.
	"json_get": {2, 2, fixedType(TypeString), str2(func(doc, field string) Value {
		v, ok := jsonExtract(doc, field)
		if !ok {
			return nil
		}
		return v
	})},
}

func float1Int(f func(float64) float64) func([]Value) Value {
	return nullSafe1(func(v Value) Value {
		x, ok := AsFloat64(v)
		if !ok {
			return nil
		}
		return int64(f(x))
	})
}

func timePart(f func(time.Time) int64) func([]Value) Value {
	return nullSafe1(func(v Value) Value {
		us, ok := v.(int64)
		if !ok {
			return nil
		}
		return f(time.UnixMicro(us).UTC())
	})
}

func padFunc(left bool) func([]Value) Value {
	return func(args []Value) Value {
		if args[0] == nil || args[1] == nil || args[2] == nil {
			return nil
		}
		s, ok1 := args[0].(string)
		n, ok2 := AsInt64(args[1])
		pad, ok3 := args[2].(string)
		if !ok1 || !ok2 || !ok3 || pad == "" {
			return nil
		}
		if int64(len(s)) >= n {
			return s[:n]
		}
		var b strings.Builder
		if !left {
			b.WriteString(s)
		}
		for int64(b.Len()+len(s)) < n && left || int64(b.Len()) < n && !left {
			b.WriteString(pad)
			if left && int64(b.Len()+len(s)) >= n {
				break
			}
			if !left && int64(b.Len()) >= n {
				break
			}
		}
		if left {
			prefix := b.String()
			if int64(len(prefix)+len(s)) > n {
				prefix = prefix[:n-int64(len(s))]
			}
			return prefix + s
		}
		out := b.String()
		if int64(len(out)) > n {
			out = out[:n]
		}
		return out
	}
}

// jsonExtract pulls a top-level scalar field out of a flat JSON object
// without materializing the whole document. It is a deliberately small
// extractor for ETL predicates; full JSON decoding lives in the sources.
func jsonExtract(doc, field string) (string, bool) {
	needle := `"` + field + `"`
	i := strings.Index(doc, needle)
	if i < 0 {
		return "", false
	}
	rest := doc[i+len(needle):]
	j := strings.IndexByte(rest, ':')
	if j < 0 {
		return "", false
	}
	rest = strings.TrimLeft(rest[j+1:], " \t\n")
	if rest == "" {
		return "", false
	}
	if rest[0] == '"' {
		end := 1
		for end < len(rest) {
			if rest[end] == '\\' {
				end += 2
				continue
			}
			if rest[end] == '"' {
				return rest[1:end], true
			}
			end++
		}
		return "", false
	}
	end := strings.IndexAny(rest, ",}] \t\n")
	if end < 0 {
		end = len(rest)
	}
	val := rest[:end]
	if val == "null" {
		return "", false
	}
	return val, true
}

// ---------------------------------------------------------------- window()

// WindowExpr assigns event-time windows of the given size and slide to a
// timestamp column, as in the paper's `window($"time", "1h", "5m")`. A
// tumbling window (Slide == Size) produces one window per row; a sliding
// window produces Size/Slide windows per row, which the planner implements
// by exploding the input (exactly as Spark SQL does).
type WindowExpr struct {
	Time  Expr
	Size  int64 // µs
	Slide int64 // µs; equals Size for tumbling windows
}

// NewWindow builds a window-assignment expression. A zero slide means
// tumbling (slide = size).
func NewWindow(timeCol Expr, size, slide time.Duration) *WindowExpr {
	sz := size.Microseconds()
	sl := slide.Microseconds()
	if sl == 0 {
		sl = sz
	}
	return &WindowExpr{Time: timeCol, Size: sz, Slide: sl}
}

func (w *WindowExpr) String() string {
	return fmt.Sprintf("window(%s, %dus, %dus)", w.Time, w.Size, w.Slide)
}
func (w *WindowExpr) Children() []Expr { return []Expr{w.Time} }
func (w *WindowExpr) WithChildren(children []Expr) Expr {
	return &WindowExpr{Time: children[0], Size: w.Size, Slide: w.Slide}
}

// Bind compiles the tumbling-window fast path: the single window containing
// the row's event time. Sliding windows must be planned via a WindowAssign
// operator (the analyzer enforces this); if one reaches Bind directly it
// evaluates to the newest containing window.
func (w *WindowExpr) Bind(schema Schema) (BoundExpr, error) {
	t, err := w.Time.Bind(schema)
	if err != nil {
		return BoundExpr{}, err
	}
	if t.Type != TypeTimestamp && t.Type != TypeInt64 {
		return BoundExpr{}, fmt.Errorf("sql: window() requires a timestamp column, got %s", t.Type)
	}
	te, size, slide := t.Eval, w.Size, w.Slide
	eval := func(row Row) Value {
		v, ok := te(row).(int64)
		if !ok {
			return nil
		}
		start := v - ((v%slide)+slide)%slide
		return Window{Start: start, End: start + size}
	}
	return BoundExpr{Type: TypeWindow, Eval: eval}, nil
}

// Windows returns every window containing event time ts, oldest first.
func (w *WindowExpr) Windows(ts int64) []Window {
	n := int(w.Size / w.Slide)
	if w.Size%w.Slide != 0 {
		n++
	}
	out := make([]Window, 0, n)
	lastStart := ts - ((ts%w.Slide)+w.Slide)%w.Slide
	for start := lastStart; start > ts-w.Size; start -= w.Slide {
		out = append(out, Window{Start: start, End: start + w.Size})
	}
	// Reverse to oldest-first order.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}
