package sql

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestTypeString(t *testing.T) {
	cases := map[Type]string{
		TypeNull: "null", TypeBool: "boolean", TypeInt64: "bigint",
		TypeFloat64: "double", TypeString: "string", TypeTimestamp: "timestamp",
		TypeInterval: "interval", TypeWindow: "window", TypeBinary: "binary",
	}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", typ, got, want)
		}
	}
}

func TestTypeByName(t *testing.T) {
	for name, want := range map[string]Type{
		"bigint": TypeInt64, "int": TypeInt64, "double": TypeFloat64,
		"string": TypeString, "timestamp": TypeTimestamp, "bool": TypeBool,
	} {
		got, ok := TypeByName(name)
		if !ok || got != want {
			t.Errorf("TypeByName(%q) = %v, %v; want %v", name, got, ok, want)
		}
	}
	if _, ok := TypeByName("frobnicate"); ok {
		t.Error("TypeByName accepted unknown type")
	}
}

func TestCommonType(t *testing.T) {
	cases := []struct {
		a, b, want Type
		ok         bool
	}{
		{TypeInt64, TypeInt64, TypeInt64, true},
		{TypeInt64, TypeFloat64, TypeFloat64, true},
		{TypeNull, TypeString, TypeString, true},
		{TypeTimestamp, TypeInterval, TypeTimestamp, true},
		{TypeString, TypeInt64, TypeNull, false},
		{TypeBool, TypeWindow, TypeNull, false},
	}
	for _, c := range cases {
		got, ok := CommonType(c.a, c.b)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("CommonType(%s, %s) = %s, %v; want %s, %v", c.a, c.b, got, ok, c.want, c.ok)
		}
	}
}

func TestParseInterval(t *testing.T) {
	cases := map[string]time.Duration{
		"10 seconds":       10 * time.Second,
		"1 hour":           time.Hour,
		"5 min":            5 * time.Minute,
		"30 minutes":       30 * time.Minute,
		"1 day":            24 * time.Hour,
		"2 weeks":          14 * 24 * time.Hour,
		"1h30m":            90 * time.Minute,
		"250 ms":           250 * time.Millisecond,
		"1.5 seconds":      1500 * time.Millisecond,
		"100 microseconds": 100 * time.Microsecond,
	}
	for in, want := range cases {
		got, err := ParseInterval(in)
		if err != nil {
			t.Errorf("ParseInterval(%q): %v", in, err)
			continue
		}
		if got != want.Microseconds() {
			t.Errorf("ParseInterval(%q) = %d, want %d", in, got, want.Microseconds())
		}
	}
	for _, bad := range []string{"", "ten seconds", "10 fortnights"} {
		if _, err := ParseInterval(bad); err == nil {
			t.Errorf("ParseInterval(%q) succeeded, want error", bad)
		}
	}
}

func TestParseTimestampRoundTrip(t *testing.T) {
	us := time.Date(2018, 6, 10, 12, 30, 45, 123456000, time.UTC).UnixMicro()
	s := FormatTimestamp(us)
	got, err := ParseTimestamp(s)
	if err != nil {
		t.Fatalf("ParseTimestamp(%q): %v", s, err)
	}
	if got != us {
		t.Fatalf("round trip: got %d, want %d", got, us)
	}
	if _, err := ParseTimestamp("2018-06-10"); err != nil {
		t.Errorf("date-only timestamp rejected: %v", err)
	}
	if _, err := ParseTimestamp("not a time"); err == nil {
		t.Error("bad timestamp accepted")
	}
}

func TestCast(t *testing.T) {
	cases := []struct {
		in   Value
		to   Type
		want Value
	}{
		{int64(42), TypeString, "42"},
		{"42", TypeInt64, int64(42)},
		{"3.5", TypeFloat64, 3.5},
		{3.9, TypeInt64, int64(3)},
		{int64(1), TypeBool, true},
		{"true", TypeBool, true},
		{nil, TypeInt64, nil},
		{"garbage", TypeInt64, nil}, // failed parses yield NULL, like Spark
		{1.5, TypeTimestamp, int64(1_500_000)},
	}
	for _, c := range cases {
		if got := Cast(c.in, c.to); got != c.want {
			t.Errorf("Cast(%v, %s) = %v, want %v", c.in, c.to, got, c.want)
		}
	}
}

func TestCompareOrderingProperties(t *testing.T) {
	// Antisymmetry and consistency of Compare over random int/float pairs.
	f := func(a, b int64) bool {
		return Compare(a, b) == -Compare(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a int64, b float64) bool {
		c1 := Compare(a, b)
		c2 := Compare(b, a)
		return c1 == -c2
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareNulls(t *testing.T) {
	if Compare(nil, nil) != 0 {
		t.Error("NULLs should compare equal for ordering")
	}
	if Compare(nil, int64(1)) != -1 || Compare(int64(1), nil) != 1 {
		t.Error("NULL should sort first")
	}
	if Equal(nil, nil) {
		t.Error("NULL = NULL must not be true under SQL equality")
	}
}

func TestCompareMixedNumeric(t *testing.T) {
	if Compare(int64(2), 2.0) != 0 {
		t.Error("2 should equal 2.0")
	}
	if Compare(int64(2), 2.5) >= 0 {
		t.Error("2 < 2.5")
	}
	if Compare(Window{1, 2}, Window{1, 3}) >= 0 {
		t.Error("window ordering by (start, end)")
	}
}

func TestAsString(t *testing.T) {
	cases := []struct {
		in   Value
		want string
	}{
		{nil, "NULL"},
		{int64(7), "7"},
		{true, "true"},
		{2.0, "2.0"},
		{"x", "x"},
		{[]byte{0xab}, "0xab"},
	}
	for _, c := range cases {
		if got := AsString(c.in); got != c.want {
			t.Errorf("AsString(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestNormalize(t *testing.T) {
	now := time.Now()
	if got := Normalize(now); got != now.UnixMicro() {
		t.Errorf("Normalize(time.Time) = %v", got)
	}
	if got := Normalize(5 * time.Second); got != int64(5_000_000) {
		t.Errorf("Normalize(duration) = %v", got)
	}
	if got := Normalize(int(3)); got != int64(3) {
		t.Errorf("Normalize(int) = %v", got)
	}
	if got := Normalize(float32(1.5)); got != float64(1.5) {
		t.Errorf("Normalize(float32) = %v", got)
	}
}

func TestAsFloatAndInt(t *testing.T) {
	if f, ok := AsFloat64(int64(3)); !ok || f != 3 {
		t.Error("AsFloat64(int64)")
	}
	if n, ok := AsInt64("12"); !ok || n != 12 {
		t.Error("AsInt64(string)")
	}
	if n, ok := AsInt64("3.7"); !ok || n != 3 {
		t.Error("AsInt64 truncates float strings")
	}
	if _, ok := AsInt64(Window{}); ok {
		t.Error("AsInt64(Window) should fail")
	}
	if math.IsNaN(0) { // silence unused-import lint style
		t.Fatal()
	}
}
