package sql

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// runAgg feeds values through a single buffer and returns the result.
func runAgg(t *testing.T, kind AggKind, vals ...Value) Value {
	t.Helper()
	agg := bindTestAgg(t, kind)
	buf := agg.NewBuffer()
	for _, v := range vals {
		buf.Update(v)
	}
	return buf.Result()
}

func bindTestAgg(t *testing.T, kind AggKind) BoundAgg {
	t.Helper()
	schema := NewSchema(Field{Name: "v", Type: TypeFloat64})
	var e *AggExpr
	if kind == AggCountAll {
		e = CountAll()
	} else {
		e = NewAgg(kind, Col("v"))
	}
	b, err := e.BindAgg(schema)
	if err != nil {
		t.Fatalf("BindAgg: %v", err)
	}
	return b
}

func TestAggBasics(t *testing.T) {
	if got := runAgg(t, AggCount, 1.0, 2.0, 3.0); got != int64(3) {
		t.Errorf("count = %v", got)
	}
	if got := runAgg(t, AggSum, 1.0, 2.0, 3.5); got != 6.5 {
		t.Errorf("sum = %v", got)
	}
	if got := runAgg(t, AggAvg, 2.0, 4.0); got != 3.0 {
		t.Errorf("avg = %v", got)
	}
	if got := runAgg(t, AggMin, 5.0, 2.0, 9.0); got != 2.0 {
		t.Errorf("min = %v", got)
	}
	if got := runAgg(t, AggMax, 5.0, 2.0, 9.0); got != 9.0 {
		t.Errorf("max = %v", got)
	}
	if got := runAgg(t, AggFirst, 7.0, 8.0); got != 7.0 {
		t.Errorf("first = %v", got)
	}
	if got := runAgg(t, AggLast, 7.0, 8.0); got != 8.0 {
		t.Errorf("last = %v", got)
	}
}

func TestAggEmptyAndNull(t *testing.T) {
	if got := runAgg(t, AggSum); got != nil {
		t.Errorf("sum of empty = %v, want NULL", got)
	}
	if got := runAgg(t, AggAvg); got != nil {
		t.Errorf("avg of empty = %v, want NULL", got)
	}
	if got := runAgg(t, AggMin); got != nil {
		t.Errorf("min of empty = %v, want NULL", got)
	}
	if got := runAgg(t, AggCount); got != int64(0) {
		t.Errorf("count of empty = %v", got)
	}
	// NULLs are skipped by min/avg but counted... count(v) skips NULLs? In
	// our engine count counts every Update call; the planner filters NULLs
	// for count(col) semantics at the operator level, so here NULL counts.
	if got := runAgg(t, AggMin, nil, 4.0, nil); got != 4.0 {
		t.Errorf("min with NULLs = %v", got)
	}
}

func TestIntSum(t *testing.T) {
	schema := NewSchema(Field{Name: "v", Type: TypeInt64})
	b, err := SumOf(Col("v")).BindAgg(schema)
	if err != nil {
		t.Fatal(err)
	}
	if b.ResultType != TypeInt64 {
		t.Fatalf("sum(int) type = %s", b.ResultType)
	}
	buf := b.NewBuffer()
	buf.Update(int64(3))
	buf.Update(int64(4))
	if got := buf.Result(); got != int64(7) {
		t.Errorf("int sum = %v", got)
	}
}

func TestCountDistinct(t *testing.T) {
	got := runAgg(t, AggCountDistinct, 1.0, 2.0, 1.0, nil, 2.0, 3.0)
	if got != int64(3) {
		t.Errorf("count distinct = %v", got)
	}
}

func TestStddevVariance(t *testing.T) {
	got := runAgg(t, AggVariance, 2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0)
	if math.Abs(got.(float64)-4.571428571428571) > 1e-9 {
		t.Errorf("variance = %v", got)
	}
	sd := runAgg(t, AggStddev, 2.0, 4.0)
	if math.Abs(sd.(float64)-math.Sqrt2) > 1e-9 {
		t.Errorf("stddev = %v", sd)
	}
	if got := runAgg(t, AggStddev, 1.0); got != nil {
		t.Errorf("stddev of one sample = %v, want NULL", got)
	}
}

// TestAggMergeEqualsSequential is the core property the engine relies on:
// partial aggregation plus merge must equal sequential aggregation.
func TestAggMergeEqualsSequential(t *testing.T) {
	kinds := []AggKind{AggCount, AggSum, AggAvg, AggMin, AggMax, AggStddev, AggVariance, AggCountDistinct}
	for _, kind := range kinds {
		agg := bindTestAgg(t, kind)
		f := func(a, b []float64) bool {
			// Map generated values into a bounded range: the property is
			// about merge algebra, not float overflow at ±1e308.
			bound := func(xs []float64) []float64 {
				out := make([]float64, len(xs))
				for i, x := range xs {
					out[i] = math.Mod(x, 1e6)
					if math.IsNaN(out[i]) {
						out[i] = 0
					}
				}
				return out
			}
			a, b = bound(a), bound(b)
			seq := agg.NewBuffer()
			for _, v := range append(append([]float64{}, a...), b...) {
				seq.Update(v)
			}
			p1, p2 := agg.NewBuffer(), agg.NewBuffer()
			for _, v := range a {
				p1.Update(v)
			}
			for _, v := range b {
				p2.Update(v)
			}
			p1.Merge(p2)
			x, y := seq.Result(), p1.Result()
			if x == nil || y == nil {
				return x == nil && y == nil
			}
			xf, _ := AsFloat64(x)
			yf, _ := AsFloat64(y)
			return math.Abs(xf-yf) <= 1e-6*(1+math.Abs(xf))
		}
		cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(42))}
		if err := quick.Check(f, cfg); err != nil {
			t.Errorf("kind %v: merge != sequential: %v", aggNames[kind], err)
		}
	}
}

// TestAggSerializeRoundTrip checks buffers survive the state store.
func TestAggSerializeRoundTrip(t *testing.T) {
	kinds := []AggKind{AggCount, AggSum, AggAvg, AggMin, AggMax, AggFirst, AggLast,
		AggStddev, AggVariance, AggCountDistinct, AggApproxCountDistinct}
	for _, kind := range kinds {
		agg := bindTestAgg(t, kind)
		buf := agg.NewBuffer()
		for _, v := range []Value{3.0, 1.0, 4.0, 1.0, 5.0} {
			buf.Update(v)
		}
		restored := agg.NewBuffer()
		if err := restored.Deserialize(buf.Serialize()); err != nil {
			t.Errorf("%s: deserialize: %v", aggNames[kind], err)
			continue
		}
		a, b := buf.Result(), restored.Result()
		if AsString(a) != AsString(b) {
			t.Errorf("%s: round trip %v != %v", aggNames[kind], a, b)
		}
		// The restored buffer must keep accumulating correctly.
		restored.Update(9.0)
	}
}

func TestApproxCountDistinctAccuracy(t *testing.T) {
	agg := bindTestAgg(t, AggApproxCountDistinct)
	buf := agg.NewBuffer()
	const n = 10000
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n*3; i++ {
		buf.Update(float64(rng.Intn(n)))
	}
	got := float64(buf.Result().(int64))
	if math.Abs(got-n)/n > 0.15 {
		t.Errorf("approx_count_distinct = %v, want within 15%% of %d", got, n)
	}
}

func TestAggKindByName(t *testing.T) {
	for name, want := range map[string]AggKind{
		"count": AggCount, "SUM": AggSum, "Avg": AggAvg, "mean": AggAvg,
		"stddev_samp": AggStddev,
	} {
		got, ok := AggKindByName(name)
		if !ok || got != want {
			t.Errorf("AggKindByName(%q) = %v, %v", name, got, ok)
		}
	}
	if _, ok := AggKindByName("median"); ok {
		t.Error("median should be unknown")
	}
}

func TestAggOutsideGroupByFails(t *testing.T) {
	if _, err := SumOf(Col("v")).Bind(NewSchema(Field{"v", TypeInt64})); err == nil {
		t.Error("aggregate in scalar context must fail to bind")
	}
}

func TestBindAggTypeErrors(t *testing.T) {
	s := NewSchema(Field{"s", TypeString})
	if _, err := SumOf(Col("s")).BindAgg(s); err == nil {
		t.Error("sum(string) should fail")
	}
	if _, err := AvgOf(Col("s")).BindAgg(s); err == nil {
		t.Error("avg(string) should fail")
	}
	if _, err := MinOf(Col("s")).BindAgg(s); err != nil {
		t.Errorf("min(string) is fine: %v", err)
	}
}
