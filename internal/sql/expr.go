package sql

import (
	"fmt"
	"strings"
)

// Expr is an unresolved scalar expression tree, produced by the SQL parser
// or the DataFrame API. Binding an expression against a schema type-checks
// it and compiles it to a closure (the engine's stand-in for Spark's runtime
// code generation: after Bind there is no per-row tree interpretation of
// column lookups or type dispatch — each node picked its concrete evaluation
// path once).
type Expr interface {
	// String renders the expression in SQL-ish syntax, used for error
	// messages, plan explain output and derived column names.
	String() string
	// Bind resolves column references against schema and returns a typed,
	// compiled evaluator.
	Bind(schema Schema) (BoundExpr, error)
	// Children returns the direct sub-expressions.
	Children() []Expr
	// WithChildren returns a copy of the node with the given children; the
	// optimizer uses it for bottom-up rewrites.
	WithChildren(children []Expr) Expr
}

// BoundExpr is a resolved, compiled expression: a result type plus an
// evaluator closure over rows of the schema it was bound against.
type BoundExpr struct {
	Type Type
	Eval func(Row) Value
}

// ---------------------------------------------------------------- Column

// Column references a column by (possibly qualified) name.
type Column struct{ Name string }

// Col is shorthand for a column reference expression.
func Col(name string) *Column { return &Column{Name: name} }

func (c *Column) String() string                    { return c.Name }
func (c *Column) Children() []Expr                  { return nil }
func (c *Column) WithChildren(children []Expr) Expr { return c }

// Bind resolves the column to an ordinal and compiles a direct index load.
func (c *Column) Bind(schema Schema) (BoundExpr, error) {
	idx, err := schema.Resolve(c.Name)
	if err != nil {
		return BoundExpr{}, err
	}
	t := schema.Field(idx).Type
	return BoundExpr{Type: t, Eval: func(r Row) Value { return r[idx] }}, nil
}

// ---------------------------------------------------------------- Literal

// Literal is a constant value with an explicit type.
type Literal struct {
	Val  Value
	Type Type
}

// Lit builds a literal from a Go value, normalizing convenience types
// (int, time.Time, time.Duration, ...).
func Lit(v any) *Literal {
	nv := Normalize(v)
	return &Literal{Val: nv, Type: TypeOf(nv)}
}

// TimestampLit builds a timestamp literal from a microsecond value.
func TimestampLit(us int64) *Literal { return &Literal{Val: us, Type: TypeTimestamp} }

// IntervalLit builds an interval literal from a microsecond duration.
func IntervalLit(us int64) *Literal { return &Literal{Val: us, Type: TypeInterval} }

func (l *Literal) String() string {
	switch l.Type {
	case TypeString:
		return fmt.Sprintf("'%v'", l.Val)
	case TypeTimestamp:
		return fmt.Sprintf("TIMESTAMP '%s'", FormatTimestamp(l.Val.(int64)))
	case TypeInterval:
		return fmt.Sprintf("INTERVAL %d µs", l.Val)
	default:
		return AsString(l.Val)
	}
}
func (l *Literal) Children() []Expr                  { return nil }
func (l *Literal) WithChildren(children []Expr) Expr { return l }

func (l *Literal) Bind(Schema) (BoundExpr, error) {
	v := l.Val
	return BoundExpr{Type: l.Type, Eval: func(Row) Value { return v }}, nil
}

// ---------------------------------------------------------------- Alias

// Alias names the result of a sub-expression (SELECT expr AS name).
type Alias struct {
	Child Expr
	Name  string
}

// As wraps an expression with an output name.
func As(child Expr, name string) *Alias { return &Alias{Child: child, Name: name} }

func (a *Alias) String() string   { return fmt.Sprintf("%s AS %s", a.Child, a.Name) }
func (a *Alias) Children() []Expr { return []Expr{a.Child} }
func (a *Alias) WithChildren(children []Expr) Expr {
	return &Alias{Child: children[0], Name: a.Name}
}
func (a *Alias) Bind(schema Schema) (BoundExpr, error) { return a.Child.Bind(schema) }

// OutputName derives the column name an expression produces in a projection.
// A bare window() expression is named "window", matching Spark.
func OutputName(e Expr) string {
	switch x := e.(type) {
	case *Alias:
		return x.Name
	case *Column:
		name := x.Name
		if i := strings.LastIndexByte(name, '.'); i >= 0 {
			return name[i+1:]
		}
		return name
	case *WindowExpr:
		return "window"
	default:
		return e.String()
	}
}

// ---------------------------------------------------------------- BinaryOp

// BinOp identifies a binary operator.
type BinOp int

// Binary operators.
const (
	OpEq BinOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpAnd
	OpOr
	OpLike
)

var binOpNames = map[BinOp]string{
	OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpAnd: "AND", OpOr: "OR", OpLike: "LIKE",
}

// Binary is a binary operator expression.
type Binary struct {
	Op   BinOp
	L, R Expr
}

// NewBinary builds a binary operator node.
func NewBinary(op BinOp, l, r Expr) *Binary { return &Binary{Op: op, L: l, R: r} }

// Convenience builders used by the DataFrame API and tests.
func Eq(l, r Expr) *Binary  { return NewBinary(OpEq, l, r) }
func Ne(l, r Expr) *Binary  { return NewBinary(OpNe, l, r) }
func Lt(l, r Expr) *Binary  { return NewBinary(OpLt, l, r) }
func Le(l, r Expr) *Binary  { return NewBinary(OpLe, l, r) }
func Gt(l, r Expr) *Binary  { return NewBinary(OpGt, l, r) }
func Ge(l, r Expr) *Binary  { return NewBinary(OpGe, l, r) }
func Add(l, r Expr) *Binary { return NewBinary(OpAdd, l, r) }
func Sub(l, r Expr) *Binary { return NewBinary(OpSub, l, r) }
func Mul(l, r Expr) *Binary { return NewBinary(OpMul, l, r) }
func Div(l, r Expr) *Binary { return NewBinary(OpDiv, l, r) }
func And(l, r Expr) *Binary { return NewBinary(OpAnd, l, r) }
func Or(l, r Expr) *Binary  { return NewBinary(OpOr, l, r) }

func (b *Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, binOpNames[b.Op], b.R)
}
func (b *Binary) Children() []Expr { return []Expr{b.L, b.R} }
func (b *Binary) WithChildren(children []Expr) Expr {
	return &Binary{Op: b.Op, L: children[0], R: children[1]}
}

// Bind type-checks the operands and compiles a specialized evaluator for
// the operand types, so the per-row path has no type switches for the
// common int64/float64/string cases.
func (b *Binary) Bind(schema Schema) (BoundExpr, error) {
	l, err := b.L.Bind(schema)
	if err != nil {
		return BoundExpr{}, err
	}
	r, err := b.R.Bind(schema)
	if err != nil {
		return BoundExpr{}, err
	}
	switch b.Op {
	case OpAnd:
		return bindLogical(l, r, true)
	case OpOr:
		return bindLogical(l, r, false)
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return bindComparison(b.Op, l, r, b)
	case OpLike:
		return bindLike(l, r, b)
	default:
		return bindArith(b.Op, l, r, b)
	}
}

// bindLogical implements SQL three-valued AND/OR.
func bindLogical(l, r BoundExpr, isAnd bool) (BoundExpr, error) {
	le, re := l.Eval, r.Eval
	eval := func(row Row) Value {
		lv, rv := le(row), re(row)
		lb, lok := lv.(bool)
		rb, rok := rv.(bool)
		if isAnd {
			if lok && !lb || rok && !rb {
				return false
			}
			if lok && rok {
				return true
			}
			return nil
		}
		if lok && lb || rok && rb {
			return true
		}
		if lok && rok {
			return false
		}
		return nil
	}
	return BoundExpr{Type: TypeBool, Eval: eval}, nil
}

func bindComparison(op BinOp, l, r BoundExpr, src Expr) (BoundExpr, error) {
	if _, ok := CommonType(l.Type, r.Type); !ok {
		return BoundExpr{}, fmt.Errorf("sql: cannot compare %s and %s in %s", l.Type, r.Type, src)
	}
	le, re := l.Eval, r.Eval
	var test func(int) bool
	switch op {
	case OpEq:
		test = func(c int) bool { return c == 0 }
	case OpNe:
		test = func(c int) bool { return c != 0 }
	case OpLt:
		test = func(c int) bool { return c < 0 }
	case OpLe:
		test = func(c int) bool { return c <= 0 }
	case OpGt:
		test = func(c int) bool { return c > 0 }
	case OpGe:
		test = func(c int) bool { return c >= 0 }
	}
	// Fast paths for the hot comparisons.
	if l.Type == TypeInt64 && r.Type == TypeInt64 || l.Type == TypeTimestamp && r.Type == TypeTimestamp {
		eval := func(row Row) Value {
			lv, rv := le(row), re(row)
			li, lok := lv.(int64)
			ri, rok := rv.(int64)
			if !lok || !rok {
				return nil
			}
			return test(cmpOrdered(li, ri))
		}
		return BoundExpr{Type: TypeBool, Eval: eval}, nil
	}
	if l.Type == TypeString && r.Type == TypeString {
		eval := func(row Row) Value {
			lv, rv := le(row), re(row)
			ls, lok := lv.(string)
			rs, rok := rv.(string)
			if !lok || !rok {
				return nil
			}
			return test(strings.Compare(ls, rs))
		}
		return BoundExpr{Type: TypeBool, Eval: eval}, nil
	}
	eval := func(row Row) Value {
		lv, rv := le(row), re(row)
		if lv == nil || rv == nil {
			return nil
		}
		return test(Compare(lv, rv))
	}
	return BoundExpr{Type: TypeBool, Eval: eval}, nil
}

func bindLike(l, r BoundExpr, src Expr) (BoundExpr, error) {
	if l.Type != TypeString && l.Type != TypeNull || r.Type != TypeString && r.Type != TypeNull {
		return BoundExpr{}, fmt.Errorf("sql: LIKE requires string operands in %s", src)
	}
	le, re := l.Eval, r.Eval
	eval := func(row Row) Value {
		lv, rv := le(row), re(row)
		ls, lok := lv.(string)
		rs, rok := rv.(string)
		if !lok || !rok {
			return nil
		}
		return likeMatch(ls, rs)
	}
	return BoundExpr{Type: TypeBool, Eval: eval}, nil
}

// likeMatch implements SQL LIKE with % (any run) and _ (any one rune).
func likeMatch(s, pattern string) bool {
	// Iterative two-pointer match with backtracking on the last %.
	var si, pi int
	star, match := -1, 0
	for si < len(s) {
		if pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]) {
			si++
			pi++
		} else if pi < len(pattern) && pattern[pi] == '%' {
			star = pi
			match = si
			pi++
		} else if star >= 0 {
			pi = star + 1
			match++
			si = match
		} else {
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

func bindArith(op BinOp, l, r BoundExpr, src Expr) (BoundExpr, error) {
	le, re := l.Eval, r.Eval
	// Timestamp ± interval arithmetic.
	tsInterval := func(resType Type, f func(a, b int64) int64) (BoundExpr, error) {
		eval := func(row Row) Value {
			lv, rv := le(row), re(row)
			li, lok := lv.(int64)
			ri, rok := rv.(int64)
			if !lok || !rok {
				return nil
			}
			return f(li, ri)
		}
		return BoundExpr{Type: resType, Eval: eval}, nil
	}
	switch {
	case l.Type == TypeTimestamp && r.Type == TypeInterval && op == OpAdd:
		return tsInterval(TypeTimestamp, func(a, b int64) int64 { return a + b })
	case l.Type == TypeInterval && r.Type == TypeTimestamp && op == OpAdd:
		return tsInterval(TypeTimestamp, func(a, b int64) int64 { return a + b })
	case l.Type == TypeTimestamp && r.Type == TypeInterval && op == OpSub:
		return tsInterval(TypeTimestamp, func(a, b int64) int64 { return a - b })
	case l.Type == TypeTimestamp && r.Type == TypeTimestamp && op == OpSub:
		return tsInterval(TypeInterval, func(a, b int64) int64 { return a - b })
	case l.Type == TypeInterval && r.Type == TypeInterval && (op == OpAdd || op == OpSub):
		if op == OpAdd {
			return tsInterval(TypeInterval, func(a, b int64) int64 { return a + b })
		}
		return tsInterval(TypeInterval, func(a, b int64) int64 { return a - b })
	}
	if op == OpAdd && l.Type == TypeString && r.Type == TypeString {
		eval := func(row Row) Value {
			lv, rv := le(row), re(row)
			ls, lok := lv.(string)
			rs, rok := rv.(string)
			if !lok || !rok {
				return nil
			}
			return ls + rs
		}
		return BoundExpr{Type: TypeString, Eval: eval}, nil
	}
	lNum := l.Type.Numeric() || l.Type == TypeNull
	rNum := r.Type.Numeric() || r.Type == TypeNull
	if !lNum || !rNum {
		return BoundExpr{}, fmt.Errorf("sql: operator %s requires numeric operands, got %s and %s in %s",
			binOpNames[op], l.Type, r.Type, src)
	}
	// Division always produces double, as in Spark SQL.
	if op == OpDiv {
		eval := func(row Row) Value {
			lf, lok := AsFloat64(le(row))
			rf, rok := AsFloat64(re(row))
			if !lok || !rok || rf == 0 {
				return nil
			}
			return lf / rf
		}
		return BoundExpr{Type: TypeFloat64, Eval: eval}, nil
	}
	if l.Type == TypeInt64 && r.Type == TypeInt64 {
		var f func(a, b int64) Value
		switch op {
		case OpAdd:
			f = func(a, b int64) Value { return a + b }
		case OpSub:
			f = func(a, b int64) Value { return a - b }
		case OpMul:
			f = func(a, b int64) Value { return a * b }
		case OpMod:
			f = func(a, b int64) Value {
				if b == 0 {
					return nil
				}
				return a % b
			}
		}
		eval := func(row Row) Value {
			lv, rv := le(row), re(row)
			li, lok := lv.(int64)
			ri, rok := rv.(int64)
			if !lok || !rok {
				return nil
			}
			return f(li, ri)
		}
		return BoundExpr{Type: TypeInt64, Eval: eval}, nil
	}
	var f func(a, b float64) Value
	switch op {
	case OpAdd:
		f = func(a, b float64) Value { return a + b }
	case OpSub:
		f = func(a, b float64) Value { return a - b }
	case OpMul:
		f = func(a, b float64) Value { return a * b }
	case OpMod:
		f = func(a, b float64) Value {
			// Guard the truncated divisor, not b itself: 0 < b < 1
			// truncates to 0 and would panic the integer modulo.
			if int64(b) == 0 {
				return nil
			}
			return float64(int64(a) % int64(b))
		}
	}
	eval := func(row Row) Value {
		lf, lok := AsFloat64(le(row))
		rf, rok := AsFloat64(re(row))
		if !lok || !rok {
			return nil
		}
		return f(lf, rf)
	}
	return BoundExpr{Type: TypeFloat64, Eval: eval}, nil
}

// ---------------------------------------------------------------- Unary

// UnOp identifies a unary operator.
type UnOp int

// Unary operators.
const (
	OpNot UnOp = iota
	OpNeg
	OpIsNull
	OpIsNotNull
)

// Unary is a unary operator expression.
type Unary struct {
	Op    UnOp
	Child Expr
}

// Not negates a boolean expression.
func Not(e Expr) *Unary { return &Unary{Op: OpNot, Child: e} }

// Neg arithmetically negates an expression.
func Neg(e Expr) *Unary { return &Unary{Op: OpNeg, Child: e} }

// IsNull tests an expression for SQL NULL.
func IsNull(e Expr) *Unary { return &Unary{Op: OpIsNull, Child: e} }

// IsNotNull tests an expression for non-NULL.
func IsNotNull(e Expr) *Unary { return &Unary{Op: OpIsNotNull, Child: e} }

func (u *Unary) String() string {
	switch u.Op {
	case OpNot:
		return fmt.Sprintf("(NOT %s)", u.Child)
	case OpNeg:
		return fmt.Sprintf("(-%s)", u.Child)
	case OpIsNull:
		return fmt.Sprintf("(%s IS NULL)", u.Child)
	default:
		return fmt.Sprintf("(%s IS NOT NULL)", u.Child)
	}
}
func (u *Unary) Children() []Expr { return []Expr{u.Child} }
func (u *Unary) WithChildren(children []Expr) Expr {
	return &Unary{Op: u.Op, Child: children[0]}
}

func (u *Unary) Bind(schema Schema) (BoundExpr, error) {
	c, err := u.Child.Bind(schema)
	if err != nil {
		return BoundExpr{}, err
	}
	ce := c.Eval
	switch u.Op {
	case OpNot:
		eval := func(row Row) Value {
			v := ce(row)
			b, ok := v.(bool)
			if !ok {
				return nil
			}
			return !b
		}
		return BoundExpr{Type: TypeBool, Eval: eval}, nil
	case OpNeg:
		if !c.Type.Numeric() && c.Type != TypeNull && c.Type != TypeInterval {
			return BoundExpr{}, fmt.Errorf("sql: cannot negate %s in %s", c.Type, u)
		}
		eval := func(row Row) Value {
			switch v := ce(row).(type) {
			case int64:
				return -v
			case float64:
				return -v
			default:
				return nil
			}
		}
		return BoundExpr{Type: c.Type, Eval: eval}, nil
	case OpIsNull:
		eval := func(row Row) Value { return ce(row) == nil }
		return BoundExpr{Type: TypeBool, Eval: eval}, nil
	default: // OpIsNotNull
		eval := func(row Row) Value { return ce(row) != nil }
		return BoundExpr{Type: TypeBool, Eval: eval}, nil
	}
}

// ---------------------------------------------------------------- Cast

// CastExpr converts its child to a target type with SQL CAST semantics.
type CastExpr struct {
	Child Expr
	To    Type
}

// NewCast builds a CAST(child AS to) expression.
func NewCast(child Expr, to Type) *CastExpr { return &CastExpr{Child: child, To: to} }

func (c *CastExpr) String() string   { return fmt.Sprintf("CAST(%s AS %s)", c.Child, c.To) }
func (c *CastExpr) Children() []Expr { return []Expr{c.Child} }
func (c *CastExpr) WithChildren(children []Expr) Expr {
	return &CastExpr{Child: children[0], To: c.To}
}

func (c *CastExpr) Bind(schema Schema) (BoundExpr, error) {
	child, err := c.Child.Bind(schema)
	if err != nil {
		return BoundExpr{}, err
	}
	to := c.To
	if child.Type == to {
		return child, nil
	}
	ce := child.Eval
	return BoundExpr{Type: to, Eval: func(row Row) Value { return Cast(ce(row), to) }}, nil
}

// ---------------------------------------------------------------- CASE

// WhenClause is one WHEN condition THEN result arm of a CASE expression.
type WhenClause struct {
	When Expr
	Then Expr
}

// Case is a searched CASE expression with an optional ELSE.
type Case struct {
	Whens []WhenClause
	Else  Expr // may be nil, meaning ELSE NULL
}

func (c *Case) String() string {
	var b strings.Builder
	b.WriteString("CASE")
	for _, w := range c.Whens {
		fmt.Fprintf(&b, " WHEN %s THEN %s", w.When, w.Then)
	}
	if c.Else != nil {
		fmt.Fprintf(&b, " ELSE %s", c.Else)
	}
	b.WriteString(" END")
	return b.String()
}

func (c *Case) Children() []Expr {
	var out []Expr
	for _, w := range c.Whens {
		out = append(out, w.When, w.Then)
	}
	if c.Else != nil {
		out = append(out, c.Else)
	}
	return out
}

func (c *Case) WithChildren(children []Expr) Expr {
	out := &Case{Whens: make([]WhenClause, len(c.Whens))}
	for i := range c.Whens {
		out.Whens[i] = WhenClause{When: children[2*i], Then: children[2*i+1]}
	}
	if c.Else != nil {
		out.Else = children[2*len(c.Whens)]
	}
	return out
}

func (c *Case) Bind(schema Schema) (BoundExpr, error) {
	type arm struct {
		when func(Row) Value
		then func(Row) Value
	}
	arms := make([]arm, len(c.Whens))
	resType := TypeNull
	for i, w := range c.Whens {
		cond, err := w.When.Bind(schema)
		if err != nil {
			return BoundExpr{}, err
		}
		if cond.Type != TypeBool && cond.Type != TypeNull {
			return BoundExpr{}, fmt.Errorf("sql: CASE WHEN condition must be boolean, got %s", cond.Type)
		}
		then, err := w.Then.Bind(schema)
		if err != nil {
			return BoundExpr{}, err
		}
		var ok bool
		if resType, ok = CommonType(resType, then.Type); !ok {
			return BoundExpr{}, fmt.Errorf("sql: incompatible CASE branch types in %s", c)
		}
		arms[i] = arm{when: cond.Eval, then: then.Eval}
	}
	var elseEval func(Row) Value
	if c.Else != nil {
		e, err := c.Else.Bind(schema)
		if err != nil {
			return BoundExpr{}, err
		}
		var ok bool
		if resType, ok = CommonType(resType, e.Type); !ok {
			return BoundExpr{}, fmt.Errorf("sql: incompatible CASE ELSE type in %s", c)
		}
		elseEval = e.Eval
	}
	eval := func(row Row) Value {
		for _, a := range arms {
			if b, ok := a.when(row).(bool); ok && b {
				return a.then(row)
			}
		}
		if elseEval != nil {
			return elseEval(row)
		}
		return nil
	}
	return BoundExpr{Type: resType, Eval: eval}, nil
}

// ---------------------------------------------------------------- IN

// InList is "child IN (lit, lit, ...)".
type InList struct {
	Child Expr
	List  []Expr
}

func (in *InList) String() string {
	parts := make([]string, len(in.List))
	for i, e := range in.List {
		parts[i] = e.String()
	}
	return fmt.Sprintf("(%s IN (%s))", in.Child, strings.Join(parts, ", "))
}
func (in *InList) Children() []Expr { return append([]Expr{in.Child}, in.List...) }
func (in *InList) WithChildren(children []Expr) Expr {
	return &InList{Child: children[0], List: children[1:]}
}

func (in *InList) Bind(schema Schema) (BoundExpr, error) {
	child, err := in.Child.Bind(schema)
	if err != nil {
		return BoundExpr{}, err
	}
	evals := make([]func(Row) Value, len(in.List))
	for i, e := range in.List {
		b, err := e.Bind(schema)
		if err != nil {
			return BoundExpr{}, err
		}
		if _, ok := CommonType(child.Type, b.Type); !ok {
			return BoundExpr{}, fmt.Errorf("sql: IN list element %s has incompatible type %s", e, b.Type)
		}
		evals[i] = b.Eval
	}
	ce := child.Eval
	eval := func(row Row) Value {
		v := ce(row)
		if v == nil {
			return nil
		}
		sawNull := false
		for _, le := range evals {
			lv := le(row)
			if lv == nil {
				sawNull = true
				continue
			}
			if Compare(v, lv) == 0 {
				return true
			}
		}
		if sawNull {
			return nil
		}
		return false
	}
	return BoundExpr{Type: TypeBool, Eval: eval}, nil
}

// ---------------------------------------------------------------- Walk helpers

// WalkExpr calls fn on e and every descendant, pre-order.
func WalkExpr(e Expr, fn func(Expr)) {
	fn(e)
	for _, c := range e.Children() {
		WalkExpr(c, fn)
	}
}

// TransformExpr rewrites an expression bottom-up: children first, then fn on
// the (possibly rebuilt) node.
func TransformExpr(e Expr, fn func(Expr) Expr) Expr {
	children := e.Children()
	if len(children) > 0 {
		newChildren := make([]Expr, len(children))
		changed := false
		for i, c := range children {
			newChildren[i] = TransformExpr(c, fn)
			if newChildren[i] != c {
				changed = true
			}
		}
		if changed {
			e = e.WithChildren(newChildren)
		}
	}
	return fn(e)
}

// ExprReferences collects the set of column names referenced by e.
func ExprReferences(e Expr) map[string]bool {
	refs := map[string]bool{}
	WalkExpr(e, func(x Expr) {
		if c, ok := x.(*Column); ok {
			refs[c.Name] = true
		}
	})
	return refs
}
