package physical

import (
	"sort"

	"structream/internal/sql"
	"structream/internal/sql/codec"
)

// HashAggregator is the shared hash-aggregation core: a map from encoded
// group key to per-aggregate buffers. The batch aggregate operator, the
// map-side partial aggregation used before shuffles, and the streaming
// StatefulAggregate all drive this structure.
type HashAggregator struct {
	keyEvals []func(sql.Row) sql.Value
	aggs     []sql.BoundAgg
	groups   map[string]*Group
	order    []string // insertion order for deterministic output
	scratch  []sql.Value
	enc      *codec.Encoder
}

// Group is one aggregation group: its key values and aggregate buffers.
type Group struct {
	Key     []sql.Value
	Buffers []sql.AggBuffer
}

// NewHashAggregator builds an aggregator for the given bound keys and
// aggregates.
func NewHashAggregator(keyEvals []func(sql.Row) sql.Value, aggs []sql.BoundAgg) *HashAggregator {
	return &HashAggregator{
		keyEvals: keyEvals,
		aggs:     aggs,
		groups:   map[string]*Group{},
		scratch:  make([]sql.Value, len(keyEvals)),
		enc:      codec.NewEncoder(64),
	}
}

// Update folds one input row into its group, creating the group on first
// sight. The encoded key is reused across rows; existing-group lookups do
// not allocate.
func (h *HashAggregator) Update(row sql.Row) {
	for i, e := range h.keyEvals {
		h.scratch[i] = e(row)
	}
	h.enc.Reset()
	for _, v := range h.scratch {
		h.enc.PutValue(v)
	}
	g, ok := h.groups[string(h.enc.Bytes())]
	if !ok {
		key := append([]sql.Value(nil), h.scratch...)
		g = &Group{Key: key, Buffers: make([]sql.AggBuffer, len(h.aggs))}
		for i, a := range h.aggs {
			g.Buffers[i] = a.NewBuffer()
		}
		ks := string(h.enc.Bytes())
		h.groups[ks] = g
		h.order = append(h.order, ks)
	}
	for i, a := range h.aggs {
		if a.Input == nil {
			g.Buffers[i].Update(nil) // count(*)
			continue
		}
		v := a.Input(row)
		if v == nil {
			continue // SQL aggregates skip NULL inputs
		}
		g.Buffers[i].Update(v)
	}
}

// MergeGroup folds a partial group (same agg layout) into this aggregator,
// used on the reduce side of a partial aggregation.
func (h *HashAggregator) MergeGroup(key []sql.Value, buffers []sql.AggBuffer) {
	ks := codec.KeyString(key)
	g, ok := h.groups[ks]
	if !ok {
		g = &Group{Key: key, Buffers: buffers}
		h.groups[ks] = g
		h.order = append(h.order, ks)
		return
	}
	for i := range g.Buffers {
		g.Buffers[i].Merge(buffers[i])
	}
}

// Len returns the number of groups.
func (h *HashAggregator) Len() int { return len(h.groups) }

// Groups returns the groups in first-seen order.
func (h *HashAggregator) Groups() []*Group {
	out := make([]*Group, len(h.order))
	for i, ks := range h.order {
		out[i] = h.groups[ks]
	}
	return out
}

// GroupsSorted returns groups ordered by encoded key, for deterministic
// test output.
func (h *HashAggregator) GroupsSorted() []*Group {
	keys := append([]string(nil), h.order...)
	sort.Strings(keys)
	out := make([]*Group, len(keys))
	for i, ks := range keys {
		out[i] = h.groups[ks]
	}
	return out
}

// ResultRow renders one group as an output row: key values then aggregate
// results.
func (h *HashAggregator) ResultRow(g *Group) sql.Row {
	row := make(sql.Row, 0, len(g.Key)+len(g.Buffers))
	row = append(row, g.Key...)
	for _, b := range g.Buffers {
		row = append(row, b.Result())
	}
	return row
}

// ---------------------------------------------------------------- operator

// aggOp is the blocking batch hash-aggregate operator.
type aggOp struct {
	child  Operator
	agg    *HashAggregator
	schema sql.Schema
	done   bool
	// globalIfEmpty emits one all-NULL/zero row for grand aggregates over
	// empty input (SQL semantics for aggregation without GROUP BY).
	globalIfEmpty bool
}

// NewAggregate builds a hash-aggregate operator. keyEvals/aggs must be
// bound against child's schema; schema is the output schema.
func NewAggregate(child Operator, schema sql.Schema, keyEvals []func(sql.Row) sql.Value, aggs []sql.BoundAgg) Operator {
	return &aggOp{
		child:         child,
		agg:           NewHashAggregator(keyEvals, aggs),
		schema:        schema,
		globalIfEmpty: len(keyEvals) == 0,
	}
}

func (a *aggOp) Schema() sql.Schema { return a.schema }
func (a *aggOp) Open() error        { return a.child.Open() }

func (a *aggOp) Next() ([]sql.Row, error) {
	if a.done {
		return nil, nil
	}
	for {
		batch, err := a.child.Next()
		if err != nil {
			return nil, err
		}
		if batch == nil {
			break
		}
		for _, r := range batch {
			a.agg.Update(r)
		}
	}
	a.done = true
	if a.agg.Len() == 0 && a.globalIfEmpty {
		// Seed the single global group with fresh buffers so the operator
		// emits one row (count(*)=0, sum=NULL, ...) over empty input.
		buffers := make([]sql.AggBuffer, len(a.agg.aggs))
		for i, ba := range a.agg.aggs {
			buffers[i] = ba.NewBuffer()
		}
		a.agg.MergeGroup(nil, buffers)
	}
	groups := a.agg.Groups()
	out := make([]sql.Row, len(groups))
	for i, g := range groups {
		out[i] = a.agg.ResultRow(g)
	}
	if len(out) == 0 {
		return nil, nil
	}
	return out, nil
}

func (a *aggOp) Close() error { return a.child.Close() }
