package physical

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"structream/internal/sql"
	"structream/internal/sql/analysis"
	"structream/internal/sql/logical"
	"structream/internal/sql/optimizer"
	"structream/internal/sql/parser"
)

// testCatalog serves two small tables: events and campaigns.
type testCatalog struct {
	events    []sql.Row
	campaigns []sql.Row
}

var eventsSchema = sql.NewSchema(
	sql.Field{Name: "user_id", Type: sql.TypeInt64},
	sql.Field{Name: "country", Type: sql.TypeString},
	sql.Field{Name: "latency", Type: sql.TypeFloat64},
	sql.Field{Name: "time", Type: sql.TypeTimestamp},
	sql.Field{Name: "ad_id", Type: sql.TypeInt64},
)

var campaignsSchema = sql.NewSchema(
	sql.Field{Name: "ad_id", Type: sql.TypeInt64},
	sql.Field{Name: "campaign_id", Type: sql.TypeInt64},
)

func newTestCatalog() *testCatalog {
	sec := int64(1_000_000)
	return &testCatalog{
		events: []sql.Row{
			{int64(1), "CA", 10.0, 1 * sec, int64(100)},
			{int64(2), "CA", 20.0, 12 * sec, int64(101)},
			{int64(3), "US", 30.0, 22 * sec, int64(100)},
			{int64(4), "US", 40.0, 23 * sec, int64(102)},
			{int64(5), "DE", 50.0, 35 * sec, int64(999)}, // no campaign
			{int64(1), "CA", 60.0, 41 * sec, int64(101)},
		},
		campaigns: []sql.Row{
			{int64(100), int64(1000)},
			{int64(101), int64(1000)},
			{int64(102), int64(2000)},
		},
	}
}

func (c *testCatalog) ResolveTable(name string) (logical.Plan, error) {
	switch strings.ToLower(name) {
	case "events":
		return &logical.Scan{Name: "events", Out: eventsSchema, Handle: c.events}, nil
	case "campaigns":
		return &logical.Scan{Name: "campaigns", Out: campaignsSchema, Handle: c.campaigns}, nil
	default:
		return nil, fmt.Errorf("unknown table %q", name)
	}
}

func (c *testCatalog) resolver(scan *logical.Scan) (RowSource, error) {
	rows, ok := scan.Handle.([]sql.Row)
	if !ok {
		return nil, fmt.Errorf("bad handle for %s", scan.Name)
	}
	return NewSliceSource(scan.Out, rows), nil
}

// runSQL executes a SQL query end to end through parse → analyze →
// optimize → compile → drain.
func runSQL(t *testing.T, cat *testCatalog, query string) []sql.Row {
	t.Helper()
	plan, err := parser.Parse(query, cat)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	analyzed, err := analysis.Analyze(plan)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	optimized := optimizer.Optimize(analyzed)
	op, err := Compile(optimized, cat.resolver)
	if err != nil {
		t.Fatalf("compile: %v\nplan:\n%s", err, logical.Explain(optimized))
	}
	rows, err := Drain(op)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	return rows
}

// rowsToStrings renders rows sorted for order-independent comparison.
func rowsToStrings(rows []sql.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	sort.Strings(out)
	return out
}

func expectRows(t *testing.T, got []sql.Row, want ...string) {
	t.Helper()
	gs := rowsToStrings(got)
	sort.Strings(want)
	if len(gs) != len(want) {
		t.Fatalf("got %d rows %v, want %d %v", len(gs), gs, len(want), want)
	}
	for i := range gs {
		if gs[i] != want[i] {
			t.Errorf("row %d: got %s, want %s", i, gs[i], want[i])
		}
	}
}

func TestSelectWhere(t *testing.T) {
	got := runSQL(t, newTestCatalog(), "SELECT user_id, latency FROM events WHERE country = 'CA'")
	expectRows(t, got, "[1, 10.0]", "[2, 20.0]", "[1, 60.0]")
}

func TestProjectionExpressions(t *testing.T) {
	got := runSQL(t, newTestCatalog(),
		"SELECT user_id * 10 AS x, lower(country) FROM events WHERE latency >= 50")
	expectRows(t, got, "[50, de]", "[10, ca]")
}

func TestGroupByCount(t *testing.T) {
	got := runSQL(t, newTestCatalog(),
		"SELECT country, count(*) AS cnt FROM events GROUP BY country")
	expectRows(t, got, "[CA, 3]", "[US, 2]", "[DE, 1]")
}

func TestGroupByMultipleAggs(t *testing.T) {
	got := runSQL(t, newTestCatalog(), `SELECT country, sum(latency) AS s,
		avg(latency) AS a, min(latency) AS lo, max(latency) AS hi
		FROM events GROUP BY country`)
	expectRows(t, got,
		"[CA, 90.0, 30.0, 10.0, 60.0]",
		"[US, 70.0, 35.0, 30.0, 40.0]",
		"[DE, 50.0, 50.0, 50.0, 50.0]")
}

func TestGlobalAggregate(t *testing.T) {
	got := runSQL(t, newTestCatalog(), "SELECT count(*) AS n, sum(latency) AS s FROM events")
	expectRows(t, got, "[6, 210.0]")
}

func TestGlobalAggregateEmptyInput(t *testing.T) {
	cat := newTestCatalog()
	cat.events = nil
	got := runSQL(t, cat, "SELECT count(*) AS n, max(latency) AS m FROM events")
	expectRows(t, got, "[0, NULL]")
}

func TestHaving(t *testing.T) {
	got := runSQL(t, newTestCatalog(),
		"SELECT country, count(*) AS cnt FROM events GROUP BY country HAVING count(*) > 1")
	expectRows(t, got, "[CA, 3]", "[US, 2]")
}

func TestInnerJoin(t *testing.T) {
	got := runSQL(t, newTestCatalog(), `SELECT e.user_id, c.campaign_id
		FROM events e JOIN campaigns c ON e.ad_id = c.ad_id`)
	expectRows(t, got, "[1, 1000]", "[2, 1000]", "[3, 1000]", "[4, 2000]", "[1, 1000]")
}

func TestLeftOuterJoin(t *testing.T) {
	got := runSQL(t, newTestCatalog(), `SELECT e.user_id, c.campaign_id
		FROM events e LEFT JOIN campaigns c ON e.ad_id = c.ad_id WHERE e.country = 'DE'`)
	expectRows(t, got, "[5, NULL]")
}

func TestRightOuterJoin(t *testing.T) {
	cat := newTestCatalog()
	cat.campaigns = append(cat.campaigns, sql.Row{int64(555), int64(3000)})
	got := runSQL(t, cat, `SELECT e.user_id, c.campaign_id
		FROM events e RIGHT JOIN campaigns c ON e.ad_id = c.ad_id HAVING 1 = 1`)
	// 5 matched rows plus the unmatched campaign null-padded on the left.
	if len(got) != 6 {
		t.Fatalf("rows = %v", rowsToStrings(got))
	}
	found := false
	for _, r := range got {
		if r[0] == nil && r[1] == int64(3000) {
			found = true
		}
	}
	if !found {
		t.Error("missing null-padded unmatched right row")
	}
}

func TestSemiAntiJoin(t *testing.T) {
	semi := runSQL(t, newTestCatalog(), `SELECT user_id FROM events
		LEFT SEMI JOIN campaigns ON events.ad_id = campaigns.ad_id`)
	if len(semi) != 5 {
		t.Errorf("semi join rows = %v", rowsToStrings(semi))
	}
	anti := runSQL(t, newTestCatalog(), `SELECT user_id FROM events
		LEFT ANTI JOIN campaigns ON events.ad_id = campaigns.ad_id`)
	expectRows(t, anti, "[5]")
}

func TestJoinWithResidual(t *testing.T) {
	got := runSQL(t, newTestCatalog(), `SELECT e.user_id FROM events e
		JOIN campaigns c ON e.ad_id = c.ad_id AND e.latency > 25`)
	// Users 3 and 4 plus user 1's second event (latency 60, ad 101).
	expectRows(t, got, "[3]", "[4]", "[1]")
}

func TestJoinNullKeysDontMatch(t *testing.T) {
	cat := newTestCatalog()
	cat.events = append(cat.events, sql.Row{int64(9), "FR", 1.0, int64(0), nil})
	got := runSQL(t, cat, `SELECT e.user_id FROM events e JOIN campaigns c ON e.ad_id = c.ad_id`)
	for _, r := range got {
		if r[0] == int64(9) {
			t.Error("NULL join key must not match")
		}
	}
}

func TestOrderByLimit(t *testing.T) {
	got := runSQL(t, newTestCatalog(),
		"SELECT user_id, latency FROM events ORDER BY latency DESC LIMIT 2")
	if len(got) != 2 || got[0][1] != 60.0 || got[1][1] != 50.0 {
		t.Errorf("rows = %v", got)
	}
}

func TestOrderByAscNullsFirst(t *testing.T) {
	cat := newTestCatalog()
	cat.events = append(cat.events, sql.Row{int64(9), "FR", nil, int64(0), nil})
	got := runSQL(t, cat, "SELECT latency FROM events ORDER BY latency")
	if got[0][0] != nil {
		t.Errorf("NULL should sort first: %v", got)
	}
}

func TestDistinct(t *testing.T) {
	got := runSQL(t, newTestCatalog(), "SELECT DISTINCT country FROM events")
	expectRows(t, got, "[CA]", "[US]", "[DE]")
}

func TestUnionAll(t *testing.T) {
	got := runSQL(t, newTestCatalog(),
		"SELECT country FROM events WHERE user_id = 1 UNION ALL SELECT country FROM events WHERE user_id = 3")
	expectRows(t, got, "[CA]", "[CA]", "[US]")
}

func TestTumblingWindowAggregate(t *testing.T) {
	got := runSQL(t, newTestCatalog(), `SELECT window(time, '10 seconds') AS w, count(*) AS cnt
		FROM events GROUP BY window(time, '10 seconds')`)
	// Buckets: [0,10): t=1 → 1; [10,20): t=12 → 1; [20,30): 22,23 → 2;
	// [30,40): 35 → 1; [40,50): 41 → 1.
	if len(got) != 5 {
		t.Fatalf("windows = %v", rowsToStrings(got))
	}
	var total int64
	for _, r := range got {
		if _, ok := r[0].(sql.Window); !ok {
			t.Fatalf("first column should be a window, got %T", r[0])
		}
		total += r[1].(int64)
	}
	if total != 6 {
		t.Errorf("total count = %d", total)
	}
}

func TestSlidingWindowAggregate(t *testing.T) {
	got := runSQL(t, newTestCatalog(), `SELECT count(*) AS cnt
		FROM events GROUP BY window(time, '20 seconds', '10 seconds')`)
	// Each event lands in exactly 2 windows; total count doubles.
	var total int64
	for _, r := range got {
		total += r[0].(int64)
	}
	if total != 12 {
		t.Errorf("total = %d, want 12", total)
	}
}

func TestWindowBoundsProjection(t *testing.T) {
	got := runSQL(t, newTestCatalog(), `SELECT window_start(w) AS s, cnt FROM
		(SELECT window(time, '10 seconds') AS w, count(*) AS cnt FROM events GROUP BY window(time, '10 seconds')) t
		WHERE cnt > 1`)
	if len(got) != 1 || got[0][0] != int64(20_000_000) {
		t.Errorf("rows = %v", rowsToStrings(got))
	}
}

func TestSubqueryWithFilterPushdown(t *testing.T) {
	got := runSQL(t, newTestCatalog(), `SELECT uid FROM
		(SELECT user_id AS uid, latency AS l FROM events) t WHERE l > 45`)
	expectRows(t, got, "[5]", "[1]")
}

func TestCaseExpression(t *testing.T) {
	got := runSQL(t, newTestCatalog(), `SELECT DISTINCT
		CASE WHEN latency < 25 THEN 'low' WHEN latency < 45 THEN 'mid' ELSE 'high' END AS band
		FROM events`)
	expectRows(t, got, "[low]", "[mid]", "[high]")
}

func TestCountDistinctQuery(t *testing.T) {
	got := runSQL(t, newTestCatalog(), "SELECT count(DISTINCT country) AS c FROM events")
	expectRows(t, got, "[3]")
}

func TestMapGroupsBatch(t *testing.T) {
	cat := newTestCatalog()
	plan, err := parser.Parse("SELECT user_id, latency FROM events", cat)
	if err != nil {
		t.Fatal(err)
	}
	mg := &logical.MapGroups{
		Child:    plan,
		Keys:     []sql.Expr{sql.Col("user_id")},
		KeyNames: []string{"user_id"},
		Func: func(key sql.Row, values []sql.Row, state logical.GroupState) []sql.Row {
			if state.Exists() {
				t.Error("batch mode must start with empty state")
			}
			var total float64
			for _, v := range values {
				total += v[1].(float64)
			}
			return []sql.Row{{key[0], total}}
		},
		Out: sql.NewSchema(
			sql.Field{Name: "user_id", Type: sql.TypeInt64},
			sql.Field{Name: "total", Type: sql.TypeFloat64},
		),
	}
	analyzed, err := analysis.Analyze(mg)
	if err != nil {
		t.Fatal(err)
	}
	op, err := Compile(analyzed, cat.resolver)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Drain(op)
	if err != nil {
		t.Fatal(err)
	}
	expectRows(t, rows, "[1, 70.0]", "[2, 20.0]", "[3, 30.0]", "[4, 40.0]", "[5, 50.0]")
}

func TestFusionCollapsesChains(t *testing.T) {
	cat := newTestCatalog()
	plan, err := parser.Parse(
		"SELECT user_id FROM (SELECT user_id, latency FROM events WHERE latency > 5) t WHERE latency < 100", cat)
	if err != nil {
		t.Fatal(err)
	}
	analyzed, err := analysis.Analyze(plan)
	if err != nil {
		t.Fatal(err)
	}
	optimized := optimizer.Optimize(analyzed)
	op, err := Compile(optimized, cat.resolver)
	if err != nil {
		t.Fatal(err)
	}
	// Count the fused chain depth: the whole select/filter pipeline should
	// collapse into very few operators above the scan.
	depth := 0
	for cur := op; cur != nil; {
		depth++
		switch c := cur.(type) {
		case *fusedOp:
			cur = c.child
		case *aliasOp:
			cur = c.child
		case *scanOp:
			cur = nil
		default:
			cur = nil
		}
	}
	if depth > 4 {
		t.Errorf("pipeline depth %d; fusion is not collapsing chains", depth)
	}
	rows, err := Drain(op)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Errorf("rows = %v", rowsToStrings(rows))
	}
}

func TestExtractEquiKeys(t *testing.T) {
	left := sql.NewSchema(sql.Field{Name: "a", Type: sql.TypeInt64}, sql.Field{Name: "b", Type: sql.TypeInt64})
	right := sql.NewSchema(sql.Field{Name: "c", Type: sql.TypeInt64}, sql.Field{Name: "d", Type: sql.TypeInt64})
	cond := sql.And(sql.Eq(sql.Col("a"), sql.Col("c")), sql.Gt(sql.Col("b"), sql.Col("d")))
	keys := ExtractEquiKeys(cond, left, right)
	if len(keys.Left) != 1 || keys.Left[0].String() != "a" || keys.Right[0].String() != "c" {
		t.Errorf("keys = %+v", keys)
	}
	if keys.Residual == nil {
		t.Error("expected residual predicate")
	}
	// Reversed sides also extract.
	cond2 := sql.Eq(sql.Col("d"), sql.Col("b"))
	keys2 := ExtractEquiKeys(cond2, left, right)
	if len(keys2.Left) != 1 || keys2.Left[0].String() != "b" {
		t.Errorf("keys2 = %+v", keys2)
	}
}

func TestDrainEmptyScan(t *testing.T) {
	src := NewSliceSource(eventsSchema, nil)
	rows, err := Drain(NewScan(src))
	if err != nil || len(rows) != 0 {
		t.Errorf("rows=%v err=%v", rows, err)
	}
}
