package physical

import (
	"fmt"

	"structream/internal/sql"
	"structream/internal/sql/logical"
)

// ScanResolver maps a logical Scan leaf to a concrete RowSource. The batch
// session resolves tables to their stored rows; the streaming engine
// resolves stream scans to the current epoch's data.
type ScanResolver func(scan *logical.Scan) (RowSource, error)

// Compile lowers an analyzed, optimized logical plan to a physical operator
// tree for batch execution. Streaming plans are lowered by the incremental
// package instead, which substitutes stateful operators.
func Compile(plan logical.Plan, resolve ScanResolver) (Operator, error) {
	switch n := plan.(type) {
	case *logical.Scan:
		src, err := resolve(n)
		if err != nil {
			return nil, err
		}
		return NewScan(src), nil

	case *logical.SubqueryAlias:
		child, err := Compile(n.Child, resolve)
		if err != nil {
			return nil, err
		}
		schema, err := n.Schema()
		if err != nil {
			return nil, err
		}
		return NewAlias(child, schema), nil

	case *logical.Filter:
		child, err := Compile(n.Child, resolve)
		if err != nil {
			return nil, err
		}
		b, err := n.Cond.Bind(child.Schema())
		if err != nil {
			return nil, err
		}
		return NewFused(child, child.Schema(), FilterFunc(b.Eval)), nil

	case *logical.Project:
		child, err := Compile(n.Child, resolve)
		if err != nil {
			return nil, err
		}
		evals, schema, err := BindProjection(n.Exprs, child.Schema())
		if err != nil {
			return nil, err
		}
		return NewFused(child, schema, ProjectFunc(evals)), nil

	case *logical.WindowAssign:
		child, err := Compile(n.Child, resolve)
		if err != nil {
			return nil, err
		}
		t, err := n.Window.Time.Bind(child.Schema())
		if err != nil {
			return nil, err
		}
		schema, err := n.Schema()
		if err != nil {
			return nil, err
		}
		return NewFused(child, schema, WindowAssignFunc(t.Eval, n.Window)), nil

	case *logical.WithWatermark:
		// Watermarks are metadata for the streaming engine; in batch
		// execution they are a no-op passthrough.
		return Compile(n.Child, resolve)

	case *logical.Aggregate:
		child, err := Compile(n.Child, resolve)
		if err != nil {
			return nil, err
		}
		keyEvals, aggs, schema, err := BindAggregate(n, child.Schema())
		if err != nil {
			return nil, err
		}
		return NewAggregate(child, schema, keyEvals, aggs), nil

	case *logical.Join:
		left, err := Compile(n.Left, resolve)
		if err != nil {
			return nil, err
		}
		right, err := Compile(n.Right, resolve)
		if err != nil {
			return nil, err
		}
		schema, err := n.Schema()
		if err != nil {
			return nil, err
		}
		return NewHashJoin(left, right, n.Type, n.Cond, schema)

	case *logical.Sort:
		child, err := Compile(n.Child, resolve)
		if err != nil {
			return nil, err
		}
		orders, err := BindSortOrders(n.Orders, child.Schema())
		if err != nil {
			return nil, err
		}
		return NewSort(child, orders), nil

	case *logical.Limit:
		child, err := Compile(n.Child, resolve)
		if err != nil {
			return nil, err
		}
		return NewLimit(child, n.N), nil

	case *logical.Distinct:
		child, err := Compile(n.Child, resolve)
		if err != nil {
			return nil, err
		}
		keyIdxs, err := ResolveColumns(n.Cols, child.Schema())
		if err != nil {
			return nil, err
		}
		return NewDistinct(child, keyIdxs), nil

	case *logical.Union:
		left, err := Compile(n.Left, resolve)
		if err != nil {
			return nil, err
		}
		right, err := Compile(n.Right, resolve)
		if err != nil {
			return nil, err
		}
		schema, err := n.Schema()
		if err != nil {
			return nil, err
		}
		return NewUnion(schema, left, right), nil

	case *logical.MapGroups:
		child, err := Compile(n.Child, resolve)
		if err != nil {
			return nil, err
		}
		keyEvals, err := BindKeyExprs(n.Keys, child.Schema())
		if err != nil {
			return nil, err
		}
		return NewMapGroupsBatch(child, n.Out, keyEvals, n.Func), nil

	default:
		return nil, fmt.Errorf("physical: no batch implementation for %T", plan)
	}
}

// BindProjection binds projection expressions, returning the evaluators and
// the output schema.
func BindProjection(exprs []sql.Expr, in sql.Schema) ([]func(sql.Row) sql.Value, sql.Schema, error) {
	evals := make([]func(sql.Row) sql.Value, len(exprs))
	fields := make([]sql.Field, len(exprs))
	for i, e := range exprs {
		b, err := e.Bind(in)
		if err != nil {
			return nil, sql.Schema{}, err
		}
		evals[i] = b.Eval
		fields[i] = sql.Field{Name: sql.OutputName(e), Type: b.Type}
	}
	return evals, sql.Schema{Fields: fields}, nil
}

// BindKeyExprs binds a list of grouping key expressions.
func BindKeyExprs(keys []sql.Expr, in sql.Schema) ([]func(sql.Row) sql.Value, error) {
	evals := make([]func(sql.Row) sql.Value, len(keys))
	for i, k := range keys {
		b, err := k.Bind(in)
		if err != nil {
			return nil, err
		}
		evals[i] = b.Eval
	}
	return evals, nil
}

// BindAggregate binds an Aggregate node's keys and aggregate functions
// against the input schema, returning the pieces the hash aggregator needs
// plus the output schema.
func BindAggregate(a *logical.Aggregate, in sql.Schema) ([]func(sql.Row) sql.Value, []sql.BoundAgg, sql.Schema, error) {
	keyEvals, err := BindKeyExprs(a.Keys, in)
	if err != nil {
		return nil, nil, sql.Schema{}, err
	}
	aggs := make([]sql.BoundAgg, len(a.Aggs))
	fields := make([]sql.Field, 0, len(a.Keys)+len(a.Aggs))
	for _, k := range a.Keys {
		b, err := k.Bind(in)
		if err != nil {
			return nil, nil, sql.Schema{}, err
		}
		fields = append(fields, sql.Field{Name: sql.OutputName(k), Type: b.Type})
	}
	for i, na := range a.Aggs {
		ba, err := na.Agg.BindAgg(in)
		if err != nil {
			return nil, nil, sql.Schema{}, err
		}
		aggs[i] = ba
		fields = append(fields, sql.Field{Name: na.Name, Type: ba.ResultType})
	}
	return keyEvals, aggs, sql.Schema{Fields: fields}, nil
}

// ResolveColumns maps column names to ordinals in schema; nil input yields
// nil output (meaning "all columns" to callers).
func ResolveColumns(names []string, schema sql.Schema) ([]int, error) {
	if len(names) == 0 {
		return nil, nil
	}
	out := make([]int, len(names))
	for i, name := range names {
		idx, err := schema.Resolve(name)
		if err != nil {
			return nil, err
		}
		out[i] = idx
	}
	return out, nil
}

// BindSortOrders binds ORDER BY terms.
func BindSortOrders(orders []logical.SortOrder, in sql.Schema) ([]BoundSortOrder, error) {
	out := make([]BoundSortOrder, len(orders))
	for i, o := range orders {
		b, err := o.Expr.Bind(in)
		if err != nil {
			return nil, err
		}
		out[i] = BoundSortOrder{Eval: b.Eval, Desc: o.Desc}
	}
	return out, nil
}
