package physical

import (
	"structream/internal/sql"
	"structream/internal/sql/logical"
	"structream/internal/sql/vec"
)

// This file is the ColumnBatch variant of the fused pipeline: the same
// filter/project/window chain as the row BatchFuncs, expressed as VecOps
// over column batches. Stages stay columnar end to end; rows are
// materialized only at the boundary where a consumer needs []sql.Value
// (the sink, a shuffle, or a non-vectorizable downstream stage).

// VecOp is one vectorized pipeline stage: it maps a column batch to a
// column batch. Implementations never mutate their input batch's
// vectors; they produce new vectors or narrow the selection.
type VecOp interface {
	Apply(*vec.Batch) *vec.Batch
}

// VecSource is an optional extension of RowSource for inputs that can
// serve column batches directly (colfmt segments, codec-framed bus
// topics). NextVec returns the next batch columnar when possible; a
// batch whose stored types drift from the schema comes back as rows
// instead (exactly one of batch/rows is non-nil). (nil, nil, nil) is EOF.
type VecSource interface {
	NextVec() (*vec.Batch, []sql.Row, error)
}

// ---------------------------------------------------------------- filter

type vecFilter struct{ cond *vec.Program }

// NewVecFilter keeps positions where the predicate is TRUE (false and
// NULL both drop, like FilterFunc's `.(bool)` assertion).
func NewVecFilter(cond *vec.Program) VecOp { return &vecFilter{cond: cond} }

func (f *vecFilter) Apply(b *vec.Batch) *vec.Batch {
	cond := f.cond.Run(b)
	return &vec.Batch{Schema: b.Schema, Cols: b.Cols, Len: b.Len, Sel: vec.FilterSel(b, cond)}
}

// ---------------------------------------------------------------- project

type vecProject struct {
	progs  []*vec.Program
	schema sql.Schema
}

// NewVecProject computes one output vector per projection expression.
// Column picks are zero-copy; computed columns evaluate densely and the
// selection vector carries over untouched.
func NewVecProject(progs []*vec.Program, schema sql.Schema) VecOp {
	return &vecProject{progs: progs, schema: schema}
}

func (p *vecProject) Apply(b *vec.Batch) *vec.Batch {
	cols := make([]*vec.Vector, len(p.progs))
	for i, prog := range p.progs {
		cols[i] = prog.Run(b)
	}
	return &vec.Batch{Schema: p.schema, Cols: cols, Len: b.Len, Sel: b.Sel}
}

// ---------------------------------------------------------------- window

type vecWindow struct {
	time        *vec.Program
	size, slide int64
	schema      sql.Schema
}

// NewVecWindow appends a tumbling-window column computed from an int64
// event-time program. Rows whose event time is NULL drop (as in the row
// path); sliding windows (size != slide) explode rows and stay on the
// row path, so callers must not build this op for them.
func NewVecWindow(time *vec.Program, w *sql.WindowExpr, schema sql.Schema) VecOp {
	return &vecWindow{time: time, size: w.Size, slide: w.Slide, schema: schema}
}

func (w *vecWindow) Apply(b *vec.Batch) *vec.Batch {
	tv := w.time.Run(b)
	wcol := vec.NewVector(vec.KindWindow, b.Len)
	ts := tv.Int64s
	slide, size := w.slide, w.size
	for i := 0; i < b.Len; i++ {
		t := ts[i]
		start := t - ((t%slide)+slide)%slide
		wcol.WStarts[i] = start
		wcol.WEnds[i] = start + size
	}
	sel := b.Sel
	if tv.Nulls != nil {
		// NULL event times drop, exactly like the row path's failed
		// int64 assertion.
		sel = make([]int32, 0, b.NumLive())
		if b.Sel != nil {
			for _, i := range b.Sel {
				if !tv.Nulls.Get(int(i)) {
					sel = append(sel, i)
				}
			}
		} else {
			for i := 0; i < b.Len; i++ {
				if !tv.Nulls.Get(i) {
					sel = append(sel, int32(i))
				}
			}
		}
	}
	cols := make([]*vec.Vector, 0, len(b.Cols)+1)
	cols = append(cols, b.Cols...)
	cols = append(cols, wcol)
	return &vec.Batch{Schema: w.schema, Cols: cols, Len: b.Len, Sel: sel}
}

// ----------------------------------------------------------- materialize

// EmitBatchRows materializes the live rows of a column batch through
// emit, arena-backed. This is the single row/column boundary: each cell
// boxes exactly once, and consecutive equal windows share one boxed
// sql.Window (event times usually arrive roughly ordered).
func EmitBatchRows(b *vec.Batch, emit func(sql.Row)) {
	if b.NumLive() == 0 {
		return
	}
	arena := NewRowArena(len(b.Cols))
	getters := make([]func(int) sql.Value, len(b.Cols))
	for c, v := range b.Cols {
		getters[c] = columnGetter(v)
	}
	if b.Sel != nil {
		for _, i := range b.Sel {
			r := arena.Next()
			for c, g := range getters {
				r[c] = g(int(i))
			}
			emit(r)
		}
		return
	}
	for i := 0; i < b.Len; i++ {
		r := arena.Next()
		for c, g := range getters {
			r[c] = g(i)
		}
		emit(r)
	}
}

// columnGetter returns a boxing accessor specialized to the vector's
// kind, avoiding a kind switch per cell.
func columnGetter(v *vec.Vector) func(int) sql.Value {
	switch v.Kind {
	case vec.KindInt64:
		vals, nulls := v.Int64s, v.Nulls
		return func(i int) sql.Value {
			if nulls.Get(i) {
				return nil
			}
			return vals[i]
		}
	case vec.KindFloat64:
		vals, nulls := v.Float64s, v.Nulls
		return func(i int) sql.Value {
			if nulls.Get(i) {
				return nil
			}
			return vals[i]
		}
	case vec.KindBool:
		vals, nulls := v.Bools, v.Nulls
		return func(i int) sql.Value {
			if nulls.Get(i) {
				return nil
			}
			return vals[i]
		}
	case vec.KindString:
		vals, nulls := v.Strings, v.Nulls
		return func(i int) sql.Value {
			if nulls.Get(i) {
				return nil
			}
			return vals[i]
		}
	case vec.KindWindow:
		starts, ends, nulls := v.WStarts, v.WEnds, v.Nulls
		var cs, ce int64
		var cached sql.Value
		return func(i int) sql.Value {
			if nulls.Get(i) {
				return nil
			}
			s, e := starts[i], ends[i]
			if cached == nil || s != cs || e != ce {
				cs, ce, cached = s, e, sql.Window{Start: s, End: e}
			}
			return cached
		}
	default:
		vals := v.Anys
		return func(i int) sql.Value { return vals[i] }
	}
}

// ------------------------------------------------------------ batch plan

// vecFusedOp is the ColumnBatch variant of fusedOp for batch execution:
// it pulls row batches (or column batches, when the source supports
// NextVec) from the scan leaf, runs the vectorized ops, and materializes
// rows at its output boundary. A batch whose dynamic types drift from
// the schema falls back to the composed row BatchFunc, so results are
// identical either way.
type vecFusedOp struct {
	src       RowSource
	srcSchema sql.Schema
	schema    sql.Schema
	ops       []VecOp
	rowFn     BatchFunc
}

func (f *vecFusedOp) Schema() sql.Schema { return f.schema }
func (f *vecFusedOp) Open() error        { return nil }
func (f *vecFusedOp) Close() error       { return f.src.Close() }

func (f *vecFusedOp) Next() ([]sql.Row, error) {
	vs, hasVec := f.src.(VecSource)
	for {
		var vb *vec.Batch
		if hasVec {
			b, rows, err := vs.NextVec()
			if err != nil {
				return nil, err
			}
			if b == nil && rows == nil {
				return nil, nil
			}
			if b == nil {
				// Type drift: the source already failed to vectorize this
				// batch, so run it straight through the row pipeline.
				out := f.rowFn(rows)
				if len(out) == 0 {
					continue
				}
				return out, nil
			}
			vb = b
		} else {
			rows, err := f.src.Next()
			if err != nil {
				return nil, err
			}
			if rows == nil {
				return nil, nil
			}
			b, ok := vec.FromRows(f.srcSchema, rows)
			if !ok {
				out := f.rowFn(rows)
				if len(out) == 0 {
					continue
				}
				return out, nil
			}
			vb = b
		}
		for _, op := range f.ops {
			vb = op.Apply(vb)
		}
		var out []sql.Row
		EmitBatchRows(vb, func(r sql.Row) { out = append(out, r) })
		if len(out) == 0 {
			continue
		}
		return out, nil
	}
}

// TryCompileVec lowers a plan to the vectorized batch pipeline when it
// is a chain of Filter/Project/WindowAssign(tumbling)/WithWatermark/
// SubqueryAlias nodes over a Scan and every expression compiles to
// kernels. ok=false (with no error) means "use Compile instead"; the
// plan is outside the vectorizable shape or an expression needs the row
// path. Plans with no vectorizable stage also return ok=false — a bare
// scan gains nothing from the columnar detour.
func TryCompileVec(plan logical.Plan, resolve ScanResolver) (Operator, bool, error) {
	// Walk down to the scan, collecting stage nodes top-down.
	var chain []logical.Plan
	cur := plan
	var scan *logical.Scan
walk:
	for {
		switch n := cur.(type) {
		case *logical.Filter:
			chain = append(chain, n)
			cur = n.Child
		case *logical.Project:
			chain = append(chain, n)
			cur = n.Child
		case *logical.WindowAssign:
			if n.Window.Size != n.Window.Slide {
				return nil, false, nil // sliding windows explode rows
			}
			chain = append(chain, n)
			cur = n.Child
		case *logical.WithWatermark:
			cur = n.Child // batch no-op, like Compile
		case *logical.SubqueryAlias:
			chain = append(chain, n)
			cur = n.Child
		case *logical.Scan:
			scan = n
			break walk
		default:
			return nil, false, nil
		}
	}
	src, err := resolve(scan)
	if err != nil {
		return nil, false, err
	}
	schema := src.Schema()
	srcSchema := schema
	var ops []VecOp
	var fns []BatchFunc
	stages := 0
	// Build bottom-up (reverse of the collected chain).
	for i := len(chain) - 1; i >= 0; i-- {
		switch n := chain[i].(type) {
		case *logical.SubqueryAlias:
			schema = schema.Qualify(n.Alias)
		case *logical.Filter:
			b, err := n.Cond.Bind(schema)
			if err != nil {
				return nil, false, err
			}
			prog, ok := vec.Compile(n.Cond, schema)
			if !ok {
				return nil, false, nil
			}
			ops = append(ops, NewVecFilter(prog))
			fns = append(fns, FilterFunc(b.Eval))
			stages++
		case *logical.Project:
			evals, out, err := BindProjection(n.Exprs, schema)
			if err != nil {
				return nil, false, err
			}
			progs, ok := vec.CompileAll(n.Exprs, schema)
			if !ok {
				return nil, false, nil
			}
			ops = append(ops, NewVecProject(progs, out))
			fns = append(fns, ProjectFunc(evals))
			schema = out
			stages++
		case *logical.WindowAssign:
			t, err := n.Window.Time.Bind(schema)
			if err != nil {
				return nil, false, err
			}
			prog, ok := vec.Compile(n.Window.Time, schema)
			if !ok || vec.KindOf(prog.Type) != vec.KindInt64 {
				return nil, false, nil
			}
			out := schema.Concat(sql.Schema{Fields: []sql.Field{{Name: n.Name, Type: sql.TypeWindow}}})
			ops = append(ops, NewVecWindow(prog, n.Window, out))
			fns = append(fns, WindowAssignFunc(t.Eval, n.Window))
			schema = out
			stages++
		}
	}
	if stages == 0 {
		return nil, false, nil
	}
	rowFn := fns[0]
	for _, fn := range fns[1:] {
		inner, outer := rowFn, fn
		rowFn = func(rows []sql.Row) []sql.Row { return outer(inner(rows)) }
	}
	return &vecFusedOp{src: src, srcSchema: srcSchema, schema: schema, ops: ops, rowFn: rowFn}, true, nil
}
