package physical

import (
	"sort"

	"structream/internal/sql"
	"structream/internal/sql/codec"
)

// BoundSortOrder is one compiled ORDER BY term.
type BoundSortOrder struct {
	Eval func(sql.Row) sql.Value
	Desc bool
}

// SortRows orders rows in place by the given terms (NULLs first on ASC).
func SortRows(rows []sql.Row, orders []BoundSortOrder) {
	sort.SliceStable(rows, func(i, j int) bool {
		for _, o := range orders {
			c := sql.Compare(o.Eval(rows[i]), o.Eval(rows[j]))
			if c == 0 {
				continue
			}
			if o.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
}

// sortOp is the blocking sort operator.
type sortOp struct {
	child  Operator
	orders []BoundSortOrder
	done   bool
}

// NewSort builds a sort operator; orders must be bound against child's
// schema.
func NewSort(child Operator, orders []BoundSortOrder) Operator {
	return &sortOp{child: child, orders: orders}
}

func (s *sortOp) Schema() sql.Schema { return s.child.Schema() }
func (s *sortOp) Open() error        { return s.child.Open() }
func (s *sortOp) Next() ([]sql.Row, error) {
	if s.done {
		return nil, nil
	}
	s.done = true
	var all []sql.Row
	for {
		batch, err := s.child.Next()
		if err != nil {
			return nil, err
		}
		if batch == nil {
			break
		}
		all = append(all, batch...)
	}
	if len(all) == 0 {
		return nil, nil
	}
	SortRows(all, s.orders)
	return all, nil
}
func (s *sortOp) Close() error { return s.child.Close() }

// limitOp truncates the stream to the first n rows.
type limitOp struct {
	child Operator
	n     int64
	seen  int64
}

// NewLimit builds a limit operator.
func NewLimit(child Operator, n int64) Operator {
	return &limitOp{child: child, n: n}
}

func (l *limitOp) Schema() sql.Schema { return l.child.Schema() }
func (l *limitOp) Open() error        { return l.child.Open() }
func (l *limitOp) Next() ([]sql.Row, error) {
	if l.seen >= l.n {
		return nil, nil
	}
	batch, err := l.child.Next()
	if err != nil || batch == nil {
		return nil, err
	}
	if l.seen+int64(len(batch)) > l.n {
		batch = batch[:l.n-l.seen]
	}
	l.seen += int64(len(batch))
	if len(batch) == 0 {
		return nil, nil
	}
	return batch, nil
}
func (l *limitOp) Close() error { return l.child.Close() }

// distinctOp drops duplicate rows using an encoded-key hash set. keyIdxs
// selects the columns forming the duplicate key (nil = whole row), so it
// implements both SELECT DISTINCT and dropDuplicates(cols).
type distinctOp struct {
	child   Operator
	keyIdxs []int
	seen    map[string]bool
}

// NewDistinct builds a streaming-friendly distinct operator (it emits each
// first occurrence as soon as it is seen). keyIdxs selects the key columns;
// nil keys on the whole row.
func NewDistinct(child Operator, keyIdxs []int) Operator {
	return &distinctOp{child: child, keyIdxs: keyIdxs, seen: map[string]bool{}}
}

func (d *distinctOp) Schema() sql.Schema { return d.child.Schema() }
func (d *distinctOp) Open() error        { return d.child.Open() }
func (d *distinctOp) Next() ([]sql.Row, error) {
	for {
		batch, err := d.child.Next()
		if err != nil || batch == nil {
			return nil, err
		}
		out := batch[:0:0]
		for _, r := range batch {
			var ks string
			if d.keyIdxs == nil {
				ks = codec.KeyString(r)
			} else {
				ks = codec.KeyString(r.Project(d.keyIdxs))
			}
			if !d.seen[ks] {
				d.seen[ks] = true
				out = append(out, r)
			}
		}
		if len(out) > 0 {
			return out, nil
		}
	}
}
func (d *distinctOp) Close() error { return d.child.Close() }
