// Package physical implements batch physical execution: compiling an
// optimized logical plan into a tree of pull-based operators that process
// row batches. Chains of filters, projections and window assignment fuse
// into single per-batch closures — the engine's stand-in for Spark's
// whole-stage code generation — so the hot path touches each row once with
// no per-operator interpretation.
package physical

import (
	"structream/internal/sql"
)

// Operator is a pull-based physical operator producing row batches.
type Operator interface {
	// Schema is the operator's output schema.
	Schema() sql.Schema
	// Open prepares the operator (and its children) for iteration.
	Open() error
	// Next returns the next batch of rows; (nil, nil) signals exhaustion.
	Next() ([]sql.Row, error)
	// Close releases resources. Close is idempotent.
	Close() error
}

// RowSource supplies input rows to a Scan leaf: a static table, one
// microbatch epoch of a stream, or a file segment.
type RowSource interface {
	Schema() sql.Schema
	// Next returns the next batch; (nil, nil) at the end.
	Next() ([]sql.Row, error)
	Close() error
}

// SliceSource is a RowSource over an in-memory row slice, batching output.
type SliceSource struct {
	Sch   sql.Schema
	Rows  []sql.Row
	Batch int
	pos   int
}

// NewSliceSource builds a RowSource over rows with a default batch size.
func NewSliceSource(schema sql.Schema, rows []sql.Row) *SliceSource {
	return &SliceSource{Sch: schema, Rows: rows, Batch: 1024}
}

// Schema returns the source schema.
func (s *SliceSource) Schema() sql.Schema { return s.Sch }

// Next returns the next batch of rows.
func (s *SliceSource) Next() ([]sql.Row, error) {
	if s.pos >= len(s.Rows) {
		return nil, nil
	}
	end := s.pos + s.Batch
	if s.Batch <= 0 || end > len(s.Rows) {
		end = len(s.Rows)
	}
	out := s.Rows[s.pos:end]
	s.pos = end
	return out, nil
}

// Close resets the source position.
func (s *SliceSource) Close() error {
	s.pos = len(s.Rows)
	return nil
}

// Drain pulls every batch from an operator, returning all rows. It opens
// and closes the operator.
func Drain(op Operator) ([]sql.Row, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	var out []sql.Row
	for {
		batch, err := op.Next()
		if err != nil {
			return nil, err
		}
		if batch == nil {
			return out, nil
		}
		out = append(out, batch...)
	}
}

// ---------------------------------------------------------------- scan

type scanOp struct {
	src    RowSource
	schema sql.Schema
}

// NewScan wraps a RowSource as an operator.
func NewScan(src RowSource) Operator {
	return &scanOp{src: src, schema: src.Schema()}
}

func (s *scanOp) Schema() sql.Schema { return s.schema }
func (s *scanOp) Open() error        { return nil }
func (s *scanOp) Next() ([]sql.Row, error) {
	return s.src.Next()
}
func (s *scanOp) Close() error { return s.src.Close() }

// ---------------------------------------------------------------- fused

// BatchFunc transforms one row batch into another; fused pipelines compose
// these into a single function per chain.
type BatchFunc func(rows []sql.Row) []sql.Row

// fusedOp applies a composed batch function to every child batch. Empty
// result batches are skipped rather than returned (a nil batch means EOF).
type fusedOp struct {
	child  Operator
	fn     BatchFunc
	schema sql.Schema
}

// NewFused builds a fused pipeline stage over child. When child is itself a
// fused operator the two compose into one node, keeping the chain flat.
// Alias (schema-renaming) operators are transparent: rows are identical, so
// fusion sees through them.
func NewFused(child Operator, schema sql.Schema, fn BatchFunc) Operator {
	for {
		a, ok := child.(*aliasOp)
		if !ok {
			break
		}
		child = a.child
	}
	if f, ok := child.(*fusedOp); ok {
		inner := f.fn
		outer := fn
		return &fusedOp{
			child:  f.child,
			schema: schema,
			fn: func(rows []sql.Row) []sql.Row {
				return outer(inner(rows))
			},
		}
	}
	return &fusedOp{child: child, fn: fn, schema: schema}
}

func (f *fusedOp) Schema() sql.Schema { return f.schema }
func (f *fusedOp) Open() error        { return f.child.Open() }
func (f *fusedOp) Next() ([]sql.Row, error) {
	for {
		batch, err := f.child.Next()
		if err != nil || batch == nil {
			return nil, err
		}
		out := f.fn(batch)
		if len(out) > 0 {
			return out, nil
		}
	}
}
func (f *fusedOp) Close() error { return f.child.Close() }

// FilterFunc builds a BatchFunc retaining rows where pred is true.
func FilterFunc(pred func(sql.Row) sql.Value) BatchFunc {
	return func(rows []sql.Row) []sql.Row {
		out := rows[:0:0]
		for _, r := range rows {
			if b, ok := pred(r).(bool); ok && b {
				out = append(out, r)
			}
		}
		return out
	}
}

// RowArena carves fixed-width rows out of slab allocations, turning
// per-row mallocs into one allocation per ~4k rows. This is the engine's
// batch-granularity analogue of Tungsten's row buffers: the dominant cost
// the paper attributes to record-at-a-time engines is exactly this per-row
// overhead.
type RowArena struct {
	width int
	slab  []sql.Value
}

// NewRowArena creates an arena producing rows of the given width.
func NewRowArena(width int) *RowArena { return &RowArena{width: width} }

// Next returns a fresh zeroed row from the arena.
func (a *RowArena) Next() sql.Row {
	if len(a.slab) < a.width {
		n := 4096 * a.width
		if n < a.width {
			n = a.width
		}
		a.slab = make([]sql.Value, n)
	}
	row := a.slab[:a.width:a.width]
	a.slab = a.slab[a.width:]
	return row
}

// ProjectFunc builds a BatchFunc computing the given expressions per row.
func ProjectFunc(evals []func(sql.Row) sql.Value) BatchFunc {
	arena := NewRowArena(len(evals))
	return func(rows []sql.Row) []sql.Row {
		out := make([]sql.Row, len(rows))
		for i, r := range rows {
			nr := arena.Next()
			for j, e := range evals {
				nr[j] = e(r)
			}
			out[i] = nr
		}
		return out
	}
}

// WindowAssignFunc builds a BatchFunc appending a window column, exploding
// rows into one output per containing window for sliding specs. The boxed
// window value is cached across consecutive rows: event times usually
// arrive roughly ordered, so most rows share the previous row's window and
// skip the interface allocation.
func WindowAssignFunc(timeEval func(sql.Row) sql.Value, w *sql.WindowExpr) BatchFunc {
	tumbling := w.Size == w.Slide
	size, slide := w.Size, w.Slide
	var cachedStart int64 = -1 << 62
	var cached sql.Value
	var arena *RowArena
	return func(rows []sql.Row) []sql.Row {
		out := make([]sql.Row, 0, len(rows))
		for _, r := range rows {
			ts, ok := timeEval(r).(int64)
			if !ok {
				continue // NULL event times drop, as in Spark
			}
			if arena == nil {
				arena = NewRowArena(len(r) + 1)
			}
			if tumbling {
				start := ts - ((ts%slide)+slide)%slide
				if start != cachedStart {
					cachedStart = start
					cached = sql.Window{Start: start, End: start + size}
				}
				nr := arena.Next()
				copy(nr, r)
				nr[len(r)] = cached
				out = append(out, nr)
				continue
			}
			for _, win := range w.Windows(ts) {
				nr := arena.Next()
				copy(nr, r)
				nr[len(r)] = win
				out = append(out, nr)
			}
		}
		return out
	}
}

// ---------------------------------------------------------------- union

type unionOp struct {
	children []Operator
	idx      int
	schema   sql.Schema
}

// NewUnion concatenates the outputs of several children (UNION ALL).
func NewUnion(schema sql.Schema, children ...Operator) Operator {
	return &unionOp{children: children, schema: schema}
}

func (u *unionOp) Schema() sql.Schema { return u.schema }
func (u *unionOp) Open() error {
	for _, c := range u.children {
		if err := c.Open(); err != nil {
			return err
		}
	}
	return nil
}
func (u *unionOp) Next() ([]sql.Row, error) {
	for u.idx < len(u.children) {
		batch, err := u.children[u.idx].Next()
		if err != nil {
			return nil, err
		}
		if batch != nil {
			return batch, nil
		}
		u.idx++
	}
	return nil, nil
}
func (u *unionOp) Close() error {
	var first error
	for _, c := range u.children {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ---------------------------------------------------------------- alias

// aliasOp renames the schema (SubqueryAlias); rows pass through untouched.
type aliasOp struct {
	child  Operator
	schema sql.Schema
}

// NewAlias wraps child with a different (qualified) schema.
func NewAlias(child Operator, schema sql.Schema) Operator {
	return &aliasOp{child: child, schema: schema}
}

func (a *aliasOp) Schema() sql.Schema       { return a.schema }
func (a *aliasOp) Open() error              { return a.child.Open() }
func (a *aliasOp) Next() ([]sql.Row, error) { return a.child.Next() }
func (a *aliasOp) Close() error             { return a.child.Close() }
