package physical

import (
	"fmt"

	"structream/internal/sql"
	"structream/internal/sql/codec"
	"structream/internal/sql/logical"
)

// EquiKeys is the result of analyzing a join condition: matching key
// expression pairs (left side, right side) plus any residual predicate that
// must be evaluated on the concatenated row.
type EquiKeys struct {
	Left     []sql.Expr
	Right    []sql.Expr
	Residual sql.Expr // nil when the condition is a pure equi-join
}

// ExtractEquiKeys splits a join condition into equi-join key pairs and a
// residual. A conjunct "l = r" becomes a key pair when one side resolves
// entirely against the left schema and the other against the right.
func ExtractEquiKeys(cond sql.Expr, left, right sql.Schema) EquiKeys {
	var out EquiKeys
	var residuals []sql.Expr
	for _, c := range splitConjuncts(cond) {
		b, ok := c.(*sql.Binary)
		if ok && b.Op == sql.OpEq {
			switch {
			case coveredBy(b.L, left) && coveredBy(b.R, right):
				out.Left = append(out.Left, b.L)
				out.Right = append(out.Right, b.R)
				continue
			case coveredBy(b.L, right) && coveredBy(b.R, left):
				out.Left = append(out.Left, b.R)
				out.Right = append(out.Right, b.L)
				continue
			}
		}
		residuals = append(residuals, c)
	}
	for _, r := range residuals {
		if out.Residual == nil {
			out.Residual = r
		} else {
			out.Residual = sql.And(out.Residual, r)
		}
	}
	return out
}

func splitConjuncts(e sql.Expr) []sql.Expr {
	if b, ok := e.(*sql.Binary); ok && b.Op == sql.OpAnd {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []sql.Expr{e}
}

func coveredBy(e sql.Expr, s sql.Schema) bool {
	ok := true
	found := false
	sql.WalkExpr(e, func(x sql.Expr) {
		if c, isCol := x.(*sql.Column); isCol {
			found = true
			if _, err := s.Resolve(c.Name); err != nil {
				ok = false
			}
		}
	})
	return ok && found
}

// joinOp is a blocking hash join: it builds a hash table over the right
// child, then streams the left child through it.
type joinOp struct {
	left, right Operator
	typ         logical.JoinType
	schema      sql.Schema

	leftKeys   []func(sql.Row) sql.Value
	rightKeys  []func(sql.Row) sql.Value
	residual   func(sql.Row) sql.Value // over concatenated row; may be nil
	rightArity int

	table            map[string][]sql.Row
	rightMatched     map[string][]bool // for right/full outer
	opened           bool
	leftDone         bool
	emittedUnmatched bool
}

// NewHashJoin compiles a join. cond may be nil for a cross join (batch
// only). The child operators must already produce qualified schemas.
func NewHashJoin(left, right Operator, typ logical.JoinType, cond sql.Expr, schema sql.Schema) (Operator, error) {
	j := &joinOp{left: left, right: right, typ: typ, schema: schema,
		rightArity: right.Schema().Len()}
	if cond != nil {
		keys := ExtractEquiKeys(cond, left.Schema(), right.Schema())
		for _, e := range keys.Left {
			b, err := e.Bind(left.Schema())
			if err != nil {
				return nil, err
			}
			j.leftKeys = append(j.leftKeys, b.Eval)
		}
		for _, e := range keys.Right {
			b, err := e.Bind(right.Schema())
			if err != nil {
				return nil, err
			}
			j.rightKeys = append(j.rightKeys, b.Eval)
		}
		if keys.Residual != nil {
			concat := left.Schema().Concat(right.Schema())
			b, err := keys.Residual.Bind(concat)
			if err != nil {
				return nil, err
			}
			j.residual = b.Eval
		}
	} else if typ != logical.InnerJoin {
		return nil, fmt.Errorf("physical: %s join requires a condition", typ)
	}
	return j, nil
}

func (j *joinOp) Schema() sql.Schema { return j.schema }

func (j *joinOp) Open() error {
	if err := j.left.Open(); err != nil {
		return err
	}
	if err := j.right.Open(); err != nil {
		return err
	}
	// Build phase over the right child.
	j.table = map[string][]sql.Row{}
	j.rightMatched = map[string][]bool{}
	for {
		batch, err := j.right.Next()
		if err != nil {
			return err
		}
		if batch == nil {
			break
		}
		for _, r := range batch {
			ks := j.rightKeyString(r)
			j.table[ks] = append(j.table[ks], r)
			j.rightMatched[ks] = append(j.rightMatched[ks], false)
		}
	}
	j.opened = true
	return nil
}

func (j *joinOp) rightKeyString(r sql.Row) string {
	if len(j.rightKeys) == 0 {
		return "" // cross join: single bucket
	}
	key := make([]sql.Value, len(j.rightKeys))
	for i, e := range j.rightKeys {
		key[i] = e(r)
	}
	return codec.KeyString(key)
}

func (j *joinOp) leftKeyString(r sql.Row) (string, bool) {
	if len(j.leftKeys) == 0 {
		return "", true
	}
	key := make([]sql.Value, len(j.leftKeys))
	for i, e := range j.leftKeys {
		key[i] = e(r)
		if key[i] == nil {
			return "", false // NULL keys never match
		}
	}
	return codec.KeyString(key), true
}

func (j *joinOp) Next() ([]sql.Row, error) {
	if !j.leftDone {
		for {
			batch, err := j.left.Next()
			if err != nil {
				return nil, err
			}
			if batch == nil {
				j.leftDone = true
				break
			}
			out := j.probeBatch(batch)
			if len(out) > 0 {
				return out, nil
			}
		}
	}
	// Right/full outer: emit unmatched right rows null-padded on the left.
	if !j.emittedUnmatched && (j.typ == logical.RightOuterJoin || j.typ == logical.FullOuterJoin) {
		j.emittedUnmatched = true
		leftArity := j.left.Schema().Len()
		var out []sql.Row
		for ks, rows := range j.table {
			for i, r := range rows {
				if !j.rightMatched[ks][i] {
					nr := make(sql.Row, leftArity+len(r))
					copy(nr[leftArity:], r)
					out = append(out, nr)
				}
			}
		}
		if len(out) > 0 {
			return out, nil
		}
	}
	return nil, nil
}

// probeBatch joins one batch of left rows against the build table.
func (j *joinOp) probeBatch(batch []sql.Row) []sql.Row {
	var out []sql.Row
	for _, l := range batch {
		ks, valid := j.leftKeyString(l)
		matched := false
		if valid {
			rows := j.table[ks]
			for i, r := range rows {
				joined := append(append(make(sql.Row, 0, len(l)+len(r)), l...), r...)
				if j.residual != nil {
					if b, ok := j.residual(joined).(bool); !ok || !b {
						continue
					}
				}
				matched = true
				j.rightMatched[ks][i] = true
				switch j.typ {
				case logical.LeftSemiJoin:
					// emit left row once below
				case logical.LeftAntiJoin:
					// matched anti rows are dropped below
				default:
					out = append(out, joined)
				}
				if j.typ == logical.LeftSemiJoin {
					break
				}
			}
		}
		switch j.typ {
		case logical.LeftOuterJoin, logical.FullOuterJoin:
			if !matched {
				nr := make(sql.Row, len(l)+j.rightArity)
				copy(nr, l)
				out = append(out, nr)
			}
		case logical.LeftSemiJoin:
			if matched {
				out = append(out, l)
			}
		case logical.LeftAntiJoin:
			if !matched {
				out = append(out, l)
			}
		}
	}
	return out
}

func (j *joinOp) Close() error {
	err1 := j.left.Close()
	err2 := j.right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}
