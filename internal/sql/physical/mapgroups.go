package physical

import (
	"time"

	"structream/internal/sql"
	"structream/internal/sql/codec"
	"structream/internal/sql/logical"
)

// GroupStateImpl is the concrete logical.GroupState handle. The batch
// operator uses it directly (state never pre-exists and timeouts never
// fire, per §4.3.2: "in batch mode the update function is called once");
// the streaming stateful operator loads/saves it against the state store.
type GroupStateImpl struct {
	StateRow   sql.Row
	Present    bool
	Removed    bool
	Dirty      bool
	TimeoutAt  int64 // µs; 0 = no timeout armed
	TimedOut   bool
	WM         int64 // current event-time watermark, µs
	Now        int64 // current processing time, µs
	EventTimed bool  // event-time (vs processing-time) timeout semantics
}

// Exists reports whether state is stored for the key.
func (g *GroupStateImpl) Exists() bool { return g.Present && !g.Removed }

// Get returns the state row, nil when absent.
func (g *GroupStateImpl) Get() sql.Row {
	if !g.Exists() {
		return nil
	}
	return g.StateRow
}

// Update replaces the state row.
func (g *GroupStateImpl) Update(state sql.Row) {
	g.StateRow = state
	g.Present = true
	g.Removed = false
	g.Dirty = true
}

// Remove drops the key's state.
func (g *GroupStateImpl) Remove() {
	g.Removed = true
	g.Dirty = true
	g.StateRow = nil
}

// SetTimeoutDuration arms a processing-time timeout d from now.
func (g *GroupStateImpl) SetTimeoutDuration(d time.Duration) {
	g.TimeoutAt = g.Now + d.Microseconds()
	g.Dirty = true
}

// SetTimeoutTimestamp arms an event-time timeout: the key times out when
// the watermark passes us.
func (g *GroupStateImpl) SetTimeoutTimestamp(us int64) {
	g.TimeoutAt = us
	g.EventTimed = true
	g.Dirty = true
}

// HasTimedOut reports whether this call is a timeout callback.
func (g *GroupStateImpl) HasTimedOut() bool { return g.TimedOut }

// Watermark returns the current event-time watermark in µs.
func (g *GroupStateImpl) Watermark() int64 { return g.WM }

// ProcessingTime returns the current processing time in µs.
func (g *GroupStateImpl) ProcessingTime() int64 { return g.Now }

// mapGroupsOp executes flatMapGroupsWithState in batch mode: all rows for a
// key are collected and the update function is invoked exactly once per key
// with empty initial state.
type mapGroupsOp struct {
	child    Operator
	keyEvals []func(sql.Row) sql.Value
	fn       logical.UpdateFunc
	schema   sql.Schema
	done     bool
}

// NewMapGroupsBatch builds the batch-mode stateful operator.
func NewMapGroupsBatch(child Operator, schema sql.Schema, keyEvals []func(sql.Row) sql.Value, fn logical.UpdateFunc) Operator {
	return &mapGroupsOp{child: child, keyEvals: keyEvals, fn: fn, schema: schema}
}

func (m *mapGroupsOp) Schema() sql.Schema { return m.schema }
func (m *mapGroupsOp) Open() error        { return m.child.Open() }

func (m *mapGroupsOp) Next() ([]sql.Row, error) {
	if m.done {
		return nil, nil
	}
	m.done = true
	type group struct {
		key  sql.Row
		rows []sql.Row
	}
	groups := map[string]*group{}
	var order []string
	for {
		batch, err := m.child.Next()
		if err != nil {
			return nil, err
		}
		if batch == nil {
			break
		}
		for _, r := range batch {
			key := make(sql.Row, len(m.keyEvals))
			for i, e := range m.keyEvals {
				key[i] = e(r)
			}
			ks := codec.KeyString(key)
			g, ok := groups[ks]
			if !ok {
				g = &group{key: key}
				groups[ks] = g
				order = append(order, ks)
			}
			g.rows = append(g.rows, r)
		}
	}
	now := time.Now().UnixMicro()
	var out []sql.Row
	for _, ks := range order {
		g := groups[ks]
		state := &GroupStateImpl{Now: now}
		out = append(out, m.fn(g.key, g.rows, state)...)
	}
	if len(out) == 0 {
		return nil, nil
	}
	return out, nil
}

func (m *mapGroupsOp) Close() error { return m.child.Close() }
