package physical

import (
	"fmt"
	"testing"

	"structream/internal/sql"
	"structream/internal/sql/codec"
)

// Micro-benchmarks quantifying the execution-layer design choices that
// produce the Fig 6a gap: slab-allocated rows vs per-row allocation, and
// alloc-free hash-aggregation key lookups vs naive per-row key strings.
// Run with: go test ./internal/sql/physical -bench Ablation -benchmem

func benchRows(n int) []sql.Row {
	rows := make([]sql.Row, n)
	for i := range rows {
		rows[i] = sql.Row{fmt.Sprintf("k%d", i%100), int64(i), float64(i)}
	}
	return rows
}

func BenchmarkAblationProjectArena(b *testing.B) {
	rows := benchRows(10_000)
	evals := []func(sql.Row) sql.Value{
		func(r sql.Row) sql.Value { return r[0] },
		func(r sql.Row) sql.Value { return r[2] },
	}
	fn := ProjectFunc(evals)
	b.ReportAllocs()
	b.SetBytes(int64(len(rows)))
	for i := 0; i < b.N; i++ {
		fn(rows)
	}
}

// BenchmarkAblationProjectPerRowAlloc is the same projection with the
// naive one-make-per-row strategy the arena replaced.
func BenchmarkAblationProjectPerRowAlloc(b *testing.B) {
	rows := benchRows(10_000)
	evals := []func(sql.Row) sql.Value{
		func(r sql.Row) sql.Value { return r[0] },
		func(r sql.Row) sql.Value { return r[2] },
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(rows)))
	for i := 0; i < b.N; i++ {
		out := make([]sql.Row, len(rows))
		for j, r := range rows {
			nr := make(sql.Row, len(evals))
			for k, e := range evals {
				nr[k] = e(r)
			}
			out[j] = nr
		}
		_ = out
	}
}

func BenchmarkAblationHashAggScratchKey(b *testing.B) {
	rows := benchRows(10_000)
	schema := sql.NewSchema(
		sql.Field{Name: "k", Type: sql.TypeString},
		sql.Field{Name: "n", Type: sql.TypeInt64},
		sql.Field{Name: "v", Type: sql.TypeFloat64},
	)
	agg, err := sql.CountAll().BindAgg(schema)
	if err != nil {
		b.Fatal(err)
	}
	keyEval := []func(sql.Row) sql.Value{func(r sql.Row) sql.Value { return r[0] }}
	b.ReportAllocs()
	b.SetBytes(int64(len(rows)))
	for i := 0; i < b.N; i++ {
		h := NewHashAggregator(keyEval, []sql.BoundAgg{agg})
		for _, r := range rows {
			h.Update(r)
		}
	}
}

// BenchmarkAblationHashAggNaiveKey allocates a key slice and key string
// per row — the strategy the scratch-encoder lookup replaced.
func BenchmarkAblationHashAggNaiveKey(b *testing.B) {
	rows := benchRows(10_000)
	b.ReportAllocs()
	b.SetBytes(int64(len(rows)))
	for i := 0; i < b.N; i++ {
		groups := map[string]int64{}
		for _, r := range rows {
			key := make([]sql.Value, 1)
			key[0] = r[0]
			groups[codec.KeyString(key)]++
		}
		_ = groups
	}
}

func BenchmarkFusedFilterProjectPipeline(b *testing.B) {
	rows := benchRows(10_000)
	src := NewSliceSource(sql.NewSchema(
		sql.Field{Name: "k", Type: sql.TypeString},
		sql.Field{Name: "n", Type: sql.TypeInt64},
		sql.Field{Name: "v", Type: sql.TypeFloat64},
	), rows)
	b.ReportAllocs()
	b.SetBytes(int64(len(rows)))
	for i := 0; i < b.N; i++ {
		src2 := NewSliceSource(src.Sch, rows)
		op := NewFused(
			NewFused(NewScan(src2), src.Sch, FilterFunc(func(r sql.Row) sql.Value {
				return r[1].(int64)%2 == int64(0)
			})),
			src.Sch,
			ProjectFunc([]func(sql.Row) sql.Value{func(r sql.Row) sql.Value { return r[0] }}),
		)
		if _, err := Drain(op); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashJoinBuildProbe(b *testing.B) {
	leftSchema := sql.NewSchema(
		sql.Field{Name: "a", Type: sql.TypeInt64},
		sql.Field{Name: "x", Type: sql.TypeString},
	)
	rightSchema := sql.NewSchema(
		sql.Field{Name: "b", Type: sql.TypeInt64},
		sql.Field{Name: "y", Type: sql.TypeString},
	)
	var left, right []sql.Row
	for i := 0; i < 5000; i++ {
		left = append(left, sql.Row{int64(i % 1000), "l"})
	}
	for i := 0; i < 1000; i++ {
		right = append(right, sql.Row{int64(i), "r"})
	}
	cond := sql.Eq(sql.Col("a"), sql.Col("b"))
	b.ReportAllocs()
	b.SetBytes(int64(len(left)))
	for i := 0; i < b.N; i++ {
		j, err := NewHashJoin(
			NewScan(NewSliceSource(leftSchema, left)),
			NewScan(NewSliceSource(rightSchema, right)),
			0, cond, leftSchema.Concat(rightSchema))
		if err != nil {
			b.Fatal(err)
		}
		rows, err := Drain(j)
		if err != nil || len(rows) != 5000 {
			b.Fatalf("rows=%d err=%v", len(rows), err)
		}
	}
}
