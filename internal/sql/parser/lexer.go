// Package parser implements the SQL dialect of structream: a hand-written
// lexer and recursive-descent parser producing logical plans. The dialect
// covers the query shapes the paper's engine supports (§5.2): selections,
// projections, DISTINCT, joins, one aggregation with GROUP BY/HAVING,
// ORDER BY, LIMIT, event-time window() grouping and watermark hints.
package parser

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokKeyword
	tokSymbol
)

// token is one lexical token with its source position for error messages.
type token struct {
	kind tokenKind
	text string // keywords are upper-cased; identifiers keep original case
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("'%s'", t.text)
	default:
		return t.text
	}
}

// keywords recognized by the lexer. Anything else alphabetic is an
// identifier.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "AS": true, "AND": true,
	"OR": true, "NOT": true, "NULL": true, "TRUE": true, "FALSE": true,
	"JOIN": true, "INNER": true, "LEFT": true, "RIGHT": true, "FULL": true,
	"OUTER": true, "ON": true, "DISTINCT": true, "CASE": true, "WHEN": true,
	"THEN": true, "ELSE": true, "END": true, "CAST": true, "IN": true,
	"LIKE": true, "BETWEEN": true, "IS": true, "ASC": true, "DESC": true,
	"UNION": true, "ALL": true, "INTERVAL": true, "TIMESTAMP": true,
	"WATERMARK": true, "WITH": true, "SEMI": true, "ANTI": true, "CROSS": true,
}

// lexer scans SQL text into tokens.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the whole input up front; queries are small.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, tok)
		if tok.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	l.skipSpace()
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := l.src[l.pos]
	switch {
	case isIdentStart(rune(c)):
		for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
			l.pos++
		}
		word := l.src[start:l.pos]
		up := strings.ToUpper(word)
		if keywords[up] {
			return token{kind: tokKeyword, text: up, pos: start}, nil
		}
		return token{kind: tokIdent, text: word, pos: start}, nil
	case c >= '0' && c <= '9' || c == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
		seenDot, seenExp := false, false
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch >= '0' && ch <= '9' {
				l.pos++
				continue
			}
			if ch == '.' && !seenDot && !seenExp {
				seenDot = true
				l.pos++
				continue
			}
			if (ch == 'e' || ch == 'E') && !seenExp {
				seenExp = true
				l.pos++
				if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
					l.pos++
				}
				continue
			}
			break
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil
	case c == '\'' || c == '"':
		quote := c
		l.pos++
		var b strings.Builder
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch == quote {
				// Doubled quote is an escaped quote.
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == quote {
					b.WriteByte(quote)
					l.pos += 2
					continue
				}
				l.pos++
				kind := tokString
				if quote == '"' {
					// Double quotes delimit identifiers, as in standard SQL.
					kind = tokIdent
				}
				return token{kind: kind, text: b.String(), pos: start}, nil
			}
			if ch == '\\' && l.pos+1 < len(l.src) {
				l.pos++
				switch l.src[l.pos] {
				case 'n':
					b.WriteByte('\n')
				case 't':
					b.WriteByte('\t')
				default:
					b.WriteByte(l.src[l.pos])
				}
				l.pos++
				continue
			}
			b.WriteByte(ch)
			l.pos++
		}
		return token{}, fmt.Errorf("parser: unterminated string at offset %d", start)
	case c == '`':
		l.pos++
		end := strings.IndexByte(l.src[l.pos:], '`')
		if end < 0 {
			return token{}, fmt.Errorf("parser: unterminated backquoted identifier at offset %d", start)
		}
		text := l.src[l.pos : l.pos+end]
		l.pos += end + 1
		return token{kind: tokIdent, text: text, pos: start}, nil
	default:
		// Multi-character symbols first.
		for _, sym := range []string{"<=", ">=", "<>", "!=", "=="} {
			if strings.HasPrefix(l.src[l.pos:], sym) {
				l.pos += len(sym)
				return token{kind: tokSymbol, text: sym, pos: start}, nil
			}
		}
		if strings.ContainsRune("+-*/%(),=<>.", rune(c)) {
			l.pos++
			return token{kind: tokSymbol, text: string(c), pos: start}, nil
		}
		return token{}, fmt.Errorf("parser: unexpected character %q at offset %d", c, l.pos)
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// Line comments.
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		// Block comments.
		if c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*' {
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.pos = len(l.src)
				return
			}
			l.pos += end + 4
			continue
		}
		return
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
