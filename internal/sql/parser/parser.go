package parser

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"structream/internal/sql"
	"structream/internal/sql/logical"
)

// Catalog resolves table and stream names referenced in FROM clauses to
// leaf plans. The session layer implements it over registered views.
type Catalog interface {
	// ResolveTable returns the leaf plan for a named table or stream.
	ResolveTable(name string) (logical.Plan, error)
}

// Parse parses a SQL query against a catalog and returns its logical plan.
func Parse(src string, catalog Catalog) (logical.Plan, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, catalog: catalog, src: src}
	plan, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, p.errorf("unexpected %s after end of query", p.peek())
	}
	return plan, nil
}

// ParseExpr parses a standalone scalar expression (used by the DataFrame
// API's ExprString helper and by filter pushdown configuration).
func ParseExpr(src string) (sql.Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, p.errorf("unexpected %s after end of expression", p.peek())
	}
	return e, nil
}

type parser struct {
	toks    []token
	pos     int
	catalog Catalog
	src     string
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

// at reports whether the current token matches kind (and text, if given).
func (p *parser) at(kind tokenKind, text string) bool {
	t := p.peek()
	return t.kind == kind && (text == "" || t.text == text)
}

// accept consumes the current token when it matches.
func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.accept(tokKeyword, kw) {
		return p.errorf("expected %s, found %s", kw, p.peek())
	}
	return nil
}

func (p *parser) expectSymbol(sym string) error {
	if !p.accept(tokSymbol, sym) {
		return p.errorf("expected %q, found %s", sym, p.peek())
	}
	return nil
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("parser: %s (at offset %d in %q)",
		fmt.Sprintf(format, args...), p.peek().pos, truncate(p.src, 80))
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

// ---------------------------------------------------------------- query

// parseQuery handles SELECT ... [UNION ALL SELECT ...].
func (p *parser) parseQuery() (logical.Plan, error) {
	left, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "UNION") {
		if !p.accept(tokKeyword, "ALL") {
			return nil, p.errorf("only UNION ALL is supported")
		}
		right, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		left = &logical.Union{Left: left, Right: right}
	}
	return left, nil
}

// selectItem is one SELECT-list entry prior to aggregation splitting.
type selectItem struct {
	expr sql.Expr
	star bool
}

func (p *parser) parseSelect() (logical.Plan, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	distinct := p.accept(tokKeyword, "DISTINCT")

	// SELECT list.
	var items []selectItem
	for {
		if p.accept(tokSymbol, "*") {
			items = append(items, selectItem{star: true})
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if p.accept(tokKeyword, "AS") {
				name := p.advance()
				if name.kind != tokIdent {
					return nil, p.errorf("expected alias name, found %s", name)
				}
				e = sql.As(e, name.text)
			} else if p.at(tokIdent, "") {
				// Implicit alias: SELECT expr name
				e = sql.As(e, p.advance().text)
			}
			items = append(items, selectItem{expr: e})
		}
		if !p.accept(tokSymbol, ",") {
			break
		}
	}

	// FROM.
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	plan, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}

	// Joins.
	for {
		jt, isJoin, err := p.parseJoinType()
		if err != nil {
			return nil, err
		}
		if !isJoin {
			break
		}
		right, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		var cond sql.Expr
		if p.accept(tokKeyword, "ON") {
			cond, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		} else if jt != logical.InnerJoin {
			return nil, p.errorf("%s JOIN requires ON clause", jt)
		}
		plan = &logical.Join{Left: plan, Right: right, Type: jt, Cond: cond}
	}

	// WHERE.
	if p.accept(tokKeyword, "WHERE") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		plan = &logical.Filter{Child: plan, Cond: cond}
	}

	// GROUP BY.
	var groupBy []sql.Expr
	if p.accept(tokKeyword, "GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			groupBy = append(groupBy, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}

	// HAVING.
	var having sql.Expr
	if p.accept(tokKeyword, "HAVING") {
		having, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}

	plan, err = p.buildSelect(plan, items, groupBy, having)
	if err != nil {
		return nil, err
	}
	if distinct {
		plan = &logical.Distinct{Child: plan}
	}

	// ORDER BY.
	if p.accept(tokKeyword, "ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		var orders []logical.SortOrder
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			desc := false
			if p.accept(tokKeyword, "DESC") {
				desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			orders = append(orders, logical.SortOrder{Expr: e, Desc: desc})
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		plan = &logical.Sort{Child: plan, Orders: orders}
	}

	// LIMIT.
	if p.accept(tokKeyword, "LIMIT") {
		t := p.advance()
		if t.kind != tokNumber {
			return nil, p.errorf("expected LIMIT count, found %s", t)
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil || n < 0 {
			return nil, p.errorf("bad LIMIT %q", t.text)
		}
		plan = &logical.Limit{Child: plan, N: n}
	}
	return plan, nil
}

// buildSelect assembles Project/Aggregate nodes from the SELECT list,
// splitting aggregate calls from group keys the way SQL semantics demand.
func (p *parser) buildSelect(child logical.Plan, items []selectItem, groupBy []sql.Expr, having sql.Expr) (logical.Plan, error) {
	hasAgg := having != nil && sql.ContainsAgg(having)
	for _, it := range items {
		if it.expr != nil && sql.ContainsAgg(it.expr) {
			hasAgg = true
		}
	}
	if len(groupBy) == 0 && !hasAgg {
		// Plain projection.
		var exprs []sql.Expr
		for _, it := range items {
			if it.star {
				schema, err := child.Schema()
				if err != nil {
					return nil, err
				}
				for _, name := range schema.Names() {
					exprs = append(exprs, sql.Col(name))
				}
				continue
			}
			exprs = append(exprs, it.expr)
		}
		return &logical.Project{Child: child, Exprs: exprs}, nil
	}

	// Aggregation. Collect aggregate calls from the select list and HAVING,
	// build Aggregate(keys, aggs), then project the final shape on top.
	agg := &logical.Aggregate{Child: child, Keys: groupBy}
	aggNameOf := func(a *sql.AggExpr) string {
		name := fmt.Sprintf("__agg%d", len(agg.Aggs))
		agg.Aggs = append(agg.Aggs, logical.NamedAgg{Agg: a, Name: name})
		return name
	}
	// replaceAggs swaps AggExpr subtrees for references to aggregate output
	// columns, and group-key expressions for their output column names.
	keyName := func(e sql.Expr) (string, bool) {
		for _, k := range groupBy {
			if k.String() == e.String() {
				return sql.OutputName(k), true
			}
		}
		return "", false
	}
	replaceAggs := func(e sql.Expr) (sql.Expr, error) {
		var rewriteErr error
		out := sql.TransformExpr(e, func(x sql.Expr) sql.Expr {
			if a, ok := x.(*sql.AggExpr); ok {
				return sql.Col(aggNameOf(a))
			}
			if name, ok := keyName(x); ok {
				if _, isCol := x.(*sql.Column); !isCol {
					return sql.Col(name)
				}
			}
			return x
		})
		return out, rewriteErr
	}

	var finalExprs []sql.Expr
	for _, it := range items {
		if it.star {
			return nil, p.errorf("SELECT * cannot be combined with GROUP BY")
		}
		name := sql.OutputName(it.expr)
		rewritten, err := replaceAggs(it.expr)
		if err != nil {
			return nil, err
		}
		finalExprs = append(finalExprs, sql.As(rewritten, name))
	}
	var plan logical.Plan = agg
	if having != nil {
		h, err := replaceAggs(having)
		if err != nil {
			return nil, err
		}
		plan = &logical.Filter{Child: plan, Cond: h}
	}
	return &logical.Project{Child: plan, Exprs: finalExprs}, nil
}

// parseJoinType consumes a join prefix if present.
func (p *parser) parseJoinType() (logical.JoinType, bool, error) {
	switch {
	case p.accept(tokKeyword, "JOIN"), func() bool {
		if p.at(tokKeyword, "INNER") {
			p.advance()
			return true
		}
		return false
	}():
		if p.peek().kind == tokKeyword && p.peek().text == "JOIN" {
			p.advance()
		}
		return logical.InnerJoin, true, nil
	case p.accept(tokKeyword, "LEFT"):
		p.accept(tokKeyword, "OUTER")
		if p.accept(tokKeyword, "SEMI") {
			if err := p.expectKeyword("JOIN"); err != nil {
				return 0, false, err
			}
			return logical.LeftSemiJoin, true, nil
		}
		if p.accept(tokKeyword, "ANTI") {
			if err := p.expectKeyword("JOIN"); err != nil {
				return 0, false, err
			}
			return logical.LeftAntiJoin, true, nil
		}
		if err := p.expectKeyword("JOIN"); err != nil {
			return 0, false, err
		}
		return logical.LeftOuterJoin, true, nil
	case p.accept(tokKeyword, "RIGHT"):
		p.accept(tokKeyword, "OUTER")
		if err := p.expectKeyword("JOIN"); err != nil {
			return 0, false, err
		}
		return logical.RightOuterJoin, true, nil
	case p.accept(tokKeyword, "FULL"):
		p.accept(tokKeyword, "OUTER")
		if err := p.expectKeyword("JOIN"); err != nil {
			return 0, false, err
		}
		return logical.FullOuterJoin, true, nil
	case p.accept(tokKeyword, "CROSS"):
		if err := p.expectKeyword("JOIN"); err != nil {
			return 0, false, err
		}
		return logical.InnerJoin, true, nil
	default:
		return 0, false, nil
	}
}

// parseTableRef parses a named table (with optional alias) or a
// parenthesized subquery.
func (p *parser) parseTableRef() (logical.Plan, error) {
	if p.accept(tokSymbol, "(") {
		sub, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		alias, ok, err := p.parseAlias()
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, p.errorf("subquery requires an alias")
		}
		return &logical.SubqueryAlias{Child: sub, Alias: alias}, nil
	}
	t := p.advance()
	if t.kind != tokIdent {
		return nil, p.errorf("expected table name, found %s", t)
	}
	if p.catalog == nil {
		return nil, p.errorf("no catalog available to resolve table %q", t.text)
	}
	plan, err := p.catalog.ResolveTable(t.text)
	if err != nil {
		return nil, err
	}
	alias, ok, err := p.parseAlias()
	if err != nil {
		return nil, err
	}
	if ok {
		return &logical.SubqueryAlias{Child: plan, Alias: alias}, nil
	}
	return &logical.SubqueryAlias{Child: plan, Alias: t.text}, nil
}

func (p *parser) parseAlias() (string, bool, error) {
	if p.accept(tokKeyword, "AS") {
		t := p.advance()
		if t.kind != tokIdent {
			return "", false, p.errorf("expected alias, found %s", t)
		}
		return t.text, true, nil
	}
	if p.at(tokIdent, "") {
		return p.advance().text, true, nil
	}
	return "", false, nil
}

// ---------------------------------------------------------------- exprs

// parseExpr parses with precedence: OR < AND < NOT < predicate < additive <
// multiplicative < unary < primary.
func (p *parser) parseExpr() (sql.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (sql.Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = sql.Or(left, right)
	}
	return left, nil
}

func (p *parser) parseAnd() (sql.Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = sql.And(left, right)
	}
	return left, nil
}

func (p *parser) parseNot() (sql.Expr, error) {
	if p.accept(tokKeyword, "NOT") {
		child, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return sql.Not(child), nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (sql.Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(tokSymbol, "="), p.at(tokSymbol, "=="):
			p.advance()
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = sql.Eq(left, r)
		case p.at(tokSymbol, "<>"), p.at(tokSymbol, "!="):
			p.advance()
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = sql.Ne(left, r)
		case p.at(tokSymbol, "<"):
			p.advance()
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = sql.Lt(left, r)
		case p.at(tokSymbol, "<="):
			p.advance()
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = sql.Le(left, r)
		case p.at(tokSymbol, ">"):
			p.advance()
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = sql.Gt(left, r)
		case p.at(tokSymbol, ">="):
			p.advance()
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = sql.Ge(left, r)
		case p.at(tokKeyword, "LIKE"):
			p.advance()
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = sql.NewBinary(sql.OpLike, left, r)
		case p.at(tokKeyword, "BETWEEN"):
			p.advance()
			lo, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("AND"); err != nil {
				return nil, err
			}
			hi, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = sql.And(sql.Ge(left, lo), sql.Le(left, hi))
		case p.at(tokKeyword, "IS"):
			p.advance()
			if p.accept(tokKeyword, "NOT") {
				if err := p.expectKeyword("NULL"); err != nil {
					return nil, err
				}
				left = sql.IsNotNull(left)
			} else {
				if err := p.expectKeyword("NULL"); err != nil {
					return nil, err
				}
				left = sql.IsNull(left)
			}
		case p.at(tokKeyword, "IN"):
			p.advance()
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			var list []sql.Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				list = append(list, e)
				if !p.accept(tokSymbol, ",") {
					break
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			left = &sql.InList{Child: left, List: list}
		case p.at(tokKeyword, "NOT"):
			// "x NOT IN (...)", "x NOT LIKE y", "x NOT BETWEEN a AND b"
			p.advance()
			inner, err := p.parseNotSuffix(left)
			if err != nil {
				return nil, err
			}
			left = sql.Not(inner)
		default:
			return left, nil
		}
	}
}

func (p *parser) parseNotSuffix(left sql.Expr) (sql.Expr, error) {
	switch {
	case p.accept(tokKeyword, "IN"):
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var list []sql.Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &sql.InList{Child: left, List: list}, nil
	case p.accept(tokKeyword, "LIKE"):
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return sql.NewBinary(sql.OpLike, left, r), nil
	case p.accept(tokKeyword, "BETWEEN"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return sql.And(sql.Ge(left, lo), sql.Le(left, hi)), nil
	default:
		return nil, p.errorf("expected IN, LIKE or BETWEEN after NOT, found %s", p.peek())
	}
}

func (p *parser) parseAdditive() (sql.Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(tokSymbol, "+"):
			p.advance()
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = sql.Add(left, r)
		case p.at(tokSymbol, "-"):
			p.advance()
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = sql.Sub(left, r)
		default:
			return left, nil
		}
	}
}

func (p *parser) parseMultiplicative() (sql.Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(tokSymbol, "*"):
			p.advance()
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = sql.Mul(left, r)
		case p.at(tokSymbol, "/"):
			p.advance()
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = sql.Div(left, r)
		case p.at(tokSymbol, "%"):
			p.advance()
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = sql.NewBinary(sql.OpMod, left, r)
		default:
			return left, nil
		}
	}
}

func (p *parser) parseUnary() (sql.Expr, error) {
	if p.accept(tokSymbol, "-") {
		child, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := child.(*sql.Literal); ok {
			switch v := lit.Val.(type) {
			case int64:
				return &sql.Literal{Val: -v, Type: lit.Type}, nil
			case float64:
				return &sql.Literal{Val: -v, Type: lit.Type}, nil
			}
		}
		return sql.Neg(child), nil
	}
	p.accept(tokSymbol, "+")
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (sql.Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		p.advance()
		if !strings.ContainsAny(t.text, ".eE") {
			n, err := strconv.ParseInt(t.text, 10, 64)
			if err == nil {
				return &sql.Literal{Val: n, Type: sql.TypeInt64}, nil
			}
		}
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", t.text)
		}
		return &sql.Literal{Val: f, Type: sql.TypeFloat64}, nil
	case t.kind == tokString:
		p.advance()
		return &sql.Literal{Val: t.text, Type: sql.TypeString}, nil
	case t.kind == tokKeyword:
		switch t.text {
		case "NULL":
			p.advance()
			return &sql.Literal{Val: nil, Type: sql.TypeNull}, nil
		case "TRUE":
			p.advance()
			return &sql.Literal{Val: true, Type: sql.TypeBool}, nil
		case "FALSE":
			p.advance()
			return &sql.Literal{Val: false, Type: sql.TypeBool}, nil
		case "CASE":
			return p.parseCase()
		case "CAST":
			return p.parseCast()
		case "INTERVAL":
			p.advance()
			return p.parseIntervalLiteral()
		case "TIMESTAMP":
			p.advance()
			lit := p.advance()
			if lit.kind != tokString {
				return nil, p.errorf("expected string after TIMESTAMP, found %s", lit)
			}
			us, err := sql.ParseTimestamp(lit.text)
			if err != nil {
				return nil, p.errorf("%v", err)
			}
			return sql.TimestampLit(us), nil
		case "DISTINCT":
			return nil, p.errorf("DISTINCT is only valid directly after SELECT or inside count()")
		}
		return nil, p.errorf("unexpected keyword %s in expression", t.text)
	case t.kind == tokIdent:
		p.advance()
		name := t.text
		// Qualified column a.b
		for p.at(tokSymbol, ".") {
			p.advance()
			part := p.advance()
			if part.kind != tokIdent && part.kind != tokKeyword {
				return nil, p.errorf("expected identifier after '.', found %s", part)
			}
			name += "." + part.text
		}
		if p.at(tokSymbol, "(") {
			return p.parseCall(name)
		}
		return sql.Col(name), nil
	case t.kind == tokSymbol && t.text == "(":
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, p.errorf("unexpected %s in expression", t)
	}
}

// parseCall parses fn(args...), routing aggregate names to AggExpr, the
// window() function to WindowExpr, and everything else to FuncCall.
func (p *parser) parseCall(name string) (sql.Expr, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	lower := strings.ToLower(name)

	// count(*) and count(DISTINCT x).
	if lower == "count" {
		if p.accept(tokSymbol, "*") {
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return sql.CountAll(), nil
		}
		if p.accept(tokKeyword, "DISTINCT") {
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return sql.NewAgg(sql.AggCountDistinct, arg), nil
		}
	}

	var args []sql.Expr
	if !p.at(tokSymbol, ")") {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}

	if kind, ok := sql.AggKindByName(lower); ok {
		if len(args) != 1 {
			return nil, p.errorf("aggregate %s takes exactly one argument", lower)
		}
		return sql.NewAgg(kind, args[0]), nil
	}
	if lower == "window" {
		if len(args) < 2 || len(args) > 3 {
			return nil, p.errorf("window(timeCol, size[, slide]) takes 2 or 3 arguments")
		}
		size, err := intervalArg(args[1])
		if err != nil {
			return nil, p.errorf("window size: %v", err)
		}
		slide := size
		if len(args) == 3 {
			slide, err = intervalArg(args[2])
			if err != nil {
				return nil, p.errorf("window slide: %v", err)
			}
		}
		return &sql.WindowExpr{Time: args[0], Size: size, Slide: slide}, nil
	}
	if !sql.IsScalarFunc(lower) {
		return nil, p.errorf("unknown function %q", name)
	}
	return sql.NewFunc(lower, args...), nil
}

// intervalArg extracts a duration (µs) from an interval or string literal.
func intervalArg(e sql.Expr) (int64, error) {
	lit, ok := e.(*sql.Literal)
	if !ok {
		return 0, fmt.Errorf("must be a literal interval")
	}
	switch v := lit.Val.(type) {
	case int64:
		if lit.Type == sql.TypeInterval {
			return v, nil
		}
		return v * int64(time.Second/time.Microsecond), nil
	case string:
		return sql.ParseInterval(v)
	default:
		return 0, fmt.Errorf("must be an interval literal, got %s", lit)
	}
}

// parseIntervalLiteral handles INTERVAL '10 seconds' and INTERVAL 10 SECONDS
// (the unit keyword form is lexed as an identifier).
func (p *parser) parseIntervalLiteral() (sql.Expr, error) {
	t := p.advance()
	switch t.kind {
	case tokString:
		us, err := sql.ParseInterval(t.text)
		if err != nil {
			return nil, p.errorf("%v", err)
		}
		return sql.IntervalLit(us), nil
	case tokNumber:
		unit := p.advance()
		if unit.kind != tokIdent {
			return nil, p.errorf("expected interval unit after INTERVAL %s", t.text)
		}
		us, err := sql.ParseInterval(t.text + " " + unit.text)
		if err != nil {
			return nil, p.errorf("%v", err)
		}
		return sql.IntervalLit(us), nil
	default:
		return nil, p.errorf("expected interval literal, found %s", t)
	}
}

func (p *parser) parseCase() (sql.Expr, error) {
	if err := p.expectKeyword("CASE"); err != nil {
		return nil, err
	}
	c := &sql.Case{}
	for p.accept(tokKeyword, "WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, sql.WhenClause{When: cond, Then: then})
	}
	if len(c.Whens) == 0 {
		return nil, p.errorf("CASE requires at least one WHEN clause")
	}
	if p.accept(tokKeyword, "ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return c, nil
}

func (p *parser) parseCast() (sql.Expr, error) {
	if err := p.expectKeyword("CAST"); err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	child, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	t := p.advance()
	var typeName string
	switch t.kind {
	case tokIdent:
		typeName = strings.ToLower(t.text)
	case tokKeyword:
		typeName = strings.ToLower(t.text)
	default:
		return nil, p.errorf("expected type name in CAST, found %s", t)
	}
	typ, ok := sql.TypeByName(typeName)
	if !ok {
		return nil, p.errorf("unknown type %q in CAST", typeName)
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return sql.NewCast(child, typ), nil
}
