package parser

import (
	"fmt"
	"strings"
	"testing"

	"structream/internal/sql"
	"structream/internal/sql/logical"
)

// testCatalog resolves a few fixed tables.
type testCatalog struct{}

func (testCatalog) ResolveTable(name string) (logical.Plan, error) {
	switch strings.ToLower(name) {
	case "events":
		return &logical.Scan{Name: "events", Streaming: true, Out: sql.NewSchema(
			sql.Field{Name: "user_id", Type: sql.TypeInt64},
			sql.Field{Name: "country", Type: sql.TypeString},
			sql.Field{Name: "latency", Type: sql.TypeFloat64},
			sql.Field{Name: "time", Type: sql.TypeTimestamp},
		)}, nil
	case "campaigns":
		return &logical.Scan{Name: "campaigns", Out: sql.NewSchema(
			sql.Field{Name: "ad_id", Type: sql.TypeInt64},
			sql.Field{Name: "campaign_id", Type: sql.TypeInt64},
		)}, nil
	default:
		return nil, fmt.Errorf("unknown table %q", name)
	}
}

func mustParse(t *testing.T, src string) logical.Plan {
	t.Helper()
	p, err := Parse(src, testCatalog{})
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return p
}

func mustSchema(t *testing.T, p logical.Plan) sql.Schema {
	t.Helper()
	s, err := p.Schema()
	if err != nil {
		t.Fatalf("Schema: %v (plan:\n%s)", err, logical.Explain(p))
	}
	return s
}

func TestSelectStar(t *testing.T) {
	p := mustParse(t, "SELECT * FROM events")
	s := mustSchema(t, p)
	if s.Len() != 4 {
		t.Errorf("schema = %s", s)
	}
	if _, ok := p.(*logical.Project); !ok {
		t.Errorf("top plan = %T", p)
	}
}

func TestSelectExprsAndAliases(t *testing.T) {
	p := mustParse(t, "SELECT user_id AS uid, latency * 2 doubled, upper(country) FROM events")
	s := mustSchema(t, p)
	want := []string{"uid", "doubled", "upper(country)"}
	for i, name := range want {
		if s.Field(i).Name != name {
			t.Errorf("field %d = %q, want %q", i, s.Field(i).Name, name)
		}
	}
	if s.Field(1).Type != sql.TypeFloat64 {
		t.Errorf("doubled type = %s", s.Field(1).Type)
	}
}

func TestWhereOperatorPrecedence(t *testing.T) {
	p := mustParse(t, "SELECT user_id FROM events WHERE latency > 1 + 2 * 3 AND country = 'CA' OR user_id = 5")
	f := findFilter(p)
	if f == nil {
		t.Fatal("no filter in plan")
	}
	// OR binds loosest: ((latency > 7 AND country='CA') OR user_id=5)
	top, ok := f.Cond.(*sql.Binary)
	if !ok || top.Op != sql.OpOr {
		t.Fatalf("top cond = %s", f.Cond)
	}
	left, ok := top.L.(*sql.Binary)
	if !ok || left.Op != sql.OpAnd {
		t.Fatalf("left of OR = %s", top.L)
	}
	cmp := left.L.(*sql.Binary)
	add := cmp.R.(*sql.Binary)
	if add.Op != sql.OpAdd {
		t.Fatalf("expected 1 + (2*3), got %s", cmp.R)
	}
	if mul, ok := add.R.(*sql.Binary); !ok || mul.Op != sql.OpMul {
		t.Fatalf("* should bind tighter than +: %s", add.R)
	}
}

func findFilter(p logical.Plan) *logical.Filter {
	var out *logical.Filter
	logical.Walk(p, func(n logical.Plan) {
		if f, ok := n.(*logical.Filter); ok && out == nil {
			out = f
		}
	})
	return out
}

func findAggregate(p logical.Plan) *logical.Aggregate {
	var out *logical.Aggregate
	logical.Walk(p, func(n logical.Plan) {
		if a, ok := n.(*logical.Aggregate); ok && out == nil {
			out = a
		}
	})
	return out
}

func TestGroupByCount(t *testing.T) {
	p := mustParse(t, "SELECT country, count(*) AS cnt FROM events GROUP BY country")
	agg := findAggregate(p)
	if agg == nil {
		t.Fatal("no aggregate")
	}
	if len(agg.Keys) != 1 || len(agg.Aggs) != 1 {
		t.Fatalf("agg = %s", agg)
	}
	s := mustSchema(t, p)
	if s.Field(0).Name != "country" || s.Field(1).Name != "cnt" {
		t.Errorf("schema = %s", s)
	}
	if s.Field(1).Type != sql.TypeInt64 {
		t.Errorf("cnt type = %s", s.Field(1).Type)
	}
}

func TestGroupByHaving(t *testing.T) {
	p := mustParse(t, `SELECT country, avg(latency) AS al FROM events
		GROUP BY country HAVING avg(latency) > 100 AND count(*) > 5`)
	s := mustSchema(t, p)
	if s.Len() != 2 {
		t.Errorf("schema = %s", s)
	}
	agg := findAggregate(p)
	// avg appears twice (select + having) and count once; the HAVING avg is
	// a separate buffer, which is acceptable; at minimum 2 aggregates exist.
	if len(agg.Aggs) < 2 {
		t.Errorf("aggs = %v", agg)
	}
}

func TestAggExprArithmetic(t *testing.T) {
	p := mustParse(t, "SELECT sum(latency) / count(*) AS manual_avg FROM events")
	s := mustSchema(t, p)
	if s.Field(0).Name != "manual_avg" || s.Field(0).Type != sql.TypeFloat64 {
		t.Errorf("schema = %s", s)
	}
}

func TestWindowGrouping(t *testing.T) {
	p := mustParse(t, `SELECT window(time, '10 seconds'), count(*) AS cnt
		FROM events GROUP BY window(time, '10 seconds')`)
	agg := findAggregate(p)
	if agg == nil {
		t.Fatal("no aggregate")
	}
	if _, ok := agg.Keys[0].(*sql.WindowExpr); !ok {
		t.Fatalf("group key = %T", agg.Keys[0])
	}
	w := agg.Keys[0].(*sql.WindowExpr)
	if w.Size != 10_000_000 || w.Slide != 10_000_000 {
		t.Errorf("window = %v", w)
	}
}

func TestSlidingWindowCall(t *testing.T) {
	p := mustParse(t, `SELECT count(*) FROM events GROUP BY window(time, '1 hour', '5 minutes')`)
	agg := findAggregate(p)
	w := agg.Keys[0].(*sql.WindowExpr)
	if w.Size != 3_600_000_000 || w.Slide != 300_000_000 {
		t.Errorf("window = %+v", w)
	}
}

func TestJoin(t *testing.T) {
	p := mustParse(t, `SELECT e.user_id, c.campaign_id FROM events e
		JOIN campaigns c ON e.user_id = c.ad_id WHERE c.campaign_id > 10`)
	var join *logical.Join
	logical.Walk(p, func(n logical.Plan) {
		if j, ok := n.(*logical.Join); ok {
			join = j
		}
	})
	if join == nil || join.Type != logical.InnerJoin {
		t.Fatalf("join = %v", join)
	}
	s := mustSchema(t, p)
	if s.Len() != 2 {
		t.Errorf("schema = %s", s)
	}
}

func TestJoinVariants(t *testing.T) {
	for _, c := range []struct {
		sql  string
		want logical.JoinType
	}{
		{"LEFT JOIN", logical.LeftOuterJoin},
		{"LEFT OUTER JOIN", logical.LeftOuterJoin},
		{"RIGHT JOIN", logical.RightOuterJoin},
		{"FULL OUTER JOIN", logical.FullOuterJoin},
		{"INNER JOIN", logical.InnerJoin},
		{"LEFT SEMI JOIN", logical.LeftSemiJoin},
		{"LEFT ANTI JOIN", logical.LeftAntiJoin},
	} {
		p := mustParse(t, fmt.Sprintf(
			"SELECT events.user_id FROM events %s campaigns ON events.user_id = campaigns.ad_id", c.sql))
		var join *logical.Join
		logical.Walk(p, func(n logical.Plan) {
			if j, ok := n.(*logical.Join); ok {
				join = j
			}
		})
		if join == nil || join.Type != c.want {
			t.Errorf("%s: join = %v", c.sql, join)
		}
	}
}

func TestOrderLimitDistinct(t *testing.T) {
	p := mustParse(t, "SELECT DISTINCT country FROM events ORDER BY country DESC LIMIT 10")
	lim, ok := p.(*logical.Limit)
	if !ok || lim.N != 10 {
		t.Fatalf("top = %T", p)
	}
	sort, ok := lim.Child.(*logical.Sort)
	if !ok || !sort.Orders[0].Desc {
		t.Fatalf("sort = %v", lim.Child)
	}
	if _, ok := sort.Child.(*logical.Distinct); !ok {
		t.Fatalf("distinct missing: %T", sort.Child)
	}
}

func TestSubquery(t *testing.T) {
	p := mustParse(t, `SELECT cnt FROM (SELECT country, count(*) AS cnt FROM events GROUP BY country) t WHERE cnt > 3`)
	s := mustSchema(t, p)
	if s.Len() != 1 || s.Field(0).Name != "cnt" {
		t.Errorf("schema = %s", s)
	}
}

func TestUnionAll(t *testing.T) {
	p := mustParse(t, "SELECT country FROM events UNION ALL SELECT country FROM events")
	if _, ok := p.(*logical.Union); !ok {
		t.Fatalf("top = %T", p)
	}
	mustSchema(t, p)
}

func TestLiteralForms(t *testing.T) {
	e, err := ParseExpr("CAST('5' AS bigint) + 2")
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Bind(sql.Schema{})
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Eval(nil); got != int64(7) {
		t.Errorf("eval = %v", got)
	}
	for _, src := range []string{
		"1.5e3", "-42", "TRUE", "FALSE", "NULL", "'str''with quote'",
		"TIMESTAMP '2018-06-10 00:00:00'", "INTERVAL '10 seconds'", "INTERVAL 5 minutes",
	} {
		if _, err := ParseExpr(src); err != nil {
			t.Errorf("ParseExpr(%q): %v", src, err)
		}
	}
}

func TestCaseWhenParsing(t *testing.T) {
	e, err := ParseExpr("CASE WHEN 1 > 2 THEN 'a' WHEN 2 > 1 THEN 'b' ELSE 'c' END")
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Bind(sql.Schema{})
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Eval(nil); got != "b" {
		t.Errorf("CASE = %v", got)
	}
}

func TestPredicateForms(t *testing.T) {
	cases := map[string]any{
		"5 BETWEEN 1 AND 10":     true,
		"5 NOT BETWEEN 1 AND 10": false,
		"'abc' LIKE 'a%'":        true,
		"'abc' NOT LIKE 'a%'":    false,
		"3 IN (1, 2, 3)":         true,
		"3 NOT IN (1, 2)":        true,
		"NULL IS NULL":           true,
		"NULL IS NOT NULL":       false,
		"NOT FALSE":              true,
	}
	for src, want := range cases {
		e, err := ParseExpr(src)
		if err != nil {
			t.Errorf("ParseExpr(%q): %v", src, err)
			continue
		}
		b, err := e.Bind(sql.Schema{})
		if err != nil {
			t.Errorf("Bind(%q): %v", src, err)
			continue
		}
		if got := b.Eval(nil); got != want {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestCountDistinctParsing(t *testing.T) {
	p := mustParse(t, "SELECT count(DISTINCT country) FROM events")
	agg := findAggregate(p)
	if agg.Aggs[0].Agg.Kind != sql.AggCountDistinct {
		t.Errorf("kind = %v", agg.Aggs[0].Agg.Kind)
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	mustParse(t, `-- leading comment
		SELECT country /* block */ FROM events -- trailing`)
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM events",
		"SELECT * FROM",
		"SELECT * FROM nosuchtable",
		"SELECT * FROM events WHERE",
		"SELECT * FROM events LIMIT 'x'",
		"SELECT * FROM events GROUP BY",
		"SELECT a FROM events UNION SELECT a FROM events", // UNION without ALL
		"SELECT no_such_func(1) FROM events",
		"SELECT * FROM (SELECT country FROM events)", // subquery without alias
		"SELECT CASE END FROM events",
		"SELECT * FROM events extra garbage tokens here ~~",
	}
	for _, src := range bad {
		if _, err := Parse(src, testCatalog{}); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestStarWithGroupByRejected(t *testing.T) {
	if _, err := Parse("SELECT * FROM events GROUP BY country", testCatalog{}); err == nil {
		t.Error("SELECT * with GROUP BY should be rejected")
	}
}

func TestUnterminatedString(t *testing.T) {
	if _, err := Parse("SELECT 'oops FROM events", testCatalog{}); err == nil {
		t.Error("unterminated string should be a lex error")
	}
}

func TestBackquotedIdentifier(t *testing.T) {
	p := mustParse(t, "SELECT `country` FROM events")
	s := mustSchema(t, p)
	if s.Field(0).Name != "country" {
		t.Errorf("schema = %s", s)
	}
}
