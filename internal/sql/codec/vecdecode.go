package codec

import (
	"encoding/binary"
	"fmt"
	"math"
	"unsafe"

	"structream/internal/sql/vec"
)

// Typed append methods: each writes exactly the bytes PutValue would for
// the corresponding boxed value, so columnar callers (grouping-key
// encoding, shuffle payloads) can skip boxing without changing a single
// byte on the wire or in state files.

// PutNull appends an SQL NULL.
func (e *Encoder) PutNull() { e.buf = append(e.buf, tagNull) }

// PutBool appends a bool without boxing.
func (e *Encoder) PutBool(v bool) {
	if v {
		e.buf = append(e.buf, tagTrue)
	} else {
		e.buf = append(e.buf, tagFalse)
	}
}

// PutInt64 appends an int64 without boxing.
func (e *Encoder) PutInt64(v int64) {
	e.buf = append(e.buf, tagInt64)
	e.buf = binary.AppendVarint(e.buf, v)
}

// PutFloat64 appends a float64 without boxing.
func (e *Encoder) PutFloat64(v float64) {
	e.buf = append(e.buf, tagFloat64)
	e.buf = binary.BigEndian.AppendUint64(e.buf, math.Float64bits(v))
}

// PutString appends a string without boxing.
func (e *Encoder) PutString(v string) {
	e.buf = append(e.buf, tagString)
	e.buf = binary.AppendUvarint(e.buf, uint64(len(v)))
	e.buf = append(e.buf, v...)
}

// PutWindow appends a window without boxing.
func (e *Encoder) PutWindow(start, end int64) {
	e.buf = append(e.buf, tagWindow)
	e.buf = binary.AppendVarint(e.buf, start)
	e.buf = binary.AppendVarint(e.buf, end)
}

// PutVectorValue appends position i of a column vector, boxing only for
// KindAny columns.
func (e *Encoder) PutVectorValue(v *vec.Vector, i int) {
	if v.Kind != vec.KindAny && v.Nulls.Get(i) {
		e.PutNull()
		return
	}
	switch v.Kind {
	case vec.KindInt64:
		e.PutInt64(v.Int64s[i])
	case vec.KindFloat64:
		e.PutFloat64(v.Float64s[i])
	case vec.KindBool:
		e.PutBool(v.Bools[i])
	case vec.KindString:
		e.PutString(v.Strings[i])
	case vec.KindWindow:
		e.PutWindow(v.WStarts[i], v.WEnds[i])
	default:
		e.PutValue(v.Anys[i])
	}
}

// DecodeRowToBatch decodes one length-prefixed encoded row straight into
// typed column vectors at row slot i — the columnar fast path that skips
// both the per-row sql.Row allocation and per-cell boxing of DecodeRow.
//
//   - added=true, compat=true: the row landed in slot i.
//   - added=false, compat=true: the row is malformed or has the wrong
//     arity; the caller skips it, exactly as the boxed decode path does,
//     and slot i is left clean for reuse.
//   - compat=false: the row is well-formed but a value's wire tag does
//     not match its column's vector kind. Typed vectors cannot represent
//     it, and silently skipping would diverge from the row path (which
//     keeps such rows), so the caller must redo the whole batch boxed.
func DecodeRowToBatch(buf []byte, cols []*vec.Vector, i int, nrows int) (added, compat bool) {
	return decodeRowToBatch(buf, cols, i, nrows, false)
}

// DecodeRowToBatchShared is DecodeRowToBatch with zero-copy strings:
// string cells alias buf instead of copying it, eliminating the one
// remaining per-row allocation on the columnar decode path. The caller
// must guarantee buf is never mutated after the call — the message bus's
// append-once records satisfy this, a reused read buffer does not. The
// garbage collector keeps the backing array live for as long as any
// aliasing string is, so lifetime needs no management beyond that rule.
func DecodeRowToBatchShared(buf []byte, cols []*vec.Vector, i int, nrows int) (added, compat bool) {
	return decodeRowToBatch(buf, cols, i, nrows, true)
}

func decodeRowToBatch(buf []byte, cols []*vec.Vector, i int, nrows int, alias bool) (added, compat bool) {
	n, w := binary.Uvarint(buf)
	pos := w
	if w <= 0 || int(n) != len(cols) {
		return false, true
	}
	for c := 0; c < len(cols); c++ {
		if pos >= len(buf) {
			return abandonRow(cols, i, c)
		}
		tag := buf[pos]
		pos++
		col := cols[c]
		if tag == tagNull {
			if col.Kind == vec.KindAny {
				col.Anys[i] = nil
			} else {
				col.SetNull(i, nrows)
			}
			continue
		}
		switch col.Kind {
		case vec.KindInt64:
			if tag != tagInt64 {
				return false, false
			}
			v, vw := binary.Varint(buf[pos:])
			if vw <= 0 {
				return abandonRow(cols, i, c)
			}
			pos += vw
			col.Int64s[i] = v
		case vec.KindFloat64:
			if tag != tagFloat64 {
				return false, false
			}
			if pos+8 > len(buf) {
				return abandonRow(cols, i, c)
			}
			col.Float64s[i] = math.Float64frombits(binary.BigEndian.Uint64(buf[pos:]))
			pos += 8
		case vec.KindBool:
			switch tag {
			case tagTrue:
				col.Bools[i] = true
			case tagFalse:
				col.Bools[i] = false
			default:
				return false, false
			}
		case vec.KindString:
			if tag != tagString {
				return false, false
			}
			sl, sw := binary.Uvarint(buf[pos:])
			if sw <= 0 || pos+sw+int(sl) > len(buf) {
				return abandonRow(cols, i, c)
			}
			pos += sw
			if alias && sl > 0 {
				col.Strings[i] = unsafe.String(&buf[pos], int(sl))
			} else {
				col.Strings[i] = string(buf[pos : pos+int(sl)])
			}
			pos += int(sl)
		case vec.KindWindow:
			if tag != tagWindow {
				return false, false
			}
			start, w1 := binary.Varint(buf[pos:])
			if w1 <= 0 {
				return abandonRow(cols, i, c)
			}
			pos += w1
			end, w2 := binary.Varint(buf[pos:])
			if w2 <= 0 {
				return abandonRow(cols, i, c)
			}
			pos += w2
			col.WStarts[i] = start
			col.WEnds[i] = end
		default: // KindAny: decode boxed
			d := Decoder{buf: buf, off: pos - 1}
			v, err := d.Value()
			if err != nil {
				return abandonRow(cols, i, c)
			}
			pos = d.off
			col.Anys[i] = v
		}
	}
	return true, true
}

// abandonRow clears any null bits the partial decode left in slot i of
// the first c columns so the slot can host the next record.
func abandonRow(cols []*vec.Vector, i, c int) (bool, bool) {
	for j := 0; j < c; j++ {
		if cols[j].Kind == vec.KindAny {
			cols[j].Anys[i] = nil
		} else {
			cols[j].Nulls.Clear(i)
		}
	}
	return false, true
}

// DecodeColumnToVector decodes a column block — nrows consecutive tagged
// values, the layout colfmt segments store — into a typed vector.
// ok=false (with no error) means a value's wire tag does not match the
// vector's kind, so the caller must decode the column boxed; a malformed
// block is an error, exactly as in DecodeValues.
func DecodeColumnToVector(block []byte, v *vec.Vector, nrows int) (bool, error) {
	pos := 0
	for i := 0; i < nrows; i++ {
		if pos >= len(block) {
			return false, fmt.Errorf("codec: column block truncated at value %d", i)
		}
		tag := block[pos]
		pos++
		if tag == tagNull {
			if v.Kind == vec.KindAny {
				v.Anys[i] = nil
			} else {
				v.SetNull(i, nrows)
			}
			continue
		}
		switch v.Kind {
		case vec.KindInt64:
			if tag != tagInt64 {
				return false, nil
			}
			val, w := binary.Varint(block[pos:])
			if w <= 0 {
				return false, fmt.Errorf("codec: corrupt varint at value %d", i)
			}
			pos += w
			v.Int64s[i] = val
		case vec.KindFloat64:
			if tag != tagFloat64 {
				return false, nil
			}
			if pos+8 > len(block) {
				return false, fmt.Errorf("codec: truncated float at value %d", i)
			}
			v.Float64s[i] = math.Float64frombits(binary.BigEndian.Uint64(block[pos:]))
			pos += 8
		case vec.KindBool:
			switch tag {
			case tagTrue:
				v.Bools[i] = true
			case tagFalse:
				v.Bools[i] = false
			default:
				return false, nil
			}
		case vec.KindString:
			if tag != tagString {
				return false, nil
			}
			sl, sw := binary.Uvarint(block[pos:])
			if sw <= 0 || pos+sw+int(sl) > len(block) {
				return false, fmt.Errorf("codec: corrupt string at value %d", i)
			}
			pos += sw
			v.Strings[i] = string(block[pos : pos+int(sl)])
			pos += int(sl)
		case vec.KindWindow:
			if tag != tagWindow {
				return false, nil
			}
			start, w1 := binary.Varint(block[pos:])
			if w1 <= 0 {
				return false, fmt.Errorf("codec: corrupt window at value %d", i)
			}
			pos += w1
			end, w2 := binary.Varint(block[pos:])
			if w2 <= 0 {
				return false, fmt.Errorf("codec: corrupt window at value %d", i)
			}
			pos += w2
			v.WStarts[i] = start
			v.WEnds[i] = end
		default: // KindAny: decode boxed
			d := Decoder{buf: block, off: pos - 1}
			val, err := d.Value()
			if err != nil {
				return false, err
			}
			pos = d.off
			v.Anys[i] = val
		}
	}
	if pos != len(block) {
		return false, fmt.Errorf("codec: column block has trailing bytes")
	}
	return true, nil
}

// VectorKeyString appends the encoded form of one grouping key drawn
// from key column vectors at position i, reusing the encoder's buffer.
// The bytes are identical to KeyString over the boxed values.
func VectorKeyString(e *Encoder, keys []*vec.Vector, i int) {
	for _, k := range keys {
		e.PutVectorValue(k, i)
	}
}

// HashVec computes the shuffle-routing hash of the grouping key drawn
// from key column vectors at position i, reusing the encoder's buffer.
// The result equals HashKey over the boxed key values bit for bit — the
// columnar exchange and the row path must route every key to the same
// partition.
func HashVec(e *Encoder, keys []*vec.Vector, i int) uint64 {
	e.Reset()
	VectorKeyString(e, keys, i)
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, b := range e.Bytes() {
		h ^= uint64(b)
		h *= prime
	}
	return h
}
