package codec

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"structream/internal/sql"
)

func TestRowRoundTrip(t *testing.T) {
	rows := []sql.Row{
		{},
		{nil},
		{int64(0), int64(-1), int64(math.MaxInt64), int64(math.MinInt64)},
		{1.5, math.Inf(1), math.Inf(-1), 0.0},
		{"", "hello", "üñïçødé", string([]byte{0, 1, 255})},
		{true, false, nil, int64(42)},
		{sql.Window{Start: -100, End: 100}},
		{[]byte{}, []byte{1, 2, 3}},
	}
	for _, row := range rows {
		enc := EncodeRow(row)
		got, err := DecodeRow(enc)
		if err != nil {
			t.Fatalf("decode %v: %v", row, err)
		}
		if len(got) != len(row) {
			t.Fatalf("arity mismatch: %v vs %v", got, row)
		}
		for i := range row {
			if !valueEq(got[i], row[i]) {
				t.Errorf("row %v: field %d = %v, want %v", row, i, got[i], row[i])
			}
		}
	}
}

func valueEq(a, b sql.Value) bool {
	if ab, ok := a.([]byte); ok {
		bb, ok2 := b.([]byte)
		return ok2 && bytes.Equal(ab, bb)
	}
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a == b
}

func TestNaNRoundTrip(t *testing.T) {
	got, err := DecodeRow(EncodeRow(sql.Row{math.NaN()}))
	if err != nil {
		t.Fatal(err)
	}
	if f, ok := got[0].(float64); !ok || !math.IsNaN(f) {
		t.Errorf("NaN round trip = %v", got[0])
	}
}

func TestMultipleRowsInBuffer(t *testing.T) {
	e := NewEncoder(0)
	e.PutRow(sql.Row{int64(1), "a"})
	e.PutRow(sql.Row{int64(2), "b"})
	d := NewDecoder(e.Bytes())
	r1, err := d.Row()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := d.Row()
	if err != nil {
		t.Fatal(err)
	}
	if r1[1] != "a" || r2[1] != "b" {
		t.Errorf("rows = %v %v", r1, r2)
	}
	if d.Remaining() {
		t.Error("buffer should be exhausted")
	}
}

func TestDecodeTruncated(t *testing.T) {
	enc := EncodeRow(sql.Row{int64(12345), "hello world"})
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeRow(enc[:cut]); err == nil && cut < len(enc) {
			// Some prefixes may decode to a shorter valid row only if the
			// length prefix permits; a row prefix cut mid-value must error.
			row, _ := DecodeRow(enc[:cut])
			if row != nil && len(row) == 2 {
				t.Errorf("truncated buffer at %d decoded fully", cut)
			}
		}
	}
	if _, err := DecodeRow(nil); err == nil {
		t.Error("empty buffer should error")
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := DecodeRow([]byte{0x01, 0xff}); err == nil {
		t.Error("unknown tag should error")
	}
}

func TestKeyStringInjective(t *testing.T) {
	// Pairs that must not collide.
	pairs := [][2][]sql.Value{
		{{"ab", "c"}, {"a", "bc"}},
		{{int64(1)}, {"1"}},
		{{nil}, {""}},
		{{int64(12)}, {int64(1), int64(2)}},
		{{true}, {int64(1)}},
	}
	for _, p := range pairs {
		if KeyString(p[0]) == KeyString(p[1]) {
			t.Errorf("KeyString collision: %v vs %v", p[0], p[1])
		}
	}
}

func TestKeyStringDeterministic(t *testing.T) {
	f := func(a int64, s string, b bool) bool {
		k1 := KeyString([]sql.Value{a, s, b})
		k2 := KeyString([]sql.Value{a, s, b})
		return k1 == k2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashKeyDistribution(t *testing.T) {
	const parts = 8
	counts := make([]int, parts)
	for i := 0; i < 8000; i++ {
		h := HashKey([]sql.Value{int64(i)})
		counts[h%parts]++
	}
	for p, c := range counts {
		if c < 500 || c > 1500 {
			t.Errorf("partition %d has %d of 8000 keys; distribution too skewed", p, c)
		}
	}
}

func TestValuesRoundTrip(t *testing.T) {
	vals := []sql.Value{int64(5), nil, "x", 2.5, true, sql.Window{Start: 1, End: 2}}
	got, err := DecodeValues(EncodeValues(vals))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vals) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range vals {
		if !valueEq(got[i], vals[i]) {
			t.Errorf("field %d: %v != %v", i, got[i], vals[i])
		}
	}
}

func TestEncoderReset(t *testing.T) {
	e := NewEncoder(0)
	e.PutValue(int64(1))
	n := len(e.Bytes())
	e.Reset()
	if len(e.Bytes()) != 0 {
		t.Error("Reset should clear the buffer")
	}
	e.PutValue(int64(1))
	if len(e.Bytes()) != n {
		t.Error("re-encoding after Reset should produce identical length")
	}
}

func BenchmarkEncodeRow(b *testing.B) {
	row := sql.Row{int64(123456), "campaign-42", 3.14159, true, sql.Window{Start: 0, End: 10_000_000}}
	e := NewEncoder(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Reset()
		e.PutRow(row)
	}
}

func BenchmarkDecodeRow(b *testing.B) {
	enc := EncodeRow(sql.Row{int64(123456), "campaign-42", 3.14159, true})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeRow(enc); err != nil {
			b.Fatal(err)
		}
	}
}
