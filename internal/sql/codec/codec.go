// Package codec implements a compact binary encoding for rows and values.
// It plays the role of Spark's Tungsten binary format in the paper: state
// store keys and values, shuffle payloads, and checkpoint files all use this
// encoding instead of boxed Go values, and key encodings are byte-comparable
// for map lookups.
package codec

import (
	"encoding/binary"
	"fmt"
	"math"

	"structream/internal/sql"
)

// Value tags used on the wire. The tag encodes the dynamic type so rows
// round-trip without schema context.
const (
	tagNull byte = iota
	tagFalse
	tagTrue
	tagInt64
	tagFloat64
	tagString
	tagWindow
	tagBinary
)

// Encoder appends encoded values to a reusable buffer.
type Encoder struct{ buf []byte }

// NewEncoder returns an encoder with an optional pre-allocated capacity.
func NewEncoder(capacity int) *Encoder { return &Encoder{buf: make([]byte, 0, capacity)} }

// Reset clears the buffer for reuse.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Bytes returns the encoded bytes. The slice is only valid until the next
// Reset; callers that retain it must copy.
func (e *Encoder) Bytes() []byte { return e.buf }

// PutValue appends one value.
func (e *Encoder) PutValue(v sql.Value) {
	switch x := v.(type) {
	case nil:
		e.buf = append(e.buf, tagNull)
	case bool:
		if x {
			e.buf = append(e.buf, tagTrue)
		} else {
			e.buf = append(e.buf, tagFalse)
		}
	case int64:
		e.buf = append(e.buf, tagInt64)
		e.buf = binary.AppendVarint(e.buf, x)
	case float64:
		e.buf = append(e.buf, tagFloat64)
		e.buf = binary.BigEndian.AppendUint64(e.buf, math.Float64bits(x))
	case string:
		e.buf = append(e.buf, tagString)
		e.buf = binary.AppendUvarint(e.buf, uint64(len(x)))
		e.buf = append(e.buf, x...)
	case sql.Window:
		e.buf = append(e.buf, tagWindow)
		e.buf = binary.AppendVarint(e.buf, x.Start)
		e.buf = binary.AppendVarint(e.buf, x.End)
	case []byte:
		e.buf = append(e.buf, tagBinary)
		e.buf = binary.AppendUvarint(e.buf, uint64(len(x)))
		e.buf = append(e.buf, x...)
	default:
		// Unknown dynamic types degrade to their string form; they are not
		// expected in engine-internal rows.
		s := sql.AsString(v)
		e.buf = append(e.buf, tagString)
		e.buf = binary.AppendUvarint(e.buf, uint64(len(s)))
		e.buf = append(e.buf, s...)
	}
}

// PutRow appends a length-prefixed row.
func (e *Encoder) PutRow(r sql.Row) {
	e.buf = binary.AppendUvarint(e.buf, uint64(len(r)))
	for _, v := range r {
		e.PutValue(v)
	}
}

// EncodeRow encodes a row into a fresh byte slice.
func EncodeRow(r sql.Row) []byte {
	e := NewEncoder(16 * len(r))
	e.PutRow(r)
	return append([]byte(nil), e.Bytes()...)
}

// EncodeValues encodes a value slice without a length prefix appended by the
// caller; used for state-store keys where the arity is fixed.
func EncodeValues(vals []sql.Value) []byte {
	e := NewEncoder(16 * len(vals))
	for _, v := range vals {
		e.PutValue(v)
	}
	return append([]byte(nil), e.Bytes()...)
}

// Decoder reads values back out of an encoded buffer.
type Decoder struct {
	buf []byte
	off int
}

// NewDecoder wraps an encoded buffer.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Remaining reports whether any bytes are left to decode.
func (d *Decoder) Remaining() bool { return d.off < len(d.buf) }

// Value decodes the next value.
func (d *Decoder) Value() (sql.Value, error) {
	if d.off >= len(d.buf) {
		return nil, fmt.Errorf("codec: truncated buffer")
	}
	tag := d.buf[d.off]
	d.off++
	switch tag {
	case tagNull:
		return nil, nil
	case tagFalse:
		return false, nil
	case tagTrue:
		return true, nil
	case tagInt64:
		n, w := binary.Varint(d.buf[d.off:])
		if w <= 0 {
			return nil, fmt.Errorf("codec: bad varint at %d", d.off)
		}
		d.off += w
		return n, nil
	case tagFloat64:
		if d.off+8 > len(d.buf) {
			return nil, fmt.Errorf("codec: truncated float at %d", d.off)
		}
		bits := binary.BigEndian.Uint64(d.buf[d.off:])
		d.off += 8
		return math.Float64frombits(bits), nil
	case tagString:
		n, w := binary.Uvarint(d.buf[d.off:])
		if w <= 0 || d.off+w+int(n) > len(d.buf) {
			return nil, fmt.Errorf("codec: bad string at %d", d.off)
		}
		d.off += w
		s := string(d.buf[d.off : d.off+int(n)])
		d.off += int(n)
		return s, nil
	case tagWindow:
		start, w1 := binary.Varint(d.buf[d.off:])
		if w1 <= 0 {
			return nil, fmt.Errorf("codec: bad window at %d", d.off)
		}
		d.off += w1
		end, w2 := binary.Varint(d.buf[d.off:])
		if w2 <= 0 {
			return nil, fmt.Errorf("codec: bad window at %d", d.off)
		}
		d.off += w2
		return sql.Window{Start: start, End: end}, nil
	case tagBinary:
		n, w := binary.Uvarint(d.buf[d.off:])
		if w <= 0 || d.off+w+int(n) > len(d.buf) {
			return nil, fmt.Errorf("codec: bad binary at %d", d.off)
		}
		d.off += w
		b := append([]byte(nil), d.buf[d.off:d.off+int(n)]...)
		d.off += int(n)
		return b, nil
	default:
		return nil, fmt.Errorf("codec: unknown tag %d at %d", tag, d.off-1)
	}
}

// Row decodes a length-prefixed row.
func (d *Decoder) Row() (sql.Row, error) {
	n, w := binary.Uvarint(d.buf[d.off:])
	if w <= 0 {
		return nil, fmt.Errorf("codec: bad row length at %d", d.off)
	}
	d.off += w
	row := make(sql.Row, n)
	for i := range row {
		v, err := d.Value()
		if err != nil {
			return nil, err
		}
		row[i] = v
	}
	return row, nil
}

// DecodeRow decodes a single row from buf.
func DecodeRow(buf []byte) (sql.Row, error) {
	return NewDecoder(buf).Row()
}

// DecodeValues decodes all values remaining in buf.
func DecodeValues(buf []byte) ([]sql.Value, error) {
	d := NewDecoder(buf)
	var out []sql.Value
	for d.Remaining() {
		v, err := d.Value()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// KeyString encodes a grouping key as a string usable as a Go map key. The
// encoding is injective, so distinct keys never collide.
func KeyString(vals []sql.Value) string {
	e := NewEncoder(16 * len(vals))
	for _, v := range vals {
		e.PutValue(v)
	}
	return string(e.Bytes())
}

// HashKey computes a 64-bit hash of a grouping key, used to route rows to
// shuffle partitions.
func HashKey(vals []sql.Value) uint64 {
	e := NewEncoder(16 * len(vals))
	for _, v := range vals {
		e.PutValue(v)
	}
	return HashBytes(e.Bytes())
}

// HashBytes computes the shuffle-routing hash over an already-encoded
// grouping key. HashKey(vals) == HashBytes(EncodeValues(vals)) bit for
// bit, so callers that cached a key's encoded bytes (the columnar
// partial aggregator, the batched state path) can route without
// re-encoding — or re-boxing — the key.
func HashBytes(key []byte) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime
	}
	return h
}
