package analysis

import (
	"strings"
	"testing"
	"time"

	"structream/internal/sql"
	"structream/internal/sql/logical"
)

func streamScan(name string) *logical.Scan {
	return &logical.Scan{Name: name, Streaming: true, Out: sql.NewSchema(
		sql.Field{Name: "k", Type: sql.TypeInt64},
		sql.Field{Name: "v", Type: sql.TypeFloat64},
		sql.Field{Name: "ts", Type: sql.TypeTimestamp},
	)}
}

func staticScan(name string) *logical.Scan {
	return &logical.Scan{Name: name, Out: sql.NewSchema(
		sql.Field{Name: "k", Type: sql.TypeInt64},
		sql.Field{Name: "label", Type: sql.TypeString},
	)}
}

func countByKey(child logical.Plan, keys ...sql.Expr) *logical.Aggregate {
	return &logical.Aggregate{Child: child, Keys: keys,
		Aggs: []logical.NamedAgg{{Agg: sql.CountAll(), Name: "cnt"}}}
}

func TestAnalyzeRewritesWindowKeys(t *testing.T) {
	w := sql.NewWindow(sql.Col("ts"), 10*time.Second, 0)
	agg := countByKey(streamScan("s"), w)
	out, err := Analyze(agg)
	if err != nil {
		t.Fatal(err)
	}
	var wa *logical.WindowAssign
	logical.Walk(out, func(p logical.Plan) {
		if x, ok := p.(*logical.WindowAssign); ok {
			wa = x
		}
	})
	if wa == nil {
		t.Fatalf("no WindowAssign inserted:\n%s", logical.Explain(out))
	}
	if wa.Name != WindowColumn {
		t.Errorf("window column = %q", wa.Name)
	}
	schema, err := out.Schema()
	if err != nil {
		t.Fatal(err)
	}
	if schema.Field(0).Name != "window" || schema.Field(0).Type != sql.TypeWindow {
		t.Errorf("schema = %s", schema)
	}
}

func TestAnalyzeRejectsTwoWindows(t *testing.T) {
	w1 := sql.NewWindow(sql.Col("ts"), 10*time.Second, 0)
	w2 := sql.NewWindow(sql.Col("ts"), 20*time.Second, 0)
	if _, err := Analyze(countByKey(streamScan("s"), w1, w2)); err == nil {
		t.Error("two window keys should be rejected")
	}
}

func TestAnalyzeRejectsUnresolvable(t *testing.T) {
	bad := &logical.Filter{Child: streamScan("s"), Cond: sql.Gt(sql.Col("nope"), sql.Lit(1))}
	if _, err := Analyze(bad); err == nil {
		t.Error("unresolvable column should fail analysis")
	}
}

func TestAnalyzeRejectsNonBooleanFilter(t *testing.T) {
	bad := &logical.Filter{Child: streamScan("s"), Cond: sql.Add(sql.Col("k"), sql.Lit(1))}
	if _, err := Analyze(bad); err == nil || !strings.Contains(err.Error(), "boolean") {
		t.Errorf("err = %v", err)
	}
}

func TestAnalyzeRejectsNestedAgg(t *testing.T) {
	bad := &logical.Aggregate{Child: streamScan("s"),
		Aggs: []logical.NamedAgg{{Agg: sql.SumOf(sql.SumOf(sql.Col("v"))), Name: "x"}}}
	if _, err := Analyze(bad); err == nil {
		t.Error("nested aggregate should fail")
	}
}

func TestAnalyzeRejectsAggInGroupBy(t *testing.T) {
	bad := countByKey(streamScan("s"), sql.SumOf(sql.Col("v")))
	if _, err := Analyze(bad); err == nil {
		t.Error("aggregate in GROUP BY should fail")
	}
}

func TestAnalyzeWatermarkColumn(t *testing.T) {
	good := &logical.WithWatermark{Child: streamScan("s"), Column: "ts", Delay: 1}
	if _, err := Analyze(good); err != nil {
		t.Errorf("valid watermark rejected: %v", err)
	}
	badCol := &logical.WithWatermark{Child: streamScan("s"), Column: "nope", Delay: 1}
	if _, err := Analyze(badCol); err == nil {
		t.Error("watermark on missing column should fail")
	}
	badType := &logical.WithWatermark{Child: streamScan("s"), Column: "v", Delay: 1}
	if _, err := Analyze(badType); err == nil {
		t.Error("watermark on non-timestamp column should fail")
	}
}

func TestWatermarksCollection(t *testing.T) {
	p := &logical.Filter{
		Child: &logical.WithWatermark{Child: streamScan("s"), Column: "ts", Delay: 5_000_000},
		Cond:  sql.Gt(sql.Col("v"), sql.Lit(0)),
	}
	ws := Watermarks(p)
	if len(ws) != 1 || ws[0].Column != "ts" || ws[0].Delay != 5_000_000 {
		t.Errorf("watermarks = %v", ws)
	}
}

// ---------------------------------------------------------------- §5.1

func TestCompleteModeRequiresAggregation(t *testing.T) {
	noAgg := &logical.Project{Child: streamScan("s"), Exprs: []sql.Expr{sql.Col("k")}}
	if err := CheckStreaming(noAgg, logical.Complete); err == nil {
		t.Error("complete mode without aggregation should be rejected")
	}
	agg := countByKey(streamScan("s"), sql.Col("k"))
	if err := CheckStreaming(agg, logical.Complete); err != nil {
		t.Errorf("complete mode with aggregation rejected: %v", err)
	}
}

func TestAppendModeAggregationNeedsWatermark(t *testing.T) {
	// Aggregation keyed by a plain column: not allowed in append mode (the
	// paper's example: counts by country can never be finalized).
	agg := countByKey(streamScan("s"), sql.Col("k"))
	if err := CheckStreaming(agg, logical.Append); err == nil {
		t.Error("append aggregation without watermark should be rejected")
	}
	// With watermark + window grouping it is allowed.
	w := sql.NewWindow(sql.Col("ts"), 10*time.Second, 0)
	withWM := countByKey(
		&logical.WithWatermark{Child: streamScan("s"), Column: "ts", Delay: 1_000_000}, w)
	analyzed, err := Analyze(withWM)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckStreaming(analyzed, logical.Append); err != nil {
		t.Errorf("windowed watermarked append aggregation rejected: %v", err)
	}
	// Update mode allows it regardless.
	if err := CheckStreaming(agg, logical.Update); err != nil {
		t.Errorf("update mode rejected: %v", err)
	}
}

func TestMultipleAggregationsRejected(t *testing.T) {
	inner := countByKey(streamScan("s"), sql.Col("k"))
	outer := &logical.Aggregate{Child: inner,
		Aggs: []logical.NamedAgg{{Agg: sql.SumOf(sql.Col("cnt")), Name: "total"}}}
	if err := CheckStreaming(outer, logical.Update); err == nil {
		t.Error("two streaming aggregations should be rejected (§5.2)")
	}
}

func TestSortOnlyInCompleteMode(t *testing.T) {
	agg := countByKey(streamScan("s"), sql.Col("k"))
	sorted := &logical.Sort{Child: agg, Orders: []logical.SortOrder{{Expr: sql.Col("cnt"), Desc: true}}}
	if err := CheckStreaming(sorted, logical.Complete); err != nil {
		t.Errorf("sort after aggregation in complete mode rejected: %v", err)
	}
	if err := CheckStreaming(sorted, logical.Update); err == nil {
		t.Error("sort in update mode should be rejected")
	}
	rawSort := &logical.Sort{Child: streamScan("s"), Orders: []logical.SortOrder{{Expr: sql.Col("k")}}}
	if err := CheckStreaming(rawSort, logical.Complete); err == nil {
		t.Error("sorting a raw stream should be rejected")
	}
}

func TestLimitOnStreamRejectedOutsideComplete(t *testing.T) {
	lim := &logical.Limit{Child: streamScan("s"), N: 5}
	if err := CheckStreaming(lim, logical.Append); err == nil {
		t.Error("limit in append mode should be rejected")
	}
}

func TestStreamingJoinMatrix(t *testing.T) {
	stream, static := streamScan("s"), staticScan("t")
	cond := sql.Eq(sql.Col("s.k"), sql.Col("t.k"))

	okCases := []*logical.Join{
		{Left: stream, Right: static, Type: logical.InnerJoin, Cond: cond},
		{Left: stream, Right: static, Type: logical.LeftOuterJoin, Cond: cond},
		{Left: static, Right: stream, Type: logical.RightOuterJoin, Cond: cond},
		{Left: stream, Right: static, Type: logical.LeftSemiJoin, Cond: cond},
	}
	for _, j := range okCases {
		if err := CheckStreaming(j, logical.Append); err != nil {
			t.Errorf("%s stream-static join rejected: %v", j.Type, err)
		}
	}
	badCases := []*logical.Join{
		{Left: stream, Right: static, Type: logical.FullOuterJoin, Cond: cond},
		{Left: static, Right: stream, Type: logical.LeftOuterJoin, Cond: cond},
		{Left: stream, Right: static, Type: logical.RightOuterJoin, Cond: cond},
	}
	for _, j := range badCases {
		if err := CheckStreaming(j, logical.Append); err == nil {
			t.Errorf("%s join with static preserved side should be rejected", j.Type)
		}
	}
}

func TestStreamStreamJoin(t *testing.T) {
	s1, s2 := streamScan("a"), streamScan("b")
	cond := sql.Eq(sql.Col("a.k"), sql.Col("b.k"))
	inner := &logical.Join{Left: s1, Right: s2, Type: logical.InnerJoin, Cond: cond}
	if err := CheckStreaming(inner, logical.Append); err != nil {
		t.Errorf("inner stream-stream join rejected: %v", err)
	}
	// Outer stream-stream join without watermark in the condition: rejected.
	outer := &logical.Join{Left: s1, Right: s2, Type: logical.LeftOuterJoin, Cond: cond}
	if err := CheckStreaming(outer, logical.Append); err == nil {
		t.Error("outer stream-stream join without watermark should be rejected")
	}
	// With a watermarked time column referenced in the condition: allowed.
	wmLeft := &logical.WithWatermark{Child: s1, Column: "ts", Delay: 1_000_000}
	condTime := sql.And(cond, sql.Gt(sql.Col("a.ts"), sql.Col("b.ts")))
	outerWM := &logical.Join{Left: wmLeft, Right: s2, Type: logical.LeftOuterJoin, Cond: condTime}
	if err := CheckStreaming(outerWM, logical.Append); err != nil {
		t.Errorf("watermarked outer stream-stream join rejected: %v", err)
	}
}

func TestBatchPlanRejectedByStreamingCheck(t *testing.T) {
	if err := CheckStreaming(staticScan("t"), logical.Append); err == nil {
		t.Error("batch-only plan should be rejected by CheckStreaming")
	}
}

func TestMapGroupsBelowAggRejected(t *testing.T) {
	mg := &logical.MapGroups{
		Child: countByKey(streamScan("s"), sql.Col("k")),
		Keys:  []sql.Expr{sql.Col("k")},
		Func:  func(sql.Row, []sql.Row, logical.GroupState) []sql.Row { return nil },
		Out:   sql.NewSchema(sql.Field{Name: "x", Type: sql.TypeInt64}),
	}
	if err := CheckStreaming(mg, logical.Update); err == nil {
		t.Error("stateful operator below aggregation should be rejected")
	}
}

func TestAnalyzeDropDuplicatesColumns(t *testing.T) {
	good := &logical.Distinct{Child: streamScan("s"), Cols: []string{"k"}}
	if _, err := Analyze(good); err != nil {
		t.Errorf("valid dropDuplicates rejected: %v", err)
	}
	bad := &logical.Distinct{Child: streamScan("s"), Cols: []string{"nope"}}
	if _, err := Analyze(bad); err == nil {
		t.Error("dropDuplicates on a missing column should fail analysis")
	}
}
