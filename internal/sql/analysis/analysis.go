// Package analysis implements the first stage of query planning (§5.1 of
// the paper): resolving and type-checking the logical plan, rewriting
// event-time window grouping into explicit window-assignment operators, and
// validating that a streaming query is executable incrementally under the
// chosen output mode.
package analysis

import (
	"fmt"

	"structream/internal/sql"
	"structream/internal/sql/logical"
)

// WindowColumn is the name given to the column produced by window()
// grouping, matching Spark's "window" struct column.
const WindowColumn = "window"

// Analyze resolves the plan: every expression must bind against its input
// schema, window() grouping keys are rewritten to WindowAssign operators,
// and structural rules (nested aggregates, union arity) are enforced. It
// returns the rewritten plan.
func Analyze(plan logical.Plan) (logical.Plan, error) {
	rewritten, err := rewriteWindows(plan)
	if err != nil {
		return nil, err
	}
	if err := validate(rewritten); err != nil {
		return nil, err
	}
	return rewritten, nil
}

// rewriteWindows replaces window() expressions used as grouping keys with a
// WindowAssign operator below the aggregate plus a reference to its output
// column. This is how sliding windows get their explode semantics.
func rewriteWindows(plan logical.Plan) (logical.Plan, error) {
	var rewriteErr error
	out := logical.Transform(plan, func(p logical.Plan) logical.Plan {
		agg, ok := p.(*logical.Aggregate)
		if !ok {
			return p
		}
		var windows []*sql.WindowExpr
		for _, k := range agg.Keys {
			if w, ok := k.(*sql.WindowExpr); ok {
				windows = append(windows, w)
			}
		}
		if len(windows) == 0 {
			return p
		}
		if len(windows) > 1 {
			rewriteErr = fmt.Errorf("analysis: at most one window() grouping expression is supported, found %d", len(windows))
			return p
		}
		child := &logical.WindowAssign{Child: agg.Child, Window: windows[0], Name: WindowColumn}
		keys := make([]sql.Expr, len(agg.Keys))
		for i, k := range agg.Keys {
			if _, ok := k.(*sql.WindowExpr); ok {
				keys[i] = sql.As(sql.Col(WindowColumn), WindowColumn)
			} else {
				keys[i] = k
			}
		}
		return &logical.Aggregate{Child: child, Keys: keys, Aggs: agg.Aggs}
	})
	if rewriteErr != nil {
		return nil, rewriteErr
	}
	// Also rewrite window() references in projections above the aggregate:
	// "SELECT window(time, ...), count(*) ... GROUP BY window(time, ...)"
	// projects the same window expression, which after the rewrite is simply
	// the window column.
	out = logical.Transform(out, func(p logical.Plan) logical.Plan {
		proj, ok := p.(*logical.Project)
		if !ok {
			return p
		}
		if !planHasWindowColumn(proj.Child) {
			return p
		}
		exprs := make([]sql.Expr, len(proj.Exprs))
		for i, e := range proj.Exprs {
			exprs[i] = sql.TransformExpr(e, func(x sql.Expr) sql.Expr {
				if _, ok := x.(*sql.WindowExpr); ok {
					return sql.As(sql.Col(WindowColumn), WindowColumn)
				}
				return x
			})
		}
		return &logical.Project{Child: proj.Child, Exprs: exprs}
	})
	return out, nil
}

func planHasWindowColumn(p logical.Plan) bool {
	s, err := p.Schema()
	if err != nil {
		return false
	}
	return s.IndexOf(WindowColumn) >= 0
}

// validate checks the plan is fully resolvable and structurally sound.
func validate(plan logical.Plan) error {
	var firstErr error
	record := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}
	logical.Walk(plan, func(p logical.Plan) {
		// Schema computation binds every expression in the node.
		if _, err := p.Schema(); err != nil {
			record(err)
			return
		}
		switch n := p.(type) {
		case *logical.Aggregate:
			for _, k := range n.Keys {
				if sql.ContainsAgg(k) {
					record(fmt.Errorf("analysis: aggregate function in GROUP BY key %s", k))
				}
			}
			for _, na := range n.Aggs {
				if na.Agg.Child != nil && sql.ContainsAgg(na.Agg.Child) {
					record(fmt.Errorf("analysis: nested aggregate %s", na.Agg))
				}
			}
		case *logical.Filter:
			in, err := n.Child.Schema()
			if err != nil {
				record(err)
				return
			}
			b, err := n.Cond.Bind(in)
			if err != nil {
				record(err)
				return
			}
			if b.Type != sql.TypeBool && b.Type != sql.TypeNull {
				record(fmt.Errorf("analysis: WHERE condition must be boolean, got %s in %s", b.Type, n.Cond))
			}
		case *logical.Join:
			if n.Cond != nil {
				s, err := n.Schema()
				if err != nil {
					record(err)
					return
				}
				// For semi/anti joins the condition sees both sides even
				// though the output is left-only.
				if n.Type == logical.LeftSemiJoin || n.Type == logical.LeftAntiJoin {
					l, _ := n.Left.Schema()
					r, err := n.Right.Schema()
					if err != nil {
						record(err)
						return
					}
					s = l.Concat(r)
				}
				b, err := n.Cond.Bind(s)
				if err != nil {
					record(err)
					return
				}
				if b.Type != sql.TypeBool && b.Type != sql.TypeNull {
					record(fmt.Errorf("analysis: join condition must be boolean, got %s", b.Type))
				}
			}
		case *logical.Distinct:
			in, err := n.Child.Schema()
			if err != nil {
				record(err)
				return
			}
			for _, col := range n.Cols {
				if _, err := in.Resolve(col); err != nil {
					record(fmt.Errorf("analysis: dropDuplicates: %v", err))
				}
			}
		case *logical.WithWatermark:
			in, err := n.Child.Schema()
			if err != nil {
				record(err)
				return
			}
			idx, err := in.Resolve(n.Column)
			if err != nil {
				record(fmt.Errorf("analysis: watermark column: %v", err))
				return
			}
			if ft := in.Field(idx).Type; ft != sql.TypeTimestamp && ft != sql.TypeInt64 {
				record(fmt.Errorf("analysis: watermark column %q must be a timestamp, got %s", n.Column, ft))
			}
		}
	})
	return firstErr
}
