package analysis

import (
	"fmt"

	"structream/internal/sql"
	"structream/internal/sql/logical"
)

// WatermarkSpec describes an event-time watermark declared on a stream.
type WatermarkSpec struct {
	Column string
	Delay  int64 // µs
}

// Watermarks collects every watermark declaration in the plan, outermost
// last. Different input streams can carry different watermarks (§4.3.1).
func Watermarks(plan logical.Plan) []WatermarkSpec {
	var out []WatermarkSpec
	logical.Walk(plan, func(p logical.Plan) {
		if w, ok := p.(*logical.WithWatermark); ok {
			out = append(out, WatermarkSpec{Column: w.Column, Delay: w.Delay})
		}
	})
	return out
}

// CheckStreaming validates that an analyzed streaming plan can execute
// incrementally under the requested output mode, implementing the rules of
// §5.1: which operator/mode combinations the engine allows.
//
// Supported streaming queries (as of the paper's Spark 2.3 description):
// any number of selections and projections; SELECT DISTINCT; inner,
// left-outer and right-outer joins between a stream and a table or between
// two streams (outer joins against a stream require a watermark); stateful
// operators; up to one aggregation; sorting only after aggregation in
// complete mode.
func CheckStreaming(plan logical.Plan, mode logical.OutputMode) error {
	if !logical.IsStreaming(plan) {
		return fmt.Errorf("analysis: plan has no streaming source; run it as a batch query")
	}

	var (
		streamingAggs  int
		hasAgg         *logical.Aggregate
		aggIsWindowed  bool
		aggOnWatermark bool
		sortCount      int
		sortAboveAgg   bool
		limitOnStream  bool
		mapGroupsCount int
		firstErr       error
	)
	record := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}

	watermarked := map[string]bool{}
	for _, w := range Watermarks(plan) {
		watermarked[w.Column] = true
	}

	// seenAgg tracks whether an aggregate exists below the current node
	// while walking top-down.
	var walk func(p logical.Plan, aggAbove bool)
	walk = func(p logical.Plan, aggAbove bool) {
		streaming := logical.IsStreaming(p)
		switch n := p.(type) {
		case *logical.Aggregate:
			if streaming {
				streamingAggs++
				hasAgg = n
				if streamingAggs > 1 {
					record(fmt.Errorf("analysis: multiple streaming aggregations are not supported (§5.2: up to one aggregation)"))
				}
				for _, k := range n.Keys {
					if c, ok := underlyingColumn(k); ok {
						if c == WindowColumn {
							aggIsWindowed = true
						}
						if watermarked[c] {
							aggOnWatermark = true
						}
					}
				}
				// A window assigned over a watermarked column also counts.
				logical.Walk(n.Child, func(q logical.Plan) {
					if wa, ok := q.(*logical.WindowAssign); ok {
						if c, ok := underlyingColumn(wa.Window.Time); ok && watermarked[c] {
							aggOnWatermark = true
						}
					}
				})
			}
			walk(n.Child, aggAbove)
			return
		case *logical.Sort:
			if streaming {
				sortCount++
				childHasAgg := false
				logical.Walk(n.Child, func(q logical.Plan) {
					if _, ok := q.(*logical.Aggregate); ok {
						childHasAgg = true
					}
				})
				sortAboveAgg = childHasAgg
			}
		case *logical.Limit:
			if streaming {
				limitOnStream = true
			}
		case *logical.MapGroups:
			if streaming {
				mapGroupsCount++
				aggBelow := false
				logical.Walk(n.Child, func(q logical.Plan) {
					if _, ok := q.(*logical.Aggregate); ok {
						aggBelow = true
					}
				})
				if aggBelow {
					record(fmt.Errorf("analysis: stateful operator over the output of an aggregation is not supported in streaming queries"))
				}
			}
		case *logical.Join:
			if err := checkStreamingJoin(n, watermarked); err != nil {
				record(err)
			}
		}
		above := aggAbove
		if _, ok := p.(*logical.Aggregate); ok {
			above = true
		}
		for _, c := range p.Children() {
			walk(c, above)
		}
	}
	walk(plan, false)
	if firstErr != nil {
		return firstErr
	}

	// Mode-specific rules.
	switch mode {
	case logical.Complete:
		if streamingAggs == 0 {
			return fmt.Errorf("analysis: complete output mode requires an aggregation (the engine must be able to re-emit the whole result table; state must be proportional to the number of result keys)")
		}
		// Sorting is permitted in complete mode, only above the aggregate.
		if sortCount > 0 && !sortAboveAgg {
			return fmt.Errorf("analysis: sorting a raw stream is not supported; ORDER BY requires complete mode and must follow the aggregation")
		}
	case logical.Append:
		if sortCount > 0 {
			return fmt.Errorf("analysis: ORDER BY is only supported in complete output mode")
		}
		if limitOnStream {
			return fmt.Errorf("analysis: LIMIT on a streaming query is only supported in complete output mode")
		}
		if hasAgg != nil && !(aggIsWindowed && aggOnWatermark || aggOnWatermark) {
			return fmt.Errorf("analysis: append output mode with aggregation requires grouping by an event-time window over a watermarked column: the engine can only emit a group once its watermark guarantees no more input for it (§5.1: append output must be monotonic)")
		}
	case logical.Update:
		if sortCount > 0 {
			return fmt.Errorf("analysis: ORDER BY is only supported in complete output mode")
		}
		if limitOnStream {
			return fmt.Errorf("analysis: LIMIT on a streaming query is only supported in complete output mode")
		}
	}
	return nil
}

// checkStreamingJoin enforces the join support matrix for streams.
func checkStreamingJoin(j *logical.Join, watermarked map[string]bool) error {
	leftStream := logical.IsStreaming(j.Left)
	rightStream := logical.IsStreaming(j.Right)
	if !leftStream && !rightStream {
		return nil
	}
	switch j.Type {
	case logical.FullOuterJoin:
		return fmt.Errorf("analysis: full outer join is not supported on streams")
	case logical.LeftSemiJoin, logical.LeftAntiJoin:
		if rightStream {
			return fmt.Errorf("analysis: %s join with a streaming right side is not supported", j.Type)
		}
		return nil
	}
	if leftStream && rightStream {
		if j.Cond == nil {
			return fmt.Errorf("analysis: stream-stream join requires a join condition")
		}
		// Outer stream-stream joins need a watermarked column in the join
		// condition so the engine can eventually emit null-padded rows and
		// evict state (§5.2).
		if j.Type == logical.LeftOuterJoin || j.Type == logical.RightOuterJoin {
			if !condReferencesWatermark(j.Cond, watermarked) {
				return fmt.Errorf("analysis: outer join between two streams requires the join condition to involve a watermarked column (§5.2)")
			}
		}
		return nil
	}
	// Stream-static joins: the static side may not be the preserved side of
	// an outer join against a stream (result would need retraction).
	if j.Type == logical.LeftOuterJoin && !leftStream {
		return fmt.Errorf("analysis: left outer join with a static left side and streaming right side is not supported")
	}
	if j.Type == logical.RightOuterJoin && !rightStream {
		return fmt.Errorf("analysis: right outer join with a streaming left side and static right side is not supported")
	}
	return nil
}

func condReferencesWatermark(cond sql.Expr, watermarked map[string]bool) bool {
	found := false
	sql.WalkExpr(cond, func(e sql.Expr) {
		if c, ok := e.(*sql.Column); ok {
			name := c.Name
			if i := lastDot(name); i >= 0 {
				name = name[i+1:]
			}
			if watermarked[name] {
				found = true
			}
		}
	})
	return found
}

func lastDot(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '.' {
			return i
		}
	}
	return -1
}

// underlyingColumn unwraps aliases to find a bare column reference.
func underlyingColumn(e sql.Expr) (string, bool) {
	for {
		switch x := e.(type) {
		case *sql.Alias:
			e = x.Child
		case *sql.Column:
			name := x.Name
			if i := lastDot(name); i >= 0 {
				name = name[i+1:]
			}
			return name, true
		default:
			return "", false
		}
	}
}
