package logical

import "fmt"

// OutputMode specifies how the result table is written to the sink (§4.2 of
// the paper): the whole table each trigger, only appended rows, or in-place
// updates of changed keys.
type OutputMode int

// The three sink output modes.
const (
	// Append only adds records to the sink; a record is never changed once
	// written. Aggregations require event-time watermarks in this mode.
	Append OutputMode = iota
	// Update writes only the keys whose values changed since the last
	// trigger; the sink updates them in place.
	Update
	// Complete rewrites the entire result table on every trigger. Only
	// permitted for aggregation queries whose state is proportional to the
	// result size (§5.1).
	Complete
)

// String names the mode as in the paper's API.
func (m OutputMode) String() string {
	switch m {
	case Append:
		return "append"
	case Update:
		return "update"
	case Complete:
		return "complete"
	default:
		return fmt.Sprintf("outputmode(%d)", int(m))
	}
}

// ParseOutputMode parses an output mode name.
func ParseOutputMode(s string) (OutputMode, error) {
	switch s {
	case "append":
		return Append, nil
	case "update":
		return Update, nil
	case "complete":
		return Complete, nil
	default:
		return Append, fmt.Errorf("logical: unknown output mode %q (want append, update or complete)", s)
	}
}
