// Package logical defines the logical query plan: the tree the SQL parser
// and the DataFrame API produce, the analyzer validates, the optimizer
// rewrites, and the incrementalizer turns into a streaming physical plan.
package logical

import (
	"fmt"
	"strings"
	"time"

	"structream/internal/sql"
)

// Plan is a node in a logical query plan tree.
type Plan interface {
	// Schema computes the node's output schema from its children. It
	// returns an error when the node references unresolvable columns; the
	// analyzer surfaces these.
	Schema() (sql.Schema, error)
	// Children returns the direct child plans.
	Children() []Plan
	// WithChildren rebuilds the node with new children (same arity).
	WithChildren(children []Plan) Plan
	// String renders a one-line description for EXPLAIN output.
	String() string
}

// IsStreaming reports whether any leaf below p is a streaming source.
func IsStreaming(p Plan) bool {
	if s, ok := p.(*Scan); ok {
		return s.Streaming
	}
	for _, c := range p.Children() {
		if IsStreaming(c) {
			return true
		}
	}
	return false
}

// Transform rewrites a plan bottom-up.
func Transform(p Plan, fn func(Plan) Plan) Plan {
	children := p.Children()
	if len(children) > 0 {
		newChildren := make([]Plan, len(children))
		changed := false
		for i, c := range children {
			newChildren[i] = Transform(c, fn)
			if newChildren[i] != c {
				changed = true
			}
		}
		if changed {
			p = p.WithChildren(newChildren)
		}
	}
	return fn(p)
}

// Walk visits the plan pre-order.
func Walk(p Plan, fn func(Plan)) {
	fn(p)
	for _, c := range p.Children() {
		Walk(c, fn)
	}
}

// Explain renders the plan tree indented, one node per line.
func Explain(p Plan) string {
	var b strings.Builder
	var rec func(Plan, int)
	rec = func(n Plan, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.String())
		b.WriteByte('\n')
		for _, c := range n.Children() {
			rec(c, depth+1)
		}
	}
	rec(p, 0)
	return b.String()
}

// ---------------------------------------------------------------- Scan

// Scan is a leaf: a named table or stream with a known schema. Handle is an
// opaque reference the execution layer resolves to actual data (a static
// table, a source connector, or a per-epoch batch).
type Scan struct {
	Name      string
	Out       sql.Schema
	Streaming bool
	Handle    any
}

// Schema returns the declared schema.
func (s *Scan) Schema() (sql.Schema, error) { return s.Out, nil }

// Children returns nil: Scan is a leaf.
func (s *Scan) Children() []Plan                  { return nil }
func (s *Scan) WithChildren(children []Plan) Plan { return s }
func (s *Scan) String() string {
	kind := "Scan"
	if s.Streaming {
		kind = "StreamingScan"
	}
	return fmt.Sprintf("%s %s %s", kind, s.Name, s.Out)
}

// ---------------------------------------------------------------- Project

// Project computes a list of expressions over each input row.
type Project struct {
	Child Plan
	Exprs []sql.Expr
}

// Schema derives output fields from the projection expressions.
func (p *Project) Schema() (sql.Schema, error) {
	in, err := p.Child.Schema()
	if err != nil {
		return sql.Schema{}, err
	}
	fields := make([]sql.Field, len(p.Exprs))
	for i, e := range p.Exprs {
		b, err := e.Bind(in)
		if err != nil {
			return sql.Schema{}, err
		}
		fields[i] = sql.Field{Name: sql.OutputName(e), Type: b.Type}
	}
	return sql.Schema{Fields: fields}, nil
}

func (p *Project) Children() []Plan { return []Plan{p.Child} }
func (p *Project) WithChildren(children []Plan) Plan {
	return &Project{Child: children[0], Exprs: p.Exprs}
}
func (p *Project) String() string { return "Project " + exprList(p.Exprs) }

// ---------------------------------------------------------------- Filter

// Filter keeps rows where Cond evaluates to true.
type Filter struct {
	Child Plan
	Cond  sql.Expr
}

// Schema passes through the child schema.
func (f *Filter) Schema() (sql.Schema, error) { return f.Child.Schema() }
func (f *Filter) Children() []Plan            { return []Plan{f.Child} }
func (f *Filter) WithChildren(children []Plan) Plan {
	return &Filter{Child: children[0], Cond: f.Cond}
}
func (f *Filter) String() string { return fmt.Sprintf("Filter %s", f.Cond) }

// ---------------------------------------------------------------- Aggregate

// NamedAgg is one aggregate output column.
type NamedAgg struct {
	Agg  *sql.AggExpr
	Name string
}

// Aggregate groups by key expressions and computes aggregates per group.
// The output schema is the group keys followed by the aggregates.
type Aggregate struct {
	Child Plan
	Keys  []sql.Expr
	Aggs  []NamedAgg
}

// Schema is group-key fields followed by aggregate fields.
func (a *Aggregate) Schema() (sql.Schema, error) {
	in, err := a.Child.Schema()
	if err != nil {
		return sql.Schema{}, err
	}
	fields := make([]sql.Field, 0, len(a.Keys)+len(a.Aggs))
	for _, k := range a.Keys {
		b, err := k.Bind(in)
		if err != nil {
			return sql.Schema{}, err
		}
		fields = append(fields, sql.Field{Name: sql.OutputName(k), Type: b.Type})
	}
	for _, na := range a.Aggs {
		b, err := na.Agg.BindAgg(in)
		if err != nil {
			return sql.Schema{}, err
		}
		fields = append(fields, sql.Field{Name: na.Name, Type: b.ResultType})
	}
	return sql.Schema{Fields: fields}, nil
}

func (a *Aggregate) Children() []Plan { return []Plan{a.Child} }
func (a *Aggregate) WithChildren(children []Plan) Plan {
	return &Aggregate{Child: children[0], Keys: a.Keys, Aggs: a.Aggs}
}
func (a *Aggregate) String() string {
	aggs := make([]string, len(a.Aggs))
	for i, na := range a.Aggs {
		aggs[i] = fmt.Sprintf("%s AS %s", na.Agg, na.Name)
	}
	return fmt.Sprintf("Aggregate keys=%s aggs=[%s]", exprList(a.Keys), strings.Join(aggs, ", "))
}

// ---------------------------------------------------------------- Join

// JoinType enumerates the supported join types.
type JoinType int

// Join types. Streaming supports Inner, LeftOuter and RightOuter per the
// paper (§5.2); FullOuter is batch-only.
const (
	InnerJoin JoinType = iota
	LeftOuterJoin
	RightOuterJoin
	FullOuterJoin
	LeftSemiJoin
	LeftAntiJoin
)

// String names the join type in SQL style.
func (t JoinType) String() string {
	switch t {
	case InnerJoin:
		return "INNER"
	case LeftOuterJoin:
		return "LEFT OUTER"
	case RightOuterJoin:
		return "RIGHT OUTER"
	case FullOuterJoin:
		return "FULL OUTER"
	case LeftSemiJoin:
		return "LEFT SEMI"
	case LeftAntiJoin:
		return "LEFT ANTI"
	default:
		return fmt.Sprintf("JOIN(%d)", int(t))
	}
}

// Join combines two inputs on a condition.
type Join struct {
	Left, Right Plan
	Type        JoinType
	Cond        sql.Expr // nil means cross product (batch only)
}

// Schema concatenates both sides (left then right), except for semi/anti
// joins which keep only the left side.
func (j *Join) Schema() (sql.Schema, error) {
	l, err := j.Left.Schema()
	if err != nil {
		return sql.Schema{}, err
	}
	if j.Type == LeftSemiJoin || j.Type == LeftAntiJoin {
		return l, nil
	}
	r, err := j.Right.Schema()
	if err != nil {
		return sql.Schema{}, err
	}
	return l.Concat(r), nil
}

func (j *Join) Children() []Plan { return []Plan{j.Left, j.Right} }
func (j *Join) WithChildren(children []Plan) Plan {
	return &Join{Left: children[0], Right: children[1], Type: j.Type, Cond: j.Cond}
}
func (j *Join) String() string {
	if j.Cond == nil {
		return fmt.Sprintf("Join %s", j.Type)
	}
	return fmt.Sprintf("Join %s ON %s", j.Type, j.Cond)
}

// ---------------------------------------------------------------- Sort

// SortOrder is one ORDER BY term.
type SortOrder struct {
	Expr sql.Expr
	Desc bool
}

// Sort orders rows by the given terms.
type Sort struct {
	Child  Plan
	Orders []SortOrder
}

// Schema passes through the child schema.
func (s *Sort) Schema() (sql.Schema, error) { return s.Child.Schema() }
func (s *Sort) Children() []Plan            { return []Plan{s.Child} }
func (s *Sort) WithChildren(children []Plan) Plan {
	return &Sort{Child: children[0], Orders: s.Orders}
}
func (s *Sort) String() string {
	parts := make([]string, len(s.Orders))
	for i, o := range s.Orders {
		dir := "ASC"
		if o.Desc {
			dir = "DESC"
		}
		parts[i] = fmt.Sprintf("%s %s", o.Expr, dir)
	}
	return "Sort " + strings.Join(parts, ", ")
}

// ---------------------------------------------------------------- Limit

// Limit keeps the first N rows.
type Limit struct {
	Child Plan
	N     int64
}

// Schema passes through the child schema.
func (l *Limit) Schema() (sql.Schema, error) { return l.Child.Schema() }
func (l *Limit) Children() []Plan            { return []Plan{l.Child} }
func (l *Limit) WithChildren(children []Plan) Plan {
	return &Limit{Child: children[0], N: l.N}
}
func (l *Limit) String() string { return fmt.Sprintf("Limit %d", l.N) }

// ---------------------------------------------------------------- Distinct

// Distinct removes duplicate rows (SELECT DISTINCT). In a streaming plan it
// becomes a stateful deduplication operator. When Cols is non-empty, only
// those columns form the duplicate key and the first full row per key is
// kept (Spark's dropDuplicates(cols)).
type Distinct struct {
	Child Plan
	Cols  []string
}

// Schema passes through the child schema.
func (d *Distinct) Schema() (sql.Schema, error) { return d.Child.Schema() }
func (d *Distinct) Children() []Plan            { return []Plan{d.Child} }
func (d *Distinct) WithChildren(children []Plan) Plan {
	return &Distinct{Child: children[0], Cols: d.Cols}
}
func (d *Distinct) String() string {
	if len(d.Cols) == 0 {
		return "Distinct"
	}
	return "Distinct on " + strings.Join(d.Cols, ", ")
}

// ---------------------------------------------------------------- Union

// Union concatenates two inputs with identical schemas (UNION ALL).
type Union struct {
	Left, Right Plan
}

// Schema validates that both sides agree and returns the left schema.
func (u *Union) Schema() (sql.Schema, error) {
	l, err := u.Left.Schema()
	if err != nil {
		return sql.Schema{}, err
	}
	r, err := u.Right.Schema()
	if err != nil {
		return sql.Schema{}, err
	}
	if len(l.Fields) != len(r.Fields) {
		return sql.Schema{}, fmt.Errorf("logical: UNION arity mismatch: %s vs %s", l, r)
	}
	for i := range l.Fields {
		if _, ok := sql.CommonType(l.Fields[i].Type, r.Fields[i].Type); !ok {
			return sql.Schema{}, fmt.Errorf("logical: UNION column %d type mismatch: %s vs %s",
				i, l.Fields[i].Type, r.Fields[i].Type)
		}
	}
	return l, nil
}

func (u *Union) Children() []Plan { return []Plan{u.Left, u.Right} }
func (u *Union) WithChildren(children []Plan) Plan {
	return &Union{Left: children[0], Right: children[1]}
}
func (u *Union) String() string { return "Union" }

// ---------------------------------------------------------------- Alias

// SubqueryAlias names a sub-plan and qualifies its columns, so joins can
// reference "alias.column".
type SubqueryAlias struct {
	Child Plan
	Alias string
}

// Schema qualifies every child column with the alias.
func (s *SubqueryAlias) Schema() (sql.Schema, error) {
	c, err := s.Child.Schema()
	if err != nil {
		return sql.Schema{}, err
	}
	return c.Qualify(s.Alias), nil
}

func (s *SubqueryAlias) Children() []Plan { return []Plan{s.Child} }
func (s *SubqueryAlias) WithChildren(children []Plan) Plan {
	return &SubqueryAlias{Child: children[0], Alias: s.Alias}
}
func (s *SubqueryAlias) String() string { return "SubqueryAlias " + s.Alias }

// ---------------------------------------------------------------- Window

// WindowAssign adds an event-time window column (named Name) computed from
// the window spec, exploding each row into one output row per containing
// window when the spec is sliding.
type WindowAssign struct {
	Child  Plan
	Window *sql.WindowExpr
	Name   string
}

// Schema is the child schema plus the window column.
func (w *WindowAssign) Schema() (sql.Schema, error) {
	c, err := w.Child.Schema()
	if err != nil {
		return sql.Schema{}, err
	}
	return c.Concat(sql.Schema{Fields: []sql.Field{{Name: w.Name, Type: sql.TypeWindow}}}), nil
}

func (w *WindowAssign) Children() []Plan { return []Plan{w.Child} }
func (w *WindowAssign) WithChildren(children []Plan) Plan {
	return &WindowAssign{Child: children[0], Window: w.Window, Name: w.Name}
}
func (w *WindowAssign) String() string {
	return fmt.Sprintf("WindowAssign %s AS %s", w.Window, w.Name)
}

// ---------------------------------------------------------------- Watermark

// WithWatermark declares an event-time column and a lateness delay for the
// subtree below it (§4.3.1 of the paper). The engine computes the watermark
// as max(eventTime) − Delay across the stream.
type WithWatermark struct {
	Child  Plan
	Column string
	Delay  int64 // µs
}

// Schema passes through the child schema.
func (w *WithWatermark) Schema() (sql.Schema, error) { return w.Child.Schema() }
func (w *WithWatermark) Children() []Plan            { return []Plan{w.Child} }
func (w *WithWatermark) WithChildren(children []Plan) Plan {
	return &WithWatermark{Child: children[0], Column: w.Column, Delay: w.Delay}
}
func (w *WithWatermark) String() string {
	return fmt.Sprintf("WithWatermark %s delay=%s", w.Column, time.Duration(w.Delay)*time.Microsecond)
}

// ---------------------------------------------------------------- Stateful

// TimeoutKind selects how mapGroupsWithState timeouts are interpreted.
type TimeoutKind int

// Timeout kinds for stateful operators.
const (
	NoTimeout TimeoutKind = iota
	ProcessingTimeTimeout
	EventTimeTimeout
)

// GroupState is the per-key state handle passed to a stateful update
// function, mirroring the paper's GroupState[S] (§4.3.2). State is a row
// whose schema the operator declares.
type GroupState interface {
	// Exists reports whether state is currently stored for the key.
	Exists() bool
	// Get returns the stored state row; nil when !Exists().
	Get() sql.Row
	// Update replaces the state row for the key.
	Update(state sql.Row)
	// Remove drops the key from the store.
	Remove()
	// SetTimeoutDuration arms a processing-time timeout for the key.
	SetTimeoutDuration(d time.Duration)
	// SetTimeoutTimestamp arms an event-time timeout (µs since epoch);
	// the key times out when the watermark passes it.
	SetTimeoutTimestamp(us int64)
	// HasTimedOut reports whether this invocation is a timeout callback
	// (no new values for the key).
	HasTimedOut() bool
	// Watermark returns the current event-time watermark in µs, or 0 when
	// no watermark is set.
	Watermark() int64
	// ProcessingTime returns the current processing time in µs.
	ProcessingTime() int64
}

// UpdateFunc is the user-defined function of flatMapGroupsWithState: given
// a key, the new values for that key since the last call, and the state
// handle, it returns zero or more output rows. mapGroupsWithState is the
// special case returning exactly one row.
type UpdateFunc func(key sql.Row, values []sql.Row, state GroupState) []sql.Row

// MapGroups is the flatMapGroupsWithState / mapGroupsWithState logical
// operator: custom per-key stateful processing that still fits the
// incremental model and also runs in batch jobs (where Func is called once
// per key).
type MapGroups struct {
	Child Plan
	// Keys are the grouping expressions (groupByKey).
	Keys []sql.Expr
	// KeyNames name the key columns visible to the update function.
	KeyNames []string
	// Func is the user update function.
	Func UpdateFunc
	// StateSchema declares the state row layout for checkpointing.
	StateSchema sql.Schema
	// Out is the schema of rows returned by Func (excluding keys).
	Out sql.Schema
	// Timeout selects timeout semantics.
	Timeout TimeoutKind
}

// Schema returns the user-declared output schema.
func (m *MapGroups) Schema() (sql.Schema, error) { return m.Out, nil }
func (m *MapGroups) Children() []Plan            { return []Plan{m.Child} }
func (m *MapGroups) WithChildren(children []Plan) Plan {
	out := *m
	out.Child = children[0]
	return &out
}
func (m *MapGroups) String() string {
	return fmt.Sprintf("MapGroupsWithState keys=%s out=%s", exprList(m.Keys), m.Out)
}

func exprList(exprs []sql.Expr) string {
	parts := make([]string, len(exprs))
	for i, e := range exprs {
		parts[i] = e.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}
