package sql

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// A Value is one cell of a row. The concrete dynamic types are:
//
//	nil          SQL NULL (any column type)
//	bool         TypeBool
//	int64        TypeInt64, TypeTimestamp (µs since epoch), TypeInterval (µs)
//	float64      TypeFloat64
//	string       TypeString
//	Window       TypeWindow
//	[]byte       TypeBinary
//
// Timestamps and intervals share int64 representation; the schema carries
// the distinction.
type Value = any

// Window is an event-time window [Start, End), in microseconds since the
// Unix epoch. It is the value produced by the window() function and is a
// valid grouping key.
type Window struct {
	Start int64 // inclusive, µs
	End   int64 // exclusive, µs
}

// String formats the window using RFC 3339 endpoints.
func (w Window) String() string {
	return fmt.Sprintf("[%s, %s)", FormatTimestamp(w.Start), FormatTimestamp(w.End))
}

// TimestampVal converts a time.Time to the engine's timestamp representation.
func TimestampVal(t time.Time) int64 { return t.UnixMicro() }

// IntervalVal converts a time.Duration to the engine's interval representation.
func IntervalVal(d time.Duration) int64 { return d.Microseconds() }

// FormatTimestamp renders a timestamp value as RFC 3339 with microseconds.
func FormatTimestamp(us int64) string {
	return time.UnixMicro(us).UTC().Format("2006-01-02T15:04:05.000000Z")
}

// ParseTimestamp parses the formats accepted for timestamp literals.
func ParseTimestamp(s string) (int64, error) {
	for _, layout := range []string{
		time.RFC3339Nano,
		"2006-01-02 15:04:05.999999999Z07:00",
		"2006-01-02 15:04:05.999999999",
		"2006-01-02 15:04:05",
		"2006-01-02",
	} {
		if t, err := time.Parse(layout, s); err == nil {
			return t.UnixMicro(), nil
		}
	}
	return 0, fmt.Errorf("sql: cannot parse %q as timestamp", s)
}

// ParseInterval parses interval literals such as "10 seconds", "1 hour",
// "30 min", "1 day" or any Go duration string ("1h30m").
func ParseInterval(s string) (int64, error) {
	fields := strings.Fields(strings.ToLower(strings.TrimSpace(s)))
	if len(fields) == 2 {
		n, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return 0, fmt.Errorf("sql: bad interval %q: %v", s, err)
		}
		var unit time.Duration
		switch fields[1] {
		case "ms":
			return int64(n * float64(time.Millisecond.Microseconds())), nil
		case "us", "µs":
			return int64(n), nil
		case "s":
			return int64(n * float64(time.Second.Microseconds())), nil
		case "m":
			return int64(n * float64(time.Minute.Microseconds())), nil
		case "h":
			return int64(n * float64(time.Hour.Microseconds())), nil
		}
		switch strings.TrimSuffix(fields[1], "s") {
		case "microsecond", "us":
			unit = time.Microsecond
		case "millisecond", "ms":
			unit = time.Millisecond
		case "second", "sec":
			unit = time.Second
		case "minute", "min":
			unit = time.Minute
		case "hour", "hr":
			unit = time.Hour
		case "day":
			unit = 24 * time.Hour
		case "week":
			unit = 7 * 24 * time.Hour
		default:
			return 0, fmt.Errorf("sql: unknown interval unit %q", fields[1])
		}
		return int64(n * float64(unit.Microseconds())), nil
	}
	if d, err := time.ParseDuration(strings.ReplaceAll(s, " ", "")); err == nil {
		return d.Microseconds(), nil
	}
	return 0, fmt.Errorf("sql: cannot parse %q as interval", s)
}

// TypeOf reports the Type of a dynamic value. Int64 is reported for all
// int64 values; schema context distinguishes timestamps and intervals.
func TypeOf(v Value) Type {
	switch v.(type) {
	case nil:
		return TypeNull
	case bool:
		return TypeBool
	case int64:
		return TypeInt64
	case float64:
		return TypeFloat64
	case string:
		return TypeString
	case Window:
		return TypeWindow
	case []byte:
		return TypeBinary
	default:
		return TypeAny
	}
}

// Normalize converts convenient Go values (int, int32, time.Time,
// time.Duration, float32) to the engine's canonical representations.
func Normalize(v Value) Value {
	switch x := v.(type) {
	case int:
		return int64(x)
	case int32:
		return int64(x)
	case uint:
		return int64(x)
	case uint32:
		return int64(x)
	case uint64:
		return int64(x)
	case float32:
		return float64(x)
	case time.Time:
		return x.UnixMicro()
	case time.Duration:
		return x.Microseconds()
	default:
		return v
	}
}

// AsInt64 coerces a value to int64, truncating floats and parsing strings.
func AsInt64(v Value) (int64, bool) {
	switch x := v.(type) {
	case int64:
		return x, true
	case float64:
		return int64(x), true
	case bool:
		if x {
			return 1, true
		}
		return 0, true
	case string:
		n, err := strconv.ParseInt(strings.TrimSpace(x), 10, 64)
		if err != nil {
			f, ferr := strconv.ParseFloat(strings.TrimSpace(x), 64)
			if ferr != nil {
				return 0, false
			}
			return int64(f), true
		}
		return n, true
	default:
		return 0, false
	}
}

// AsFloat64 coerces a value to float64.
func AsFloat64(v Value) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case int64:
		return float64(x), true
	case bool:
		if x {
			return 1, true
		}
		return 0, true
	case string:
		f, err := strconv.ParseFloat(strings.TrimSpace(x), 64)
		return f, err == nil
	default:
		return 0, false
	}
}

// AsString renders a value in SQL display form; NULL renders as "NULL".
func AsString(v Value) string {
	switch x := v.(type) {
	case nil:
		return "NULL"
	case string:
		return x
	case bool:
		if x {
			return "true"
		}
		return "false"
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		if x == math.Trunc(x) && math.Abs(x) < 1e15 {
			return strconv.FormatFloat(x, 'f', 1, 64)
		}
		return strconv.FormatFloat(x, 'g', -1, 64)
	case Window:
		return x.String()
	case []byte:
		return fmt.Sprintf("0x%x", x)
	default:
		return fmt.Sprint(x)
	}
}

// AsBool coerces a value to bool.
func AsBool(v Value) (bool, bool) {
	switch x := v.(type) {
	case bool:
		return x, true
	case int64:
		return x != 0, true
	case string:
		b, err := strconv.ParseBool(strings.TrimSpace(x))
		return b, err == nil
	default:
		return false, false
	}
}

// Cast converts v to type t following SQL CAST semantics. NULL casts to NULL
// of any type. Failed string parses yield NULL (Spark behaviour) rather than
// an error.
func Cast(v Value, t Type) Value {
	if v == nil {
		return nil
	}
	switch t {
	case TypeBool:
		if b, ok := AsBool(v); ok {
			return b
		}
	case TypeInt64, TypeInterval:
		if n, ok := AsInt64(v); ok {
			return n
		}
	case TypeFloat64:
		if f, ok := AsFloat64(v); ok {
			return f
		}
	case TypeString:
		if ts, ok := v.(int64); ok && t == TypeString {
			return strconv.FormatInt(ts, 10)
		}
		return AsString(v)
	case TypeTimestamp:
		switch x := v.(type) {
		case int64:
			return x
		case float64:
			return int64(x * 1e6) // seconds → µs, matching Spark's cast(double as timestamp)
		case string:
			if us, err := ParseTimestamp(x); err == nil {
				return us
			}
		}
	case TypeBinary:
		switch x := v.(type) {
		case []byte:
			return x
		case string:
			return []byte(x)
		}
	case TypeAny:
		return v
	}
	return nil
}

// Compare orders two non-NULL values of a common type. The result is
// negative, zero, or positive. NULLs sort first and equal to each other,
// which matches the engine's ORDER BY and grouping semantics.
func Compare(a, b Value) int {
	if a == nil && b == nil {
		return 0
	}
	if a == nil {
		return -1
	}
	if b == nil {
		return 1
	}
	switch x := a.(type) {
	case int64:
		switch y := b.(type) {
		case int64:
			return cmpOrdered(x, y)
		case float64:
			return cmpOrdered(float64(x), y)
		}
	case float64:
		switch y := b.(type) {
		case float64:
			return cmpOrdered(x, y)
		case int64:
			return cmpOrdered(x, float64(y))
		}
	case string:
		if y, ok := b.(string); ok {
			return strings.Compare(x, y)
		}
	case bool:
		if y, ok := b.(bool); ok {
			switch {
			case x == y:
				return 0
			case !x:
				return -1
			default:
				return 1
			}
		}
	case Window:
		if y, ok := b.(Window); ok {
			if c := cmpOrdered(x.Start, y.Start); c != 0 {
				return c
			}
			return cmpOrdered(x.End, y.End)
		}
	}
	// Incomparable dynamic types: fall back to string form so ordering is
	// still total and deterministic.
	return strings.Compare(AsString(a), AsString(b))
}

func cmpOrdered[T int64 | float64](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Equal reports SQL equality of two values under numeric promotion. NULL is
// not equal to anything including NULL (use Compare for grouping semantics).
func Equal(a, b Value) bool {
	if a == nil || b == nil {
		return false
	}
	return Compare(a, b) == 0
}
