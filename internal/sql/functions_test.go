package sql

import (
	"testing"
	"time"
)

// evalFunc evaluates a scalar function call over literals.
func evalFunc(t *testing.T, name string, args ...any) Value {
	t.Helper()
	exprs := make([]Expr, len(args))
	for i, a := range args {
		if e, ok := a.(Expr); ok {
			exprs[i] = e
		} else {
			exprs[i] = Lit(a)
		}
	}
	b, err := NewFunc(name, exprs...).Bind(Schema{})
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return b.Eval(nil)
}

func TestMathFunctions(t *testing.T) {
	cases := []struct {
		name string
		args []any
		want Value
	}{
		{"abs", []any{-5}, int64(5)},
		{"abs", []any{-2.5}, 2.5},
		{"ceil", []any{1.2}, int64(2)},
		{"floor", []any{1.8}, int64(1)},
		{"round", []any{1.567, 2}, 1.57},
		{"round", []any{2.5}, 3.0},
		{"sqrt", []any{16.0}, 4.0},
		{"sqrt", []any{-1.0}, nil}, // NaN results become NULL
		{"pow", []any{2, 10}, 1024.0},
		{"greatest", []any{3, 9, 5}, int64(9)},
		{"least", []any{3, 9, 5}, int64(3)},
		{"greatest", []any{nil, 4}, int64(4)}, // NULLs skipped
	}
	for _, c := range cases {
		if got := evalFunc(t, c.name, c.args...); got != c.want {
			t.Errorf("%s(%v) = %v, want %v", c.name, c.args, got, c.want)
		}
	}
}

func TestStringFunctions(t *testing.T) {
	cases := []struct {
		name string
		args []any
		want Value
	}{
		{"length", []any{"hello"}, int64(5)},
		{"upper", []any{"abc"}, "ABC"},
		{"lower", []any{"ABC"}, "abc"},
		{"trim", []any{"  x "}, "x"},
		{"reverse", []any{"abc"}, "cba"},
		{"concat", []any{"a", 1, "b"}, "a1b"},
		{"concat", []any{"a", nil}, nil},
		{"contains", []any{"hello", "ell"}, true},
		{"starts_with", []any{"hello", "he"}, true},
		{"ends_with", []any{"hello", "lo"}, true},
		{"instr", []any{"hello", "l"}, int64(3)},
		{"replace", []any{"aaa", "a", "b"}, "bbb"},
		{"substring", []any{"hello", 2}, "ello"},
		{"substring", []any{"hello", 2, 3}, "ell"},
		{"substring", []any{"hello", -3}, "llo"},
		{"substring", []any{"hello", 99}, ""},
		{"split_part", []any{"a,b,c", ",", 2}, "b"},
		{"split_part", []any{"a,b,c", ",", 9}, ""},
	}
	for _, c := range cases {
		if got := evalFunc(t, c.name, c.args...); got != c.want {
			t.Errorf("%s(%v) = %v, want %v", c.name, c.args, got, c.want)
		}
	}
}

func TestNullFunctions(t *testing.T) {
	if got := evalFunc(t, "coalesce", nil, nil, 3); got != int64(3) {
		t.Errorf("coalesce = %v", got)
	}
	if got := evalFunc(t, "ifnull", nil, "d"); got != "d" {
		t.Errorf("ifnull = %v", got)
	}
	if got := evalFunc(t, "nullif", 3, 3); got != nil {
		t.Errorf("nullif(3,3) = %v", got)
	}
	if got := evalFunc(t, "nullif", 3, 4); got != int64(3) {
		t.Errorf("nullif(3,4) = %v", got)
	}
	if got := evalFunc(t, "if", true, "a", "b"); got != "a" {
		t.Errorf("if(true) = %v", got)
	}
	if got := evalFunc(t, "if", nil, "a", "b"); got != "b" {
		t.Errorf("if(NULL) takes the else branch, got %v", got)
	}
}

func TestTimeFunctions(t *testing.T) {
	ts := time.Date(2018, 6, 10, 13, 45, 30, 0, time.UTC)
	us := ts.UnixMicro()
	if got := evalFunc(t, "year", TimestampLit(us)); got != int64(2018) {
		t.Errorf("year = %v", got)
	}
	if got := evalFunc(t, "month", TimestampLit(us)); got != int64(6) {
		t.Errorf("month = %v", got)
	}
	if got := evalFunc(t, "hour", TimestampLit(us)); got != int64(13) {
		t.Errorf("hour = %v", got)
	}
	trunc := evalFunc(t, "date_trunc", "hour", TimestampLit(us))
	if trunc != time.Date(2018, 6, 10, 13, 0, 0, 0, time.UTC).UnixMicro() {
		t.Errorf("date_trunc hour = %v", trunc)
	}
	if got := evalFunc(t, "to_timestamp", "2018-06-10 13:45:30"); got != us {
		t.Errorf("to_timestamp = %v, want %v", got, us)
	}
	if got := evalFunc(t, "to_timestamp", "garbage"); got != nil {
		t.Errorf("to_timestamp(garbage) = %v", got)
	}
}

func TestWindowBoundsFunctions(t *testing.T) {
	w := Window{Start: 100, End: 200}
	if got := evalFunc(t, "window_start", Lit(w)); got != int64(100) {
		t.Errorf("window_start = %v", got)
	}
	if got := evalFunc(t, "window_end", Lit(w)); got != int64(200) {
		t.Errorf("window_end = %v", got)
	}
}

func TestJSONGet(t *testing.T) {
	doc := `{"country": "CA", "latency": 42.5, "ok": true, "nested": {"x": 1}}`
	cases := map[string]Value{
		"country": "CA",
		"latency": "42.5",
		"ok":      "true",
		"missing": nil,
	}
	for field, want := range cases {
		if got := evalFunc(t, "json_get", doc, field); got != want {
			t.Errorf("json_get(%q) = %v, want %v", field, got, want)
		}
	}
	if got := evalFunc(t, "json_get", `{"s": "a\"b"}`, "s"); got != `a\"b` && got != `a"b` {
		t.Errorf("escaped json_get = %v", got)
	}
}

func TestUnknownFunction(t *testing.T) {
	if _, err := NewFunc("no_such_fn", Lit(1)).Bind(Schema{}); err == nil {
		t.Error("unknown function should fail to bind")
	}
	if _, err := NewFunc("abs").Bind(Schema{}); err == nil {
		t.Error("arity error should fail to bind")
	}
}

func TestHashDeterministic(t *testing.T) {
	a := evalFunc(t, "hash", "x", 1)
	b := evalFunc(t, "hash", "x", 1)
	if a != b {
		t.Error("hash must be deterministic")
	}
	c := evalFunc(t, "hash", "x", 2)
	if a == c {
		t.Error("different inputs should hash differently (overwhelmingly)")
	}
}
