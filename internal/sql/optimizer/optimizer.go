// Package optimizer implements the rule-based logical optimizer (§5.3 of
// the paper): constant folding, expression simplification, filter merging,
// predicate pushdown (including through joins and unions) and projection
// collapsing. Rules run to a fixpoint, Catalyst-style, and apply equally to
// batch and streaming plans — which is how "most of the work in logical
// optimization for analytical workloads automatically applies to streaming".
package optimizer

import (
	"structream/internal/sql"
	"structream/internal/sql/logical"
)

// maxIterations bounds the fixpoint loop against rule ping-pong.
const maxIterations = 20

// Rule is one logical rewrite applied bottom-up across the plan.
type Rule struct {
	Name  string
	Apply func(logical.Plan) logical.Plan
}

// DefaultRules is the standard rule battery, in application order.
func DefaultRules() []Rule {
	return []Rule{
		{Name: "FoldConstants", Apply: foldConstantsRule},
		{Name: "SimplifyExpressions", Apply: simplifyRule},
		{Name: "CombineFilters", Apply: combineFilters},
		{Name: "PushDownPredicates", Apply: pushDownPredicates},
		{Name: "CollapseProjects", Apply: collapseProjects},
		{Name: "RemoveNoopFilters", Apply: removeNoopFilters},
	}
}

// Optimize runs the default rules to fixpoint and returns the rewritten
// plan. Plans compare by their Explain rendering, which is cheap at query
// sizes and exact enough for convergence detection.
func Optimize(plan logical.Plan) logical.Plan {
	rules := DefaultRules()
	prev := logical.Explain(plan)
	for i := 0; i < maxIterations; i++ {
		for _, r := range rules {
			plan = r.Apply(plan)
		}
		cur := logical.Explain(plan)
		if cur == prev {
			break
		}
		prev = cur
	}
	return plan
}

// ---------------------------------------------------------------- folding

// foldConstantsRule evaluates every literal-only sub-expression at plan
// time.
func foldConstantsRule(plan logical.Plan) logical.Plan {
	return transformExprs(plan, foldConstants)
}

func foldConstants(e sql.Expr) sql.Expr {
	return sql.TransformExpr(e, func(x sql.Expr) sql.Expr {
		switch x.(type) {
		case *sql.Literal, *sql.Column, *sql.AggExpr, *sql.WindowExpr, *sql.Alias:
			return x
		}
		if len(x.Children()) == 0 {
			return x
		}
		for _, c := range x.Children() {
			if !isLiteral(c) {
				return x
			}
		}
		b, err := x.Bind(sql.Schema{})
		if err != nil {
			return x
		}
		v := b.Eval(nil)
		return &sql.Literal{Val: v, Type: b.Type}
	})
}

func isLiteral(e sql.Expr) bool {
	_, ok := e.(*sql.Literal)
	return ok
}

// ---------------------------------------------------------------- simplify

// simplifyRule applies boolean algebra identities: x AND TRUE → x,
// x OR FALSE → x, x AND FALSE → FALSE, x OR TRUE → TRUE, NOT NOT x → x,
// and double-cast elimination.
func simplifyRule(plan logical.Plan) logical.Plan {
	return transformExprs(plan, simplifyExpr)
}

func simplifyExpr(e sql.Expr) sql.Expr {
	return sql.TransformExpr(e, func(x sql.Expr) sql.Expr {
		switch n := x.(type) {
		case *sql.Binary:
			switch n.Op {
			case sql.OpAnd:
				if isBoolLit(n.L, true) {
					return n.R
				}
				if isBoolLit(n.R, true) {
					return n.L
				}
				if isBoolLit(n.L, false) || isBoolLit(n.R, false) {
					return sql.Lit(false)
				}
			case sql.OpOr:
				if isBoolLit(n.L, false) {
					return n.R
				}
				if isBoolLit(n.R, false) {
					return n.L
				}
				if isBoolLit(n.L, true) || isBoolLit(n.R, true) {
					return sql.Lit(true)
				}
			}
		case *sql.Unary:
			if n.Op == sql.OpNot {
				if inner, ok := n.Child.(*sql.Unary); ok && inner.Op == sql.OpNot {
					return inner.Child
				}
				if lit, ok := n.Child.(*sql.Literal); ok {
					if b, ok := lit.Val.(bool); ok {
						return sql.Lit(!b)
					}
				}
			}
		case *sql.CastExpr:
			if inner, ok := n.Child.(*sql.CastExpr); ok && inner.To == n.To {
				return &sql.CastExpr{Child: inner.Child, To: n.To}
			}
		}
		return x
	})
}

func isBoolLit(e sql.Expr, want bool) bool {
	lit, ok := e.(*sql.Literal)
	if !ok {
		return false
	}
	b, ok := lit.Val.(bool)
	return ok && b == want
}

// ---------------------------------------------------------------- filters

// combineFilters merges Filter(Filter(x)) into one conjunction.
func combineFilters(plan logical.Plan) logical.Plan {
	return logical.Transform(plan, func(p logical.Plan) logical.Plan {
		f, ok := p.(*logical.Filter)
		if !ok {
			return p
		}
		inner, ok := f.Child.(*logical.Filter)
		if !ok {
			return p
		}
		return &logical.Filter{Child: inner.Child, Cond: sql.And(inner.Cond, f.Cond)}
	})
}

// removeNoopFilters drops Filter(TRUE) nodes.
func removeNoopFilters(plan logical.Plan) logical.Plan {
	return logical.Transform(plan, func(p logical.Plan) logical.Plan {
		if f, ok := p.(*logical.Filter); ok && isBoolLit(f.Cond, true) {
			return f.Child
		}
		return p
	})
}

// pushDownPredicates moves filters toward the leaves: below projections
// (substituting aliases), into the matching side of joins, below unions,
// and below watermark/window-assignment operators when safe.
func pushDownPredicates(plan logical.Plan) logical.Plan {
	return logical.Transform(plan, func(p logical.Plan) logical.Plan {
		f, ok := p.(*logical.Filter)
		if !ok {
			return p
		}
		switch child := f.Child.(type) {
		case *logical.Project:
			if cond, ok := substituteThroughProject(f.Cond, child); ok {
				return &logical.Project{
					Child: &logical.Filter{Child: child.Child, Cond: cond},
					Exprs: child.Exprs,
				}
			}
		case *logical.Join:
			return pushThroughJoin(f, child)
		case *logical.Union:
			return &logical.Union{
				Left:  &logical.Filter{Child: child.Left, Cond: f.Cond},
				Right: &logical.Filter{Child: child.Right, Cond: f.Cond},
			}
		case *logical.WithWatermark:
			return &logical.WithWatermark{
				Child:  &logical.Filter{Child: child.Child, Cond: f.Cond},
				Column: child.Column,
				Delay:  child.Delay,
			}
		case *logical.Distinct:
			// Filtering commutes with duplicate elimination only when the
			// whole row is the key; with a column subset, filtering first
			// could change which representative row survives.
			if len(child.Cols) == 0 {
				return &logical.Distinct{
					Child: &logical.Filter{Child: child.Child, Cond: f.Cond},
				}
			}
		case *logical.WindowAssign:
			// Safe only when the predicate does not mention the window
			// column the operator introduces.
			if !referencesColumn(f.Cond, child.Name) {
				return &logical.WindowAssign{
					Child:  &logical.Filter{Child: child.Child, Cond: f.Cond},
					Window: child.Window,
					Name:   child.Name,
				}
			}
		}
		return p
	})
}

// substituteThroughProject rewrites a predicate over a projection's output
// into one over its input by inlining projection expressions. It refuses
// when a referenced output column maps to an aggregate (cannot push below)
// or cannot be found.
func substituteThroughProject(cond sql.Expr, proj *logical.Project) (sql.Expr, bool) {
	byName := map[string]sql.Expr{}
	for _, e := range proj.Exprs {
		inner := e
		if a, ok := e.(*sql.Alias); ok {
			inner = a.Child
		}
		if sql.ContainsAgg(inner) {
			continue
		}
		byName[sql.OutputName(e)] = inner
	}
	ok := true
	out := sql.TransformExpr(cond, func(x sql.Expr) sql.Expr {
		c, isCol := x.(*sql.Column)
		if !isCol {
			return x
		}
		name := c.Name
		if i := lastDot(name); i >= 0 {
			name = name[i+1:]
		}
		if repl, found := byName[name]; found {
			return repl
		}
		if _, found := byName[c.Name]; found {
			return byName[c.Name]
		}
		ok = false
		return x
	})
	return out, ok
}

// pushThroughJoin splits a conjunctive predicate and pushes each conjunct
// to the side whose schema fully covers it, respecting outer-join
// null-extension semantics.
func pushThroughJoin(f *logical.Filter, j *logical.Join) logical.Plan {
	leftSchema, err1 := j.Left.Schema()
	rightSchema, err2 := j.Right.Schema()
	if err1 != nil || err2 != nil {
		return f
	}
	var leftConds, rightConds, keep []sql.Expr
	for _, c := range splitConjuncts(f.Cond) {
		coveredLeft := coveredBy(c, leftSchema)
		coveredRight := coveredBy(c, rightSchema)
		switch {
		// For an outer join, only predicates on the preserved side can be
		// pushed; pushing into the null-extended side would change results.
		case coveredLeft && (j.Type == logical.InnerJoin || j.Type == logical.LeftOuterJoin ||
			j.Type == logical.LeftSemiJoin || j.Type == logical.LeftAntiJoin):
			leftConds = append(leftConds, c)
		case coveredRight && (j.Type == logical.InnerJoin || j.Type == logical.RightOuterJoin):
			rightConds = append(rightConds, c)
		default:
			keep = append(keep, c)
		}
	}
	if len(leftConds) == 0 && len(rightConds) == 0 {
		return f
	}
	left := j.Left
	if len(leftConds) > 0 {
		left = &logical.Filter{Child: left, Cond: conjoin(leftConds)}
	}
	right := j.Right
	if len(rightConds) > 0 {
		right = &logical.Filter{Child: right, Cond: conjoin(rightConds)}
	}
	var out logical.Plan = &logical.Join{Left: left, Right: right, Type: j.Type, Cond: j.Cond}
	if len(keep) > 0 {
		out = &logical.Filter{Child: out, Cond: conjoin(keep)}
	}
	return out
}

// splitConjuncts flattens a tree of ANDs into its conjuncts.
func splitConjuncts(e sql.Expr) []sql.Expr {
	if b, ok := e.(*sql.Binary); ok && b.Op == sql.OpAnd {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []sql.Expr{e}
}

func conjoin(exprs []sql.Expr) sql.Expr {
	out := exprs[0]
	for _, e := range exprs[1:] {
		out = sql.And(out, e)
	}
	return out
}

// coveredBy reports whether every column reference in e resolves in s.
func coveredBy(e sql.Expr, s sql.Schema) bool {
	ok := true
	sql.WalkExpr(e, func(x sql.Expr) {
		if c, isCol := x.(*sql.Column); isCol {
			if _, err := s.Resolve(c.Name); err != nil {
				ok = false
			}
		}
	})
	return ok
}

func referencesColumn(e sql.Expr, name string) bool {
	refs := sql.ExprReferences(e)
	if refs[name] {
		return true
	}
	for r := range refs {
		if i := lastDot(r); i >= 0 && r[i+1:] == name {
			return true
		}
	}
	return false
}

// collapseProjects merges Project(Project(x)) by inlining the inner
// projection's expressions into the outer one.
func collapseProjects(plan logical.Plan) logical.Plan {
	return logical.Transform(plan, func(p logical.Plan) logical.Plan {
		outer, ok := p.(*logical.Project)
		if !ok {
			return p
		}
		inner, ok := outer.Child.(*logical.Project)
		if !ok {
			return p
		}
		// Refuse when the inner projection contains aggregates (should not
		// occur post-analysis) or when substitution fails.
		exprs := make([]sql.Expr, len(outer.Exprs))
		for i, e := range outer.Exprs {
			name := sql.OutputName(e)
			sub, ok := substituteThroughProject(stripAlias(e), inner)
			if !ok {
				return p
			}
			exprs[i] = sql.As(sub, name)
		}
		return &logical.Project{Child: inner.Child, Exprs: exprs}
	})
}

func stripAlias(e sql.Expr) sql.Expr {
	if a, ok := e.(*sql.Alias); ok {
		return a.Child
	}
	return e
}

func lastDot(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '.' {
			return i
		}
	}
	return -1
}

// transformExprs applies fn to every expression in every node of the plan.
func transformExprs(plan logical.Plan, fn func(sql.Expr) sql.Expr) logical.Plan {
	return logical.Transform(plan, func(p logical.Plan) logical.Plan {
		switch n := p.(type) {
		case *logical.Project:
			exprs := make([]sql.Expr, len(n.Exprs))
			for i, e := range n.Exprs {
				exprs[i] = fn(e)
			}
			return &logical.Project{Child: n.Child, Exprs: exprs}
		case *logical.Filter:
			return &logical.Filter{Child: n.Child, Cond: fn(n.Cond)}
		case *logical.Join:
			if n.Cond == nil {
				return p
			}
			return &logical.Join{Left: n.Left, Right: n.Right, Type: n.Type, Cond: fn(n.Cond)}
		case *logical.Aggregate:
			keys := make([]sql.Expr, len(n.Keys))
			for i, k := range n.Keys {
				keys[i] = fn(k)
			}
			aggs := make([]logical.NamedAgg, len(n.Aggs))
			for i, na := range n.Aggs {
				agg := na.Agg
				if agg.Child != nil {
					agg = &sql.AggExpr{Kind: agg.Kind, Child: fn(agg.Child)}
				}
				aggs[i] = logical.NamedAgg{Agg: agg, Name: na.Name}
			}
			return &logical.Aggregate{Child: n.Child, Keys: keys, Aggs: aggs}
		case *logical.Sort:
			orders := make([]logical.SortOrder, len(n.Orders))
			for i, o := range n.Orders {
				orders[i] = logical.SortOrder{Expr: fn(o.Expr), Desc: o.Desc}
			}
			return &logical.Sort{Child: n.Child, Orders: orders}
		default:
			return p
		}
	})
}
