package optimizer

import (
	"strings"
	"testing"

	"structream/internal/sql"
	"structream/internal/sql/logical"
)

func scan(name string, fields ...sql.Field) *logical.Scan {
	return &logical.Scan{Name: name, Out: sql.Schema{Fields: fields}}
}

func defaultScan() *logical.Scan {
	return scan("t",
		sql.Field{Name: "a", Type: sql.TypeInt64},
		sql.Field{Name: "b", Type: sql.TypeInt64},
		sql.Field{Name: "s", Type: sql.TypeString},
	)
}

func TestConstantFolding(t *testing.T) {
	p := &logical.Filter{
		Child: defaultScan(),
		Cond:  sql.Gt(sql.Col("a"), sql.Add(sql.Lit(1), sql.Mul(sql.Lit(2), sql.Lit(3)))),
	}
	out := Optimize(p)
	f := out.(*logical.Filter)
	b := f.Cond.(*sql.Binary)
	lit, ok := b.R.(*sql.Literal)
	if !ok || lit.Val != int64(7) {
		t.Errorf("folded cond = %s", f.Cond)
	}
}

func TestSimplifyBooleans(t *testing.T) {
	cases := []struct {
		in   sql.Expr
		want string
	}{
		{sql.And(sql.Gt(sql.Col("a"), sql.Lit(1)), sql.Lit(true)), "(a > 1)"},
		{sql.Or(sql.Gt(sql.Col("a"), sql.Lit(1)), sql.Lit(false)), "(a > 1)"},
		{sql.Not(sql.Not(sql.Gt(sql.Col("a"), sql.Lit(1)))), "(a > 1)"},
	}
	for _, c := range cases {
		p := Optimize(&logical.Filter{Child: defaultScan(), Cond: c.in})
		f, ok := p.(*logical.Filter)
		if !ok {
			t.Errorf("%s: filter was removed entirely: %T", c.in, p)
			continue
		}
		if f.Cond.String() != c.want {
			t.Errorf("simplify(%s) = %s, want %s", c.in, f.Cond, c.want)
		}
	}
}

func TestFilterTrueRemoved(t *testing.T) {
	p := Optimize(&logical.Filter{Child: defaultScan(), Cond: sql.Lit(true)})
	if _, ok := p.(*logical.Scan); !ok {
		t.Errorf("Filter(TRUE) should be removed, got %T", p)
	}
	// AND of two TRUEs also folds away.
	p2 := Optimize(&logical.Filter{Child: defaultScan(), Cond: sql.And(sql.Lit(true), sql.Lit(true))})
	if _, ok := p2.(*logical.Scan); !ok {
		t.Errorf("Filter(TRUE AND TRUE) should be removed, got %T", p2)
	}
}

func TestCombineFilters(t *testing.T) {
	p := &logical.Filter{
		Child: &logical.Filter{Child: defaultScan(), Cond: sql.Gt(sql.Col("a"), sql.Lit(1))},
		Cond:  sql.Lt(sql.Col("b"), sql.Lit(9)),
	}
	out := Optimize(p)
	f, ok := out.(*logical.Filter)
	if !ok {
		t.Fatalf("top = %T", out)
	}
	if _, ok := f.Child.(*logical.Scan); !ok {
		t.Errorf("filters not combined:\n%s", logical.Explain(out))
	}
}

func TestPushFilterThroughProject(t *testing.T) {
	proj := &logical.Project{Child: defaultScan(), Exprs: []sql.Expr{
		sql.As(sql.Col("a"), "x"),
		sql.As(sql.Mul(sql.Col("b"), sql.Lit(2)), "y"),
	}}
	p := &logical.Filter{Child: proj, Cond: sql.Gt(sql.Col("y"), sql.Lit(10))}
	out := Optimize(p)
	top, ok := out.(*logical.Project)
	if !ok {
		t.Fatalf("top = %T:\n%s", out, logical.Explain(out))
	}
	f, ok := top.Child.(*logical.Filter)
	if !ok {
		t.Fatalf("filter not pushed below project:\n%s", logical.Explain(out))
	}
	// The condition must now reference b, not y.
	if !strings.Contains(f.Cond.String(), "b") {
		t.Errorf("cond = %s", f.Cond)
	}
}

func TestPushFilterThroughJoin(t *testing.T) {
	left := &logical.SubqueryAlias{Child: defaultScan(), Alias: "l"}
	right := &logical.SubqueryAlias{Child: scan("u",
		sql.Field{Name: "c", Type: sql.TypeInt64},
		sql.Field{Name: "d", Type: sql.TypeInt64}), Alias: "r"}
	join := &logical.Join{Left: left, Right: right, Type: logical.InnerJoin,
		Cond: sql.Eq(sql.Col("l.a"), sql.Col("r.c"))}
	p := &logical.Filter{Child: join, Cond: sql.And(
		sql.Gt(sql.Col("l.b"), sql.Lit(5)),
		sql.Lt(sql.Col("r.d"), sql.Lit(3)),
	)}
	out := Optimize(p)
	j, ok := out.(*logical.Join)
	if !ok {
		t.Fatalf("filter should be fully pushed:\n%s", logical.Explain(out))
	}
	if _, ok := j.Left.(*logical.Filter); !ok {
		t.Errorf("left conjunct not pushed:\n%s", logical.Explain(out))
	}
	if _, ok := j.Right.(*logical.Filter); !ok {
		t.Errorf("right conjunct not pushed:\n%s", logical.Explain(out))
	}
}

func TestOuterJoinPushOnlyPreservedSide(t *testing.T) {
	left := &logical.SubqueryAlias{Child: defaultScan(), Alias: "l"}
	right := &logical.SubqueryAlias{Child: scan("u",
		sql.Field{Name: "c", Type: sql.TypeInt64}), Alias: "r"}
	join := &logical.Join{Left: left, Right: right, Type: logical.LeftOuterJoin,
		Cond: sql.Eq(sql.Col("l.a"), sql.Col("r.c"))}
	p := &logical.Filter{Child: join, Cond: sql.Lt(sql.Col("r.c"), sql.Lit(3))}
	out := Optimize(p)
	// The right-side predicate must NOT be pushed below a left outer join;
	// it stays above the join.
	if _, ok := out.(*logical.Filter); !ok {
		t.Errorf("predicate on null-extended side must stay above the join:\n%s", logical.Explain(out))
	}
}

func TestPushFilterThroughUnion(t *testing.T) {
	u := &logical.Union{Left: defaultScan(), Right: defaultScan()}
	p := &logical.Filter{Child: u, Cond: sql.Gt(sql.Col("a"), sql.Lit(1))}
	out := Optimize(p)
	un, ok := out.(*logical.Union)
	if !ok {
		t.Fatalf("top = %T", out)
	}
	if _, ok := un.Left.(*logical.Filter); !ok {
		t.Errorf("filter not duplicated into union sides:\n%s", logical.Explain(out))
	}
}

func TestPushFilterBelowWatermark(t *testing.T) {
	wm := &logical.WithWatermark{Child: scan("t",
		sql.Field{Name: "a", Type: sql.TypeInt64},
		sql.Field{Name: "ts", Type: sql.TypeTimestamp}), Column: "ts", Delay: 1}
	p := &logical.Filter{Child: wm, Cond: sql.Gt(sql.Col("a"), sql.Lit(0))}
	out := Optimize(p)
	w, ok := out.(*logical.WithWatermark)
	if !ok {
		t.Fatalf("top = %T", out)
	}
	if _, ok := w.Child.(*logical.Filter); !ok {
		t.Errorf("filter not pushed below watermark:\n%s", logical.Explain(out))
	}
}

func TestWindowAssignPushdownGuard(t *testing.T) {
	wa := &logical.WindowAssign{
		Child:  scan("t", sql.Field{Name: "ts", Type: sql.TypeTimestamp}),
		Window: sql.NewWindow(sql.Col("ts"), 1000, 0),
		Name:   "window",
	}
	// Predicate over the window column must stay above WindowAssign.
	p := &logical.Filter{Child: wa,
		Cond: sql.IsNotNull(sql.Col("window"))}
	out := Optimize(p)
	if _, ok := out.(*logical.Filter); !ok {
		t.Errorf("window predicate must not be pushed below WindowAssign:\n%s", logical.Explain(out))
	}
	// Predicate on other columns is pushed.
	p2 := &logical.Filter{Child: wa, Cond: sql.IsNotNull(sql.Col("ts"))}
	out2 := Optimize(p2)
	if _, ok := out2.(*logical.WindowAssign); !ok {
		t.Errorf("ts predicate should be pushed below WindowAssign:\n%s", logical.Explain(out2))
	}
}

func TestCollapseProjects(t *testing.T) {
	inner := &logical.Project{Child: defaultScan(), Exprs: []sql.Expr{
		sql.As(sql.Add(sql.Col("a"), sql.Lit(1)), "x"),
		sql.As(sql.Col("b"), "y"),
	}}
	outer := &logical.Project{Child: inner, Exprs: []sql.Expr{
		sql.As(sql.Mul(sql.Col("x"), sql.Lit(2)), "z"),
	}}
	out := Optimize(outer)
	proj, ok := out.(*logical.Project)
	if !ok {
		t.Fatalf("top = %T", out)
	}
	if _, ok := proj.Child.(*logical.Scan); !ok {
		t.Errorf("projects not collapsed:\n%s", logical.Explain(out))
	}
	s, err := out.Schema()
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 || s.Field(0).Name != "z" {
		t.Errorf("schema = %s", s)
	}
}

func TestOptimizePreservesSchema(t *testing.T) {
	// Whatever the rules do, the output schema must not change.
	inner := &logical.Project{Child: defaultScan(), Exprs: []sql.Expr{
		sql.As(sql.Col("a"), "x"), sql.As(sql.Col("s"), "name"),
	}}
	p := &logical.Filter{Child: inner, Cond: sql.And(
		sql.Gt(sql.Col("x"), sql.Lit(1)), sql.Lit(true))}
	before, err := p.Schema()
	if err != nil {
		t.Fatal(err)
	}
	out := Optimize(p)
	after, err := out.Schema()
	if err != nil {
		t.Fatal(err)
	}
	if !before.Equal(after) {
		t.Errorf("schema changed: %s -> %s", before, after)
	}
}

func TestOptimizeTerminates(t *testing.T) {
	// A deep stack of filters and projects must converge within the
	// iteration bound.
	var p logical.Plan = defaultScan()
	for i := 0; i < 30; i++ {
		p = &logical.Filter{Child: p, Cond: sql.Gt(sql.Col("a"), sql.Lit(i))}
		p = &logical.Project{Child: p, Exprs: []sql.Expr{
			sql.As(sql.Col("a"), "a"), sql.As(sql.Col("b"), "b"), sql.As(sql.Col("s"), "s")}}
	}
	out := Optimize(p)
	if _, err := out.Schema(); err != nil {
		t.Fatalf("optimized plan invalid: %v", err)
	}
}

func TestPushFilterThroughDistinct(t *testing.T) {
	d := &logical.Distinct{Child: defaultScan()}
	p := &logical.Filter{Child: d, Cond: sql.Gt(sql.Col("a"), sql.Lit(1))}
	out := Optimize(p)
	dd, ok := out.(*logical.Distinct)
	if !ok {
		t.Fatalf("top = %T", out)
	}
	if _, ok := dd.Child.(*logical.Filter); !ok {
		t.Errorf("filter not pushed below distinct:\n%s", logical.Explain(out))
	}
	// With a key subset the filter must stay above.
	d2 := &logical.Distinct{Child: defaultScan(), Cols: []string{"a"}}
	p2 := &logical.Filter{Child: d2, Cond: sql.Gt(sql.Col("b"), sql.Lit(1))}
	if _, ok := Optimize(p2).(*logical.Filter); !ok {
		t.Error("filter must not push below dropDuplicates(cols)")
	}
}
