package sql

import (
	"strings"
	"testing"
	"time"
)

var testSchema = NewSchema(
	Field{Name: "id", Type: TypeInt64},
	Field{Name: "name", Type: TypeString},
	Field{Name: "score", Type: TypeFloat64},
	Field{Name: "active", Type: TypeBool},
	Field{Name: "ts", Type: TypeTimestamp},
)

var testRow = Row{int64(7), "alice", 2.5, true, int64(1_000_000)}

// evalExpr binds e against testSchema and evaluates it on testRow.
func evalExpr(t *testing.T, e Expr) Value {
	t.Helper()
	b, err := e.Bind(testSchema)
	if err != nil {
		t.Fatalf("Bind(%s): %v", e, err)
	}
	return b.Eval(testRow)
}

func TestColumnBind(t *testing.T) {
	if got := evalExpr(t, Col("id")); got != int64(7) {
		t.Errorf("id = %v", got)
	}
	if got := evalExpr(t, Col("NAME")); got != "alice" {
		t.Errorf("case-insensitive lookup failed: %v", got)
	}
	if _, err := Col("missing").Bind(testSchema); err == nil {
		t.Error("binding a missing column should fail")
	}
}

func TestQualifiedColumnResolution(t *testing.T) {
	qualified := testSchema.Qualify("t")
	b, err := Col("t.id").Bind(qualified)
	if err != nil {
		t.Fatalf("qualified bind: %v", err)
	}
	if got := b.Eval(testRow); got != int64(7) {
		t.Errorf("t.id = %v", got)
	}
	// Bare name also resolves when unambiguous.
	if _, err := Col("id").Bind(qualified); err != nil {
		t.Errorf("bare name in qualified schema: %v", err)
	}
}

func TestAmbiguousColumn(t *testing.T) {
	s := NewSchema(Field{"x", TypeInt64}, Field{"x", TypeInt64})
	if _, err := Col("x").Bind(s); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("expected ambiguity error, got %v", err)
	}
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		e    Expr
		want Value
	}{
		{Add(Col("id"), Lit(3)), int64(10)},
		{Sub(Col("id"), Lit(10)), int64(-3)},
		{Mul(Col("id"), Col("id")), int64(49)},
		{Div(Col("id"), Lit(2)), 3.5}, // division is always double
		{NewBinary(OpMod, Col("id"), Lit(4)), int64(3)},
		{Add(Col("score"), Lit(1)), 3.5},
		{Mul(Lit(2), Col("score")), 5.0},
		{Div(Col("id"), Lit(0)), nil}, // division by zero yields NULL
		{NewBinary(OpMod, Col("id"), Lit(0)), nil},
		{Add(Lit("a"), Lit("b")), "ab"}, // string concatenation via +
	}
	for _, c := range cases {
		if got := evalExpr(t, c.e); got != c.want {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestArithTypeErrors(t *testing.T) {
	if _, err := Add(Col("active"), Lit(1)).Bind(testSchema); err == nil {
		t.Error("bool + int should not bind")
	}
	if _, err := Mul(Col("name"), Lit(2)).Bind(testSchema); err == nil {
		t.Error("string * int should not bind")
	}
}

func TestTimestampArithmetic(t *testing.T) {
	e := Add(Col("ts"), IntervalLit(int64(time.Minute/time.Microsecond)))
	b, err := e.Bind(testSchema)
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	if b.Type != TypeTimestamp {
		t.Errorf("ts + interval should be timestamp, got %s", b.Type)
	}
	if got := b.Eval(testRow); got != int64(61_000_000) {
		t.Errorf("ts + 1min = %v", got)
	}
	diff := Sub(Col("ts"), Col("ts"))
	db, err := diff.Bind(testSchema)
	if err != nil {
		t.Fatalf("bind diff: %v", err)
	}
	if db.Type != TypeInterval {
		t.Errorf("ts - ts should be interval, got %s", db.Type)
	}
}

func TestComparisons(t *testing.T) {
	cases := []struct {
		e    Expr
		want Value
	}{
		{Eq(Col("id"), Lit(7)), true},
		{Ne(Col("id"), Lit(7)), false},
		{Lt(Col("id"), Lit(8)), true},
		{Ge(Col("score"), Lit(2.5)), true},
		{Gt(Col("name"), Lit("aaa")), true},
		{Eq(Col("id"), Lit(nil)), nil},  // comparisons with NULL are NULL
		{Eq(Col("id"), Lit(7.0)), true}, // numeric promotion
	}
	for _, c := range cases {
		if got := evalExpr(t, c.e); got != c.want {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
	if _, err := Eq(Col("active"), Lit("x")).Bind(testSchema); err == nil {
		t.Error("bool = string should not bind")
	}
}

func TestThreeValuedLogic(t *testing.T) {
	null := Lit(nil)
	tr, fa := Lit(true), Lit(false)
	cases := []struct {
		e    Expr
		want Value
	}{
		{And(tr, tr), true},
		{And(tr, fa), false},
		{And(fa, null), false}, // false AND NULL = false
		{And(tr, null), nil},
		{Or(fa, fa), false},
		{Or(fa, tr), true},
		{Or(tr, null), true}, // true OR NULL = true
		{Or(fa, null), nil},
		{Not(tr), false},
		{Not(null), nil},
	}
	for _, c := range cases {
		if got := evalExpr(t, c.e); got != c.want {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestIsNull(t *testing.T) {
	if got := evalExpr(t, IsNull(Lit(nil))); got != true {
		t.Error("IsNull(NULL)")
	}
	if got := evalExpr(t, IsNotNull(Col("id"))); got != true {
		t.Error("IsNotNull(id)")
	}
}

func TestLike(t *testing.T) {
	cases := []struct {
		s, pat string
		want   bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%llo", true},
		{"hello", "h_llo", true},
		{"hello", "h_", false},
		{"hello", "%", true},
		{"", "%", true},
		{"abc", "a%c", true},
		{"abc", "a%d", false},
		{"a.c", "a.c", true},
	}
	for _, c := range cases {
		e := NewBinary(OpLike, Lit(c.s), Lit(c.pat))
		if got := evalExpr(t, e); got != c.want {
			t.Errorf("%q LIKE %q = %v, want %v", c.s, c.pat, got, c.want)
		}
	}
}

func TestCase(t *testing.T) {
	e := &Case{
		Whens: []WhenClause{
			{When: Gt(Col("id"), Lit(10)), Then: Lit("big")},
			{When: Gt(Col("id"), Lit(5)), Then: Lit("medium")},
		},
		Else: Lit("small"),
	}
	if got := evalExpr(t, e); got != "medium" {
		t.Errorf("CASE = %v", got)
	}
	noElse := &Case{Whens: []WhenClause{{When: Lit(false), Then: Lit(1)}}}
	if got := evalExpr(t, noElse); got != nil {
		t.Errorf("CASE without ELSE should yield NULL, got %v", got)
	}
}

func TestInList(t *testing.T) {
	in := &InList{Child: Col("id"), List: []Expr{Lit(1), Lit(7), Lit(9)}}
	if got := evalExpr(t, in); got != true {
		t.Error("7 IN (1,7,9)")
	}
	notIn := &InList{Child: Col("id"), List: []Expr{Lit(1), Lit(2)}}
	if got := evalExpr(t, notIn); got != false {
		t.Error("7 IN (1,2)")
	}
	withNull := &InList{Child: Col("id"), List: []Expr{Lit(1), Lit(nil)}}
	if got := evalExpr(t, withNull); got != nil {
		t.Error("7 IN (1, NULL) should be NULL")
	}
}

func TestCastExpr(t *testing.T) {
	b, err := NewCast(Col("id"), TypeString).Bind(testSchema)
	if err != nil {
		t.Fatal(err)
	}
	if b.Type != TypeString || b.Eval(testRow) != "7" {
		t.Errorf("CAST(id AS string) = %v (%s)", b.Eval(testRow), b.Type)
	}
	// Casting to the same type is the identity and keeps the child type.
	same, err := NewCast(Col("id"), TypeInt64).Bind(testSchema)
	if err != nil {
		t.Fatal(err)
	}
	if same.Eval(testRow) != int64(7) {
		t.Error("identity cast")
	}
}

func TestAliasAndOutputName(t *testing.T) {
	if OutputName(As(Col("id"), "x")) != "x" {
		t.Error("alias output name")
	}
	if OutputName(Col("t.id")) != "id" {
		t.Error("qualified column output name strips prefix")
	}
	if OutputName(Add(Col("id"), Lit(1))) == "" {
		t.Error("derived output name must be non-empty")
	}
}

func TestTransformExpr(t *testing.T) {
	// Replace every column with literal 1, check the rewrite reaches leaves.
	e := Add(Col("id"), Mul(Col("score"), Lit(2)))
	rewritten := TransformExpr(e, func(x Expr) Expr {
		if _, ok := x.(*Column); ok {
			return Lit(1)
		}
		return x
	})
	b, err := rewritten.Bind(Schema{})
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Eval(nil); got != int64(3) {
		t.Errorf("rewritten eval = %v", got)
	}
}

func TestExprReferences(t *testing.T) {
	e := And(Gt(Col("a"), Lit(1)), Eq(Col("b"), Col("a")))
	refs := ExprReferences(e)
	if !refs["a"] || !refs["b"] || len(refs) != 2 {
		t.Errorf("refs = %v", refs)
	}
}

func TestWindowExprTumbling(t *testing.T) {
	w := NewWindow(Col("ts"), 10*time.Second, 0)
	b, err := w.Bind(testSchema)
	if err != nil {
		t.Fatal(err)
	}
	if b.Type != TypeWindow {
		t.Fatalf("window type = %s", b.Type)
	}
	got := b.Eval(Row{nil, nil, nil, nil, int64(25_000_000)})
	want := Window{Start: 20_000_000, End: 30_000_000}
	if got != want {
		t.Errorf("window = %v, want %v", got, want)
	}
	// Negative timestamps floor correctly.
	got = b.Eval(Row{nil, nil, nil, nil, int64(-5_000_000)})
	want = Window{Start: -10_000_000, End: 0}
	if got != want {
		t.Errorf("window(-5s) = %v, want %v", got, want)
	}
}

func TestWindowExprSliding(t *testing.T) {
	w := NewWindow(Col("ts"), 10*time.Second, 5*time.Second)
	wins := w.Windows(12_000_000)
	if len(wins) != 2 {
		t.Fatalf("12s in 10s/5s windows: got %d windows %v", len(wins), wins)
	}
	if wins[0] != (Window{Start: 5_000_000, End: 15_000_000}) ||
		wins[1] != (Window{Start: 10_000_000, End: 20_000_000}) {
		t.Errorf("windows = %v", wins)
	}
	// Every returned window must contain the timestamp.
	for _, ts := range []int64{0, 1, 4_999_999, 5_000_000, 123_456_789} {
		for _, win := range w.Windows(ts) {
			if ts < win.Start || ts >= win.End {
				t.Errorf("ts %d not in window %v", ts, win)
			}
		}
	}
}
