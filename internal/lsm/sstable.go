package lsm

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"structream/internal/fsx"
)

// SSTable layout — immutable, sorted, written once via atomic rename:
//
//	[data block 0][data block 1]...[bloom filter][block index][footer]
//
// Each data block holds ascending entries: uvarint keyLen, key, uvarint
// vcode where vcode 0 is a tombstone and vcode n>0 means n-1 value bytes
// follow. Blocks close at ~BlockBytes so point reads touch one block, not
// the table. The index records every block's first key, extent, entry
// count, and CRC32C; the bloom filter answers "definitely absent" without
// touching data blocks at all. The fixed-size footer locates bloom and
// index and seals them with their own CRC32C — a torn write or bit flip
// anywhere in the table is detected, never silently misread.

const (
	tableMagic         = 0x4C534D31 // "LSM1"
	tableFooterSize    = 8 + 8 + 8 + 8 + 4 + 4
	defaultBlockBytes  = 4096
	defaultTierTables  = 4
	defaultMemtableCap = 4 << 20 // 4 MiB
)

// blockMeta is one index row describing a data block.
type blockMeta struct {
	firstKey string
	off      int64
	length   int64
	crc      uint32
	entries  int64
}

// ---------------------------------------------------------------- builder

// tableBuilder accumulates sorted entries into the on-disk table image.
// Callers must add keys in strictly ascending order.
type tableBuilder struct {
	blockBytes int
	bloomBits  int

	buf      []byte // data blocks emitted so far
	cur      []byte // open block
	curFirst string
	curCount int64
	index    []blockMeta
	hashes   []uint64 // bloom hash per key, computed as keys stream in
	entries  int64
}

func newTableBuilder(blockBytes, bloomBits int) *tableBuilder {
	if blockBytes <= 0 {
		blockBytes = defaultBlockBytes
	}
	return &tableBuilder{blockBytes: blockBytes, bloomBits: bloomBits}
}

func (b *tableBuilder) add(key string, value []byte, tomb bool) {
	if len(b.cur) == 0 {
		b.curFirst = key
	}
	b.cur = binary.AppendUvarint(b.cur, uint64(len(key)))
	b.cur = append(b.cur, key...)
	b.hashes = append(b.hashes, fnv64aString(key))
	b.addTail(value, tomb)
}

// addBytes is add for a []byte key — the compaction merge path, where keys
// arrive as block slices and converting each to a string would allocate
// per entry.
func (b *tableBuilder) addBytes(key []byte, value []byte, tomb bool) {
	if len(b.cur) == 0 {
		b.curFirst = string(key)
	}
	b.cur = binary.AppendUvarint(b.cur, uint64(len(key)))
	b.cur = append(b.cur, key...)
	b.hashes = append(b.hashes, fnv64a(key))
	b.addTail(value, tomb)
}

func (b *tableBuilder) addTail(value []byte, tomb bool) {
	if tomb {
		b.cur = binary.AppendUvarint(b.cur, 0)
	} else {
		b.cur = binary.AppendUvarint(b.cur, uint64(len(value))+1)
		b.cur = append(b.cur, value...)
	}
	b.curCount++
	b.entries++
	if len(b.cur) >= b.blockBytes {
		b.sealBlock()
	}
}

func (b *tableBuilder) sealBlock() {
	if len(b.cur) == 0 {
		return
	}
	b.index = append(b.index, blockMeta{
		firstKey: b.curFirst,
		off:      int64(len(b.buf)),
		length:   int64(len(b.cur)),
		crc:      fsx.Checksum(b.cur),
		entries:  b.curCount,
	})
	b.buf = append(b.buf, b.cur...)
	b.cur, b.curFirst, b.curCount = nil, "", 0
}

// finish seals the open block and appends bloom, index, and footer,
// returning the complete table image.
func (b *tableBuilder) finish() []byte {
	b.sealBlock()
	bloomOff := int64(len(b.buf))
	bloom := buildBloomFromHashes(b.hashes, b.bloomBits)
	b.buf = append(b.buf, bloom...)
	indexOff := int64(len(b.buf))
	var idx []byte
	for _, m := range b.index {
		idx = binary.AppendUvarint(idx, uint64(len(m.firstKey)))
		idx = append(idx, m.firstKey...)
		idx = binary.AppendUvarint(idx, uint64(m.off))
		idx = binary.AppendUvarint(idx, uint64(m.length))
		idx = binary.LittleEndian.AppendUint32(idx, m.crc)
		idx = binary.AppendUvarint(idx, uint64(m.entries))
	}
	b.buf = append(b.buf, idx...)
	metaCRC := fsx.Checksum(b.buf[bloomOff:])
	b.buf = binary.LittleEndian.AppendUint64(b.buf, uint64(bloomOff))
	b.buf = binary.LittleEndian.AppendUint64(b.buf, uint64(len(bloom)))
	b.buf = binary.LittleEndian.AppendUint64(b.buf, uint64(indexOff))
	b.buf = binary.LittleEndian.AppendUint64(b.buf, uint64(len(idx)))
	b.buf = binary.LittleEndian.AppendUint32(b.buf, metaCRC)
	b.buf = binary.LittleEndian.AppendUint32(b.buf, tableMagic)
	return b.buf
}

// ---------------------------------------------------------------- reader

// Table is an open immutable SSTable: resident bloom filter and block
// index, data blocks fetched on demand through the shared cache.
type Table struct {
	fsys  fsx.FS
	path  string
	cache *BlockCache

	seq     int64
	size    int64
	bloom   []byte
	index   []blockMeta
	entries int64

	// offsets[i] holds block i's entry start positions, built lazily on the
	// first point lookup that touches the block. Blocks are immutable, so
	// the positions stay valid even after the cached block bytes are
	// evicted and re-read — point lookups binary-search entries instead of
	// decoding the block linearly.
	offMu   sync.Mutex
	offsets [][]uint32
}

// openTable loads a table's footer, bloom filter, and index, verifying the
// meta checksum. Data blocks stay on disk until a lookup needs them.
func openTable(fsys fsx.FS, path string, seq int64, cache *BlockCache) (*Table, error) {
	info, err := fsys.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("lsm: %w", err)
	}
	size := info.Size()
	if size < tableFooterSize {
		return nil, fmt.Errorf("lsm: %w: %s: too short for a table footer (%d bytes)", fsx.ErrCorrupt, path, size)
	}
	foot, err := fsx.ReadRange(fsys, path, size-tableFooterSize, tableFooterSize)
	if err != nil {
		return nil, fmt.Errorf("lsm: %w", err)
	}
	if binary.LittleEndian.Uint32(foot[36:]) != tableMagic {
		return nil, fmt.Errorf("lsm: %w: %s: bad table magic", fsx.ErrCorrupt, path)
	}
	bloomOff := int64(binary.LittleEndian.Uint64(foot[0:]))
	bloomLen := int64(binary.LittleEndian.Uint64(foot[8:]))
	indexOff := int64(binary.LittleEndian.Uint64(foot[16:]))
	indexLen := int64(binary.LittleEndian.Uint64(foot[24:]))
	metaCRC := binary.LittleEndian.Uint32(foot[32:])
	metaLen := bloomLen + indexLen
	if bloomOff < 0 || bloomLen < 0 || indexLen < 0 || indexOff != bloomOff+bloomLen ||
		bloomOff+metaLen != size-tableFooterSize {
		return nil, fmt.Errorf("lsm: %w: %s: table footer geometry out of bounds", fsx.ErrCorrupt, path)
	}
	meta, err := fsx.ReadRange(fsys, path, bloomOff, int(metaLen))
	if err != nil {
		return nil, fmt.Errorf("lsm: %w", err)
	}
	if fsx.Checksum(meta) != metaCRC {
		return nil, fmt.Errorf("lsm: %w: %s: table meta crc mismatch", fsx.ErrCorrupt, path)
	}
	t := &Table{fsys: fsys, path: path, cache: cache, seq: seq, size: size, bloom: meta[:bloomLen]}
	idx := meta[bloomLen:]
	pos := 0
	for pos < len(idx) {
		klen, n := binary.Uvarint(idx[pos:])
		if n <= 0 || uint64(len(idx)-pos-n) < klen {
			return nil, fmt.Errorf("lsm: %w: %s: corrupt block index", fsx.ErrCorrupt, path)
		}
		pos += n
		m := blockMeta{firstKey: string(idx[pos : pos+int(klen)])}
		pos += int(klen)
		fields := []*int64{&m.off, &m.length, nil, &m.entries}
		for i, dst := range fields {
			if i == 2 {
				if pos+4 > len(idx) {
					return nil, fmt.Errorf("lsm: %w: %s: corrupt block index", fsx.ErrCorrupt, path)
				}
				m.crc = binary.LittleEndian.Uint32(idx[pos:])
				pos += 4
				continue
			}
			v, n := binary.Uvarint(idx[pos:])
			if n <= 0 {
				return nil, fmt.Errorf("lsm: %w: %s: corrupt block index", fsx.ErrCorrupt, path)
			}
			*dst = int64(v)
			pos += n
		}
		if m.off < 0 || m.off+m.length > bloomOff {
			return nil, fmt.Errorf("lsm: %w: %s: block extent outside data section", fsx.ErrCorrupt, path)
		}
		t.entries += m.entries
		t.index = append(t.index, m)
	}
	return t, nil
}

// block fetches data block i, preferring the cache; a disk fetch is
// CRC-verified before it is trusted or cached.
func (t *Table) block(i int) ([]byte, error) {
	key := cacheKey{table: t.path, block: i}
	if t.cache != nil {
		if b, ok := t.cache.get(key); ok {
			return b, nil
		}
	}
	m := t.index[i]
	data, err := fsx.ReadRange(t.fsys, t.path, m.off, int(m.length))
	if err != nil {
		return nil, fmt.Errorf("lsm: %w", err)
	}
	if fsx.Checksum(data) != m.crc {
		return nil, fmt.Errorf("lsm: %w: %s block %d: crc mismatch (bit rot or torn write)", fsx.ErrCorrupt, t.path, i)
	}
	if t.cache != nil {
		t.cache.put(key, data)
	}
	return data, nil
}

// decodeBlockEntry parses one entry at pos, returning the next position.
// The key and value alias the block — zero-copy: the read path compares
// and yields byte slices, converting to string only at API boundaries.
func decodeBlockEntry(block []byte, pos int, path string) (key, val []byte, tomb bool, next int, err error) {
	klen, n := binary.Uvarint(block[pos:])
	if n <= 0 || uint64(len(block)-pos-n) < klen {
		return nil, nil, false, 0, fmt.Errorf("lsm: %w: %s: corrupt block entry", fsx.ErrCorrupt, path)
	}
	pos += n
	key = block[pos : pos+int(klen)]
	pos += int(klen)
	vcode, n := binary.Uvarint(block[pos:])
	if n <= 0 {
		return nil, nil, false, 0, fmt.Errorf("lsm: %w: %s: corrupt block entry", fsx.ErrCorrupt, path)
	}
	pos += n
	if vcode == 0 {
		return key, nil, true, pos, nil
	}
	vlen := int(vcode - 1)
	if len(block)-pos < vlen {
		return nil, nil, false, 0, fmt.Errorf("lsm: %w: %s: corrupt block entry", fsx.ErrCorrupt, path)
	}
	return key, block[pos : pos+vlen], false, pos + vlen, nil
}

// blockOffsets returns block i's entry start positions, building (and
// memoizing) them on first use. The build walks the block with the checked
// decoder, so every memoized offset is known to start a well-formed entry.
func (t *Table) blockOffsets(i int, block []byte) ([]uint32, error) {
	t.offMu.Lock()
	if t.offsets == nil {
		t.offsets = make([][]uint32, len(t.index))
	}
	if offs := t.offsets[i]; offs != nil {
		t.offMu.Unlock()
		return offs, nil
	}
	t.offMu.Unlock()
	offs := make([]uint32, 0, t.index[i].entries)
	for pos := 0; pos < len(block); {
		offs = append(offs, uint32(pos))
		_, _, _, next, err := decodeBlockEntry(block, pos, t.path)
		if err != nil {
			return nil, err
		}
		pos = next
	}
	t.offMu.Lock()
	t.offsets[i] = offs
	t.offMu.Unlock()
	return offs, nil
}

// entryKeyAt returns the key of the entry starting at pos. Only valid for
// positions vetted by blockOffsets.
func entryKeyAt(block []byte, pos uint32) []byte {
	klen, n := binary.Uvarint(block[pos:])
	return block[int(pos)+n : int(pos)+n+int(klen)]
}

// get performs a point lookup: bloom, block binary search, then a binary
// search over the block's entry offsets. ok=false means the table has no
// record of the key (the caller falls through to older tables); tomb=true
// means the key is recorded deleted.
func (t *Table) get(key []byte) (val []byte, tomb, ok bool, err error) {
	if len(t.index) == 0 || !bloomMayContain(t.bloom, key) {
		return nil, false, false, nil
	}
	// First block whose firstKey is > key; the candidate is the one before.
	i := sort.Search(len(t.index), func(i int) bool { return cmpStringBytes(t.index[i].firstKey, key) > 0 })
	if i == 0 {
		return nil, false, false, nil
	}
	block, err := t.block(i - 1)
	if err != nil {
		return nil, false, false, err
	}
	offs, err := t.blockOffsets(i-1, block)
	if err != nil {
		return nil, false, false, err
	}
	j := sort.Search(len(offs), func(j int) bool {
		return bytes.Compare(entryKeyAt(block, offs[j]), key) >= 0
	})
	if j == len(offs) {
		return nil, false, false, nil
	}
	k, v, tb, _, err := decodeBlockEntry(block, int(offs[j]), t.path)
	if err != nil {
		return nil, false, false, err
	}
	if !bytes.Equal(k, key) {
		return nil, false, false, nil
	}
	return v, tb, true, nil
}

// ---------------------------------------------------------------- iterator

// tableIter streams a table's entries in key order, loading blocks lazily.
// The first next() yields the first entry >= the iterator's lower bound.
type tableIter struct {
	t     *Table
	bi    int
	block []byte
	pos   int
	from  string // entries below this bound are skipped ("" = none)

	key  []byte // aliases the current block
	val  []byte
	tomb bool
	err  error
}

// iter starts a scan at the first entry >= from ("" scans everything); the
// lower bound only costs a binary search, not a walk of earlier blocks.
func (t *Table) iter(from string) *tableIter {
	it := &tableIter{t: t, from: from}
	if from != "" {
		it.bi = sort.Search(len(t.index), func(i int) bool { return t.index[i].firstKey > from })
		if it.bi > 0 {
			it.bi--
		}
	}
	return it
}

// next advances to the following entry; false at exhaustion or error.
func (it *tableIter) next() bool {
	for it.err == nil {
		for it.block == nil || it.pos >= len(it.block) {
			if it.bi >= len(it.t.index) {
				return false
			}
			b, err := it.t.block(it.bi)
			if err != nil {
				it.err = err
				return false
			}
			it.block, it.pos = b, 0
			it.bi++
		}
		it.key, it.val, it.tomb, it.pos, it.err = decodeBlockEntry(it.block, it.pos, it.t.path)
		if it.err == nil && cmpStringBytes(it.from, it.key) <= 0 {
			return true
		}
	}
	return false
}
