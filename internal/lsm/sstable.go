package lsm

import (
	"encoding/binary"
	"fmt"
	"sort"

	"structream/internal/fsx"
)

// SSTable layout — immutable, sorted, written once via atomic rename:
//
//	[data block 0][data block 1]...[bloom filter][block index][footer]
//
// Each data block holds ascending entries: uvarint keyLen, key, uvarint
// vcode where vcode 0 is a tombstone and vcode n>0 means n-1 value bytes
// follow. Blocks close at ~BlockBytes so point reads touch one block, not
// the table. The index records every block's first key, extent, entry
// count, and CRC32C; the bloom filter answers "definitely absent" without
// touching data blocks at all. The fixed-size footer locates bloom and
// index and seals them with their own CRC32C — a torn write or bit flip
// anywhere in the table is detected, never silently misread.

const (
	tableMagic         = 0x4C534D31 // "LSM1"
	tableFooterSize    = 8 + 8 + 8 + 8 + 4 + 4
	defaultBlockBytes  = 4096
	defaultTierTables  = 4
	defaultMemtableCap = 4 << 20 // 4 MiB
)

// blockMeta is one index row describing a data block.
type blockMeta struct {
	firstKey string
	off      int64
	length   int64
	crc      uint32
	entries  int64
}

// ---------------------------------------------------------------- builder

// tableBuilder accumulates sorted entries into the on-disk table image.
// Callers must add keys in strictly ascending order.
type tableBuilder struct {
	blockBytes int
	bloomBits  int

	buf      []byte // data blocks emitted so far
	cur      []byte // open block
	curFirst string
	curCount int64
	index    []blockMeta
	keys     []string
	entries  int64
}

func newTableBuilder(blockBytes, bloomBits int) *tableBuilder {
	if blockBytes <= 0 {
		blockBytes = defaultBlockBytes
	}
	return &tableBuilder{blockBytes: blockBytes, bloomBits: bloomBits}
}

func (b *tableBuilder) add(key string, value []byte, tomb bool) {
	if len(b.cur) == 0 {
		b.curFirst = key
	}
	b.cur = binary.AppendUvarint(b.cur, uint64(len(key)))
	b.cur = append(b.cur, key...)
	if tomb {
		b.cur = binary.AppendUvarint(b.cur, 0)
	} else {
		b.cur = binary.AppendUvarint(b.cur, uint64(len(value))+1)
		b.cur = append(b.cur, value...)
	}
	b.curCount++
	b.keys = append(b.keys, key)
	b.entries++
	if len(b.cur) >= b.blockBytes {
		b.sealBlock()
	}
}

func (b *tableBuilder) sealBlock() {
	if len(b.cur) == 0 {
		return
	}
	b.index = append(b.index, blockMeta{
		firstKey: b.curFirst,
		off:      int64(len(b.buf)),
		length:   int64(len(b.cur)),
		crc:      fsx.Checksum(b.cur),
		entries:  b.curCount,
	})
	b.buf = append(b.buf, b.cur...)
	b.cur, b.curFirst, b.curCount = nil, "", 0
}

// finish seals the open block and appends bloom, index, and footer,
// returning the complete table image.
func (b *tableBuilder) finish() []byte {
	b.sealBlock()
	bloomOff := int64(len(b.buf))
	bloom := buildBloom(b.keys, b.bloomBits)
	b.buf = append(b.buf, bloom...)
	indexOff := int64(len(b.buf))
	var idx []byte
	for _, m := range b.index {
		idx = binary.AppendUvarint(idx, uint64(len(m.firstKey)))
		idx = append(idx, m.firstKey...)
		idx = binary.AppendUvarint(idx, uint64(m.off))
		idx = binary.AppendUvarint(idx, uint64(m.length))
		idx = binary.LittleEndian.AppendUint32(idx, m.crc)
		idx = binary.AppendUvarint(idx, uint64(m.entries))
	}
	b.buf = append(b.buf, idx...)
	metaCRC := fsx.Checksum(b.buf[bloomOff:])
	b.buf = binary.LittleEndian.AppendUint64(b.buf, uint64(bloomOff))
	b.buf = binary.LittleEndian.AppendUint64(b.buf, uint64(len(bloom)))
	b.buf = binary.LittleEndian.AppendUint64(b.buf, uint64(indexOff))
	b.buf = binary.LittleEndian.AppendUint64(b.buf, uint64(len(idx)))
	b.buf = binary.LittleEndian.AppendUint32(b.buf, metaCRC)
	b.buf = binary.LittleEndian.AppendUint32(b.buf, tableMagic)
	return b.buf
}

// ---------------------------------------------------------------- reader

// Table is an open immutable SSTable: resident bloom filter and block
// index, data blocks fetched on demand through the shared cache.
type Table struct {
	fsys  fsx.FS
	path  string
	cache *BlockCache

	seq     int64
	size    int64
	bloom   []byte
	index   []blockMeta
	entries int64
}

// openTable loads a table's footer, bloom filter, and index, verifying the
// meta checksum. Data blocks stay on disk until a lookup needs them.
func openTable(fsys fsx.FS, path string, seq int64, cache *BlockCache) (*Table, error) {
	info, err := fsys.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("lsm: %w", err)
	}
	size := info.Size()
	if size < tableFooterSize {
		return nil, fmt.Errorf("lsm: %w: %s: too short for a table footer (%d bytes)", fsx.ErrCorrupt, path, size)
	}
	foot, err := fsx.ReadRange(fsys, path, size-tableFooterSize, tableFooterSize)
	if err != nil {
		return nil, fmt.Errorf("lsm: %w", err)
	}
	if binary.LittleEndian.Uint32(foot[36:]) != tableMagic {
		return nil, fmt.Errorf("lsm: %w: %s: bad table magic", fsx.ErrCorrupt, path)
	}
	bloomOff := int64(binary.LittleEndian.Uint64(foot[0:]))
	bloomLen := int64(binary.LittleEndian.Uint64(foot[8:]))
	indexOff := int64(binary.LittleEndian.Uint64(foot[16:]))
	indexLen := int64(binary.LittleEndian.Uint64(foot[24:]))
	metaCRC := binary.LittleEndian.Uint32(foot[32:])
	metaLen := bloomLen + indexLen
	if bloomOff < 0 || bloomLen < 0 || indexLen < 0 || indexOff != bloomOff+bloomLen ||
		bloomOff+metaLen != size-tableFooterSize {
		return nil, fmt.Errorf("lsm: %w: %s: table footer geometry out of bounds", fsx.ErrCorrupt, path)
	}
	meta, err := fsx.ReadRange(fsys, path, bloomOff, int(metaLen))
	if err != nil {
		return nil, fmt.Errorf("lsm: %w", err)
	}
	if fsx.Checksum(meta) != metaCRC {
		return nil, fmt.Errorf("lsm: %w: %s: table meta crc mismatch", fsx.ErrCorrupt, path)
	}
	t := &Table{fsys: fsys, path: path, cache: cache, seq: seq, size: size, bloom: meta[:bloomLen]}
	idx := meta[bloomLen:]
	pos := 0
	for pos < len(idx) {
		klen, n := binary.Uvarint(idx[pos:])
		if n <= 0 || uint64(len(idx)-pos-n) < klen {
			return nil, fmt.Errorf("lsm: %w: %s: corrupt block index", fsx.ErrCorrupt, path)
		}
		pos += n
		m := blockMeta{firstKey: string(idx[pos : pos+int(klen)])}
		pos += int(klen)
		fields := []*int64{&m.off, &m.length, nil, &m.entries}
		for i, dst := range fields {
			if i == 2 {
				if pos+4 > len(idx) {
					return nil, fmt.Errorf("lsm: %w: %s: corrupt block index", fsx.ErrCorrupt, path)
				}
				m.crc = binary.LittleEndian.Uint32(idx[pos:])
				pos += 4
				continue
			}
			v, n := binary.Uvarint(idx[pos:])
			if n <= 0 {
				return nil, fmt.Errorf("lsm: %w: %s: corrupt block index", fsx.ErrCorrupt, path)
			}
			*dst = int64(v)
			pos += n
		}
		if m.off < 0 || m.off+m.length > bloomOff {
			return nil, fmt.Errorf("lsm: %w: %s: block extent outside data section", fsx.ErrCorrupt, path)
		}
		t.entries += m.entries
		t.index = append(t.index, m)
	}
	return t, nil
}

// block fetches data block i, preferring the cache; a disk fetch is
// CRC-verified before it is trusted or cached.
func (t *Table) block(i int) ([]byte, error) {
	key := cacheKey{table: t.path, block: i}
	if t.cache != nil {
		if b, ok := t.cache.get(key); ok {
			return b, nil
		}
	}
	m := t.index[i]
	data, err := fsx.ReadRange(t.fsys, t.path, m.off, int(m.length))
	if err != nil {
		return nil, fmt.Errorf("lsm: %w", err)
	}
	if fsx.Checksum(data) != m.crc {
		return nil, fmt.Errorf("lsm: %w: %s block %d: crc mismatch (bit rot or torn write)", fsx.ErrCorrupt, t.path, i)
	}
	if t.cache != nil {
		t.cache.put(key, data)
	}
	return data, nil
}

// decodeBlockEntry parses one entry at pos, returning the next position.
func decodeBlockEntry(block []byte, pos int, path string) (key string, val []byte, tomb bool, next int, err error) {
	klen, n := binary.Uvarint(block[pos:])
	if n <= 0 || uint64(len(block)-pos-n) < klen {
		return "", nil, false, 0, fmt.Errorf("lsm: %w: %s: corrupt block entry", fsx.ErrCorrupt, path)
	}
	pos += n
	key = string(block[pos : pos+int(klen)])
	pos += int(klen)
	vcode, n := binary.Uvarint(block[pos:])
	if n <= 0 {
		return "", nil, false, 0, fmt.Errorf("lsm: %w: %s: corrupt block entry", fsx.ErrCorrupt, path)
	}
	pos += n
	if vcode == 0 {
		return key, nil, true, pos, nil
	}
	vlen := int(vcode - 1)
	if len(block)-pos < vlen {
		return "", nil, false, 0, fmt.Errorf("lsm: %w: %s: corrupt block entry", fsx.ErrCorrupt, path)
	}
	return key, block[pos : pos+vlen], false, pos + vlen, nil
}

// get performs a point lookup: bloom, block binary search, in-block scan.
// ok=false means the table has no record of the key (the caller falls
// through to older tables); tomb=true means the key is recorded deleted.
func (t *Table) get(key []byte) (val []byte, tomb, ok bool, err error) {
	if len(t.index) == 0 || !bloomMayContain(t.bloom, key) {
		return nil, false, false, nil
	}
	ks := string(key)
	// First block whose firstKey is > ks; the candidate is the one before.
	i := sort.Search(len(t.index), func(i int) bool { return t.index[i].firstKey > ks })
	if i == 0 {
		return nil, false, false, nil
	}
	block, err := t.block(i - 1)
	if err != nil {
		return nil, false, false, err
	}
	for pos := 0; pos < len(block); {
		k, v, tb, next, err := decodeBlockEntry(block, pos, t.path)
		if err != nil {
			return nil, false, false, err
		}
		if k == ks {
			return v, tb, true, nil
		}
		if k > ks {
			return nil, false, false, nil
		}
		pos = next
	}
	return nil, false, false, nil
}

// ---------------------------------------------------------------- iterator

// tableIter streams a table's entries in key order, loading blocks lazily.
// The first next() yields the first entry >= the iterator's lower bound.
type tableIter struct {
	t     *Table
	bi    int
	block []byte
	pos   int
	from  string // entries below this bound are skipped ("" = none)

	key  string
	val  []byte
	tomb bool
	err  error
}

// iter starts a scan at the first entry >= from ("" scans everything); the
// lower bound only costs a binary search, not a walk of earlier blocks.
func (t *Table) iter(from string) *tableIter {
	it := &tableIter{t: t, from: from}
	if from != "" {
		it.bi = sort.Search(len(t.index), func(i int) bool { return t.index[i].firstKey > from })
		if it.bi > 0 {
			it.bi--
		}
	}
	return it
}

// next advances to the following entry; false at exhaustion or error.
func (it *tableIter) next() bool {
	for it.err == nil {
		for it.block == nil || it.pos >= len(it.block) {
			if it.bi >= len(it.t.index) {
				return false
			}
			b, err := it.t.block(it.bi)
			if err != nil {
				it.err = err
				return false
			}
			it.block, it.pos = b, 0
			it.bi++
		}
		it.key, it.val, it.tomb, it.pos, it.err = decodeBlockEntry(it.block, it.pos, it.t.path)
		if it.err == nil && it.key >= it.from {
			return true
		}
	}
	return false
}
