// Package lsm is an embedded log-structured merge tree built on the fsx
// durability layer — the storage engine behind the state store's "lsm"
// backend (§6.1). State no longer has to fit in one Go map: committed
// mutations land in per-epoch delta logs and a sorted in-memory memtable;
// when the memtable exceeds its threshold it is sealed into an immutable
// SSTable with a block-level layout, a per-table bloom filter, and
// block-granular reads through a shared LRU cache; size-tiered compaction
// folds similar-sized tables together; and a tiny CRC-framed manifest per
// committed version pins exactly which tables and which delta-log suffix
// reconstruct that version — which is what keeps epoch rollback (§7.2)
// working on top of a compacting store.
package lsm

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Record batch framing, shared with the memory state backend's delta and
// snapshot files: op byte (1=put, 2=del), uvarint key length, key bytes,
// and for puts a uvarint value length plus value bytes.
const (
	// OpPut marks a key/value insertion record.
	OpPut byte = 1
	// OpDel marks a deletion record.
	OpDel byte = 2
)

// EncodeBatch renders puts and dels as a record batch in ascending key
// order, so identical logical commits produce byte-identical files.
func EncodeBatch(puts map[string][]byte, dels map[string]bool) []byte {
	keys := make([]string, 0, len(puts)+len(dels))
	for k := range puts {
		keys = append(keys, k)
	}
	for k := range dels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf []byte
	for _, k := range keys {
		if dels[k] {
			buf = append(buf, OpDel)
			buf = binary.AppendUvarint(buf, uint64(len(k)))
			buf = append(buf, k...)
			continue
		}
		v := puts[k]
		buf = append(buf, OpPut)
		buf = binary.AppendUvarint(buf, uint64(len(k)))
		buf = append(buf, k...)
		buf = binary.AppendUvarint(buf, uint64(len(v)))
		buf = append(buf, v...)
	}
	return buf
}

// DecodeBatch parses a record batch, invoking put/del per record. It never
// panics on corrupt input: any framing violation stops decoding with an
// error naming the offset. The value slice passed to put aliases data.
func DecodeBatch(data []byte, put func(key string, value []byte) error, del func(key string) error) error {
	pos := 0
	for pos < len(data) {
		op := data[pos]
		pos++
		klen, n := binary.Uvarint(data[pos:])
		if n <= 0 || uint64(len(data)-pos-n) < klen {
			return fmt.Errorf("lsm: corrupt record batch at offset %d: bad key length", pos)
		}
		pos += n
		key := string(data[pos : pos+int(klen)])
		pos += int(klen)
		switch op {
		case OpPut:
			vlen, n := binary.Uvarint(data[pos:])
			if n <= 0 || uint64(len(data)-pos-n) < vlen {
				return fmt.Errorf("lsm: corrupt record batch at offset %d: bad value length", pos)
			}
			pos += n
			if err := put(key, data[pos:pos+int(vlen)]); err != nil {
				return err
			}
			pos += int(vlen)
		case OpDel:
			if err := del(key); err != nil {
				return err
			}
		default:
			return fmt.Errorf("lsm: corrupt record batch at offset %d: bad op %d", pos-1-n-int(klen), op)
		}
	}
	return nil
}
