package lsm

import (
	"bytes"
	"fmt"
	"testing"
)

// FuzzRecordBatch fuzzes the key/value record framing shared by the state
// backends' delta and snapshot files and the LSM delta log. Two properties:
// a decoded well-formed batch re-encodes to the same state, and arbitrary
// (corrupt) input never panics — it either decodes or returns an error.
func FuzzRecordBatch(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeBatch(map[string][]byte{"a": []byte("1"), "b": nil}, map[string]bool{"c": true}))
	f.Add(EncodeBatch(map[string][]byte{"": []byte("empty key")}, nil))
	f.Add([]byte{OpPut, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Add([]byte{OpDel, 3, 'a'})
	f.Add([]byte{99, 1, 'x'})

	f.Fuzz(func(t *testing.T, data []byte) {
		puts := map[string][]byte{}
		dels := map[string]bool{}
		err := DecodeBatch(data,
			func(key string, value []byte) error {
				puts[key] = append([]byte(nil), value...)
				delete(dels, key)
				return nil
			},
			func(key string) error {
				dels[key] = true
				delete(puts, key)
				return nil
			},
		)
		if err != nil {
			return // rejected corrupt input is the correct outcome
		}
		// Accepted input must survive an encode/decode round trip with the
		// same final state.
		re := EncodeBatch(puts, dels)
		puts2 := map[string][]byte{}
		dels2 := map[string]bool{}
		if err := DecodeBatch(re,
			func(key string, value []byte) error {
				puts2[key] = append([]byte(nil), value...)
				return nil
			},
			func(key string) error {
				dels2[key] = true
				return nil
			},
		); err != nil {
			t.Fatalf("re-encoded batch failed to decode: %v", err)
		}
		if len(puts2) != len(puts) || len(dels2) != len(dels) {
			t.Fatalf("round trip changed shape: %d/%d puts, %d/%d dels",
				len(puts2), len(puts), len(dels2), len(dels))
		}
		for k, v := range puts {
			if !bytes.Equal(puts2[k], v) {
				t.Fatalf("round trip changed value for %q", k)
			}
		}
		for k := range dels {
			if !dels2[k] {
				t.Fatal(fmt.Sprintf("round trip lost delete of %q", k))
			}
		}
	})
}
