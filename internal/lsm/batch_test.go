package lsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// TestGetBatchBytesMatchesGetBytes drives a random commit schedule that
// scatters keys across the active memtable, sealed memtables, and several
// SSTable tiers (2KiB memtable), then requires the structure-at-a-time
// batch probe to agree with the per-key path for every key — live,
// tombstoned, overwritten, and never-written — including duplicates
// within one batch.
func TestGetBatchBytesMatchesGetBytes(t *testing.T) {
	tr := mustOpen(t, smallOpts(t))
	rng := rand.New(rand.NewSource(7))
	const keys = 200
	key := func(i int) string { return fmt.Sprintf("key-%04d", i) }

	version := int64(1)
	for epoch := 0; epoch < 12; epoch++ {
		puts := map[string][]byte{}
		dels := map[string]bool{}
		for i := 0; i < 40; i++ {
			k := key(rng.Intn(keys))
			if rng.Intn(4) == 0 {
				dels[k] = true
				delete(puts, k)
			} else {
				puts[k] = []byte(fmt.Sprintf("v%d-%s", epoch, k))
				delete(dels, k)
			}
		}
		if err := tr.Commit(version, puts, dels); err != nil {
			t.Fatalf("Commit(%d): %v", version, err)
		}
		version++
	}

	var batch [][]byte
	for i := 0; i < keys; i++ {
		batch = append(batch, []byte(key(i)))
	}
	for i := 0; i < 60; i++ {
		batch = append(batch, []byte(key(rng.Intn(keys))))
	}
	batch = append(batch, []byte("zzz-never"), []byte(""))

	values := make([][]byte, len(batch))
	oks := make([]bool, len(batch))
	if err := tr.GetBatchBytes(batch, values, oks); err != nil {
		t.Fatalf("GetBatchBytes: %v", err)
	}
	for i, k := range batch {
		wantV, wantOK, err := tr.GetBytes(k)
		if err != nil {
			t.Fatalf("GetBytes(%q): %v", k, err)
		}
		if oks[i] != wantOK || !bytes.Equal(values[i], wantV) {
			t.Fatalf("key %q: batch = (%q, %v), scalar = (%q, %v)", k, values[i], oks[i], wantV, wantOK)
		}
	}

	// Empty batch is a no-op.
	if err := tr.GetBatchBytes(nil, nil, nil); err != nil {
		t.Fatalf("empty GetBatchBytes: %v", err)
	}
}
