package lsm

import (
	"bytes"
	"fmt"
	"io/fs"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"structream/internal/fsx"
)

// gateFS blocks the first write whose path contains match until release is
// closed, signalling arrived when the write is parked. It models a slow or
// stuck disk under exactly one maintenance step.
type gateFS struct {
	fsx.FS
	match   string
	arrived chan struct{}
	release chan struct{}
	once    sync.Once
}

func newGateFS(base fsx.FS, match string) *gateFS {
	return &gateFS{FS: base, match: match,
		arrived: make(chan struct{}), release: make(chan struct{})}
}

func (g *gateFS) WriteFile(path string, data []byte, perm fs.FileMode) error {
	if strings.Contains(path, g.match) {
		g.once.Do(func() { close(g.arrived) })
		<-g.release
	}
	return g.FS.WriteFile(path, data, perm)
}

// failFS fails writes whose path contains match while armed.
type failFS struct {
	fsx.FS
	match string
	armed atomic.Bool
}

func (f *failFS) WriteFile(path string, data []byte, perm fs.FileMode) error {
	if f.armed.Load() && strings.Contains(path, f.match) {
		return fmt.Errorf("injected: disk full writing %s", filepath.Base(path))
	}
	return f.FS.WriteFile(path, data, perm)
}

// cachedTables lists the distinct table paths currently resident in a cache.
func cachedTables(c *BlockCache) map[string]bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := map[string]bool{}
	for k := range c.items {
		out[k.table] = true
	}
	return out
}

// TestCompactionEvictsRetiredTables pins the eviction point: a retired
// compaction input's blocks leave the shared cache at the install — the
// moment the manifest stops referencing the table — so the cache only ever
// holds blocks of tables the current manifest can still read.
func TestCompactionEvictsRetiredTables(t *testing.T) {
	opts := smallOpts(t)
	opts.MemtableBytes = 512
	opts.MaxTierTables = 2
	tr := mustOpen(t, opts)
	big := bytes.Repeat([]byte("x"), 200)
	for v := int64(1); v <= 16; v++ {
		commit(t, tr, v, map[string][]byte{fmt.Sprintf("k%02d", v): big})
		// Warm the cache through the current table set, then check the
		// residency invariant: every cached block belongs to a live table.
		if err := tr.Range("", "", func(string, []byte) error { return nil }); err != nil {
			t.Fatalf("Range: %v", err)
		}
		live := map[string]bool{}
		tr.mu.Lock()
		for _, tbl := range tr.tables {
			live[tbl.path] = true
		}
		tr.mu.Unlock()
		for path := range cachedTables(opts.Cache) {
			if !live[path] {
				t.Fatalf("after commit %d the cache still holds blocks of retired table %s", v, filepath.Base(path))
			}
		}
	}
	st := tr.Stats()
	if st.Compactions == 0 {
		t.Fatalf("workload never compacted (stats %+v); the eviction point was not exercised", st)
	}
	cs := opts.Cache.Stats()
	if cs.Entries == 0 || cs.Bytes == 0 {
		t.Fatalf("cache empty after warm reads: %+v", cs)
	}
	// Closing the tree retires the remaining tables; nothing may stay pinned.
	tr.Close()
	if cs := opts.Cache.Stats(); cs.Entries != 0 || cs.Bytes != 0 {
		t.Fatalf("cache still holds %d blocks (%d bytes) after Close", cs.Entries, cs.Bytes)
	}
}

// TestCloseDrainsInflightFlush parks the background flush mid-SSTable-write
// and calls Close: Close must wait for the in-flight step to finish its
// install and manifest publication — never return with a half-published
// manifest — and the drained flush must be fully usable by the next Load.
func TestCloseDrainsInflightFlush(t *testing.T) {
	opts := smallOpts(t)
	opts.MemtableBytes = 1 // every commit seals
	opts.BackgroundCompaction = true
	g := newGateFS(opts.FS, ".sst")
	opts.FS = g
	tr := mustOpen(t, opts)
	commit(t, tr, 1, map[string][]byte{"a": []byte("1")})
	<-g.arrived // background flush is parked inside the table write

	done := make(chan struct{})
	go func() { tr.Close(); close(done) }()
	select {
	case <-done:
		t.Fatal("Close returned while a flush write was still in flight")
	case <-time.After(20 * time.Millisecond):
	}
	close(g.release)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close never returned after the parked write was released")
	}

	// The drained step must have published completely: manifest for version
	// 1 present, referencing the flushed table, with no temp droppings.
	m, err := readManifest(opts.FS, opts.Dir, 1)
	if err != nil {
		t.Fatalf("manifest after drained Close: %v", err)
	}
	if len(m.Tables) != 1 {
		t.Fatalf("manifest references %d tables, want 1: %+v", len(m.Tables), m)
	}
	ents, err := opts.FS.ReadDir(opts.Dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), fsx.TmpSuffix) {
			t.Fatalf("temp file %s left behind after Close", e.Name())
		}
	}
	tr2 := mustOpen(t, Options{FS: fsx.Real(), Dir: opts.Dir})
	if err := tr2.Load(1); err != nil {
		t.Fatalf("Load after drained Close: %v", err)
	}
	if v, ok, err := tr2.Get("a"); err != nil || !ok || string(v) != "1" {
		t.Fatalf("Get(a) = %q,%v,%v after drained Close", v, ok, err)
	}
}

// TestCloseDuringCompaction is the close-during-maintenance regression for
// the merge path: Close arrives while a compaction output write is parked.
func TestCloseDuringCompaction(t *testing.T) {
	opts := smallOpts(t)
	opts.MemtableBytes = 512
	opts.MaxTierTables = 2
	tr := mustOpen(t, opts)
	big := bytes.Repeat([]byte("x"), 200)
	// Build a compactable tier synchronously, then hand the merge itself to
	// the background goroutine of a fresh tree over the same directory.
	var v int64
	for v = 1; v <= 6; v++ {
		commit(t, tr, v, map[string][]byte{fmt.Sprintf("k%02d", v): big})
	}
	tr.Close()

	g := newGateFS(fsx.Real(), ".sst")
	bg := mustOpen(t, Options{FS: g, Dir: opts.Dir, MemtableBytes: 1,
		MaxTierTables: 2, BackgroundCompaction: true})
	if err := bg.Load(v - 1); err != nil {
		t.Fatalf("Load: %v", err)
	}
	commit(t, bg, v, map[string][]byte{"last": []byte("1")})
	<-g.arrived // a background table write (flush or merge output) is parked
	done := make(chan struct{})
	go func() { bg.Close(); close(done) }()
	close(g.release)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close never returned")
	}
	tr2 := mustOpen(t, Options{FS: fsx.Real(), Dir: opts.Dir})
	if err := tr2.Load(v); err != nil {
		t.Fatalf("Load after close-during-maintenance: %v", err)
	}
	if tr2.NumKeys() != v {
		t.Fatalf("NumKeys = %d, want %d", tr2.NumKeys(), v)
	}
}

// TestSeededSchedulerDeterministicSchedule: the same seed must reproduce the
// same mutating-op schedule op for op — that reproducibility is what lets
// the crash sweep place a fault inside the same maintenance step on every
// run.
func TestSeededSchedulerDeterministicSchedule(t *testing.T) {
	run := func(seed int64) []string {
		ffs := fsx.NewFaultFS(fsx.NoSync())
		opts := Options{FS: ffs, Dir: t.TempDir(), MemtableBytes: 256,
			BlockBytes: 128, MaxTierTables: 2, Scheduler: NewSeededScheduler(seed)}
		tr := mustOpen(t, opts)
		big := bytes.Repeat([]byte("x"), 100)
		for v := int64(1); v <= 24; v++ {
			commit(t, tr, v, map[string][]byte{fmt.Sprintf("k%02d", v): big})
		}
		tr.Close()
		var ops []string
		for _, op := range ffs.Trace() {
			ops = append(ops, fmt.Sprintf("%s %s", op.Kind, filepath.Base(op.Path)))
		}
		return ops
	}
	a, b := run(0x5EED), run(0x5EED)
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Fatalf("same seed produced different op schedules:\n--- first\n%s\n--- second\n%s",
			strings.Join(a, "\n"), strings.Join(b, "\n"))
	}
	var maint int
	for _, op := range a {
		if strings.Contains(op, ".sst") || strings.Contains(op, ".manifest") {
			maint++
		}
	}
	if maint == 0 {
		t.Fatal("seeded schedule ran no maintenance ops at all")
	}
}

// TestMaintenanceErrorFailsNextCommit: an error inside a background step
// must latch and fail an upcoming Commit — never decay into silent data
// loss — and a Load must clear the latch and recover everything whose delta
// was durable.
func TestMaintenanceErrorFailsNextCommit(t *testing.T) {
	opts := smallOpts(t)
	opts.MemtableBytes = 1
	opts.BackgroundCompaction = true
	f := &failFS{FS: opts.FS, match: ".sst"}
	f.armed.Store(true)
	opts.FS = f
	tr := mustOpen(t, opts)

	var lastGood int64
	var commitErr error
	for v := int64(1); v <= 100; v++ {
		commitErr = tr.Commit(v, map[string][]byte{fmt.Sprintf("k%d", v): []byte("v")}, nil)
		if commitErr != nil {
			break
		}
		lastGood = v
		time.Sleep(time.Millisecond)
	}
	if commitErr == nil {
		t.Fatal("background flush failures never surfaced through Commit")
	}
	if !strings.Contains(commitErr.Error(), "background maintenance failed") {
		t.Fatalf("Commit error does not identify maintenance: %v", commitErr)
	}
	if lastGood == 0 {
		t.Fatal("no commit succeeded before the failure surfaced")
	}

	// Heal the disk and reload: the latch clears, every durable delta
	// replays, and commits resume.
	f.armed.Store(false)
	if err := tr.Load(lastGood); err != nil {
		t.Fatalf("Load(%d): %v", lastGood, err)
	}
	if err := tr.Commit(lastGood+1, map[string][]byte{"after": []byte("1")}, nil); err != nil {
		t.Fatalf("Commit after reload: %v", err)
	}
	if got := tr.NumKeys(); got != lastGood+1 {
		t.Fatalf("NumKeys = %d, want %d", got, lastGood+1)
	}
}

// TestCeilingStallMetered: with maintenance stuck, Commit hits the
// MaxPendingMemtables ceiling, falls back to a synchronous drain, and the
// time spent there lands in Stats.MaintenanceStallUs — the signal admission
// control keys off.
func TestCeilingStallMetered(t *testing.T) {
	opts := smallOpts(t)
	opts.MemtableBytes = 1
	opts.MaxPendingMemtables = 1
	opts.BackgroundCompaction = true
	g := newGateFS(opts.FS, ".sst")
	opts.FS = g
	tr := mustOpen(t, opts)

	commit(t, tr, 1, map[string][]byte{"a": []byte("1")})
	<-g.arrived // the background flush is parked holding the step lock
	go func() {
		time.Sleep(25 * time.Millisecond)
		close(g.release)
	}()
	// Backlog goes to 2 > ceiling 1: this commit must stall until the parked
	// flush completes and the queue drains back under the ceiling.
	commit(t, tr, 2, map[string][]byte{"b": []byte("2")})
	if st := tr.Stats(); st.MaintenanceStallUs == 0 {
		t.Fatalf("ceiling stall not metered: %+v", st)
	}
}

// TestConcurrentAccessDuringBackgroundMaintenance hammers a background-mode
// tree with concurrent readers while commits drive flushes and compactions;
// run under -race this is the locking-protocol check for the maintenance
// goroutine. Correctness of the surviving data is verified by a reload.
func TestConcurrentAccessDuringBackgroundMaintenance(t *testing.T) {
	opts := smallOpts(t)
	opts.MemtableBytes = 512
	opts.MaxTierTables = 2
	opts.BackgroundCompaction = true
	tr := mustOpen(t, opts)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch i % 3 {
				case 0:
					if _, _, err := tr.Get(fmt.Sprintf("k%02d", i%60)); err != nil {
						t.Errorf("reader %d Get: %v", r, err)
						return
					}
				case 1:
					if err := tr.Range("k10", "k40", func(string, []byte) error { return nil }); err != nil {
						t.Errorf("reader %d Range: %v", r, err)
						return
					}
				default:
					tr.Stats()
					tr.NumKeys()
				}
			}
		}(r)
	}
	big := bytes.Repeat([]byte("x"), 200)
	const versions = 60
	for v := int64(1); v <= versions; v++ {
		commit(t, tr, v, map[string][]byte{fmt.Sprintf("k%02d", v): big})
	}
	close(stop)
	wg.Wait()
	tr.Close()

	tr2 := mustOpen(t, Options{FS: fsx.Real(), Dir: opts.Dir})
	if err := tr2.Load(versions); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if tr2.NumKeys() != versions {
		t.Fatalf("NumKeys = %d, want %d", tr2.NumKeys(), versions)
	}
	for v := int64(1); v <= versions; v++ {
		if _, ok, err := tr2.Get(fmt.Sprintf("k%02d", v)); err != nil || !ok {
			t.Fatalf("Get(k%02d) after concurrent run = ok=%v err=%v", v, ok, err)
		}
	}
}
