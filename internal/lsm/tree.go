package lsm

import (
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"structream/internal/fsx"
)

// Options configures a Tree.
type Options struct {
	FS  fsx.FS
	Dir string
	// MemtableBytes is the seal threshold: once committed-but-unflushed
	// state exceeds it, the memtable is sealed and queued for flush.
	// Default 4 MiB.
	MemtableBytes int64
	// BlockBytes is the SSTable data-block target size. Default 4 KiB.
	BlockBytes int
	// MaxTierTables triggers compaction when this many similar-sized tables
	// accumulate in one size tier. Default 4.
	MaxTierTables int
	// Cache is the shared block cache; nil disables block caching.
	Cache *BlockCache
	// BackgroundCompaction moves flush, compaction, and manifest publication
	// onto a supervised background goroutine: Commit waits only on its own
	// delta's durability and seals full memtables into a flush queue behind
	// it. The engine enables it by default; crash safety holds either way
	// because the delta log, not the manifest, is the durability point.
	BackgroundCompaction bool
	// Scheduler overrides maintenance scheduling. nil picks the background
	// goroutine when BackgroundCompaction is set and fully synchronous
	// inline maintenance otherwise. A seeded scheduler (NewSeededScheduler)
	// runs the background code path inline at commit boundaries, keeping the
	// mutating-op schedule reproducible for crash sweeps.
	Scheduler MaintenanceScheduler
	// MaxPendingMemtables is the hard ceiling on sealed-but-unflushed
	// memtables (default 4). Past it, Commit runs flush steps synchronously —
	// the last-resort fallback when maintenance cannot keep up. Time spent
	// there is surfaced in Stats.MaintenanceStallUs so the engine's admission
	// control can shed intake before this point is reached.
	MaxPendingMemtables int
}

// Stats is a point-in-time view of a tree's shape and write amplification.
type Stats struct {
	Version  int64
	LiveKeys int64
	// MemtableBytes counts all committed-but-unflushed state: the active
	// memtable plus sealed memtables awaiting background flush.
	MemtableBytes int64
	MemtableKeys  int64
	Tables        int64
	TableBytes    int64
	Flushes       int64
	Compactions   int64
	// CompactionBytes is the cumulative input rewritten by compaction.
	CompactionBytes int64
	// FlushBacklog is the number of sealed memtables waiting for flush.
	FlushBacklog int64
	// MaintenanceStallUs is cumulative time Commit spent blocked on the
	// MaxPendingMemtables ceiling running maintenance synchronously.
	MaintenanceStallUs int64
}

// sealedMem is one immutable memtable awaiting background flush, with the
// delta-version extent it covers and the tree-wide live-key count as of its
// seal — the accounting the manifest needs when the flush installs.
type sealedMem struct {
	mem    *memtable
	from   int64 // first delta version folded into this memtable
	to     int64 // last delta version (the commit that sealed it)
	liveAt int64 // tree-wide live keys as of version `to`
}

// Tree is one keyed state partition stored as an LSM: a mutable memtable
// over a queue of sealed memtables over immutable SSTables, with per-version
// delta logs and manifests making every committed version individually
// loadable.
type Tree struct {
	fsys  fsx.FS
	dir   string
	opts  Options
	sched MaintenanceScheduler

	// maintMu serializes maintenance steps (flush, compaction, manifest
	// publication, GC) against each other and against timeline changes
	// (Load, Close, Maintain): a step never interleaves with a reload, so
	// its snapshot of inputs and its allocated table sequence stay valid
	// from snapshot to install. Lock order: maintMu before mu, never the
	// reverse.
	maintMu sync.Mutex

	mu        sync.Mutex
	mem       *memtable
	memFrom   int64        // first delta version in the active memtable
	sealed    []*sealedMem // oldest first: the flush queue
	tables    []*Table     // oldest first; list order is the shadowing authority
	version   int64
	nextSeq   int64
	liveKeys  int64
	tableLive int64 // live keys in the table set alone

	flushes         int64
	compactions     int64
	compactionBytes int64
	stallUs         int64 // cumulative Commit time stalled on the backlog ceiling

	// maintErr latches a background-maintenance failure. The next Commit
	// fails with it, so the query's supervisor restarts from the checkpoint —
	// an asynchronous flush error must surface as a restart, never as silent
	// data loss. Load clears it: a reload re-derives everything the failed
	// step would have installed.
	maintErr error

	// pruned records that stale manifests from an abandoned timeline were
	// swept since the last Load. Manifests are sparse (one per maintenance
	// step), so after a rollback a leftover higher-version manifest could
	// out-anchor the new timeline's older one on a future Load — it must go
	// before the first diverging commit. Pruning waits for that commit:
	// loading an old version for a historical read must not destroy the
	// newer manifests it did not supersede.
	pruned bool

	closed bool
	bgWake chan struct{} // signals the maintenance goroutine; closed on Close
	bgDone chan struct{}
}

// Open prepares a tree rooted at opts.Dir. The tree starts empty; call Load
// to position it at a committed version.
func Open(opts Options) (*Tree, error) {
	if opts.FS == nil || opts.Dir == "" {
		return nil, fmt.Errorf("lsm: Options.FS and Options.Dir are required")
	}
	if opts.MemtableBytes <= 0 {
		opts.MemtableBytes = defaultMemtableCap
	}
	if opts.BlockBytes <= 0 {
		opts.BlockBytes = defaultBlockBytes
	}
	if opts.MaxTierTables < 2 {
		opts.MaxTierTables = defaultTierTables
	}
	if opts.MaxPendingMemtables <= 0 {
		opts.MaxPendingMemtables = defaultMaxPendingMemtables
	}
	if err := opts.FS.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("lsm: %w", err)
	}
	t := &Tree{fsys: opts.FS, dir: opts.Dir, opts: opts, mem: newMemtable(), version: -1}
	t.sched = opts.Scheduler
	if t.sched == nil {
		if opts.BackgroundCompaction {
			t.sched = asyncScheduler{}
		} else {
			t.sched = syncScheduler{}
		}
	}
	if t.sched.Async() {
		t.bgWake = make(chan struct{}, 1)
		t.bgDone = make(chan struct{})
		go t.maintLoop()
	}
	return t, nil
}

const defaultMaxPendingMemtables = 4

// Load positions the tree at a committed version (-1 = empty): the newest
// manifest at or below it supplies the table set, and the delta-log suffix
// replays on top.
// A missing manifest for the exact version is normal — manifests are
// published per maintenance step, not per commit, and the crash window
// between delta (durable) and manifest is part of the recovery contract.
func (t *Tree) Load(version int64) error {
	t.maintMu.Lock()
	defer t.maintMu.Unlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	l, err := listDir(t.fsys, t.dir)
	if err != nil {
		return err
	}
	for _, tbl := range t.tables {
		if t.opts.Cache != nil {
			t.opts.Cache.dropTable(tbl.path)
		}
	}
	t.tables = nil
	t.mem = newMemtable()
	t.sealed = nil
	t.maintErr = nil
	t.pruned = false
	t.version, t.nextSeq, t.memFrom = version, 0, 0
	t.liveKeys, t.tableLive = 0, 0

	replayFrom := int64(0)
	if mv, ok := latestManifestAtOrBelow(l, version); ok {
		m, err := readManifest(t.fsys, t.dir, mv)
		if err != nil {
			return err
		}
		for _, mt := range m.Tables {
			tbl, err := openTable(t.fsys, tablePath(t.dir, mt.Seq), mt.Seq, t.opts.Cache)
			if err != nil {
				return err
			}
			t.tables = append(t.tables, tbl)
		}
		t.nextSeq, t.memFrom = m.NextSeq, m.LogFrom
		// Start from the table-set count; replay re-derives the memtable's
		// contribution with the same has-key checks the original commits ran.
		t.liveKeys, t.tableLive = m.TableLive, m.TableLive
		replayFrom = m.LogFrom
	}
	for _, dv := range l.deltas {
		if dv < replayFrom || dv > version {
			continue
		}
		if err := t.replayDeltaLocked(dv); err != nil {
			return err
		}
	}
	return nil
}

// replayDeltaLocked folds one delta file into the memtable.
func (t *Tree) replayDeltaLocked(version int64) error {
	path := filepath.Join(t.dir, fmt.Sprintf("%d.delta", version))
	data, err := t.fsys.ReadFile(path)
	if err != nil {
		return fmt.Errorf("lsm: %w", err)
	}
	body, err := fsx.Verify(path, data)
	if err != nil {
		return fmt.Errorf("lsm: %w", err)
	}
	return DecodeBatch(body,
		func(key string, value []byte) error {
			return t.applyPutLocked(key, append([]byte(nil), value...), nil)
		},
		func(key string) error { return t.applyDelLocked(key, nil) },
	)
}

// hasLocked reports whether key is live in committed state.
func (t *Tree) hasLocked(key string) (bool, error) {
	if e, ok := t.mem.get(key); ok {
		return !e.tomb, nil
	}
	for i := len(t.sealed) - 1; i >= 0; i-- {
		if e, ok := t.sealed[i].mem.get(key); ok {
			return !e.tomb, nil
		}
	}
	kb := []byte(key)
	for i := len(t.tables) - 1; i >= 0; i-- {
		_, tomb, ok, err := t.tables[i].get(kb)
		if err != nil {
			return false, err
		}
		if ok {
			return !tomb, nil
		}
	}
	return false, nil
}

// applyPutLocked applies one put, keeping the live-key count. hints, when
// non-nil, memoizes committed-key existence the caller already learned by
// reading this tree at this version — it short-circuits the table lookup
// that would otherwise dominate commit cost.
func (t *Tree) applyPutLocked(key string, value []byte, hints map[string]bool) error {
	has, ok := false, false
	if hints != nil {
		has, ok = hints[key]
	}
	if !ok {
		var err error
		has, err = t.hasLocked(key)
		if err != nil {
			return err
		}
	}
	if !has {
		t.liveKeys++
	}
	t.mem.put(key, value, false)
	return nil
}

func (t *Tree) applyDelLocked(key string, hints map[string]bool) error {
	has, ok := false, false
	if hints != nil {
		has, ok = hints[key]
	}
	if !ok {
		var err error
		has, err = t.hasLocked(key)
		if err != nil {
			return err
		}
	}
	if has {
		t.liveKeys--
	}
	t.mem.put(key, nil, true)
	return nil
}

// Get returns the committed value for key. The returned slice aliases
// internal storage and must not be mutated.
func (t *Tree) Get(key string) ([]byte, bool, error) {
	return t.GetBytes([]byte(key))
}

// GetBytes is Get for a []byte key — the per-row read path: memtable
// lookups elide the string conversion and table probes take the bytes
// directly, so a lookup allocates nothing.
func (t *Tree) GetBytes(key []byte) ([]byte, bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.mem.getBytes(key); ok {
		if e.tomb {
			return nil, false, nil
		}
		return e.value, true, nil
	}
	for i := len(t.sealed) - 1; i >= 0; i-- {
		if e, ok := t.sealed[i].mem.getBytes(key); ok {
			if e.tomb {
				return nil, false, nil
			}
			return e.value, true, nil
		}
	}
	for i := len(t.tables) - 1; i >= 0; i-- {
		v, tomb, ok, err := t.tables[i].get(key)
		if err != nil {
			return nil, false, err
		}
		if ok {
			if tomb {
				return nil, false, nil
			}
			return v, true, nil
		}
	}
	return nil, false, nil
}

// GetBatchBytes resolves a vector of keys under ONE lock acquisition,
// probing structure-at-a-time instead of key-at-a-time: all unresolved
// keys sweep the active memtable, then each sealed memtable newest-first,
// then each table newest-first. Per-key shadowing order is identical to
// GetBytes — a key resolves at the newest structure that knows it, and a
// tombstone there is a definitive miss — but the per-structure sweep means
// a batch pays the lock once and each SSTable's bloom filter and index
// stay hot in cache while every remaining key probes them. Results land in
// values/oks positionally (both must be len(keys)); value slices alias
// internal storage and must not be mutated.
func (t *Tree) GetBatchBytes(keys [][]byte, values [][]byte, oks []bool) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	// pending holds the positions still unresolved after each structure.
	pending := make([]int, 0, len(keys))
	for i := range keys {
		values[i], oks[i] = nil, false
		pending = append(pending, i)
	}
	resolve := func(getMem func(key []byte) (memEntry, bool)) {
		next := pending[:0]
		for _, i := range pending {
			if e, ok := getMem(keys[i]); ok {
				if !e.tomb {
					values[i], oks[i] = e.value, true
				}
				continue
			}
			next = append(next, i)
		}
		pending = next
	}
	resolve(t.mem.getBytes)
	for s := len(t.sealed) - 1; s >= 0 && len(pending) > 0; s-- {
		resolve(t.sealed[s].mem.getBytes)
	}
	for ti := len(t.tables) - 1; ti >= 0 && len(pending) > 0; ti-- {
		tbl := t.tables[ti]
		next := pending[:0]
		for _, i := range pending {
			v, tomb, ok, err := tbl.get(keys[i])
			if err != nil {
				return err
			}
			if ok {
				if !tomb {
					values[i], oks[i] = v, true
				}
				continue
			}
			next = append(next, i)
		}
		pending = next
	}
	return nil
}

// Commit durably applies one version's mutations. A key in both maps is a
// delete, matching the delta encoding.
func (t *Tree) Commit(version int64, puts map[string][]byte, dels map[string]bool) error {
	return t.CommitWithHints(version, puts, dels, nil)
}

// CommitWithHints is Commit with an optional existence memo: hints[k]
// reports whether k was live in committed state when the caller read it
// during this epoch. The state layer passes the reads its operators already
// performed, so live-key accounting skips a second lookup per mutated key.
// Keys absent from the map fall back to a real lookup. A wrong hint can
// only skew the NumKeys counter, never stored data — but callers must pass
// only facts read from this tree at its current version.
//
// The delta-log write is the durability point and the epoch-commit
// handshake: once it returns, the version is recoverable regardless of what
// background maintenance has or has not done. Everything after — sealing a
// full memtable, flush, compaction, manifest publication — is bookkeeping
// the commit does not wait for, except the MaxPendingMemtables ceiling.
func (t *Tree) CommitWithHints(version int64, puts map[string][]byte, dels map[string]bool, hints map[string]bool) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return fmt.Errorf("lsm: tree is closed")
	}
	if err := t.maintErr; err != nil {
		t.mu.Unlock()
		return fmt.Errorf("lsm: background maintenance failed, reload required: %w", err)
	}
	if version <= t.version {
		t.mu.Unlock()
		return fmt.Errorf("lsm: commit version %d not after current %d", version, t.version)
	}
	if !t.pruned {
		// First commit since Load: the timeline diverges here. Any manifest
		// newer than the loaded version describes the abandoned timeline
		// and must never anchor a future Load — and its table sequences are
		// about to be reused with different contents.
		if err := t.pruneStaleManifestsLocked(); err != nil {
			t.mu.Unlock()
			return err
		}
		t.pruned = true
	}
	body := EncodeBatch(puts, dels)
	path := filepath.Join(t.dir, fmt.Sprintf("%d.delta", version))
	if err := fsx.WriteAtomic(t.fsys, path, fsx.Seal(body), 0o644); err != nil {
		t.mu.Unlock()
		return fmt.Errorf("lsm: %w", err)
	}
	prev := t.version
	for k, v := range puts {
		if dels[k] {
			continue
		}
		if err := t.applyPutLocked(k, v, hints); err != nil {
			t.mu.Unlock()
			return err
		}
	}
	for k := range dels {
		if err := t.applyDelLocked(k, hints); err != nil {
			t.mu.Unlock()
			return err
		}
	}
	t.version = version
	if t.mem.bytes >= t.opts.MemtableBytes && t.mem.len() > 0 {
		t.sealLocked()
	}
	backlog := len(t.sealed)
	async := t.sched.Async()
	if async && backlog > 0 && !t.closed {
		select {
		case t.bgWake <- struct{}{}:
		default:
		}
	}
	t.mu.Unlock()

	var err error
	if async {
		if backlog <= t.opts.MaxPendingMemtables {
			return nil
		}
		// Hard ceiling: maintenance is not keeping up with intake. Run
		// flush steps on the committing goroutine until the queue is back
		// under the ceiling — the last-resort synchronous fallback. The
		// stall is metered so admission control can react before the next
		// one.
		start := time.Now()
		err = t.drainTo(t.opts.MaxPendingMemtables)
		t.mu.Lock()
		t.stallUs += time.Since(start).Microseconds()
		t.mu.Unlock()
	} else {
		// Inline modes: the scheduler decides how much maintenance runs at
		// this commit boundary; the ceiling still bounds the backlog.
		err = t.runInlineSteps(t.sched.StepsAfterCommit(backlog))
		if err == nil {
			err = t.drainTo(t.opts.MaxPendingMemtables)
		}
	}
	if err != nil {
		// The delta is durable and the memtable absorbed the batch, but the
		// commit as a whole failed: restore the prior version so the tree
		// does not claim a version its caller never saw commit. In-memory
		// state is not unwound — callers must reload before retrying.
		t.mu.Lock()
		t.version = prev
		t.mu.Unlock()
		return err
	}
	return nil
}

// pruneStaleManifestsLocked removes manifests newer than the current
// version. A crash mid-prune is safe: recovery reloads a version at or
// below the current one, whose anchor search ignores newer manifests, and
// the next first-commit prunes whatever remains.
func (t *Tree) pruneStaleManifestsLocked() error {
	l, err := listDir(t.fsys, t.dir)
	if err != nil {
		return err
	}
	for _, mv := range l.manifests {
		if mv <= t.version {
			continue
		}
		if err := t.fsys.Remove(manifestPath(t.dir, mv)); err != nil {
			return fmt.Errorf("lsm: pruning stale manifest %d: %w", mv, err)
		}
	}
	return nil
}

// sealLocked freezes the active memtable into the flush queue. The
// replacement is pre-sized to the sealed table's count: epoch batches are
// similar-sized, so the predecessor is the best available fill estimate.
func (t *Tree) sealLocked() {
	t.sealed = append(t.sealed, &sealedMem{
		mem:    t.mem,
		from:   t.memFrom,
		to:     t.version,
		liveAt: t.liveKeys,
	})
	t.mem = newMemtableSized(t.mem.len())
	t.memFrom = t.version + 1
}

// logFromLocked is the first delta version not yet covered by the table
// set: the replay floor every manifest records.
func (t *Tree) logFromLocked() int64 {
	if len(t.sealed) > 0 {
		return t.sealed[0].from
	}
	return t.memFrom
}

// runInlineSteps runs up to n maintenance steps (all pending work if n < 0)
// on the calling goroutine.
func (t *Tree) runInlineSteps(n int) error {
	for i := 0; n < 0 || i < n; i++ {
		did, err := t.step()
		if err != nil {
			return err
		}
		if !did {
			return nil
		}
	}
	return nil
}

// drainTo runs maintenance steps until the flush backlog is at most max.
func (t *Tree) drainTo(max int) error {
	for {
		t.mu.Lock()
		if err := t.maintErr; err != nil {
			t.mu.Unlock()
			return fmt.Errorf("lsm: background maintenance failed, reload required: %w", err)
		}
		if len(t.sealed) <= max || t.closed {
			t.mu.Unlock()
			return nil
		}
		t.mu.Unlock()
		did, err := t.step()
		if err != nil {
			return err
		}
		if !did {
			return nil
		}
	}
}

// step performs one maintenance step: flush the oldest sealed memtable, or,
// with nothing queued, one compaction merge — then publishes a manifest
// pinning the result. It reports whether it did anything. The heavy work
// (sorting, block building, the table write) runs outside t.mu against
// immutable inputs; only the snapshot and the install take the lock.
func (t *Tree) step() (bool, error) {
	t.maintMu.Lock()
	defer t.maintMu.Unlock()
	t.mu.Lock()
	if t.closed || t.maintErr != nil {
		// An in-flight step finishes past this point; after Close no new
		// step starts, so Close waits for at most one install.
		t.mu.Unlock()
		return false, nil
	}
	if len(t.sealed) > 0 {
		sm := t.sealed[0]
		seq := t.nextSeq
		t.mu.Unlock()
		return true, t.flushStep(sm, seq)
	}
	i, j := t.findRunLocked()
	if i < 0 {
		t.mu.Unlock()
		return false, nil
	}
	run := append([]*Table(nil), t.tables[i:j]...)
	seq := t.nextSeq
	t.mu.Unlock()
	return true, t.compactStep(i, j, run, seq)
}

// flushStep writes one sealed memtable as the newest SSTable and installs
// it. Tombstones are kept — they must keep shadowing older tables until
// compaction can prove nothing older remains. Between snapshot and install
// only Commit can run (steps and reloads are serialized by maintMu), and
// Commit never touches the sealed queue's head or the table list, so the
// install point sees exactly the snapshotted structures.
func (t *Tree) flushStep(sm *sealedMem, seq int64) error {
	b := newTableBuilder(t.opts.BlockBytes, bloomBitsPerKey)
	for _, k := range sm.mem.sortedKeys() {
		e := sm.mem.entries[k]
		b.add(k, e.value, e.tomb)
	}
	path := tablePath(t.dir, seq)
	if t.opts.Cache != nil {
		// After a rollback this seq can overwrite a stale table from the
		// abandoned timeline; its cached blocks must not survive.
		t.opts.Cache.dropTable(path)
	}
	if err := fsx.WriteAtomic(t.fsys, path, b.finish(), 0o644); err != nil {
		return fmt.Errorf("lsm: %w", err)
	}
	tbl, err := openTable(t.fsys, path, seq, t.opts.Cache)
	if err != nil {
		return err
	}
	t.mu.Lock()
	t.nextSeq = seq + 1
	t.tables = append(t.tables, tbl)
	t.sealed = t.sealed[1:]
	t.tableLive = sm.liveAt
	t.flushes++
	m := t.manifestLocked()
	t.mu.Unlock()
	return writeManifest(t.fsys, t.dir, m)
}

// compactStep merges one run of tables into a replacement and installs it.
// The inputs stay readable (and on disk) throughout: they leave the table
// list only at the install point, which is also when their cached blocks
// are evicted — the moment the manifest stops referencing them. Input files
// are NOT deleted; older manifests still reference them, and Maintain
// garbage-collects unreferenced tables once retention allows.
func (t *Tree) compactStep(i, j int, run []*Table, seq int64) error {
	srcs := make([]kvIter, 0, len(run))
	var inBytes int64
	for k := len(run) - 1; k >= 0; k-- { // newest first
		srcs = append(srcs, run[k].iter(""))
		inBytes += run[k].size
	}
	mi := newMergeIter(srcs)
	// Tombstones drop only when the run includes the oldest table, i.e.
	// when nothing older could be resurrected.
	dropTombs := i == 0
	b := newTableBuilder(t.opts.BlockBytes, bloomBitsPerKey)
	for mi.next() {
		k, v, tomb := mi.entry()
		if tomb && dropTombs {
			continue
		}
		b.addBytes(k, v, tomb)
	}
	if err := mi.error(); err != nil {
		return err
	}
	var out []*Table
	if b.entries > 0 {
		path := tablePath(t.dir, seq)
		if t.opts.Cache != nil {
			t.opts.Cache.dropTable(path)
		}
		if err := fsx.WriteAtomic(t.fsys, path, b.finish(), 0o644); err != nil {
			return fmt.Errorf("lsm: %w", err)
		}
		tbl, err := openTable(t.fsys, path, seq, t.opts.Cache)
		if err != nil {
			return err
		}
		out = []*Table{tbl}
	}
	t.mu.Lock()
	if b.entries > 0 {
		t.nextSeq = seq + 1
	}
	merged := make([]*Table, 0, len(t.tables)-(j-i)+1)
	merged = append(merged, t.tables[:i]...)
	merged = append(merged, out...)
	merged = append(merged, t.tables[j:]...)
	t.tables = merged
	t.compactions++
	t.compactionBytes += inBytes
	m := t.manifestLocked()
	t.mu.Unlock()
	if t.opts.Cache != nil {
		for _, tbl := range run {
			t.opts.Cache.dropTable(tbl.path)
		}
	}
	return writeManifest(t.fsys, t.dir, m)
}

// manifestLocked snapshots the manifest describing the current install.
func (t *Tree) manifestLocked() manifest {
	m := manifest{
		Version:   t.version,
		NextSeq:   t.nextSeq,
		LogFrom:   t.logFromLocked(),
		LiveKeys:  t.liveKeys,
		TableLive: t.tableLive,
	}
	for _, tbl := range t.tables {
		m.Tables = append(m.Tables, manifestTable{Seq: tbl.seq, Bytes: tbl.size, Entries: tbl.entries})
	}
	return m
}

// maintLoop is the supervised background maintenance goroutine: it drains
// the flush queue and folds crowded tiers whenever a commit signals work,
// publishing a manifest after every step. A failure (or panic) is latched
// into maintErr and fails the next Commit — the query's supervisor then
// restarts from the checkpoint; background maintenance must never decay
// into silent data loss.
func (t *Tree) maintLoop() {
	defer close(t.bgDone)
	defer func() {
		if r := recover(); r != nil {
			t.mu.Lock()
			if t.maintErr == nil {
				t.maintErr = fmt.Errorf("lsm: maintenance panic: %v", r)
			}
			t.mu.Unlock()
		}
	}()
	for range t.bgWake {
		for {
			did, err := t.step()
			if err != nil {
				t.mu.Lock()
				if t.maintErr == nil {
					t.maintErr = err
				}
				t.mu.Unlock()
				break
			}
			if !did {
				break
			}
		}
	}
}

// sizeTier buckets a table by size: tables within a power-of-two band above
// a 16 KiB base share a tier and are candidates for merging together.
func sizeTier(bytes int64) int {
	tier := 0
	for bytes > 16<<10 {
		bytes >>= 1
		tier++
	}
	return tier
}

// findRunLocked locates the first maximal age-adjacent same-tier run of at
// least MaxTierTables tables, returning [-1,-1) if none qualifies. Only
// age-adjacent tables may merge — skipping a table in the middle would
// reorder shadowing.
func (t *Tree) findRunLocked() (int, int) {
	for i := 0; i < len(t.tables); {
		j := i + 1
		for j < len(t.tables) && sizeTier(t.tables[j].size) == sizeTier(t.tables[i].size) {
			j++
		}
		if j-i >= t.opts.MaxTierTables {
			return i, j
		}
		i = j
	}
	return -1, -1
}

// Compact runs maintenance to fixpoint synchronously: pending flushes, then
// compaction merges, each published in its own manifest.
func (t *Tree) Compact() error {
	return t.runInlineSteps(-1)
}

// Range invokes fn for every live key in [from, to] ascending; empty bounds
// are open. Tombstones and shadowed versions never surface.
func (t *Tree) Range(from, to string, fn func(key string, value []byte) error) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	srcs := make([]kvIter, 0, len(t.tables)+len(t.sealed)+1)
	srcs = append(srcs, newMemIter(t.mem, from))
	for i := len(t.sealed) - 1; i >= 0; i-- {
		srcs = append(srcs, newMemIter(t.sealed[i].mem, from))
	}
	for i := len(t.tables) - 1; i >= 0; i-- {
		srcs = append(srcs, t.tables[i].iter(from))
	}
	mi := newMergeIter(srcs)
	for mi.next() {
		k, v, tomb := mi.entry()
		if to != "" && cmpStringBytes(to, k) < 0 {
			break
		}
		if tomb {
			continue
		}
		if err := fn(string(k), v); err != nil {
			return err
		}
	}
	return mi.error()
}

// NumKeys is the live key count, maintained incrementally — O(1), no scan.
func (t *Tree) NumKeys() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.liveKeys
}

// Version is the last committed (or loaded) version.
func (t *Tree) Version() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.version
}

// Stats snapshots the tree's shape.
func (t *Tree) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := Stats{
		Version:            t.version,
		LiveKeys:           t.liveKeys,
		MemtableBytes:      t.mem.bytes,
		MemtableKeys:       int64(t.mem.len()),
		Tables:             int64(len(t.tables)),
		Flushes:            t.flushes,
		Compactions:        t.compactions,
		CompactionBytes:    t.compactionBytes,
		FlushBacklog:       int64(len(t.sealed)),
		MaintenanceStallUs: t.stallUs,
	}
	for _, sm := range t.sealed {
		s.MemtableBytes += sm.mem.bytes
		s.MemtableKeys += int64(sm.mem.len())
	}
	for _, tbl := range t.tables {
		s.TableBytes += tbl.size
	}
	return s
}

// DiskUsage sums the tree directory's file sizes.
func (t *Tree) DiskUsage() (int64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	entries, err := t.fsys.ReadDir(t.dir)
	if err != nil {
		return 0, fmt.Errorf("lsm: %w", err)
	}
	var total int64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if info, err := t.fsys.Stat(filepath.Join(t.dir, e.Name())); err == nil {
			total += info.Size()
		}
	}
	return total, nil
}

// Maintain garbage-collects files no committed version >= keepFrom needs:
// manifests older than the recovery anchor for keepFrom, the delta-log
// prefix absorbed by every surviving manifest, and SSTables referenced by
// none of them. It holds maintMu so GC never interleaves with a maintenance
// step — a freshly written table that has not installed yet must not be
// swept. The open tree's own tables stay pinned and their cached blocks are
// dropped when their files go. Returns the removed file names.
func (t *Tree) Maintain(keepFrom int64) ([]string, error) {
	t.maintMu.Lock()
	defer t.maintMu.Unlock()
	t.mu.Lock()
	pin := map[int64]bool{}
	for _, tbl := range t.tables {
		pin[tbl.seq] = true
	}
	logFloor := t.logFromLocked()
	t.mu.Unlock()
	return maintainDir(t.fsys, t.dir, keepFrom, pin, logFloor, func(path string) {
		if t.opts.Cache != nil {
			t.opts.Cache.dropTable(path)
		}
	})
}

// Close releases the tree. In background mode the maintenance goroutine is
// stopped and an in-flight step is drained to completion — its manifest is
// either fully published or never started, not partial — before Close
// returns and the directory is reusable. Sealed-but-unflushed memtables are
// simply dropped: their deltas are durable and replay on the next Load.
// Cached blocks are evicted last, after the final install.
func (t *Tree) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	if t.bgWake != nil {
		// Closing under mu pairs with the wake send in Commit, which also
		// holds mu: a send on a closed channel is impossible.
		close(t.bgWake)
	}
	t.mu.Unlock()
	if t.bgDone != nil {
		<-t.bgDone
	}
	t.maintMu.Lock()
	t.mu.Lock()
	for _, tbl := range t.tables {
		if t.opts.Cache != nil {
			t.opts.Cache.dropTable(tbl.path)
		}
	}
	t.mu.Unlock()
	t.maintMu.Unlock()
}
