package lsm

import (
	"fmt"
	"path/filepath"
	"sync"

	"structream/internal/fsx"
)

// Options configures a Tree.
type Options struct {
	FS  fsx.FS
	Dir string
	// MemtableBytes is the flush threshold: once committed-but-unflushed
	// state exceeds it, the memtable is sealed into an SSTable. Default 4 MiB.
	MemtableBytes int64
	// BlockBytes is the SSTable data-block target size. Default 4 KiB.
	BlockBytes int
	// MaxTierTables triggers compaction when this many similar-sized tables
	// accumulate in one size tier. Default 4.
	MaxTierTables int
	// Cache is the shared block cache; nil disables block caching.
	Cache *BlockCache
	// BackgroundCompaction moves compaction out of Commit into a goroutine.
	// The engine keeps it off: synchronous compaction keeps the mutating-op
	// schedule deterministic, which the crash-sweep torture harness requires.
	BackgroundCompaction bool
}

// Stats is a point-in-time view of a tree's shape and write amplification.
type Stats struct {
	Version       int64
	LiveKeys      int64
	MemtableBytes int64
	MemtableKeys  int64
	Tables        int64
	TableBytes    int64
	Flushes       int64
	Compactions   int64
	// CompactionBytes is the cumulative input rewritten by compaction.
	CompactionBytes int64
}

// Tree is one keyed state partition stored as an LSM: a mutable memtable
// over immutable SSTables, with per-version delta logs and manifests making
// every committed version individually loadable.
type Tree struct {
	fsys fsx.FS
	dir  string
	opts Options

	mu        sync.Mutex
	mem       *memtable
	tables    []*Table // oldest first; list order is the shadowing authority
	version   int64
	nextSeq   int64
	logFrom   int64 // first delta version held by the memtable
	liveKeys  int64
	tableLive int64 // live keys in the table set alone (as of logFrom-1)

	flushes         int64
	compactions     int64
	compactionBytes int64

	closed bool
	bgCh   chan struct{}
	bgDone chan struct{}
}

// Open prepares a tree rooted at opts.Dir. The tree starts empty; call Load
// to position it at a committed version.
func Open(opts Options) (*Tree, error) {
	if opts.FS == nil || opts.Dir == "" {
		return nil, fmt.Errorf("lsm: Options.FS and Options.Dir are required")
	}
	if opts.MemtableBytes <= 0 {
		opts.MemtableBytes = defaultMemtableCap
	}
	if opts.BlockBytes <= 0 {
		opts.BlockBytes = defaultBlockBytes
	}
	if opts.MaxTierTables < 2 {
		opts.MaxTierTables = defaultTierTables
	}
	if err := opts.FS.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("lsm: %w", err)
	}
	t := &Tree{fsys: opts.FS, dir: opts.Dir, opts: opts, mem: newMemtable(), version: -1}
	if opts.BackgroundCompaction {
		t.bgCh = make(chan struct{}, 1)
		t.bgDone = make(chan struct{})
		go t.bgLoop()
	}
	return t, nil
}

// Load positions the tree at a committed version (-1 = empty): the newest
// manifest at or below it supplies the table set, and the delta-log suffix
// replays on top.
// A missing manifest for the exact version is normal — it is the crash
// window between delta (durable) and manifest, and after rollback, where
// older manifests plus deltas still reconstruct the state.
func (t *Tree) Load(version int64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, err := listDir(t.fsys, t.dir)
	if err != nil {
		return err
	}
	for _, tbl := range t.tables {
		if t.opts.Cache != nil {
			t.opts.Cache.dropTable(tbl.path)
		}
	}
	t.tables = nil
	t.mem = newMemtable()
	t.version, t.nextSeq, t.logFrom = version, 0, 0
	t.liveKeys, t.tableLive = 0, 0

	replayFrom := int64(0)
	if mv, ok := latestManifestAtOrBelow(l, version); ok {
		m, err := readManifest(t.fsys, t.dir, mv)
		if err != nil {
			return err
		}
		for _, mt := range m.Tables {
			tbl, err := openTable(t.fsys, tablePath(t.dir, mt.Seq), mt.Seq, t.opts.Cache)
			if err != nil {
				return err
			}
			t.tables = append(t.tables, tbl)
		}
		t.nextSeq, t.logFrom = m.NextSeq, m.LogFrom
		// Start from the table-set count; replay re-derives the memtable's
		// contribution with the same has-key checks the original commits ran.
		t.liveKeys, t.tableLive = m.TableLive, m.TableLive
		replayFrom = m.LogFrom
	}
	for _, dv := range l.deltas {
		if dv < replayFrom || dv > version {
			continue
		}
		if err := t.replayDeltaLocked(dv); err != nil {
			return err
		}
	}
	return nil
}

// replayDeltaLocked folds one delta file into the memtable.
func (t *Tree) replayDeltaLocked(version int64) error {
	path := filepath.Join(t.dir, fmt.Sprintf("%d.delta", version))
	data, err := t.fsys.ReadFile(path)
	if err != nil {
		return fmt.Errorf("lsm: %w", err)
	}
	body, err := fsx.Verify(path, data)
	if err != nil {
		return fmt.Errorf("lsm: %w", err)
	}
	return DecodeBatch(body,
		func(key string, value []byte) error {
			return t.applyPutLocked(key, append([]byte(nil), value...))
		},
		func(key string) error { return t.applyDelLocked(key) },
	)
}

// hasLocked reports whether key is live in committed state.
func (t *Tree) hasLocked(key string) (bool, error) {
	if e, ok := t.mem.get(key); ok {
		return !e.tomb, nil
	}
	kb := []byte(key)
	for i := len(t.tables) - 1; i >= 0; i-- {
		_, tomb, ok, err := t.tables[i].get(kb)
		if err != nil {
			return false, err
		}
		if ok {
			return !tomb, nil
		}
	}
	return false, nil
}

func (t *Tree) applyPutLocked(key string, value []byte) error {
	has, err := t.hasLocked(key)
	if err != nil {
		return err
	}
	if !has {
		t.liveKeys++
	}
	t.mem.put(key, value, false)
	return nil
}

func (t *Tree) applyDelLocked(key string) error {
	has, err := t.hasLocked(key)
	if err != nil {
		return err
	}
	if has {
		t.liveKeys--
	}
	t.mem.put(key, nil, true)
	return nil
}

// Get returns the committed value for key. The returned slice aliases
// internal storage and must not be mutated.
func (t *Tree) Get(key string) ([]byte, bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.mem.get(key); ok {
		if e.tomb {
			return nil, false, nil
		}
		return e.value, true, nil
	}
	kb := []byte(key)
	for i := len(t.tables) - 1; i >= 0; i-- {
		v, tomb, ok, err := t.tables[i].get(kb)
		if err != nil {
			return nil, false, err
		}
		if ok {
			if tomb {
				return nil, false, nil
			}
			return v, true, nil
		}
	}
	return nil, false, nil
}

// Commit durably applies one version's mutations: the delta log write is
// the durability point, then the memtable absorbs the batch, spilling to an
// SSTable past its threshold, compaction folds crowded tiers (synchronously
// unless background mode is on), and the manifest pins the result. A key in
// both maps is a delete, matching the delta encoding.
func (t *Tree) Commit(version int64, puts map[string][]byte, dels map[string]bool) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if version <= t.version {
		return fmt.Errorf("lsm: commit version %d not after current %d", version, t.version)
	}
	body := EncodeBatch(puts, dels)
	path := filepath.Join(t.dir, fmt.Sprintf("%d.delta", version))
	if err := fsx.WriteAtomic(t.fsys, path, fsx.Seal(body), 0o644); err != nil {
		return fmt.Errorf("lsm: %w", err)
	}
	for k, v := range puts {
		if dels[k] {
			continue
		}
		if err := t.applyPutLocked(k, v); err != nil {
			return err
		}
	}
	for k := range dels {
		if err := t.applyDelLocked(k); err != nil {
			return err
		}
	}
	prev := t.version
	t.version = version
	if err := t.commitTailLocked(); err != nil {
		// The delta is already durable and the memtable has absorbed the
		// batch, but the commit as a whole failed: restore the prior
		// version so the tree does not claim a version its caller never
		// saw commit. The memtable is not unwound — callers must reload
		// from disk before retrying the version.
		t.version = prev
		return err
	}
	return nil
}

// commitTailLocked is the post-durability half of Commit: spill the
// memtable past its threshold, fold crowded tiers, pin the result in the
// manifest.
func (t *Tree) commitTailLocked() error {
	flushed := false
	if t.mem.bytes >= t.opts.MemtableBytes && t.mem.len() > 0 {
		if err := t.flushLocked(); err != nil {
			return err
		}
		flushed = true
	}
	if t.opts.BackgroundCompaction {
		if flushed {
			select {
			case t.bgCh <- struct{}{}:
			default:
			}
		}
	} else if err := t.compactLocked(); err != nil {
		return err
	}
	return t.writeManifestLocked()
}

func (t *Tree) writeManifestLocked() error {
	m := manifest{
		Version:   t.version,
		NextSeq:   t.nextSeq,
		LogFrom:   t.logFrom,
		LiveKeys:  t.liveKeys,
		TableLive: t.tableLive,
	}
	for _, tbl := range t.tables {
		m.Tables = append(m.Tables, manifestTable{Seq: tbl.seq, Bytes: tbl.size, Entries: tbl.entries})
	}
	return writeManifest(t.fsys, t.dir, m)
}

// flushLocked seals the memtable into a new newest SSTable. Tombstones are
// kept — they must keep shadowing older tables until compaction can prove
// nothing older remains.
func (t *Tree) flushLocked() error {
	b := newTableBuilder(t.opts.BlockBytes, bloomBitsPerKey)
	for _, k := range t.mem.sortedKeys() {
		e := t.mem.entries[k]
		b.add(k, e.value, e.tomb)
	}
	seq := t.nextSeq
	path := tablePath(t.dir, seq)
	if t.opts.Cache != nil {
		// After a rollback this seq can overwrite a stale table from the
		// abandoned timeline; its cached blocks must not survive.
		t.opts.Cache.dropTable(path)
	}
	if err := fsx.WriteAtomic(t.fsys, path, b.finish(), 0o644); err != nil {
		return fmt.Errorf("lsm: %w", err)
	}
	tbl, err := openTable(t.fsys, path, seq, t.opts.Cache)
	if err != nil {
		return err
	}
	t.nextSeq++
	t.tables = append(t.tables, tbl)
	t.mem = newMemtable()
	t.logFrom = t.version + 1
	t.tableLive = t.liveKeys
	t.flushes++
	return nil
}

// sizeTier buckets a table by size: tables within a power-of-two band above
// a 16 KiB base share a tier and are candidates for merging together.
func sizeTier(bytes int64) int {
	tier := 0
	for bytes > 16<<10 {
		bytes >>= 1
		tier++
	}
	return tier
}

// compactLocked runs size-tiered compaction to fixpoint: any run of
// MaxTierTables age-adjacent tables in the same size tier is merged into
// one. Only age-adjacent tables may merge — skipping a table in the middle
// would reorder shadowing. Tombstones drop only when the run includes the
// oldest table, i.e. when nothing older could be resurrected. Input tables
// are NOT deleted: older manifests still reference them; Maintain garbage-
// collects unreferenced tables once retention allows.
func (t *Tree) compactLocked() error {
	for {
		i, j := t.findRunLocked()
		if i < 0 {
			return nil
		}
		if err := t.mergeRunLocked(i, j); err != nil {
			return err
		}
	}
}

// findRunLocked locates the first maximal age-adjacent same-tier run of at
// least MaxTierTables tables, returning [-1,-1) if none qualifies.
func (t *Tree) findRunLocked() (int, int) {
	for i := 0; i < len(t.tables); {
		j := i + 1
		for j < len(t.tables) && sizeTier(t.tables[j].size) == sizeTier(t.tables[i].size) {
			j++
		}
		if j-i >= t.opts.MaxTierTables {
			return i, j
		}
		i = j
	}
	return -1, -1
}

func (t *Tree) mergeRunLocked(i, j int) error {
	srcs := make([]kvIter, 0, j-i)
	var inBytes int64
	for k := j - 1; k >= i; k-- { // newest first
		srcs = append(srcs, t.tables[k].iter(""))
		inBytes += t.tables[k].size
	}
	mi := newMergeIter(srcs)
	dropTombs := i == 0
	b := newTableBuilder(t.opts.BlockBytes, bloomBitsPerKey)
	for mi.next() {
		k, v, tomb := mi.entry()
		if tomb && dropTombs {
			continue
		}
		b.add(k, v, tomb)
	}
	if err := mi.error(); err != nil {
		return err
	}
	var out []*Table
	if b.entries > 0 {
		seq := t.nextSeq
		path := tablePath(t.dir, seq)
		if t.opts.Cache != nil {
			t.opts.Cache.dropTable(path)
		}
		if err := fsx.WriteAtomic(t.fsys, path, b.finish(), 0o644); err != nil {
			return fmt.Errorf("lsm: %w", err)
		}
		tbl, err := openTable(t.fsys, path, seq, t.opts.Cache)
		if err != nil {
			return err
		}
		t.nextSeq++
		out = []*Table{tbl}
	}
	if t.opts.Cache != nil {
		for _, tbl := range t.tables[i:j] {
			t.opts.Cache.dropTable(tbl.path)
		}
	}
	merged := make([]*Table, 0, len(t.tables)-(j-i)+1)
	merged = append(merged, t.tables[:i]...)
	merged = append(merged, out...)
	merged = append(merged, t.tables[j:]...)
	t.tables = merged
	t.compactions++
	t.compactionBytes += inBytes
	return nil
}

// Compact runs one synchronous compaction pass and refreshes the current
// version's manifest if anything changed.
func (t *Tree) Compact() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	before := t.compactions
	if err := t.compactLocked(); err != nil {
		return err
	}
	if t.compactions != before && t.version >= 0 {
		return t.writeManifestLocked()
	}
	return nil
}

func (t *Tree) bgLoop() {
	defer close(t.bgDone)
	for range t.bgCh {
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			return
		}
		before := t.compactions
		err := t.compactLocked()
		if err == nil && t.compactions != before && t.version >= 0 {
			err = t.writeManifestLocked()
		}
		t.mu.Unlock()
		_ = err // background compaction is advisory; the next Commit retries
	}
}

// Range invokes fn for every live key in [from, to] ascending; empty bounds
// are open. Tombstones and shadowed versions never surface.
func (t *Tree) Range(from, to string, fn func(key string, value []byte) error) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	srcs := make([]kvIter, 0, len(t.tables)+1)
	srcs = append(srcs, newMemIter(t.mem, from))
	for i := len(t.tables) - 1; i >= 0; i-- {
		srcs = append(srcs, t.tables[i].iter(from))
	}
	mi := newMergeIter(srcs)
	for mi.next() {
		k, v, tomb := mi.entry()
		if to != "" && k > to {
			break
		}
		if tomb {
			continue
		}
		if err := fn(k, v); err != nil {
			return err
		}
	}
	return mi.error()
}

// NumKeys is the live key count, maintained incrementally — O(1), no scan.
func (t *Tree) NumKeys() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.liveKeys
}

// Version is the last committed (or loaded) version.
func (t *Tree) Version() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.version
}

// Stats snapshots the tree's shape.
func (t *Tree) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := Stats{
		Version:         t.version,
		LiveKeys:        t.liveKeys,
		MemtableBytes:   t.mem.bytes,
		MemtableKeys:    int64(t.mem.len()),
		Tables:          int64(len(t.tables)),
		Flushes:         t.flushes,
		Compactions:     t.compactions,
		CompactionBytes: t.compactionBytes,
	}
	for _, tbl := range t.tables {
		s.TableBytes += tbl.size
	}
	return s
}

// DiskUsage sums the tree directory's file sizes.
func (t *Tree) DiskUsage() (int64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	entries, err := t.fsys.ReadDir(t.dir)
	if err != nil {
		return 0, fmt.Errorf("lsm: %w", err)
	}
	var total int64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if info, err := t.fsys.Stat(filepath.Join(t.dir, e.Name())); err == nil {
			total += info.Size()
		}
	}
	return total, nil
}

// Maintain garbage-collects files no committed version >= keepFrom needs:
// manifests older than the recovery anchor for keepFrom, the delta-log
// prefix absorbed by every surviving manifest, and SSTables referenced by
// none of them. The open tree's own tables stay pinned and their cached
// blocks are dropped when their files go. Returns the removed file names.
func (t *Tree) Maintain(keepFrom int64) ([]string, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	pin := map[int64]bool{}
	for _, tbl := range t.tables {
		pin[tbl.seq] = true
	}
	return maintainDir(t.fsys, t.dir, keepFrom, pin, t.logFrom, func(path string) {
		if t.opts.Cache != nil {
			t.opts.Cache.dropTable(path)
		}
	})
}

// Close releases the tree: stops background compaction and evicts its
// tables' blocks from the shared cache. The tree must not be used after.
func (t *Tree) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	for _, tbl := range t.tables {
		if t.opts.Cache != nil {
			t.opts.Cache.dropTable(tbl.path)
		}
	}
	t.mu.Unlock()
	if t.bgCh != nil {
		close(t.bgCh)
		<-t.bgDone
	}
}
