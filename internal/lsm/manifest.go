package lsm

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"structream/internal/fsx"
)

// Every committed version writes a tiny manifest — the authoritative,
// crash-safe description of how to reconstruct that version: which SSTables
// (oldest first) plus which suffix of the delta log replays on top. A
// version's manifest is written last in its commit, after the delta (the
// durability point) and any flush or compaction output, so a crash anywhere
// in between leaves at most orphaned .sst files and a recovery path through
// the previous manifest + delta replay. Manifests are JSON inside the same
// fsx CRC frame as every other state file, installed by atomic rename.

// manifestTable references one live SSTable by sequence number.
type manifestTable struct {
	Seq     int64 `json:"seq"`
	Bytes   int64 `json:"bytes"`
	Entries int64 `json:"entries"`
}

// manifest pins one committed version of the tree.
type manifest struct {
	Version int64 `json:"version"`
	NextSeq int64 `json:"nextSeq"`
	LogFrom int64 `json:"logFrom"` // first delta version the memtable held
	// LiveKeys counts live keys at Version — informational.
	LiveKeys int64 `json:"liveKeys"`
	// TableLive counts live keys in the table set alone (state as of
	// LogFrom-1). Recovery starts its counter here and lets delta replay
	// re-derive the rest; starting from LiveKeys would double-count every
	// replayed insertion.
	TableLive int64 `json:"tableLive"`
	// Tables is oldest-first: list order, not sequence number, is the
	// shadowing authority (compaction outputs carry fresh seqs but replace
	// tables mid-list).
	Tables []manifestTable `json:"tables,omitempty"`
}

func manifestPath(dir string, version int64) string {
	return filepath.Join(dir, fmt.Sprintf("%d.manifest", version))
}

func tablePath(dir string, seq int64) string {
	return filepath.Join(dir, fmt.Sprintf("%d.sst", seq))
}

func writeManifest(fsys fsx.FS, dir string, m manifest) error {
	body, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("lsm: encode manifest: %w", err)
	}
	if err := fsx.WriteAtomic(fsys, manifestPath(dir, m.Version), fsx.Seal(body), 0o644); err != nil {
		return fmt.Errorf("lsm: %w", err)
	}
	return nil
}

func readManifest(fsys fsx.FS, dir string, version int64) (manifest, error) {
	path := manifestPath(dir, version)
	data, err := fsys.ReadFile(path)
	if err != nil {
		return manifest{}, fmt.Errorf("lsm: %w", err)
	}
	body, err := fsx.Verify(path, data)
	if err != nil {
		return manifest{}, fmt.Errorf("lsm: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(body, &m); err != nil {
		return manifest{}, fmt.Errorf("lsm: %w: %s: %v", fsx.ErrCorrupt, path, err)
	}
	return m, nil
}

// dirListing is one scan of a tree directory, bucketed by file kind.
type dirListing struct {
	manifests []int64 // versions, ascending
	deltas    []int64 // versions, ascending
	tables    []int64 // seqs, ascending
}

// listDir classifies a tree directory's files. Unknown names are ignored
// (tmp files belong to fsx.CleanupTmp).
func listDir(fsys fsx.FS, dir string) (dirListing, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return dirListing{}, fmt.Errorf("lsm: %w", err)
	}
	var l dirListing
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		dot := strings.LastIndexByte(name, '.')
		if dot <= 0 {
			continue
		}
		n, err := strconv.ParseInt(name[:dot], 10, 64)
		if err != nil || n < 0 {
			continue
		}
		switch name[dot+1:] {
		case "manifest":
			l.manifests = append(l.manifests, n)
		case "delta":
			l.deltas = append(l.deltas, n)
		case "sst":
			l.tables = append(l.tables, n)
		}
	}
	sort.Slice(l.manifests, func(i, j int) bool { return l.manifests[i] < l.manifests[j] })
	sort.Slice(l.deltas, func(i, j int) bool { return l.deltas[i] < l.deltas[j] })
	sort.Slice(l.tables, func(i, j int) bool { return l.tables[i] < l.tables[j] })
	return l, nil
}

// latestManifestAtOrBelow picks the recovery anchor for loading a version.
func latestManifestAtOrBelow(l dirListing, version int64) (int64, bool) {
	best, found := int64(0), false
	for _, v := range l.manifests {
		if v <= version && (!found || v > best) {
			best, found = v, true
		}
	}
	return best, found
}

// MaintainDir garbage-collects an LSM state directory without opening a
// tree — the retention path for directories whose query is not running.
// Files needed to reconstruct any version >= keepFrom are kept; removed
// file names are returned.
func MaintainDir(fsys fsx.FS, dir string, keepFrom int64) ([]string, error) {
	return maintainDir(fsys, dir, keepFrom, nil, int64(^uint64(0)>>1), nil)
}

// maintainDir is the GC core: the newest manifest at or below keepFrom
// anchors reachability; older manifests, deltas below every surviving
// manifest's LogFrom (and below minLogFloor), and SSTables referenced by no
// surviving manifest nor pinned by pin are deleted. onRemoveTable, if set,
// observes each removed table path (cache eviction).
func maintainDir(fsys fsx.FS, dir string, keepFrom int64, pin map[int64]bool, minLogFloor int64, onRemoveTable func(path string)) ([]string, error) {
	l, err := listDir(fsys, dir)
	if err != nil {
		return nil, err
	}
	anchor, ok := latestManifestAtOrBelow(l, keepFrom)
	if !ok {
		return nil, nil
	}
	keepSeqs := map[int64]bool{}
	for seq := range pin {
		keepSeqs[seq] = true
	}
	minLogFrom := minLogFloor
	for _, mv := range l.manifests {
		if mv < anchor {
			continue
		}
		m, err := readManifest(fsys, dir, mv)
		if err != nil {
			// A damaged manifest pins nothing reliably; stop rather than
			// delete tables it might still reference.
			return nil, err
		}
		for _, mt := range m.Tables {
			keepSeqs[mt.Seq] = true
		}
		if m.LogFrom < minLogFrom {
			minLogFrom = m.LogFrom
		}
	}
	var removed []string
	for _, mv := range l.manifests {
		if mv >= anchor {
			continue
		}
		name := fmt.Sprintf("%d.manifest", mv)
		if err := fsys.Remove(filepath.Join(dir, name)); err == nil {
			removed = append(removed, name)
		}
	}
	for _, dv := range l.deltas {
		if dv >= minLogFrom {
			continue
		}
		name := fmt.Sprintf("%d.delta", dv)
		if err := fsys.Remove(filepath.Join(dir, name)); err == nil {
			removed = append(removed, name)
		}
	}
	for _, seq := range l.tables {
		if keepSeqs[seq] {
			continue
		}
		name := fmt.Sprintf("%d.sst", seq)
		if err := fsys.Remove(filepath.Join(dir, name)); err == nil {
			removed = append(removed, name)
			if onRemoveTable != nil {
				onRemoveTable(filepath.Join(dir, name))
			}
		}
	}
	return removed, nil
}
