package lsm

import (
	"math/rand"
	"sync"
)

// MaintenanceScheduler decides where and how much LSM maintenance (memtable
// flush, size-tiered compaction, manifest publication) runs relative to
// commits. Production uses the supervised background goroutine; the crash
// torture harness swaps in a seeded scheduler so the exact same maintenance
// code path runs inline at commit boundaries, keeping the mutating-op
// schedule deterministic for fsx.FaultFS crash-point enumeration — the
// maintenance analogue of FaultFS itself.
type MaintenanceScheduler interface {
	// Async reports whether maintenance runs on a background goroutine
	// supervised by the tree. When false, maintenance runs inline on the
	// committing goroutine and StepsAfterCommit controls how much.
	Async() bool
	// StepsAfterCommit returns how many maintenance steps (one step = one
	// memtable flush or one compaction merge, each followed by a manifest
	// publication) to run inline after a commit, given the current flush
	// backlog. Negative means drain: run steps until none is pending.
	// Unused when Async is true.
	StepsAfterCommit(backlog int) int
}

// syncScheduler is the fully synchronous mode: every commit drains all
// pending maintenance before returning. This is the pre-background behavior
// and the golden reference the crash sweeps converge against.
type syncScheduler struct{}

func (syncScheduler) Async() bool                { return false }
func (syncScheduler) StepsAfterCommit(int) int   { return -1 }

// asyncScheduler hands all maintenance to the tree's background goroutine;
// commits wait only on their own delta's durability (plus the hard backlog
// ceiling as a last resort).
type asyncScheduler struct{}

func (asyncScheduler) Async() bool              { return true }
func (asyncScheduler) StepsAfterCommit(int) int { return 0 }

// SeededScheduler runs the background-maintenance code path inline at
// commit boundaries, choosing a pseudo-random (but seed-reproducible)
// number of steps after each commit. Two runs with the same seed and the
// same commit sequence produce the same interleaving of commits and
// maintenance steps — and therefore the same mutating-op schedule on the
// filesystem, which is what lets the torture harness crash at every op
// inside a "concurrent" flush or compaction and replay it exactly.
type SeededScheduler struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewSeededScheduler returns a deterministic scheduler for the given seed.
// Each tree sharing the instance draws from one stream, so per-tree
// schedules stay reproducible only if the commit order across trees is
// itself deterministic (single-threaded harnesses; the torture suite runs
// one partition).
func NewSeededScheduler(seed int64) *SeededScheduler {
	return &SeededScheduler{rng: rand.New(rand.NewSource(seed))}
}

func (s *SeededScheduler) Async() bool { return false }

func (s *SeededScheduler) StepsAfterCommit(backlog int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Ranges over [0, backlog+1]: sometimes defer everything (backlog
	// grows, exercising the ceiling), sometimes overshoot into compaction.
	return s.rng.Intn(backlog + 2)
}
