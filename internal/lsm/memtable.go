package lsm

import "sort"

// memEntry is one memtable slot: a live value or a tombstone shadowing
// older tables.
type memEntry struct {
	value []byte
	tomb  bool
}

// memtable is the mutable head of the tree: committed-but-unflushed state.
// It is a plain map with lazy sorting — writes are per-epoch batches and
// sorted order is only needed at flush/scan time, so a balanced structure
// would buy nothing here.
type memtable struct {
	entries map[string]memEntry
	bytes   int64 // approximate payload footprint driving the flush decision
}

// memEntryOverhead charges each entry for its bookkeeping beyond raw
// key/value bytes, so a million tiny keys still counts as real memory.
const memEntryOverhead = 32

func newMemtable() *memtable {
	return &memtable{entries: map[string]memEntry{}}
}

// newMemtableSized pre-sizes the entry map. Epoch batches are large and
// similar-sized, so seeding a fresh memtable with its predecessor's count
// avoids ~17 incremental map rehashes per epoch on the commit path.
func newMemtableSized(hint int) *memtable {
	return &memtable{entries: make(map[string]memEntry, hint)}
}

func (m *memtable) get(key string) (memEntry, bool) {
	e, ok := m.entries[key]
	return e, ok
}

// getBytes is get for a []byte key; the string conversion in the map index
// is allocation-elided by the compiler.
func (m *memtable) getBytes(key []byte) (memEntry, bool) {
	e, ok := m.entries[string(key)]
	return e, ok
}

// put inserts a value or tombstone, keeping the byte estimate in step.
func (m *memtable) put(key string, value []byte, tomb bool) {
	if old, ok := m.entries[key]; ok {
		m.bytes -= int64(len(old.value))
	} else {
		m.bytes += int64(len(key)) + memEntryOverhead
	}
	m.bytes += int64(len(value))
	m.entries[key] = memEntry{value: value, tomb: tomb}
}

func (m *memtable) len() int { return len(m.entries) }

// sortedKeys returns the keys ascending — the flush and scan order.
func (m *memtable) sortedKeys() []string {
	keys := make([]string, 0, len(m.entries))
	for k := range m.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
