package lsm

import "bytes"

// kvIter is the common shape of memtable and SSTable iterators: a primed
// cursor advanced with next(), exposing the current entry until exhaustion.
// Keys and values are []byte views that are only guaranteed valid until the
// iterator's next call to next() — consumers that hold a key across an
// advance must copy it (mergeIter does exactly that for its winner).
type kvIter interface {
	// next advances to the following entry; false at exhaustion or error.
	next() bool
	entry() (key []byte, val []byte, tomb bool)
	error() error
}

// cmpStringBytes compares s with b lexicographically without allocating —
// the bridge between index/bound strings and the []byte keys the read path
// carries.
func cmpStringBytes(s string, b []byte) int {
	n := len(s)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if s[i] != b[i] {
			if s[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(s) < len(b):
		return -1
	case len(s) > len(b):
		return 1
	}
	return 0
}

// ----------------------------------------------------------- memtable iter

// memIter walks a snapshot of the memtable in key order. The exposed key
// lives in a buffer reused across next() calls.
type memIter struct {
	m    *memtable
	keys []string
	i    int
	key  []byte
	val  []byte
	tomb bool
}

func newMemIter(m *memtable, from string) *memIter {
	it := &memIter{m: m, keys: m.sortedKeys()}
	for it.i < len(it.keys) && it.keys[it.i] < from {
		it.i++
	}
	return it
}

func (it *memIter) next() bool {
	if it.i >= len(it.keys) {
		return false
	}
	k := it.keys[it.i]
	it.key = append(it.key[:0], k...)
	e := it.m.entries[k]
	it.val, it.tomb = e.value, e.tomb
	it.i++
	return true
}

func (it *memIter) entry() ([]byte, []byte, bool) { return it.key, it.val, it.tomb }
func (it *memIter) error() error                  { return nil }

// tableIter adapts to kvIter.
func (it *tableIter) entry() ([]byte, []byte, bool) { return it.key, it.val, it.tomb }
func (it *tableIter) error() error                  { return it.err }

// ------------------------------------------------------------- merge iter

// mergeIter fuses sources in newest-first priority order into one sorted
// stream: at each key the newest source wins and older duplicates are
// consumed silently. Tombstones are surfaced (not elided) so compaction can
// decide whether dropping them is safe.
type mergeIter struct {
	srcs  []kvIter // index 0 = newest
	valid []bool

	key  []byte // owned copy: stays valid while sources advance past it
	val  []byte
	tomb bool
	err  error
}

func newMergeIter(srcs []kvIter) *mergeIter {
	m := &mergeIter{srcs: srcs, valid: make([]bool, len(srcs))}
	for i, s := range srcs {
		m.valid[i] = s.next()
		if err := s.error(); err != nil {
			m.err = err
		}
	}
	return m
}

func (m *mergeIter) next() bool {
	if m.err != nil {
		return false
	}
	// Find the smallest key across live sources; lowest index breaks ties,
	// which is exactly newest-wins.
	win := -1
	var winKey []byte
	for i, ok := range m.valid {
		if !ok {
			continue
		}
		k, _, _ := m.srcs[i].entry()
		if win < 0 || bytes.Compare(k, winKey) < 0 {
			win, winKey = i, k
		}
	}
	if win < 0 {
		return false
	}
	// Copy the winner's key before advancing any source: a source's entry
	// buffer may be reused by its next().
	m.key = append(m.key[:0], winKey...)
	_, m.val, m.tomb = m.srcs[win].entry()
	// Consume this key everywhere so shadowed older versions never surface.
	for i, ok := range m.valid {
		if !ok {
			continue
		}
		if k, _, _ := m.srcs[i].entry(); bytes.Equal(k, m.key) {
			m.valid[i] = m.srcs[i].next()
			if err := m.srcs[i].error(); err != nil {
				m.err = err
				return false
			}
		}
	}
	return true
}

func (m *mergeIter) entry() ([]byte, []byte, bool) { return m.key, m.val, m.tomb }
func (m *mergeIter) error() error                  { return m.err }
