package lsm

// kvIter is the common shape of memtable and SSTable iterators: a primed
// cursor advanced with next(), exposing the current entry until exhaustion.
type kvIter interface {
	// next advances to the following entry; false at exhaustion or error.
	next() bool
	entry() (key string, val []byte, tomb bool)
	error() error
}

// ----------------------------------------------------------- memtable iter

// memIter walks a snapshot of the memtable in key order.
type memIter struct {
	m    *memtable
	keys []string
	i    int
	key  string
	val  []byte
	tomb bool
}

func newMemIter(m *memtable, from string) *memIter {
	it := &memIter{m: m, keys: m.sortedKeys()}
	for it.i < len(it.keys) && it.keys[it.i] < from {
		it.i++
	}
	return it
}

func (it *memIter) next() bool {
	if it.i >= len(it.keys) {
		return false
	}
	it.key = it.keys[it.i]
	e := it.m.entries[it.key]
	it.val, it.tomb = e.value, e.tomb
	it.i++
	return true
}

func (it *memIter) entry() (string, []byte, bool) { return it.key, it.val, it.tomb }
func (it *memIter) error() error                  { return nil }

// tableIter adapts to kvIter.
func (it *tableIter) entry() (string, []byte, bool) { return it.key, it.val, it.tomb }
func (it *tableIter) error() error                  { return it.err }

// ------------------------------------------------------------- merge iter

// mergeIter fuses sources in newest-first priority order into one sorted
// stream: at each key the newest source wins and older duplicates are
// consumed silently. Tombstones are surfaced (not elided) so compaction can
// decide whether dropping them is safe.
type mergeIter struct {
	srcs  []kvIter // index 0 = newest
	valid []bool

	key  string
	val  []byte
	tomb bool
	err  error
}

func newMergeIter(srcs []kvIter) *mergeIter {
	m := &mergeIter{srcs: srcs, valid: make([]bool, len(srcs))}
	for i, s := range srcs {
		m.valid[i] = s.next()
		if err := s.error(); err != nil {
			m.err = err
		}
	}
	return m
}

func (m *mergeIter) next() bool {
	if m.err != nil {
		return false
	}
	// Find the smallest key across live sources; lowest index breaks ties,
	// which is exactly newest-wins.
	win := -1
	for i, ok := range m.valid {
		if !ok {
			continue
		}
		k, _, _ := m.srcs[i].entry()
		if win < 0 {
			win = i
			continue
		}
		wk, _, _ := m.srcs[win].entry()
		if k < wk {
			win = i
		}
	}
	if win < 0 {
		return false
	}
	m.key, m.val, m.tomb = m.srcs[win].entry()
	// Consume this key everywhere so shadowed older versions never surface.
	for i, ok := range m.valid {
		if !ok {
			continue
		}
		if k, _, _ := m.srcs[i].entry(); k == m.key {
			m.valid[i] = m.srcs[i].next()
			if err := m.srcs[i].error(); err != nil {
				m.err = err
				return false
			}
		}
	}
	return true
}

func (m *mergeIter) entry() (string, []byte, bool) { return m.key, m.val, m.tomb }
func (m *mergeIter) error() error                  { return m.err }
