package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"structream/internal/fsx"
)

// smallOpts returns options tuned so a handful of commits exercises flush
// and compaction.
func smallOpts(t *testing.T) Options {
	t.Helper()
	return Options{
		FS:            fsx.Real(),
		Dir:           t.TempDir(),
		MemtableBytes: 2 << 10, // 2 KiB: spill fast
		BlockBytes:    256,
		MaxTierTables: 3,
		Cache:         NewBlockCache(64 << 10),
	}
}

func mustOpen(t *testing.T, opts Options) *Tree {
	t.Helper()
	tr, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(tr.Close)
	return tr
}

func commit(t *testing.T, tr *Tree, version int64, puts map[string][]byte, dels ...string) {
	t.Helper()
	dm := map[string]bool{}
	for _, d := range dels {
		dm[d] = true
	}
	if err := tr.Commit(version, puts, dm); err != nil {
		t.Fatalf("Commit(%d): %v", version, err)
	}
}

func TestTreeRoundTrip(t *testing.T) {
	tr := mustOpen(t, smallOpts(t))
	commit(t, tr, 1, map[string][]byte{"a": []byte("1"), "b": []byte("2")})
	commit(t, tr, 2, map[string][]byte{"a": []byte("3")}, "b")

	if v, ok, err := tr.Get("a"); err != nil || !ok || string(v) != "3" {
		t.Fatalf("Get(a) = %q, %v, %v; want 3", v, ok, err)
	}
	if _, ok, err := tr.Get("b"); err != nil || ok {
		t.Fatalf("Get(b) should be deleted, got ok=%v err=%v", ok, err)
	}
	if n := tr.NumKeys(); n != 1 {
		t.Fatalf("NumKeys = %d, want 1", n)
	}
}

// TestTreeModel drives the tree and a plain map through the same random
// commit schedule, checking Get/Range/NumKeys agreement and that reloading
// any committed version reproduces that version's model state exactly.
func TestTreeModel(t *testing.T) {
	opts := smallOpts(t)
	tr := mustOpen(t, opts)
	rng := rand.New(rand.NewSource(7))
	model := map[string][]byte{}
	history := map[int64]map[string][]byte{}

	key := func(i int) string { return fmt.Sprintf("key-%03d", i) }
	for version := int64(1); version <= 40; version++ {
		puts := map[string][]byte{}
		dels := map[string]bool{}
		for n := 0; n < 20; n++ {
			k := key(rng.Intn(120))
			if rng.Intn(5) == 0 {
				dels[k] = true
				delete(puts, k)
			} else {
				v := bytes.Repeat([]byte{byte('a' + rng.Intn(26))}, 10+rng.Intn(40))
				puts[k] = v
				delete(dels, k)
			}
		}
		if err := tr.Commit(version, puts, dels); err != nil {
			t.Fatalf("Commit(%d): %v", version, err)
		}
		for k, v := range puts {
			model[k] = v
		}
		for k := range dels {
			delete(model, k)
		}
		snap := map[string][]byte{}
		for k, v := range model {
			snap[k] = v
		}
		history[version] = snap
	}

	stats := tr.Stats()
	if stats.Flushes == 0 || stats.Tables == 0 {
		t.Fatalf("expected spills to SSTables, got stats %+v", stats)
	}
	if stats.Compactions == 0 {
		t.Fatalf("expected compaction to run, got stats %+v", stats)
	}

	checkAgainst := func(tr *Tree, want map[string][]byte) {
		t.Helper()
		for i := 0; i < 120; i++ {
			k := key(i)
			v, ok, err := tr.Get(k)
			if err != nil {
				t.Fatalf("Get(%s): %v", k, err)
			}
			wv, wok := want[k]
			if ok != wok || (ok && !bytes.Equal(v, wv)) {
				t.Fatalf("Get(%s) = %q,%v; want %q,%v", k, v, ok, wv, wok)
			}
		}
		if got, want := tr.NumKeys(), int64(len(want)); got != want {
			t.Fatalf("NumKeys = %d, want %d", got, want)
		}
		var gotKeys []string
		if err := tr.Range("", "", func(k string, v []byte) error {
			gotKeys = append(gotKeys, k)
			if !bytes.Equal(v, want[k]) {
				return fmt.Errorf("Range value mismatch at %s", k)
			}
			return nil
		}); err != nil {
			t.Fatalf("Range: %v", err)
		}
		wantKeys := make([]string, 0, len(want))
		for k := range want {
			wantKeys = append(wantKeys, k)
		}
		sort.Strings(wantKeys)
		if !sort.StringsAreSorted(gotKeys) {
			t.Fatalf("Range keys not sorted: %v", gotKeys)
		}
		if strings.Join(gotKeys, ",") != strings.Join(wantKeys, ",") {
			t.Fatalf("Range keys = %v, want %v", gotKeys, wantKeys)
		}
	}
	checkAgainst(tr, model)

	// Every committed version must be independently loadable.
	for _, version := range []int64{1, 7, 19, 23, 40} {
		tr2 := mustOpen(t, Options{FS: opts.FS, Dir: opts.Dir, MemtableBytes: opts.MemtableBytes,
			BlockBytes: opts.BlockBytes, MaxTierTables: opts.MaxTierTables, Cache: opts.Cache})
		if err := tr2.Load(version); err != nil {
			t.Fatalf("Load(%d): %v", version, err)
		}
		checkAgainst(tr2, history[version])
	}
}

func TestTreeRangeBounds(t *testing.T) {
	tr := mustOpen(t, smallOpts(t))
	puts := map[string][]byte{}
	for i := 0; i < 30; i++ {
		puts[fmt.Sprintf("k%02d", i)] = []byte{byte(i)}
	}
	commit(t, tr, 1, puts)
	var got []string
	if err := tr.Range("k05", "k10", func(k string, v []byte) error {
		got = append(got, k)
		return nil
	}); err != nil {
		t.Fatalf("Range: %v", err)
	}
	want := []string{"k05", "k06", "k07", "k08", "k09", "k10"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("Range[k05,k10] = %v, want %v", got, want)
	}
}

// TestTombstonesDropAtOldestCompaction checks deleted keys eventually leave
// disk: once a compaction run includes the oldest table, tombstones vanish.
func TestTombstonesDropAtOldestCompaction(t *testing.T) {
	opts := smallOpts(t)
	opts.MemtableBytes = 512
	opts.MaxTierTables = 2
	tr := mustOpen(t, opts)
	version := int64(0)
	big := bytes.Repeat([]byte("x"), 200)
	for i := 0; i < 8; i++ {
		version++
		commit(t, tr, version, map[string][]byte{fmt.Sprintf("k%d", i): big})
	}
	for i := 0; i < 8; i++ {
		version++
		commit(t, tr, version, nil, fmt.Sprintf("k%d", i))
	}
	// Force merges down to a single table: everything is deleted, so the
	// surviving table set should carry no entries at all.
	for i := 0; i < 6; i++ {
		version++
		commit(t, tr, version, map[string][]byte{"pad": bytes.Repeat([]byte("p"), 600)})
	}
	if n := tr.NumKeys(); n != 1 {
		t.Fatalf("NumKeys = %d, want 1 (only pad)", n)
	}
	st := tr.Stats()
	if st.Compactions == 0 {
		t.Fatalf("expected compactions, got %+v", st)
	}
	var entries int64
	tr.mu.Lock()
	for _, tbl := range tr.tables {
		entries += tbl.entries
	}
	tr.mu.Unlock()
	// The deleted keys may still have tombstones if the oldest table wasn't
	// in the last run, but live entries must be bounded by pad + tombstones.
	if err := tr.Range("", "", func(k string, v []byte) error {
		if k != "pad" {
			return fmt.Errorf("unexpected live key %s", k)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	_ = entries
}

func TestCorruptBlockDetected(t *testing.T) {
	opts := smallOpts(t)
	opts.Cache = nil // force disk reads
	tr := mustOpen(t, opts)
	puts := map[string][]byte{}
	for i := 0; i < 100; i++ {
		puts[fmt.Sprintf("key-%03d", i)] = bytes.Repeat([]byte("v"), 50)
	}
	commit(t, tr, 1, puts)
	commit(t, tr, 2, map[string][]byte{"spill": bytes.Repeat([]byte("s"), 4096)})
	if tr.Stats().Tables == 0 {
		t.Fatal("expected at least one SSTable")
	}
	// Flip a bit in the middle of the first table's data section.
	entries, err := os.ReadDir(opts.Dir)
	if err != nil {
		t.Fatal(err)
	}
	var sst string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".sst") {
			sst = filepath.Join(opts.Dir, e.Name())
			break
		}
	}
	if sst == "" {
		t.Fatal("no .sst file on disk")
	}
	data, err := os.ReadFile(sst)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/4] ^= 0x40
	if err := os.WriteFile(sst, data, 0o644); err != nil {
		t.Fatal(err)
	}
	tr2 := mustOpen(t, Options{FS: opts.FS, Dir: opts.Dir})
	if err := tr2.Load(2); err != nil {
		// Meta section corruption is caught at open — also acceptable.
		if !errors.Is(err, fsx.ErrCorrupt) {
			t.Fatalf("Load after corruption: %v (want ErrCorrupt)", err)
		}
		return
	}
	sawCorrupt := false
	for i := 0; i < 100; i++ {
		if _, _, err := tr2.Get(fmt.Sprintf("key-%03d", i)); err != nil {
			if !errors.Is(err, fsx.ErrCorrupt) {
				t.Fatalf("Get error not ErrCorrupt: %v", err)
			}
			sawCorrupt = true
		}
	}
	if !sawCorrupt {
		t.Fatal("bit flip in data block went undetected")
	}
}

func TestBlockCacheServesRepeatReads(t *testing.T) {
	opts := smallOpts(t)
	tr := mustOpen(t, opts)
	puts := map[string][]byte{}
	for i := 0; i < 200; i++ {
		puts[fmt.Sprintf("key-%03d", i)] = bytes.Repeat([]byte("v"), 30)
	}
	commit(t, tr, 1, puts)
	commit(t, tr, 2, map[string][]byte{"spill": bytes.Repeat([]byte("s"), 4096)})
	for round := 0; round < 3; round++ {
		for i := 0; i < 200; i++ {
			if _, ok, err := tr.Get(fmt.Sprintf("key-%03d", i)); err != nil || !ok {
				t.Fatalf("Get: %v ok=%v", err, ok)
			}
		}
	}
	cs := opts.Cache.Stats()
	if cs.Hits == 0 {
		t.Fatalf("expected cache hits on repeated reads, got %+v", cs)
	}
	if cs.Hits <= cs.Misses {
		t.Fatalf("cache ineffective: %+v", cs)
	}
}

func TestMaintainGarbageCollects(t *testing.T) {
	opts := smallOpts(t)
	opts.MemtableBytes = 512
	tr := mustOpen(t, opts)
	big := bytes.Repeat([]byte("x"), 300)
	for v := int64(1); v <= 20; v++ {
		commit(t, tr, v, map[string][]byte{fmt.Sprintf("k%d", v): big})
	}
	removed, err := tr.Maintain(15)
	if err != nil {
		t.Fatalf("Maintain: %v", err)
	}
	if len(removed) == 0 {
		t.Fatal("Maintain removed nothing")
	}
	// Version 15..20 must still load; earlier versions may be gone.
	for _, v := range []int64{15, 20} {
		tr2 := mustOpen(t, Options{FS: opts.FS, Dir: opts.Dir})
		if err := tr2.Load(v); err != nil {
			t.Fatalf("Load(%d) after Maintain: %v", v, err)
		}
		if tr2.NumKeys() != v {
			t.Fatalf("Load(%d): NumKeys = %d, want %d", v, tr2.NumKeys(), v)
		}
	}
}

func TestBackgroundCompaction(t *testing.T) {
	opts := smallOpts(t)
	opts.MemtableBytes = 512
	opts.MaxTierTables = 2
	opts.BackgroundCompaction = true
	tr := mustOpen(t, opts)
	big := bytes.Repeat([]byte("x"), 300)
	for v := int64(1); v <= 30; v++ {
		commit(t, tr, v, map[string][]byte{fmt.Sprintf("k%d", v): big})
	}
	tr.Close()
	// All data must survive whatever the compactor did.
	tr2 := mustOpen(t, Options{FS: opts.FS, Dir: opts.Dir})
	if err := tr2.Load(30); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if tr2.NumKeys() != 30 {
		t.Fatalf("NumKeys = %d, want 30", tr2.NumKeys())
	}
}

// TestLoadSurvivesMissingManifest models the crash window between the delta
// write (durable) and the manifest write: recovery anchors on the previous
// manifest and replays the delta suffix. MemtableBytes=1 forces a flush —
// and therefore a manifest — per commit, so removing the newest manifest
// reopens exactly that window.
func TestLoadSurvivesMissingManifest(t *testing.T) {
	opts := smallOpts(t)
	opts.MemtableBytes = 1
	tr := mustOpen(t, opts)
	commit(t, tr, 1, map[string][]byte{"a": []byte("1")})
	commit(t, tr, 2, map[string][]byte{"b": []byte("2")})
	commit(t, tr, 3, map[string][]byte{"c": []byte("3")})
	if err := os.Remove(filepath.Join(opts.Dir, "3.manifest")); err != nil {
		t.Fatal(err)
	}
	tr2 := mustOpen(t, Options{FS: opts.FS, Dir: opts.Dir})
	if err := tr2.Load(3); err != nil {
		t.Fatalf("Load(3) without its manifest: %v", err)
	}
	for _, k := range []string{"a", "b", "c"} {
		if _, ok, err := tr2.Get(k); err != nil || !ok {
			t.Fatalf("Get(%s) after recovery = ok=%v err=%v", k, ok, err)
		}
	}
	if tr2.NumKeys() != 3 {
		t.Fatalf("NumKeys = %d, want 3", tr2.NumKeys())
	}
}

func TestBloomNoFalseNegatives(t *testing.T) {
	keys := make([]string, 500)
	for i := range keys {
		keys[i] = fmt.Sprintf("bloom-key-%d", i*7)
	}
	f := buildBloom(keys, bloomBitsPerKey)
	for _, k := range keys {
		if !bloomMayContain(f, []byte(k)) {
			t.Fatalf("false negative for %s", k)
		}
	}
	fp := 0
	for i := 0; i < 1000; i++ {
		if bloomMayContain(f, []byte(fmt.Sprintf("absent-%d", i))) {
			fp++
		}
	}
	if fp > 100 { // ~1% expected at 10 bits/key; 10% is a hard failure
		t.Fatalf("false positive rate too high: %d/1000", fp)
	}
}
