package lsm

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// BlockCache is a byte-capacity-bounded LRU over SSTable data blocks,
// shared by every table of a state provider: hot blocks (recent keys,
// index-adjacent blocks) stay in memory while cold state pages from disk.
// Hit/miss counters feed the block-cache hit rate in QueryProgress.
type BlockCache struct {
	mu       sync.Mutex
	capacity int64
	size     int64
	order    *list.List // front = most recently used
	items    map[cacheKey]*list.Element

	hits   atomic.Int64
	misses atomic.Int64
}

type cacheKey struct {
	table string // table file path (unique per table)
	block int    // data-block index within the table
}

type cacheEntry struct {
	key  cacheKey
	data []byte
}

// CacheStats is a point-in-time view of a cache's effectiveness.
type CacheStats struct {
	Hits, Misses int64
	// Bytes is the resident block payload; Entries the block count.
	Bytes, Entries int64
}

// NewBlockCache creates a cache bounded to capBytes of block payload.
// capBytes <= 0 disables caching (every lookup misses).
func NewBlockCache(capBytes int64) *BlockCache {
	return &BlockCache{
		capacity: capBytes,
		order:    list.New(),
		items:    map[cacheKey]*list.Element{},
	}
}

// Stats reports cumulative hit/miss counts and current residency.
func (c *BlockCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Bytes:   c.size,
		Entries: int64(len(c.items)),
	}
}

// get returns the cached block, updating recency and counters.
func (c *BlockCache) get(k cacheKey) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.order.MoveToFront(el)
		c.hits.Add(1)
		return el.Value.(*cacheEntry).data, true
	}
	c.misses.Add(1)
	return nil, false
}

// put inserts a block, evicting least-recently-used blocks to stay under
// capacity. Blocks larger than the whole cache are not retained.
func (c *BlockCache) put(k cacheKey, data []byte) {
	if c.capacity <= 0 || int64(len(data)) > c.capacity {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.order.MoveToFront(el)
		c.size += int64(len(data)) - int64(len(el.Value.(*cacheEntry).data))
		el.Value.(*cacheEntry).data = data
	} else {
		c.items[k] = c.order.PushFront(&cacheEntry{key: k, data: data})
		c.size += int64(len(data))
	}
	for c.size > c.capacity {
		el := c.order.Back()
		if el == nil {
			break
		}
		ent := el.Value.(*cacheEntry)
		c.order.Remove(el)
		delete(c.items, ent.key)
		c.size -= int64(len(ent.data))
	}
}

// dropTable evicts every block of one table — called when a tree closes or
// a table becomes unreferenced, so a long-lived shared cache does not pin
// dead tables' blocks.
func (c *BlockCache) dropTable(table string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.order.Front(); el != nil; {
		next := el.Next()
		ent := el.Value.(*cacheEntry)
		if ent.key.table == table {
			c.order.Remove(el)
			delete(c.items, ent.key)
			c.size -= int64(len(ent.data))
		}
		el = next
	}
}
