package lsm

// Bloom filters give each SSTable an O(1) "definitely not here" answer so a
// point lookup usually touches only the one table that owns the key, not
// every table on disk. The filter is built once at table-write time from
// the sorted key set and stored in the table's meta section.
//
// Layout: byte 0 is the probe count k, the rest is the bit array. Probes
// use double hashing (h1 + i*h2) over a 64-bit FNV-1a hash, which is
// deterministic across processes — a requirement, since filters are written
// on one run and read on the next.

const (
	// bloomBitsPerKey is the default filter density: ~10 bits/key ≈ 1%
	// false-positive rate.
	bloomBitsPerKey = 10
	// bloomMaxProbes caps k; more probes than this stops helping.
	bloomMaxProbes = 12
)

// fnv64a is a zero-allocation FNV-1a hash over key.
func fnv64a(key []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// fnv64aString is fnv64a over a string, avoiding a []byte conversion.
func fnv64aString(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

// buildBloom constructs a filter for keys at the given density.
func buildBloom(keys []string, bitsPerKey int) []byte {
	hashes := make([]uint64, len(keys))
	for i, k := range keys {
		hashes[i] = fnv64aString(k)
	}
	return buildBloomFromHashes(hashes, bitsPerKey)
}

// buildBloomFromHashes constructs a filter from pre-computed FNV-1a key
// hashes — the table builder hashes each key as it streams in, so building
// the filter never needs the key set resident.
func buildBloomFromHashes(hashes []uint64, bitsPerKey int) []byte {
	if bitsPerKey <= 0 {
		bitsPerKey = bloomBitsPerKey
	}
	// k ≈ bitsPerKey * ln(2); the usual integer approximation.
	k := bitsPerKey * 69 / 100
	if k < 1 {
		k = 1
	}
	if k > bloomMaxProbes {
		k = bloomMaxProbes
	}
	nBits := len(hashes) * bitsPerKey
	if nBits < 64 {
		nBits = 64
	}
	filter := make([]byte, 1+(nBits+7)/8)
	filter[0] = byte(k)
	bits := uint64(len(filter)-1) * 8
	for _, h := range hashes {
		delta := h>>33 | h<<31
		for i := 0; i < k; i++ {
			pos := h % bits
			filter[1+pos/8] |= 1 << (pos % 8)
			h += delta
		}
	}
	return filter
}

// bloomMayContain reports whether key might be in the set the filter was
// built from. False positives are possible; false negatives are not. A
// malformed (too short) filter conservatively answers true.
func bloomMayContain(filter []byte, key []byte) bool {
	if len(filter) < 2 {
		return true
	}
	k := int(filter[0])
	if k < 1 || k > bloomMaxProbes {
		return true
	}
	bits := uint64(len(filter)-1) * 8
	h := fnv64a(key)
	delta := h>>33 | h<<31
	for i := 0; i < k; i++ {
		pos := h % bits
		if filter[1+pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
		h += delta
	}
	return true
}
