package incremental

import (
	"fmt"

	"structream/internal/sql"
	"structream/internal/sql/analysis"
	"structream/internal/sql/codec"
	"structream/internal/sql/logical"
	"structream/internal/sql/physical"
	"structream/internal/sql/vec"
)

// Compile incrementalizes an analyzed, optimized streaming plan for the
// given output mode. resolveStatic materializes static-table scans (for
// stream-static joins and batch subplans). The caller must already have
// run analysis.CheckStreaming.
func Compile(plan logical.Plan, mode logical.OutputMode, resolveStatic physical.ScanResolver) (*Query, error) {
	c := &compiler{resolveStatic: resolveStatic, watermarks: analysis.Watermarks(plan)}

	boundary := findBoundary(plan)
	if err := c.checkSingleBoundary(plan, boundary); err != nil {
		return nil, err
	}

	q := &Query{Mode: mode}
	var stageSchema sql.Schema

	if boundary == nil {
		// Map-only query: the whole plan is stateless.
		pipes, schema, err := c.stateless(plan)
		if err != nil {
			return nil, err
		}
		q.Pipelines = pipes
		q.OutSchema = schema
		q.Post = func(rows []sql.Row) ([]sql.Row, error) { return rows, nil }
		c.finish(q)
		return q, nil
	}

	// Compile the stateful stage.
	var op StatefulOp
	var keyArity int
	var err error
	switch b := boundary.(type) {
	case *logical.Aggregate:
		op, keyArity, err = c.compileAggregate(b, q)
	case *logical.Distinct:
		op, err = c.compileDistinct(b, q)
	case *logical.MapGroups:
		op, err = c.compileMapGroups(b, q)
		// When the user's output schema leads with the grouping keys (by
		// name), update-mode sinks can upsert per key.
		if err == nil && len(b.KeyNames) > 0 && b.Out.Len() >= len(b.KeyNames) {
			match := true
			for i, kn := range b.KeyNames {
				if baseName(b.Out.Field(i).Name) != baseName(kn) {
					match = false
					break
				}
			}
			if match {
				keyArity = len(b.KeyNames)
			}
		}
	case *logical.Join:
		op, err = c.compileStreamStreamJoin(b, q)
	default:
		err = fmt.Errorf("incremental: unexpected boundary %T", boundary)
	}
	if err != nil {
		return nil, err
	}
	q.Stateful = op
	stageSchema = op.OutputSchema()

	// Compile the post segment: the plan above the boundary, re-rooted on a
	// marker scan that the driver feeds with the stage's output each epoch.
	marker := &logical.Scan{Name: "__stage__", Out: stageSchema}
	abovePlan := replaceNode(plan, boundary, marker)
	postIdentity := abovePlan == logical.Plan(marker)
	outSchema, err := abovePlan.Schema()
	if err != nil {
		return nil, err
	}
	q.OutSchema = outSchema
	q.Post = func(rows []sql.Row) ([]sql.Row, error) {
		resolver := func(s *logical.Scan) (physical.RowSource, error) {
			if s == marker {
				return physical.NewSliceSource(stageSchema, rows), nil
			}
			if c.resolveStatic == nil {
				return nil, fmt.Errorf("incremental: no resolver for table %s", s.Name)
			}
			return c.resolveStatic(s)
		}
		compiled, err := physical.Compile(abovePlan, resolver)
		if err != nil {
			return nil, err
		}
		return physical.Drain(compiled)
	}

	// Update-mode sinks upsert by key; that only works when the post
	// segment preserves the grouping keys as the leading output columns.
	if keyArity > 0 && (postIdentity || keysAreOutputPrefix(abovePlan, marker, stageSchema, keyArity)) {
		q.KeyArity = keyArity
	}
	c.finish(q)
	return q, nil
}

func (c *compiler) finish(q *Query) {
	for _, p := range q.Pipelines {
		if p.WatermarkEval != nil {
			q.HasWatermark = true
		}
		// Drop vector plans that cover nothing: a bare scan gains nothing
		// from the columnar detour, and a nil Vec is the engine's signal
		// to stay on the row path.
		if p.Vec != nil && len(p.Vec.Ops) == 0 && p.Vec.Agg == nil {
			p.Vec = nil
		}
	}
}

// compiler holds shared compile state.
type compiler struct {
	resolveStatic physical.ScanResolver
	watermarks    []analysis.WatermarkSpec
	opSeq         int
}

func (c *compiler) nextOpName(kind string) string {
	c.opSeq++
	return fmt.Sprintf("%s-%d", kind, c.opSeq)
}

func (c *compiler) watermarkDelay(column string) (int64, bool) {
	for _, w := range c.watermarks {
		if w.Column == column {
			return w.Delay, true
		}
	}
	return 0, false
}

// isWatermarked reports whether the named schema column carries a declared
// watermark.
func (c *compiler) isWatermarked(name string) bool {
	name = baseName(name)
	for _, w := range c.watermarks {
		if baseName(w.Column) == name {
			return true
		}
	}
	return false
}

func baseName(s string) string {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '.' {
			return s[i+1:]
		}
	}
	return s
}

// findBoundary returns the topmost stateful streaming operator, or nil.
func findBoundary(p logical.Plan) logical.Plan {
	if isStatefulBoundary(p) {
		return p
	}
	for _, ch := range p.Children() {
		if b := findBoundary(ch); b != nil {
			return b
		}
	}
	return nil
}

func isStatefulBoundary(p logical.Plan) bool {
	if !logical.IsStreaming(p) {
		return false
	}
	switch n := p.(type) {
	case *logical.Aggregate, *logical.Distinct, *logical.MapGroups:
		return true
	case *logical.Join:
		return logical.IsStreaming(n.Left) && logical.IsStreaming(n.Right)
	}
	return false
}

// checkSingleBoundary rejects plans with more than one stateful streaming
// operator — the incrementalizer (like early Spark releases) supports a
// single stateful stage per query; §5.2 calls incrementalization "an active
// area of work".
func (c *compiler) checkSingleBoundary(plan, boundary logical.Plan) error {
	count := 0
	logical.Walk(plan, func(p logical.Plan) {
		if isStatefulBoundary(p) {
			count++
		}
	})
	if count > 1 {
		return fmt.Errorf("incremental: query contains %d stateful operators; only one stateful stage per streaming query is supported (chain queries through a message-bus sink and a second query instead)", count)
	}
	return nil
}

// replaceNode rebuilds the plan with the (pointer-identical) old node
// swapped for repl.
func replaceNode(plan, old, repl logical.Plan) logical.Plan {
	if plan == old {
		return repl
	}
	children := plan.Children()
	if len(children) == 0 {
		return plan
	}
	newChildren := make([]logical.Plan, len(children))
	changed := false
	for i, ch := range children {
		newChildren[i] = replaceNode(ch, old, repl)
		if newChildren[i] != ch {
			changed = true
		}
	}
	if !changed {
		return plan
	}
	return plan.WithChildren(newChildren)
}

// keysAreOutputPrefix checks that the post plan is a projection over the
// marker whose first keyArity expressions are exactly the stage's key
// columns, so update-mode upserts stay keyed correctly.
func keysAreOutputPrefix(above logical.Plan, marker *logical.Scan, stageSchema sql.Schema, keyArity int) bool {
	proj, ok := above.(*logical.Project)
	if !ok || proj.Child != logical.Plan(marker) {
		return false
	}
	if len(proj.Exprs) < keyArity {
		return false
	}
	for i := 0; i < keyArity; i++ {
		e := proj.Exprs[i]
		if a, isAlias := e.(*sql.Alias); isAlias {
			e = a.Child
		}
		col, isCol := e.(*sql.Column)
		if !isCol || baseName(col.Name) != baseName(stageSchema.Field(i).Name) {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------- stateless

// stateless compiles the plan segment below the stateful boundary into
// per-source pipelines, returning them plus the segment's output schema.
func (c *compiler) stateless(p logical.Plan) ([]*Pipeline, sql.Schema, error) {
	switch n := p.(type) {
	case *logical.Scan:
		if !n.Streaming {
			return nil, sql.Schema{}, fmt.Errorf("incremental: static table %s outside a join is not a stream", n.Name)
		}
		return []*Pipeline{{SourceName: n.Name, WatermarkIdx: -1, Vec: &VecPlan{}}}, n.Out, nil

	case *logical.SubqueryAlias:
		pipes, schema, err := c.stateless(n.Child)
		if err != nil {
			return nil, sql.Schema{}, err
		}
		_ = schema
		out, err := n.Schema()
		return pipes, out, err

	case *logical.Filter:
		pipes, schema, err := c.stateless(n.Child)
		if err != nil {
			return nil, sql.Schema{}, err
		}
		b, err := n.Cond.Bind(schema)
		if err != nil {
			return nil, sql.Schema{}, err
		}
		pred := b.Eval
		appendStage(pipes, func(next RowEmit) (RowEmit, func()) {
			return func(r sql.Row) {
				if keep, ok := pred(r).(bool); ok && keep {
					next(r)
				}
			}, nil
		})
		var vop physical.VecOp
		if prog, ok := vec.Compile(n.Cond, schema); ok {
			vop = physical.NewVecFilter(prog)
		}
		appendVec(pipes, vop)
		return pipes, schema, nil

	case *logical.Project:
		pipes, schema, err := c.stateless(n.Child)
		if err != nil {
			return nil, sql.Schema{}, err
		}
		evals, outSchema, err := physical.BindProjection(n.Exprs, schema)
		if err != nil {
			return nil, sql.Schema{}, err
		}
		width := len(evals)
		appendStage(pipes, func(next RowEmit) (RowEmit, func()) {
			arena := physical.NewRowArena(width)
			return func(r sql.Row) {
				nr := arena.Next()
				for j, e := range evals {
					nr[j] = e(r)
				}
				next(nr)
			}, nil
		})
		var vop physical.VecOp
		if progs, ok := vec.CompileAll(n.Exprs, schema); ok {
			vop = physical.NewVecProject(progs, outSchema)
		}
		appendVec(pipes, vop)
		return pipes, outSchema, nil

	case *logical.WindowAssign:
		pipes, schema, err := c.stateless(n.Child)
		if err != nil {
			return nil, sql.Schema{}, err
		}
		t, err := n.Window.Time.Bind(schema)
		if err != nil {
			return nil, sql.Schema{}, err
		}
		timeEval := t.Eval
		w := n.Window
		tumbling := w.Size == w.Slide
		size, slide := w.Size, w.Slide
		width := schema.Len() + 1
		appendStage(pipes, func(next RowEmit) (RowEmit, func()) {
			arena := physical.NewRowArena(width)
			var cachedStart int64 = -1 << 62
			var cached sql.Value
			return func(r sql.Row) {
				ts, ok := timeEval(r).(int64)
				if !ok {
					return // NULL event times drop, as in Spark
				}
				if tumbling {
					start := ts - ((ts%slide)+slide)%slide
					if start != cachedStart {
						cachedStart = start
						cached = sql.Window{Start: start, End: start + size}
					}
					nr := arena.Next()
					copy(nr, r)
					nr[len(r)] = cached
					next(nr)
					return
				}
				for _, win := range w.Windows(ts) {
					nr := arena.Next()
					copy(nr, r)
					nr[len(r)] = win
					next(nr)
				}
			}, nil
		})
		out, err := n.Schema()
		if err != nil {
			return nil, sql.Schema{}, err
		}
		var vop physical.VecOp
		if tumbling {
			// Sliding windows explode rows and stay on the row path.
			if prog, ok := vec.Compile(n.Window.Time, schema); ok && vec.KindOf(prog.Type) == vec.KindInt64 {
				vop = physical.NewVecWindow(prog, w, out)
			}
		}
		appendVec(pipes, vop)
		return pipes, out, nil

	case *logical.WithWatermark:
		pipes, schema, err := c.stateless(n.Child)
		if err != nil {
			return nil, sql.Schema{}, err
		}
		// The watermark is tracked on raw source rows, so the column must
		// exist in each upstream source's schema (it virtually always does:
		// watermarks are declared on source timestamp columns).
		for _, pipe := range pipes {
			srcSchema, err := c.sourceSchema(p, pipe.SourceName)
			if err != nil {
				return nil, sql.Schema{}, err
			}
			idx, err := srcSchema.Resolve(n.Column)
			if err != nil {
				return nil, sql.Schema{}, fmt.Errorf("incremental: watermark column %q must be a source column: %v", n.Column, err)
			}
			i := idx
			pipe.WatermarkEval = func(r sql.Row) sql.Value { return r[i] }
			pipe.WatermarkIdx = i
			pipe.WatermarkDelay = n.Delay
		}
		return pipes, schema, nil

	case *logical.Union:
		left, ls, err := c.stateless(n.Left)
		if err != nil {
			return nil, sql.Schema{}, err
		}
		right, _, err := c.stateless(n.Right)
		if err != nil {
			return nil, sql.Schema{}, err
		}
		return append(left, right...), ls, nil

	case *logical.Join:
		leftStream := logical.IsStreaming(n.Left)
		rightStream := logical.IsStreaming(n.Right)
		if leftStream && rightStream {
			return nil, sql.Schema{}, fmt.Errorf("incremental: nested stream-stream join below another stateful operator is not supported")
		}
		if leftStream {
			return c.streamStaticJoin(n, true)
		}
		if rightStream {
			return c.streamStaticJoin(n, false)
		}
		return nil, sql.Schema{}, fmt.Errorf("incremental: join with no streaming side inside streaming segment")

	case *logical.Limit, *logical.Sort, *logical.Aggregate, *logical.Distinct, *logical.MapGroups:
		return nil, sql.Schema{}, fmt.Errorf("incremental: operator %T is not allowed below the stateful stage", p)

	default:
		return nil, sql.Schema{}, fmt.Errorf("incremental: unsupported streaming operator %T", p)
	}
}

// sourceSchema finds the scan schema for the named source below p.
func (c *compiler) sourceSchema(p logical.Plan, name string) (sql.Schema, error) {
	var found *logical.Scan
	logical.Walk(p, func(q logical.Plan) {
		if s, ok := q.(*logical.Scan); ok && s.Streaming && s.Name == name && found == nil {
			found = s
		}
	})
	if found == nil {
		return sql.Schema{}, fmt.Errorf("incremental: source %q not found", name)
	}
	return found.Out, nil
}

func appendStage(pipes []*Pipeline, f StageFactory) {
	for _, p := range pipes {
		p.Stages = append(p.Stages, f)
	}
}

// appendVec extends each pipeline's vector plan with the columnar twin of
// the stage appendStage just added. op == nil marks the stage
// non-vectorizable, which seals the plan: later vectorized stages cannot
// run before an uncovered row stage, so the columnar prefix stops growing
// there and ProcessBatchTo hands the remaining stages their rows.
func appendVec(pipes []*Pipeline, op physical.VecOp) {
	for _, p := range pipes {
		v := p.Vec
		if v == nil || v.sealed {
			continue
		}
		if op == nil || len(v.Ops)+1 != len(p.Stages) {
			v.sealed = true
			continue
		}
		v.Ops = append(v.Ops, op)
	}
}

// streamStaticJoin compiles a broadcast hash join between a stream and a
// static table into a map-side batch function. The static side is
// materialized once per engine start (its hash table is broadcast to every
// task), matching Spark's behaviour of re-reading static data per run.
func (c *compiler) streamStaticJoin(n *logical.Join, streamIsLeft bool) ([]*Pipeline, sql.Schema, error) {
	streamChild, staticChild := n.Left, n.Right
	if !streamIsLeft {
		streamChild, staticChild = n.Right, n.Left
	}
	pipes, streamSchema, err := c.stateless(streamChild)
	if err != nil {
		return nil, sql.Schema{}, err
	}
	staticSchema, err := staticChild.Schema()
	if err != nil {
		return nil, sql.Schema{}, err
	}
	if c.resolveStatic == nil {
		return nil, sql.Schema{}, fmt.Errorf("incremental: stream-static join requires a static table resolver")
	}
	staticOp, err := physical.Compile(staticChild, c.resolveStatic)
	if err != nil {
		return nil, sql.Schema{}, err
	}
	staticRows, err := physical.Drain(staticOp)
	if err != nil {
		return nil, sql.Schema{}, err
	}

	leftSchema, rightSchema := streamSchema, staticSchema
	if !streamIsLeft {
		leftSchema, rightSchema = staticSchema, streamSchema
	}
	outSchema, err := n.Schema()
	if err != nil {
		return nil, sql.Schema{}, err
	}
	if n.Cond == nil {
		return nil, sql.Schema{}, fmt.Errorf("incremental: stream-static join requires a condition")
	}
	keys := physical.ExtractEquiKeys(n.Cond, leftSchema, rightSchema)
	if len(keys.Left) == 0 {
		return nil, sql.Schema{}, fmt.Errorf("incremental: stream-static join requires at least one equality predicate")
	}
	streamKeys, staticKeys := keys.Left, keys.Right
	if !streamIsLeft {
		streamKeys, staticKeys = keys.Right, keys.Left
	}
	streamKeyEvals, err := physical.BindKeyExprs(streamKeys, streamSchema)
	if err != nil {
		return nil, sql.Schema{}, err
	}
	staticKeyEvals, err := physical.BindKeyExprs(staticKeys, staticSchema)
	if err != nil {
		return nil, sql.Schema{}, err
	}
	var residual func(sql.Row) sql.Value
	if keys.Residual != nil {
		b, err := keys.Residual.Bind(leftSchema.Concat(rightSchema))
		if err != nil {
			return nil, sql.Schema{}, err
		}
		residual = b.Eval
	}

	// Build the broadcast hash table.
	table := make(map[string][]sql.Row, len(staticRows))
	for _, r := range staticRows {
		key := make([]sql.Value, len(staticKeyEvals))
		null := false
		for i, e := range staticKeyEvals {
			key[i] = e(r)
			if key[i] == nil {
				null = true
			}
		}
		if null {
			continue
		}
		ks := codec.KeyString(key)
		table[ks] = append(table[ks], r)
	}

	outer := n.Type == logical.LeftOuterJoin && streamIsLeft ||
		n.Type == logical.RightOuterJoin && !streamIsLeft
	semi := n.Type == logical.LeftSemiJoin
	anti := n.Type == logical.LeftAntiJoin
	staticArity := staticSchema.Len()
	streamArity := streamSchema.Len()
	joinedWidth := streamArity + staticArity
	// The broadcast hash table is built once at compile time and only read
	// by tasks; all per-task probe state lives inside the stage factory.
	appendStage(pipes, func(next RowEmit) (RowEmit, func()) {
		probeKey := make([]sql.Value, len(streamKeyEvals))
		probeEnc := codec.NewEncoder(64)
		arena := physical.NewRowArena(joinedWidth)
		return func(sr sql.Row) {
			null := false
			for i, e := range streamKeyEvals {
				probeKey[i] = e(sr)
				if probeKey[i] == nil {
					null = true
				}
			}
			var matches []sql.Row
			if !null {
				// The string([]byte) map index does not allocate.
				probeEnc.Reset()
				for _, v := range probeKey {
					probeEnc.PutValue(v)
				}
				matches = table[string(probeEnc.Bytes())]
			}
			matched := false
			for _, st := range matches {
				joined := arena.Next()
				if streamIsLeft {
					copy(joined, sr)
					copy(joined[streamArity:], st)
				} else {
					copy(joined, st)
					copy(joined[staticArity:], sr)
				}
				if residual != nil {
					if b, ok := residual(joined).(bool); !ok || !b {
						continue
					}
				}
				matched = true
				if semi || anti {
					break
				}
				next(joined)
			}
			switch {
			case semi && matched, anti && !matched:
				next(sr)
			case outer && !matched:
				joined := arena.Next()
				for i := range joined {
					joined[i] = nil
				}
				if streamIsLeft {
					copy(joined, sr)
				} else {
					copy(joined[staticArity:], sr)
				}
				next(joined)
			}
		}, nil
	})
	appendVec(pipes, nil)
	if semi || anti {
		return pipes, streamSchema, nil
	}
	return pipes, outSchema, nil
}

// ---------------------------------------------------------------- stages

func (c *compiler) compileAggregate(a *logical.Aggregate, q *Query) (StatefulOp, int, error) {
	pipes, childSchema, err := c.stateless(a.Child)
	if err != nil {
		return nil, 0, err
	}
	keyEvals, aggs, outSchema, err := physical.BindAggregate(a, childSchema)
	if err != nil {
		return nil, 0, err
	}
	op := &StatefulAggregate{
		OpName:      c.nextOpName("agg"),
		NumKeys:     len(a.Keys),
		Aggs:        aggs,
		EventKeyIdx: -1,
		Out:         outSchema,
	}
	// Locate the event-time key: a window-typed key, or a key over a
	// watermarked column.
	for i, k := range a.Keys {
		b, err := k.Bind(childSchema)
		if err != nil {
			return nil, 0, err
		}
		if b.Type == sql.TypeWindow {
			op.EventKeyIdx = i
			break
		}
		if name, ok := underlyingColumnName(k); ok && c.isWatermarked(name) {
			op.EventKeyIdx = i
		}
	}
	// Map-side partial aggregation is a blocking terminal stage: rows fold
	// into per-task buffers and the flush emits one shuffle row per group.
	appendStage(pipes, func(next RowEmit) (RowEmit, func()) {
		h := newPartialAgg(keyEvals, aggs)
		return h.update, func() {
			for _, row := range h.shuffleRows() {
				next(row)
			}
		}
	})
	// The aggregation itself vectorizes when its keys and inputs compile
	// to kernels AND the vector plan still covers every earlier stage —
	// otherwise rows would reach the columnar aggregator out of order with
	// the row stages.
	vecAgg := compileVecAgg(a, aggs, childSchema)
	for _, p := range pipes {
		v := p.Vec
		if v == nil || v.sealed || len(v.Ops)+1 != len(p.Stages) {
			continue
		}
		if vecAgg == nil {
			v.sealed = true
			continue
		}
		v.Agg = vecAgg
		v.sealed = true
	}
	routeByLeadingColumns(pipes, len(a.Keys))
	q.Pipelines = pipes
	return op, len(a.Keys), nil
}

func (c *compiler) compileDistinct(d *logical.Distinct, q *Query) (StatefulOp, error) {
	pipes, schema, err := c.stateless(d.Child)
	if err != nil {
		return nil, err
	}
	keyIdxs, err := physical.ResolveColumns(d.Cols, schema)
	if err != nil {
		return nil, err
	}
	op := &StreamingDedup{OpName: c.nextOpName("dedup"), KeyIdxs: keyIdxs, EventIdx: -1, Out: schema}
	for i, f := range schema.Fields {
		if c.isWatermarked(f.Name) {
			op.EventIdx = i
		}
	}
	// Route by the duplicate key so every occurrence of a key lands on the
	// same state partition.
	if keyIdxs == nil {
		routeByLeadingColumns(pipes, schema.Len())
	} else {
		evals := make([]func(sql.Row) sql.Value, len(keyIdxs))
		for i, idx := range keyIdxs {
			idx := idx
			evals[i] = func(r sql.Row) sql.Value { return r[idx] }
		}
		for _, p := range pipes {
			p.KeyEvals = evals
			p.KeyIdxs = keyIdxs
		}
	}
	q.Pipelines = pipes
	return op, nil
}

func (c *compiler) compileMapGroups(m *logical.MapGroups, q *Query) (StatefulOp, error) {
	pipes, schema, err := c.stateless(m.Child)
	if err != nil {
		return nil, err
	}
	keyEvals, err := physical.BindKeyExprs(m.Keys, schema)
	if err != nil {
		return nil, err
	}
	nkeys := len(m.Keys)
	width := nkeys + schema.Len()
	appendStage(pipes, func(next RowEmit) (RowEmit, func()) {
		arena := physical.NewRowArena(width)
		return func(r sql.Row) {
			sr := arena.Next()
			for i, e := range keyEvals {
				sr[i] = e(r)
			}
			copy(sr[nkeys:], r)
			next(sr)
		}, nil
	})
	appendVec(pipes, nil)
	routeByLeadingColumns(pipes, nkeys)
	q.Pipelines = pipes
	return &FlatMapGroupsWithState{
		OpName:  c.nextOpName("mgws"),
		NumKeys: nkeys,
		InArity: schema.Len(),
		Func:    m.Func,
		Timeout: m.Timeout,
		Out:     m.Out,
	}, nil
}

func (c *compiler) compileStreamStreamJoin(j *logical.Join, q *Query) (StatefulOp, error) {
	leftPipes, leftSchema, err := c.stateless(j.Left)
	if err != nil {
		return nil, err
	}
	rightPipes, rightSchema, err := c.stateless(j.Right)
	if err != nil {
		return nil, err
	}
	if j.Cond == nil {
		return nil, fmt.Errorf("incremental: stream-stream join requires a condition")
	}
	keys := physical.ExtractEquiKeys(j.Cond, leftSchema, rightSchema)
	if len(keys.Left) == 0 {
		return nil, fmt.Errorf("incremental: stream-stream join requires at least one equality predicate")
	}
	outSchema, err := j.Schema()
	if err != nil {
		return nil, err
	}
	op := &StreamStreamJoin{
		OpName:       c.nextOpName("join"),
		Type:         j.Type,
		LeftArity:    leftSchema.Len(),
		RightArity:   rightSchema.Len(),
		LeftEventIdx: -1, RightEventIdx: -1,
		Out: outSchema,
	}
	if keys.Residual != nil {
		b, err := keys.Residual.Bind(leftSchema.Concat(rightSchema))
		if err != nil {
			return nil, err
		}
		op.Residual = b.Eval
	}
	for i, f := range leftSchema.Fields {
		if c.isWatermarked(f.Name) {
			op.LeftEventIdx = i
		}
	}
	for i, f := range rightSchema.Fields {
		if c.isWatermarked(f.Name) {
			op.RightEventIdx = i
		}
	}

	nkeys := len(keys.Left)
	addShuffleFn := func(pipes []*Pipeline, keyExprs []sql.Expr, schema sql.Schema, eventIdx int) error {
		keyEvals, err := physical.BindKeyExprs(keyExprs, schema)
		if err != nil {
			return err
		}
		width := nkeys + 1 + schema.Len()
		appendStage(pipes, func(next RowEmit) (RowEmit, func()) {
			arena := physical.NewRowArena(width)
			return func(r sql.Row) {
				sr := arena.Next()
				for k, e := range keyEvals {
					sr[k] = e(r)
				}
				ts := int64(-1)
				if eventIdx >= 0 {
					if v, ok := r[eventIdx].(int64); ok {
						ts = v
					}
				}
				sr[nkeys] = ts
				copy(sr[nkeys+1:], r)
				next(sr)
			}, nil
		})
		appendVec(pipes, nil)
		routeByLeadingColumns(pipes, nkeys)
		return nil
	}
	if err := addShuffleFn(leftPipes, keys.Left, leftSchema, op.LeftEventIdx); err != nil {
		return nil, err
	}
	if err := addShuffleFn(rightPipes, keys.Right, rightSchema, op.RightEventIdx); err != nil {
		return nil, err
	}
	for _, p := range rightPipes {
		p.Side = 1
	}
	q.Pipelines = append(leftPipes, rightPipes...)
	return op, nil
}

// routeByLeadingColumns sets pipelines to route shuffle rows by their first
// n columns.
func routeByLeadingColumns(pipes []*Pipeline, n int) {
	evals := make([]func(sql.Row) sql.Value, n)
	idxs := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		evals[i] = func(r sql.Row) sql.Value { return r[i] }
		idxs[i] = i
	}
	for _, p := range pipes {
		p.KeyEvals = evals
		p.KeyIdxs = idxs
	}
}

// compileVecAgg lowers the map-side partial aggregation's grouping keys
// and aggregate inputs to kernel programs; nil when any expression needs
// the row path.
func compileVecAgg(a *logical.Aggregate, aggs []sql.BoundAgg, schema sql.Schema) *VecAggPlan {
	keyProgs, ok := vec.CompileAll(a.Keys, schema)
	if !ok {
		return nil
	}
	inProgs := make([]*vec.Program, len(a.Aggs))
	for i, na := range a.Aggs {
		if na.Agg.Child == nil {
			continue // count(*): no input, Update(nil) per row
		}
		prog, ok := vec.Compile(na.Agg.Child, schema)
		if !ok {
			return nil
		}
		inProgs[i] = prog
	}
	return &VecAggPlan{KeyProgs: keyProgs, InputProgs: inProgs, Aggs: aggs}
}

func underlyingColumnName(e sql.Expr) (string, bool) {
	for {
		switch x := e.(type) {
		case *sql.Alias:
			e = x.Child
		case *sql.Column:
			return baseName(x.Name), true
		default:
			return "", false
		}
	}
}
