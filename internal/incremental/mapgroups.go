package incremental

import (
	"encoding/binary"
	"fmt"

	"structream/internal/sql"
	"structream/internal/sql/codec"
	"structream/internal/sql/logical"
	"structream/internal/sql/physical"
	"structream/internal/state"
)

// FlatMapGroupsWithState is the streaming form of the paper's stateful
// operators (§4.3.2): a user-defined update function invoked per key with
// the new values for that key, a durable state handle, and timeout
// callbacks in processing or event time. mapGroupsWithState is the
// one-row-per-call special case of the same operator.
type FlatMapGroupsWithState struct {
	OpName string
	// NumKeys is the grouping-key arity; shuffle rows are
	// [keys..., inputRow...].
	NumKeys int
	// InArity is the width of the input rows handed to Func.
	InArity int
	// Func is the user update function.
	Func logical.UpdateFunc
	// Timeout selects the timeout semantics.
	Timeout logical.TimeoutKind
	Out     sql.Schema
}

// Name implements StatefulOp.
func (m *FlatMapGroupsWithState) Name() string { return m.OpName }

// OutputSchema implements StatefulOp.
func (m *FlatMapGroupsWithState) OutputSchema() sql.Schema { return m.Out }

// state value encoding: uvarint row length + encoded state row, varint
// timeoutAt (0 = unarmed), byte eventTimed.
func encodeGroupState(stateRow sql.Row, timeoutAt int64, eventTimed bool) []byte {
	rb := codec.EncodeRow(stateRow)
	out := binary.AppendUvarint(nil, uint64(len(rb)))
	out = append(out, rb...)
	out = binary.AppendVarint(out, timeoutAt)
	if eventTimed {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	return out
}

func decodeGroupState(data []byte) (sql.Row, int64, bool, error) {
	n, w := binary.Uvarint(data)
	if w <= 0 || w+int(n) > len(data) {
		return nil, 0, false, fmt.Errorf("incremental: corrupt group state")
	}
	row, err := codec.DecodeRow(data[w : w+int(n)])
	if err != nil {
		return nil, 0, false, err
	}
	pos := w + int(n)
	timeoutAt, w2 := binary.Varint(data[pos:])
	if w2 <= 0 || pos+w2 >= len(data) {
		return nil, 0, false, fmt.Errorf("incremental: corrupt group state tail")
	}
	pos += w2
	eventTimed := data[pos] == 1
	return row, timeoutAt, eventTimed, nil
}

// Process implements StatefulOp.
func (m *FlatMapGroupsWithState) Process(ctx *EpochContext, store *state.Store, inputs [][]sql.Row) ([]sql.Row, error) {
	// Group this epoch's rows by key, preserving arrival order.
	type group struct {
		key  sql.Row
		rows []sql.Row
	}
	groups := map[string]*group{}
	var order []string
	for _, sr := range inputs[0] {
		if len(sr) != m.NumKeys+m.InArity {
			return nil, fmt.Errorf("incremental: malformed shuffle row for %s", m.OpName)
		}
		key := append(sql.Row(nil), sr[:m.NumKeys]...)
		ks := codec.KeyString(key)
		g, ok := groups[ks]
		if !ok {
			g = &group{key: key}
			groups[ks] = g
			order = append(order, ks)
		}
		g.rows = append(g.rows, append(sql.Row(nil), sr[m.NumKeys:]...))
	}

	var out []sql.Row
	invoke := func(keyBytes []byte, key sql.Row, rows []sql.Row, timedOut bool) error {
		gs := &physical.GroupStateImpl{
			WM:       ctx.Watermark,
			Now:      ctx.ProcTime,
			TimedOut: timedOut,
		}
		if data, ok := store.Get(keyBytes); ok {
			stateRow, _, _, err := decodeGroupState(data)
			if err != nil {
				return err
			}
			gs.StateRow = stateRow
			gs.Present = true
		}
		out = append(out, m.Func(key, rows, gs)...)
		switch {
		case gs.Removed:
			store.Remove(keyBytes)
		case gs.Dirty:
			store.Put(keyBytes, encodeGroupState(gs.StateRow, gs.TimeoutAt, gs.EventTimed))
		case timedOut:
			// A fired timeout that neither updated nor removed state still
			// clears its arming, as in Spark.
			store.Put(keyBytes, encodeGroupState(gs.StateRow, 0, gs.EventTimed))
		}
		return nil
	}

	updated := map[string]bool{}
	for _, ks := range order {
		g := groups[ks]
		keyBytes := codec.EncodeValues(g.key)
		updated[string(keyBytes)] = true
		if err := invoke(keyBytes, g.key, g.rows, false); err != nil {
			return nil, err
		}
	}

	// Timeout pass: fire callbacks for keys not seen this epoch whose
	// timeout has expired (processing-time against the epoch's clock,
	// event-time against the watermark).
	if m.Timeout != logical.NoTimeout {
		type fired struct {
			keyBytes []byte
			key      sql.Row
		}
		var expired []fired
		var iterErr error
		store.Iterate(func(k, v []byte) bool {
			if updated[string(k)] {
				return true
			}
			_, timeoutAt, eventTimed, err := decodeGroupState(v)
			if err != nil {
				iterErr = err
				return false
			}
			if timeoutAt == 0 {
				return true
			}
			due := false
			if eventTimed || m.Timeout == logical.EventTimeTimeout {
				due = ctx.Watermark > 0 && timeoutAt < ctx.Watermark
			} else {
				due = timeoutAt <= ctx.ProcTime
			}
			if due {
				key, err := codec.DecodeValues(k)
				if err != nil {
					iterErr = err
					return false
				}
				expired = append(expired, fired{keyBytes: append([]byte(nil), k...), key: key})
			}
			return true
		})
		if iterErr != nil {
			return nil, iterErr
		}
		for _, f := range expired {
			if err := invoke(f.keyBytes, f.key, nil, true); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}
