package incremental

import (
	"encoding/binary"
	"fmt"

	"structream/internal/sql"
	"structream/internal/sql/codec"
	"structream/internal/sql/logical"
	"structream/internal/state"
)

// StreamStreamJoin is the symmetric hash join between two streams (§5.2):
// each side's rows are buffered in the state store keyed by the equi-join
// key; new rows probe the opposite side's buffer. With watermarks, buffered
// rows whose event time has passed are evicted — and for outer joins, an
// evicted unmatched row on the preserved side is emitted null-padded at
// that point, which is why the analyzer requires the join condition of an
// outer stream-stream join to involve a watermarked column.
type StreamStreamJoin struct {
	OpName string
	Type   logical.JoinType // Inner, LeftOuter or RightOuter
	// LeftArity/RightArity are the row widths of each side.
	LeftArity, RightArity int
	// Residual is the non-equi part of the condition, bound over the
	// concatenated (left ++ right) row; nil when purely equi.
	Residual func(sql.Row) sql.Value
	// LeftEventIdx/RightEventIdx locate each side's watermarked event-time
	// column (-1 = none; that side's state is never evicted).
	LeftEventIdx, RightEventIdx int
	Out                         sql.Schema
}

// Name implements StatefulOp.
func (j *StreamStreamJoin) Name() string { return j.OpName }

// OutputSchema implements StatefulOp.
func (j *StreamStreamJoin) OutputSchema() sql.Schema { return j.Out }

// joinEntry is one buffered row on one side.
type joinEntry struct {
	row     sql.Row
	matched bool
	ts      int64 // event time, -1 unknown
}

func encodeEntries(entries []joinEntry) []byte {
	out := binary.AppendUvarint(nil, uint64(len(entries)))
	for _, e := range entries {
		rb := codec.EncodeRow(e.row)
		out = binary.AppendUvarint(out, uint64(len(rb)))
		out = append(out, rb...)
		if e.matched {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
		out = binary.AppendVarint(out, e.ts)
	}
	return out
}

func decodeEntries(data []byte) ([]joinEntry, error) {
	n, w := binary.Uvarint(data)
	if w <= 0 {
		return nil, fmt.Errorf("incremental: corrupt join state")
	}
	pos := w
	out := make([]joinEntry, 0, n)
	for i := uint64(0); i < n; i++ {
		rl, w := binary.Uvarint(data[pos:])
		if w <= 0 || pos+w+int(rl)+1 > len(data) {
			return nil, fmt.Errorf("incremental: corrupt join entry")
		}
		pos += w
		row, err := codec.DecodeRow(data[pos : pos+int(rl)])
		if err != nil {
			return nil, err
		}
		pos += int(rl)
		matched := data[pos] == 1
		pos++
		ts, w := binary.Varint(data[pos:])
		if w <= 0 {
			return nil, fmt.Errorf("incremental: corrupt join entry ts")
		}
		pos += w
		out = append(out, joinEntry{row: row, matched: matched, ts: ts})
	}
	return out, nil
}

const (
	sideLeft  byte = 'L'
	sideRight byte = 'R'
)

// stateKey prefixes the equi-key bytes with the side marker. The equi-key
// values are already part of the shuffle routing, so rows of both sides
// with equal keys land in the same partition's store.
func stateKey(side byte, keyBytes []byte) []byte {
	return append([]byte{side}, keyBytes...)
}

// shuffle rows for the join are [equiKeys..., eventTs, originalRow...]:
// the compiler prepends the routing key and event timestamp so Process can
// slice them off without re-evaluating expressions.

// JoinShuffleRow builds the shuffle row for one side.
func JoinShuffleRow(key []sql.Value, ts int64, row sql.Row) sql.Row {
	out := make(sql.Row, 0, len(key)+1+len(row))
	out = append(out, key...)
	out = append(out, ts)
	out = append(out, row...)
	return out
}

// Process implements StatefulOp. inputs[0] is the left side's shuffle rows,
// inputs[1] the right side's; NumShuffleKeys leading columns route.
func (j *StreamStreamJoin) Process(ctx *EpochContext, store *state.Store, inputs [][]sql.Row) ([]sql.Row, error) {
	if len(inputs) < 2 {
		return nil, fmt.Errorf("incremental: stream-stream join needs two inputs")
	}
	var out []sql.Row

	emit := func(left, right sql.Row) {
		row := make(sql.Row, j.LeftArity+j.RightArity)
		if left != nil {
			copy(row, left)
		}
		if right != nil {
			copy(row[j.LeftArity:], right)
		}
		if j.Residual != nil && left != nil && right != nil {
			if b, ok := j.Residual(row).(bool); !ok || !b {
				return
			}
		}
		out = append(out, row)
	}
	// residualOK checks the residual without emitting (for match marking).
	residualOK := func(left, right sql.Row) bool {
		if j.Residual == nil {
			return true
		}
		row := make(sql.Row, j.LeftArity+j.RightArity)
		copy(row, left)
		copy(row[j.LeftArity:], right)
		b, ok := j.Residual(row).(bool)
		return ok && b
	}

	// numKeys derives from the shuffle row layout: keys + ts + payload.
	process := func(rows []sql.Row, ownSide, otherSide byte, ownArity int) error {
		for _, sr := range rows {
			nkeys := len(sr) - 1 - ownArity
			if nkeys < 0 {
				return fmt.Errorf("incremental: malformed join shuffle row")
			}
			key := sr[:nkeys]
			ts, _ := sr[nkeys].(int64)
			row := append(sql.Row(nil), sr[nkeys+1:]...)
			keyBytes := codec.EncodeValues(key)

			// Skip NULL keys: they can never match, and buffering them
			// would leak state.
			nullKey := false
			for _, k := range key {
				if k == nil {
					nullKey = true
				}
			}

			matched := false
			if !nullKey {
				if data, ok := store.Get(stateKey(otherSide, keyBytes)); ok {
					entries, err := decodeEntries(data)
					if err != nil {
						return err
					}
					changed := false
					for i := range entries {
						var l, r sql.Row
						if ownSide == sideLeft {
							l, r = row, entries[i].row
						} else {
							l, r = entries[i].row, row
						}
						if residualOK(l, r) {
							emit(l, r)
							matched = true
							if !entries[i].matched {
								entries[i].matched = true
								changed = true
							}
						}
					}
					if changed {
						store.Put(stateKey(otherSide, keyBytes), encodeEntries(entries))
					}
				}
			}

			// Buffer the row on its own side for future matches.
			if !nullKey {
				var entries []joinEntry
				if data, ok := store.Get(stateKey(ownSide, keyBytes)); ok {
					var err error
					entries, err = decodeEntries(data)
					if err != nil {
						return err
					}
				}
				entries = append(entries, joinEntry{row: row, matched: matched, ts: ts})
				store.Put(stateKey(ownSide, keyBytes), encodeEntries(entries))
			} else if ownSide == sideLeft && j.Type == logical.LeftOuterJoin {
				emit(row, nil) // NULL-keyed preserved row can never match
			} else if ownSide == sideRight && j.Type == logical.RightOuterJoin {
				emit(nil, row)
			}
		}
		return nil
	}

	// Left rows first (probing committed right state), then right rows
	// (probing left state including this epoch's additions): every
	// cross-epoch pair matches exactly once.
	if err := process(inputs[0], sideLeft, sideRight, j.LeftArity); err != nil {
		return nil, err
	}
	if err := process(inputs[1], sideRight, sideLeft, j.RightArity); err != nil {
		return nil, err
	}

	// Watermark eviction: drop expired entries; on the preserved side of an
	// outer join, emit unmatched expired rows null-padded.
	if ctx.Watermark > 0 {
		type rewrite struct {
			key  []byte
			data []byte // nil = remove
		}
		var changes []rewrite
		var iterErr error
		store.Iterate(func(k, v []byte) bool {
			if len(k) == 0 {
				return true
			}
			side := k[0]
			eventIdx := j.LeftEventIdx
			if side == sideRight {
				eventIdx = j.RightEventIdx
			}
			if eventIdx < 0 {
				return true
			}
			entries, err := decodeEntries(v)
			if err != nil {
				iterErr = err
				return false
			}
			kept := entries[:0:0]
			for _, e := range entries {
				if e.ts >= 0 && e.ts < ctx.Watermark {
					if !e.matched {
						if side == sideLeft && j.Type == logical.LeftOuterJoin {
							emit(e.row, nil)
						} else if side == sideRight && j.Type == logical.RightOuterJoin {
							emit(nil, e.row)
						}
					}
					continue
				}
				kept = append(kept, e)
			}
			if len(kept) != len(entries) {
				key := append([]byte(nil), k...)
				if len(kept) == 0 {
					changes = append(changes, rewrite{key: key})
				} else {
					changes = append(changes, rewrite{key: key, data: encodeEntries(kept)})
				}
			}
			return true
		})
		if iterErr != nil {
			return nil, iterErr
		}
		for _, c := range changes {
			if c.data == nil {
				store.Remove(c.key)
			} else {
				store.Put(c.key, c.data)
			}
		}
	}
	return out, nil
}
