package incremental

import (
	"encoding/binary"
	"fmt"

	"structream/internal/sql"
	"structream/internal/sql/codec"
	"structream/internal/sql/logical"
	"structream/internal/sql/vec"
	"structream/internal/state"
)

// StatefulAggregate is the streaming aggregation operator (§5.2: "an
// aggregation in the user query might be mapped to a StatefulAggregate
// operator that tracks open groups inside the state store"). Map tasks
// partially aggregate and ship serialized buffers; this reduce-side
// operator merges them into long-lived per-key buffers and emits according
// to the output mode:
//
//   - Complete: every group, every epoch.
//   - Update:   only groups whose buffers changed this epoch.
//   - Append:   only groups finalized by the watermark, exactly once, after
//     which their state is dropped.
//
// With a watermark, expired groups are evicted in every mode — this is how
// "the system forgets state for old windows after a timeout" (§4.1).
type StatefulAggregate struct {
	// OpName is the state-store operator id.
	OpName string
	// NumKeys is the grouping-key arity; shuffle rows are
	// [keys..., buf1, buf2, ...].
	NumKeys int
	// Aggs are the bound aggregates (buffer factories).
	Aggs []sql.BoundAgg
	// EventKeyIdx is the key column carrying event time (a window or
	// watermarked timestamp); -1 when the aggregation has no event-time
	// key.
	EventKeyIdx int
	// Out is the operator's output schema: keys then aggregate results.
	Out sql.Schema
}

// Name implements StatefulOp.
func (a *StatefulAggregate) Name() string { return a.OpName }

// OutputSchema implements StatefulOp.
func (a *StatefulAggregate) OutputSchema() sql.Schema { return a.Out }

// partialAgg is a small map-side hash aggregator that renders its groups
// as shuffle rows. The compiler installs it as the blocking terminal stage
// of each map pipeline.
type partialAgg struct {
	keyEvals []func(sql.Row) sql.Value
	aggs     []sql.BoundAgg
	groups   map[string]*partialGroup
	order    []string
	scratch  []sql.Value
	enc      *codec.Encoder
}

type partialGroup struct {
	key  []sql.Value
	bufs []sql.AggBuffer
}

func newPartialAgg(keyEvals []func(sql.Row) sql.Value, aggs []sql.BoundAgg) *partialAgg {
	return &partialAgg{
		keyEvals: keyEvals,
		aggs:     aggs,
		groups:   map[string]*partialGroup{},
		scratch:  make([]sql.Value, len(keyEvals)),
		enc:      codec.NewEncoder(64),
	}
}

// update is the map-side per-record hot path: the key is encoded into a
// reused buffer and looked up without allocating; only first-seen groups
// materialize their key.
func (p *partialAgg) update(r sql.Row) {
	for i, e := range p.keyEvals {
		p.scratch[i] = e(r)
	}
	p.enc.Reset()
	for _, v := range p.scratch {
		p.enc.PutValue(v)
	}
	g := p.lookup(func() []sql.Value { return append([]sql.Value(nil), p.scratch...) })
	for i, a := range p.aggs {
		if a.Input == nil {
			g.bufs[i].Update(nil)
			continue
		}
		if v := a.Input(r); v != nil {
			g.bufs[i].Update(v)
		}
	}
}

// lookup resolves the group for the key currently sitting in p.enc. The
// encoded bytes are converted to a string exactly once, on the first-seen
// path, and that one string backs both the map entry and the emission
// order; the hit-path map index uses the allocation-elided string([]byte)
// conversion.
func (p *partialAgg) lookup(boxKey func() []sql.Value) *partialGroup {
	kb := p.enc.Bytes()
	g, ok := p.groups[string(kb)]
	if !ok {
		g = &partialGroup{key: boxKey(), bufs: make([]sql.AggBuffer, len(p.aggs))}
		for i, a := range p.aggs {
			g.bufs[i] = a.NewBuffer()
		}
		ks := string(kb)
		p.groups[ks] = g
		p.order = append(p.order, ks)
	}
	return g
}

// updateBatch folds the live rows of a column batch into the hash table.
// Grouping keys hash/encode straight from the key vectors — no per-row
// boxing on the hit path; only first-seen groups box their key values.
// Aggregate inputs skip NULL lanes exactly like update's nil check.
func (p *partialAgg) updateBatch(b *vec.Batch, plan *VecAggPlan) {
	keys := make([]*vec.Vector, len(plan.KeyProgs))
	for i, prog := range plan.KeyProgs {
		keys[i] = prog.Run(b)
	}
	ins := make([]*vec.Vector, len(plan.InputProgs))
	for i, prog := range plan.InputProgs {
		if prog != nil {
			ins[i] = prog.Run(b)
		}
	}
	updateLane := func(i int) {
		p.enc.Reset()
		codec.VectorKeyString(p.enc, keys, i)
		g := p.lookup(func() []sql.Value {
			key := make([]sql.Value, len(keys))
			for j, kv := range keys {
				key[j] = kv.Get(i)
			}
			return key
		})
		for k := range p.aggs {
			in := ins[k]
			if in == nil {
				g.bufs[k].Update(nil)
				continue
			}
			if !in.IsNull(i) {
				g.bufs[k].Update(in.Get(i))
			}
		}
	}
	if b.Sel != nil {
		for _, i := range b.Sel {
			updateLane(int(i))
		}
		return
	}
	for i := 0; i < b.Len; i++ {
		updateLane(i)
	}
}

func (p *partialAgg) shuffleRows() []sql.Row {
	out := make([]sql.Row, 0, len(p.order))
	for _, ks := range p.order {
		g := p.groups[ks]
		row := make(sql.Row, 0, len(g.key)+len(g.bufs))
		row = append(row, g.key...)
		for _, b := range g.bufs {
			row = append(row, codec.EncodeValues(b.Serialize()))
		}
		out = append(out, row)
	}
	return out
}

// encodeState packs all aggregate buffers into one state-store value.
func encodeAggState(bufs []sql.AggBuffer) []byte {
	var out []byte
	for _, b := range bufs {
		enc := codec.EncodeValues(b.Serialize())
		out = binary.AppendUvarint(out, uint64(len(enc)))
		out = append(out, enc...)
	}
	return out
}

func (a *StatefulAggregate) decodeAggState(data []byte) ([]sql.AggBuffer, error) {
	bufs := make([]sql.AggBuffer, len(a.Aggs))
	pos := 0
	for i, agg := range a.Aggs {
		n, w := binary.Uvarint(data[pos:])
		if w <= 0 || pos+w+int(n) > len(data) {
			return nil, fmt.Errorf("incremental: corrupt aggregate state for %s", a.OpName)
		}
		pos += w
		vals, err := codec.DecodeValues(data[pos : pos+int(n)])
		if err != nil {
			return nil, fmt.Errorf("incremental: %v", err)
		}
		pos += int(n)
		buf := agg.NewBuffer()
		if err := buf.Deserialize(vals); err != nil {
			return nil, err
		}
		bufs[i] = buf
	}
	return bufs, nil
}

// changedGroup carries one updated group from the merge loop to emission:
// the boxed key values and the latest merged buffers, so Update-mode
// emission reuses them instead of re-reading and re-decoding stored state.
type changedGroup struct {
	key  []sql.Value
	bufs []sql.AggBuffer
}

// Process implements StatefulOp.
func (a *StatefulAggregate) Process(ctx *EpochContext, store *state.Store, inputs [][]sql.Row) ([]sql.Row, error) {
	changed := make(map[string]*changedGroup, len(inputs[0]))
	changedOrder := make([]string, 0, len(inputs[0]))
	for _, r := range inputs[0] {
		keyVals := r[:a.NumKeys:a.NumKeys]
		// Drop data later than the watermark allows: its group was (or will
		// be) finalized and evicted, and merging it would resurrect the
		// group and violate append-mode's emit-once guarantee.
		if a.EventKeyIdx >= 0 && ctx.Watermark > 0 && groupExpired(keyVals[a.EventKeyIdx], ctx.Watermark) {
			continue
		}
		keyBytes := codec.EncodeValues(keyVals)
		// Merge the incoming partial buffers into stored state.
		incoming := make([]sql.AggBuffer, len(a.Aggs))
		for i := range a.Aggs {
			enc, ok := r[a.NumKeys+i].([]byte)
			if !ok {
				return nil, fmt.Errorf("incremental: bad shuffle row for %s", a.OpName)
			}
			vals, err := codec.DecodeValues(enc)
			if err != nil {
				return nil, err
			}
			buf := a.Aggs[i].NewBuffer()
			if err := buf.Deserialize(vals); err != nil {
				return nil, err
			}
			incoming[i] = buf
		}
		var merged []sql.AggBuffer
		if existing, ok := store.Get(keyBytes); ok {
			bufs, err := a.decodeAggState(existing)
			if err != nil {
				return nil, err
			}
			for i := range bufs {
				bufs[i].Merge(incoming[i])
			}
			merged = bufs
		} else {
			merged = incoming
		}
		store.Put(keyBytes, encodeAggState(merged))
		if g, seen := changed[string(keyBytes)]; seen {
			g.bufs = merged
		} else {
			ks := string(keyBytes)
			changed[ks] = &changedGroup{key: append([]sql.Value(nil), keyVals...), bufs: merged}
			changedOrder = append(changedOrder, ks)
		}
	}

	var out []sql.Row
	emitRow := func(key []sql.Value, bufs []sql.AggBuffer) {
		row := make(sql.Row, 0, len(key)+len(bufs))
		row = append(row, key...)
		for _, b := range bufs {
			row = append(row, b.Result())
		}
		out = append(out, row)
	}

	switch ctx.Mode {
	case logical.Complete:
		var iterErr error
		store.Iterate(func(k, v []byte) bool {
			key, err := codec.DecodeValues(k)
			if err != nil {
				iterErr = err
				return false
			}
			bufs, err := a.decodeAggState(v)
			if err != nil {
				iterErr = err
				return false
			}
			emitRow(key, bufs)
			return true
		})
		if iterErr != nil {
			return nil, iterErr
		}
	case logical.Update:
		// The merge loop kept each group's final buffers; nothing in this
		// epoch can have removed a changed key (eviction runs below), so
		// emission needs no second store read.
		for _, ks := range changedOrder {
			g := changed[ks]
			emitRow(g.key, g.bufs)
		}
	case logical.Append:
		// Emission happens only via watermark finalization below.
	}

	// Watermark pass: finalize (append) and evict expired groups.
	if ctx.Watermark > 0 && a.EventKeyIdx >= 0 {
		type expired struct {
			key []sql.Value
			raw []byte
		}
		var dead []expired
		var iterErr error
		store.Iterate(func(k, v []byte) bool {
			key, err := codec.DecodeValues(k)
			if err != nil {
				iterErr = err
				return false
			}
			if groupExpired(key[a.EventKeyIdx], ctx.Watermark) {
				dead = append(dead, expired{key: key, raw: append([]byte(nil), k...)})
				if ctx.Mode == logical.Append {
					bufs, err := a.decodeAggState(v)
					if err != nil {
						iterErr = err
						return false
					}
					emitRow(key, bufs)
				}
			}
			return true
		})
		if iterErr != nil {
			return nil, iterErr
		}
		for _, d := range dead {
			store.Remove(d.raw)
		}
	}
	return out, nil
}

// groupExpired reports whether an event-time key value is entirely below
// the watermark: a window is expired once its End has passed; a raw
// timestamp once the timestamp itself has.
func groupExpired(v sql.Value, watermark int64) bool {
	switch x := v.(type) {
	case sql.Window:
		return x.End <= watermark
	case int64:
		return x < watermark
	default:
		return false
	}
}

// ---------------------------------------------------------------- dedup

// StreamingDedup implements streaming SELECT DISTINCT and
// dropDuplicates(cols): the first row per key is emitted, later duplicates
// are dropped, and when an event-time column is watermarked, keys older
// than the watermark are forgotten (bounding state, §4.3.1).
type StreamingDedup struct {
	OpName string
	// KeyIdxs selects the duplicate-key columns; nil keys on the whole row.
	KeyIdxs []int
	// EventIdx is the watermarked event-time column within the row; -1
	// disables eviction (state grows without bound, as in Spark when
	// deduplicating without a watermark).
	EventIdx int
	Out      sql.Schema
}

// Name implements StatefulOp.
func (d *StreamingDedup) Name() string { return d.OpName }

// OutputSchema implements StatefulOp.
func (d *StreamingDedup) OutputSchema() sql.Schema { return d.Out }

// Process implements StatefulOp.
func (d *StreamingDedup) Process(ctx *EpochContext, store *state.Store, inputs [][]sql.Row) ([]sql.Row, error) {
	var out []sql.Row
	for _, r := range inputs[0] {
		var key []byte
		if d.KeyIdxs == nil {
			key = codec.EncodeValues(r)
		} else {
			key = codec.EncodeValues(r.Project(d.KeyIdxs))
		}
		if _, seen := store.Get(key); seen {
			continue
		}
		var ts int64 = -1
		if d.EventIdx >= 0 {
			if v, ok := r[d.EventIdx].(int64); ok {
				ts = v
			}
			// Rows already below the watermark are "too late" and dropped
			// entirely, matching late-data semantics.
			if ts >= 0 && ctx.Watermark > 0 && ts < ctx.Watermark {
				continue
			}
		}
		store.Put(key, binary.AppendVarint(nil, ts))
		out = append(out, r)
	}
	// Evict keys whose event time has passed the watermark.
	if d.EventIdx >= 0 && ctx.Watermark > 0 {
		var dead [][]byte
		store.Iterate(func(k, v []byte) bool {
			ts, _ := binary.Varint(v)
			if ts >= 0 && ts < ctx.Watermark {
				dead = append(dead, append([]byte(nil), k...))
			}
			return true
		})
		for _, k := range dead {
			store.Remove(k)
		}
	}
	return out, nil
}
