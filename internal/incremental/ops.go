package incremental

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"

	"structream/internal/sql"
	"structream/internal/sql/codec"
	"structream/internal/sql/logical"
	"structream/internal/sql/vec"
	"structream/internal/state"
)

// StatefulAggregate is the streaming aggregation operator (§5.2: "an
// aggregation in the user query might be mapped to a StatefulAggregate
// operator that tracks open groups inside the state store"). Map tasks
// partially aggregate and ship serialized buffers; this reduce-side
// operator merges them into long-lived per-key buffers and emits according
// to the output mode:
//
//   - Complete: every group, every epoch.
//   - Update:   only groups whose buffers changed this epoch.
//   - Append:   only groups finalized by the watermark, exactly once, after
//     which their state is dropped.
//
// With a watermark, expired groups are evicted in every mode — this is how
// "the system forgets state for old windows after a timeout" (§4.1).
type StatefulAggregate struct {
	// OpName is the state-store operator id.
	OpName string
	// NumKeys is the grouping-key arity; shuffle rows are
	// [keys..., buf1, buf2, ...].
	NumKeys int
	// Aggs are the bound aggregates (buffer factories).
	Aggs []sql.BoundAgg
	// EventKeyIdx is the key column carrying event time (a window or
	// watermarked timestamp); -1 when the aggregation has no event-time
	// key.
	EventKeyIdx int
	// Out is the operator's output schema: keys then aggregate results.
	Out sql.Schema

	// mergePool recycles the batched merge's scratch (group slab, bucket
	// table, buffer sets) across epochs and concurrent state partitions.
	mergePool sync.Pool
}

// Name implements StatefulOp.
func (a *StatefulAggregate) Name() string { return a.OpName }

// OutputSchema implements StatefulOp.
func (a *StatefulAggregate) OutputSchema() sql.Schema { return a.Out }

// aggKernel is a bound aggregate's bulk-update capability, probed once at
// construction so the per-batch aggregate pass dispatches on a byte
// instead of a type assertion per call.
type aggKernel uint8

const (
	kernelBoxed    aggKernel = iota // no bulk kernel: per-lane boxed Update
	kernelCount                     // BulkCounter
	kernelIntSum                    // BulkInt64Summer
	kernelFloatSum                  // BulkFloat64Summer
)

func kernelFor(a sql.BoundAgg) aggKernel {
	switch a.NewBuffer().(type) {
	case sql.BulkCounter:
		return kernelCount
	case sql.BulkInt64Summer:
		return kernelIntSum
	case sql.BulkFloat64Summer:
		return kernelFloatSum
	}
	return kernelBoxed
}

// partialAgg is a small map-side hash aggregator that renders its groups
// as shuffle rows. The compiler installs it as the blocking terminal stage
// of each map pipeline. Groups live in one contiguous slab in first-seen
// (= emission) order, reached through an open-addressed bucket table that
// chains colliding groups by slab index; each group caches its full hash
// and its encoded key bytes (sliced out of a shared arena), so hash hits
// compare raw bytes and never re-render (or re-box) the key, and shuffle
// routing can hash the cached bytes directly. The slab, table, arena, and
// aggregate-pass scratch all survive reset(), so a pooled instance
// processes an epoch's batch with near-zero per-group bookkeeping
// allocations.
type partialAgg struct {
	keyEvals []func(sql.Row) sql.Value
	aggs     []sql.BoundAgg
	kernels  []aggKernel
	groups   []partialGroup // the slab; index is the group id
	slots    []int32        // power-of-2 buckets: chain-head index + 1, 0 = empty
	arena    []byte         // backing storage for group keyBytes
	bufArena []sql.AggBuffer
	scratch  []sql.Value
	enc      *codec.Encoder
	// aggregate-pass scratch, reused across batches
	laneIdx   []int32
	laneGroup []int32
	counts    []int64
	isums     []int64
	fsums     []float64
}

type partialGroup struct {
	key      []sql.Value
	keyBytes []byte // cached codec encoding of key; backs hit-path compares
	bufs     []sql.AggBuffer
	h        uint64 // full key hash; resolves bucket collisions and rebuilds
	next     int32  // next group in this bucket's chain, -1 ends the chain
}

func newPartialAgg(keyEvals []func(sql.Row) sql.Value, aggs []sql.BoundAgg) *partialAgg {
	kernels := make([]aggKernel, len(aggs))
	for i, a := range aggs {
		kernels[i] = kernelFor(a)
	}
	return &partialAgg{
		keyEvals: keyEvals,
		aggs:     aggs,
		kernels:  kernels,
		slots:    make([]int32, 1024),
		scratch:  make([]sql.Value, len(keyEvals)),
		enc:      codec.NewEncoder(64),
	}
}

// reset clears the groups while keeping every allocation (slab, bucket
// table, arenas, scratch slabs) for reuse. Callers must not retain
// references into the previous generation's keyBytes or buffers.
func (p *partialAgg) reset() {
	p.groups = p.groups[:0]
	clear(p.slots)
	p.arena = p.arena[:0]
	p.bufArena = p.bufArena[:0]
}

// grow doubles the bucket table and rebuilds the chains from each group's
// cached hash. Chain order within a bucket changes, but group ids — and
// therefore emission order — do not.
func (p *partialAgg) grow() {
	p.slots = make([]int32, 2*len(p.slots))
	mask := uint64(len(p.slots) - 1)
	for gi := range p.groups {
		g := &p.groups[gi]
		b := g.h & mask
		g.next = p.slots[b] - 1
		p.slots[b] = int32(gi) + 1
	}
}

// update is the map-side per-record hot path: the key is encoded into a
// reused buffer, hashed, and chained-probed against cached key bytes; only
// first-seen groups materialize (box and copy) their key.
func (p *partialAgg) update(r sql.Row) {
	for i, e := range p.keyEvals {
		p.scratch[i] = e(r)
	}
	p.enc.Reset()
	for _, v := range p.scratch {
		p.enc.PutValue(v)
	}
	kb := p.enc.Bytes()
	gi := p.lookupHashed(codec.HashBytes(kb), kb)
	g := &p.groups[gi]
	if g.key == nil && len(p.scratch) > 0 {
		g.key = append([]sql.Value(nil), p.scratch...)
	}
	for i, a := range p.aggs {
		if a.Input == nil {
			g.bufs[i].Update(nil)
			continue
		}
		if v := a.Input(r); v != nil {
			g.bufs[i].Update(v)
		}
	}
}

// lookupHashed resolves the group for an encoded key, probing the bucket's
// chain with a hash compare then a raw byte compare against each group's
// cached keyBytes. The codec encoding is injective, so equal bytes ⇔ equal
// keys. On a miss the key bytes are copied into the arena (kb usually
// aliases a reused encoder buffer) and the new group is prepended to its
// bucket's chain with a nil boxed key — the caller fills key in when it
// sees one (a lazily-boxed closure here would allocate per probe).
func (p *partialAgg) lookupHashed(h uint64, kb []byte) int32 {
	b := h & uint64(len(p.slots)-1)
	for gi := p.slots[b] - 1; gi >= 0; gi = p.groups[gi].next {
		g := &p.groups[gi]
		if g.h == h && bytes.Equal(g.keyBytes, kb) {
			return gi
		}
	}
	if 2*len(p.groups) >= len(p.slots) {
		p.grow()
		b = h & uint64(len(p.slots)-1)
	}
	an := len(p.arena)
	p.arena = append(p.arena, kb...)
	bn := len(p.bufArena)
	for _, a := range p.aggs {
		p.bufArena = append(p.bufArena, a.NewBuffer())
	}
	gi := int32(len(p.groups))
	p.groups = append(p.groups, partialGroup{
		keyBytes: p.arena[an:len(p.arena):len(p.arena)],
		bufs:     p.bufArena[bn:len(p.bufArena):len(p.bufArena)],
		h:        h,
		next:     p.slots[b] - 1,
	})
	p.slots[b] = gi + 1
	return gi
}

// updateBatch folds the live rows of a column batch into the hash table
// without boxing: a grouping pass hashes/encodes keys straight from the key
// vectors and records each lane's group index, then per-aggregate kernels
// fold whole lane runs into each group — counts and sums accumulate in
// typed slabs and land in the buffer via one bulk call per group. Lanes
// whose aggregate lacks a bulk kernel fall back to boxed per-lane Update,
// skipping NULL lanes exactly like update's nil check.
//
// Bulk float sums are bit-identical to per-row Update only when the
// buffers start fresh, so updateBatch must be the first and only feeder of
// this instance — the engine creates one partialAgg per batch.
func (p *partialAgg) updateBatch(b *vec.Batch, plan *VecAggPlan) {
	keys := make([]*vec.Vector, len(plan.KeyProgs))
	for i, prog := range plan.KeyProgs {
		keys[i] = prog.Run(b)
	}
	ins := make([]*vec.Vector, len(plan.InputProgs))
	for i, prog := range plan.InputProgs {
		if prog != nil {
			ins[i] = prog.Run(b)
		}
	}

	// Grouping pass: one hash+encode per live lane, no boxing on hits.
	lanes := b.Sel
	if lanes == nil {
		if cap(p.laneIdx) < b.Len {
			p.laneIdx = make([]int32, b.Len)
		}
		lanes = p.laneIdx[:b.Len]
		for i := range lanes {
			lanes[i] = int32(i)
		}
	}
	if cap(p.laneGroup) < len(lanes) {
		p.laneGroup = make([]int32, len(lanes))
	}
	laneGroup := p.laneGroup[:len(lanes)]
	for j, lane := range lanes {
		i := int(lane)
		h := codec.HashVec(p.enc, keys, i) // leaves encoded key in p.enc
		gi := p.lookupHashed(h, p.enc.Bytes())
		if g := &p.groups[gi]; g.key == nil && len(keys) > 0 {
			key := make([]sql.Value, len(keys))
			for c, kv := range keys {
				key[c] = kv.Get(i)
			}
			g.key = key
		}
		laneGroup[j] = gi
	}

	// Aggregate pass: per-group slab accumulation in lane order, one bulk
	// buffer call per touched group.
	nGroups := len(p.groups)
	if cap(p.counts) < nGroups {
		p.counts = make([]int64, nGroups)
	}
	counts := p.counts[:nGroups]
	for k := range p.aggs {
		in := ins[k]
		kern := p.kernels[k]
		if in == nil {
			// count(*): every live lane is accepted.
			if kern == kernelCount {
				for i := range counts {
					counts[i] = 0
				}
				for _, gi := range laneGroup {
					counts[gi]++
				}
				for gi, c := range counts {
					if c > 0 {
						p.groups[gi].bufs[k].(sql.BulkCounter).AddCount(c)
					}
				}
				continue
			}
			for _, gi := range laneGroup {
				p.groups[gi].bufs[k].Update(nil)
			}
			continue
		}
		switch kern {
		case kernelCount:
			// count(x): count non-NULL lanes, any vector kind.
			for i := range counts {
				counts[i] = 0
			}
			for j, lane := range lanes {
				if !in.IsNull(int(lane)) {
					counts[laneGroup[j]]++
				}
			}
			for gi, c := range counts {
				if c > 0 {
					p.groups[gi].bufs[k].(sql.BulkCounter).AddCount(c)
				}
			}
		case kernelIntSum:
			if in.Kind != vec.KindInt64 {
				p.updateLanesBoxed(k, in, lanes, laneGroup)
				continue
			}
			if cap(p.isums) < nGroups {
				p.isums = make([]int64, nGroups)
			}
			sums := p.isums[:nGroups]
			for i := range counts {
				counts[i] = 0
				sums[i] = 0
			}
			for j, lane := range lanes {
				i := int(lane)
				if !in.IsNull(i) {
					gi := laneGroup[j]
					sums[gi] += in.Int64s[i]
					counts[gi]++
				}
			}
			for gi, c := range counts {
				if c > 0 {
					p.groups[gi].bufs[k].(sql.BulkInt64Summer).AddInt64Sum(sums[gi], c)
				}
			}
		case kernelFloatSum:
			if in.Kind != vec.KindInt64 && in.Kind != vec.KindFloat64 {
				p.updateLanesBoxed(k, in, lanes, laneGroup)
				continue
			}
			if cap(p.fsums) < nGroups {
				p.fsums = make([]float64, nGroups)
			}
			sums := p.fsums[:nGroups]
			for i := range counts {
				counts[i] = 0
				sums[i] = 0
			}
			if in.Kind == vec.KindFloat64 {
				for j, lane := range lanes {
					i := int(lane)
					if !in.IsNull(i) {
						gi := laneGroup[j]
						sums[gi] += in.Float64s[i]
						counts[gi]++
					}
				}
			} else {
				// Widening matches sql.AsFloat64's int64 coercion.
				for j, lane := range lanes {
					i := int(lane)
					if !in.IsNull(i) {
						gi := laneGroup[j]
						sums[gi] += float64(in.Int64s[i])
						counts[gi]++
					}
				}
			}
			for gi, c := range counts {
				if c > 0 {
					p.groups[gi].bufs[k].(sql.BulkFloat64Summer).AddFloat64Sum(sums[gi], c)
				}
			}
		default:
			p.updateLanesBoxed(k, in, lanes, laneGroup)
		}
	}
}

// updateLanesBoxed is updateBatch's fallback for aggregates without a bulk
// kernel (min/max, first/last, distinct, HLL, moments): box each accepted
// lane and Update, exactly like the row path.
func (p *partialAgg) updateLanesBoxed(k int, in *vec.Vector, lanes []int32, laneGroup []int32) {
	for j, lane := range lanes {
		i := int(lane)
		if !in.IsNull(i) {
			p.groups[laneGroup[j]].bufs[k].Update(in.Get(i))
		}
	}
}

func (p *partialAgg) renderRow(g *partialGroup) sql.Row {
	row := make(sql.Row, 0, len(g.key)+len(g.bufs))
	row = append(row, g.key...)
	for _, b := range g.bufs {
		row = append(row, codec.EncodeValues(b.Serialize()))
	}
	return row
}

func (p *partialAgg) shuffleRows() []sql.Row {
	out := make([]sql.Row, 0, len(p.groups))
	for gi := range p.groups {
		out = append(out, p.renderRow(&p.groups[gi]))
	}
	return out
}

// scatter renders the groups straight into shuffle partitions, routing by
// the cached key bytes. codec.HashBytes(keyBytes) == codec.HashKey(key),
// so the buckets match what per-row KeyEvals + HashKey routing produces.
func (p *partialAgg) scatter(nPart int) [][]sql.Row {
	buckets := make([][]sql.Row, nPart)
	for gi := range p.groups {
		g := &p.groups[gi]
		part := int(codec.HashBytes(g.keyBytes) % uint64(nPart))
		buckets[part] = append(buckets[part], p.renderRow(g))
	}
	return buckets
}

// encodeState packs all aggregate buffers into one state-store value.
func encodeAggState(bufs []sql.AggBuffer) []byte {
	var out []byte
	for _, b := range bufs {
		enc := codec.EncodeValues(b.Serialize())
		out = binary.AppendUvarint(out, uint64(len(enc)))
		out = append(out, enc...)
	}
	return out
}

func (a *StatefulAggregate) decodeAggState(data []byte) ([]sql.AggBuffer, error) {
	bufs := make([]sql.AggBuffer, len(a.Aggs))
	for i, agg := range a.Aggs {
		bufs[i] = agg.NewBuffer()
	}
	if err := a.decodeAggStateInto(data, bufs); err != nil {
		return nil, err
	}
	return bufs, nil
}

// decodeAggStateInto overwrites bufs with a stored state value. Like
// decodeShuffleInto, Deserialize fully replaces buffer state, so callers
// may reuse one buffer set across groups.
func (a *StatefulAggregate) decodeAggStateInto(data []byte, bufs []sql.AggBuffer) error {
	pos := 0
	for i := range a.Aggs {
		n, w := binary.Uvarint(data[pos:])
		if w <= 0 || pos+w+int(n) > len(data) {
			return fmt.Errorf("incremental: corrupt aggregate state for %s", a.OpName)
		}
		pos += w
		vals, err := codec.DecodeValues(data[pos : pos+int(n)])
		if err != nil {
			return fmt.Errorf("incremental: %v", err)
		}
		pos += int(n)
		if err := bufs[i].Deserialize(vals); err != nil {
			return err
		}
	}
	return nil
}

// decodeShuffleBufs decodes the serialized partial buffers carried by one
// shuffle row into fresh buffers.
func (a *StatefulAggregate) decodeShuffleBufs(r sql.Row) ([]sql.AggBuffer, error) {
	incoming := make([]sql.AggBuffer, len(a.Aggs))
	for i, agg := range a.Aggs {
		incoming[i] = agg.NewBuffer()
	}
	if err := a.decodeShuffleInto(r, incoming); err != nil {
		return nil, err
	}
	return incoming, nil
}

// decodeShuffleInto overwrites bufs with the partials carried by one
// shuffle row. Every Deserialize fully replaces buffer state and no Merge
// retains references into its argument, so callers may reuse one buffer
// set across rows — the merge loop leans on this to avoid allocating a
// buffer per incoming row.
func (a *StatefulAggregate) decodeShuffleInto(r sql.Row, bufs []sql.AggBuffer) error {
	for i := range a.Aggs {
		enc, ok := r[a.NumKeys+i].([]byte)
		if !ok {
			return fmt.Errorf("incremental: bad shuffle row for %s", a.OpName)
		}
		vals, err := codec.DecodeValues(enc)
		if err != nil {
			return err
		}
		if err := bufs[i].Deserialize(vals); err != nil {
			return err
		}
	}
	return nil
}

// survivorSel computes which input rows survive the watermark gate using
// the vectorized expiry kernel: the event-time key column is unpacked into
// timestamp/kind/validity slabs once, and vec.ExpirySel selects the
// surviving lanes. Returns nil when no gating applies (all rows live).
func (a *StatefulAggregate) survivorSel(ctx *EpochContext, rows []sql.Row) []int32 {
	if a.EventKeyIdx < 0 || ctx.Watermark <= 0 || len(rows) == 0 {
		return nil
	}
	n := len(rows)
	evt := make([]int64, n)
	isWin := make([]bool, n)
	valid := make([]bool, n)
	for i, r := range rows {
		switch x := r[a.EventKeyIdx].(type) {
		case sql.Window:
			evt[i], isWin[i], valid[i] = x.End, true, true
		case int64:
			evt[i], valid[i] = x, true
		}
	}
	return vec.ExpirySel(evt, isWin, valid, ctx.Watermark, false, make([]int32, 0, n))
}

// mergeGroup is one distinct grouping key's worth of this epoch's shuffle
// rows in the row-path baseline merge: the boxed key (from the first row
// seen) and the latest merged buffers.
type mergeGroup struct {
	key      []sql.Value
	keyBytes []byte
	bufs     []sql.AggBuffer
}

// mergeState is the pooled scratch behind the batched reduce merge: the
// group slab, the open-addressed bucket table, per-row chain links, the
// GetBatch key vector, the key-bytes arena, and two reusable aggregate
// buffer sets. One mergeState serves one Process call; a sync.Pool on the
// operator recycles them across epochs and concurrent state partitions,
// so a steady-state epoch allocates only what it must hand off — emit
// rows and encoded state values.
type mergeState struct {
	groups  []vecMergeGroup
	slots   []int32 // power-of-2 buckets: group index + 1, 0 = empty
	rowNext []int32 // chains a group's rows in arrival order, -1 ends
	keys    [][]byte
	arena   []byte // backing storage for group keyBytes
	dst     []sql.AggBuffer
	src     []sql.AggBuffer
	enc     codec.Encoder
}

// vecMergeGroup is one distinct key in the batched merge. Rows reach the
// merge loop via the firstRow/rowNext chain instead of a per-group index
// slice, and the Update-mode emit row is built during the merge while the
// shared dst buffers still hold the group's final state.
type vecMergeGroup struct {
	keyBytes          []byte
	h                 uint64
	firstRow, lastRow int32
	next              int32
	row               sql.Row
}

func (ms *mergeState) reset() {
	for i := range ms.groups {
		ms.groups[i].row = nil // release emitted rows to the GC
	}
	ms.groups = ms.groups[:0]
	clear(ms.slots)
	ms.arena = ms.arena[:0]
}

func (ms *mergeState) grow() {
	ms.slots = make([]int32, 2*len(ms.slots))
	mask := uint64(len(ms.slots) - 1)
	for gi := range ms.groups {
		g := &ms.groups[gi]
		b := g.h & mask
		g.next = ms.slots[b] - 1
		ms.slots[b] = int32(gi) + 1
	}
}

// mergeRowsBaseline is the reduce-side merge with vectorization off: a
// per-row watermark check, one store Get and Put per shuffle row, and a
// fresh decoded buffer set per row — the engine's original behavior,
// kept as the row-path baseline the batched merge is benchmarked (and
// differentially tested) against. Returns the changed groups in
// first-seen order, same as the batched pass.
func (a *StatefulAggregate) mergeRowsBaseline(ctx *EpochContext, store *state.Store, rows []sql.Row) ([]*mergeGroup, error) {
	changed := make(map[string]*mergeGroup, len(rows))
	var groups []*mergeGroup
	for _, r := range rows {
		keyVals := r[:a.NumKeys:a.NumKeys]
		// Drop data later than the watermark allows: its group was (or
		// will be) finalized and evicted, and merging it would resurrect
		// the group and violate append-mode's emit-once guarantee.
		if a.EventKeyIdx >= 0 && ctx.Watermark > 0 && groupExpired(keyVals[a.EventKeyIdx], ctx.Watermark) {
			continue
		}
		keyBytes := codec.EncodeValues(keyVals)
		incoming, err := a.decodeShuffleBufs(r)
		if err != nil {
			return nil, err
		}
		var merged []sql.AggBuffer
		if existing, ok := store.Get(keyBytes); ok {
			bufs, err := a.decodeAggState(existing)
			if err != nil {
				return nil, err
			}
			for i := range bufs {
				bufs[i].Merge(incoming[i])
			}
			merged = bufs
		} else {
			merged = incoming
		}
		store.Put(keyBytes, encodeAggState(merged))
		if g, seen := changed[string(keyBytes)]; seen {
			g.bufs = merged
		} else {
			g := &mergeGroup{key: append([]sql.Value(nil), keyVals...), keyBytes: keyBytes, bufs: merged}
			changed[string(keyBytes)] = g
			groups = append(groups, g)
		}
	}
	return groups, nil
}

// Process implements StatefulOp. With ctx.Vectorize set the merge is
// batched: rows are gated by the vectorized watermark kernel, grouped by
// encoded key with one hash-table pass, read from the store with a single
// GetBatch over the distinct keys, merged per group in row order, and
// written back with one Put per group — per-row store locking, codec
// round-trips between duplicate rows, and (for LSM) per-key memtable/bloom
// probes all amortize across the vector. With it clear the original
// per-row merge runs instead; emission is shared and both merges must
// yield byte-identical output.
func (a *StatefulAggregate) Process(ctx *EpochContext, store *state.Store, inputs [][]sql.Row) ([]sql.Row, error) {
	rows := inputs[0]
	if !ctx.Vectorize {
		groups, err := a.mergeRowsBaseline(ctx, store, rows)
		if err != nil {
			return nil, err
		}
		return a.emit(ctx, store, groups)
	}
	// Watermark gate: data later than the watermark allows is dropped —
	// its group was (or will be) finalized and evicted, and merging it
	// would resurrect the group and violate append-mode's emit-once
	// guarantee.
	sel := a.survivorSel(ctx, rows)

	ms, _ := a.mergePool.Get().(*mergeState)
	if ms == nil {
		ms = &mergeState{slots: make([]int32, 1024)}
	}
	if cap(ms.rowNext) < len(rows) {
		ms.rowNext = make([]int32, len(rows))
	}

	// Grouping pass over survivors: first-seen order of distinct keys
	// matches the row-path baseline's emission order. Rows chain onto
	// their group through rowNext; new keys land in the arena-backed slab.
	addRow := func(ri int32) {
		r := rows[ri]
		keyVals := r[:a.NumKeys:a.NumKeys]
		ms.enc.Reset()
		for _, v := range keyVals {
			ms.enc.PutValue(v)
		}
		keyBytes := ms.enc.Bytes()
		h := codec.HashBytes(keyBytes)
		ms.rowNext[ri] = -1
		b := h & uint64(len(ms.slots)-1)
		for gi := ms.slots[b] - 1; gi >= 0; gi = ms.groups[gi].next {
			g := &ms.groups[gi]
			if g.h == h && bytes.Equal(g.keyBytes, keyBytes) {
				ms.rowNext[g.lastRow] = ri
				g.lastRow = ri
				return
			}
		}
		if 2*len(ms.groups) >= len(ms.slots) {
			ms.grow()
			b = h & uint64(len(ms.slots)-1)
		}
		an := len(ms.arena)
		ms.arena = append(ms.arena, keyBytes...)
		gi := int32(len(ms.groups))
		ms.groups = append(ms.groups, vecMergeGroup{
			keyBytes: ms.arena[an:len(ms.arena):len(ms.arena)],
			h:        h,
			firstRow: ri,
			lastRow:  ri,
			next:     ms.slots[b] - 1,
		})
		ms.slots[b] = gi + 1
	}
	if sel != nil {
		for _, i := range sel {
			addRow(i)
		}
	} else {
		for ri := range rows {
			addRow(int32(ri))
		}
	}

	// One batched state read over the distinct keys, then merge each
	// group's rows in arrival order and write back once per group. The
	// dst/src buffer sets are reused for every group and row (Deserialize
	// fully overwrites buffer state; Merge never retains references into
	// its argument), so the merge's only allocations are the encoded state
	// values the store retains and the emit rows handed downstream.
	if len(ms.groups) > 0 {
		if cap(ms.keys) < len(ms.groups) {
			ms.keys = make([][]byte, len(ms.groups))
		}
		keys := ms.keys[:len(ms.groups)]
		for gi := range ms.groups {
			keys[gi] = ms.groups[gi].keyBytes
		}
		vals, oks := store.GetBatch(keys)
		if ms.dst == nil {
			ms.dst = make([]sql.AggBuffer, len(a.Aggs))
			ms.src = make([]sql.AggBuffer, len(a.Aggs))
			for i, agg := range a.Aggs {
				ms.dst[i] = agg.NewBuffer()
				ms.src[i] = agg.NewBuffer()
			}
		}
		for gi := range ms.groups {
			g := &ms.groups[gi]
			ri := g.firstRow
			if oks[gi] {
				if err := a.decodeAggStateInto(vals[gi], ms.dst); err != nil {
					return nil, err
				}
			} else {
				if err := a.decodeShuffleInto(rows[ri], ms.dst); err != nil {
					return nil, err
				}
				ri = ms.rowNext[ri]
			}
			for ; ri >= 0; ri = ms.rowNext[ri] {
				if err := a.decodeShuffleInto(rows[ri], ms.src); err != nil {
					return nil, err
				}
				for i := range ms.dst {
					ms.dst[i].Merge(ms.src[i])
				}
			}
			store.Put(g.keyBytes, encodeAggState(ms.dst))
			if ctx.Mode == logical.Update {
				r := rows[g.firstRow]
				row := make(sql.Row, 0, a.NumKeys+len(ms.dst))
				row = append(row, r[:a.NumKeys]...)
				for _, b := range ms.dst {
					row = append(row, b.Result())
				}
				g.row = row
			}
		}
	}
	if err := store.Err(); err != nil {
		return nil, err
	}

	var out []sql.Row
	emitRow := func(key []sql.Value, bufs []sql.AggBuffer) {
		row := make(sql.Row, 0, len(key)+len(bufs))
		row = append(row, key...)
		for _, b := range bufs {
			row = append(row, b.Result())
		}
		out = append(out, row)
	}
	switch ctx.Mode {
	case logical.Complete:
		if err := a.emitComplete(store, emitRow); err != nil {
			return nil, err
		}
	case logical.Update:
		// Rows were rendered during the merge, while the shared buffers
		// still held each group's final state.
		for gi := range ms.groups {
			out = append(out, ms.groups[gi].row)
		}
	case logical.Append:
		// Emission happens only via watermark finalization below.
	}
	if err := a.finalizeExpired(ctx, store, emitRow); err != nil {
		return nil, err
	}
	ms.reset()
	a.mergePool.Put(ms)
	return out, nil
}

// emit is the output half of Process, shared by both merge
// implementations: mode-dependent emission over the changed groups plus
// the watermark finalize/evict pass.
func (a *StatefulAggregate) emit(ctx *EpochContext, store *state.Store, groups []*mergeGroup) ([]sql.Row, error) {
	if err := store.Err(); err != nil {
		return nil, err
	}

	var out []sql.Row
	emitRow := func(key []sql.Value, bufs []sql.AggBuffer) {
		row := make(sql.Row, 0, len(key)+len(bufs))
		row = append(row, key...)
		for _, b := range bufs {
			row = append(row, b.Result())
		}
		out = append(out, row)
	}

	switch ctx.Mode {
	case logical.Complete:
		if err := a.emitComplete(store, emitRow); err != nil {
			return nil, err
		}
	case logical.Update:
		// The merge loop kept each group's final buffers; nothing in this
		// epoch can have removed a changed key (eviction runs below), so
		// emission needs no second store read.
		for _, g := range groups {
			emitRow(g.key, g.bufs)
		}
	case logical.Append:
		// Emission happens only via watermark finalization below.
	}
	if err := a.finalizeExpired(ctx, store, emitRow); err != nil {
		return nil, err
	}
	return out, nil
}

// emitComplete emits the whole store, Complete mode's contract.
func (a *StatefulAggregate) emitComplete(store *state.Store, emitRow func([]sql.Value, []sql.AggBuffer)) error {
	var iterErr error
	store.Iterate(func(k, v []byte) bool {
		key, err := codec.DecodeValues(k)
		if err != nil {
			iterErr = err
			return false
		}
		bufs, err := a.decodeAggState(v)
		if err != nil {
			iterErr = err
			return false
		}
		emitRow(key, bufs)
		return true
	})
	return iterErr
}

// finalizeExpired is the watermark pass shared by both merge paths:
// groups entirely below the watermark are evicted, and Append mode emits
// them on the way out (its once-per-group finalization).
func (a *StatefulAggregate) finalizeExpired(ctx *EpochContext, store *state.Store, emitRow func([]sql.Value, []sql.AggBuffer)) error {
	if ctx.Watermark <= 0 || a.EventKeyIdx < 0 {
		return nil
	}
	type expired struct {
		key []sql.Value
		raw []byte
	}
	var dead []expired
	var iterErr error
	store.Iterate(func(k, v []byte) bool {
		key, err := codec.DecodeValues(k)
		if err != nil {
			iterErr = err
			return false
		}
		if groupExpired(key[a.EventKeyIdx], ctx.Watermark) {
			dead = append(dead, expired{key: key, raw: append([]byte(nil), k...)})
			if ctx.Mode == logical.Append {
				bufs, err := a.decodeAggState(v)
				if err != nil {
					iterErr = err
					return false
				}
				emitRow(key, bufs)
			}
		}
		return true
	})
	if iterErr != nil {
		return iterErr
	}
	for _, d := range dead {
		store.Remove(d.raw)
	}
	return nil
}

// groupExpired reports whether an event-time key value is entirely below
// the watermark: a window is expired once its End has passed; a raw
// timestamp once the timestamp itself has. vec.ExpirySel is the slab form
// of exactly this predicate.
func groupExpired(v sql.Value, watermark int64) bool {
	switch x := v.(type) {
	case sql.Window:
		return x.End <= watermark
	case int64:
		return x < watermark
	default:
		return false
	}
}

// ---------------------------------------------------------------- dedup

// StreamingDedup implements streaming SELECT DISTINCT and
// dropDuplicates(cols): the first row per key is emitted, later duplicates
// are dropped, and when an event-time column is watermarked, keys older
// than the watermark are forgotten (bounding state, §4.3.1).
type StreamingDedup struct {
	OpName string
	// KeyIdxs selects the duplicate-key columns; nil keys on the whole row.
	KeyIdxs []int
	// EventIdx is the watermarked event-time column within the row; -1
	// disables eviction (state grows without bound, as in Spark when
	// deduplicating without a watermark).
	EventIdx int
	Out      sql.Schema
}

// Name implements StatefulOp.
func (d *StreamingDedup) Name() string { return d.OpName }

// OutputSchema implements StatefulOp.
func (d *StreamingDedup) OutputSchema() sql.Schema { return d.Out }

// Process implements StatefulOp. Late rows are gated by the vectorized
// expiry kernel up front (a late row never emits and never marks its key
// seen, so pre-filtering is exactly equivalent to the per-row gate), then
// the seen-checks run as one batched store read; duplicates within the
// epoch are caught by an epoch-local set, mirroring the visibility the
// per-row path got from staged Puts.
func (d *StreamingDedup) Process(ctx *EpochContext, store *state.Store, inputs [][]sql.Row) ([]sql.Row, error) {
	rows := inputs[0]

	// Vectorized late-row gate.
	var sel []int32
	if d.EventIdx >= 0 && ctx.Watermark > 0 && len(rows) > 0 {
		n := len(rows)
		evt := make([]int64, n)
		valid := make([]bool, n)
		for i, r := range rows {
			if v, ok := r[d.EventIdx].(int64); ok && v >= 0 {
				evt[i], valid[i] = v, true
			}
		}
		sel = vec.ExpirySel(evt, make([]bool, n), valid, ctx.Watermark, false, make([]int32, 0, n))
	}
	live := make([]int, 0, len(rows))
	if sel != nil {
		for _, i := range sel {
			live = append(live, int(i))
		}
	} else {
		for i := range rows {
			live = append(live, i)
		}
	}

	// Batched seen-check over the surviving rows' keys.
	keys := make([][]byte, len(live))
	for j, ri := range live {
		r := rows[ri]
		if d.KeyIdxs == nil {
			keys[j] = codec.EncodeValues(r)
		} else {
			keys[j] = codec.EncodeValues(r.Project(d.KeyIdxs))
		}
	}
	_, oks := store.GetBatch(keys)
	if err := store.Err(); err != nil {
		return nil, err
	}

	var out []sql.Row
	seenNow := make(map[string]bool, len(live))
	for j, ri := range live {
		if oks[j] || seenNow[string(keys[j])] {
			continue
		}
		r := rows[ri]
		var ts int64 = -1
		if d.EventIdx >= 0 {
			if v, ok := r[d.EventIdx].(int64); ok {
				ts = v
			}
		}
		seenNow[string(keys[j])] = true
		store.Put(keys[j], binary.AppendVarint(nil, ts))
		out = append(out, r)
	}
	// Evict keys whose event time has passed the watermark.
	if d.EventIdx >= 0 && ctx.Watermark > 0 {
		var dead [][]byte
		store.Iterate(func(k, v []byte) bool {
			ts, _ := binary.Varint(v)
			if ts >= 0 && ts < ctx.Watermark {
				dead = append(dead, append([]byte(nil), k...))
			}
			return true
		})
		for _, k := range dead {
			store.Remove(k)
		}
	}
	return out, nil
}
