// Package incremental implements the heart of the paper's contribution
// (§5.2): turning an analyzed, optimized *static* relational plan into an
// incrementally executable streaming plan. The compiled form splits the
// query at its stateful boundary: stateless map pipelines run over each
// source partition (filters, projections, window assignment, stream-static
// joins, fused exactly as in batch mode), rows shuffle by key to a stateful
// operator backed by the versioned state store, and a small driver-side
// post stage computes the final result shape. Each stateful operator
// carries its own intra-DAG output behaviour, so users never specify
// per-operator modes by hand — the engine derives everything from the
// query and the sink's output mode, which is the design §4.2 argues for.
package incremental

import (
	"structream/internal/sql"
	"structream/internal/sql/logical"
	"structream/internal/state"
)

// EpochContext carries the per-epoch execution parameters into stateful
// operators.
type EpochContext struct {
	// Epoch is the epoch id; committed state uses it as the store version.
	Epoch int64
	// Watermark is the event-time watermark in µs computed at the end of
	// the previous epoch (0 = no watermark yet). Gating on the previous
	// epoch's value matches Spark and keeps results deterministic per
	// epoch.
	Watermark int64
	// ProcTime is the processing time in µs for this epoch, used by
	// processing-time timeouts.
	ProcTime int64
	// Mode is the sink output mode of the query.
	Mode logical.OutputMode
}

// StatefulOp is a reduce-side streaming operator processing one state
// partition per epoch. inputs is indexed by side (joins have two sides;
// everything else uses inputs[0]).
type StatefulOp interface {
	// Name identifies the operator's state in the store ("agg-0", ...).
	Name() string
	// OutputSchema is the schema of rows Process emits.
	OutputSchema() sql.Schema
	// Process folds this epoch's shuffled input into state and returns
	// the rows to emit for this partition under ctx.Mode.
	Process(ctx *EpochContext, store *state.Store, inputs [][]sql.Row) ([]sql.Row, error)
}

// RowEmit pushes one row to the next pipeline stage.
type RowEmit func(sql.Row)

// StageFactory instantiates one pipeline stage: given the downstream emit
// function it returns this stage's emit plus an optional flush invoked
// after the task's last row (used by blocking stages like map-side partial
// aggregation). The factory is called once per task, so all mutable stage
// state (arenas, scratch encoders, hash tables being filled) is private to
// that task — which is what makes concurrent map tasks safe.
type StageFactory func(next RowEmit) (RowEmit, func())

// Pipeline is the stateless map-side program for one streaming source
// leaf. Stages compose push-style into a single per-row path with no
// intermediate batch materialization — the engine's equivalent of
// whole-stage code generation, and the mechanism behind the paper's
// throughput claims (§5.3, §9.1).
type Pipeline struct {
	// SourceName matches the Scan leaf (and WAL source entry).
	SourceName string
	// Side is the stateful stage input this pipeline feeds (0, or 1 for
	// the right side of a stream-stream join).
	Side int
	// Stages are the fused row transformations, leaf first.
	Stages []StageFactory
	// KeyEvals route stage output rows to state partitions; nil for
	// map-only queries.
	KeyEvals []func(sql.Row) sql.Value
	// WatermarkEval extracts the event-time value from a *raw source row*
	// for watermark tracking; nil when the source has no watermark.
	WatermarkEval func(sql.Row) sql.Value
	// WatermarkDelay is the declared lateness bound in µs.
	WatermarkDelay int64
}

// Process runs one task's rows through a freshly instantiated fused
// pipeline and returns the stage-output rows.
func (p *Pipeline) Process(rows []sql.Row) []sql.Row {
	var out []sql.Row
	sink := func(r sql.Row) { out = append(out, r) }
	emit, flushes := p.instantiate(sink)
	for _, r := range rows {
		emit(r)
	}
	for _, f := range flushes {
		f()
	}
	return out
}

// ProcessTo runs one task's rows, pushing outputs to sink directly (used
// by the engine to route into shuffle buckets without materializing).
func (p *Pipeline) ProcessTo(rows []sql.Row, sink RowEmit) {
	emit, flushes := p.instantiate(sink)
	for _, r := range rows {
		emit(r)
	}
	for _, f := range flushes {
		f()
	}
}

// instantiate composes the stages around sink. Flushes are returned in
// leaf-to-boundary order so a flushed stage's output still flows through
// later stages' already-live emits.
func (p *Pipeline) instantiate(sink RowEmit) (RowEmit, []func()) {
	emit := sink
	var flushes []func()
	for i := len(p.Stages) - 1; i >= 0; i-- {
		var flush func()
		emit, flush = p.Stages[i](emit)
		if flush != nil {
			flushes = append([]func(){flush}, flushes...)
		}
	}
	return emit, flushes
}

// Query is a fully compiled incremental query.
type Query struct {
	// Pipelines lists the per-source map programs.
	Pipelines []*Pipeline
	// Stateful is the single stateful stage, nil for map-only queries.
	Stateful StatefulOp
	// Post computes the final driver-side shape (HAVING, projection, sort,
	// limit) over the stateful stage's emitted rows. For map-only queries
	// it is the identity.
	Post func(rows []sql.Row) ([]sql.Row, error)
	// OutSchema is the sink-facing schema.
	OutSchema sql.Schema
	// KeyArity is the number of leading key columns in the output (for
	// update-mode sinks); 0 when the whole row is the key.
	KeyArity int
	// Mode is the validated output mode.
	Mode logical.OutputMode
	// HasWatermark reports whether any pipeline tracks a watermark.
	HasWatermark bool
}
