// Package incremental implements the heart of the paper's contribution
// (§5.2): turning an analyzed, optimized *static* relational plan into an
// incrementally executable streaming plan. The compiled form splits the
// query at its stateful boundary: stateless map pipelines run over each
// source partition (filters, projections, window assignment, stream-static
// joins, fused exactly as in batch mode), rows shuffle by key to a stateful
// operator backed by the versioned state store, and a small driver-side
// post stage computes the final result shape. Each stateful operator
// carries its own intra-DAG output behaviour, so users never specify
// per-operator modes by hand — the engine derives everything from the
// query and the sink's output mode, which is the design §4.2 argues for.
package incremental

import (
	"sync"

	"structream/internal/sql"
	"structream/internal/sql/logical"
	"structream/internal/sql/physical"
	"structream/internal/sql/vec"
	"structream/internal/state"
)

// EpochContext carries the per-epoch execution parameters into stateful
// operators.
type EpochContext struct {
	// Epoch is the epoch id; committed state uses it as the store version.
	Epoch int64
	// Watermark is the event-time watermark in µs computed at the end of
	// the previous epoch (0 = no watermark yet). Gating on the previous
	// epoch's value matches Spark and keeps results deterministic per
	// epoch.
	Watermark int64
	// ProcTime is the processing time in µs for this epoch, used by
	// processing-time timeouts.
	ProcTime int64
	// Mode is the sink output mode of the query.
	Mode logical.OutputMode
	// Vectorize selects the batched reduce-side implementation in
	// stateful operators (batched state-store reads, scratch-buffer
	// merge, vectorized watermark gate). Off = the per-row baseline.
	// Both implementations must produce byte-identical output.
	Vectorize bool
}

// StatefulOp is a reduce-side streaming operator processing one state
// partition per epoch. inputs is indexed by side (joins have two sides;
// everything else uses inputs[0]).
type StatefulOp interface {
	// Name identifies the operator's state in the store ("agg-0", ...).
	Name() string
	// OutputSchema is the schema of rows Process emits.
	OutputSchema() sql.Schema
	// Process folds this epoch's shuffled input into state and returns
	// the rows to emit for this partition under ctx.Mode.
	Process(ctx *EpochContext, store *state.Store, inputs [][]sql.Row) ([]sql.Row, error)
}

// RowEmit pushes one row to the next pipeline stage.
type RowEmit func(sql.Row)

// StageFactory instantiates one pipeline stage: given the downstream emit
// function it returns this stage's emit plus an optional flush invoked
// after the task's last row (used by blocking stages like map-side partial
// aggregation). The factory is called once per task, so all mutable stage
// state (arenas, scratch encoders, hash tables being filled) is private to
// that task — which is what makes concurrent map tasks safe.
type StageFactory func(next RowEmit) (RowEmit, func())

// Pipeline is the stateless map-side program for one streaming source
// leaf. Stages compose push-style into a single per-row path with no
// intermediate batch materialization — the engine's equivalent of
// whole-stage code generation, and the mechanism behind the paper's
// throughput claims (§5.3, §9.1).
type Pipeline struct {
	// SourceName matches the Scan leaf (and WAL source entry).
	SourceName string
	// Side is the stateful stage input this pipeline feeds (0, or 1 for
	// the right side of a stream-stream join).
	Side int
	// Stages are the fused row transformations, leaf first.
	Stages []StageFactory
	// KeyEvals route stage output rows to state partitions; nil for
	// map-only queries.
	KeyEvals []func(sql.Row) sql.Value
	// KeyIdxs, when non-nil, are the stage-output column indexes behind
	// KeyEvals (every current routing key is a plain column). A fully
	// vectorized pipeline uses them to hash keys straight from the column
	// vectors at the shuffle boundary instead of boxing each row first;
	// KeyEvals remain the semantic source of truth.
	KeyIdxs []int
	// WatermarkEval extracts the event-time value from a *raw source row*
	// for watermark tracking; nil when the source has no watermark.
	WatermarkEval func(sql.Row) sql.Value
	// WatermarkIdx is the raw-source column index behind WatermarkEval, so
	// the columnar path can scan the vector directly; -1 when unset.
	WatermarkIdx int
	// WatermarkDelay is the declared lateness bound in µs.
	WatermarkDelay int64
	// Vec is the vectorized variant of a leading prefix of Stages (plus,
	// optionally, the terminal partial aggregation); nil when nothing in
	// the pipeline vectorizes. Stages remains the source of truth for
	// semantics — Vec must produce byte-identical output.
	Vec *VecPlan
	// aggPool recycles columnar partial-aggregation hash tables across
	// map tasks. Safe because shuffle rows alias nothing inside the
	// table: renderRow copies the boxed key values and EncodeValues
	// allocates fresh buffer bytes.
	aggPool sync.Pool
}

// getPartialAgg takes a reset partial-aggregation table from the pool (or
// builds one) for the pipeline's columnar agg plan.
func (p *Pipeline) getPartialAgg() *partialAgg {
	if h, ok := p.aggPool.Get().(*partialAgg); ok {
		return h
	}
	return newPartialAgg(nil, p.Vec.Agg.Aggs)
}

func (p *Pipeline) putPartialAgg(h *partialAgg) {
	h.reset()
	p.aggPool.Put(h)
}

// VecPlan mirrors a pipeline prefix as columnar kernels. Ops[i] computes
// the same transformation as Stages[i]; rows materialize after the last
// op and flow through the remaining row stages (none, for fully covered
// pipelines). When Agg is set, Ops covers every stage but the terminal
// partial aggregation, which runs columnar too.
type VecPlan struct {
	Ops []physical.VecOp
	Agg *VecAggPlan
	// sealed stops the compiler extending Ops once a non-vectorizable
	// stage appears (later stages would run out of order otherwise).
	sealed bool
}

// VecAggPlan is the columnar map-side partial aggregation: grouping keys
// and aggregate inputs evaluate as kernels, and key encoding reads the
// vectors directly instead of boxing every cell.
type VecAggPlan struct {
	// KeyProgs compute the grouping-key columns.
	KeyProgs []*vec.Program
	// InputProgs compute each aggregate's input column; a nil entry is an
	// input-less aggregate (count(*)).
	InputProgs []*vec.Program
	// Aggs are the bound aggregates (buffer factories), as in the row path.
	Aggs []sql.BoundAgg
}

// ProcessBatchTo is the columnar counterpart of ProcessTo: it runs one
// task's column batch through the vectorized ops and pushes the resulting
// rows (or partial-aggregation shuffle rows) to sink. The caller must
// only invoke it when p.Vec != nil. Stages not covered by the vector plan
// still run, row-at-a-time, after materialization, so output is identical
// to ProcessTo over the same logical rows.
func (p *Pipeline) ProcessBatchTo(b *vec.Batch, sink RowEmit) {
	for _, op := range p.Vec.Ops {
		b = op.Apply(b)
	}
	if a := p.Vec.Agg; a != nil {
		h := p.getPartialAgg()
		h.updateBatch(b, a)
		for _, row := range h.shuffleRows() {
			sink(row)
		}
		p.putPartialAgg(h)
		return
	}
	emit, flushes := p.instantiateFrom(len(p.Vec.Ops), sink)
	physical.EmitBatchRows(b, emit)
	for _, f := range flushes {
		f()
	}
}

// ProcessBatchScatter runs one task's column batch through the vectorized
// ops and the columnar partial aggregation, then renders the groups
// straight into nPart shuffle buckets, routing by each group's cached
// encoded key bytes. Valid only when p.Vec != nil, p.Vec.Agg != nil, and
// KeyIdxs is non-nil (the compiler guarantees the shuffle key columns lead
// the aggregation's grouping key, so hashing the cached key encoding
// routes identically to boxing the row and calling codec.HashKey). This is
// what keeps agg pipelines columnar across the exchange: one hash+encode
// per input lane, one render per group, zero per-row boxing.
func (p *Pipeline) ProcessBatchScatter(b *vec.Batch, nPart int) [][]sql.Row {
	for _, op := range p.Vec.Ops {
		b = op.Apply(b)
	}
	h := p.getPartialAgg()
	h.updateBatch(b, p.Vec.Agg)
	buckets := h.scatter(nPart)
	p.putPartialAgg(h)
	return buckets
}

// FullyVectorized reports whether the vector plan covers every stage with
// no terminal partial aggregation: ApplyVec alone reproduces the
// pipeline's output, so a column batch can stay columnar past the map
// boundary (e.g. straight into a ColumnSink).
func (p *Pipeline) FullyVectorized() bool {
	return p.Vec != nil && p.Vec.Agg == nil && len(p.Vec.Ops) == len(p.Stages)
}

// ApplyVec runs the vector plan's ops over b and returns the transformed
// batch, still columnar. Only valid when FullyVectorized reports true.
func (p *Pipeline) ApplyVec(b *vec.Batch) *vec.Batch {
	for _, op := range p.Vec.Ops {
		b = op.Apply(b)
	}
	return b
}

// Process runs one task's rows through a freshly instantiated fused
// pipeline and returns the stage-output rows.
func (p *Pipeline) Process(rows []sql.Row) []sql.Row {
	var out []sql.Row
	sink := func(r sql.Row) { out = append(out, r) }
	emit, flushes := p.instantiate(sink)
	for _, r := range rows {
		emit(r)
	}
	for _, f := range flushes {
		f()
	}
	return out
}

// ProcessTo runs one task's rows, pushing outputs to sink directly (used
// by the engine to route into shuffle buckets without materializing).
func (p *Pipeline) ProcessTo(rows []sql.Row, sink RowEmit) {
	emit, flushes := p.instantiate(sink)
	for _, r := range rows {
		emit(r)
	}
	for _, f := range flushes {
		f()
	}
}

// instantiate composes the stages around sink. Flushes are returned in
// leaf-to-boundary order so a flushed stage's output still flows through
// later stages' already-live emits.
func (p *Pipeline) instantiate(sink RowEmit) (RowEmit, []func()) {
	return p.instantiateFrom(0, sink)
}

// instantiateFrom composes the stages starting at index first, skipping
// the prefix already executed columnar.
func (p *Pipeline) instantiateFrom(first int, sink RowEmit) (RowEmit, []func()) {
	emit := sink
	var flushes []func()
	for i := len(p.Stages) - 1; i >= first; i-- {
		var flush func()
		emit, flush = p.Stages[i](emit)
		if flush != nil {
			flushes = append([]func(){flush}, flushes...)
		}
	}
	return emit, flushes
}

// Query is a fully compiled incremental query.
type Query struct {
	// Pipelines lists the per-source map programs.
	Pipelines []*Pipeline
	// Stateful is the single stateful stage, nil for map-only queries.
	Stateful StatefulOp
	// Post computes the final driver-side shape (HAVING, projection, sort,
	// limit) over the stateful stage's emitted rows. For map-only queries
	// it is the identity.
	Post func(rows []sql.Row) ([]sql.Row, error)
	// OutSchema is the sink-facing schema.
	OutSchema sql.Schema
	// KeyArity is the number of leading key columns in the output (for
	// update-mode sinks); 0 when the whole row is the key.
	KeyArity int
	// Mode is the validated output mode.
	Mode logical.OutputMode
	// HasWatermark reports whether any pipeline tracks a watermark.
	HasWatermark bool
}
