package incremental

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"structream/internal/sql"
	"structream/internal/sql/analysis"
	"structream/internal/sql/logical"
	"structream/internal/sql/optimizer"

	"structream/internal/sql/physical"
	"structream/internal/state"
)

var testSchema = sql.NewSchema(
	sql.Field{Name: "k", Type: sql.TypeString},
	sql.Field{Name: "v", Type: sql.TypeFloat64},
	sql.Field{Name: "ts", Type: sql.TypeTimestamp},
)

const sec = int64(1_000_000)

func scan(name string) *logical.Scan {
	return &logical.Scan{Name: name, Streaming: true, Out: testSchema}
}

func mustCompile(t *testing.T, plan logical.Plan, mode logical.OutputMode) *Query {
	t.Helper()
	analyzed, err := analysis.Analyze(plan)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Compile(optimizer.Optimize(analyzed), mode, nil)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func openStore(t *testing.T, name string) *state.Store {
	t.Helper()
	p := state.NewProvider(t.TempDir())
	s, err := p.Open(state.ID{Operator: name, Partition: 0}, -1)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// ---------------------------------------------------------------- pipeline

func TestPipelineFusionAndFlush(t *testing.T) {
	plan := &logical.Aggregate{
		Child: &logical.Filter{Child: scan("s"), Cond: sql.Gt(sql.Col("v"), sql.Lit(0.0))},
		Keys:  []sql.Expr{sql.Col("k")},
		Aggs:  []logical.NamedAgg{{Agg: sql.CountAll(), Name: "cnt"}},
	}
	q := mustCompile(t, plan, logical.Update)
	if len(q.Pipelines) != 1 || q.Stateful == nil {
		t.Fatalf("query = %+v", q)
	}
	// Process produces partial-agg shuffle rows: [key, encodedBuffer].
	rows := q.Pipelines[0].Process([]sql.Row{
		{"a", 1.0, int64(0)},
		{"a", -5.0, int64(0)}, // filtered
		{"b", 2.0, int64(0)},
		{"a", 3.0, int64(0)},
	})
	if len(rows) != 2 {
		t.Fatalf("shuffle rows = %v", rows)
	}
	// Tasks are independent: a second Process starts fresh (no carryover).
	rows2 := q.Pipelines[0].Process([]sql.Row{{"a", 1.0, int64(0)}})
	if len(rows2) != 1 {
		t.Fatalf("second task rows = %v", rows2)
	}
}

func TestPipelineConcurrentTasksAreIndependent(t *testing.T) {
	q := mustCompile(t, &logical.Aggregate{
		Child: scan("s"),
		Keys:  []sql.Expr{sql.Col("k")},
		Aggs:  []logical.NamedAgg{{Agg: sql.CountAll(), Name: "cnt"}},
	}, logical.Update)
	done := make(chan int, 2)
	for w := 0; w < 2; w++ {
		go func() {
			var rows []sql.Row
			for i := 0; i < 500; i++ {
				rows = append(rows, sql.Row{fmt.Sprintf("k%d", i%7), 1.0, int64(0)})
			}
			out := q.Pipelines[0].Process(rows)
			done <- len(out)
		}()
	}
	for i := 0; i < 2; i++ {
		if n := <-done; n != 7 {
			t.Errorf("concurrent task produced %d groups, want 7", n)
		}
	}
}

// ---------------------------------------------------------------- agg op

func buildAggOp(t *testing.T, mode logical.OutputMode) (*Query, *StatefulAggregate) {
	t.Helper()
	plan := &logical.Aggregate{
		Child: &logical.WithWatermark{Child: scan("s"), Column: "ts", Delay: 0},
		Keys:  []sql.Expr{sql.NewWindow(sql.Col("ts"), 10*time.Second, 0)},
		Aggs:  []logical.NamedAgg{{Agg: sql.CountAll(), Name: "cnt"}},
	}
	q := mustCompile(t, plan, mode)
	return q, q.Stateful.(*StatefulAggregate)
}

func TestStatefulAggregateAppendEmitsOncePerWindow(t *testing.T) {
	q, op := buildAggOp(t, logical.Append)
	store := openStore(t, "agg")
	shuffle := func(rows ...sql.Row) []sql.Row { return q.Pipelines[0].Process(rows) }

	// Epoch 0: window [0,10) gets data; watermark 0 → nothing emitted.
	out, err := op.Process(&EpochContext{Epoch: 0, Mode: logical.Append},
		store, [][]sql.Row{shuffle(sql.Row{"a", 1.0, 2 * sec}, sql.Row{"b", 1.0, 5 * sec})})
	if err != nil {
		t.Fatal(err)
	}
	store.Commit(0)
	if len(out) != 0 {
		t.Fatalf("premature emit: %v", out)
	}
	// Epoch 1: watermark 15s → window [0,10) finalizes with count 2.
	out, err = op.Process(&EpochContext{Epoch: 1, Watermark: 15 * sec, Mode: logical.Append},
		store, [][]sql.Row{nil})
	if err != nil {
		t.Fatal(err)
	}
	store.Commit(1)
	if len(out) != 1 || out[0][1] != int64(2) {
		t.Fatalf("out = %v", out)
	}
	// Epoch 2: same watermark → nothing re-emitted (state evicted).
	out, _ = op.Process(&EpochContext{Epoch: 2, Watermark: 15 * sec, Mode: logical.Append},
		store, [][]sql.Row{nil})
	store.Commit(2)
	if len(out) != 0 {
		t.Fatalf("window re-emitted: %v", out)
	}
	if store.NumKeys() != 0 {
		t.Errorf("state not evicted: %d keys", store.NumKeys())
	}
}

func TestStatefulAggregateDropsLateData(t *testing.T) {
	q, op := buildAggOp(t, logical.Append)
	store := openStore(t, "agg")
	shuffle := func(rows ...sql.Row) []sql.Row { return q.Pipelines[0].Process(rows) }
	// Watermark already at 30s; a record for window [0,10) is too late.
	out, err := op.Process(&EpochContext{Epoch: 0, Watermark: 30 * sec, Mode: logical.Append},
		store, [][]sql.Row{shuffle(sql.Row{"late", 1.0, 1 * sec})})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 || store.NumKeys() != 0 {
		t.Errorf("late data leaked: out=%v keys=%d", out, store.NumKeys())
	}
}

func TestStatefulAggregateCorruptState(t *testing.T) {
	_, op := buildAggOp(t, logical.Update)
	store := openStore(t, "agg")
	store.Put([]byte("somekey"), []byte{0xff, 0xff})
	_, err := op.Process(&EpochContext{Epoch: 0, Mode: logical.Complete}, store, [][]sql.Row{nil})
	if err == nil {
		t.Error("corrupt state should surface an error")
	}
}

// ---------------------------------------------------------------- dedup

func TestStreamingDedupEviction(t *testing.T) {
	op := &StreamingDedup{OpName: "d", EventIdx: 1, Out: sql.NewSchema(
		sql.Field{Name: "k", Type: sql.TypeString},
		sql.Field{Name: "ts", Type: sql.TypeTimestamp},
	)}
	store := openStore(t, "d")
	out, err := op.Process(&EpochContext{Epoch: 0}, store,
		[][]sql.Row{{{"a", 1 * sec}, {"a", 1 * sec}, {"b", 2 * sec}}})
	if err != nil || len(out) != 2 {
		t.Fatalf("out=%v err=%v", out, err)
	}
	store.Commit(0)
	// Watermark passes both keys: state evicted; the same row content with
	// a newer timestamp counts as a new row (different encoded key).
	out, _ = op.Process(&EpochContext{Epoch: 1, Watermark: 10 * sec}, store,
		[][]sql.Row{{{"a", 20 * sec}}})
	store.Commit(1)
	if len(out) != 1 {
		t.Fatalf("out = %v", out)
	}
	if store.NumKeys() != 1 {
		t.Errorf("keys = %d, want only the fresh one", store.NumKeys())
	}
	// A row older than the watermark is dropped entirely.
	out, _ = op.Process(&EpochContext{Epoch: 2, Watermark: 10 * sec}, store,
		[][]sql.Row{{{"z", 1 * sec}}})
	store.Commit(2)
	if len(out) != 0 {
		t.Errorf("late dedup row emitted: %v", out)
	}
}

// ---------------------------------------------------------------- join op

func TestStreamStreamJoinStateEncoding(t *testing.T) {
	entries := []joinEntry{
		{row: sql.Row{"a", 1.5}, matched: true, ts: 42},
		{row: sql.Row{nil, int64(-7)}, matched: false, ts: -1},
	}
	decoded, err := decodeEntries(encodeEntries(entries))
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 2 || decoded[0].ts != 42 || !decoded[0].matched || decoded[1].row[1] != int64(-7) {
		t.Fatalf("decoded = %+v", decoded)
	}
	if _, err := decodeEntries([]byte{0xff}); err == nil {
		t.Error("corrupt entries should error")
	}
}

func TestStreamStreamJoinNullKeysNeverMatch(t *testing.T) {
	op := &StreamStreamJoin{
		OpName: "j", Type: logical.InnerJoin,
		LeftArity: 2, RightArity: 2,
		LeftEventIdx: -1, RightEventIdx: -1,
	}
	store := openStore(t, "j")
	left := []sql.Row{JoinShuffleRow([]sql.Value{nil}, -1, sql.Row{nil, "L"})}
	right := []sql.Row{JoinShuffleRow([]sql.Value{nil}, -1, sql.Row{nil, "R"})}
	out, err := op.Process(&EpochContext{Epoch: 0}, store, [][]sql.Row{left, right})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("NULL keys matched: %v", out)
	}
	if store.NumKeys() != 0 {
		t.Errorf("NULL-keyed rows buffered: %d", store.NumKeys())
	}
}

func TestStreamStreamJoinWatermarkEviction(t *testing.T) {
	op := &StreamStreamJoin{
		OpName: "j", Type: logical.LeftOuterJoin,
		LeftArity: 2, RightArity: 2,
		LeftEventIdx: 1, RightEventIdx: 1,
	}
	store := openStore(t, "j")
	// Left row buffered, no match.
	left := []sql.Row{JoinShuffleRow([]sql.Value{"k"}, 1*sec, sql.Row{"k", 1 * sec})}
	out, err := op.Process(&EpochContext{Epoch: 0}, store, [][]sql.Row{left, nil})
	if err != nil || len(out) != 0 {
		t.Fatalf("out=%v err=%v", out, err)
	}
	store.Commit(0)
	// Watermark passes: unmatched left row emitted null-padded, evicted.
	out, err = op.Process(&EpochContext{Epoch: 1, Watermark: 5 * sec}, store, [][]sql.Row{nil, nil})
	if err != nil || len(out) != 1 {
		t.Fatalf("out=%v err=%v", out, err)
	}
	if out[0][0] != "k" || out[0][2] != nil {
		t.Errorf("padded row = %v", out[0])
	}
	if store.NumKeys() != 0 {
		t.Errorf("state not evicted")
	}
}

// ---------------------------------------------------------------- mgws

func TestFlatMapGroupsStateEncoding(t *testing.T) {
	row, timeout, et, err := decodeGroupState(encodeGroupState(sql.Row{"x", int64(3)}, 99, true))
	if err != nil || row[1] != int64(3) || timeout != 99 || !et {
		t.Fatalf("decoded %v %d %v err=%v", row, timeout, et, err)
	}
	if _, _, _, err := decodeGroupState([]byte{1}); err == nil {
		t.Error("corrupt group state should error")
	}
}

func TestFlatMapGroupsProcessingTimeTimeout(t *testing.T) {
	fired := map[string]bool{}
	op := &FlatMapGroupsWithState{
		OpName: "m", NumKeys: 1, InArity: 2,
		Timeout: logical.ProcessingTimeTimeout,
		Out:     sql.NewSchema(sql.Field{Name: "k", Type: sql.TypeString}),
		Func: func(key sql.Row, values []sql.Row, gs logical.GroupState) []sql.Row {
			if gs.HasTimedOut() {
				fired[key[0].(string)] = true
				gs.Remove()
				return []sql.Row{{key[0]}}
			}
			gs.Update(sql.Row{int64(len(values))})
			gs.SetTimeoutDuration(time.Second)
			return nil
		},
	}
	store := openStore(t, "m")
	in := []sql.Row{{"a", "a", 1.0}} // [key, payload...]
	if _, err := op.Process(&EpochContext{Epoch: 0, ProcTime: 0}, store, [][]sql.Row{in}); err != nil {
		t.Fatal(err)
	}
	store.Commit(0)
	// Processing time advances past the 1s timeout → callback fires.
	out, err := op.Process(&EpochContext{Epoch: 1, ProcTime: 2_000_000}, store, [][]sql.Row{nil})
	if err != nil {
		t.Fatal(err)
	}
	if !fired["a"] || len(out) != 1 {
		t.Errorf("timeout did not fire: fired=%v out=%v", fired, out)
	}
	store.Commit(1)
	// Fired timeouts clear; no double fire.
	out, _ = op.Process(&EpochContext{Epoch: 2, ProcTime: 9_000_000}, store, [][]sql.Row{nil})
	if len(out) != 0 {
		t.Errorf("timeout fired twice: %v", out)
	}
}

// ---------------------------------------------------------------- compile

func TestCompileRejectsTwoStatefulOps(t *testing.T) {
	plan := &logical.Aggregate{
		Child: &logical.Distinct{Child: scan("s")},
		Keys:  []sql.Expr{sql.Col("k")},
		Aggs:  []logical.NamedAgg{{Agg: sql.CountAll(), Name: "c"}},
	}
	analyzed, err := analysis.Analyze(plan)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Compile(analyzed, logical.Update, nil)
	if err == nil || !strings.Contains(err.Error(), "stateful") {
		t.Errorf("err = %v", err)
	}
}

func TestCompileRejectsWatermarkOnDerivedColumn(t *testing.T) {
	plan := &logical.Aggregate{
		Child: &logical.WithWatermark{
			Child: &logical.Project{Child: scan("s"), Exprs: []sql.Expr{
				sql.As(sql.Add(sql.Col("ts"), sql.IntervalLit(1)), "shifted"),
				sql.Col("k"),
			}},
			Column: "shifted", Delay: 0,
		},
		Keys: []sql.Expr{sql.Col("k")},
		Aggs: []logical.NamedAgg{{Agg: sql.CountAll(), Name: "c"}},
	}
	analyzed, err := analysis.Analyze(plan)
	if err != nil {
		t.Fatal(err)
	}
	if _, err = Compile(analyzed, logical.Update, nil); err == nil {
		t.Error("watermark on a derived column should be rejected with a clear error")
	}
}

func TestCompileStreamStaticJoinNeedsResolver(t *testing.T) {
	static := &logical.Scan{Name: "t", Out: sql.NewSchema(sql.Field{Name: "k2", Type: sql.TypeString})}
	plan := &logical.Join{Left: scan("s"), Right: static, Type: logical.InnerJoin,
		Cond: sql.Eq(sql.Col("k"), sql.Col("k2"))}
	analyzed, err := analysis.Analyze(plan)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(analyzed, logical.Append, nil); err == nil {
		t.Error("stream-static join without a resolver should fail")
	}
}

func TestCompileStreamStreamJoinNeedsEquiKey(t *testing.T) {
	other := &logical.SubqueryAlias{Child: scan("s2"), Alias: "r"}
	this := &logical.SubqueryAlias{Child: scan("s"), Alias: "l"}
	plan := &logical.Join{Left: this, Right: other, Type: logical.InnerJoin,
		Cond: sql.Gt(sql.Col("l.v"), sql.Col("r.v"))}
	analyzed, err := analysis.Analyze(plan)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(analyzed, logical.Append, nil); err == nil {
		t.Error("stream-stream join without an equality predicate should fail")
	}
}

func TestCompileMapOnlyQueryHasIdentityPost(t *testing.T) {
	plan := &logical.Project{Child: scan("s"), Exprs: []sql.Expr{sql.Col("k")}}
	q := mustCompile(t, plan, logical.Append)
	if q.Stateful != nil || len(q.Pipelines) != 1 {
		t.Fatalf("query = %+v", q)
	}
	rows, err := q.Post([]sql.Row{{"x"}})
	if err != nil || len(rows) != 1 {
		t.Fatalf("post: %v %v", rows, err)
	}
	if q.OutSchema.Len() != 1 || q.OutSchema.Field(0).Name != "k" {
		t.Errorf("schema = %s", q.OutSchema)
	}
}

func TestPostStageAppliesHavingAndProjection(t *testing.T) {
	plan := &logical.Project{
		Child: &logical.Filter{
			Child: &logical.Aggregate{
				Child: scan("s"),
				Keys:  []sql.Expr{sql.Col("k")},
				Aggs:  []logical.NamedAgg{{Agg: sql.CountAll(), Name: "cnt"}},
			},
			Cond: sql.Gt(sql.Col("cnt"), sql.Lit(1)),
		},
		Exprs: []sql.Expr{sql.As(sql.Col("k"), "key")},
	}
	q := mustCompile(t, plan, logical.Update)
	rows, err := q.Post([]sql.Row{{"a", int64(1)}, {"b", int64(5)}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0] != "b" {
		t.Fatalf("post rows = %v", rows)
	}
}

func TestCompileStreamStaticJoinPipeline(t *testing.T) {
	staticSchema := sql.NewSchema(
		sql.Field{Name: "k2", Type: sql.TypeString},
		sql.Field{Name: "label", Type: sql.TypeString},
	)
	staticRows := []sql.Row{{"a", "A"}, {"b", "B"}}
	static := &logical.Scan{Name: "dim", Out: staticSchema, Handle: staticRows}
	resolver := func(s *logical.Scan) (physical.RowSource, error) {
		return physical.NewSliceSource(s.Out, s.Handle.([]sql.Row)), nil
	}
	plan := &logical.Project{
		Child: &logical.Join{Left: scan("s"), Right: static, Type: logical.LeftOuterJoin,
			Cond: sql.Eq(sql.Col("k"), sql.Col("k2"))},
		Exprs: []sql.Expr{sql.Col("k"), sql.Col("label")},
	}
	analyzed, err := analysis.Analyze(plan)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Compile(optimizer.Optimize(analyzed), logical.Append, resolver)
	if err != nil {
		t.Fatal(err)
	}
	out := q.Pipelines[0].Process([]sql.Row{
		{"a", 1.0, int64(0)},
		{"zzz", 1.0, int64(0)}, // unmatched: null-padded (left outer)
		{nil, 1.0, int64(0)},   // NULL key: preserved, never matches
	})
	if len(out) != 3 {
		t.Fatalf("out = %v", out)
	}
	byKey := map[any]any{}
	for _, r := range out {
		byKey[r[0]] = r[1]
	}
	if byKey["a"] != "A" || byKey["zzz"] != nil || byKey[nil] != nil {
		t.Errorf("out = %v", out)
	}
}

func TestCompileStreamStaticSemiAntiJoin(t *testing.T) {
	staticSchema := sql.NewSchema(sql.Field{Name: "k2", Type: sql.TypeString})
	static := &logical.Scan{Name: "dim", Out: staticSchema, Handle: []sql.Row{{"a"}}}
	resolver := func(s *logical.Scan) (physical.RowSource, error) {
		return physical.NewSliceSource(s.Out, s.Handle.([]sql.Row)), nil
	}
	for _, tc := range []struct {
		typ  logical.JoinType
		want string
	}{
		{logical.LeftSemiJoin, "a"},
		{logical.LeftAntiJoin, "b"},
	} {
		plan := &logical.Join{Left: scan("s"), Right: static, Type: tc.typ,
			Cond: sql.Eq(sql.Col("k"), sql.Col("k2"))}
		analyzed, err := analysis.Analyze(plan)
		if err != nil {
			t.Fatal(err)
		}
		q, err := Compile(optimizer.Optimize(analyzed), logical.Append, resolver)
		if err != nil {
			t.Fatal(err)
		}
		out := q.Pipelines[0].Process([]sql.Row{
			{"a", 1.0, int64(0)}, {"b", 2.0, int64(0)},
		})
		if len(out) != 1 || out[0][0] != tc.want {
			t.Errorf("%s: out = %v, want key %s", tc.typ, out, tc.want)
		}
		// Semi/anti output keeps the stream schema only.
		if q.Stateful != nil || len(out[0]) != 3 {
			t.Errorf("%s: schema/arity wrong: %v", tc.typ, out)
		}
	}
}

func TestCompileDistinctWithKeyColumns(t *testing.T) {
	plan := &logical.Distinct{Child: scan("s"), Cols: []string{"k"}}
	q := mustCompile(t, plan, logical.Append)
	dedup := q.Stateful.(*StreamingDedup)
	if len(dedup.KeyIdxs) != 1 || dedup.KeyIdxs[0] != 0 {
		t.Fatalf("key idxs = %v", dedup.KeyIdxs)
	}
	store := openStore(t, "dd")
	out, err := dedup.Process(&EpochContext{Epoch: 0}, store, [][]sql.Row{{
		{"a", 1.0, int64(0)}, {"a", 99.0, int64(5)}, {"b", 2.0, int64(0)},
	}})
	if err != nil || len(out) != 2 {
		t.Fatalf("out=%v err=%v", out, err)
	}
	// First row per key wins.
	if out[0][1] != 1.0 {
		t.Errorf("representative row = %v", out[0])
	}
	// Routing uses the key column.
	if len(q.Pipelines[0].KeyEvals) != 1 {
		t.Errorf("route arity = %d", len(q.Pipelines[0].KeyEvals))
	}
}

func TestCompileMapGroupsPipelineShape(t *testing.T) {
	mg := &logical.MapGroups{
		Child:    scan("s"),
		Keys:     []sql.Expr{sql.Col("k")},
		KeyNames: []string{"k"},
		Func: func(key sql.Row, values []sql.Row, gs logical.GroupState) []sql.Row {
			return []sql.Row{{key[0], int64(len(values))}}
		},
		Out: sql.NewSchema(
			sql.Field{Name: "k", Type: sql.TypeString},
			sql.Field{Name: "n", Type: sql.TypeInt64},
		),
	}
	q := mustCompile(t, mg, logical.Update)
	if q.KeyArity != 1 {
		t.Errorf("KeyArity = %d (output leads with the key)", q.KeyArity)
	}
	// Shuffle rows are [key, fullRow...].
	rows := q.Pipelines[0].Process([]sql.Row{{"a", 1.0, int64(7)}})
	if len(rows) != 1 || len(rows[0]) != 4 || rows[0][0] != "a" || rows[0][3] != int64(7) {
		t.Fatalf("shuffle row = %v", rows[0])
	}
	op := q.Stateful.(*FlatMapGroupsWithState)
	store := openStore(t, op.Name())
	out, err := op.Process(&EpochContext{Epoch: 0}, store, [][]sql.Row{rows})
	if err != nil || len(out) != 1 || out[0][1] != int64(1) {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestProcessToRoutesWithoutMaterializing(t *testing.T) {
	plan := &logical.Project{Child: scan("s"), Exprs: []sql.Expr{sql.Col("k")}}
	q := mustCompile(t, plan, logical.Append)
	var got []sql.Row
	q.Pipelines[0].ProcessTo([]sql.Row{{"x", 1.0, int64(0)}, {"y", 2.0, int64(0)}},
		func(r sql.Row) { got = append(got, r) })
	if len(got) != 2 || got[1][0] != "y" {
		t.Fatalf("got = %v", got)
	}
}
