package incremental

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"structream/internal/sql"
	"structream/internal/sql/logical"
	"structream/internal/sql/vec"
)

// The differential suite drives the same data through a pipeline's row
// path (Process) and its columnar path (FromRows + ProcessBatchTo) and
// requires byte-identical output, in order. It also pins the fallback
// contract: query shapes outside the kernel set must leave the vector
// plan nil or partial, and partial plans must still produce identical
// results via materialize-then-row-stages.

var diffSchema = sql.NewSchema(
	sql.Field{Name: "k", Type: sql.TypeString},
	sql.Field{Name: "n", Type: sql.TypeInt64},
	sql.Field{Name: "v", Type: sql.TypeFloat64},
	sql.Field{Name: "b", Type: sql.TypeBool},
	sql.Field{Name: "ts", Type: sql.TypeTimestamp},
)

func diffScan() *logical.Scan {
	return &logical.Scan{Name: "d", Streaming: true, Out: diffSchema}
}

// diffRows draws schema-conforming rows with nulls and adversarial
// numerics (NaN, infinities, extremes, zeros).
func diffRows(rng *rand.Rand, n int) []sql.Row {
	keys := []string{"", "a", "b", "cc", "Aa"}
	ints := []int64{0, 1, -1, 42, math.MaxInt64, math.MinInt64}
	floats := []float64{0, 0.5, -1.25, 100, math.NaN(), math.Inf(1), math.Inf(-1)}
	rows := make([]sql.Row, n)
	for i := range rows {
		r := make(sql.Row, 5)
		if rng.Intn(6) != 0 {
			r[0] = keys[rng.Intn(len(keys))]
		}
		if rng.Intn(6) != 0 {
			r[1] = ints[rng.Intn(len(ints))]
		}
		if rng.Intn(6) != 0 {
			r[2] = floats[rng.Intn(len(floats))]
		}
		if rng.Intn(6) != 0 {
			r[3] = rng.Intn(2) == 0
		}
		if rng.Intn(6) != 0 {
			r[4] = int64(rng.Intn(100)) * sec
		}
		rows[i] = r
	}
	return rows
}

// normalizeRow maps NaN to a comparable sentinel so DeepEqual can
// compare rows containing NaN cells.
func normalizeRows(rows []sql.Row) []sql.Row {
	out := make([]sql.Row, len(rows))
	for i, r := range rows {
		nr := make(sql.Row, len(r))
		for c, v := range r {
			if f, ok := v.(float64); ok && math.IsNaN(f) {
				nr[c] = "NaN"
			} else {
				nr[c] = v
			}
		}
		out[i] = nr
	}
	return out
}

// runBoth executes the pipeline's row and columnar paths over rows and
// fails the test on any divergence. Returns false when the pipeline has
// no vector plan (nothing columnar to compare).
func runBoth(t *testing.T, p *Pipeline, rows []sql.Row) bool {
	t.Helper()
	rowOut := p.Process(rows)
	if p.Vec == nil {
		return false
	}
	b, ok := vec.FromRows(diffSchema, rows)
	if !ok {
		t.Fatal("FromRows failed on schema-conforming rows")
	}
	var vecOut []sql.Row
	p.ProcessBatchTo(b, func(r sql.Row) { vecOut = append(vecOut, r.Clone()) })
	got, want := normalizeRows(vecOut), normalizeRows(rowOut)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("columnar path diverged:\n row path (%d): %v\n vec path (%d): %v",
			len(want), want, len(got), got)
	}
	return true
}

// fixed shapes covering each vectorizable stage type, including the
// map-side partial aggregation.
func TestDifferentialFixedShapes(t *testing.T) {
	shapes := map[string]logical.Plan{
		"filter-int": &logical.Filter{Child: diffScan(),
			Cond: sql.Ge(sql.Col("n"), sql.Lit(int64(0)))},
		"filter-logic": &logical.Filter{Child: diffScan(),
			Cond: sql.And(sql.Gt(sql.Col("v"), sql.Lit(0.0)),
				sql.Or(sql.Col("b"), sql.IsNull(sql.Col("k"))))},
		"project-arith": &logical.Project{Child: diffScan(),
			Exprs: []sql.Expr{sql.Col("k"),
				sql.As(sql.Add(sql.Mul(sql.Col("n"), sql.Lit(int64(3))), sql.Lit(int64(1))), "m"),
				sql.As(sql.Div(sql.Col("v"), sql.Lit(2.0)), "h"),
				sql.As(sql.NewBinary(sql.OpMod, sql.Col("n"), sql.Lit(int64(7))), "r")}},
		"project-concat": &logical.Project{Child: diffScan(),
			Exprs: []sql.Expr{sql.As(sql.Add(sql.Col("k"), sql.Lit("!")), "kx"), sql.Col("n")}},
		"filter-project": &logical.Project{
			Child: &logical.Filter{Child: diffScan(),
				Cond: sql.IsNotNull(sql.Col("v"))},
			Exprs: []sql.Expr{sql.Col("v"), sql.As(sql.Neg(sql.Col("n")), "neg")}},
		"agg-count-sum": &logical.Aggregate{
			Child: &logical.Filter{Child: diffScan(),
				Cond: sql.Ne(sql.Col("k"), sql.Lit("b"))},
			Keys: []sql.Expr{sql.Col("k")},
			Aggs: []logical.NamedAgg{
				{Agg: sql.CountAll(), Name: "cnt"},
				{Agg: sql.SumOf(sql.Col("v")), Name: "total"}}},
	}
	for name, plan := range shapes {
		t.Run(name, func(t *testing.T) {
			mode := logical.Append
			if _, isAgg := plan.(*logical.Aggregate); isAgg {
				mode = logical.Complete
			}
			q := mustCompile(t, plan, mode)
			p := q.Pipelines[0]
			if p.Vec == nil {
				t.Fatal("shape did not vectorize at all")
			}
			if len(p.Vec.Ops) != len(p.Stages) && p.Vec.Agg == nil {
				t.Fatalf("vector plan covers %d/%d stages", len(p.Vec.Ops), len(p.Stages))
			}
			rng := rand.New(rand.NewSource(42))
			for trial := 0; trial < 10; trial++ {
				runBoth(t, p, diffRows(rng, 50+rng.Intn(100)))
			}
			// Empty and single-row batches exercise the boundary cases.
			runBoth(t, p, nil)
			runBoth(t, p, diffRows(rng, 1))
		})
	}
}

// fallback-forcing shapes: the vector plan must stop short (or never
// start), and the hybrid prefix+row execution must still be identical.
func TestDifferentialFallbackShapes(t *testing.T) {
	type shape struct {
		plan   logical.Plan
		vecOps int // expected len(Vec.Ops); -1 means Vec must be nil
		mode   logical.OutputMode
	}
	shapes := map[string]shape{
		// LIKE has no kernel: the leading filter seals an empty plan.
		"like-first": {plan: &logical.Filter{Child: diffScan(),
			Cond: sql.NewBinary(sql.OpLike, sql.Col("k"), sql.Lit("a%"))},
			vecOps: -1, mode: logical.Append},
		// A vectorizable filter before a row-only projection keeps a
		// one-op prefix (adjacent filters would be merged by the
		// optimizer, so the seal is demonstrated across stage kinds).
		"filter-then-cast": {plan: &logical.Project{
			Child: &logical.Filter{Child: diffScan(),
				Cond: sql.Ge(sql.Col("n"), sql.Lit(int64(-10)))},
			Exprs: []sql.Expr{sql.Col("k"),
				sql.As(sql.NewCast(sql.Col("n"), sql.TypeString), "s")}},
			vecOps: 1, mode: logical.Append},
		// CAST has no kernel either.
		"cast-project": {plan: &logical.Project{Child: diffScan(),
			Exprs: []sql.Expr{sql.As(sql.NewCast(sql.Col("n"), sql.TypeString), "s")}},
			vecOps: -1, mode: logical.Append},
		// A stage after the seal must NOT be picked up out of order.
		"like-then-project": {plan: &logical.Project{
			Child: &logical.Filter{Child: diffScan(),
				Cond: sql.NewBinary(sql.OpLike, sql.Col("k"), sql.Lit("%"))},
			Exprs: []sql.Expr{sql.Col("n")}},
			vecOps: -1, mode: logical.Append},
	}
	for name, s := range shapes {
		t.Run(name, func(t *testing.T) {
			q := mustCompile(t, s.plan, s.mode)
			p := q.Pipelines[0]
			switch {
			case s.vecOps < 0:
				if p.Vec != nil && len(p.Vec.Ops) > 0 {
					t.Fatalf("expected no vector plan, got %d ops", len(p.Vec.Ops))
				}
			default:
				if p.Vec == nil || len(p.Vec.Ops) != s.vecOps {
					t.Fatalf("expected a %d-op prefix, got %+v", s.vecOps, p.Vec)
				}
				if len(p.Vec.Ops) >= len(p.Stages) {
					t.Fatalf("prefix unexpectedly covers all %d stages", len(p.Stages))
				}
			}
			rng := rand.New(rand.NewSource(7))
			for trial := 0; trial < 10; trial++ {
				runBoth(t, p, diffRows(rng, 80))
			}
		})
	}
}

// TestDifferentialRandomQueries fuzzes whole pipelines: random
// filter/project chains over random data, byte-identical output
// required whenever anything vectorized.
func TestDifferentialRandomQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	numExpr := func(depth int) sql.Expr { return randNumExpr(rng, depth) }
	compared := 0
	for trial := 0; trial < 120; trial++ {
		var plan logical.Plan = diffScan()
		for stages := 1 + rng.Intn(3); stages > 0; stages-- {
			if rng.Intn(2) == 0 {
				plan = &logical.Filter{Child: plan,
					Cond: sql.NewBinary(sql.BinOp(rng.Intn(6)), numExpr(1), numExpr(1))}
			} else {
				plan = &logical.Project{Child: plan, Exprs: []sql.Expr{
					sql.As(numExpr(2), "a"),
					sql.As(numExpr(1), "b"),
					sql.Col("k"),
					sql.Col("n"), sql.Col("v"), sql.Col("ts"),
				}}
			}
		}
		q := mustCompile(t, plan, logical.Append)
		if runBoth(t, q.Pipelines[0], diffRows(rng, 60)) {
			compared++
		}
	}
	if compared < 60 {
		t.Fatalf("only %d/120 random queries vectorized — fuzz coverage collapsed", compared)
	}
}

// randNumExpr builds numeric expressions over the differential schema.
func randNumExpr(rng *rand.Rand, depth int) sql.Expr {
	if depth <= 0 {
		switch rng.Intn(4) {
		case 0:
			return sql.Col("n")
		case 1:
			return sql.Col("v")
		case 2:
			return sql.Lit(int64(rng.Intn(9) - 4))
		default:
			return sql.Lit(float64(rng.Intn(7)) - 2.5)
		}
	}
	ops := []sql.BinOp{sql.OpAdd, sql.OpSub, sql.OpMul, sql.OpDiv, sql.OpMod}
	return sql.NewBinary(ops[rng.Intn(len(ops))], randNumExpr(rng, depth-1), randNumExpr(rng, depth-1))
}
