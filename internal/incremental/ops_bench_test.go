package incremental

import (
	"fmt"
	"math/rand"
	"testing"

	"structream/internal/sql"
	"structream/internal/sql/vec"
)

// Micro-benchmarks for the map-side partial aggregator: the per-row update
// path (whose group hits now compare cached key bytes instead of
// re-rendering the key), and the columnar updateBatch (grouping pass +
// bulk kernels, no per-row boxing).

func benchAggs() []sql.BoundAgg {
	countAll := sql.BoundAgg{Kind: sql.AggCountAll, ResultType: sql.TypeInt64}
	sum := sql.BoundAgg{
		Kind:       sql.AggSum,
		Input:      func(r sql.Row) sql.Value { return r[1] },
		ResultType: sql.TypeFloat64,
	}
	return []sql.BoundAgg{countAll, sum}
}

func benchRows(n, keys int) []sql.Row {
	rng := rand.New(rand.NewSource(1))
	rows := make([]sql.Row, n)
	for i := range rows {
		rows[i] = sql.Row{fmt.Sprintf("key-%05d", rng.Intn(keys)), rng.Float64() * 100}
	}
	return rows
}

var benchSchema = sql.NewSchema(
	sql.Field{Name: "k", Type: sql.TypeString},
	sql.Field{Name: "v", Type: sql.TypeFloat64},
)

// BenchmarkPartialAggUpdate measures the row path: one update per row,
// hot-path dominated by key encode + hash-table hit.
func BenchmarkPartialAggUpdate(b *testing.B) {
	for _, keys := range []int{16, 4096} {
		b.Run(fmt.Sprintf("keys=%d", keys), func(b *testing.B) {
			rows := benchRows(8192, keys)
			keyEval := []func(sql.Row) sql.Value{func(r sql.Row) sql.Value { return r[0] }}
			aggs := benchAggs()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := newPartialAgg(keyEval, aggs)
				for _, r := range rows {
					p.update(r)
				}
				if len(p.groups) == 0 {
					b.Fatal("no groups")
				}
			}
			b.SetBytes(8192)
		})
	}
}

// BenchmarkPartialAggUpdateBatch measures the columnar path over the same
// data: batch grouping pass plus bulk count/sum kernels.
func BenchmarkPartialAggUpdateBatch(b *testing.B) {
	for _, keys := range []int{16, 4096} {
		b.Run(fmt.Sprintf("keys=%d", keys), func(b *testing.B) {
			rows := benchRows(8192, keys)
			batch, ok := vec.FromRows(benchSchema, rows)
			if !ok {
				b.Fatal("FromRows failed")
			}
			keyProg, ok := vec.Compile(sql.Col("k"), benchSchema)
			if !ok {
				b.Fatal("key compile failed")
			}
			inProg, ok := vec.Compile(sql.Col("v"), benchSchema)
			if !ok {
				b.Fatal("input compile failed")
			}
			aggs := benchAggs()
			plan := &VecAggPlan{
				KeyProgs:   []*vec.Program{keyProg},
				InputProgs: []*vec.Program{nil, inProg},
				Aggs:       aggs,
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := newPartialAgg(nil, aggs)
				p.updateBatch(batch, plan)
				if len(p.groups) == 0 {
					b.Fatal("no groups")
				}
			}
			b.SetBytes(8192)
		})
	}
}
