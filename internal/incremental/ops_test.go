package incremental

import (
	"fmt"
	"testing"

	"structream/internal/sql"
	"structream/internal/sql/codec"
)

// TestLookupHashedCollisions pins the open-chained group table: two keys
// forced onto the same hash slot must land in one chain, resolve to
// distinct groups, and keep first-seen emission order.
func TestLookupHashedCollisions(t *testing.T) {
	p := newPartialAgg(nil, benchAggs())
	add := func(v string) int32 {
		const h = uint64(42) // same slot for every key: worst-case chaining
		gi := p.lookupHashed(h, []byte(v))
		if g := &p.groups[gi]; g.key == nil {
			g.key = []sql.Value{v}
		}
		return gi
	}
	ga := add("a")
	gb := add("b")
	gc := add("c")
	if ga == gb || gb == gc || ga == gc {
		t.Fatalf("colliding keys shared a group: %d %d %d", ga, gb, gc)
	}
	// Hits resolve through the chain to the original groups.
	if got := add("a"); got != ga {
		t.Fatalf("re-lookup a = %d, want %d", got, ga)
	}
	if got := add("c"); got != gc {
		t.Fatalf("re-lookup c = %d, want %d", got, gc)
	}
	if len(p.groups) != 3 {
		t.Fatalf("slab has %d groups, want 3", len(p.groups))
	}
	// Emission order is first-seen order, and each group cached its key
	// bytes.
	for i, want := range []string{"a", "b", "c"} {
		g := p.groups[i]
		if string(g.keyBytes) != want {
			t.Fatalf("group %d cached key %q, want %q", i, g.keyBytes, want)
		}
		if g.key[0] != sql.Value(want) {
			t.Fatalf("group %d boxed key %v, want %v", i, g.key[0], want)
		}
	}
}

// TestScatterMatchesRowRouting pins that scatter's cached-key routing
// agrees with the row path's boxed HashKey routing for every group.
func TestScatterMatchesRowRouting(t *testing.T) {
	p := newPartialAgg(
		[]func(sql.Row) sql.Value{func(r sql.Row) sql.Value { return r[0] }},
		benchAggs(),
	)
	for i := 0; i < 64; i++ {
		var k sql.Value
		if i%7 != 0 {
			k = fmt.Sprintf("key-%d", i%13)
		}
		p.update(sql.Row{k, float64(i)})
	}
	const nPart = 4
	buckets := p.scatter(nPart)
	// Rebuild the row path's routing from the rendered shuffle rows: key
	// columns lead the row, exactly as routeByLeadingColumns guarantees.
	want := make([][]sql.Row, nPart)
	for gi := range p.groups {
		row := p.renderRow(&p.groups[gi])
		b := int(codec.HashKey(row[:1]) % uint64(nPart))
		want[b] = append(want[b], row)
	}
	for part := 0; part < nPart; part++ {
		if len(buckets[part]) != len(want[part]) {
			t.Fatalf("partition %d: scatter %d rows, row routing %d", part, len(buckets[part]), len(want[part]))
		}
		for i := range buckets[part] {
			if buckets[part][i].String() != want[part][i].String() {
				t.Fatalf("partition %d row %d: %v vs %v", part, i, buckets[part][i], want[part][i])
			}
		}
	}
}
