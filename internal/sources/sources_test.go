package sources

import (
	"os"
	"path/filepath"
	"testing"

	"structream/internal/msgbus"
	"structream/internal/sql"
	"structream/internal/sql/codec"
)

var testSchema = sql.NewSchema(
	sql.Field{Name: "id", Type: sql.TypeInt64},
	sql.Field{Name: "name", Type: sql.TypeString},
)

func TestOffsetsHelpers(t *testing.T) {
	o := Offsets{1, 2, 3}
	c := o.Clone()
	c[0] = 99
	if o[0] != 1 {
		t.Error("Clone must not alias")
	}
	if !o.Equal(Offsets{1, 2, 3}) || o.Equal(Offsets{1, 2}) || o.Equal(Offsets{1, 2, 4}) {
		t.Error("Equal broken")
	}
	if o.Total() != 6 {
		t.Error("Total broken")
	}
}

func TestBusSource(t *testing.T) {
	b := msgbus.NewBroker()
	topic, _ := b.CreateTopic("events", 2)
	src := NewCodecBusSource("events", topic, testSchema)
	if src.Partitions() != 2 || src.Name() != "events" {
		t.Fatal("metadata wrong")
	}
	topic.Append(0, msgbus.Record{Value: codec.EncodeRow(sql.Row{int64(1), "a"})})
	topic.Append(0, msgbus.Record{Value: codec.EncodeRow(sql.Row{int64(2), "b"})})
	topic.Append(1, msgbus.Record{Value: codec.EncodeRow(sql.Row{int64(3), "c"})})

	latest, err := src.Latest()
	if err != nil || latest[0] != 2 || latest[1] != 1 {
		t.Fatalf("latest = %v err=%v", latest, err)
	}
	rows, err := src.Read(0, 0, 2)
	if err != nil || len(rows) != 2 || rows[1][1] != "b" {
		t.Fatalf("rows = %v err=%v", rows, err)
	}
	// Replay: same range, same rows.
	rows2, _ := src.Read(0, 0, 2)
	if rows2[0][0] != rows[0][0] {
		t.Error("replay mismatch")
	}
	// Corrupt records are skipped, not fatal.
	topic.Append(1, msgbus.Record{Value: []byte("garbage")})
	rows3, err := src.Read(1, 0, 2)
	if err != nil || len(rows3) != 1 {
		t.Errorf("rows3 = %v err=%v", rows3, err)
	}
}

func TestMemorySource(t *testing.T) {
	src := NewMemorySource("mem", testSchema)
	src.AddData(sql.Row{1, "x"}, sql.Row{2, "y"}) // plain ints get normalized
	latest, _ := src.Latest()
	if latest[0] != 2 {
		t.Fatalf("latest = %v", latest)
	}
	rows, err := src.Read(0, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0] != int64(1) {
		t.Errorf("normalization failed: %T", rows[0][0])
	}
	if _, err := src.Read(0, 0, 5); err == nil {
		t.Error("out-of-bounds read should error")
	}
	if _, err := src.Read(1, 0, 1); err == nil {
		t.Error("bad partition should error")
	}
	earliest, _ := src.Earliest()
	if earliest[0] != 0 {
		t.Error("earliest should be 0")
	}
}

func writeJSONFile(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestFileSource(t *testing.T) {
	dir := t.TempDir()
	schema := sql.NewSchema(
		sql.Field{Name: "country", Type: sql.TypeString},
		sql.Field{Name: "clicks", Type: sql.TypeInt64},
		sql.Field{Name: "time", Type: sql.TypeTimestamp},
	)
	src := NewFileSource("json", dir, schema)
	latest, err := src.Latest()
	if err != nil || latest[0] != 0 {
		t.Fatalf("latest on empty dir = %v err=%v", latest, err)
	}
	writeJSONFile(t, dir, "a.json", `{"country":"CA","clicks":3,"time":"2018-06-10T00:00:00Z"}
{"country":"US","clicks":5}
`)
	writeJSONFile(t, dir, "_hidden.json", `{"country":"XX"}`)
	writeJSONFile(t, dir, "b.json.tmp", `{"country":"YY"}`)
	latest, _ = src.Latest()
	if latest[0] != 1 {
		t.Fatalf("latest = %v (hidden/tmp files must be ignored)", latest)
	}
	rows, err := src.Read(0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][0] != "CA" || rows[0][1] != int64(3) {
		t.Fatalf("rows = %v", rows)
	}
	if rows[1][2] != nil {
		t.Error("missing field should be NULL")
	}
	if ts, ok := rows[0][2].(int64); !ok || ts <= 0 {
		t.Errorf("timestamp coercion = %v", rows[0][2])
	}
	// New file appears → new offset; earlier offsets still return the same
	// data (stable discovery order).
	writeJSONFile(t, dir, "b.json", `{"country":"DE","clicks":1}`)
	latest, _ = src.Latest()
	if latest[0] != 2 {
		t.Fatalf("latest = %v", latest)
	}
	again, _ := src.Read(0, 0, 1)
	if len(again) != 2 || again[0][0] != "CA" {
		t.Error("replay of file range changed")
	}
	rows2, _ := src.Read(0, 1, 2)
	if len(rows2) != 1 || rows2[0][0] != "DE" {
		t.Errorf("rows2 = %v", rows2)
	}
}

func TestFileSourceBadJSON(t *testing.T) {
	dir := t.TempDir()
	src := NewFileSource("json", dir, testSchema)
	writeJSONFile(t, dir, "bad.json", "{not json\n")
	src.Latest()
	if _, err := src.Read(0, 0, 1); err == nil {
		t.Error("bad JSON should surface an error (the §7.2 scenario)")
	}
}

func TestRateSourceDeterministic(t *testing.T) {
	src := NewRateSource("rate", 4, 4_000_000, 0)
	src.SetAvailable(1000)
	latest, _ := src.Latest()
	if latest[2] != 1000 {
		t.Fatalf("latest = %v", latest)
	}
	a, err := src.Read(2, 100, 200)
	if err != nil || len(a) != 100 {
		t.Fatalf("read: %v err=%v", len(a), err)
	}
	b, _ := src.Read(2, 100, 200)
	for i := range a {
		if a[i][0] != b[i][0] || a[i][1] != b[i][1] {
			t.Fatal("rate source must be deterministic")
		}
	}
	// Values enumerate p + off*n.
	if a[0][0] != int64(2+100*4) {
		t.Errorf("value = %v", a[0][0])
	}
	// Timestamps advance at the per-partition rate (1M rows/s/part → 1 µs).
	if a[1][1].(int64)-a[0][1].(int64) != 1 {
		t.Errorf("timestamp delta = %d", a[1][1].(int64)-a[0][1].(int64))
	}
}

func TestRateSourceAdvance(t *testing.T) {
	src := NewRateSource("rate", 1, 10, 0)
	src.Advance(5)
	src.Advance(5)
	latest, _ := src.Latest()
	if latest[0] != 10 {
		t.Errorf("latest = %v", latest)
	}
	if _, err := src.Read(9, 0, 1); err == nil {
		t.Error("bad partition should error")
	}
}
