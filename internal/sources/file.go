package sources

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"structream/internal/shard"
	"structream/internal/sql"
	"structream/internal/sql/vec"
)

// FileSource treats a directory of JSON-lines files as a stream, the way
// the paper's quickstart does (§4.1: "new JSON files are going to
// continually be uploaded to /in"). The offset space is the index into the
// lexicographically sorted list of files ever observed: files are
// discovered once, remembered in order, and a given offset range always
// re-reads the same files.
type FileSource struct {
	name   string
	dir    string
	schema sql.Schema

	mu    sync.Mutex
	files []string // discovery order; stable across Latest() calls
	known map[string]bool
}

// NewFileSource creates a JSON-lines directory source. The schema declares
// the expected fields; values are coerced to the declared types and missing
// fields read as NULL.
func NewFileSource(name, dir string, schema sql.Schema) *FileSource {
	return &FileSource{name: name, dir: dir, schema: schema, known: map[string]bool{}}
}

// Name implements Source.
func (s *FileSource) Name() string { return s.name }

// Schema implements Source.
func (s *FileSource) Schema() sql.Schema { return s.schema }

// Partitions implements Source. The file log is a single partition.
func (s *FileSource) Partitions() int { return 1 }

// Latest discovers new files and returns the new end offset.
func (s *FileSource) Latest() (Offsets, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		if os.IsNotExist(err) {
			return Offsets{int64(len(s.files))}, nil
		}
		return nil, fmt.Errorf("sources: %w", err)
	}
	var fresh []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") ||
			strings.HasSuffix(name, ".tmp") {
			continue
		}
		if !s.known[name] {
			fresh = append(fresh, name)
		}
	}
	sort.Strings(fresh)
	for _, f := range fresh {
		s.known[f] = true
		s.files = append(s.files, f)
	}
	return Offsets{int64(len(s.files))}, nil
}

// Earliest implements Source: files are never forgotten within a run.
func (s *FileSource) Earliest() (Offsets, error) { return Offsets{0}, nil }

// Read parses the files with indexes [from, to).
func (s *FileSource) Read(p int, from, to int64) ([]sql.Row, error) {
	if p != 0 {
		return nil, fmt.Errorf("sources: file source has a single partition")
	}
	s.mu.Lock()
	if to > int64(len(s.files)) || from < 0 || from > to {
		n := len(s.files)
		s.mu.Unlock()
		return nil, fmt.Errorf("sources: file range [%d,%d) out of bounds (have %d files)", from, to, n)
	}
	names := append([]string(nil), s.files[from:to]...)
	s.mu.Unlock()

	var out []sql.Row
	for _, name := range names {
		rows, err := s.readFile(filepath.Join(s.dir, name))
		if err != nil {
			return nil, err
		}
		out = append(out, rows...)
	}
	return out, nil
}

// ReadPartition implements PartitionReader: the lock covers only the
// file-list snapshot, so workers parse their file slices concurrently
// instead of queueing behind one whole-range read.
func (s *FileSource) ReadPartition(p int, from, to int64, n, of int) (*vec.Batch, bool, error) {
	lo, hi := shard.Range(from, to, n, of)
	rows, err := s.Read(p, lo, hi)
	if err != nil {
		return nil, false, err
	}
	b, ok := vec.FromRows(s.schema, rows)
	return b, ok, nil
}

func (s *FileSource) readFile(path string) ([]sql.Row, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("sources: %w", err)
	}
	defer f.Close()
	var out []sql.Row
	scanner := bufio.NewScanner(f)
	scanner.Buffer(make([]byte, 0, 1<<20), 1<<24)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			// Mis-parsing input is the canonical §7.2 failure; surface the
			// file and line so administrators can find and fix it.
			return nil, fmt.Errorf("sources: %s:%d: bad JSON: %w", path, lineNo, err)
		}
		out = append(out, s.coerce(obj))
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("sources: %w", err)
	}
	return out, nil
}

// coerce maps a decoded JSON object onto the declared schema.
func (s *FileSource) coerce(obj map[string]any) sql.Row {
	row := make(sql.Row, s.schema.Len())
	for i, f := range s.schema.Fields {
		v, ok := obj[f.Name]
		if !ok || v == nil {
			continue
		}
		switch f.Type {
		case sql.TypeInt64:
			if n, isNum := v.(float64); isNum {
				row[i] = int64(n)
			} else {
				row[i] = sql.Cast(sql.Normalize(v), sql.TypeInt64)
			}
		case sql.TypeFloat64:
			row[i] = sql.Cast(sql.Normalize(v), sql.TypeFloat64)
		case sql.TypeString:
			if str, isStr := v.(string); isStr {
				row[i] = str
			} else {
				row[i] = sql.AsString(sql.Normalize(v))
			}
		case sql.TypeBool:
			row[i] = sql.Cast(sql.Normalize(v), sql.TypeBool)
		case sql.TypeTimestamp:
			switch x := v.(type) {
			case string:
				if us, err := sql.ParseTimestamp(x); err == nil {
					row[i] = us
				}
			case float64:
				row[i] = int64(x) // already µs
			}
		default:
			row[i] = sql.Normalize(v)
		}
	}
	return row
}

// ---------------------------------------------------------------- rate

// RateSource generates a deterministic synthetic stream: partition p emits
// rows (value, timestamp) where value enumerates p, p+n, p+2n, … and the
// timestamp advances at the configured rate. Because rows are a pure
// function of (partition, offset), the source is perfectly replayable —
// it is the benchmark workload generator.
type RateSource struct {
	name       string
	partitions int
	rowsPerSec int64
	startMicro int64

	mu      sync.Mutex
	current int64 // rows available per partition
}

// RateSchema is the fixed schema of the rate source.
var RateSchema = sql.NewSchema(
	sql.Field{Name: "value", Type: sql.TypeInt64},
	sql.Field{Name: "timestamp", Type: sql.TypeTimestamp},
)

// NewRateSource creates a rate source. Advance or SetAvailable make rows
// visible; rowsPerSec scales the synthetic timestamps.
func NewRateSource(name string, partitions int, rowsPerSec int64, startMicro int64) *RateSource {
	return &RateSource{name: name, partitions: partitions, rowsPerSec: rowsPerSec, startMicro: startMicro}
}

// Name implements Source.
func (s *RateSource) Name() string { return s.name }

// Schema implements Source.
func (s *RateSource) Schema() sql.Schema { return RateSchema }

// Partitions implements Source.
func (s *RateSource) Partitions() int { return s.partitions }

// SetAvailable makes the first n offsets of every partition visible.
func (s *RateSource) SetAvailable(n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n > s.current {
		s.current = n
	}
}

// Advance makes n more offsets visible on every partition.
func (s *RateSource) Advance(n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.current += n
}

// Latest implements Source.
func (s *RateSource) Latest() (Offsets, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(Offsets, s.partitions)
	for i := range out {
		out[i] = s.current
	}
	return out, nil
}

// Earliest implements Source.
func (s *RateSource) Earliest() (Offsets, error) {
	return make(Offsets, s.partitions), nil
}

// Read implements Source: rows are synthesized deterministically.
func (s *RateSource) Read(p int, from, to int64) ([]sql.Row, error) {
	if p < 0 || p >= s.partitions {
		return nil, fmt.Errorf("sources: partition %d out of range", p)
	}
	out := make([]sql.Row, 0, to-from)
	n := int64(s.partitions)
	perPartRate := s.rowsPerSec / n
	if perPartRate == 0 {
		perPartRate = 1
	}
	for off := from; off < to; off++ {
		value := int64(p) + off*n
		ts := s.startMicro + off*1_000_000/perPartRate
		out = append(out, sql.Row{value, ts})
	}
	return out, nil
}

// ReadVec implements VectorReader: rows synthesize straight into the two
// int64 slabs — no sql.Row, no boxing, and (rows being a pure function
// of position) no lock.
func (s *RateSource) ReadVec(p int, from, to int64) (*vec.Batch, bool, error) {
	if p < 0 || p >= s.partitions {
		return nil, false, fmt.Errorf("sources: partition %d out of range", p)
	}
	if to < from {
		return nil, false, fmt.Errorf("sources: rate range [%d,%d) is inverted", from, to)
	}
	n := int64(s.partitions)
	perPartRate := s.rowsPerSec / n
	if perPartRate == 0 {
		perPartRate = 1
	}
	b := vec.NewBatch(RateSchema, int(to-from))
	values, stamps := b.Cols[0].Int64s, b.Cols[1].Int64s
	for off := from; off < to; off++ {
		i := off - from
		values[i] = int64(p) + off*n
		stamps[i] = s.startMicro + off*1_000_000/perPartRate
	}
	return b, true, nil
}

// ReadPartition implements PartitionReader: the generator needs no
// shared cursor at all, so worker slices are embarrassingly parallel.
func (s *RateSource) ReadPartition(p int, from, to int64, n, of int) (*vec.Batch, bool, error) {
	lo, hi := shard.Range(from, to, n, of)
	return s.ReadVec(p, lo, hi)
}
