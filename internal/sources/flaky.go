package sources

import (
	"sync"

	"structream/internal/sql"
)

// FlakySource wraps any Source with deterministic fault hooks for chaos
// and supervision tests: scheduled transient/fatal read errors and an
// on-demand stall that hangs a Read until released — the ingredients of
// the §6.2 recovery story (a flaky executor, a hung fetch). The wrapper
// preserves replayability: faults affect only whether a Read returns, not
// what it returns.
type FlakySource struct {
	Inner Source

	mu        sync.Mutex
	reads     int64
	failErr   error
	failLeft  int
	stalled   bool
	stallCh   chan struct{}
	stallSeen chan struct{} // closed when a reader hits the stall
	seenFired bool
}

// NewFlakySource wraps inner with an empty fault schedule.
func NewFlakySource(inner Source) *FlakySource {
	return &FlakySource{Inner: inner}
}

// FailReads makes the next n Reads return err (transient errors exercise
// the engine's retry; anything else fails the epoch).
func (s *FlakySource) FailReads(err error, n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failErr, s.failLeft = err, n
}

// StallReads makes every subsequent Read block until ReleaseStall — a
// hung fetch for the epoch watchdog to catch. Stalled returns a channel
// closed when the first reader actually blocks.
func (s *FlakySource) StallReads() <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.stalled {
		s.stalled = true
		s.stallCh = make(chan struct{})
		s.stallSeen = make(chan struct{})
		s.seenFired = false
	}
	return s.stallSeen
}

// ReleaseStall unblocks stalled and future Reads.
func (s *FlakySource) ReleaseStall() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stalled {
		s.stalled = false
		close(s.stallCh)
	}
}

// Reads reports how many Read calls reached the wrapper.
func (s *FlakySource) Reads() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reads
}

// Name implements Source.
func (s *FlakySource) Name() string { return s.Inner.Name() }

// Schema implements Source.
func (s *FlakySource) Schema() sql.Schema { return s.Inner.Schema() }

// Partitions implements Source.
func (s *FlakySource) Partitions() int { return s.Inner.Partitions() }

// Latest implements Source.
func (s *FlakySource) Latest() (Offsets, error) { return s.Inner.Latest() }

// Earliest implements Source.
func (s *FlakySource) Earliest() (Offsets, error) { return s.Inner.Earliest() }

// Read implements Source, applying scheduled faults first.
func (s *FlakySource) Read(p int, from, to int64) ([]sql.Row, error) {
	s.mu.Lock()
	s.reads++
	if s.failLeft > 0 {
		s.failLeft--
		err := s.failErr
		s.mu.Unlock()
		return nil, err
	}
	stalled, ch := s.stalled, s.stallCh
	if stalled && !s.seenFired {
		s.seenFired = true
		close(s.stallSeen)
	}
	s.mu.Unlock()
	if stalled {
		<-ch
	}
	return s.Inner.Read(p, from, to)
}
