package sources

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"structream/internal/msgbus"
	"structream/internal/sql"
	"structream/internal/sql/codec"
)

// concatPartitions reads slices 0..of-1 through ReadPartition and
// concatenates their materialized rows in slice order.
func concatPartitions(t *testing.T, pr PartitionReader, p int, from, to int64, of int) []sql.Row {
	t.Helper()
	var out []sql.Row
	for n := 0; n < of; n++ {
		b, ok, err := pr.ReadPartition(p, from, to, n, of)
		if err != nil {
			t.Fatalf("slice %d/%d: %v", n, of, err)
		}
		if !ok {
			t.Fatalf("slice %d/%d: fell back to the row path", n, of)
		}
		out = b.AppendRows(out)
	}
	return out
}

// requireSameRows compares materialized rows in order.
func requireSameRows(t *testing.T, got, want []sql.Row, ctx string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d rows, want %d", ctx, len(got), len(want))
	}
	for i := range got {
		if got[i].String() != want[i].String() {
			t.Fatalf("%s: row %d = %s, want %s", ctx, i, got[i], want[i])
		}
	}
}

// TestPartitionReadConcat is the splitter contract: for every source
// kind, concatenating the `of` worker slices reproduces the full-range
// read exactly — same rows, same order — for every split degree,
// including degrees exceeding the row count.
func TestPartitionReadConcat(t *testing.T) {
	const rows = 23

	sources := map[string]struct {
		src  Source
		part int
	}{}

	// Bus: codec-framed topic, 2 partitions.
	broker := msgbus.NewBroker()
	topic, _ := broker.CreateTopic("events", 2)
	for i := 0; i < rows; i++ {
		topic.Append(i%2, msgbus.Record{Value: codec.EncodeRow(sql.Row{int64(i), fmt.Sprintf("r%d", i)})})
	}
	sources["bus"] = struct {
		src  Source
		part int
	}{NewCodecBusSource("events", topic, testSchema), 1}

	// Rate: pure generator.
	rate := NewRateSource("rate", 2, 100, 1_000_000)
	rate.SetAvailable(rows)
	sources["rate"] = struct {
		src  Source
		part int
	}{rate, 0}

	// Partitioned: preloaded immutable rows.
	var pre []sql.Row
	for i := 0; i < rows; i++ {
		pre = append(pre, sql.Row{int64(i * 10), fmt.Sprintf("p%d", i)})
	}
	sources["partitioned"] = struct {
		src  Source
		part int
	}{NewPartitionedSource("events", testSchema, [][]sql.Row{pre}), 0}

	// File: JSON-lines directory.
	dir := t.TempDir()
	for f := 0; f < 5; f++ {
		var lines string
		for j := 0; j < 3; j++ {
			lines += fmt.Sprintf("{\"id\": %d, \"name\": \"f%d\"}\n", f*3+j, f)
		}
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("batch-%02d.json", f)), []byte(lines), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	fileSrc := NewFileSource("files", dir, testSchema)
	if _, err := fileSrc.Latest(); err != nil {
		t.Fatal(err)
	}
	sources["file"] = struct {
		src  Source
		part int
	}{fileSrc, 0}

	for name, tc := range sources {
		// Instrumented wrapping must forward the splitter too.
		for _, wrap := range []bool{false, true} {
			src := tc.src
			if wrap {
				src = Instrument(src)
			}
			pr, ok := src.(PartitionReader)
			if !ok {
				t.Fatalf("%s (wrap=%v): source does not implement PartitionReader", name, wrap)
			}
			latest, err := src.Latest()
			if err != nil {
				t.Fatal(err)
			}
			to := latest[tc.part]
			want, err := src.Read(tc.part, 0, to)
			if err != nil {
				t.Fatal(err)
			}
			if len(want) == 0 {
				t.Fatalf("%s: full read returned nothing", name)
			}
			for _, of := range []int{1, 2, 3, 7, int(to) + 5} {
				ctx := fmt.Sprintf("%s wrap=%v of=%d", name, wrap, of)
				got := concatPartitions(t, pr, tc.part, 0, to, of)
				requireSameRows(t, got, want, ctx)
			}
		}
	}
}
