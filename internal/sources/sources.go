// Package sources implements streaming input connectors. Every source
// satisfies the paper's replayability requirement (§3, §6.1): data is
// addressed by per-partition offsets, and any previously read offset range
// can be re-read byte-for-byte, which is what the engine's recovery and
// manual rollback lean on.
package sources

import (
	"fmt"
	"sync"
	"time"

	"structream/internal/msgbus"
	"structream/internal/shard"
	"structream/internal/sql"
	"structream/internal/sql/codec"
	"structream/internal/sql/vec"
)

// Offsets is a per-partition position vector. Offsets[i] addresses the next
// record to read from partition i.
type Offsets []int64

// Clone copies the vector.
func (o Offsets) Clone() Offsets { return append(Offsets(nil), o...) }

// Equal reports element-wise equality.
func (o Offsets) Equal(other Offsets) bool {
	if len(o) != len(other) {
		return false
	}
	for i := range o {
		if o[i] != other[i] {
			return false
		}
	}
	return true
}

// Total sums the vector (a record count when offsets start at zero).
func (o Offsets) Total() int64 {
	var n int64
	for _, v := range o {
		n += v
	}
	return n
}

// Source is a replayable streaming input.
type Source interface {
	// Name identifies the source in the write-ahead log.
	Name() string
	// Schema is the row schema this source produces.
	Schema() sql.Schema
	// Partitions is the fixed partition count.
	Partitions() int
	// Latest returns the current end offsets (exclusive).
	Latest() (Offsets, error)
	// Earliest returns the oldest replayable offsets, bounding rollback.
	Earliest() (Offsets, error)
	// Read returns the rows of partition p in offset range [from, to). The
	// same range must always return the same rows.
	Read(p int, from, to int64) ([]sql.Row, error)
}

// VectorReader is an optional Source extension: ReadVec serves the
// offset range [from, to) of partition p as a typed column batch,
// skipping per-row allocation and boxing. ok=false (with no error)
// means the range cannot be represented columnar — a record's wire
// types drift from the schema, or the source has no columnar decode —
// and the caller must re-read the same range through Read, which
// returns the identical logical rows.
type VectorReader interface {
	ReadVec(p int, from, to int64) (b *vec.Batch, ok bool, err error)
}

// PartitionReader is an optional Source extension for the sharded
// runtime (engine.Options.Workers > 1): ReadPartition serves the n-th of
// `of` contiguous slices of partition p's offset range [from, to) as a
// typed column batch. Slice boundaries are shard.Range, so concatenating
// slices 0..of-1 reproduces the full range exactly — the splitter
// changes who reads, never what is read. ok=false means the slice cannot
// be represented columnar and the caller must fall back to Read over the
// same shard.Range slice, as with VectorReader.
//
// The point is head-of-line freedom: each worker fetches and decodes
// only its own slice concurrently, instead of one reader materializing
// the whole range under a lock and fanning rows out afterwards.
type PartitionReader interface {
	ReadPartition(p int, from, to int64, n, of int) (b *vec.Batch, ok bool, err error)
}

// ---------------------------------------------------------------- bus

// RecordDecoder turns a bus record into a row (or skips it by returning
// false) — the deserialization half of a Kafka connector.
type RecordDecoder func(rec msgbus.Record) (sql.Row, bool)

// BusSource reads a message-bus topic.
type BusSource struct {
	name   string
	topic  *msgbus.Topic
	schema sql.Schema
	decode RecordDecoder
	// codecFramed marks the decoder as the native binary row codec,
	// enabling the columnar ReadVec fast path (a custom decoder could
	// produce anything, so only the native framing vectorizes).
	codecFramed bool
}

// NewBusSource creates a source over a topic with a custom decoder.
func NewBusSource(name string, topic *msgbus.Topic, schema sql.Schema, decode RecordDecoder) *BusSource {
	return &BusSource{name: name, topic: topic, schema: schema, decode: decode}
}

// NewCodecBusSource reads rows encoded with the binary row codec, the
// engine's native wire format. Codec-framed topics also support the
// columnar ReadVec fast path.
func NewCodecBusSource(name string, topic *msgbus.Topic, schema sql.Schema) *BusSource {
	s := NewBusSource(name, topic, schema, func(rec msgbus.Record) (sql.Row, bool) {
		row, err := codec.DecodeRow(rec.Value)
		if err != nil || len(row) != schema.Len() {
			return nil, false
		}
		return row, true
	})
	s.codecFramed = true
	return s
}

// Name implements Source.
func (s *BusSource) Name() string { return s.name }

// Schema implements Source.
func (s *BusSource) Schema() sql.Schema { return s.schema }

// Partitions implements Source.
func (s *BusSource) Partitions() int { return s.topic.Partitions() }

// Latest implements Source.
func (s *BusSource) Latest() (Offsets, error) { return s.topic.LatestOffsets(), nil }

// Earliest implements Source.
func (s *BusSource) Earliest() (Offsets, error) { return s.topic.EarliestOffsets(), nil }

// Read implements Source.
func (s *BusSource) Read(p int, from, to int64) ([]sql.Row, error) {
	recs, err := s.topic.FetchRange(p, from, to)
	if err != nil {
		return nil, err
	}
	out := make([]sql.Row, 0, len(recs))
	for _, rec := range recs {
		if row, ok := s.decode(rec); ok {
			out = append(out, row)
		}
	}
	return out, nil
}

// ReadVec implements VectorReader: it decodes the native codec framing
// straight into typed column vectors, one allocation per column instead
// of one sql.Row plus one boxed value per cell. Malformed records skip
// exactly as in Read; a record whose wire types don't match the schema
// aborts the columnar decode (ok=false) so the caller re-reads boxed —
// the row path keeps such records, and the two paths must agree.
func (s *BusSource) ReadVec(p int, from, to int64) (*vec.Batch, bool, error) {
	if !s.codecFramed {
		return nil, false, nil
	}
	recs, err := s.topic.FetchRange(p, from, to)
	if err != nil {
		return nil, false, err
	}
	b := vec.NewBatch(s.schema, len(recs))
	n := 0
	for _, rec := range recs {
		// Shared-string decode is safe here: topic records are append-once
		// and never mutated, so string cells can alias them directly.
		added, compat := codec.DecodeRowToBatchShared(rec.Value, b.Cols, n, len(recs))
		if !compat {
			return nil, false, nil
		}
		if added {
			n++
		}
	}
	b.Len = n
	return b, true, nil
}

// ReadPartition implements PartitionReader: each worker fetches and
// decodes only its own slice of the offset range, concurrently with its
// siblings — the topic's fetch path has no whole-range lock to contend
// on.
func (s *BusSource) ReadPartition(p int, from, to int64, n, of int) (*vec.Batch, bool, error) {
	lo, hi := shard.Range(from, to, n, of)
	return s.ReadVec(p, lo, hi)
}

// Topic exposes the underlying topic (used by continuous-mode workers to
// block on new data).
func (s *BusSource) Topic() *msgbus.Topic { return s.topic }

// WaitForData blocks until the partition holds data at or past offset, or
// the timeout elapses; the continuous engine uses it to avoid busy
// polling.
func (s *BusSource) WaitForData(partition int, offset int64, timeout time.Duration) bool {
	return s.topic.WaitForData(partition, offset, timeout)
}

// ---------------------------------------------------------------- partitioned

// PartitionedSource serves pre-generated, pre-partitioned rows without
// copying — the benchmark harness's input. It is fully replayable: rows
// never change after construction.
type PartitionedSource struct {
	name   string
	schema sql.Schema
	parts  [][]sql.Row
}

// NewPartitionedSource wraps per-partition row slices as a source. The
// slices must not be mutated afterwards.
func NewPartitionedSource(name string, schema sql.Schema, parts [][]sql.Row) *PartitionedSource {
	return &PartitionedSource{name: name, schema: schema, parts: parts}
}

// Name implements Source.
func (s *PartitionedSource) Name() string { return s.name }

// Schema implements Source.
func (s *PartitionedSource) Schema() sql.Schema { return s.schema }

// Partitions implements Source.
func (s *PartitionedSource) Partitions() int { return len(s.parts) }

// Latest implements Source.
func (s *PartitionedSource) Latest() (Offsets, error) {
	out := make(Offsets, len(s.parts))
	for i, p := range s.parts {
		out[i] = int64(len(p))
	}
	return out, nil
}

// Earliest implements Source.
func (s *PartitionedSource) Earliest() (Offsets, error) {
	return make(Offsets, len(s.parts)), nil
}

// Read implements Source.
func (s *PartitionedSource) Read(p int, from, to int64) ([]sql.Row, error) {
	if p < 0 || p >= len(s.parts) {
		return nil, fmt.Errorf("sources: partition %d out of range", p)
	}
	if from < 0 || to > int64(len(s.parts[p])) || from > to {
		return nil, fmt.Errorf("sources: range [%d,%d) out of bounds for partition %d", from, to, p)
	}
	return s.parts[p][from:to], nil
}

// ReadPartition implements PartitionReader: the slice is a sub-slice of
// the immutable partition — no lock, no copy — columnarized per worker.
func (s *PartitionedSource) ReadPartition(p int, from, to int64, n, of int) (*vec.Batch, bool, error) {
	lo, hi := shard.Range(from, to, n, of)
	rows, err := s.Read(p, lo, hi)
	if err != nil {
		return nil, false, err
	}
	b, ok := vec.FromRows(s.schema, rows)
	return b, ok, nil
}

// ---------------------------------------------------------------- memory

// MemorySource is an in-memory, manually fed source for tests and
// interactive experiments. It has one partition; AddData appends rows.
type MemorySource struct {
	name   string
	schema sql.Schema

	mu   sync.Mutex
	rows []sql.Row
}

// NewMemorySource creates an empty memory source.
func NewMemorySource(name string, schema sql.Schema) *MemorySource {
	return &MemorySource{name: name, schema: schema}
}

// AddData appends rows to the stream.
func (s *MemorySource) AddData(rows ...sql.Row) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range rows {
		cp := make(sql.Row, len(r))
		for i, v := range r {
			cp[i] = sql.Normalize(v)
		}
		s.rows = append(s.rows, cp)
	}
}

// Name implements Source.
func (s *MemorySource) Name() string { return s.name }

// Schema implements Source.
func (s *MemorySource) Schema() sql.Schema { return s.schema }

// Partitions implements Source.
func (s *MemorySource) Partitions() int { return 1 }

// Latest implements Source.
func (s *MemorySource) Latest() (Offsets, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Offsets{int64(len(s.rows))}, nil
}

// Earliest implements Source.
func (s *MemorySource) Earliest() (Offsets, error) { return Offsets{0}, nil }

// Read implements Source.
func (s *MemorySource) Read(p int, from, to int64) ([]sql.Row, error) {
	if p != 0 {
		return nil, fmt.Errorf("sources: memory source has a single partition, got %d", p)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if from < 0 || to > int64(len(s.rows)) || from > to {
		return nil, fmt.Errorf("sources: memory range [%d,%d) out of bounds (have %d)", from, to, len(s.rows))
	}
	out := make([]sql.Row, to-from)
	copy(out, s.rows[from:to])
	return out, nil
}
