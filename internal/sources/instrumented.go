package sources

import (
	"sync/atomic"
	"time"

	"structream/internal/sql"
	"structream/internal/sql/vec"
)

// Instrumented wraps a Source with read-side observability counters: how
// many Read calls ran, how many rows they returned, and how long they
// took. The engine wraps every bound source so the per-source section of
// QueryProgress and the getBatch span can attribute fetch cost without the
// source implementations knowing about metrics.
type Instrumented struct {
	Inner Source

	reads     atomic.Int64
	rows      atomic.Int64
	readNanos atomic.Int64
	errors    atomic.Int64
	lastErrAt atomic.Int64 // UnixMicro of the most recent read error
	lastErr   atomic.Value // string: the most recent read error's text
}

// noteError records a failed read for the per-source health section.
func (s *Instrumented) noteError(err error) {
	s.errors.Add(1)
	s.lastErrAt.Store(time.Now().UnixMicro())
	s.lastErr.Store(err.Error())
}

// Instrument wraps src; wrapping an already-instrumented source returns it
// unchanged so stats are never double-counted.
func Instrument(src Source) *Instrumented {
	if in, ok := src.(*Instrumented); ok {
		return in
	}
	return &Instrumented{Inner: src}
}

// SourceStats is a point-in-time snapshot of a source's read activity.
// Errors counts failed Read/ReadVec calls (each retry attempt counts);
// LastErrorAtMicros/LastError describe the most recent failure.
type SourceStats struct {
	Reads             int64
	Rows              int64
	ReadNanos         int64
	Errors            int64
	LastErrorAtMicros int64
	LastError         string
}

// Stats reports the cumulative read counters.
func (s *Instrumented) Stats() SourceStats {
	st := SourceStats{
		Reads:             s.reads.Load(),
		Rows:              s.rows.Load(),
		ReadNanos:         s.readNanos.Load(),
		Errors:            s.errors.Load(),
		LastErrorAtMicros: s.lastErrAt.Load(),
	}
	if v, ok := s.lastErr.Load().(string); ok {
		st.LastError = v
	}
	return st
}

// Name implements Source.
func (s *Instrumented) Name() string { return s.Inner.Name() }

// Schema implements Source.
func (s *Instrumented) Schema() sql.Schema { return s.Inner.Schema() }

// Partitions implements Source.
func (s *Instrumented) Partitions() int { return s.Inner.Partitions() }

// Latest implements Source.
func (s *Instrumented) Latest() (Offsets, error) { return s.Inner.Latest() }

// Earliest implements Source.
func (s *Instrumented) Earliest() (Offsets, error) { return s.Inner.Earliest() }

// Read implements Source, timing and counting the inner read.
func (s *Instrumented) Read(p int, from, to int64) ([]sql.Row, error) {
	start := time.Now()
	rows, err := s.Inner.Read(p, from, to)
	s.readNanos.Add(time.Since(start).Nanoseconds())
	s.reads.Add(1)
	if err != nil {
		s.noteError(err)
		return nil, err
	}
	s.rows.Add(int64(len(rows)))
	return rows, nil
}

// ReadVec forwards the columnar fast path with the same timing and
// counting as Read. A fallback outcome (ok=false, no error) charges
// only time, not a read: the caller's follow-up Read supplies the rows
// and the counters, so fetches are never double-counted.
func (s *Instrumented) ReadVec(p int, from, to int64) (*vec.Batch, bool, error) {
	vr, vok := s.Inner.(VectorReader)
	if !vok {
		return nil, false, nil
	}
	start := time.Now()
	b, ok, err := vr.ReadVec(p, from, to)
	s.readNanos.Add(time.Since(start).Nanoseconds())
	if err != nil {
		s.noteError(err)
		return nil, false, err
	}
	if !ok {
		return nil, false, nil
	}
	s.reads.Add(1)
	s.rows.Add(int64(b.Len))
	return b, true, nil
}

// ReadPartition forwards the sharded-runtime splitter with ReadVec's
// timing and counting discipline; a source without the extension reports
// ok=false so the caller shard-splits over Read/ReadVec itself.
func (s *Instrumented) ReadPartition(p int, from, to int64, n, of int) (*vec.Batch, bool, error) {
	pr, pok := s.Inner.(PartitionReader)
	if !pok {
		return nil, false, nil
	}
	start := time.Now()
	b, ok, err := pr.ReadPartition(p, from, to, n, of)
	s.readNanos.Add(time.Since(start).Nanoseconds())
	if err != nil {
		s.noteError(err)
		return nil, false, err
	}
	if !ok {
		return nil, false, nil
	}
	s.reads.Add(1)
	s.rows.Add(int64(b.Len))
	return b, true, nil
}

// WaitForData lets the continuous engine block on the inner source when it
// supports waiting; otherwise it parks briefly, matching the engine's poll
// cadence for non-waitable sources.
func (s *Instrumented) WaitForData(partition int, offset int64, timeout time.Duration) bool {
	type waitable interface {
		WaitForData(partition int, offset int64, timeout time.Duration) bool
	}
	if w, ok := s.Inner.(waitable); ok {
		return w.WaitForData(partition, offset, timeout)
	}
	if timeout > 200*time.Microsecond {
		timeout = 200 * time.Microsecond
	}
	time.Sleep(timeout)
	return false
}
