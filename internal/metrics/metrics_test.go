package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	r.Counter("rows").Add(5)
	r.Counter("rows").Add(3) // same counter instance
	r.Gauge("watermark").Set(42)
	r.Gauge("watermark").Set(99)
	snap := r.Snapshot()
	if snap["rows"] != 8 || snap["watermark"] != 99 {
		t.Errorf("snapshot = %v", snap)
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "rows" || names[1] != "watermark" {
		t.Errorf("names = %v", names)
	}
}

func TestCountersConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("n").Add(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n").Value(); got != 8000 {
		t.Errorf("n = %d", got)
	}
}

func TestEventLogListenersAndHistory(t *testing.T) {
	l := NewEventLog(nil)
	var got []QueryProgress
	l.AddListener(func(p QueryProgress) { got = append(got, p) })
	for i := 0; i < 5; i++ {
		l.Emit(QueryProgress{Epoch: int64(i), NumInputRows: int64(i * 10)})
	}
	if len(got) != 5 {
		t.Fatalf("listener saw %d events", len(got))
	}
	recent := l.Recent(2)
	if len(recent) != 2 || recent[0].Epoch != 3 || recent[1].Epoch != 4 {
		t.Errorf("recent = %v", recent)
	}
	all := l.Recent(0)
	if len(all) != 5 {
		t.Errorf("all = %d", len(all))
	}
}

func TestEventLogHistoryLimit(t *testing.T) {
	l := NewEventLog(nil)
	l.HistoryLimit = 3
	for i := 0; i < 10; i++ {
		l.Emit(QueryProgress{Epoch: int64(i)})
	}
	recent := l.Recent(0)
	if len(recent) != 3 || recent[0].Epoch != 7 {
		t.Errorf("recent = %v", recent)
	}
}

func TestEventLogJSONOutput(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog(&buf)
	l.Emit(QueryProgress{QueryName: "q", Epoch: 7, NumInputRows: 100, WatermarkMicros: 5})
	line := strings.TrimSpace(buf.String())
	var p QueryProgress
	if err := json.Unmarshal([]byte(line), &p); err != nil {
		t.Fatalf("bad JSON %q: %v", line, err)
	}
	if p.QueryName != "q" || p.Epoch != 7 || p.WatermarkMicros != 5 {
		t.Errorf("parsed = %+v", p)
	}
}
