package metrics

import (
	"errors"
	"sync"
	"testing"
)

// TestEmitOrderingUnderConcurrency: with many concurrent emitters, every
// listener observes events in exactly the order they landed in history —
// the out-of-order fan-out the old unlocked delivery allowed.
func TestEmitOrderingUnderConcurrency(t *testing.T) {
	l := NewEventLog(nil)
	l.HistoryLimit = 0 // retain everything
	var mu sync.Mutex
	var seen []int64
	l.AddListener(func(p QueryProgress) {
		mu.Lock()
		seen = append(seen, p.Epoch)
		mu.Unlock()
	})
	var wg sync.WaitGroup
	const workers, per = 8, 200
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Emit(QueryProgress{Epoch: int64(w*per + i)})
			}
		}()
	}
	wg.Wait()
	history := l.Recent(0)
	if len(history) != workers*per || len(seen) != workers*per {
		t.Fatalf("history=%d seen=%d, want %d", len(history), len(seen), workers*per)
	}
	for i, p := range history {
		if seen[i] != p.Epoch {
			t.Fatalf("delivery order diverged from history at %d: listener saw %d, history has %d",
				i, seen[i], p.Epoch)
		}
	}
}

// failingWriter fails every write after the first n.
type failingWriter struct {
	ok int
	n  int
}

func (w *failingWriter) Write(p []byte) (int, error) {
	w.n++
	if w.n > w.ok {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

func TestEmitCountsWriterFailures(t *testing.T) {
	w := &failingWriter{ok: 2}
	l := NewEventLog(w)
	reg := NewRegistry()
	l.SetRegistry(reg)
	for i := 0; i < 5; i++ {
		l.Emit(QueryProgress{Epoch: int64(i)})
	}
	if got := l.WriteFailures(); got != 3 {
		t.Errorf("WriteFailures = %d, want 3", got)
	}
	if got := reg.Counter("eventLogWriteFailures").Value(); got != 3 {
		t.Errorf("registry counter = %d, want 3", got)
	}
	// Failed writes must not lose the event for history or listeners.
	if got := len(l.Recent(0)); got != 5 {
		t.Errorf("history = %d events, want 5", got)
	}
}

func TestEvictionCounted(t *testing.T) {
	l := NewEventLog(nil)
	l.HistoryLimit = 3
	for i := 0; i < 10; i++ {
		l.Emit(QueryProgress{Epoch: int64(i)})
	}
	if got := l.Evicted(); got != 7 {
		t.Errorf("Evicted = %d, want 7", got)
	}
	recent := l.Recent(0)
	if len(recent) != 3 || recent[0].Epoch != 7 {
		t.Errorf("recent = %+v", recent)
	}
}
