package metrics

import (
	"math/bits"
	"sync/atomic"
)

// Histogram is a lock-free log-bucketed histogram for latency-style
// values (non-negative int64s, typically microseconds). Values below 16
// land in exact unit buckets; above that, buckets are log-spaced with 16
// sub-buckets per power of two, bounding relative bucket width — and thus
// worst-case quantile estimation error — to 1/16 ≈ 6.25%. Observe is a
// single atomic increment, cheap enough for per-stage use on the epoch
// hot path.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

// 16 exact unit buckets + 16 sub-buckets for each of the remaining 59
// power-of-two ranges of an int64.
const histBuckets = 16 + 16*59

// bucketIndex maps a value to its bucket.
func bucketIndex(v int64) int {
	if v < 16 {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	n := bits.Len64(uint64(v)) // >= 5
	top5 := v >> (n - 5)       // in [16, 32)
	idx := 16*(n-4) + int(top5-16)
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// bucketValue returns a representative value (the bucket midpoint) for a
// bucket index — the value quantile estimation reports.
func bucketValue(idx int) int64 {
	if idx < 16 {
		return int64(idx)
	}
	e := idx/16 - 1 // power-of-two range, 0-based from [16,32)
	m := idx % 16   // sub-bucket within the range
	lower := int64(16+m) << e
	width := int64(1) << e
	return lower + width/2
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest observed value (0 when empty).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Mean returns the average observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the buckets. The
// estimate is the midpoint of the bucket holding the rank, so relative
// error is bounded by the bucket width (≈6.25% above 16, exact below).
// Returns 0 on an empty histogram; q=1 returns the exact max.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q >= 1 {
		return h.max.Load()
	}
	if q < 0 {
		q = 0
	}
	rank := int64(q * float64(total-1))
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i].Load()
		if cum > rank {
			v := bucketValue(i)
			if m := h.max.Load(); v > m {
				v = m // the top occupied bucket's midpoint may overshoot
			}
			return v
		}
	}
	return h.max.Load()
}

// HistogramSnapshot is a point-in-time summary of a histogram.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P95   int64   `json:"p95"`
	P99   int64   `json:"p99"`
	Max   int64   `json:"max"`
}

// Snapshot summarizes the histogram. Concurrent Observes may land between
// field reads; each field is individually consistent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
}
