package metrics

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestBucketRoundTrip(t *testing.T) {
	for _, v := range []int64{0, 1, 15, 16, 17, 100, 1000, 1 << 20, 1<<40 + 12345} {
		idx := bucketIndex(v)
		got := bucketValue(idx)
		var relErr float64
		if v > 0 {
			relErr = math.Abs(float64(got-v)) / float64(v)
		}
		if v < 16 && got != v {
			t.Errorf("small value %d mapped to %d", v, got)
		}
		if v >= 16 && relErr > 1.0/16 {
			t.Errorf("value %d → bucket %d → %d (rel err %.3f > 6.25%%)", v, idx, got, relErr)
		}
	}
	// Monotone: bucket index never decreases with the value.
	prev := -1
	for v := int64(0); v < 100000; v += 7 {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex(%d) = %d < previous %d", v, idx, prev)
		}
		prev = idx
	}
}

// quantileAccuracy observes values, then checks the histogram quantiles
// against exact percentiles within tol relative error.
func quantileAccuracy(t *testing.T, name string, values []int64, tol float64) {
	t.Helper()
	h := &Histogram{}
	for _, v := range values {
		h.Observe(v)
	}
	sorted := append([]int64(nil), values...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, q := range []float64{0.50, 0.95, 0.99} {
		exact := sorted[int(q*float64(len(sorted)-1))]
		got := h.Quantile(q)
		if exact == 0 {
			if got != 0 {
				t.Errorf("%s p%v = %d, want 0", name, q*100, got)
			}
			continue
		}
		relErr := math.Abs(float64(got-exact)) / float64(exact)
		if relErr > tol {
			t.Errorf("%s p%v = %d, exact %d (rel err %.3f > %.3f)", name, q*100, got, exact, relErr, tol)
		}
	}
	if h.Quantile(1) != sorted[len(sorted)-1] {
		t.Errorf("%s p100 = %d, want exact max %d", name, h.Quantile(1), sorted[len(sorted)-1])
	}
	if h.Count() != int64(len(values)) {
		t.Errorf("%s count = %d, want %d", name, h.Count(), len(values))
	}
}

func TestQuantileAccuracyUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	values := make([]int64, 20000)
	for i := range values {
		values[i] = rng.Int63n(1_000_000) // µs up to 1s
	}
	quantileAccuracy(t, "uniform", values, 0.07)
}

func TestQuantileAccuracyExponential(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	values := make([]int64, 20000)
	for i := range values {
		values[i] = int64(rng.ExpFloat64() * 5000) // heavy tail, mean 5ms
	}
	quantileAccuracy(t, "exponential", values, 0.07)
}

func TestQuantileAccuracyBimodal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	values := make([]int64, 20000)
	for i := range values {
		if rng.Intn(10) == 0 {
			values[i] = 100_000 + rng.Int63n(5_000) // slow mode: ~100ms
		} else {
			values[i] = 500 + rng.Int63n(100) // fast mode: ~0.5ms
		}
	}
	quantileAccuracy(t, "bimodal", values, 0.07)
}

func TestHistogramEmptyAndEdges(t *testing.T) {
	h := &Histogram{}
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Error("empty histogram must report zeros")
	}
	h.Observe(-5) // clamped to 0
	if h.Quantile(0.5) != 0 || h.Count() != 1 {
		t.Errorf("negative observation: p50=%d count=%d", h.Quantile(0.5), h.Count())
	}
	h2 := &Histogram{}
	h2.Observe(42)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h2.Quantile(q); got != 42 {
			t.Errorf("single-value histogram Quantile(%v) = %d, want 42", q, got)
		}
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines while
// snapshotting; run under -race.
func TestHistogramConcurrent(t *testing.T) {
	h := &Histogram{}
	var wg sync.WaitGroup
	const workers, per = 8, 5000
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < per; i++ {
				h.Observe(rng.Int63n(1_000_000))
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = h.Snapshot()
			time.Sleep(100 * time.Microsecond)
		}
	}()
	wg.Wait()
	<-done
	if got := h.Count(); got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
}

func TestRegistryHistograms(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("stage.getBatch.us")
	if h != r.Histogram("stage.getBatch.us") {
		t.Fatal("Histogram must return the same instance per name")
	}
	h.Observe(100)
	h.Observe(200)
	snap := r.Snapshot()
	if snap["stage.getBatch.us.count"] != 2 {
		t.Errorf("snapshot count = %d", snap["stage.getBatch.us.count"])
	}
	if snap["stage.getBatch.us.max"] != 200 {
		t.Errorf("snapshot max = %d", snap["stage.getBatch.us.max"])
	}
	hs := r.Histograms()
	if hs["stage.getBatch.us"].Count != 2 {
		t.Errorf("Histograms() = %+v", hs)
	}
}

// TestRegistryConcurrent exercises mixed counter/gauge/histogram access
// from many goroutines; run under -race.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				r.Counter("c").Add(1)
				r.Gauge("g").Set(int64(i))
				r.Histogram("h").Observe(int64(i))
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 16000 {
		t.Fatalf("counter = %d, want 16000", got)
	}
}

func TestRatePerSec(t *testing.T) {
	if got := RatePerSec(100, 0); got != 100e6 {
		t.Errorf("zero-elapsed rate = %v, want 1e8 (floored at 1µs)", got)
	}
	if got := RatePerSec(500, time.Second); got != 500 {
		t.Errorf("rate = %v, want 500", got)
	}
	if got := RatePerSec(0, 0); got != 0 {
		t.Errorf("zero rows rate = %v", got)
	}
	if got := RatePerSec(10, 500*time.Nanosecond); math.IsInf(got, 1) || got != 10e6 {
		t.Errorf("sub-µs rate = %v, want clamped 1e7", got)
	}
}

func TestBottleneckStage(t *testing.T) {
	if got := BottleneckStage(nil); got != "" {
		t.Errorf("empty breakdown = %q", got)
	}
	bd := map[string]int64{"planning": 10, "getBatch": 400, "sinkCommit": 399}
	if got := BottleneckStage(bd); got != "getBatch" {
		t.Errorf("bottleneck = %q, want getBatch", got)
	}
	tie := map[string]int64{"b": 5, "a": 5}
	if got := BottleneckStage(tie); got != "a" {
		t.Errorf("tie bottleneck = %q, want a (alphabetical)", got)
	}
}
