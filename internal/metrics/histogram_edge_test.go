package metrics

import (
	"sync"
	"testing"
)

// TestHistogramEmptySnapshot: every statistic of an untouched histogram
// is zero — quantiles must not invent values from empty buckets.
func TestHistogramEmptySnapshot(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s != (HistogramSnapshot{}) {
		t.Errorf("empty snapshot = %+v, want all zeros", s)
	}
	for _, q := range []float64{-1, 0, 0.5, 0.99, 1, 2} {
		if v := h.Quantile(q); v != 0 {
			t.Errorf("empty Quantile(%v) = %d, want 0", q, v)
		}
	}
}

// TestHistogramSingleBucketQuantiles: when every observation lands in one
// bucket, all quantiles agree, exact below the unit-bucket boundary and
// max-capped above it.
func TestHistogramSingleBucketQuantiles(t *testing.T) {
	var small Histogram
	for i := 0; i < 1000; i++ {
		small.Observe(7) // exact unit bucket
	}
	s := small.Snapshot()
	if s.P50 != 7 || s.P95 != 7 || s.P99 != 7 || s.Max != 7 {
		t.Errorf("unit-bucket quantiles = %+v, want all 7", s)
	}

	var big Histogram
	for i := 0; i < 1000; i++ {
		big.Observe(100_000) // log-spaced bucket: midpoint capped at max
	}
	b := big.Snapshot()
	if b.P50 != 100_000 || b.P99 != 100_000 || b.Max != 100_000 {
		t.Errorf("log-bucket quantiles = %+v, want all capped at 100000", b)
	}
	if b.Count != 1000 || b.Sum != 100_000_000 {
		t.Errorf("count/sum = %d/%d", b.Count, b.Sum)
	}

	// Quantile edges: q<=0 is the lowest occupied bucket, q>=1 the max.
	var mixed Histogram
	mixed.Observe(3)
	mixed.Observe(500)
	if v := mixed.Quantile(0); v != 3 {
		t.Errorf("Quantile(0) = %d, want 3", v)
	}
	if v := mixed.Quantile(1); v != 500 {
		t.Errorf("Quantile(1) = %d, want exact max 500", v)
	}
}

// TestHistogramConcurrentObserveSnapshot hammers Observe from several
// goroutines while snapshots are taken — the histogram is lock-free, so
// this is primarily a -race exercise, plus sanity bounds on what a
// mid-flight snapshot may report.
func TestHistogramConcurrentObserveSnapshot(t *testing.T) {
	var h Histogram
	const writers, perWriter = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(seed + int64(i)%100)
			}
		}(int64(w + 1))
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		s := h.Snapshot()
		if s.Count < 0 || s.Sum < 0 || s.Count > writers*perWriter {
			t.Fatalf("impossible mid-flight snapshot: %+v", s)
		}
		if s.Max > 107 { // largest possible observation: seed 8 + 99
			t.Fatalf("max %d beyond any observed value", s.Max)
		}
		select {
		case <-done:
			final := h.Snapshot()
			if final.Count != writers*perWriter {
				t.Fatalf("final count = %d, want %d", final.Count, writers*perWriter)
			}
			if final.P50 > final.Max || final.P99 > final.Max {
				t.Fatalf("quantiles exceed max: %+v", final)
			}
			return
		default:
		}
	}
}
