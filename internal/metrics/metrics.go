// Package metrics implements the monitoring surface of §7.4: counters and
// gauges in a registry, per-epoch QueryProgress events, and a structured
// JSON event log that operators can tail or ship to external tools.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value reads the counter.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a point-in-time metric.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// SetMax raises the gauge to v if v is greater (high-water marks).
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry is a named collection of metrics.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named latency histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Snapshot renders all metrics as a sorted name→value map. Histograms
// contribute derived entries: <name>.count, .p50, .p95, .p99 and .max.
func (r *Registry) Snapshot() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters)+len(r.gauges)+5*len(r.histograms))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.histograms {
		s := h.Snapshot()
		out[name+".count"] = s.Count
		out[name+".p50"] = s.P50
		out[name+".p95"] = s.P95
		out[name+".p99"] = s.P99
		out[name+".max"] = s.Max
	}
	return out
}

// Counters returns the current value of every counter by name. The
// Prometheus exposition renderer uses it to type counter series.
func (r *Registry) Counters() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	return out
}

// Gauges returns the current value of every gauge by name.
func (r *Registry) Gauges() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.gauges))
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	return out
}

// Histograms returns a snapshot of every histogram by name.
func (r *Registry) Histograms() map[string]HistogramSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]HistogramSnapshot, len(r.histograms))
	for name, h := range r.histograms {
		out[name] = h.Snapshot()
	}
	return out
}

// Names lists metric names sorted.
func (r *Registry) Names() []string {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RatePerSec derives a rows-per-second rate from a count and an elapsed
// duration, safe for sub-millisecond (even zero-measured) epochs: the
// elapsed time is floored at one microsecond instead of dividing by zero.
func RatePerSec(n int64, elapsed time.Duration) float64 {
	if elapsed < time.Microsecond {
		elapsed = time.Microsecond
	}
	return float64(n) / elapsed.Seconds()
}

// SourceProgress is the per-source section of QueryProgress, mirroring
// Spark's SourceProgress: the offset range this epoch consumed, where the
// source's head was, and the resulting rates.
type SourceProgress struct {
	Name            string  `json:"name"`
	StartOffsets    []int64 `json:"startOffsets,omitempty"`
	EndOffsets      []int64 `json:"endOffsets,omitempty"`
	LatestOffsets   []int64 `json:"latestOffsets,omitempty"`
	NumInputRows    int64   `json:"numInputRows"`
	InputRowsPerSec float64 `json:"inputRowsPerSecond"`
	// ReadMicros is the summed source-read time across this epoch's tasks.
	ReadMicros int64 `json:"readMicros,omitempty"`
	// EventTimeMaxMicros is the newest event time this source contributed
	// this epoch; WatermarkLagUs is processing time minus this source's own
	// watermark candidate (max event time − declared delay). Both are
	// omitted for sources feeding no watermarked pipeline.
	EventTimeMaxMicros int64 `json:"eventTimeMaxMicros,omitempty"`
	WatermarkLagUs     int64 `json:"watermarkLagUs,omitempty"`
	// ReadErrors counts failed reads against this source since the query
	// started (including retried transient failures); LastErrorAtMicros and
	// LastError describe the most recent one.
	ReadErrors        int64  `json:"readErrors,omitempty"`
	LastErrorAtMicros int64  `json:"lastErrorAtMicros,omitempty"`
	LastError         string `json:"lastError,omitempty"`
}

// SinkProgress is the per-sink section of QueryProgress.
type SinkProgress struct {
	// Description names the sink kind ("memory", "json", ...).
	Description      string  `json:"description"`
	NumOutputRows    int64   `json:"numOutputRows"`
	OutputRowsPerSec float64 `json:"outputRowsPerSecond"`
	// WriteMicros is the time spent inside the sink's AddBatch this epoch.
	WriteMicros int64 `json:"writeMicros,omitempty"`
}

// StateOperatorProgress is the per-stateful-operator section of
// QueryProgress: cardinality, footprint, and the state store's cache and
// file activity, mirroring Spark's stateOperators block.
type StateOperatorProgress struct {
	Operator         string `json:"operator"`
	NumRowsTotal     int64  `json:"numRowsTotal"`
	StateBytes       int64  `json:"stateBytes"`
	CacheHits        int64  `json:"cacheHits"`
	CacheMisses      int64  `json:"cacheMisses"`
	SnapshotsWritten int64  `json:"snapshotsWritten"`
	DeltasWritten    int64  `json:"deltasWritten"`

	// LSM-backend shape and traffic; zero/omitted under the memory backend.
	Backend           string  `json:"backend,omitempty"`
	MemtableBytes     int64   `json:"memtableBytes,omitempty"`
	SSTables          int64   `json:"ssTables,omitempty"`
	SSTableBytes      int64   `json:"ssTableBytes,omitempty"`
	Flushes           int64   `json:"flushes,omitempty"`
	Compactions       int64   `json:"compactions,omitempty"`
	CompactionBytes   int64   `json:"compactionBytes,omitempty"`
	BlockCacheHits    int64   `json:"blockCacheHits,omitempty"`
	BlockCacheMisses  int64   `json:"blockCacheMisses,omitempty"`
	BlockCacheHitRate float64 `json:"blockCacheHitRate,omitempty"`
	// FlushBacklog is the number of sealed memtables waiting on background
	// flush at epoch end; MaintenanceStallUs is cumulative commit time
	// spent blocked on the backlog ceiling running maintenance inline.
	FlushBacklog       int64 `json:"flushBacklog,omitempty"`
	MaintenanceStallUs int64 `json:"maintenanceStallUs,omitempty"`
	// WatermarkLagUs is processing time minus the watermark this operator
	// ran under — how far behind real time its event-time frontier is.
	WatermarkLagUs int64 `json:"watermarkLagUs,omitempty"`
}

// EventTimeProgress is the epoch's event-time section, mirroring Spark's
// eventTime block: the min/avg/max event time observed across this
// epoch's raw input rows, the watermark in force, and the watermark's lag
// behind processing time. Present only for queries with at least one
// watermarked pipeline.
type EventTimeProgress struct {
	MinMicros int64 `json:"minMicros,omitempty"`
	AvgMicros int64 `json:"avgMicros,omitempty"`
	MaxMicros int64 `json:"maxMicros,omitempty"`
	// WatermarkMicros duplicates QueryProgress.WatermarkMicros so the
	// section is self-contained for consumers that only read eventTime.
	WatermarkMicros int64 `json:"watermarkMicros"`
	// WatermarkLagUs is processing time minus the watermark — the staleness
	// bound on what stateful operators may still revise. Omitted until the
	// watermark first advances.
	WatermarkLagUs int64 `json:"watermarkLagUs,omitempty"`
}

// QueryProgress describes one epoch of a streaming query, mirroring
// Spark's StreamingQueryProgress events.
type QueryProgress struct {
	QueryName        string  `json:"queryName"`
	Epoch            int64   `json:"epoch"`
	NumInputRows     int64   `json:"numInputRows"`
	NumOutputRows    int64   `json:"numOutputRows"`
	ProcessingMillis int64   `json:"processingMillis"`
	WatermarkMicros  int64   `json:"watermarkMicros"`
	StateRows        int64   `json:"stateRows"`
	StateBytes       int64   `json:"stateBytes"`
	InputRowsPerSec  float64 `json:"inputRowsPerSecond"`
	OutputRowsPerSec float64 `json:"outputRowsPerSecond"`
	// Vectorized reports whether the columnar execution path was enabled
	// for this query (Options.Vectorize); VectorizedRows counts how many of
	// this epoch's input rows actually ran it — rows fall back to the row
	// path per task when a batch's types drift or a stage doesn't compile
	// to kernels.
	Vectorized     bool  `json:"vectorized,omitempty"`
	VectorizedRows int64 `json:"vectorizedRows,omitempty"`
	// Workers is the sharded-runtime worker count (Options.Workers); omitted
	// on the classic single-goroutine path.
	Workers int `json:"workers,omitempty"`
	// ProcessingMicros is the epoch's wall time at µs resolution;
	// ProcessingMillis is this rounded down. Sub-millisecond epochs report
	// 0 ms but keep a meaningful µs figure, which is what rates and the
	// DurationBreakdown sum are derived from.
	ProcessingMicros int64 `json:"processingMicros"`
	// DurationBreakdown splits ProcessingMicros into disjoint wall-clock
	// stage segments (µs): planning, getBatch, execution, stateCommit,
	// walCommit, sinkCommit. The values sum to ≈ ProcessingMicros.
	DurationBreakdown map[string]int64 `json:"durationUs,omitempty"`
	// BottleneckStage names the largest DurationBreakdown segment — what
	// the adaptive backpressure limiter blames when it shrinks the cap.
	BottleneckStage string `json:"bottleneckStage,omitempty"`
	// BackpressureDecision is the AIMD limiter's latest human-readable
	// verdict ("cap 4096→1024: ... bottleneck sinkCommit (p95 34ms)"),
	// derived from the per-stage latency histograms. Empty while the
	// limiter is disengaged.
	BackpressureDecision string           `json:"backpressureDecision,omitempty"`
	Sources              []SourceProgress `json:"sources,omitempty"`
	Sink                 *SinkProgress    `json:"sink,omitempty"`
	// EventTime is the epoch's event-time telemetry (min/avg/max event
	// time, watermark, watermark lag); nil for queries with no watermarked
	// pipeline.
	EventTime *EventTimeProgress `json:"eventTime,omitempty"`
	// StateOperators reports per-stateful-operator state store activity.
	StateOperators []StateOperatorProgress `json:"stateOperators,omitempty"`
	SourceOffsets  map[string]int64        `json:"sourceEndOffsetTotals,omitempty"`
	// IORetries is the cumulative count of transient I/O failures absorbed
	// by retry (source reads, sink writes) since the query started.
	IORetries int64 `json:"ioRetries,omitempty"`
	// CorruptionsDetected is the cumulative count of corrupt records the
	// durability layer detected and safely recovered from (e.g. a torn
	// uncommitted WAL tail dropped during restart).
	CorruptionsDetected int64 `json:"corruptionsDetected,omitempty"`
	// AdmissionCapRecords is the per-epoch record cap in force when this
	// epoch was planned: the static MaxRecordsPerTrigger tightened by the
	// AIMD adaptive limiter. 0 means unlimited intake.
	AdmissionCapRecords int64 `json:"admissionCapRecords,omitempty"`
	// BacklogRecords is how many source records admission control deferred
	// past this epoch — the distance to the sources' heads at planning time.
	BacklogRecords int64 `json:"backlogRecords,omitempty"`
	// Restarts counts supervised restarts of this query across its whole
	// lifetime (carried over each time the supervisor re-Starts it).
	Restarts int64 `json:"restarts,omitempty"`
	// RestartBackoffMillis is the backoff the supervisor slept before the
	// most recent restart.
	RestartBackoffMillis int64 `json:"restartBackoffMillis,omitempty"`
}

// BottleneckStage names the largest segment of a duration breakdown, or
// "" when the breakdown is empty. Ties break alphabetically so the result
// is deterministic.
func BottleneckStage(breakdown map[string]int64) string {
	best, bestV := "", int64(-1)
	names := make([]string, 0, len(breakdown))
	for name := range breakdown {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if v := breakdown[name]; v > bestV {
			best, bestV = name, v
		}
	}
	return best
}

// Listener receives progress events.
type Listener func(p QueryProgress)

// EventLog fans progress events out to listeners and optionally appends
// them as JSON lines to a writer. Delivery is totally ordered: the order
// events land in history is the order every listener observes and the
// order JSON lines hit the writer, even under concurrent emitters. Writer
// failures are not swallowed — they are counted (WriteFailures, and the
// eventLogWriteFailures counter of an attached registry).
type EventLog struct {
	// emitMu serializes whole emissions, pinning listener/writer delivery
	// to history order. Listeners must not call Emit re-entrantly.
	emitMu sync.Mutex
	// mu guards listeners and history for concurrent readers.
	mu        sync.Mutex
	listeners []Listener
	w         io.Writer
	history   []QueryProgress
	// HistoryLimit bounds retained events (default 1024).
	HistoryLimit int

	writeFailures atomic.Int64
	evicted       atomic.Int64
	reg           *Registry
}

// NewEventLog creates an event log; w may be nil.
func NewEventLog(w io.Writer) *EventLog {
	return &EventLog{w: w, HistoryLimit: 1024}
}

// SetRegistry mirrors the log's delivery counters (eventLogWriteFailures,
// eventLogEvicted) into a metric registry.
func (l *EventLog) SetRegistry(r *Registry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.reg = r
}

// AddListener registers a listener for future events.
func (l *EventLog) AddListener(fn Listener) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.listeners = append(l.listeners, fn)
}

// WriteFailures counts JSON-line writes that failed (marshal or writer
// error). The events still reached history and listeners.
func (l *EventLog) WriteFailures() int64 { return l.writeFailures.Load() }

// Evicted counts events dropped from history by HistoryLimit.
func (l *EventLog) Evicted() int64 { return l.evicted.Load() }

// Emit publishes one progress event: history first, then the writer, then
// every listener, all under the emission lock so concurrent emitters
// cannot interleave deliveries out of history order.
func (l *EventLog) Emit(p QueryProgress) {
	l.emitMu.Lock()
	defer l.emitMu.Unlock()

	l.mu.Lock()
	l.history = append(l.history, p)
	if limit := l.HistoryLimit; limit > 0 && len(l.history) > limit {
		n := len(l.history) - limit
		l.history = l.history[n:]
		l.evicted.Add(int64(n))
	}
	listeners := append([]Listener(nil), l.listeners...)
	w := l.w
	reg := l.reg
	l.mu.Unlock()

	if w != nil {
		data, err := json.Marshal(p)
		if err == nil {
			_, err = fmt.Fprintf(w, "%s\n", data)
		}
		if err != nil {
			l.writeFailures.Add(1)
			if reg != nil {
				reg.Counter("eventLogWriteFailures").Add(1)
			}
		}
	}
	if reg != nil && l.evicted.Load() > 0 {
		reg.Gauge("eventLogEvicted").Set(l.evicted.Load())
	}
	for _, fn := range listeners {
		fn(p)
	}
}

// Recent returns up to n most recent events, oldest first.
func (l *EventLog) Recent(n int) []QueryProgress {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n <= 0 || n > len(l.history) {
		n = len(l.history)
	}
	out := make([]QueryProgress, n)
	copy(out, l.history[len(l.history)-n:])
	return out
}
