// Package metrics implements the monitoring surface of §7.4: counters and
// gauges in a registry, per-epoch QueryProgress events, and a structured
// JSON event log that operators can tail or ship to external tools.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value reads the counter.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a point-in-time metric.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry is a named collection of metrics.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{counters: map[string]*Counter{}, gauges: map[string]*Gauge{}}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Snapshot renders all metrics as a sorted name→value map.
func (r *Registry) Snapshot() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters)+len(r.gauges))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	return out
}

// Names lists metric names sorted.
func (r *Registry) Names() []string {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// QueryProgress describes one epoch of a streaming query, mirroring
// Spark's StreamingQueryProgress events.
type QueryProgress struct {
	QueryName        string           `json:"queryName"`
	Epoch            int64            `json:"epoch"`
	NumInputRows     int64            `json:"numInputRows"`
	NumOutputRows    int64            `json:"numOutputRows"`
	ProcessingMillis int64            `json:"processingMillis"`
	WatermarkMicros  int64            `json:"watermarkMicros"`
	StateRows        int64            `json:"stateRows"`
	StateBytes       int64            `json:"stateBytes"`
	InputRowsPerSec  float64          `json:"inputRowsPerSecond"`
	SourceOffsets    map[string]int64 `json:"sourceEndOffsetTotals,omitempty"`
	// IORetries is the cumulative count of transient I/O failures absorbed
	// by retry (source reads, sink writes) since the query started.
	IORetries int64 `json:"ioRetries,omitempty"`
	// CorruptionsDetected is the cumulative count of corrupt records the
	// durability layer detected and safely recovered from (e.g. a torn
	// uncommitted WAL tail dropped during restart).
	CorruptionsDetected int64 `json:"corruptionsDetected,omitempty"`
	// AdmissionCapRecords is the per-epoch record cap in force when this
	// epoch was planned: the static MaxRecordsPerTrigger tightened by the
	// AIMD adaptive limiter. 0 means unlimited intake.
	AdmissionCapRecords int64 `json:"admissionCapRecords,omitempty"`
	// BacklogRecords is how many source records admission control deferred
	// past this epoch — the distance to the sources' heads at planning time.
	BacklogRecords int64 `json:"backlogRecords,omitempty"`
	// Restarts counts supervised restarts of this query across its whole
	// lifetime (carried over each time the supervisor re-Starts it).
	Restarts int64 `json:"restarts,omitempty"`
	// RestartBackoffMillis is the backoff the supervisor slept before the
	// most recent restart.
	RestartBackoffMillis int64 `json:"restartBackoffMillis,omitempty"`
}

// Listener receives progress events.
type Listener func(p QueryProgress)

// EventLog fans progress events out to listeners and optionally appends
// them as JSON lines to a writer.
type EventLog struct {
	mu        sync.Mutex
	listeners []Listener
	w         io.Writer
	history   []QueryProgress
	// HistoryLimit bounds retained events (default 1024).
	HistoryLimit int
}

// NewEventLog creates an event log; w may be nil.
func NewEventLog(w io.Writer) *EventLog {
	return &EventLog{w: w, HistoryLimit: 1024}
}

// AddListener registers a listener for future events.
func (l *EventLog) AddListener(fn Listener) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.listeners = append(l.listeners, fn)
}

// Emit publishes one progress event.
func (l *EventLog) Emit(p QueryProgress) {
	l.mu.Lock()
	listeners := append([]Listener(nil), l.listeners...)
	l.history = append(l.history, p)
	if limit := l.HistoryLimit; limit > 0 && len(l.history) > limit {
		l.history = l.history[len(l.history)-limit:]
	}
	w := l.w
	l.mu.Unlock()
	if w != nil {
		data, err := json.Marshal(p)
		if err == nil {
			fmt.Fprintf(w, "%s\n", data)
		}
	}
	for _, fn := range listeners {
		fn(p)
	}
}

// Recent returns up to n most recent events, oldest first.
func (l *EventLog) Recent(n int) []QueryProgress {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n <= 0 || n > len(l.history) {
		n = len(l.history)
	}
	out := make([]QueryProgress, n)
	copy(out, l.history[len(l.history)-n:])
	return out
}
