// Package colfmt implements a compact column-oriented table file format —
// the reproduction's stand-in for Parquet tables on S3 in the paper's use
// cases (§8). A table is a directory of immutable segment files plus a
// _manifest.json naming the visible segments; the manifest is replaced by
// atomic rename, which gives readers the all-or-nothing visibility that
// the paper's file sink requires (§2.2: updates must appear atomically).
// Segments store values column-by-column with per-column min/max stats.
package colfmt

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"structream/internal/fsx"
	"structream/internal/sql"
	"structream/internal/sql/codec"
)

var magic = []byte("SSCF")

// ColumnStats carries per-column min/max (display form) for a segment.
type ColumnStats struct {
	Min string `json:"min,omitempty"`
	Max string `json:"max,omitempty"`
}

// SegmentInfo describes one segment file in the manifest.
type SegmentInfo struct {
	File  string        `json:"file"`
	Rows  int64         `json:"rows"`
	Epoch int64         `json:"epoch"`
	Stats []ColumnStats `json:"stats,omitempty"`
}

// Manifest is the table's committed view: schema plus visible segments.
type Manifest struct {
	Schema   []ManifestField `json:"schema"`
	Segments []SegmentInfo   `json:"segments"`
}

// ManifestField is one schema column in the manifest.
type ManifestField struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

const manifestFile = "_manifest.json"

// schemaToManifest converts an engine schema for the manifest.
func schemaToManifest(s sql.Schema) []ManifestField {
	out := make([]ManifestField, s.Len())
	for i, f := range s.Fields {
		out[i] = ManifestField{Name: f.Name, Type: f.Type.String()}
	}
	return out
}

// manifestToSchema converts back, failing on unknown type names.
func manifestToSchema(fields []ManifestField) (sql.Schema, error) {
	out := make([]sql.Field, len(fields))
	for i, f := range fields {
		t, ok := sql.TypeByName(f.Type)
		if !ok {
			switch f.Type { // types without CAST names
			case "window":
				t = sql.TypeWindow
			case "null":
				t = sql.TypeNull
			default:
				return sql.Schema{}, fmt.Errorf("colfmt: unknown type %q in manifest", f.Type)
			}
		}
		out[i] = sql.Field{Name: f.Name, Type: t}
	}
	return sql.Schema{Fields: out}, nil
}

// WriteSegment writes rows as one immutable segment file named name within
// dir and returns its info. The write is atomic (temp + rename), so a
// half-written segment is never visible under its final name.
func WriteSegment(dir, name string, schema sql.Schema, rows []sql.Row, epoch int64) (SegmentInfo, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return SegmentInfo{}, fmt.Errorf("colfmt: %w", err)
	}
	ncols := schema.Len()
	buf := append([]byte(nil), magic...)
	buf = binary.AppendUvarint(buf, uint64(ncols))
	for _, f := range schema.Fields {
		buf = binary.AppendUvarint(buf, uint64(len(f.Name)))
		buf = append(buf, f.Name...)
		buf = append(buf, byte(f.Type))
	}
	buf = binary.AppendUvarint(buf, uint64(len(rows)))
	stats := make([]ColumnStats, ncols)
	for c := 0; c < ncols; c++ {
		enc := codec.NewEncoder(16 * len(rows))
		var minV, maxV sql.Value
		for _, r := range rows {
			v := r[c]
			enc.PutValue(v)
			if v == nil {
				continue
			}
			if minV == nil || sql.Compare(v, minV) < 0 {
				minV = v
			}
			if maxV == nil || sql.Compare(v, maxV) > 0 {
				maxV = v
			}
		}
		if minV != nil {
			stats[c] = ColumnStats{Min: sql.AsString(minV), Max: sql.AsString(maxV)}
		}
		col := enc.Bytes()
		buf = binary.AppendUvarint(buf, uint64(len(col)))
		buf = append(buf, col...)
	}
	path := filepath.Join(dir, name)
	if err := atomicWrite(path, buf); err != nil {
		return SegmentInfo{}, err
	}
	return SegmentInfo{File: name, Rows: int64(len(rows)), Epoch: epoch, Stats: stats}, nil
}

// ReadSegment loads a whole segment.
func ReadSegment(dir, name string) (sql.Schema, []sql.Row, error) {
	schema, cols, nrows, err := readSegmentColumns(dir, name, nil)
	if err != nil {
		return sql.Schema{}, nil, err
	}
	rows := make([]sql.Row, nrows)
	for i := range rows {
		row := make(sql.Row, len(cols))
		for c := range cols {
			row[c] = cols[c][i]
		}
		rows[i] = row
	}
	return schema, rows, nil
}

// ReadSegmentColumns loads only the named columns of a segment (projection
// pushdown). Columns come back in the order requested.
func ReadSegmentColumns(dir, name string, columns []string) (sql.Schema, [][]sql.Value, error) {
	schema, cols, _, err := readSegmentColumns(dir, name, columns)
	return schema, cols, err
}

// parseSegmentHeader reads a segment's magic, schema, and row count,
// returning the fields, row count, and the offset of the first column
// block.
func parseSegmentHeader(data []byte, name string) ([]sql.Field, int, int, error) {
	if len(data) < len(magic) || string(data[:len(magic)]) != string(magic) {
		return nil, 0, 0, fmt.Errorf("colfmt: %s is not a segment file", name)
	}
	pos := len(magic)
	ncols, n := binary.Uvarint(data[pos:])
	if n <= 0 {
		return nil, 0, 0, fmt.Errorf("colfmt: corrupt header in %s", name)
	}
	pos += n
	fields := make([]sql.Field, ncols)
	for i := range fields {
		nameLen, n := binary.Uvarint(data[pos:])
		if n <= 0 || pos+n+int(nameLen)+1 > len(data) {
			return nil, 0, 0, fmt.Errorf("colfmt: corrupt schema in %s", name)
		}
		pos += n
		fields[i].Name = string(data[pos : pos+int(nameLen)])
		pos += int(nameLen)
		fields[i].Type = sql.Type(data[pos])
		pos++
	}
	nrows, n := binary.Uvarint(data[pos:])
	if n <= 0 {
		return nil, 0, 0, fmt.Errorf("colfmt: corrupt row count in %s", name)
	}
	pos += n
	return fields, int(nrows), pos, nil
}

func readSegmentColumns(dir, name string, wanted []string) (sql.Schema, [][]sql.Value, int, error) {
	data, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		return sql.Schema{}, nil, 0, fmt.Errorf("colfmt: %w", err)
	}
	fields, nrowsInt, pos, err := parseSegmentHeader(data, name)
	if err != nil {
		return sql.Schema{}, nil, 0, err
	}
	fullSchema := sql.Schema{Fields: fields}
	ncols := uint64(len(fields))
	nrows := uint64(nrowsInt)

	// Map wanted column names to ordinals; nil means all.
	ordinals := make([]int, 0, ncols)
	if wanted == nil {
		for i := 0; i < int(ncols); i++ {
			ordinals = append(ordinals, i)
		}
	} else {
		for _, w := range wanted {
			idx, err := fullSchema.Resolve(w)
			if err != nil {
				return sql.Schema{}, nil, 0, fmt.Errorf("colfmt: %v", err)
			}
			ordinals = append(ordinals, idx)
		}
	}
	want := map[int]int{} // column ordinal → output slot
	for slot, ord := range ordinals {
		want[ord] = slot
	}

	out := make([][]sql.Value, len(ordinals))
	for c := 0; c < int(ncols); c++ {
		blockLen, n := binary.Uvarint(data[pos:])
		if n <= 0 || pos+n+int(blockLen) > len(data) {
			return sql.Schema{}, nil, 0, fmt.Errorf("colfmt: corrupt column block %d in %s", c, name)
		}
		pos += n
		block := data[pos : pos+int(blockLen)]
		pos += int(blockLen)
		slot, needed := want[c]
		if !needed {
			continue
		}
		vals, err := codec.DecodeValues(block)
		if err != nil {
			return sql.Schema{}, nil, 0, fmt.Errorf("colfmt: column %d of %s: %v", c, name, err)
		}
		if uint64(len(vals)) != nrows {
			return sql.Schema{}, nil, 0, fmt.Errorf("colfmt: column %d of %s has %d values, want %d", c, name, len(vals), nrows)
		}
		out[slot] = vals
	}
	outFields := make([]sql.Field, len(ordinals))
	for slot, ord := range ordinals {
		outFields[slot] = fields[ord]
	}
	return sql.Schema{Fields: outFields}, out, int(nrows), nil
}

// ---------------------------------------------------------------- table

// Table is a committed view over a table directory.
type Table struct {
	Dir      string
	Schema   sql.Schema
	Segments []SegmentInfo
}

// OpenTable reads the manifest; a missing manifest yields an empty table
// with an empty schema.
func OpenTable(dir string) (*Table, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if os.IsNotExist(err) {
		return &Table{Dir: dir}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("colfmt: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("colfmt: corrupt manifest in %s: %w", dir, err)
	}
	schema, err := manifestToSchema(m.Schema)
	if err != nil {
		return nil, err
	}
	return &Table{Dir: dir, Schema: schema, Segments: m.Segments}, nil
}

// ReadAll loads every row of the table, segments in manifest order.
func (t *Table) ReadAll() ([]sql.Row, error) {
	var out []sql.Row
	for _, seg := range t.Segments {
		_, rows, err := ReadSegment(t.Dir, seg.File)
		if err != nil {
			return nil, err
		}
		out = append(out, rows...)
	}
	return out, nil
}

// Rows reports the total row count from segment metadata without reading
// data blocks.
func (t *Table) Rows() int64 {
	var n int64
	for _, s := range t.Segments {
		n += s.Rows
	}
	return n
}

// CommitManifest atomically replaces the table's manifest with the given
// schema and segment list. Readers see either the old or the new view.
func CommitManifest(dir string, schema sql.Schema, segments []SegmentInfo) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("colfmt: %w", err)
	}
	sort.Slice(segments, func(i, j int) bool {
		if segments[i].Epoch != segments[j].Epoch {
			return segments[i].Epoch < segments[j].Epoch
		}
		return segments[i].File < segments[j].File
	})
	m := Manifest{Schema: schemaToManifest(schema), Segments: segments}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("colfmt: %w", err)
	}
	return atomicWrite(filepath.Join(dir, manifestFile), append(data, '\n'))
}

// AppendSegments commits the union of the current manifest and the new
// segments, replacing any existing segments from the same epoch (which is
// what makes re-running a failed epoch idempotent).
func AppendSegments(dir string, schema sql.Schema, epoch int64, segments []SegmentInfo) error {
	t, err := OpenTable(dir)
	if err != nil {
		return err
	}
	kept := t.Segments[:0:0]
	for _, s := range t.Segments {
		if s.Epoch != epoch {
			kept = append(kept, s)
		}
	}
	kept = append(kept, segments...)
	return CommitManifest(dir, schema, kept)
}

// DropSegmentsAfter removes manifest entries from epochs greater than
// keep — the sink-side half of a manual rollback (§7.2).
func DropSegmentsAfter(dir string, keep int64) error {
	t, err := OpenTable(dir)
	if err != nil {
		return err
	}
	kept := t.Segments[:0:0]
	for _, s := range t.Segments {
		if s.Epoch <= keep {
			kept = append(kept, s)
		}
	}
	return CommitManifest(dir, t.Schema, kept)
}

func atomicWrite(path string, data []byte) error {
	// The hardened filesystem fsyncs the file and its parent directory, so
	// a committed segment or manifest survives a power loss.
	if err := fsx.WriteAtomic(fsx.Real(), path, data, 0o644); err != nil {
		return fmt.Errorf("colfmt: %w", err)
	}
	return nil
}
