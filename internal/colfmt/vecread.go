package colfmt

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"structream/internal/sql"
	"structream/internal/sql/codec"
	"structream/internal/sql/vec"
)

// ReadSegmentVec loads a whole segment straight into typed column
// vectors — the columnar fast path for batch scans over file tables,
// skipping both the per-row sql.Row allocation and per-cell boxing of
// ReadSegment. ok=false (with no error) means some stored value's wire
// type does not match the segment schema, so the caller must fall back
// to the boxed reader, which represents such values faithfully.
func ReadSegmentVec(dir, name string) (sql.Schema, *vec.Batch, bool, error) {
	data, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		return sql.Schema{}, nil, false, fmt.Errorf("colfmt: %w", err)
	}
	fields, nrows, pos, err := parseSegmentHeader(data, name)
	if err != nil {
		return sql.Schema{}, nil, false, err
	}
	schema := sql.Schema{Fields: fields}
	b := vec.NewBatch(schema, nrows)
	for c := range fields {
		blockLen, n := binary.Uvarint(data[pos:])
		if n <= 0 || pos+n+int(blockLen) > len(data) {
			return sql.Schema{}, nil, false, fmt.Errorf("colfmt: corrupt column block %d in %s", c, name)
		}
		pos += n
		block := data[pos : pos+int(blockLen)]
		pos += int(blockLen)
		ok, err := codec.DecodeColumnToVector(block, b.Cols[c], nrows)
		if err != nil {
			return sql.Schema{}, nil, false, fmt.Errorf("colfmt: column %d of %s: %v", c, name, err)
		}
		if !ok {
			return sql.Schema{}, nil, false, nil
		}
	}
	b.Len = nrows
	return schema, b, true, nil
}

// TableSource streams a table's committed segments, one batch per
// segment. It satisfies the physical layer's RowSource, and its NextVec
// additionally serves each segment as a typed column batch so vectorized
// scans never box cell values; segments whose stored types drift from
// the schema come back as rows.
type TableSource struct {
	t   *Table
	idx int
}

// NewTableSource builds a source over a table's manifest snapshot.
// Segment files are immutable, so the snapshot serves a consistent view
// no matter when batches are pulled.
func NewTableSource(t *Table) *TableSource { return &TableSource{t: t} }

// Schema returns the table schema.
func (s *TableSource) Schema() sql.Schema { return s.t.Schema }

// Next returns the next segment's rows; (nil, nil) at the end.
func (s *TableSource) Next() ([]sql.Row, error) {
	for s.idx < len(s.t.Segments) {
		seg := s.t.Segments[s.idx]
		s.idx++
		_, rows, err := ReadSegment(s.t.Dir, seg.File)
		if err != nil {
			return nil, err
		}
		if len(rows) == 0 {
			continue
		}
		return rows, nil
	}
	return nil, nil
}

// NextVec returns the next segment as a column batch, or as rows when
// its stored types drift from the schema; (nil, nil, nil) at the end.
func (s *TableSource) NextVec() (*vec.Batch, []sql.Row, error) {
	for s.idx < len(s.t.Segments) {
		seg := s.t.Segments[s.idx]
		s.idx++
		_, b, ok, err := ReadSegmentVec(s.t.Dir, seg.File)
		if err != nil {
			return nil, nil, err
		}
		if ok {
			if b.Len == 0 {
				continue
			}
			return b, nil, nil
		}
		_, rows, err := ReadSegment(s.t.Dir, seg.File)
		if err != nil {
			return nil, nil, err
		}
		if len(rows) == 0 {
			continue
		}
		return nil, rows, nil
	}
	return nil, nil, nil
}

// Close makes the source report exhaustion on further pulls.
func (s *TableSource) Close() error {
	s.idx = len(s.t.Segments)
	return nil
}
