package colfmt

import (
	"os"
	"path/filepath"
	"testing"

	"structream/internal/sql"
)

var schema = sql.NewSchema(
	sql.Field{Name: "id", Type: sql.TypeInt64},
	sql.Field{Name: "name", Type: sql.TypeString},
	sql.Field{Name: "score", Type: sql.TypeFloat64},
)

var rows = []sql.Row{
	{int64(1), "a", 1.5},
	{int64(2), "b", nil},
	{int64(3), nil, -2.0},
}

func TestSegmentRoundTrip(t *testing.T) {
	dir := t.TempDir()
	info, err := WriteSegment(dir, "part-0.seg", schema, rows, 7)
	if err != nil {
		t.Fatal(err)
	}
	if info.Rows != 3 || info.Epoch != 7 {
		t.Errorf("info = %+v", info)
	}
	gotSchema, gotRows, err := ReadSegment(dir, "part-0.seg")
	if err != nil {
		t.Fatal(err)
	}
	if !gotSchema.Equal(schema) {
		t.Errorf("schema = %s", gotSchema)
	}
	if len(gotRows) != len(rows) {
		t.Fatalf("rows = %d", len(gotRows))
	}
	for i := range rows {
		for c := range rows[i] {
			if gotRows[i][c] != rows[i][c] {
				t.Errorf("row %d col %d: %v != %v", i, c, gotRows[i][c], rows[i][c])
			}
		}
	}
}

func TestSegmentStats(t *testing.T) {
	dir := t.TempDir()
	info, err := WriteSegment(dir, "s.seg", schema, rows, 0)
	if err != nil {
		t.Fatal(err)
	}
	if info.Stats[0].Min != "1" || info.Stats[0].Max != "3" {
		t.Errorf("id stats = %+v", info.Stats[0])
	}
	if info.Stats[1].Min != "a" || info.Stats[1].Max != "b" {
		t.Errorf("name stats = %+v", info.Stats[1])
	}
	if info.Stats[2].Min != "-2.0" || info.Stats[2].Max != "1.5" {
		t.Errorf("score stats = %+v", info.Stats[2])
	}
}

func TestColumnProjection(t *testing.T) {
	dir := t.TempDir()
	if _, err := WriteSegment(dir, "s.seg", schema, rows, 0); err != nil {
		t.Fatal(err)
	}
	gotSchema, cols, err := ReadSegmentColumns(dir, "s.seg", []string{"score", "id"})
	if err != nil {
		t.Fatal(err)
	}
	if gotSchema.Len() != 2 || gotSchema.Field(0).Name != "score" || gotSchema.Field(1).Name != "id" {
		t.Errorf("schema = %s", gotSchema)
	}
	if cols[1][2] != int64(3) || cols[0][0] != 1.5 {
		t.Errorf("cols = %v", cols)
	}
	if _, _, err := ReadSegmentColumns(dir, "s.seg", []string{"missing"}); err == nil {
		t.Error("missing column should error")
	}
}

func TestEmptySegment(t *testing.T) {
	dir := t.TempDir()
	if _, err := WriteSegment(dir, "empty.seg", schema, nil, 0); err != nil {
		t.Fatal(err)
	}
	_, got, err := ReadSegment(dir, "empty.seg")
	if err != nil || len(got) != 0 {
		t.Errorf("rows=%v err=%v", got, err)
	}
}

func TestManifestCommitAndOpen(t *testing.T) {
	dir := t.TempDir()
	s1, _ := WriteSegment(dir, "part-0-0.seg", schema, rows[:2], 0)
	s2, _ := WriteSegment(dir, "part-1-0.seg", schema, rows[2:], 1)
	if err := CommitManifest(dir, schema, []SegmentInfo{s1, s2}); err != nil {
		t.Fatal(err)
	}
	tbl, err := OpenTable(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Schema.Equal(schema) || len(tbl.Segments) != 2 || tbl.Rows() != 3 {
		t.Errorf("table = %+v", tbl)
	}
	all, err := tbl.ReadAll()
	if err != nil || len(all) != 3 {
		t.Errorf("rows = %d err=%v", len(all), err)
	}
}

func TestOpenMissingTableIsEmpty(t *testing.T) {
	tbl, err := OpenTable(t.TempDir())
	if err != nil || len(tbl.Segments) != 0 || tbl.Rows() != 0 {
		t.Errorf("tbl=%+v err=%v", tbl, err)
	}
}

func TestAppendSegmentsIdempotentByEpoch(t *testing.T) {
	dir := t.TempDir()
	s0, _ := WriteSegment(dir, "e0.seg", schema, rows[:1], 0)
	if err := AppendSegments(dir, schema, 0, []SegmentInfo{s0}); err != nil {
		t.Fatal(err)
	}
	s1, _ := WriteSegment(dir, "e1.seg", schema, rows[1:], 1)
	if err := AppendSegments(dir, schema, 1, []SegmentInfo{s1}); err != nil {
		t.Fatal(err)
	}
	tbl, _ := OpenTable(dir)
	if tbl.Rows() != 3 {
		t.Fatalf("rows = %d", tbl.Rows())
	}
	// Re-running epoch 1 (failure replay) replaces, not duplicates.
	s1b, _ := WriteSegment(dir, "e1.seg", schema, rows[1:], 1)
	if err := AppendSegments(dir, schema, 1, []SegmentInfo{s1b}); err != nil {
		t.Fatal(err)
	}
	tbl, _ = OpenTable(dir)
	if tbl.Rows() != 3 {
		t.Errorf("rows after replay = %d, want 3 (idempotent)", tbl.Rows())
	}
}

func TestDropSegmentsAfterRollback(t *testing.T) {
	dir := t.TempDir()
	for e := int64(0); e < 4; e++ {
		seg, _ := WriteSegment(dir, filepath.Base(dir)+string(rune('a'+e))+".seg", schema, rows[:1], e)
		if err := AppendSegments(dir, schema, e, []SegmentInfo{seg}); err != nil {
			t.Fatal(err)
		}
	}
	if err := DropSegmentsAfter(dir, 1); err != nil {
		t.Fatal(err)
	}
	tbl, _ := OpenTable(dir)
	if len(tbl.Segments) != 2 {
		t.Errorf("segments = %+v", tbl.Segments)
	}
	for _, s := range tbl.Segments {
		if s.Epoch > 1 {
			t.Errorf("segment from epoch %d survived rollback", s.Epoch)
		}
	}
}

func TestCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "bad.seg"), []byte("not a segment"), 0o644)
	if _, _, err := ReadSegment(dir, "bad.seg"); err == nil {
		t.Error("bad magic should error")
	}
	os.WriteFile(filepath.Join(dir, manifestFile), []byte("{oops"), 0o644)
	if _, err := OpenTable(dir); err == nil {
		t.Error("corrupt manifest should error")
	}
	if _, _, err := ReadSegment(dir, "missing.seg"); err == nil {
		t.Error("missing segment should error")
	}
}

func TestWindowValuesInSegments(t *testing.T) {
	wschema := sql.NewSchema(
		sql.Field{Name: "window", Type: sql.TypeWindow},
		sql.Field{Name: "cnt", Type: sql.TypeInt64},
	)
	wrows := []sql.Row{
		{sql.Window{Start: 0, End: 10_000_000}, int64(5)},
		{sql.Window{Start: 10_000_000, End: 20_000_000}, int64(3)},
	}
	dir := t.TempDir()
	seg, err := WriteSegment(dir, "w.seg", wschema, wrows, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := CommitManifest(dir, wschema, []SegmentInfo{seg}); err != nil {
		t.Fatal(err)
	}
	tbl, err := OpenTable(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tbl.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if got[0][0] != wrows[0][0] || got[1][1] != int64(3) {
		t.Errorf("rows = %v", got)
	}
}
