package engine

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"structream/internal/incremental"
	"structream/internal/msgbus"
	"structream/internal/sinks"
	"structream/internal/sources"
	"structream/internal/sql"
	"structream/internal/sql/analysis"
	"structream/internal/sql/codec"
	"structream/internal/sql/logical"
	"structream/internal/sql/optimizer"
	"structream/internal/sql/physical"
)

// eventsSchema is the standard test stream: keyed, valued, timestamped.
var eventsSchema = sql.NewSchema(
	sql.Field{Name: "k", Type: sql.TypeString},
	sql.Field{Name: "v", Type: sql.TypeFloat64},
	sql.Field{Name: "ts", Type: sql.TypeTimestamp},
)

const sec = int64(1_000_000)

// compile analyzes, optimizes and incrementalizes a logical plan.
func compile(t *testing.T, plan logical.Plan, mode logical.OutputMode, resolver physical.ScanResolver) *incremental.Query {
	t.Helper()
	analyzed, err := analysis.Analyze(plan)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if err := analysis.CheckStreaming(analyzed, mode); err != nil {
		t.Fatalf("check streaming: %v", err)
	}
	optimized := optimizer.Optimize(analyzed)
	q, err := incremental.Compile(optimized, mode, resolver)
	if err != nil {
		t.Fatalf("incrementalize: %v", err)
	}
	return q
}

func streamScan(name string) *logical.Scan {
	return &logical.Scan{Name: name, Streaming: true, Out: eventsSchema}
}

func startQuery(t *testing.T, q *incremental.Query, srcs map[string]sources.Source, sink sinks.Sink, opts Options) *StreamingQuery {
	t.Helper()
	if opts.Checkpoint == "" {
		opts.Checkpoint = t.TempDir()
	}
	if opts.Trigger == nil {
		opts.Trigger = ProcessingTimeTrigger{Interval: time.Hour} // driven manually
	}
	sq, err := Start(q, srcs, sink, opts)
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	t.Cleanup(func() { sq.Stop() })
	return sq
}

func sortedStrings(rows []sql.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	sort.Strings(out)
	return out
}

func expectRows(t *testing.T, rows []sql.Row, want ...string) {
	t.Helper()
	got := sortedStrings(rows)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("got %d rows %v, want %d %v", len(got), got, len(want), want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("row %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

// ---------------------------------------------------------------- map-only

func TestMapOnlyQuery(t *testing.T) {
	src := sources.NewMemorySource("events", eventsSchema)
	plan := &logical.Project{
		Child: &logical.Filter{Child: streamScan("events"),
			Cond: sql.Gt(sql.Col("v"), sql.Lit(10.0))},
		Exprs: []sql.Expr{sql.Col("k"), sql.As(sql.Mul(sql.Col("v"), sql.Lit(2.0)), "v2")},
	}
	q := compile(t, plan, logical.Append, nil)
	sink := sinks.NewMemorySink()
	sq := startQuery(t, q, map[string]sources.Source{"events": src}, sink, Options{})

	src.AddData(sql.Row{"a", 5.0, 0}, sql.Row{"b", 20.0, 0})
	if err := sq.ProcessAllAvailable(); err != nil {
		t.Fatal(err)
	}
	src.AddData(sql.Row{"c", 30.0, 0})
	if err := sq.ProcessAllAvailable(); err != nil {
		t.Fatal(err)
	}
	expectRows(t, sink.Rows(), "[b, 40.0]", "[c, 60.0]")
	if p, ok := sq.LastProgress(); !ok || p.NumInputRows != 1 {
		t.Errorf("progress = %+v ok=%v", p, ok)
	}
}

// ---------------------------------------------------------------- agg

func countByKey(child logical.Plan) *logical.Aggregate {
	return &logical.Aggregate{Child: child, Keys: []sql.Expr{sql.Col("k")},
		Aggs: []logical.NamedAgg{
			{Agg: sql.CountAll(), Name: "cnt"},
			{Agg: sql.SumOf(sql.Col("v")), Name: "total"},
		}}
}

func TestAggregationCompleteMode(t *testing.T) {
	src := sources.NewMemorySource("events", eventsSchema)
	q := compile(t, countByKey(streamScan("events")), logical.Complete, nil)
	sink := sinks.NewMemorySink()
	sq := startQuery(t, q, map[string]sources.Source{"events": src}, sink, Options{})

	src.AddData(sql.Row{"a", 1.0, 0}, sql.Row{"b", 2.0, 0})
	if err := sq.ProcessAllAvailable(); err != nil {
		t.Fatal(err)
	}
	expectRows(t, sink.Rows(), "[a, 1, 1.0]", "[b, 1, 2.0]")

	// Second epoch: complete mode re-emits the whole (merged) table.
	src.AddData(sql.Row{"a", 3.0, 0})
	if err := sq.ProcessAllAvailable(); err != nil {
		t.Fatal(err)
	}
	expectRows(t, sink.Rows(), "[a, 2, 4.0]", "[b, 1, 2.0]")
}

func TestAggregationUpdateMode(t *testing.T) {
	src := sources.NewMemorySource("events", eventsSchema)
	q := compile(t, countByKey(streamScan("events")), logical.Update, nil)
	if q.KeyArity != 1 {
		t.Fatalf("KeyArity = %d", q.KeyArity)
	}
	sink := sinks.NewMemorySink()
	sq := startQuery(t, q, map[string]sources.Source{"events": src}, sink, Options{})

	src.AddData(sql.Row{"a", 1.0, 0}, sql.Row{"b", 2.0, 0})
	sq.ProcessAllAvailable()
	src.AddData(sql.Row{"a", 3.0, 0}) // only "a" changes
	sq.ProcessAllAvailable()
	// The upserted view has both keys, with a's latest value.
	expectRows(t, sink.Rows(), "[a, 2, 4.0]", "[b, 1, 2.0]")
}

func TestWindowedAggregationAppendModeWithWatermark(t *testing.T) {
	src := sources.NewMemorySource("events", eventsSchema)
	plan := &logical.Aggregate{
		Child: &logical.WithWatermark{Child: streamScan("events"), Column: "ts", Delay: 5 * sec},
		Keys:  []sql.Expr{sql.NewWindow(sql.Col("ts"), 10*time.Second, 0)},
		Aggs:  []logical.NamedAgg{{Agg: sql.CountAll(), Name: "cnt"}},
	}
	q := compile(t, plan, logical.Append, nil)
	sink := sinks.NewMemorySink()
	sq := startQuery(t, q, map[string]sources.Source{"events": src}, sink, Options{})

	// Events in window [0,10s); nothing can be emitted yet.
	src.AddData(sql.Row{"a", 1.0, 1 * sec}, sql.Row{"b", 1.0, 9 * sec})
	sq.ProcessAllAvailable()
	if len(sink.Rows()) != 0 {
		t.Fatalf("premature append output: %v", sortedStrings(sink.Rows()))
	}
	// Event at t=16s: watermark becomes 16-5=11s > window end 10s → the
	// first window finalizes on the following epoch.
	src.AddData(sql.Row{"c", 1.0, 16 * sec})
	sq.ProcessAllAvailable()
	rows := sink.Rows()
	if len(rows) != 1 {
		t.Fatalf("rows = %v (watermark=%d)", sortedStrings(rows), sq.Watermark())
	}
	w := rows[0][0].(sql.Window)
	if w.Start != 0 || w.End != 10*sec || rows[0][1] != int64(2) {
		t.Errorf("row = %v", rows[0])
	}
	// Late data for the finalized window is dropped, not re-emitted.
	src.AddData(sql.Row{"late", 1.0, 2 * sec})
	sq.ProcessAllAvailable()
	if len(sink.Rows()) != 1 {
		t.Errorf("late data leaked: %v", sortedStrings(sink.Rows()))
	}
	// State for the finalized window was evicted.
	if p, _ := sq.LastProgress(); p.StateRows != 1 {
		t.Errorf("state rows = %d, want 1 (only the [10,20) window)", p.StateRows)
	}
}

func TestSlidingWindowCounts(t *testing.T) {
	src := sources.NewMemorySource("events", eventsSchema)
	plan := &logical.Aggregate{
		Child: streamScan("events"),
		Keys:  []sql.Expr{sql.NewWindow(sql.Col("ts"), 20*time.Second, 10*time.Second)},
		Aggs:  []logical.NamedAgg{{Agg: sql.CountAll(), Name: "cnt"}},
	}
	q := compile(t, plan, logical.Complete, nil)
	sink := sinks.NewMemorySink()
	sq := startQuery(t, q, map[string]sources.Source{"events": src}, sink, Options{})
	src.AddData(sql.Row{"a", 1.0, 15 * sec}) // windows [0,20) and [10,30)
	sq.ProcessAllAvailable()
	if len(sink.Rows()) != 2 {
		t.Fatalf("rows = %v", sortedStrings(sink.Rows()))
	}
}

// ---------------------------------------------------------------- joins

func TestStreamStaticJoin(t *testing.T) {
	src := sources.NewMemorySource("events", eventsSchema)
	campaigns := []sql.Row{{"a", int64(100)}, {"b", int64(200)}}
	campaignSchema := sql.NewSchema(
		sql.Field{Name: "key", Type: sql.TypeString},
		sql.Field{Name: "campaign", Type: sql.TypeInt64},
	)
	staticScan := &logical.Scan{Name: "campaigns", Out: campaignSchema, Handle: campaigns}
	resolver := func(s *logical.Scan) (physical.RowSource, error) {
		return physical.NewSliceSource(s.Out, s.Handle.([]sql.Row)), nil
	}
	plan := &logical.Project{
		Child: &logical.Join{
			Left:  streamScan("events"),
			Right: staticScan,
			Type:  logical.InnerJoin,
			Cond:  sql.Eq(sql.Col("k"), sql.Col("key")),
		},
		Exprs: []sql.Expr{sql.Col("k"), sql.Col("campaign")},
	}
	q := compile(t, plan, logical.Append, resolver)
	sink := sinks.NewMemorySink()
	sq := startQuery(t, q, map[string]sources.Source{"events": src}, sink, Options{})
	src.AddData(sql.Row{"a", 1.0, 0}, sql.Row{"x", 1.0, 0}, sql.Row{"b", 1.0, 0})
	sq.ProcessAllAvailable()
	expectRows(t, sink.Rows(), "[a, 100]", "[b, 200]")
}

func TestStreamStreamInnerJoin(t *testing.T) {
	left := sources.NewMemorySource("left", eventsSchema)
	right := sources.NewMemorySource("right", eventsSchema)
	lScan := &logical.SubqueryAlias{Child: &logical.Scan{Name: "left", Streaming: true, Out: eventsSchema}, Alias: "l"}
	rScan := &logical.SubqueryAlias{Child: &logical.Scan{Name: "right", Streaming: true, Out: eventsSchema}, Alias: "r"}
	plan := &logical.Project{
		Child: &logical.Join{Left: lScan, Right: rScan, Type: logical.InnerJoin,
			Cond: sql.Eq(sql.Col("l.k"), sql.Col("r.k"))},
		Exprs: []sql.Expr{sql.Col("l.k"), sql.Col("l.v"), sql.Col("r.v")},
	}
	q := compile(t, plan, logical.Append, nil)
	sink := sinks.NewMemorySink()
	sq := startQuery(t, q, map[string]sources.Source{"left": left, "right": right}, sink, Options{})

	// Left arrives first; the match comes from a later epoch's right row —
	// cross-epoch joins are the whole point of the state store.
	left.AddData(sql.Row{"a", 1.0, 0})
	sq.ProcessAllAvailable()
	if len(sink.Rows()) != 0 {
		t.Fatal("no match should exist yet")
	}
	right.AddData(sql.Row{"a", 9.0, 0})
	sq.ProcessAllAvailable()
	expectRows(t, sink.Rows(), "[a, 1.0, 9.0]")
	// Same-epoch matches also work, exactly once.
	left.AddData(sql.Row{"b", 2.0, 0})
	right.AddData(sql.Row{"b", 8.0, 0})
	sq.ProcessAllAvailable()
	expectRows(t, sink.Rows(), "[a, 1.0, 9.0]", "[b, 2.0, 8.0]")
}

func TestStreamStreamLeftOuterJoinWithWatermark(t *testing.T) {
	left := sources.NewMemorySource("left", eventsSchema)
	right := sources.NewMemorySource("right", eventsSchema)
	lScan := &logical.SubqueryAlias{
		Child: &logical.WithWatermark{
			Child:  &logical.Scan{Name: "left", Streaming: true, Out: eventsSchema},
			Column: "ts", Delay: 5 * sec,
		}, Alias: "l"}
	rScan := &logical.SubqueryAlias{Child: &logical.Scan{Name: "right", Streaming: true, Out: eventsSchema}, Alias: "r"}
	plan := &logical.Project{
		Child: &logical.Join{Left: lScan, Right: rScan, Type: logical.LeftOuterJoin,
			Cond: sql.And(sql.Eq(sql.Col("l.k"), sql.Col("r.k")), sql.Ge(sql.Col("l.ts"), sql.Lit(int64(0))))},
		Exprs: []sql.Expr{sql.Col("l.k"), sql.Col("r.v")},
	}
	q := compile(t, plan, logical.Append, nil)
	sink := sinks.NewMemorySink()
	sq := startQuery(t, q, map[string]sources.Source{"left": left, "right": right}, sink, Options{})

	left.AddData(sql.Row{"solo", 1.0, 1 * sec})
	sq.ProcessAllAvailable()
	if len(sink.Rows()) != 0 {
		t.Fatal("outer row must wait for the watermark")
	}
	// Advance the left watermark past 1s (needs left event ≥ 6s + both
	// sides' data so the min-watermark moves).
	left.AddData(sql.Row{"later", 2.0, 20 * sec})
	sq.ProcessAllAvailable()
	sq.ProcessAllAvailable() // eviction applies on the epoch after the advance
	found := false
	for _, r := range sink.Rows() {
		if r[0] == "solo" && r[1] == nil {
			found = true
		}
	}
	if !found {
		t.Errorf("unmatched left row not emitted null-padded: %v (wm=%d)", sortedStrings(sink.Rows()), sq.Watermark())
	}
}

// ---------------------------------------------------------------- dedup

func TestStreamingDistinct(t *testing.T) {
	src := sources.NewMemorySource("events", eventsSchema)
	plan := &logical.Distinct{Child: &logical.Project{
		Child: streamScan("events"), Exprs: []sql.Expr{sql.Col("k")}}}
	q := compile(t, plan, logical.Append, nil)
	sink := sinks.NewMemorySink()
	sq := startQuery(t, q, map[string]sources.Source{"events": src}, sink, Options{})
	src.AddData(sql.Row{"a", 1.0, 0}, sql.Row{"b", 1.0, 0}, sql.Row{"a", 2.0, 0})
	sq.ProcessAllAvailable()
	src.AddData(sql.Row{"a", 3.0, 0}, sql.Row{"c", 1.0, 0}) // a is a duplicate across epochs
	sq.ProcessAllAvailable()
	expectRows(t, sink.Rows(), "[a]", "[b]", "[c]")
}

// ---------------------------------------------------------------- mgws

// sessionPlan builds the paper's Figure 3 sessionization: count events per
// key, timing out sessions via event-time watermark.
func sessionPlan(timeout logical.TimeoutKind) *logical.MapGroups {
	updateFunc := func(key sql.Row, values []sql.Row, gs logical.GroupState) []sql.Row {
		if gs.HasTimedOut() {
			st := gs.Get()
			gs.Remove()
			return []sql.Row{{key[0], st[0], true}}
		}
		var total int64
		if gs.Exists() {
			total = gs.Get()[0].(int64)
		}
		total += int64(len(values))
		gs.Update(sql.Row{total})
		var maxTs int64
		for _, v := range values {
			if ts, ok := v[2].(int64); ok && ts > maxTs {
				maxTs = ts
			}
		}
		gs.SetTimeoutTimestamp(maxTs + 30*sec) // 30s session gap
		return nil
	}
	return &logical.MapGroups{
		Child: &logical.WithWatermark{
			Child:  &logical.Scan{Name: "events", Streaming: true, Out: eventsSchema},
			Column: "ts", Delay: 0,
		},
		Keys:        []sql.Expr{sql.Col("k")},
		KeyNames:    []string{"k"},
		Func:        updateFunc,
		Timeout:     logical.EventTimeTimeout,
		StateSchema: sql.NewSchema(sql.Field{Name: "count", Type: sql.TypeInt64}),
		Out: sql.NewSchema(
			sql.Field{Name: "k", Type: sql.TypeString},
			sql.Field{Name: "events", Type: sql.TypeInt64},
			sql.Field{Name: "closed", Type: sql.TypeBool},
		),
	}
}

func TestMapGroupsWithStateSessionization(t *testing.T) {
	src := sources.NewMemorySource("events", eventsSchema)
	q := compile(t, sessionPlan(logical.EventTimeTimeout), logical.Update, nil)
	sink := sinks.NewMemorySink()
	sq := startQuery(t, q, map[string]sources.Source{"events": src}, sink, Options{})

	src.AddData(sql.Row{"u1", 0.0, 1 * sec}, sql.Row{"u1", 0.0, 2 * sec}, sql.Row{"u2", 0.0, 3 * sec})
	sq.ProcessAllAvailable()
	if len(sink.Rows()) != 0 {
		t.Fatalf("sessions closed too early: %v", sortedStrings(sink.Rows()))
	}
	// u1's session times out at 2s+30s=32s; an event at 40s pushes the
	// watermark past it (delay 0). u2 times out at 33s, also past.
	src.AddData(sql.Row{"u3", 0.0, 40 * sec})
	sq.ProcessAllAvailable()
	sq.ProcessAllAvailable() // timeout fires on the epoch after the watermark advance
	rows := sink.Rows()
	want := map[string]int64{"u1": 2, "u2": 1}
	closed := map[string]int64{}
	for _, r := range rows {
		if r[2] == true {
			closed[r[0].(string)] = r[1].(int64)
		}
	}
	for k, n := range want {
		if closed[k] != n {
			t.Errorf("session %s = %d events, want %d (rows %v)", k, closed[k], n, sortedStrings(rows))
		}
	}
}

// ---------------------------------------------------------------- recovery

func TestRestartResumesFromCheckpoint(t *testing.T) {
	src := sources.NewMemorySource("events", eventsSchema)
	ckpt := t.TempDir()
	sink := sinks.NewMemorySink()
	srcs := map[string]sources.Source{"events": src}

	q1 := compile(t, countByKey(streamScan("events")), logical.Complete, nil)
	sq1 := startQuery(t, q1, srcs, sink, Options{Checkpoint: ckpt})
	src.AddData(sql.Row{"a", 1.0, 0})
	sq1.ProcessAllAvailable()
	if err := sq1.Stop(); err != nil {
		t.Fatal(err)
	}

	// "Code update": restart a fresh engine instance over the same
	// checkpoint; state and offsets must carry over.
	src.AddData(sql.Row{"a", 2.0, 0})
	q2 := compile(t, countByKey(streamScan("events")), logical.Complete, nil)
	sq2 := startQuery(t, q2, srcs, sink, Options{Checkpoint: ckpt})
	sq2.ProcessAllAvailable()
	expectRows(t, sink.Rows(), "[a, 2, 3.0]")
}

func TestCrashBeforeCommitReplaysEpoch(t *testing.T) {
	src := sources.NewMemorySource("events", eventsSchema)
	ckpt := t.TempDir()
	sink := sinks.NewMemorySink()
	srcs := map[string]sources.Source{"events": src}

	q1 := compile(t, countByKey(streamScan("events")), logical.Complete, nil)
	sq1 := startQuery(t, q1, srcs, sink, Options{Checkpoint: ckpt})
	src.AddData(sql.Row{"a", 1.0, 0})
	sq1.ProcessAllAvailable()
	src.AddData(sql.Row{"b", 5.0, 0})
	sq1.ProcessAllAvailable()
	sq1.Stop()

	// Simulate a crash after the WAL offsets write but before the sink
	// commit: delete the last commit marker.
	commits, err := filepath.Glob(filepath.Join(ckpt, "commits", "*.json"))
	if err != nil || len(commits) != 2 {
		t.Fatalf("commits = %v err=%v", commits, err)
	}
	sort.Strings(commits)
	if err := os.Remove(commits[len(commits)-1]); err != nil {
		t.Fatal(err)
	}

	// Restart: the engine must replay epoch 1 with identical offsets; the
	// idempotent sink ends up with exactly the right totals.
	q2 := compile(t, countByKey(streamScan("events")), logical.Complete, nil)
	sq2 := startQuery(t, q2, srcs, sink, Options{Checkpoint: ckpt})
	sq2.ProcessAllAvailable()
	expectRows(t, sink.Rows(), "[a, 1, 1.0]", "[b, 1, 5.0]")
}

func TestManualRollbackAndRecompute(t *testing.T) {
	src := sources.NewMemorySource("events", eventsSchema)
	ckpt := t.TempDir()
	sink := sinks.NewMemorySink()
	srcs := map[string]sources.Source{"events": src}

	q1 := compile(t, countByKey(streamScan("events")), logical.Complete, nil)
	sq1 := startQuery(t, q1, srcs, sink, Options{Checkpoint: ckpt})
	src.AddData(sql.Row{"a", 1.0, 0})
	sq1.ProcessAllAvailable() // epoch 0
	src.AddData(sql.Row{"bad", 99.0, 0})
	sq1.ProcessAllAvailable() // epoch 1: the "wrong results" epoch
	sq1.Stop()

	// Administrator: roll the WAL back to epoch 0 and restart (§7.2). The
	// engine recomputes epoch 1+ from the retained prefix — including the
	// "bad" record, proving the prefix is re-read deterministically.
	if err := Rollback(ckpt, 0); err != nil {
		t.Fatal(err)
	}
	q2 := compile(t, countByKey(streamScan("events")), logical.Complete, nil)
	sq2 := startQuery(t, q2, srcs, sink, Options{Checkpoint: ckpt})
	sq2.ProcessAllAvailable()
	expectRows(t, sink.Rows(), "[a, 1, 1.0]", "[bad, 1, 99.0]")
	// The recomputed epoch must be epoch 1 again.
	if p, ok := sq2.LastProgress(); !ok || p.Epoch != 1 {
		t.Errorf("recomputed epoch = %+v", p)
	}
}

// ---------------------------------------------------------------- triggers

func TestOnceTrigger(t *testing.T) {
	src := sources.NewMemorySource("events", eventsSchema)
	src.AddData(sql.Row{"a", 1.0, 0}, sql.Row{"b", 2.0, 0})
	q := compile(t, countByKey(streamScan("events")), logical.Complete, nil)
	sink := sinks.NewMemorySink()
	sq, err := Start(q, map[string]sources.Source{"events": src}, sink, Options{
		Checkpoint: t.TempDir(), Trigger: OnceTrigger{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := sq.AwaitTermination(); err != nil {
		t.Fatal(err)
	}
	expectRows(t, sink.Rows(), "[a, 1, 1.0]", "[b, 1, 2.0]")
}

func TestRunOnceDiscontinuousProcessing(t *testing.T) {
	// The §7.3 pattern: run a single epoch every "night", restarting from
	// the checkpoint each time; totals accumulate transactionally.
	src := sources.NewMemorySource("events", eventsSchema)
	ckpt := t.TempDir()
	sink := sinks.NewMemorySink()
	for night := 0; night < 3; night++ {
		src.AddData(sql.Row{"a", 1.0, 0})
		q := compile(t, countByKey(streamScan("events")), logical.Complete, nil)
		sq, err := Start(q, map[string]sources.Source{"events": src}, sink, Options{
			Checkpoint: ckpt, Trigger: OnceTrigger{}})
		if err != nil {
			t.Fatal(err)
		}
		if err := sq.AwaitTermination(); err != nil {
			t.Fatal(err)
		}
	}
	expectRows(t, sink.Rows(), "[a, 3, 3.0]")
}

func TestProcessingTimeTriggerRunsAutomatically(t *testing.T) {
	src := sources.NewMemorySource("events", eventsSchema)
	q := compile(t, countByKey(streamScan("events")), logical.Complete, nil)
	sink := sinks.NewMemorySink()
	_ = startQuery(t, q, map[string]sources.Source{"events": src}, sink, Options{
		Trigger: ProcessingTimeTrigger{Interval: time.Millisecond}})
	src.AddData(sql.Row{"a", 1.0, 0})
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(sink.Rows()) > 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("trigger loop never processed the data")
}

// ---------------------------------------------------------------- batching

func TestMaxRecordsPerTriggerBoundsEpochs(t *testing.T) {
	src := sources.NewMemorySource("events", eventsSchema)
	for i := 0; i < 100; i++ {
		src.AddData(sql.Row{"a", 1.0, 0})
	}
	q := compile(t, countByKey(streamScan("events")), logical.Complete, nil)
	sink := sinks.NewMemorySink()
	sq := startQuery(t, q, map[string]sources.Source{"events": src}, sink, Options{
		MaxRecordsPerTrigger: 10})
	sq.ProcessAllAvailable()
	expectRows(t, sink.Rows(), "[a, 100, 100.0]")
	if p, _ := sq.LastProgress(); p.Epoch != 9 {
		t.Errorf("expected 10 rate-limited epochs, last = %+v", p)
	}
}

func TestAdaptiveBatchingCatchesUpInOneEpoch(t *testing.T) {
	// Unbounded triggers absorb a backlog in a single large epoch — the
	// adaptive batching behaviour of §7.3.
	src := sources.NewMemorySource("events", eventsSchema)
	for i := 0; i < 1000; i++ {
		src.AddData(sql.Row{"a", 1.0, 0})
	}
	q := compile(t, countByKey(streamScan("events")), logical.Complete, nil)
	sink := sinks.NewMemorySink()
	sq := startQuery(t, q, map[string]sources.Source{"events": src}, sink, Options{})
	sq.ProcessAllAvailable()
	if p, _ := sq.LastProgress(); p.Epoch != 0 || p.NumInputRows != 1000 {
		t.Errorf("progress = %+v, want one epoch of 1000 rows", p)
	}
}

// ---------------------------------------------------------------- continuous

func TestContinuousModeEndToEnd(t *testing.T) {
	broker := msgbus.NewBroker()
	in, _ := broker.CreateTopic("in", 2)
	src := sources.NewCodecBusSource("in", in, eventsSchema)
	plan := &logical.Project{
		Child: &logical.Filter{Child: streamScan("in"), Cond: sql.Gt(sql.Col("v"), sql.Lit(0.0))},
		Exprs: []sql.Expr{sql.Col("k"), sql.Col("v")},
	}
	q := compile(t, plan, logical.Append, nil)
	sink := sinks.NewMemorySink()
	sq, err := Start(q, map[string]sources.Source{"in": src}, sink, Options{
		Checkpoint: t.TempDir(),
		Trigger:    ContinuousTrigger{EpochInterval: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sq.Stop()
	for i := 0; i < 10; i++ {
		part := i % 2
		in.Append(part, msgbus.Record{Value: codec.EncodeRow(sql.Row{fmt.Sprintf("k%d", i), float64(i%3 - 1), int64(0)})})
	}
	// v values cycle -1, 0, 1: only v=1 rows pass (i%3==2 → 3 rows).
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(sink.Rows()) >= 3 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := len(sink.Rows()); got != 3 {
		t.Fatalf("rows = %d (%v)", got, sortedStrings(sink.Rows()))
	}
	if err := sq.Stop(); err != nil {
		t.Fatal(err)
	}
	// Epochs were committed to the WAL by the coordinator.
	if sq.Metrics().Counter("epochs").Value() == 0 {
		t.Error("no epochs committed in continuous mode")
	}
}

func TestContinuousRejectsStatefulQueries(t *testing.T) {
	src := sources.NewMemorySource("events", eventsSchema)
	q := compile(t, countByKey(streamScan("events")), logical.Complete, nil)
	_, err := Start(q, map[string]sources.Source{"events": src}, sinks.NewMemorySink(), Options{
		Checkpoint: t.TempDir(), Trigger: ContinuousTrigger{}})
	if err == nil {
		t.Fatal("stateful query must be rejected in continuous mode")
	}
}
