package engine

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"structream/internal/fsx"
	"structream/internal/health"
	"structream/internal/metrics"
	"structream/internal/sinks"
	"structream/internal/sources"
	"structream/internal/sql"
	"structream/internal/sql/logical"
	"structream/internal/wal"
)

// TestReplayRaceFileSource is the regression test for the recovery-replay
// race: a crash between WriteOffsets and WriteCommit leaves a replay entry
// whose range indexes into a FileSource's file list — which a fresh
// restart has not discovered yet, because only Latest() scans the
// directory. Recovery used to fail with "file range [2,3) out of bounds
// (have 0 files)" even though every file was still on disk.
func TestReplayRaceFileSource(t *testing.T) {
	dataDir := t.TempDir()
	checkpoint := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dataDir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("a.json", `{"k":"a","v":1.0,"ts":1}`+"\n")
	write("b.json", `{"k":"b","v":2.0,"ts":2}`+"\n")

	plan := &logical.Project{Child: streamScan("events"),
		Exprs: []sql.Expr{sql.Col("k"), sql.Col("v")}}
	q := compile(t, plan, logical.Append, nil)

	newSrc := func() sources.Source {
		return sources.NewFileSource("events", dataDir, eventsSchema)
	}
	sink := sinks.NewMemorySink()
	sq := startQuery(t, q, map[string]sources.Source{"events": newSrc()}, sink,
		Options{Checkpoint: checkpoint, StartFromLatest: false})
	if err := sq.ProcessAllAvailable(); err != nil {
		t.Fatal(err)
	}
	if err := sq.Stop(); err != nil {
		t.Fatal(err)
	}
	if got := len(sink.Rows()); got != 2 {
		t.Fatalf("first run delivered %d rows, want 2", got)
	}

	// The "crash": a third file arrives and the epoch covering it logs its
	// offsets but never its commit marker.
	write("c.json", `{"k":"c","v":3.0,"ts":3}`+"\n")
	w, err := wal.Open(checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteOffsets(wal.Entry{
		Epoch:   1,
		Sources: []wal.SourceOffsets{{Source: "events", Start: []int64{2}, End: []int64{3}}},
	}); err != nil {
		t.Fatal(err)
	}

	// Restart with a FRESH FileSource (no Latest() has run): recovery must
	// scan the sources before replaying [2,3).
	sink2 := sinks.NewMemorySink()
	sq2 := startQuery(t, q, map[string]sources.Source{"events": newSrc()}, sink2,
		Options{Checkpoint: checkpoint, StartFromLatest: false})
	defer sq2.Stop()
	if err := sq2.Err(); err != nil {
		t.Fatalf("recovery replay failed: %v", err)
	}
	expectRows(t, sink2.Rows(), "[c, 3.0]")
	if got := sq2.LastCommittedEpoch(); got != 1 {
		t.Fatalf("last committed epoch = %d, want 1 (the replayed epoch)", got)
	}
}

// TestHealthWiredIntoEngine drives a watermarked aggregation and checks
// the health subsystem's engine-side surface: lineage stamps for every
// committed epoch, detector signals fed on the commit path, per-partition
// accounting, the eventTime progress section, and per-source lag.
func TestHealthWiredIntoEngine(t *testing.T) {
	src := sources.NewMemorySource("events", eventsSchema)
	plan := &logical.Aggregate{
		Child: &logical.WithWatermark{Child: streamScan("events"), Column: "ts", Delay: 5 * sec},
		Keys:  []sql.Expr{sql.NewWindow(sql.Col("ts"), 10*time.Second, 0)},
		Aggs:  []logical.NamedAgg{{Agg: sql.CountAll(), Name: "cnt"}},
	}
	q := compile(t, plan, logical.Append, nil)
	sink := sinks.NewMemorySink()
	checkpoint := t.TempDir()
	sq := startQuery(t, q, map[string]sources.Source{"events": src}, sink,
		Options{Checkpoint: checkpoint})

	src.AddData(sql.Row{"a", 1.0, 3 * sec}, sql.Row{"b", 1.0, 7 * sec})
	if err := sq.ProcessAllAvailable(); err != nil {
		t.Fatal(err)
	}
	src.AddData(sql.Row{"c", 1.0, 42 * sec})
	if err := sq.ProcessAllAvailable(); err != nil {
		t.Fatal(err)
	}

	tr := sq.Health()
	if tr == nil {
		t.Fatal("Health() = nil with health enabled")
	}
	st, ok := tr.Stamp(0)
	if !ok {
		t.Fatal("no lineage stamp for epoch 0")
	}
	if st.AdmitMicros == 0 || st.IngestMicros == 0 || st.ExecuteMicros == 0 || st.CommitMicros == 0 {
		t.Fatalf("epoch 0 stamp incomplete: %+v", st)
	}
	if st.CommitMicros < st.IngestMicros {
		t.Fatalf("commit before ingest: %+v", st)
	}

	rep := tr.Health()
	if rep.Status != "ok" {
		t.Fatalf("status = %q, want ok", rep.Status)
	}
	bySignal := map[string]health.SignalStatus{}
	for _, s := range rep.Signals {
		bySignal[s.Name] = s
	}
	for _, want := range []string{"epochLatencyUs", "inputRowsPerSec", "backlogRecords", "watermarkLagUs", "restartsPerEpoch"} {
		if _, ok := bySignal[want]; !ok {
			t.Errorf("signal %q missing from report (have %v)", want, rep.Signals)
		}
	}
	if len(rep.Partitions) == 0 {
		t.Error("no per-partition accounting in report")
	}
	var sawReduce bool
	for _, p := range rep.Partitions {
		if p.Stage == "reduce" {
			sawReduce = true
		}
	}
	if !sawReduce {
		t.Errorf("no reduce-stage partition stats: %+v", rep.Partitions)
	}

	// Event-time telemetry in the progress event for the epoch that read
	// ts=42s — the single-row epoch (watermark-flush epochs interleave, so
	// LastProgress would see a zero-row flush).
	var p metrics.QueryProgress
	var found bool
	for _, ev := range sq.EventLog().Recent(10) {
		if ev.NumInputRows == 1 {
			p, found = ev, true
		}
	}
	if !found || p.EventTime == nil {
		t.Fatalf("no eventTime section for the ts=42s epoch: %+v", p)
	}
	if p.EventTime.MinMicros != 42*sec || p.EventTime.MaxMicros != 42*sec || p.EventTime.AvgMicros != 42*sec {
		t.Errorf("eventTime min/avg/max = %d/%d/%d, want 42s", p.EventTime.MinMicros, p.EventTime.AvgMicros, p.EventTime.MaxMicros)
	}
	// Progress reports the post-advance watermark (42s − 5s delay), same as
	// the long-standing top-level WatermarkMicros field.
	if p.EventTime.WatermarkMicros != 37*sec {
		t.Errorf("eventTime watermark = %d, want 37s", p.EventTime.WatermarkMicros)
	}
	if p.EventTime.WatermarkLagUs <= 0 {
		t.Errorf("watermark lag = %d, want > 0", p.EventTime.WatermarkLagUs)
	}
	if len(p.Sources) != 1 || p.Sources[0].EventTimeMaxMicros != 42*sec || p.Sources[0].WatermarkLagUs <= 0 {
		t.Errorf("per-source event-time telemetry: %+v", p.Sources)
	}
	if len(p.StateOperators) != 1 || p.StateOperators[0].WatermarkLagUs <= 0 {
		t.Errorf("state-operator watermark lag: %+v", p.StateOperators)
	}
	if c, _ := sq.Metrics().Histograms()["watermarkLag.us"]; c.Count == 0 {
		t.Error("watermarkLag.us histogram never observed")
	}

	// The default bundle ring lives under the checkpoint.
	if _, err := os.Stat(filepath.Join(checkpoint, "_health")); err == nil {
		// Fine either way: the directory is created lazily on first capture.
		t.Log("bundle dir exists")
	}
}

// TestHealthDisabled verifies DisableHealth leaves a nil, still-safe
// tracker and suppresses the eventTime-independent health machinery.
func TestHealthDisabled(t *testing.T) {
	src := sources.NewMemorySource("events", eventsSchema)
	plan := &logical.Project{Child: streamScan("events"),
		Exprs: []sql.Expr{sql.Col("k"), sql.Col("v")}}
	q := compile(t, plan, logical.Append, nil)
	sink := sinks.NewMemorySink()
	sq := startQuery(t, q, map[string]sources.Source{"events": src}, sink,
		Options{DisableHealth: true})
	src.AddData(sql.Row{"a", 1.0, 0})
	if err := sq.ProcessAllAvailable(); err != nil {
		t.Fatal(err)
	}
	if sq.Health() != nil {
		t.Fatal("Health() should be nil when disabled")
	}
	// Nil trackers answer with a disabled report.
	if rep := sq.Health().Health(); rep.Status != "disabled" {
		t.Errorf("nil tracker status = %q", rep.Status)
	}
}

// TestSourceReadErrorsSurfaceInProgress checks the instrumented-source
// satellite: failed reads are counted with a last-error description and
// surfaced in the progress event's sources section.
func TestSourceReadErrorsSurfaceInProgress(t *testing.T) {
	inner := sources.NewMemorySource("events", eventsSchema)
	flaky := &errorOnceSource{Source: inner, failN: 2}
	plan := &logical.Project{Child: streamScan("events"),
		Exprs: []sql.Expr{sql.Col("k"), sql.Col("v")}}
	q := compile(t, plan, logical.Append, nil)
	sink := sinks.NewMemorySink()
	sq := startQuery(t, q, map[string]sources.Source{"events": flaky}, sink,
		Options{RetryBackoff: time.Microsecond})
	inner.AddData(sql.Row{"a", 1.0, 0})
	if err := sq.ProcessAllAvailable(); err != nil {
		t.Fatal(err)
	}
	p, ok := sq.LastProgress()
	if !ok || len(p.Sources) != 1 {
		t.Fatalf("progress sources = %+v", p.Sources)
	}
	sp := p.Sources[0]
	if sp.ReadErrors != 2 {
		t.Errorf("readErrors = %d, want 2", sp.ReadErrors)
	}
	if sp.LastErrorAtMicros == 0 || !strings.Contains(sp.LastError, "transient") {
		t.Errorf("last error not recorded: at=%d err=%q", sp.LastErrorAtMicros, sp.LastError)
	}
	expectRows(t, sink.Rows(), "[a, 1.0]")
}

// errorOnceSource fails its first failN reads with a transient error, then
// delegates. Vector reads are not offered, so the engine's retry loop
// exercises the row Read path.
type errorOnceSource struct {
	sources.Source
	failN int
}

func (f *errorOnceSource) Read(p int, from, to int64) ([]sql.Row, error) {
	if f.failN > 0 {
		f.failN--
		return nil, fmt.Errorf("flaky: transient read failure: %w", fsx.ErrTransient)
	}
	return f.Source.Read(p, from, to)
}
