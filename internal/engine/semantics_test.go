package engine

import (
	"testing"
	"time"

	"structream/internal/msgbus"
	"structream/internal/sinks"
	"structream/internal/sources"
	"structream/internal/sql"
	"structream/internal/sql/codec"
	"structream/internal/sql/logical"
)

// TestCompleteModeSortAndLimit: ORDER BY + LIMIT over a streaming
// aggregation is allowed in complete mode (§5.1/§5.2) and is applied to the
// full result table on every trigger.
func TestCompleteModeSortAndLimit(t *testing.T) {
	src := sources.NewMemorySource("events", eventsSchema)
	plan := &logical.Limit{
		Child: &logical.Sort{
			Child:  countByKey(streamScan("events")),
			Orders: []logical.SortOrder{{Expr: sql.Col("cnt"), Desc: true}},
		},
		N: 2,
	}
	q := compile(t, plan, logical.Complete, nil)
	sink := sinks.NewMemorySink()
	sq := startQuery(t, q, map[string]sources.Source{"events": src}, sink, Options{})

	src.AddData(
		sql.Row{"a", 1.0, 0}, sql.Row{"a", 1.0, 0}, sql.Row{"a", 1.0, 0},
		sql.Row{"b", 1.0, 0}, sql.Row{"b", 1.0, 0},
		sql.Row{"c", 1.0, 0},
	)
	if err := sq.ProcessAllAvailable(); err != nil {
		t.Fatal(err)
	}
	rows := sink.Rows()
	if len(rows) != 2 || rows[0][0] != "a" || rows[1][0] != "b" {
		t.Fatalf("top-2 = %v", sortedStrings(rows))
	}
	// c overtakes: the next trigger re-sorts the whole table.
	for i := 0; i < 5; i++ {
		src.AddData(sql.Row{"c", 1.0, 0})
	}
	if err := sq.ProcessAllAvailable(); err != nil {
		t.Fatal(err)
	}
	rows = sink.Rows()
	if rows[0][0] != "c" {
		t.Errorf("after update top = %v", sortedStrings(rows))
	}
}

// TestMultiSourceWatermarkIsMinimum: with two watermarked sources the
// global watermark is the minimum of the per-source watermarks (§4.3.1:
// "different input streams can have different watermarks"; Spark's default
// policy takes the min so no source's late data is dropped prematurely).
func TestMultiSourceWatermarkIsMinimum(t *testing.T) {
	fast := sources.NewMemorySource("fast", eventsSchema)
	slow := sources.NewMemorySource("slow", eventsSchema)
	fScan := &logical.SubqueryAlias{Child: &logical.WithWatermark{
		Child: &logical.Scan{Name: "fast", Streaming: true, Out: eventsSchema}, Column: "ts", Delay: 0}, Alias: "f"}
	sScan := &logical.SubqueryAlias{Child: &logical.WithWatermark{
		Child: &logical.Scan{Name: "slow", Streaming: true, Out: eventsSchema}, Column: "ts", Delay: 0}, Alias: "s"}
	plan := &logical.Project{
		Child: &logical.Join{Left: fScan, Right: sScan, Type: logical.InnerJoin,
			Cond: sql.Eq(sql.Col("f.k"), sql.Col("s.k"))},
		Exprs: []sql.Expr{sql.Col("f.k")},
	}
	q := compile(t, plan, logical.Append, nil)
	sink := sinks.NewMemorySink()
	sq := startQuery(t, q, map[string]sources.Source{"fast": fast, "slow": slow}, sink, Options{})

	fast.AddData(sql.Row{"a", 1.0, 100 * sec})
	slow.AddData(sql.Row{"a", 1.0, 10 * sec})
	if err := sq.ProcessAllAvailable(); err != nil {
		t.Fatal(err)
	}
	if wm := sq.Watermark(); wm != 10*sec {
		t.Errorf("watermark = %d, want min(100s, 10s) = 10s", wm)
	}
	// The slow source catches up: the watermark follows the new minimum.
	slow.AddData(sql.Row{"b", 1.0, 50 * sec})
	if err := sq.ProcessAllAvailable(); err != nil {
		t.Fatal(err)
	}
	if wm := sq.Watermark(); wm != 50*sec {
		t.Errorf("watermark = %d, want 50s", wm)
	}
}

// TestContinuousModeRecovery: a continuous query resumes from its WAL
// offsets after a restart; records before the last committed epoch are not
// re-delivered (at-least-once applies only to the tail).
func TestContinuousModeRecovery(t *testing.T) {
	broker := msgbus.NewBroker()
	in, _ := broker.CreateTopic("in", 1)
	ckpt := t.TempDir()
	schemaRow := func(i int) msgbus.Record {
		return msgbus.Record{Value: codec.EncodeRow(sql.Row{"k", float64(i), int64(0)})}
	}
	plan := &logical.Project{Child: streamScan("in"),
		Exprs: []sql.Expr{sql.Col("k"), sql.Col("v")}}

	startCont := func(sink sinks.Sink) *StreamingQuery {
		q := compile(t, plan, logical.Append, nil)
		src := sources.NewCodecBusSource("in", in, eventsSchema)
		sq, err := Start(q, map[string]sources.Source{"in": src}, sink, Options{
			Checkpoint: ckpt,
			Trigger:    ContinuousTrigger{EpochInterval: 5 * time.Millisecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		return sq
	}

	sink1 := sinks.NewMemorySink()
	sq1 := startCont(sink1)
	for i := 0; i < 5; i++ {
		in.Append(0, schemaRow(i))
	}
	waitFor(t, func() bool { return len(sink1.Rows()) == 5 })
	// Let the coordinator commit an epoch covering all 5 records.
	waitFor(t, func() bool { return sq1.Metrics().Counter("epochs").Value() >= 1 })
	if err := sq1.Stop(); err != nil {
		t.Fatal(err)
	}

	// Restart with a fresh sink: only NEW records appear.
	sink2 := sinks.NewMemorySink()
	sq2 := startCont(sink2)
	defer sq2.Stop()
	for i := 5; i < 8; i++ {
		in.Append(0, schemaRow(i))
	}
	waitFor(t, func() bool { return len(sink2.Rows()) >= 3 })
	rows := sink2.Rows()
	if len(rows) != 3 {
		t.Fatalf("restart re-delivered committed records: %v", sortedStrings(rows))
	}
	for _, r := range rows {
		if r[1].(float64) < 5 {
			t.Errorf("old record re-delivered: %v", r)
		}
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

// TestUpdateModeOnlyEmitsChangedKeys verifies the per-epoch delta
// semantics directly via RowsForEpoch.
func TestUpdateModeOnlyEmitsChangedKeys(t *testing.T) {
	src := sources.NewMemorySource("events", eventsSchema)
	q := compile(t, countByKey(streamScan("events")), logical.Update, nil)
	sink := sinks.NewMemorySink()
	sq := startQuery(t, q, map[string]sources.Source{"events": src}, sink, Options{})

	src.AddData(sql.Row{"a", 1.0, 0}, sql.Row{"b", 1.0, 0})
	sq.ProcessAllAvailable()
	src.AddData(sql.Row{"b", 1.0, 0})
	sq.ProcessAllAvailable()

	// Note: update-mode memory sinks track the latest value per key; the
	// per-epoch emission is visible in the progress events.
	progress := sq.EventLog().Recent(0)
	if len(progress) != 2 {
		t.Fatalf("progress = %v", progress)
	}
	if progress[0].NumOutputRows != 2 || progress[1].NumOutputRows != 1 {
		t.Errorf("output rows per epoch = %d, %d; want 2, 1",
			progress[0].NumOutputRows, progress[1].NumOutputRows)
	}
}
